file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_window.dir/bench_micro_window.cc.o"
  "CMakeFiles/bench_micro_window.dir/bench_micro_window.cc.o.d"
  "bench_micro_window"
  "bench_micro_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
