# Empty compiler generated dependencies file for bench_micro_window.
# This may be replaced when dependencies are built.
