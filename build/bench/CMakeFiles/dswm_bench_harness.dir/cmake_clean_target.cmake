file(REMOVE_RECURSE
  "libdswm_bench_harness.a"
)
