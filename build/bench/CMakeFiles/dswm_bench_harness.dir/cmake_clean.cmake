file(REMOVE_RECURSE
  "CMakeFiles/dswm_bench_harness.dir/harness.cc.o"
  "CMakeFiles/dswm_bench_harness.dir/harness.cc.o.d"
  "libdswm_bench_harness.a"
  "libdswm_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dswm_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
