# Empty dependencies file for dswm_bench_harness.
# This may be replaced when dependencies are built.
