# Empty compiler generated dependencies file for bench_fig1_pamap.
# This may be replaced when dependencies are built.
