file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pamap.dir/bench_fig1_pamap.cc.o"
  "CMakeFiles/bench_fig1_pamap.dir/bench_fig1_pamap.cc.o.d"
  "bench_fig1_pamap"
  "bench_fig1_pamap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pamap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
