file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_sketch.dir/bench_micro_sketch.cc.o"
  "CMakeFiles/bench_micro_sketch.dir/bench_micro_sketch.cc.o.d"
  "bench_micro_sketch"
  "bench_micro_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
