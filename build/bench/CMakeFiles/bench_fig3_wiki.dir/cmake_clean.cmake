file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_wiki.dir/bench_fig3_wiki.cc.o"
  "CMakeFiles/bench_fig3_wiki.dir/bench_fig3_wiki.cc.o.d"
  "bench_fig3_wiki"
  "bench_fig3_wiki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_wiki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
