
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/anomaly_scorer.cc" "src/CMakeFiles/dswm.dir/analytics/anomaly_scorer.cc.o" "gcc" "src/CMakeFiles/dswm.dir/analytics/anomaly_scorer.cc.o.d"
  "/root/repo/src/analytics/approx_pca.cc" "src/CMakeFiles/dswm.dir/analytics/approx_pca.cc.o" "gcc" "src/CMakeFiles/dswm.dir/analytics/approx_pca.cc.o.d"
  "/root/repo/src/analytics/change_detector.cc" "src/CMakeFiles/dswm.dir/analytics/change_detector.cc.o" "gcc" "src/CMakeFiles/dswm.dir/analytics/change_detector.cc.o.d"
  "/root/repo/src/common/flags.cc" "src/CMakeFiles/dswm.dir/common/flags.cc.o" "gcc" "src/CMakeFiles/dswm.dir/common/flags.cc.o.d"
  "/root/repo/src/core/centralized_tracker.cc" "src/CMakeFiles/dswm.dir/core/centralized_tracker.cc.o" "gcc" "src/CMakeFiles/dswm.dir/core/centralized_tracker.cc.o.d"
  "/root/repo/src/core/da1_tracker.cc" "src/CMakeFiles/dswm.dir/core/da1_tracker.cc.o" "gcc" "src/CMakeFiles/dswm.dir/core/da1_tracker.cc.o.d"
  "/root/repo/src/core/da2_tracker.cc" "src/CMakeFiles/dswm.dir/core/da2_tracker.cc.o" "gcc" "src/CMakeFiles/dswm.dir/core/da2_tracker.cc.o.d"
  "/root/repo/src/core/iwmt.cc" "src/CMakeFiles/dswm.dir/core/iwmt.cc.o" "gcc" "src/CMakeFiles/dswm.dir/core/iwmt.cc.o.d"
  "/root/repo/src/core/sampling_tracker.cc" "src/CMakeFiles/dswm.dir/core/sampling_tracker.cc.o" "gcc" "src/CMakeFiles/dswm.dir/core/sampling_tracker.cc.o.d"
  "/root/repo/src/core/shared_threshold_wr_tracker.cc" "src/CMakeFiles/dswm.dir/core/shared_threshold_wr_tracker.cc.o" "gcc" "src/CMakeFiles/dswm.dir/core/shared_threshold_wr_tracker.cc.o.d"
  "/root/repo/src/core/sum_tracker.cc" "src/CMakeFiles/dswm.dir/core/sum_tracker.cc.o" "gcc" "src/CMakeFiles/dswm.dir/core/sum_tracker.cc.o.d"
  "/root/repo/src/core/tracker.cc" "src/CMakeFiles/dswm.dir/core/tracker.cc.o" "gcc" "src/CMakeFiles/dswm.dir/core/tracker.cc.o.d"
  "/root/repo/src/core/tracker_factory.cc" "src/CMakeFiles/dswm.dir/core/tracker_factory.cc.o" "gcc" "src/CMakeFiles/dswm.dir/core/tracker_factory.cc.o.d"
  "/root/repo/src/core/with_replacement_tracker.cc" "src/CMakeFiles/dswm.dir/core/with_replacement_tracker.cc.o" "gcc" "src/CMakeFiles/dswm.dir/core/with_replacement_tracker.cc.o.d"
  "/root/repo/src/linalg/bidiag_svd.cc" "src/CMakeFiles/dswm.dir/linalg/bidiag_svd.cc.o" "gcc" "src/CMakeFiles/dswm.dir/linalg/bidiag_svd.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/dswm.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/dswm.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/matrix_io.cc" "src/CMakeFiles/dswm.dir/linalg/matrix_io.cc.o" "gcc" "src/CMakeFiles/dswm.dir/linalg/matrix_io.cc.o.d"
  "/root/repo/src/linalg/psd_sqrt.cc" "src/CMakeFiles/dswm.dir/linalg/psd_sqrt.cc.o" "gcc" "src/CMakeFiles/dswm.dir/linalg/psd_sqrt.cc.o.d"
  "/root/repo/src/linalg/qr.cc" "src/CMakeFiles/dswm.dir/linalg/qr.cc.o" "gcc" "src/CMakeFiles/dswm.dir/linalg/qr.cc.o.d"
  "/root/repo/src/linalg/spectral_norm.cc" "src/CMakeFiles/dswm.dir/linalg/spectral_norm.cc.o" "gcc" "src/CMakeFiles/dswm.dir/linalg/spectral_norm.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/CMakeFiles/dswm.dir/linalg/svd.cc.o" "gcc" "src/CMakeFiles/dswm.dir/linalg/svd.cc.o.d"
  "/root/repo/src/linalg/symmetric_eigen.cc" "src/CMakeFiles/dswm.dir/linalg/symmetric_eigen.cc.o" "gcc" "src/CMakeFiles/dswm.dir/linalg/symmetric_eigen.cc.o.d"
  "/root/repo/src/monitor/driver.cc" "src/CMakeFiles/dswm.dir/monitor/driver.cc.o" "gcc" "src/CMakeFiles/dswm.dir/monitor/driver.cc.o.d"
  "/root/repo/src/sampling/sample_set.cc" "src/CMakeFiles/dswm.dir/sampling/sample_set.cc.o" "gcc" "src/CMakeFiles/dswm.dir/sampling/sample_set.cc.o.d"
  "/root/repo/src/sampling/site_queue.cc" "src/CMakeFiles/dswm.dir/sampling/site_queue.cc.o" "gcc" "src/CMakeFiles/dswm.dir/sampling/site_queue.cc.o.d"
  "/root/repo/src/sketch/covariance.cc" "src/CMakeFiles/dswm.dir/sketch/covariance.cc.o" "gcc" "src/CMakeFiles/dswm.dir/sketch/covariance.cc.o.d"
  "/root/repo/src/sketch/frequent_directions.cc" "src/CMakeFiles/dswm.dir/sketch/frequent_directions.cc.o" "gcc" "src/CMakeFiles/dswm.dir/sketch/frequent_directions.cc.o.d"
  "/root/repo/src/stream/csv_loader.cc" "src/CMakeFiles/dswm.dir/stream/csv_loader.cc.o" "gcc" "src/CMakeFiles/dswm.dir/stream/csv_loader.cc.o.d"
  "/root/repo/src/stream/pamap_like.cc" "src/CMakeFiles/dswm.dir/stream/pamap_like.cc.o" "gcc" "src/CMakeFiles/dswm.dir/stream/pamap_like.cc.o.d"
  "/root/repo/src/stream/row_stream.cc" "src/CMakeFiles/dswm.dir/stream/row_stream.cc.o" "gcc" "src/CMakeFiles/dswm.dir/stream/row_stream.cc.o.d"
  "/root/repo/src/stream/synthetic.cc" "src/CMakeFiles/dswm.dir/stream/synthetic.cc.o" "gcc" "src/CMakeFiles/dswm.dir/stream/synthetic.cc.o.d"
  "/root/repo/src/stream/wiki_like.cc" "src/CMakeFiles/dswm.dir/stream/wiki_like.cc.o" "gcc" "src/CMakeFiles/dswm.dir/stream/wiki_like.cc.o.d"
  "/root/repo/src/window/exact_window.cc" "src/CMakeFiles/dswm.dir/window/exact_window.cc.o" "gcc" "src/CMakeFiles/dswm.dir/window/exact_window.cc.o.d"
  "/root/repo/src/window/exponential_histogram.cc" "src/CMakeFiles/dswm.dir/window/exponential_histogram.cc.o" "gcc" "src/CMakeFiles/dswm.dir/window/exponential_histogram.cc.o.d"
  "/root/repo/src/window/matrix_eh.cc" "src/CMakeFiles/dswm.dir/window/matrix_eh.cc.o" "gcc" "src/CMakeFiles/dswm.dir/window/matrix_eh.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
