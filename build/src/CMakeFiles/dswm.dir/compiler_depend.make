# Empty compiler generated dependencies file for dswm.
# This may be replaced when dependencies are built.
