file(REMOVE_RECURSE
  "libdswm.a"
)
