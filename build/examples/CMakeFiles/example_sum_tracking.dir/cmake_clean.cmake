file(REMOVE_RECURSE
  "CMakeFiles/example_sum_tracking.dir/sum_tracking.cpp.o"
  "CMakeFiles/example_sum_tracking.dir/sum_tracking.cpp.o.d"
  "example_sum_tracking"
  "example_sum_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sum_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
