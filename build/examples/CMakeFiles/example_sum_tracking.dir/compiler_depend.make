# Empty compiler generated dependencies file for example_sum_tracking.
# This may be replaced when dependencies are built.
