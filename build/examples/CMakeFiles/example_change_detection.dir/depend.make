# Empty dependencies file for example_change_detection.
# This may be replaced when dependencies are built.
