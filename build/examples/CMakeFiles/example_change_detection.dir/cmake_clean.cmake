file(REMOVE_RECURSE
  "CMakeFiles/example_change_detection.dir/change_detection.cpp.o"
  "CMakeFiles/example_change_detection.dir/change_detection.cpp.o.d"
  "example_change_detection"
  "example_change_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_change_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
