# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_anomaly_detection "/root/repo/build/examples/example_anomaly_detection")
set_tests_properties(example_anomaly_detection PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_change_detection "/root/repo/build/examples/example_change_detection")
set_tests_properties(example_change_detection PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sum_tracking "/root/repo/build/examples/example_sum_tracking")
set_tests_properties(example_sum_tracking PROPERTIES  TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
