
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analytics_test.cc" "tests/CMakeFiles/dswm_tests.dir/analytics_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/analytics_test.cc.o.d"
  "/root/repo/tests/centralized_tracker_test.cc" "tests/CMakeFiles/dswm_tests.dir/centralized_tracker_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/centralized_tracker_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/dswm_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/cross_validation_test.cc" "tests/CMakeFiles/dswm_tests.dir/cross_validation_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/cross_validation_test.cc.o.d"
  "/root/repo/tests/csv_loader_test.cc" "tests/CMakeFiles/dswm_tests.dir/csv_loader_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/csv_loader_test.cc.o.d"
  "/root/repo/tests/determinism_test.cc" "tests/CMakeFiles/dswm_tests.dir/determinism_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/determinism_test.cc.o.d"
  "/root/repo/tests/deterministic_tracker_test.cc" "tests/CMakeFiles/dswm_tests.dir/deterministic_tracker_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/deterministic_tracker_test.cc.o.d"
  "/root/repo/tests/driver_trace_comm_test.cc" "tests/CMakeFiles/dswm_tests.dir/driver_trace_comm_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/driver_trace_comm_test.cc.o.d"
  "/root/repo/tests/edge_cases_test.cc" "tests/CMakeFiles/dswm_tests.dir/edge_cases_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/edge_cases_test.cc.o.d"
  "/root/repo/tests/estimator_statistics_test.cc" "tests/CMakeFiles/dswm_tests.dir/estimator_statistics_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/estimator_statistics_test.cc.o.d"
  "/root/repo/tests/factory_driver_test.cc" "tests/CMakeFiles/dswm_tests.dir/factory_driver_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/factory_driver_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/dswm_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/iwmt_test.cc" "tests/CMakeFiles/dswm_tests.dir/iwmt_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/iwmt_test.cc.o.d"
  "/root/repo/tests/linalg_bidiag_svd_test.cc" "tests/CMakeFiles/dswm_tests.dir/linalg_bidiag_svd_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/linalg_bidiag_svd_test.cc.o.d"
  "/root/repo/tests/linalg_eigen_test.cc" "tests/CMakeFiles/dswm_tests.dir/linalg_eigen_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/linalg_eigen_test.cc.o.d"
  "/root/repo/tests/linalg_matrix_test.cc" "tests/CMakeFiles/dswm_tests.dir/linalg_matrix_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/linalg_matrix_test.cc.o.d"
  "/root/repo/tests/linalg_qr_spectral_test.cc" "tests/CMakeFiles/dswm_tests.dir/linalg_qr_spectral_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/linalg_qr_spectral_test.cc.o.d"
  "/root/repo/tests/linalg_svd_test.cc" "tests/CMakeFiles/dswm_tests.dir/linalg_svd_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/linalg_svd_test.cc.o.d"
  "/root/repo/tests/matrix_io_flags_test.cc" "tests/CMakeFiles/dswm_tests.dir/matrix_io_flags_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/matrix_io_flags_test.cc.o.d"
  "/root/repo/tests/sampling_structures_test.cc" "tests/CMakeFiles/dswm_tests.dir/sampling_structures_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/sampling_structures_test.cc.o.d"
  "/root/repo/tests/sampling_tracker_test.cc" "tests/CMakeFiles/dswm_tests.dir/sampling_tracker_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/sampling_tracker_test.cc.o.d"
  "/root/repo/tests/sequence_window_test.cc" "tests/CMakeFiles/dswm_tests.dir/sequence_window_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/sequence_window_test.cc.o.d"
  "/root/repo/tests/shared_threshold_wr_test.cc" "tests/CMakeFiles/dswm_tests.dir/shared_threshold_wr_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/shared_threshold_wr_test.cc.o.d"
  "/root/repo/tests/sketch_fd_test.cc" "tests/CMakeFiles/dswm_tests.dir/sketch_fd_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/sketch_fd_test.cc.o.d"
  "/root/repo/tests/stream_test.cc" "tests/CMakeFiles/dswm_tests.dir/stream_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/stream_test.cc.o.d"
  "/root/repo/tests/sum_tracker_test.cc" "tests/CMakeFiles/dswm_tests.dir/sum_tracker_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/sum_tracker_test.cc.o.d"
  "/root/repo/tests/window_eh_test.cc" "tests/CMakeFiles/dswm_tests.dir/window_eh_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/window_eh_test.cc.o.d"
  "/root/repo/tests/window_exact_test.cc" "tests/CMakeFiles/dswm_tests.dir/window_exact_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/window_exact_test.cc.o.d"
  "/root/repo/tests/window_meh_test.cc" "tests/CMakeFiles/dswm_tests.dir/window_meh_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/window_meh_test.cc.o.d"
  "/root/repo/tests/wr_tracker_test.cc" "tests/CMakeFiles/dswm_tests.dir/wr_tracker_test.cc.o" "gcc" "tests/CMakeFiles/dswm_tests.dir/wr_tracker_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dswm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
