# Empty compiler generated dependencies file for dswm_tests.
# This may be replaced when dependencies are built.
