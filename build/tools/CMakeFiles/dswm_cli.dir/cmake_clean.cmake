file(REMOVE_RECURSE
  "CMakeFiles/dswm_cli.dir/dswm_cli.cc.o"
  "CMakeFiles/dswm_cli.dir/dswm_cli.cc.o.d"
  "dswm_cli"
  "dswm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dswm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
