# Empty dependencies file for dswm_cli.
# This may be replaced when dependencies are built.
