// Ridge-leverage anomaly scoring from a covariance sketch
// (paper Section I application 2; cf. Huang & Kasiviswanathan [15]).
//
// score(x) = x^T (C + lambda I)^{-1} x with C = B^T B from the tracked
// sketch. Directions the window's data never excites score high. If B is
// an eps-covariance sketch of A_w, the score approximates the exact
// window's score (Theorem-level argument in [15]).

#ifndef DSWM_ANALYTICS_ANOMALY_SCORER_H_
#define DSWM_ANALYTICS_ANOMALY_SCORER_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"

namespace dswm {

class CovarianceEstimate;

/// Precomputed scorer; rebuild when the sketch is refreshed.
class AnomalyScorer {
 public:
  /// Builds a scorer from sketch rows B. `lambda_fraction` sets the
  /// ridge as lambda = lambda_fraction * ||B||_F^2 / d (a dimensionless
  /// knob; 0.01 is a good default). Fails on an empty sketch or a
  /// non-positive fraction.
  static StatusOr<AnomalyScorer> FromSketch(const Matrix& sketch,
                                            double lambda_fraction = 0.01);

  /// As FromSketch, from an explicit covariance estimate.
  static StatusOr<AnomalyScorer> FromCovariance(const Matrix& covariance,
                                                double lambda_fraction = 0.01);

  /// From a tracker query result, reusing the estimate's cached
  /// eigendecomposition (CovarianceEstimate::Eigen): one SymmetricEigen
  /// per snapshot is shared between scoring and the PsdSqrt conversion.
  static StatusOr<AnomalyScorer> FromEstimate(const CovarianceEstimate& est,
                                              double lambda_fraction = 0.01);

  /// score(x) = x^T (C + lambda I)^{-1} x; O(d^2).
  double Score(const double* x) const;

  /// The ridge actually used.
  double lambda() const { return lambda_; }
  int dim() const { return static_cast<int>(inverse_eigenvalues_.size()); }

 private:
  AnomalyScorer() = default;
  static StatusOr<AnomalyScorer> Build(const Matrix& covariance,
                                       double lambda_fraction);
  static StatusOr<AnomalyScorer> BuildFromEigen(const Matrix& covariance,
                                                EigenResult eig,
                                                double lambda_fraction);

  EigenResult eig_;
  std::vector<double> inverse_eigenvalues_;
  double lambda_ = 0.0;
};

}  // namespace dswm

#endif  // DSWM_ANALYTICS_ANOMALY_SCORER_H_
