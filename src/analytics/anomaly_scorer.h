// Ridge-leverage anomaly scoring over a published snapshot
// (paper Section I application 2; cf. Huang & Kasiviswanathan [15]).
//
// score(x) = x^T (C + lambda I)^{-1} x with C the snapshot's covariance
// estimate. Directions the window's data never excites score high. If the
// snapshot is an eps-covariance sketch of A_w, the score approximates the
// exact window's score (Theorem-level argument in [15]).
//
// Scorers are built from a pinned serve::SnapshotRef and borrow the
// snapshot's cached eigendecomposition (one SymmetricEigen per published
// version, shared by every consumer). A scorer must not outlive the
// snapshot it was built from: keep the ref pinned, or use the snapshot's
// own memoized scorer (serve::Snapshot::scorer(), default ridge), which
// lives exactly as long as the version.

#ifndef DSWM_ANALYTICS_ANOMALY_SCORER_H_
#define DSWM_ANALYTICS_ANOMALY_SCORER_H_

#include <vector>

#include "common/status.h"
#include "linalg/symmetric_eigen.h"

namespace dswm {

class CovarianceEstimate;

namespace serve {
class Snapshot;
class SnapshotRef;
}  // namespace serve

/// Precomputed scorer for one published version; build a new one when a
/// newer version is pinned.
class AnomalyScorer {
 public:
  /// Empty scorer (dim 0); placeholder until assigned.
  AnomalyScorer() = default;

  /// Builds a scorer from a pinned snapshot. `lambda_fraction` sets the
  /// ridge as lambda = lambda_fraction * trace(C) / d (a dimensionless
  /// knob; 0.01 is a good default -- the snapshot's memoized scorer uses
  /// the store's configured fraction). Fails on an empty ref or a
  /// non-positive fraction.
  static StatusOr<AnomalyScorer> FromSnapshot(const serve::SnapshotRef& ref,
                                              double lambda_fraction = 0.01);

  /// score(x) = x^T (C + lambda I)^{-1} x; O(d^2).
  double Score(const double* x) const;

  /// The ridge actually used.
  double lambda() const { return lambda_; }
  int dim() const { return static_cast<int>(inverse_eigenvalues_.size()); }

 private:
  friend class serve::Snapshot;

  /// Publication-path constructor: `est` must be sealed (its Covariance()
  /// and Eigen() caches populated), and must outlive the scorer.
  static StatusOr<AnomalyScorer> ForSealedEstimate(
      const CovarianceEstimate& est, double lambda_fraction);

  const EigenResult* eig_ = nullptr;  // borrowed from the estimate's cache
  std::vector<double> inverse_eigenvalues_;
  double lambda_ = 0.0;
};

}  // namespace dswm

#endif  // DSWM_ANALYTICS_ANOMALY_SCORER_H_
