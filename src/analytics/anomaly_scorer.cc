#include "analytics/anomaly_scorer.h"

#include <algorithm>
#include <utility>

#include "core/covariance_estimate.h"

namespace dswm {

StatusOr<AnomalyScorer> AnomalyScorer::Build(const Matrix& covariance,
                                             double lambda_fraction) {
  if (lambda_fraction <= 0.0) {
    return Status::InvalidArgument("lambda_fraction must be > 0");
  }
  const int d = covariance.rows();
  if (d == 0) return Status::InvalidArgument("empty covariance");
  return BuildFromEigen(covariance, SymmetricEigen(covariance),
                        lambda_fraction);
}

StatusOr<AnomalyScorer> AnomalyScorer::BuildFromEigen(const Matrix& covariance,
                                                      EigenResult eig,
                                                      double lambda_fraction) {
  const int d = covariance.rows();
  double trace = 0.0;
  for (int j = 0; j < d; ++j) trace += std::max(covariance(j, j), 0.0);
  AnomalyScorer scorer;
  scorer.lambda_ = std::max(lambda_fraction * trace / d, 1e-300);
  scorer.eig_ = std::move(eig);
  scorer.inverse_eigenvalues_.resize(d);
  for (int i = 0; i < d; ++i) {
    scorer.inverse_eigenvalues_[i] =
        1.0 / (std::max(scorer.eig_.values[i], 0.0) + scorer.lambda_);
  }
  return scorer;
}

StatusOr<AnomalyScorer> AnomalyScorer::FromEstimate(
    const CovarianceEstimate& est, double lambda_fraction) {
  if (lambda_fraction <= 0.0) {
    return Status::InvalidArgument("lambda_fraction must be > 0");
  }
  if (est.Dim() == 0) return Status::InvalidArgument("empty estimate");
  return BuildFromEigen(est.Covariance(), est.Eigen(), lambda_fraction);
}

StatusOr<AnomalyScorer> AnomalyScorer::FromCovariance(
    const Matrix& covariance, double lambda_fraction) {
  if (covariance.rows() != covariance.cols()) {
    return Status::InvalidArgument("covariance must be square");
  }
  return Build(covariance, lambda_fraction);
}

StatusOr<AnomalyScorer> AnomalyScorer::FromSketch(const Matrix& sketch,
                                                  double lambda_fraction) {
  if (sketch.rows() == 0 || sketch.cols() == 0) {
    return Status::InvalidArgument("empty sketch");
  }
  return Build(GramTranspose(sketch), lambda_fraction);
}

double AnomalyScorer::Score(const double* x) const {
  const int d = dim();
  double s = 0.0;
  for (int i = 0; i < d; ++i) {
    const double c = Dot(eig_.vectors.Row(i), x, d);
    s += inverse_eigenvalues_[i] * c * c;
  }
  return s;
}

}  // namespace dswm
