#include "analytics/anomaly_scorer.h"

#include <algorithm>

#include "core/covariance_estimate.h"
#include "linalg/matrix.h"
#include "serve/snapshot_store.h"

namespace dswm {

StatusOr<AnomalyScorer> AnomalyScorer::ForSealedEstimate(
    const CovarianceEstimate& est, double lambda_fraction) {
  if (lambda_fraction <= 0.0) {
    return Status::InvalidArgument("lambda_fraction must be > 0");
  }
  const int d = est.Dim();
  if (d == 0) return Status::InvalidArgument("empty estimate");
  const Matrix& covariance = est.Covariance();
  double trace = 0.0;
  for (int j = 0; j < d; ++j) trace += std::max(covariance(j, j), 0.0);
  AnomalyScorer scorer;
  scorer.lambda_ = std::max(lambda_fraction * trace / d, 1e-300);
  scorer.eig_ = &est.Eigen();
  scorer.inverse_eigenvalues_.resize(static_cast<size_t>(d));
  for (int i = 0; i < d; ++i) {
    scorer.inverse_eigenvalues_[static_cast<size_t>(i)] =
        1.0 / (std::max(scorer.eig_->values[static_cast<size_t>(i)], 0.0) +
               scorer.lambda_);
  }
  return scorer;
}

StatusOr<AnomalyScorer> AnomalyScorer::FromSnapshot(
    const serve::SnapshotRef& ref, double lambda_fraction) {
  if (!ref.has_value()) {
    return Status::InvalidArgument("empty snapshot ref");
  }
  return ForSealedEstimate(ref->estimate(), lambda_fraction);
}

double AnomalyScorer::Score(const double* x) const {
  const int d = dim();
  double s = 0.0;
  for (int i = 0; i < d; ++i) {
    const double c = Dot(eig_->vectors.Row(i), x, d);
    s += inverse_eigenvalues_[static_cast<size_t>(i)] * c * c;
  }
  return s;
}

}  // namespace dswm
