#include "analytics/change_detector.h"

#include <utility>

#include "serve/snapshot_store.h"

namespace dswm {

StatusOr<ChangeDetector> ChangeDetector::FromSnapshot(
    const serve::SnapshotRef& reference, const ChangeDetectorOptions& options) {
  if (options.components < 1) {
    return Status::InvalidArgument("components must be >= 1");
  }
  if (options.calibration_updates < 1) {
    return Status::InvalidArgument("calibration_updates must be >= 1");
  }
  auto pca = ApproxPca::FromSnapshot(reference, options.components);
  DSWM_RETURN_NOT_OK(pca.status());
  if (pca.value().components() == 0) {
    return Status::FailedPrecondition("reference snapshot has rank 0");
  }
  ChangeDetector detector;
  detector.options_ = options;
  detector.reference_ = std::move(pca).value();
  detector.reference_version_ = reference.meta().version;
  return detector;
}

StatusOr<double> ChangeDetector::Update(const serve::SnapshotRef& current) {
  auto pca = ApproxPca::FromSnapshot(current, options_.components);
  DSWM_RETURN_NOT_OK(pca.status());
  const double distance = 1.0 - reference_.Affinity(pca.value());
  last_distance_ = distance;

  if (!calibrated_) {
    baseline_accum_ += distance;
    if (++calibration_seen_ >= options_.calibration_updates) {
      baseline_ = baseline_accum_ / calibration_seen_;
      calibrated_ = true;
    }
    return distance;
  }
  if (distance > options_.threshold_multiplier * baseline_ +
                     options_.threshold_offset) {
    change_detected_ = true;
  }
  return distance;
}

void ChangeDetector::Reset() {
  calibrated_ = false;
  calibration_seen_ = 0;
  baseline_accum_ = 0.0;
  baseline_ = 0.0;
  last_distance_ = 0.0;
  change_detected_ = false;
}

}  // namespace dswm
