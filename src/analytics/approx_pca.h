// Approximate PCA from a published covariance snapshot.
//
// The paper's motivating application 1 (Section I): the top-k right
// singular vectors of an eps-covariance sketch B span a subspace whose
// captured variance is within eps * ||A||_F^2 of the optimal PCA basis of
// A [14]. This module turns a pinned snapshot into a PCA basis, explained
// variances, projections, and subspace comparisons. The basis is read off
// the snapshot's cached eigendecomposition (eigenvectors of B^T B are the
// right singular vectors of B), so construction is O(k d) copying -- the
// O(d^3) decomposition was paid once at publication.

#ifndef DSWM_ANALYTICS_APPROX_PCA_H_
#define DSWM_ANALYTICS_APPROX_PCA_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"

namespace dswm {

namespace serve {
class Snapshot;
class SnapshotRef;
}  // namespace serve

/// A rank-k PCA basis extracted from a snapshot. Owns its basis rows, so
/// it may outlive the pin it was built from (ChangeDetector freezes one as
/// its reference).
class ApproxPca {
 public:
  /// An empty basis (0 components); useful as a placeholder before
  /// FromSnapshot.
  ApproxPca() = default;

  /// The top-k principal directions of the pinned snapshot. Fails if
  /// k < 1 or the ref is empty; retains fewer than k components when the
  /// estimate has lower numerical rank.
  static StatusOr<ApproxPca> FromSnapshot(const serve::SnapshotRef& ref,
                                          int k);

  /// Number of retained components (<= requested k).
  int components() const { return basis_.rows(); }
  int dim() const { return basis_.cols(); }

  /// Row i is the i-th principal direction (unit vector).
  const Matrix& basis() const { return basis_; }

  /// Variance along each retained direction (sigma_i^2 of the sketch),
  /// descending.
  const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }

  /// Fraction of the estimate's total variance captured by the basis,
  /// in [0, 1].
  double captured_fraction() const { return captured_fraction_; }

  /// Projects x (length d) onto the basis; returns k coefficients.
  std::vector<double> Project(const double* x) const;

  /// Squared reconstruction error of x under the basis:
  /// ||x||^2 - ||Project(x)||^2.
  double ReconstructionError(const double* x) const;

  /// Subspace affinity with another basis over the same R^d:
  /// (1/k) sum of squared principal cosines, in [0, 1]; 1 = identical
  /// subspaces. The complement (1 - affinity) is the change-detection
  /// signal.
  double Affinity(const ApproxPca& other) const;

 private:
  friend class serve::Snapshot;

  /// Publication-path constructor: reads the top-k eigenpairs of a cached
  /// eigendecomposition. Eigenvalues below 1e-12 of the largest count as
  /// numerical rank deficiency and are dropped.
  static StatusOr<ApproxPca> FromEigenbasis(const EigenResult& eig, int dim,
                                            int k);

  Matrix basis_;
  std::vector<double> explained_variance_;
  double captured_fraction_ = 0.0;
};

}  // namespace dswm

#endif  // DSWM_ANALYTICS_APPROX_PCA_H_
