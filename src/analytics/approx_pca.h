// Approximate PCA from a covariance sketch.
//
// The paper's motivating application 1 (Section I): the top-k right
// singular vectors of an eps-covariance sketch B span a subspace whose
// captured variance is within eps * ||A||_F^2 of the optimal PCA basis of
// A [14]. This module turns a tracked sketch into a PCA basis, explained
// variances, projections, and subspace comparisons.

#ifndef DSWM_ANALYTICS_APPROX_PCA_H_
#define DSWM_ANALYTICS_APPROX_PCA_H_

#include <vector>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dswm {

/// A rank-k PCA basis extracted from a sketch.
class ApproxPca {
 public:
  /// An empty basis (0 components); useful as a placeholder before
  /// FromSketch.
  ApproxPca() = default;

  /// Computes the top-k principal directions of sketch B (rows x d).
  /// Fails if k < 1; retains fewer than k components when the sketch has
  /// lower rank.
  static StatusOr<ApproxPca> FromSketch(const Matrix& sketch, int k);

  /// Number of retained components (<= requested k).
  int components() const { return basis_.rows(); }
  int dim() const { return basis_.cols(); }

  /// Row i is the i-th principal direction (unit vector).
  const Matrix& basis() const { return basis_; }

  /// Variance along each retained direction (sigma_i^2 of the sketch),
  /// descending.
  const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }

  /// Fraction of the sketch's total variance captured by the basis,
  /// in [0, 1].
  double captured_fraction() const { return captured_fraction_; }

  /// Projects x (length d) onto the basis; returns k coefficients.
  std::vector<double> Project(const double* x) const;

  /// Squared reconstruction error of x under the basis:
  /// ||x||^2 - ||Project(x)||^2.
  double ReconstructionError(const double* x) const;

  /// Subspace affinity with another basis over the same R^d:
  /// (1/k) sum of squared principal cosines, in [0, 1]; 1 = identical
  /// subspaces. The complement (1 - affinity) is the change-detection
  /// signal.
  double Affinity(const ApproxPca& other) const;

 private:
  Matrix basis_;
  std::vector<double> explained_variance_;
  double captured_fraction_ = 0.0;
};

}  // namespace dswm

#endif  // DSWM_ANALYTICS_APPROX_PCA_H_
