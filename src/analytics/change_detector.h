// PCA-based change detection over published snapshots
// (paper Section I application 1; cf. Qahtan et al. [24]).
//
// A reference PCA basis is frozen from a pinned snapshot; afterwards,
// each Update() compares the current version's basis to it and raises a
// change when the subspace distance (1 - mean squared principal cosine)
// exceeds an adaptive threshold calibrated from the quiet period. The
// detector deep-copies the reference basis, so it remains valid after the
// reference pin is released.

#ifndef DSWM_ANALYTICS_CHANGE_DETECTOR_H_
#define DSWM_ANALYTICS_CHANGE_DETECTOR_H_

#include <cstdint>

#include "analytics/approx_pca.h"
#include "common/status.h"

namespace dswm {

/// Options for ChangeDetector.
struct ChangeDetectorOptions {
  /// PCA components to monitor.
  int components = 8;
  /// Updates used to calibrate the quiet-period baseline before any
  /// change can be raised.
  int calibration_updates = 5;
  /// Raise when distance > multiplier * baseline + offset.
  double threshold_multiplier = 3.0;
  double threshold_offset = 0.05;
};

/// Streaming change detector over published covariance snapshots.
class ChangeDetector {
 public:
  /// Creates a detector with a frozen reference basis extracted from the
  /// pinned snapshot (typically the version published at the end of the
  /// reference window).
  static StatusOr<ChangeDetector> FromSnapshot(
      const serve::SnapshotRef& reference, const ChangeDetectorOptions& options);

  /// Feeds the current testing-window snapshot; returns the subspace
  /// distance in [0, 1] and updates the change flag.
  StatusOr<double> Update(const serve::SnapshotRef& current);

  /// True once a change has been raised (sticky until Reset()).
  bool change_detected() const { return change_detected_; }

  /// Distance from the most recent Update().
  double last_distance() const { return last_distance_; }

  /// Baseline distance learned during calibration (0 until calibrated).
  double baseline() const { return calibrated_ ? baseline_ : 0.0; }

  /// Version of the snapshot the reference basis was frozen from.
  uint64_t reference_version() const { return reference_version_; }

  /// Clears the change flag and re-enters calibration (keeps the
  /// reference basis).
  void Reset();

 private:
  ChangeDetector() = default;

  ChangeDetectorOptions options_;
  ApproxPca reference_;
  uint64_t reference_version_ = 0;
  bool calibrated_ = false;
  int calibration_seen_ = 0;
  double baseline_accum_ = 0.0;
  double baseline_ = 0.0;
  double last_distance_ = 0.0;
  bool change_detected_ = false;
};

}  // namespace dswm

#endif  // DSWM_ANALYTICS_CHANGE_DETECTOR_H_
