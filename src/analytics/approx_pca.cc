#include "analytics/approx_pca.h"

#include <algorithm>
#include <cmath>

#include "serve/snapshot_store.h"

namespace dswm {

StatusOr<ApproxPca> ApproxPca::FromEigenbasis(const EigenResult& eig, int dim,
                                              int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (dim == 0) return Status::InvalidArgument("estimate has no columns");

  ApproxPca pca;
  double total = 0.0;
  for (double v : eig.values) total += std::max(v, 0.0);
  // Eigenvalues at the gram-route noise floor are numerical rank
  // deficiency, not signal; the relative tolerance matches PsdSqrt's.
  const double tol =
      eig.values.empty() ? 0.0 : std::max(eig.values[0], 0.0) * 1e-12;

  const int keep = std::min<int>(k, static_cast<int>(eig.values.size()));
  double captured = 0.0;
  pca.basis_ = Matrix(0, dim);
  for (int i = 0; i < keep; ++i) {
    const double v = eig.values[static_cast<size_t>(i)];
    if (v <= 0.0 || v <= tol) break;
    pca.basis_.AppendRow(eig.vectors.Row(i), dim);
    pca.explained_variance_.push_back(v);
    captured += v;
  }
  pca.captured_fraction_ = total > 0.0 ? captured / total : 0.0;
  return pca;
}

StatusOr<ApproxPca> ApproxPca::FromSnapshot(const serve::SnapshotRef& ref,
                                            int k) {
  if (!ref.has_value()) {
    return Status::InvalidArgument("empty snapshot ref");
  }
  return FromEigenbasis(ref->estimate().Eigen(), ref->dim(), k);
}

std::vector<double> ApproxPca::Project(const double* x) const {
  std::vector<double> coeffs(basis_.rows());
  MatVec(basis_, x, coeffs.data());
  return coeffs;
}

double ApproxPca::ReconstructionError(const double* x) const {
  const std::vector<double> coeffs = Project(x);
  const double projected =
      NormSquared(coeffs.data(), static_cast<int>(coeffs.size()));
  return std::max(0.0, NormSquared(x, dim()) - projected);
}

double ApproxPca::Affinity(const ApproxPca& other) const {
  DSWM_CHECK_EQ(dim(), other.dim());
  if (components() == 0 || other.components() == 0) return 0.0;
  // sum of squared principal cosines = ||U V^T||_F^2 for orthonormal row
  // bases U, V.
  double sum = 0.0;
  std::vector<double> coeffs(basis_.rows());
  for (int i = 0; i < other.basis_.rows(); ++i) {
    MatVec(basis_, other.basis_.Row(i), coeffs.data());
    sum += NormSquared(coeffs.data(), basis_.rows());
  }
  return sum / std::min(components(), other.components());
}

}  // namespace dswm
