#include "analytics/approx_pca.h"

#include <algorithm>
#include <cmath>

#include "linalg/svd.h"

namespace dswm {

StatusOr<ApproxPca> ApproxPca::FromSketch(const Matrix& sketch, int k) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (sketch.cols() == 0) {
    return Status::InvalidArgument("sketch has no columns");
  }

  ApproxPca pca;
  const RightSvdResult svd = RightSvd(sketch);
  double total = 0.0;
  for (double s2 : svd.sigma_squared) total += s2;

  const int keep = std::min<int>(k, static_cast<int>(svd.sigma_squared.size()));
  int r = 0;
  double captured = 0.0;
  pca.basis_ = Matrix(0, sketch.cols());
  for (int i = 0; i < keep; ++i) {
    if (svd.sigma_squared[i] <= 0.0) break;
    pca.basis_.AppendRow(svd.vt.Row(i), sketch.cols());
    pca.explained_variance_.push_back(svd.sigma_squared[i]);
    captured += svd.sigma_squared[i];
    ++r;
  }
  pca.captured_fraction_ = total > 0.0 ? captured / total : 0.0;
  return pca;
}

std::vector<double> ApproxPca::Project(const double* x) const {
  std::vector<double> coeffs(basis_.rows());
  MatVec(basis_, x, coeffs.data());
  return coeffs;
}

double ApproxPca::ReconstructionError(const double* x) const {
  const std::vector<double> coeffs = Project(x);
  const double projected =
      NormSquared(coeffs.data(), static_cast<int>(coeffs.size()));
  return std::max(0.0, NormSquared(x, dim()) - projected);
}

double ApproxPca::Affinity(const ApproxPca& other) const {
  DSWM_CHECK_EQ(dim(), other.dim());
  if (components() == 0 || other.components() == 0) return 0.0;
  // sum of squared principal cosines = ||U V^T||_F^2 for orthonormal row
  // bases U, V.
  double sum = 0.0;
  std::vector<double> coeffs(basis_.rows());
  for (int i = 0; i < other.basis_.rows(); ++i) {
    MatVec(basis_, other.basis_.Row(i), coeffs.data());
    sum += NormSquared(coeffs.data(), basis_.rows());
  }
  return sum / std::min(components(), other.components());
}

}  // namespace dswm
