#include "sampling/site_queue.h"

#include <algorithm>

namespace dswm {

SiteSampleQueue::SiteSampleQueue(int ell, Timestamp window)
    : ell_(ell), window_(window) {
  DSWM_CHECK_GE(ell, 1);
  DSWM_CHECK_GT(window, 0);
}

void SiteSampleQueue::NoteArrival(double bucket_value) {
  counter_.Add(bucket_value);
}

void SiteSampleQueue::Enqueue(TimedRow row, double key, double bucket_value) {
  Stored stored;
  stored.entry.row = std::move(row);
  stored.entry.key = key;
  stored.entry.above_at_arrival = counter_.CountStrictlyAbove(bucket_value);
  stored.bucket_value = bucket_value;
  entries_.push_back(std::move(stored));
  auto it = std::prev(entries_.end());
  by_key_.emplace(key, it);

  // Amortized pruning: a full dominance pass costs O(|Q|), so run it only
  // when the queue has grown past twice its last pruned size.
  if (entries_.size() >= std::max<size_t>(2 * last_prune_size_, 64)) {
    PruneDominated();
    last_prune_size_ = entries_.size();
  }
}

void SiteSampleQueue::EraseKeyIndex(EntryList::iterator it) {
  auto range = by_key_.equal_range(it->entry.key);
  for (auto k = range.first; k != range.second; ++k) {
    if (k->second == it) {
      by_key_.erase(k);
      return;
    }
  }
  DSWM_CHECK(false);  // index out of sync
}

void SiteSampleQueue::PruneDominated() {
  for (auto it = entries_.begin(); it != entries_.end();) {
    const long dominated =
        counter_.CountStrictlyAbove(it->bucket_value) -
        it->entry.above_at_arrival;
    if (dominated >= ell_) {
      EraseKeyIndex(it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
}

void SiteSampleQueue::Expire(Timestamp t_now) {
  const Timestamp cutoff = t_now - window_;
  while (!entries_.empty() &&
         entries_.front().entry.row.timestamp <= cutoff) {
    EraseKeyIndex(entries_.begin());
    entries_.pop_front();
  }
}

std::vector<SiteEntry> SiteSampleQueue::TakeAtLeast(double tau) {
  std::vector<SiteEntry> out;
  auto it = by_key_.lower_bound(tau);
  while (it != by_key_.end()) {
    out.push_back(std::move(it->second->entry));
    entries_.erase(it->second);
    it = by_key_.erase(it);
  }
  return out;
}

double SiteSampleQueue::MaxKey(double fallback) const {
  if (by_key_.empty()) return fallback;
  return by_key_.rbegin()->first;
}

SiteEntry SiteSampleQueue::PopMax() {
  DSWM_CHECK(!by_key_.empty());
  auto it = std::prev(by_key_.end());
  SiteEntry entry = std::move(it->second->entry);
  entries_.erase(it->second);
  by_key_.erase(it);
  return entry;
}

}  // namespace dswm
