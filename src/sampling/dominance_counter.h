// Quantized dominance counting for l-dominance pruning (Definition 1).
//
// A queued row may be discarded once l later rows at the same site carry
// strictly higher priority. Exact per-arrival counting is O(|Q|); instead,
// keys are quantized into log-scale buckets (8 per octave) and a Fenwick
// tree counts arrivals per bucket. A row's dominance lower bound is
// "arrivals in strictly higher buckets since it was queued" -- never an
// overcount, so pruning on it never discards a potential top-l row; it can
// only keep rows slightly longer (same-octant near-ties), preserving the
// O(l log(NR)) space bound up to a small constant.

#ifndef DSWM_SAMPLING_DOMINANCE_COUNTER_H_
#define DSWM_SAMPLING_DOMINANCE_COUNTER_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace dswm {

/// Fenwick-tree counter of arrivals by quantized key bucket.
class DominanceCounter {
 public:
  DominanceCounter() : tree_(kSlots + 1, 0) {}

  /// Records an arrival with the given positive bucket value
  /// (KeyBucketValue of its key).
  void Add(double bucket_value) {
    ++total_;
    for (int i = BucketIndex(bucket_value) + 1; i <= kSlots; i += i & (-i)) {
      ++tree_[i];
    }
  }

  /// Number of recorded arrivals in strictly higher buckets than
  /// `bucket_value`'s bucket.
  [[nodiscard]] long CountStrictlyAbove(double bucket_value) const {
    long prefix = 0;  // arrivals in buckets <= this one
    for (int i = BucketIndex(bucket_value) + 1; i > 0; i -= i & (-i)) {
      prefix += tree_[i];
    }
    return total_ - prefix;
  }

  [[nodiscard]] long total() const { return total_; }

  /// Words of memory (for space accounting; fixed).
  [[nodiscard]] long SpaceWords() const { return static_cast<long>(tree_.size()); }

 private:
  // 8 sub-buckets per octave over log2 in [-256, 256).
  static constexpr int kPerOctave = 8;
  static constexpr int kLogRange = 256;
  static constexpr int kSlots = 2 * kLogRange * kPerOctave;  // 4096

  static int BucketIndex(double v) {
    DSWM_DCHECK_GT(v, 0.0);
    const int idx =
        static_cast<int>(std::floor(std::log2(v) * kPerOctave)) +
        kLogRange * kPerOctave;
    return std::clamp(idx, 0, kSlots - 1);
  }

  std::vector<long> tree_;
  long total_ = 0;
};

}  // namespace dswm

#endif  // DSWM_SAMPLING_DOMINANCE_COUNTER_H_
