#include "sampling/scaled_rows.h"

#include "linalg/batched.h"

namespace dswm {

Matrix MaterializeScaledRows(
    const std::vector<const TimedRow*>& rows, int dim,
    const std::function<double(int, double)>& scale_of) {
  const int k = static_cast<int>(rows.size());
  Matrix sketch_rows(k, dim);
  BatchedDispatch(k, [&rows, &scale_of, &sketch_rows, dim](int i) {
    const TimedRow& row = *rows[i];
    const double scale = scale_of(i, row.NormSquared());
    const double* src = row.values.data();
    double* dst = sketch_rows.Row(i);
    for (int j = 0; j < dim; ++j) dst[j] = scale * src[j];
  });
  return sketch_rows;
}

}  // namespace dswm
