// Per-site local queue of rows waiting to (possibly) join the sample
// (Algorithm 1, lines 5-11).
//
// A row is queued when its priority is below the current threshold tau. It
// leaves the queue when it (a) expires, (b) becomes right-l-dominated
// (Definition 1; counted via DominanceCounter), or (c) qualifies after a
// threshold decrease and is shipped to the coordinator.

#ifndef DSWM_SAMPLING_SITE_QUEUE_H_
#define DSWM_SAMPLING_SITE_QUEUE_H_

#include <list>
#include <map>
#include <vector>

#include "sampling/dominance_counter.h"
#include "stream/timed_row.h"

namespace dswm {

/// A queued row with its priority key.
struct SiteEntry {
  TimedRow row;
  double key;
  long above_at_arrival;  // DominanceCounter::CountStrictlyAbove at enqueue
};

/// Local queue with l-dominance pruning and by-key access.
class SiteSampleQueue {
 public:
  /// Queue for a site: prune rows dominated by `ell` later arrivals;
  /// expire rows older than `window` ticks.
  SiteSampleQueue(int ell, Timestamp window);

  /// Records an arrival's key (every arrival at this site, including rows
  /// sent straight to the coordinator) for dominance accounting.
  /// `bucket_value` = KeyBucketValue(scheme, key).
  void NoteArrival(double bucket_value);

  /// Queues a row whose key was below tau. `bucket_value` as above.
  void Enqueue(TimedRow row, double key, double bucket_value);

  /// Drops expired entries as of t_now.
  void Expire(Timestamp t_now);

  /// Removes and returns all entries with key >= tau (threshold decrease;
  /// Algorithm 2 lines 13-16).
  std::vector<SiteEntry> TakeAtLeast(double tau);

  /// True if any entry is queued.
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] int size() const { return static_cast<int>(entries_.size()); }

  /// Largest queued key, or `fallback` when empty.
  [[nodiscard]] double MaxKey(double fallback) const;

  /// Removes and returns the entry with the largest key; requires
  /// !empty().
  SiteEntry PopMax();

  /// Current space in words: queued rows * (d + 3) + the dominance
  /// counter.
  [[nodiscard]] long SpaceWords(int dim) const {
    return static_cast<long>(entries_.size()) * (dim + 3) +
           counter_.SpaceWords();
  }

 private:
  struct Stored {
    SiteEntry entry;
    double bucket_value;
  };
  using EntryList = std::list<Stored>;

  void PruneDominated();
  void EraseKeyIndex(EntryList::iterator it);

  int ell_;
  Timestamp window_;
  DominanceCounter counter_;
  EntryList entries_;  // arrival order: front = oldest
  std::multimap<double, EntryList::iterator> by_key_;
  size_t last_prune_size_ = 0;
};

}  // namespace dswm

#endif  // DSWM_SAMPLING_SITE_QUEUE_H_
