// Priority-key policies for weighted sampling without replacement.
//
// Both classic schemes fit one framework (Section II): assign each row a
// random key from its weight w = ||a||^2, track the top-l keys.
//   * Priority sampling (Duffield-Lund-Thorup [26]): key = w / u.
//   * ES sampling (Efraimidis-Spirakis [27]): key = u^{1/w}, kept in the
//     log domain (log(u)/w) for numerical stability; ordering is
//     preserved and "halving" the raw threshold is subtracting log 2.

#ifndef DSWM_SAMPLING_PRIORITY_H_
#define DSWM_SAMPLING_PRIORITY_H_

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace dswm {

/// Which weighted-sampling key scheme a protocol uses.
enum class SamplingScheme { kPriority, kEfraimidisSpirakis };

/// Draws the random priority key for a row of weight w (> 0). Larger keys
/// win. ES keys are log-domain and negative; priority keys are positive.
[[nodiscard]] inline double DrawKey(SamplingScheme scheme, double weight, Rng* rng) {
  const double u = rng->NextOpenDouble();
  if (scheme == SamplingScheme::kPriority) return weight / u;
  return std::log(u) / weight;  // log of u^{1/w}
}

/// Sentinel threshold that admits every key (protocol start / fallback).
[[nodiscard]] inline double LowestThreshold(SamplingScheme scheme) {
  if (scheme == SamplingScheme::kPriority) return 0.0;
  return -std::numeric_limits<double>::infinity();
}

/// Halves the raw threshold (Algorithm 2's tau = tau/2). For log-domain ES
/// keys this subtracts log 2. Idempotent at the lowest threshold.
[[nodiscard]] inline double RelaxThreshold(SamplingScheme scheme, double tau) {
  if (scheme == SamplingScheme::kPriority) return tau * 0.5;
  return tau - 0.6931471805599453;  // ln 2
}

/// Monotone map from a key to a positive value, used to quantize keys into
/// log-scale buckets for dominance counting. Larger key -> larger value.
[[nodiscard]] inline double KeyBucketValue(SamplingScheme scheme, double key) {
  if (scheme == SamplingScheme::kPriority) return key;
  // ES log-domain keys are negative; -1/key is positive and increasing.
  return -1.0 / key;
}

}  // namespace dswm

#endif  // DSWM_SAMPLING_PRIORITY_H_
