// Coordinator-side sample sets S (top-l samples) and S' (candidates),
// ordered by priority key with timestamp-based expiry.

#ifndef DSWM_SAMPLING_SAMPLE_SET_H_
#define DSWM_SAMPLING_SAMPLE_SET_H_

#include <map>
#include <vector>

#include "stream/timed_row.h"

namespace dswm {

/// A sampled row held by the coordinator.
struct CoordEntry {
  TimedRow row;
  double key;
};

/// Multiset of (key, row) with expiry; front of the key order is the
/// minimum priority.
class KeyedSampleSet {
 public:
  void Insert(CoordEntry entry);

  /// Removes entries with timestamp <= cutoff; returns how many.
  int ExpireBefore(Timestamp cutoff);

  [[nodiscard]] int size() const { return static_cast<int>(by_key_.size()); }
  [[nodiscard]] bool empty() const { return by_key_.empty(); }

  /// Smallest key; requires !empty().
  [[nodiscard]] double MinKey() const;
  /// Largest key, or `fallback` when empty.
  [[nodiscard]] double MaxKey(double fallback) const;
  /// k-th largest key (k >= 1); requires size() >= k. O(k).
  [[nodiscard]] double KthLargestKey(int k) const;

  /// Removes and returns the minimum-key entry; requires !empty().
  CoordEntry PopMin();
  /// Removes and returns the maximum-key entry; requires !empty().
  CoordEntry PopMax();

  /// Removes and returns all entries with key >= tau.
  std::vector<CoordEntry> TakeAtLeast(double tau);
  /// Removes and returns all entries with key < tau.
  std::vector<CoordEntry> TakeBelow(double tau);

  /// Copies the `k` largest-key entries (k <= size()).
  [[nodiscard]] std::vector<const CoordEntry*> TopK(int k) const;
  /// Copies pointers to all entries.
  [[nodiscard]] std::vector<const CoordEntry*> All() const;

 private:
  using KeyMap = std::multimap<double, CoordEntry>;
  // Secondary index: timestamp -> iterator into by_key_ (multimap
  // iterators are stable under unrelated insert/erase).
  using TimeMap = std::multimap<Timestamp, KeyMap::iterator>;

  void EraseTimeIndex(KeyMap::iterator it);

  KeyMap by_key_;
  TimeMap by_time_;
};

}  // namespace dswm

#endif  // DSWM_SAMPLING_SAMPLE_SET_H_
