// Batched materialization of a coordinator sample into sketch rows.
//
// Every sampling tracker's Query() ends the same way: walk the k picked
// rows, compute a per-row rescale from the row's squared norm, and write
// scale * row into a k x d sketch. At d >= 256 that loop is the refill
// hot path, so it runs through the batched engine (linalg/batched.h):
// one pool dispatch for the whole refill, each output row owned by
// exactly one batch index, bit-identical to the sequential loop at any
// thread count.

#ifndef DSWM_SAMPLING_SCALED_ROWS_H_
#define DSWM_SAMPLING_SCALED_ROWS_H_

#include <functional>
#include <vector>

#include "linalg/matrix.h"
#include "stream/timed_row.h"

namespace dswm {

/// Returns the k x dim sketch whose row i is scale_of(i, w_i) * rows[i],
/// where w_i = rows[i]->NormSquared(). scale_of must be pure arithmetic
/// (it is called concurrently from pool workers).
[[nodiscard]] Matrix MaterializeScaledRows(
    const std::vector<const TimedRow*>& rows, int dim,
    const std::function<double(int, double)>& scale_of);

}  // namespace dswm

#endif  // DSWM_SAMPLING_SCALED_ROWS_H_
