#include "sampling/sample_set.h"

#include <utility>

#include "common/check.h"

namespace dswm {

void KeyedSampleSet::Insert(CoordEntry entry) {
  const Timestamp t = entry.row.timestamp;
  auto it = by_key_.emplace(entry.key, std::move(entry));
  by_time_.emplace(t, it);
}

void KeyedSampleSet::EraseTimeIndex(KeyMap::iterator it) {
  auto range = by_time_.equal_range(it->second.row.timestamp);
  for (auto t = range.first; t != range.second; ++t) {
    if (t->second == it) {
      by_time_.erase(t);
      return;
    }
  }
  DSWM_CHECK(false);  // index out of sync
}

int KeyedSampleSet::ExpireBefore(Timestamp cutoff) {
  int removed = 0;
  while (!by_time_.empty() && by_time_.begin()->first <= cutoff) {
    by_key_.erase(by_time_.begin()->second);
    by_time_.erase(by_time_.begin());
    ++removed;
  }
  return removed;
}

double KeyedSampleSet::MinKey() const {
  DSWM_CHECK(!by_key_.empty());
  return by_key_.begin()->first;
}

double KeyedSampleSet::MaxKey(double fallback) const {
  if (by_key_.empty()) return fallback;
  return by_key_.rbegin()->first;
}

double KeyedSampleSet::KthLargestKey(int k) const {
  DSWM_CHECK_GE(k, 1);
  DSWM_CHECK_LE(k, size());
  auto it = by_key_.rbegin();
  for (int i = 1; i < k; ++i) ++it;
  return it->first;
}

CoordEntry KeyedSampleSet::PopMin() {
  DSWM_CHECK(!by_key_.empty());
  auto it = by_key_.begin();
  EraseTimeIndex(it);
  CoordEntry entry = std::move(it->second);
  by_key_.erase(it);
  return entry;
}

CoordEntry KeyedSampleSet::PopMax() {
  DSWM_CHECK(!by_key_.empty());
  auto it = std::prev(by_key_.end());
  EraseTimeIndex(it);
  CoordEntry entry = std::move(it->second);
  by_key_.erase(it);
  return entry;
}

std::vector<CoordEntry> KeyedSampleSet::TakeAtLeast(double tau) {
  std::vector<CoordEntry> out;
  auto it = by_key_.lower_bound(tau);
  while (it != by_key_.end()) {
    EraseTimeIndex(it);
    out.push_back(std::move(it->second));
    it = by_key_.erase(it);
  }
  return out;
}

std::vector<CoordEntry> KeyedSampleSet::TakeBelow(double tau) {
  std::vector<CoordEntry> out;
  auto it = by_key_.begin();
  while (it != by_key_.end() && it->first < tau) {
    EraseTimeIndex(it);
    out.push_back(std::move(it->second));
    it = by_key_.erase(it);
  }
  return out;
}

std::vector<const CoordEntry*> KeyedSampleSet::TopK(int k) const {
  DSWM_CHECK_LE(k, size());
  std::vector<const CoordEntry*> out;
  out.reserve(k);
  auto it = by_key_.rbegin();
  for (int i = 0; i < k; ++i, ++it) out.push_back(&it->second);
  return out;
}

std::vector<const CoordEntry*> KeyedSampleSet::All() const {
  std::vector<const CoordEntry*> out;
  out.reserve(by_key_.size());
  for (const auto& [key, entry] : by_key_) out.push_back(&entry);
  return out;
}

}  // namespace dswm
