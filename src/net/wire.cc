#include "net/wire.h"

#include <cstring>
#include <limits>
#include <string>

namespace dswm::net {

namespace {

// --- little-endian primitives -------------------------------------------

void PutU8(std::vector<uint8_t>* out, uint8_t v) { out->push_back(v); }

void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutI64(std::vector<uint8_t>* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  // Bit-cast through memcpy: exact for every double bit pattern (NaN
  // payloads, +-inf, denormals, signed zero).
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutI32(std::vector<uint8_t>* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

/// Bounds-checked little-endian reader over a frame.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  [[nodiscard]] size_t remaining() const { return size_ - pos_; }

  Status ReadU8(uint8_t* v) {
    DSWM_RETURN_NOT_OK(Need(1));
    *v = data_[pos_++];
    return Status::OK();
  }

  Status ReadU16(uint16_t* v) {
    DSWM_RETURN_NOT_OK(Need(2));
    *v = static_cast<uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return Status::OK();
  }

  Status ReadU32(uint32_t* v) {
    DSWM_RETURN_NOT_OK(Need(4));
    uint32_t r = 0;
    for (int i = 0; i < 4; ++i) r |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    *v = r;
    return Status::OK();
  }

  Status ReadU64(uint64_t* v) {
    DSWM_RETURN_NOT_OK(Need(8));
    uint64_t r = 0;
    for (int i = 0; i < 8; ++i) r |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    *v = r;
    return Status::OK();
  }

  Status ReadI64(int64_t* v) {
    uint64_t u = 0;
    DSWM_RETURN_NOT_OK(ReadU64(&u));
    *v = static_cast<int64_t>(u);
    return Status::OK();
  }

  Status ReadF64(double* v) {
    uint64_t bits = 0;
    DSWM_RETURN_NOT_OK(ReadU64(&bits));
    std::memcpy(v, &bits, sizeof(*v));
    return Status::OK();
  }

  Status ReadI32(int32_t* v) {
    uint32_t u = 0;
    DSWM_RETURN_NOT_OK(ReadU32(&u));
    *v = static_cast<int32_t>(u);
    return Status::OK();
  }

 private:
  Status Need(size_t n) {
    if (remaining() < n) {
      return Status::InvalidArgument("wire: truncated frame (need " +
                                     std::to_string(n) + " bytes, have " +
                                     std::to_string(remaining()) + ")");
    }
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

// RowUpload header flag bits.
constexpr uint8_t kFlagHasKey = 1u << 0;
constexpr uint8_t kFlagHasSampler = 1u << 1;

Status BadFrame(const std::string& why) {
  return Status::InvalidArgument("wire: " + why);
}

}  // namespace

const char* KindName(MessageKind kind) {
  switch (kind) {
    case MessageKind::kRowUpload: return "row_upload";
    case MessageKind::kRetrieveRequest: return "retrieve_request";
    case MessageKind::kRetrieveResponse: return "retrieve_response";
    case MessageKind::kThresholdBroadcast: return "threshold_broadcast";
    case MessageKind::kEigenpair: return "eigenpair";
    case MessageKind::kDa2Delta: return "da2_delta";
    case MessageKind::kSumDelta: return "sum_delta";
    case MessageKind::kExpiryNotice: return "expiry_notice";
    case MessageKind::kAck: return "ack";
  }
  return "unknown";
}

MessageKind KindOf(const WireMessage& msg) {
  struct Visitor {
    MessageKind operator()(const RowUploadMsg&) { return MessageKind::kRowUpload; }
    MessageKind operator()(const RetrieveRequestMsg&) { return MessageKind::kRetrieveRequest; }
    MessageKind operator()(const RetrieveResponseMsg&) { return MessageKind::kRetrieveResponse; }
    MessageKind operator()(const ThresholdBroadcastMsg&) { return MessageKind::kThresholdBroadcast; }
    MessageKind operator()(const EigenpairMsg&) { return MessageKind::kEigenpair; }
    MessageKind operator()(const Da2DeltaMsg&) { return MessageKind::kDa2Delta; }
    MessageKind operator()(const SumDeltaMsg&) { return MessageKind::kSumDelta; }
    MessageKind operator()(const ExpiryNoticeMsg&) { return MessageKind::kExpiryNotice; }
    MessageKind operator()(const AckMsg&) { return MessageKind::kAck; }
  };
  return std::visit(Visitor{}, msg);
}

long PayloadWords(const WireMessage& msg) {
  struct Visitor {
    long operator()(const RowUploadMsg& m) {
      return static_cast<long>(m.values.size()) + 1 + (m.has_key ? 1 : 0) +
             (m.has_sampler ? 1 : 0);
    }
    long operator()(const RetrieveRequestMsg&) { return 1; }
    long operator()(const RetrieveResponseMsg&) { return 1; }
    long operator()(const ThresholdBroadcastMsg&) { return 1; }
    long operator()(const EigenpairMsg& m) {
      return static_cast<long>(m.vector.size()) + 1;
    }
    long operator()(const Da2DeltaMsg& m) {
      return static_cast<long>(m.direction.size()) + 2;
    }
    long operator()(const SumDeltaMsg&) { return 1; }
    long operator()(const ExpiryNoticeMsg&) { return 1; }
    long operator()(const AckMsg&) { return 1; }
  };
  return std::visit(Visitor{}, msg);
}

void SerializeMessage(const WireMessage& msg, std::vector<uint8_t>* out,
                      uint64_t sequence) {
  out->clear();
  const MessageKind kind = KindOf(msg);
  const long words = PayloadWords(msg);
  uint8_t flags = 0;
  uint32_t aux = 0;
  if (const auto* row = std::get_if<RowUploadMsg>(&msg)) {
    if (row->has_key) flags |= kFlagHasKey;
    if (row->has_sampler) flags |= kFlagHasSampler;
    aux = static_cast<uint32_t>(row->support.size());
  }
  out->reserve(kFrameHeaderBytes + 8 * static_cast<size_t>(words) + 4 * aux);
  PutU8(out, static_cast<uint8_t>(kind));
  PutU8(out, flags);
  PutU16(out, kWireFormatVersion);
  PutU32(out, static_cast<uint32_t>(words));
  PutU32(out, aux);
  PutU64(out, sequence);

  struct Visitor {
    std::vector<uint8_t>* out;
    void operator()(const RowUploadMsg& m) {
      for (double v : m.values) PutF64(out, v);
      PutI64(out, m.timestamp);
      if (m.has_key) PutF64(out, m.key);
      if (m.has_sampler) PutI64(out, m.sampler);
      for (int idx : m.support) PutI32(out, idx);
    }
    void operator()(const RetrieveRequestMsg& m) { PutF64(out, m.bound); }
    void operator()(const RetrieveResponseMsg& m) { PutF64(out, m.key); }
    void operator()(const ThresholdBroadcastMsg& m) { PutF64(out, m.threshold); }
    void operator()(const EigenpairMsg& m) {
      PutF64(out, m.lambda);
      for (double v : m.vector) PutF64(out, v);
    }
    void operator()(const Da2DeltaMsg& m) {
      for (double v : m.direction) PutF64(out, v);
      PutI64(out, m.timestamp);
      PutI64(out, m.flag);
    }
    void operator()(const SumDeltaMsg& m) { PutF64(out, m.delta); }
    void operator()(const ExpiryNoticeMsg& m) { PutI64(out, m.cutoff); }
    void operator()(const AckMsg& m) { PutU64(out, m.sequence); }
  };
  std::visit(Visitor{out}, msg);
}

namespace {

StatusOr<WireMessage> ParseBody(Reader& r, MessageKind kind, uint8_t flags,
                                uint32_t words, uint32_t aux) {
  switch (kind) {
    case MessageKind::kRowUpload: {
      RowUploadMsg m;
      m.has_key = (flags & kFlagHasKey) != 0;
      m.has_sampler = (flags & kFlagHasSampler) != 0;
      if ((flags & ~(kFlagHasKey | kFlagHasSampler)) != 0) {
        return BadFrame("unknown row-upload flags");
      }
      const long fixed = 1 + (m.has_key ? 1 : 0) + (m.has_sampler ? 1 : 0);
      if (static_cast<long>(words) < fixed) {
        return BadFrame("row upload shorter than its fixed fields");
      }
      const long d = static_cast<long>(words) - fixed;
      m.values.resize(static_cast<size_t>(d));
      for (double& v : m.values) DSWM_RETURN_NOT_OK(r.ReadF64(&v));
      DSWM_RETURN_NOT_OK(r.ReadI64(&m.timestamp));
      if (m.has_key) DSWM_RETURN_NOT_OK(r.ReadF64(&m.key));
      if (m.has_sampler) DSWM_RETURN_NOT_OK(r.ReadI64(&m.sampler));
      m.support.resize(aux);
      for (int& idx : m.support) {
        int32_t raw = 0;
        DSWM_RETURN_NOT_OK(r.ReadI32(&raw));
        if (raw < 0 || raw >= d) {
          return BadFrame("support index " + std::to_string(raw) +
                          " out of range for d=" + std::to_string(d));
        }
        idx = raw;
      }
      return WireMessage(std::move(m));
    }
    case MessageKind::kRetrieveRequest: {
      if (words != 1) return BadFrame("retrieve request must be 1 word");
      RetrieveRequestMsg m;
      DSWM_RETURN_NOT_OK(r.ReadF64(&m.bound));
      return WireMessage(m);
    }
    case MessageKind::kRetrieveResponse: {
      if (words != 1) return BadFrame("retrieve response must be 1 word");
      RetrieveResponseMsg m;
      DSWM_RETURN_NOT_OK(r.ReadF64(&m.key));
      return WireMessage(m);
    }
    case MessageKind::kThresholdBroadcast: {
      if (words != 1) return BadFrame("threshold broadcast must be 1 word");
      ThresholdBroadcastMsg m;
      DSWM_RETURN_NOT_OK(r.ReadF64(&m.threshold));
      return WireMessage(m);
    }
    case MessageKind::kEigenpair: {
      if (words < 1) return BadFrame("eigenpair missing lambda");
      EigenpairMsg m;
      DSWM_RETURN_NOT_OK(r.ReadF64(&m.lambda));
      m.vector.resize(words - 1);
      for (double& v : m.vector) DSWM_RETURN_NOT_OK(r.ReadF64(&v));
      return WireMessage(std::move(m));
    }
    case MessageKind::kDa2Delta: {
      if (words < 2) return BadFrame("da2 delta missing timestamp/flag");
      Da2DeltaMsg m;
      m.direction.resize(words - 2);
      for (double& v : m.direction) DSWM_RETURN_NOT_OK(r.ReadF64(&v));
      DSWM_RETURN_NOT_OK(r.ReadI64(&m.timestamp));
      int64_t flag = 0;
      DSWM_RETURN_NOT_OK(r.ReadI64(&flag));
      if (flag != 1 && flag != -1) {
        return BadFrame("da2 delta flag must be +1 or -1");
      }
      m.flag = static_cast<int>(flag);
      return WireMessage(std::move(m));
    }
    case MessageKind::kSumDelta: {
      if (words != 1) return BadFrame("sum delta must be 1 word");
      SumDeltaMsg m;
      DSWM_RETURN_NOT_OK(r.ReadF64(&m.delta));
      return WireMessage(m);
    }
    case MessageKind::kExpiryNotice: {
      if (words != 1) return BadFrame("expiry notice must be 1 word");
      ExpiryNoticeMsg m;
      DSWM_RETURN_NOT_OK(r.ReadI64(&m.cutoff));
      return WireMessage(m);
    }
    case MessageKind::kAck: {
      if (words != 1) return BadFrame("ack must be 1 word");
      AckMsg m;
      DSWM_RETURN_NOT_OK(r.ReadU64(&m.sequence));
      return WireMessage(m);
    }
  }
  return BadFrame("unhandled message kind");
}

}  // namespace

StatusOr<ParsedFrame> ParseFrame(const uint8_t* data, size_t size) {
  if (data == nullptr && size > 0) return BadFrame("null buffer");
  Reader r(data, size);
  uint8_t kind_raw = 0;
  uint8_t flags = 0;
  uint16_t version = 0;
  uint32_t words = 0;
  uint32_t aux = 0;
  uint64_t sequence = 0;
  DSWM_RETURN_NOT_OK(r.ReadU8(&kind_raw));
  DSWM_RETURN_NOT_OK(r.ReadU8(&flags));
  DSWM_RETURN_NOT_OK(r.ReadU16(&version));
  DSWM_RETURN_NOT_OK(r.ReadU32(&words));
  DSWM_RETURN_NOT_OK(r.ReadU32(&aux));
  DSWM_RETURN_NOT_OK(r.ReadU64(&sequence));
  if (kind_raw < kMinMessageKind || kind_raw > kMaxMessageKind) {
    return BadFrame("unknown message kind " + std::to_string(kind_raw));
  }
  const MessageKind kind = static_cast<MessageKind>(kind_raw);
  if (version != kWireFormatVersion) {
    return BadFrame("unsupported wire format version " +
                    std::to_string(version) + " (expected " +
                    std::to_string(kWireFormatVersion) + ")");
  }
  if (kind != MessageKind::kRowUpload && (flags != 0 || aux != 0)) {
    return BadFrame("flags/aux set on non-row message");
  }
  const uint64_t expect =
      kFrameHeaderBytes + 8ull * words + 4ull * aux;
  if (expect != size) {
    return BadFrame("frame size mismatch (header says " +
                    std::to_string(expect) + " bytes, buffer has " +
                    std::to_string(size) + ")");
  }
  StatusOr<WireMessage> body = ParseBody(r, kind, flags, words, aux);
  if (!body.ok()) return body.status();
  ParsedFrame frame;
  frame.msg = std::move(body).value();
  frame.sequence = sequence;
  return frame;
}

StatusOr<WireMessage> ParseMessage(const uint8_t* data, size_t size) {
  StatusOr<ParsedFrame> frame = ParseFrame(data, size);
  if (!frame.ok()) return frame.status();
  return std::move(frame).value().msg;
}

}  // namespace dswm::net
