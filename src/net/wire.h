// Typed wire messages for the site <-> coordinator transport (DESIGN.md
// section 9).
//
// One struct per message kind the paper's protocols put on the wire. Each
// serializes to an explicit little-endian frame (format version 1):
//
//   [kind u8][flags u8][version u16][payload_words u32][aux_count u32]
//   [sequence u64]
//   payload_words x 8-byte words (doubles bit-cast to u64, or i64)
//   aux_count x 4-byte i32 (RowUpload sparse-support indices only)
//
// `sequence` is the sender channel's monotonically increasing per-channel
// transmission number (1, 2, ...). It lets an asynchronous transport --
// the src/runtime socket backend, or any receiver that does not share the
// sender's address space -- detect reordering, duplication, and loss from
// the frame alone. Version 0 frames (the pre-sequence layout, where these
// two bytes were a zero reserved field) are rejected with a version error,
// not misparsed.
//
// The payload carries exactly the real numbers the paper's cost model
// charges for (one word each, Section IV-A), so a frame's word cost is
// payload bytes / 8. The 20-byte header and the sparse-support index list
// are framing metadata: a production encoding would ship sparse rows as
// (index, value) pairs and pay fewer words, but the paper's accounting --
// and ours -- charges the dense d words per row. Doubles round-trip
// bit-exactly (NaN payloads, infinities, denormals, signed zero included).
//
// Parsing returns Status on malformed input (truncation, bad kind, size
// mismatch, out-of-range support index) -- never crashes, never throws.

#ifndef DSWM_NET_WIRE_H_
#define DSWM_NET_WIRE_H_

#include <cstdint>
#include <variant>
#include <vector>

#include "common/status.h"
#include "stream/timed_row.h"

namespace dswm::net {

/// Every message kind the protocols exchange. Values are the on-wire tag.
enum class MessageKind : uint8_t {
  /// Site -> coordinator: one (possibly rescaled) sample row with its
  /// timestamp and, per protocol, a priority key and/or sampler id.
  /// PWOR/ESWOR: d+2 words; CENTRAL: d+1; PWR-ST/ESWR-ST: d+3.
  kRowUpload = 1,
  /// Coordinator -> site: request the site's best outstanding priority
  /// (Algorithm 1 negotiation). 1 word.
  kRetrieveRequest = 2,
  /// Site -> coordinator: the reply (its highest queued key). 1 word.
  kRetrieveResponse = 3,
  /// Coordinator -> all sites: new sampling threshold tau. 1 word per
  /// site (m words total, the paper's broadcast cost).
  kThresholdBroadcast = 4,
  /// Site -> coordinator: one significant eigenpair (lambda, v) of the
  /// DA1 gap matrix. d+1 words.
  kEigenpair = 5,
  /// Site -> coordinator: one DA2 IWMT direction with timestamp and
  /// flag +1 (forward/arrival) or -1 (backward/expiry). d+2 words.
  kDa2Delta = 6,
  /// Site -> coordinator: SUM-tracker delta D = C - C_hat. 1 word.
  kSumDelta = 7,
  /// Site -> coordinator: explicit expiry signal. 1 word. Reserved: the
  /// paper's protocols share a synchronized clock and never need it, but
  /// the transport supports it for asynchronous-clock extensions.
  kExpiryNotice = 8,
  /// Transport-level acknowledgment used by the reliability shim
  /// (FaultyChannel with reliable=true). 1 word.
  kAck = 9,
};

/// Lowest/highest valid MessageKind tags (parser range check).
inline constexpr uint8_t kMinMessageKind = 1;
inline constexpr uint8_t kMaxMessageKind = 9;

/// Display name ("row_upload", ...), stable for the JSONL trace format.
const char* KindName(MessageKind kind);

struct RowUploadMsg {
  std::vector<double> values;
  Timestamp timestamp = 0;
  /// Sparse support indices (framing metadata, not words; see header).
  std::vector<int> support;
  bool has_key = false;
  double key = 0.0;
  bool has_sampler = false;
  int64_t sampler = 0;
};

struct RetrieveRequestMsg {
  /// The threshold the coordinator is probing below (informational).
  double bound = 0.0;
};

struct RetrieveResponseMsg {
  /// The site's highest outstanding priority (-inf when none).
  double key = 0.0;
};

struct ThresholdBroadcastMsg {
  double threshold = 0.0;
};

struct EigenpairMsg {
  double lambda = 0.0;
  std::vector<double> vector;
};

struct Da2DeltaMsg {
  std::vector<double> direction;
  Timestamp timestamp = 0;
  /// +1 forward (IWMT_a output), -1 backward (IWMT_e output).
  int flag = 1;
};

struct SumDeltaMsg {
  double delta = 0.0;
};

struct ExpiryNoticeMsg {
  Timestamp cutoff = 0;
};

struct AckMsg {
  uint64_t sequence = 0;
};

using WireMessage =
    std::variant<RowUploadMsg, RetrieveRequestMsg, RetrieveResponseMsg,
                 ThresholdBroadcastMsg, EigenpairMsg, Da2DeltaMsg, SumDeltaMsg,
                 ExpiryNoticeMsg, AckMsg>;

/// The on-wire tag for a message.
MessageKind KindOf(const WireMessage& msg);

/// Word cost of one copy of `msg` under the paper's accounting: the
/// number of 8-byte payload words it serializes to.
[[nodiscard]] long PayloadWords(const WireMessage& msg);

/// Serializes `msg` into `out` (cleared first), stamping the sender's
/// per-channel transmission number into the header. Total frame size is
/// 20 + 8 * PayloadWords(msg) + 4 * support_count bytes.
void SerializeMessage(const WireMessage& msg, std::vector<uint8_t>* out,
                      uint64_t sequence = 0);

/// A parsed frame: the typed message plus its header sequence number.
struct ParsedFrame {
  WireMessage msg;
  uint64_t sequence = 0;
};

/// Parses a frame produced by SerializeMessage. Returns InvalidArgument
/// on truncated, oversized, structurally malformed, or wrong-version
/// input.
[[nodiscard]] StatusOr<ParsedFrame> ParseFrame(const uint8_t* data,
                                               size_t size);

/// ParseFrame, discarding the transport sequence number (callers that
/// only care about the protocol-level content).
[[nodiscard]] StatusOr<WireMessage> ParseMessage(const uint8_t* data,
                                                 size_t size);

/// Frame header size in bytes.
inline constexpr size_t kFrameHeaderBytes = 20;

/// On-wire format version stamped into (and required of) every frame.
inline constexpr uint16_t kWireFormatVersion = 1;

}  // namespace dswm::net

#endif  // DSWM_NET_WIRE_H_
