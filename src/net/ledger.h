// The message ledger: every transmission a Channel performs is recorded
// here with its kind, direction, site, timestamp, serialized size, and
// transport flags (retransmit / duplicate / dropped).
//
// The ledger is the single source of truth for communication accounting:
// the legacy CommStats counters are *derived* from it (one word per 8
// payload bytes, the paper's cost model), never hand-maintained by
// protocol code. It also provides per-kind histograms and a JSONL dump
// for observability (--trace-jsonl).

#ifndef DSWM_NET_LEDGER_H_
#define DSWM_NET_LEDGER_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "monitor/comm_stats.h"
#include "net/wire.h"

namespace dswm::net {

/// Which way a message travels.
enum class Direction : uint8_t {
  kUp = 0,         // site -> coordinator
  kDown = 1,       // coordinator -> one site
  kBroadcast = 2,  // coordinator -> all m sites (copies = m)
};

const char* DirectionName(Direction dir);

/// One recorded transmission attempt.
struct LedgerEntry {
  uint64_t sequence = 0;     // channel-global send order
  MessageKind kind = MessageKind::kRowUpload;
  Direction dir = Direction::kUp;
  int site = -1;             // sender (up) or recipient (down); -1 broadcast
  Timestamp time = 0;        // simulation clock at send
  uint32_t payload_words = 0;  // per copy; paper-model word cost
  uint32_t frame_bytes = 0;  // per copy, including header + support metadata
  uint16_t copies = 1;       // m for broadcasts, else 1
  bool dropped = false;      // lost by the fault injector
  bool retransmit = false;   // reliability-shim resend
  bool duplicate = false;    // fault-injector duplication
};

/// Aggregate per message kind.
struct KindStats {
  long count = 0;     // transmission attempts
  long words = 0;     // payload_words * copies summed
  long payload_bytes = 0;
  long frame_bytes = 0;
  long dropped = 0;
};

/// Append-only trace of everything a channel sent.
class MessageLedger {
 public:
  /// Records one transmission attempt and folds it into the derived
  /// CommStats and per-kind aggregates.
  void Record(const LedgerEntry& entry);

  [[nodiscard]] const std::vector<LedgerEntry>& entries() const {
    return entries_;
  }

  /// Word/message counters derived from the recorded entries. Dropped
  /// transmissions still count: the bytes crossed the wire before the
  /// loss, which is exactly the cost the fault experiments measure.
  [[nodiscard]] const CommStats& stats() const { return stats_; }

  /// Aggregates for one message kind.
  [[nodiscard]] const KindStats& ByKind(MessageKind kind) const;

  /// Total payload bytes across all copies (== 8 * stats().TotalWords()).
  [[nodiscard]] long TotalPayloadBytes() const { return payload_bytes_; }
  /// Total on-the-wire bytes including frame headers and support indices.
  [[nodiscard]] long TotalFrameBytes() const { return frame_bytes_; }

  /// Appends one JSON object per entry ("\n"-terminated) to `out`.
  void AppendJsonl(std::string* out) const;

  /// Writes the JSONL trace to `path` (truncating).
  [[nodiscard]] Status WriteJsonl(const std::string& path) const;

 private:
  std::vector<LedgerEntry> entries_;
  std::array<KindStats, kMaxMessageKind + 1> by_kind_{};
  CommStats stats_;
  long payload_bytes_ = 0;
  long frame_bytes_ = 0;
};

}  // namespace dswm::net

#endif  // DSWM_NET_LEDGER_H_
