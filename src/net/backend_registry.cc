#include "net/backend_registry.h"

#include <algorithm>
#include <map>
#include <utility>

#include "common/mutex.h"

namespace dswm::net {

namespace {

struct Registry {
  Mutex mu;
  std::map<std::string, ChannelBackendFn> backends DSWM_GUARDED_BY(mu);
};

Registry& GlobalRegistry() {
  // Leaked singleton: backends registered from any translation unit must
  // outlive every tracker, including ones torn down during static
  // destruction.
  static Registry* registry = new Registry();
  // Built-in in-process backends, installed on first touch.
  static const bool bootstrapped = [] {
    Registry& r = *registry;
    MutexLock lock(r.mu);
    r.backends["default"] = [](const NetProfile& profile, int num_sites,
                               uint64_t salt) {
      return MakeChannel(profile, num_sites, salt);
    };
    r.backends["loopback"] = [](const NetProfile& profile, int num_sites,
                                uint64_t salt) -> std::unique_ptr<Channel> {
      (void)profile;
      (void)salt;
      return std::make_unique<LoopbackChannel>(num_sites);
    };
    r.backends["faulty"] = [](const NetProfile& profile, int num_sites,
                              uint64_t salt) -> std::unique_ptr<Channel> {
      // Mirror MakeChannel's salting so sub-protocols stay decorrelated
      // even when a profile with no fault knobs is forced through here.
      NetProfile salted = profile;
      salted.seed = MixChannelSeed(profile.seed, salt);
      return std::make_unique<FaultyChannel>(num_sites, salted);
    };
    return true;
  }();
  (void)bootstrapped;
  return *registry;
}

}  // namespace

Status RegisterChannelBackend(const std::string& name,
                              ChannelBackendFn factory) {
  if (name.empty()) {
    return Status::InvalidArgument("channel backend name must be non-empty");
  }
  if (!factory) {
    return Status::InvalidArgument("channel backend factory must be non-null");
  }
  Registry& r = GlobalRegistry();
  MutexLock lock(r.mu);
  r.backends[name] = std::move(factory);
  return Status::OK();
}

StatusOr<ChannelBackendFn> FindChannelBackend(const std::string& name) {
  Registry& r = GlobalRegistry();
  MutexLock lock(r.mu);
  auto it = r.backends.find(name);
  if (it == r.backends.end()) {
    std::string known;
    for (const auto& [known_name, fn] : r.backends) {
      if (!known.empty()) known += ", ";
      known += known_name;
    }
    return Status::NotFound("no channel backend named '" + name +
                            "' (registered: " + known + ")");
  }
  return it->second;
}

std::vector<std::string> ChannelBackendNames() {
  Registry& r = GlobalRegistry();
  MutexLock lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.backends.size());
  for (const auto& [name, fn] : r.backends) names.push_back(name);
  return names;
}

}  // namespace dswm::net
