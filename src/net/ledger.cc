#include "net/ledger.h"

#include <cstdio>

#include "common/check.h"

namespace dswm::net {

const char* DirectionName(Direction dir) {
  switch (dir) {
    case Direction::kUp: return "up";
    case Direction::kDown: return "down";
    case Direction::kBroadcast: return "broadcast";
  }
  return "unknown";
}

namespace {

bool CarriesRow(MessageKind kind) {
  return kind == MessageKind::kRowUpload || kind == MessageKind::kEigenpair ||
         kind == MessageKind::kDa2Delta;
}

}  // namespace

void MessageLedger::Record(const LedgerEntry& entry) {
  DSWM_DCHECK_GE(entry.copies, 1);
  entries_.push_back(entry);

  const long words =
      static_cast<long>(entry.payload_words) * entry.copies;
  const long pbytes = 8L * words;
  const long fbytes = static_cast<long>(entry.frame_bytes) * entry.copies;
  payload_bytes_ += pbytes;
  frame_bytes_ += fbytes;

  // Derived CommStats: the legacy model charged words at the send site,
  // whether or not the network later lost the message, so dropped and
  // duplicated transmissions count here too.
  switch (entry.dir) {
    case Direction::kUp:
      stats_.SendUp(words);
      break;
    case Direction::kDown:
      stats_.SendDown(words);
      break;
    case Direction::kBroadcast:
      stats_.Broadcast(words);
      break;
  }
  if (CarriesRow(entry.kind)) ++stats_.rows_sent;

  KindStats& ks = by_kind_[static_cast<size_t>(entry.kind)];
  ++ks.count;
  ks.words += words;
  ks.payload_bytes += pbytes;
  ks.frame_bytes += fbytes;
  if (entry.dropped) ++ks.dropped;
}

const KindStats& MessageLedger::ByKind(MessageKind kind) const {
  return by_kind_[static_cast<size_t>(kind)];
}

void MessageLedger::AppendJsonl(std::string* out) const {
  char buf[256];
  for (const LedgerEntry& e : entries_) {
    std::snprintf(
        buf, sizeof(buf),
        "{\"seq\":%llu,\"t\":%lld,\"kind\":\"%s\",\"dir\":\"%s\","
        "\"site\":%d,\"words\":%lu,\"payload_bytes\":%lu,"
        "\"frame_bytes\":%lu,\"copies\":%u,\"dropped\":%s,"
        "\"retransmit\":%s,\"duplicate\":%s}\n",
        static_cast<unsigned long long>(e.sequence),
        static_cast<long long>(e.time), KindName(e.kind),
        DirectionName(e.dir), e.site,
        static_cast<unsigned long>(e.payload_words) * e.copies,
        static_cast<unsigned long>(e.payload_words) * e.copies * 8,
        static_cast<unsigned long>(e.frame_bytes) * e.copies,
        static_cast<unsigned>(e.copies), e.dropped ? "true" : "false",
        e.retransmit ? "true" : "false", e.duplicate ? "true" : "false");
    out->append(buf);
  }
}

Status MessageLedger::WriteJsonl(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file: " + path);
  }
  std::string text;
  AppendJsonl(&text);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace dswm::net
