// The site <-> coordinator transport abstraction.
//
// Every protocol constructs its traffic as typed wire messages (wire.h)
// and pushes them through a Channel. The channel serializes each message,
// records the transmission in its MessageLedger (the source of truth for
// word accounting), and delivers the *parsed* frame to the registered
// handler -- so what the coordinator applies is exactly what crossed the
// wire, byte for byte.
//
// Two implementations:
//
//  * LoopbackChannel -- deterministic in-process delivery: the handler
//    runs synchronously inside Send(), preserving the exact causal order
//    of the pre-transport code. All tracker metrics (err/msg/space) are
//    bit-identical to the direct-call design.
//
//  * FaultyChannel -- seeded drop / duplicate / delay injection on the
//    data plane (row uploads, eigenpairs, DA2 deltas, sum deltas), plus
//    an optional ack-and-resend reliability shim. Control messages
//    (retrieve negotiation, threshold broadcasts) stay synchronous and
//    reliable: the simulated protocols read shared threshold state
//    directly, so faulting them would be unobservable; the data plane is
//    where loss actually perturbs the coordinator's estimate. Delayed and
//    retransmitted frames are delivered on AdvanceTime in deterministic
//    (due-time, enqueue-order) order.
//
// Word accounting: one word per 8 payload bytes (the paper's cost model,
// Section IV-A). Dropped, duplicated, and retransmitted frames all count
// -- they crossed the wire -- which is exactly how the fault experiments
// quantify the price of unreliability and of the reliability shim.

#ifndef DSWM_NET_CHANNEL_H_
#define DSWM_NET_CHANNEL_H_

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/rng.h"
#include "net/ledger.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace dswm::net {

/// Fault-injection knobs for a channel; all-zero means a perfect network
/// and selects the loopback implementation (see MakeChannel).
struct NetProfile {
  /// Per-transmission-attempt loss probability in [0, 1).
  double drop = 0.0;
  /// Probability a delivered frame is duplicated, in [0, 1).
  double duplicate = 0.0;
  /// Uniform delivery delay in ticks, inclusive range. 0/0 = instant.
  Timestamp delay_min = 0;
  Timestamp delay_max = 0;
  /// Fault RNG seed (mixed with a per-channel salt for sub-protocols).
  uint64_t seed = 0;
  /// Ack-and-resend reliability shim: every delivered data frame is
  /// acked (1 word, opposite direction); a lost frame is retransmitted
  /// `retry` ticks after it was sent, until delivered.
  bool reliable = false;
  /// Retransmission timeout in ticks (>= 1).
  Timestamp retry = 1;

  /// True when any fault knob is active.
  [[nodiscard]] bool faulty() const {
    return drop > 0.0 || duplicate > 0.0 || delay_max > 0;
  }

  [[nodiscard]] Status Validate() const;
};

/// A parsed frame handed to the receiving side.
struct Delivery {
  Direction dir = Direction::kUp;
  /// Sender (kUp) or recipient (kDown); -1 for broadcasts.
  int site = -1;
  /// Simulation clock when the frame was sent.
  Timestamp sent_at = 0;
  /// The sender channel's per-channel transmission number (from the frame
  /// header): 1, 2, ... in Send order. Receivers that do not share the
  /// sender's address space use it to detect reordering and duplication.
  uint64_t sequence = 0;
  WireMessage msg;
};

class Channel;
class FaultyChannel;

/// Factory for an alternative transport implementation: builds the channel
/// one (sub-)protocol sends through. `salt` decorrelates sub-protocol
/// fault RNGs exactly as in MakeChannel. Runtimes (src/runtime) install
/// one of these into TrackerConfig::channel_backend before MakeTracker;
/// null keeps MakeChannel's default loopback/faulty selection.
using ChannelBackendFn = std::function<std::unique_ptr<Channel>(
    const NetProfile& profile, int num_sites, uint64_t salt)>;

/// Transport base: serializes, ledgers, and routes messages.
class Channel {
 public:
  explicit Channel(int num_sites);
  virtual ~Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Registers the receive callback. At most one handler; the owning
  /// tracker dispatches on message kind.
  void SetHandler(std::function<void(Delivery)> handler) {
    handler_ = std::move(handler);
  }

  /// Serializes `msg`, records the transmission, and (per implementation)
  /// delivers it. `site` is the sender for kUp, the recipient for kDown,
  /// and ignored (-1) for kBroadcast, which charges num_sites copies.
  /// Reentrant: a handler invoked by a Send may itself Send (the
  /// coordinator answering a site), so no channel lock is ever held
  /// across the Dispatch/Handle call chain.
  void Send(Direction dir, int site, const WireMessage& msg)
      DSWM_EXCLUDES(mu_);

  /// Advances the transport clock; fault-injecting implementations flush
  /// due deliveries and retransmissions here, in deterministic order.
  virtual void AdvanceTime(Timestamp t) { now_ = t > now_ ? t : now_; }

  /// Closes the transport. Idempotent. After Close() every Send and every
  /// late delivery (a delayed frame flushed by AdvanceTime) is discarded
  /// and counted (net.send_after_close / net.drop_after_close) -- never a
  /// crash, so teardown races in asynchronous runtimes are benign.
  /// Implementations that own OS resources release them here.
  virtual void Close() { closed_ = true; }
  [[nodiscard]] bool closed() const { return closed_; }

  /// The transmission trace. The returned reference is only stable while
  /// no Send/AdvanceTime runs concurrently; callers read it after the run
  /// quiesces (the driver does so post-WaitIdle).
  [[nodiscard]] const MessageLedger& ledger() const DSWM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return ledger_;
  }
  /// Communication counters derived from the ledger. Same quiescence
  /// contract as ledger().
  [[nodiscard]] const CommStats& comm() const DSWM_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return ledger_.stats();
  }
  [[nodiscard]] int num_sites() const { return num_sites_; }
  [[nodiscard]] Timestamp now() const { return now_; }

  /// Downcast hook so experiments can flip fault knobs mid-run.
  virtual FaultyChannel* AsFaulty() { return nullptr; }

  /// Transport health. Always OK for the in-process channels; backends
  /// that own OS resources (src/runtime) report their first
  /// unrecoverable transport error here, and runtimes surface it after
  /// the replay quiesces.
  [[nodiscard]] virtual Status Health() const { return Status::OK(); }

 protected:
  struct FrameInfo {
    MessageKind kind = MessageKind::kRowUpload;
    uint32_t payload_words = 0;
    uint32_t frame_bytes = 0;
  };

  /// Implementation hook: decide the fate of one outgoing frame. `bytes`
  /// is the serialized frame exactly as Record accounts for it; it is
  /// valid only for the duration of the call (backends that cross a
  /// process boundary write it out before returning; in-process backends
  /// ignore it -- they already hold the parsed delivery).
  virtual void Dispatch(Delivery delivery, const FrameInfo& frame,
                        const std::vector<uint8_t>& bytes) = 0;

  /// Records one transmission attempt in the ledger.
  void Record(const Delivery& delivery, const FrameInfo& frame, bool dropped,
              bool retransmit, bool duplicate) DSWM_EXCLUDES(mu_);

  /// Invokes the handler (if any) with a delivered frame. Never called
  /// with mu_ held: the handler may reenter Send. Deliveries that reach a
  /// closed channel (late flushes during teardown) are discarded.
  void Handle(Delivery delivery) DSWM_EXCLUDES(mu_) {
    if (closed_) {
      DSWM_OBS_COUNT("net.drop_after_close", 1);
      return;
    }
    DSWM_OBS_COUNT("net.deliveries", 1);
    if (handler_) handler_(std::move(delivery));
  }

  /// Simulation clock. Mutated only by AdvanceTime/Send on the driving
  /// thread (the event loop owns time); not part of the mu_ domain.
  Timestamp now_ = std::numeric_limits<Timestamp>::min() / 2;
  /// Lifecycle latch; same single-driving-thread domain as now_.
  bool closed_ = false;

 private:
  int num_sites_;
  /// Set once during tracker construction, before any traffic; immutable
  /// while messages flow (Handle reads it without mu_ by that contract).
  std::function<void(Delivery)> handler_;
  /// Guards the send/record path: the serialization scratch buffer, the
  /// sequence counters, and the ledger they feed.
  mutable Mutex mu_;
  MessageLedger ledger_ DSWM_GUARDED_BY(mu_);
  std::vector<uint8_t> scratch_ DSWM_GUARDED_BY(mu_);
  uint64_t next_sequence_ DSWM_GUARDED_BY(mu_) = 0;
  /// Per-channel wire sequence stamped into frame headers (1, 2, ...).
  /// Distinct from next_sequence_: the ledger numbers every recorded
  /// attempt (drops, duplicates, retransmissions included) while the wire
  /// number identifies the logical Send, so a retransmitted frame carries
  /// the same wire sequence it was first sent with.
  uint64_t wire_sequence_ DSWM_GUARDED_BY(mu_) = 0;
};

/// Perfect in-process transport: synchronous FIFO delivery inside Send.
class LoopbackChannel final : public Channel {
 public:
  explicit LoopbackChannel(int num_sites) : Channel(num_sites) {}

 protected:
  void Dispatch(Delivery delivery, const FrameInfo& frame,
                const std::vector<uint8_t>& bytes) override;
};

/// Seeded fault injection with optional ack-and-resend reliability.
class FaultyChannel final : public Channel {
 public:
  FaultyChannel(int num_sites, const NetProfile& profile);

  void AdvanceTime(Timestamp t) override;
  FaultyChannel* AsFaulty() override { return this; }

  /// Live fault knobs; experiments mutate these mid-run (e.g. stop
  /// dropping to measure recovery).
  [[nodiscard]] NetProfile& profile() { return profile_; }
  [[nodiscard]] const NetProfile& profile() const { return profile_; }

  /// Frames currently queued (delayed or awaiting retransmission).
  [[nodiscard]] long in_flight() const DSWM_EXCLUDES(fault_mu_) {
    MutexLock lock(fault_mu_);
    return static_cast<long>(queue_.size());
  }

  /// Earliest queued due time, or nothing when no frame is in flight.
  /// Event-driven schedulers sleep until this instant and then call
  /// AdvanceTime(due) instead of polling the clock tick by tick; the
  /// flush order is identical either way (the queue delivers in
  /// (due, enqueue-order) regardless of how far the clock jumps).
  [[nodiscard]] std::optional<Timestamp> NextDueTime() const
      DSWM_EXCLUDES(fault_mu_) {
    MutexLock lock(fault_mu_);
    if (queue_.empty()) return std::nullopt;
    return queue_.begin()->first.first;
  }

 protected:
  void Dispatch(Delivery delivery, const FrameInfo& frame,
                const std::vector<uint8_t>& bytes) override;

 private:
  struct Queued {
    Delivery delivery;
    FrameInfo frame;
    bool is_retransmit = false;  // retransmission attempt vs. delayed copy
  };

  /// One transmission attempt: rolls drop/duplicate/delay and either
  /// delivers, queues, or (reliable) schedules a retransmission.
  void Attempt(Delivery delivery, const FrameInfo& frame, bool retransmit)
      DSWM_EXCLUDES(fault_mu_);
  void DeliverNow(Delivery delivery, const FrameInfo& frame)
      DSWM_EXCLUDES(fault_mu_);
  void Enqueue(Timestamp due, Queued item) DSWM_EXCLUDES(fault_mu_);

  /// Mutated through profile() by experiments between protocol steps;
  /// read by Attempt. Single-threaded by the simulation contract (the
  /// accessor exposes a bare reference, so it cannot be lock-guarded).
  NetProfile profile_;
  /// Guards the fault state shared between the send path (Dispatch ->
  /// Attempt) and the clock path (AdvanceTime): the fault dice and the
  /// delayed/retransmission queue. Released before every Handle call.
  mutable Mutex fault_mu_;
  Rng rng_ DSWM_GUARDED_BY(fault_mu_);
  // (due time, enqueue order) -> item; processed in key order.
  std::map<std::pair<Timestamp, uint64_t>, Queued> queue_
      DSWM_GUARDED_BY(fault_mu_);
  uint64_t enqueue_counter_ DSWM_GUARDED_BY(fault_mu_) = 0;
};

/// Builds the channel a tracker's config asks for: loopback when no fault
/// knob is set, otherwise a FaultyChannel whose RNG is seeded from
/// profile.seed mixed with `salt` (sub-protocols pass distinct salts so
/// they do not see correlated faults).
std::unique_ptr<Channel> MakeChannel(const NetProfile& profile, int num_sites,
                                     uint64_t salt);

/// The salt mix MakeChannel applies (splitmix64 finalizer). Exposed so
/// alternative backends (net/backend_registry.h, src/runtime) seed their
/// fault RNGs identically to the in-process channels.
[[nodiscard]] uint64_t MixChannelSeed(uint64_t seed, uint64_t salt);

/// Data-plane kinds are the ones whose loss perturbs the coordinator's
/// estimate; only these are subject to fault injection. Control kinds
/// (retrieve negotiation, threshold broadcasts, acks) are always
/// synchronous and reliable on every backend.
[[nodiscard]] bool IsDataPlaneKind(MessageKind kind);

}  // namespace dswm::net

#endif  // DSWM_NET_CHANNEL_H_
