// The site <-> coordinator transport abstraction.
//
// Every protocol constructs its traffic as typed wire messages (wire.h)
// and pushes them through a Channel. The channel serializes each message,
// records the transmission in its MessageLedger (the source of truth for
// word accounting), and delivers the *parsed* frame to the registered
// handler -- so what the coordinator applies is exactly what crossed the
// wire, byte for byte.
//
// Two implementations:
//
//  * LoopbackChannel -- deterministic in-process delivery: the handler
//    runs synchronously inside Send(), preserving the exact causal order
//    of the pre-transport code. All tracker metrics (err/msg/space) are
//    bit-identical to the direct-call design.
//
//  * FaultyChannel -- seeded drop / duplicate / delay injection on the
//    data plane (row uploads, eigenpairs, DA2 deltas, sum deltas), plus
//    an optional ack-and-resend reliability shim. Control messages
//    (retrieve negotiation, threshold broadcasts) stay synchronous and
//    reliable: the simulated protocols read shared threshold state
//    directly, so faulting them would be unobservable; the data plane is
//    where loss actually perturbs the coordinator's estimate. Delayed and
//    retransmitted frames are delivered on AdvanceTime in deterministic
//    (due-time, enqueue-order) order.
//
// Word accounting: one word per 8 payload bytes (the paper's cost model,
// Section IV-A). Dropped, duplicated, and retransmitted frames all count
// -- they crossed the wire -- which is exactly how the fault experiments
// quantify the price of unreliability and of the reliability shim.

#ifndef DSWM_NET_CHANNEL_H_
#define DSWM_NET_CHANNEL_H_

#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/ledger.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace dswm::net {

/// Fault-injection knobs for a channel; all-zero means a perfect network
/// and selects the loopback implementation (see MakeChannel).
struct NetProfile {
  /// Per-transmission-attempt loss probability in [0, 1).
  double drop = 0.0;
  /// Probability a delivered frame is duplicated, in [0, 1).
  double duplicate = 0.0;
  /// Uniform delivery delay in ticks, inclusive range. 0/0 = instant.
  Timestamp delay_min = 0;
  Timestamp delay_max = 0;
  /// Fault RNG seed (mixed with a per-channel salt for sub-protocols).
  uint64_t seed = 0;
  /// Ack-and-resend reliability shim: every delivered data frame is
  /// acked (1 word, opposite direction); a lost frame is retransmitted
  /// `retry` ticks after it was sent, until delivered.
  bool reliable = false;
  /// Retransmission timeout in ticks (>= 1).
  Timestamp retry = 1;

  /// True when any fault knob is active.
  [[nodiscard]] bool faulty() const {
    return drop > 0.0 || duplicate > 0.0 || delay_max > 0;
  }

  [[nodiscard]] Status Validate() const;
};

/// A parsed frame handed to the receiving side.
struct Delivery {
  Direction dir = Direction::kUp;
  /// Sender (kUp) or recipient (kDown); -1 for broadcasts.
  int site = -1;
  /// Simulation clock when the frame was sent.
  Timestamp sent_at = 0;
  WireMessage msg;
};

class FaultyChannel;

/// Transport base: serializes, ledgers, and routes messages.
class Channel {
 public:
  explicit Channel(int num_sites);
  virtual ~Channel() = default;
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Registers the receive callback. At most one handler; the owning
  /// tracker dispatches on message kind.
  void SetHandler(std::function<void(Delivery)> handler) {
    handler_ = std::move(handler);
  }

  /// Serializes `msg`, records the transmission, and (per implementation)
  /// delivers it. `site` is the sender for kUp, the recipient for kDown,
  /// and ignored (-1) for kBroadcast, which charges num_sites copies.
  void Send(Direction dir, int site, const WireMessage& msg);

  /// Advances the transport clock; fault-injecting implementations flush
  /// due deliveries and retransmissions here, in deterministic order.
  virtual void AdvanceTime(Timestamp t) { now_ = t > now_ ? t : now_; }

  [[nodiscard]] const MessageLedger& ledger() const { return ledger_; }
  /// Communication counters derived from the ledger.
  [[nodiscard]] const CommStats& comm() const { return ledger_.stats(); }
  [[nodiscard]] int num_sites() const { return num_sites_; }
  [[nodiscard]] Timestamp now() const { return now_; }

  /// Downcast hook so experiments can flip fault knobs mid-run.
  virtual FaultyChannel* AsFaulty() { return nullptr; }

 protected:
  struct FrameInfo {
    MessageKind kind = MessageKind::kRowUpload;
    uint32_t payload_words = 0;
    uint32_t frame_bytes = 0;
  };

  /// Implementation hook: decide the fate of one outgoing frame.
  virtual void Dispatch(Delivery delivery, const FrameInfo& frame) = 0;

  /// Records one transmission attempt in the ledger.
  void Record(const Delivery& delivery, const FrameInfo& frame, bool dropped,
              bool retransmit, bool duplicate);

  /// Invokes the handler (if any) with a delivered frame.
  void Handle(Delivery delivery) {
    DSWM_OBS_COUNT("net.deliveries", 1);
    if (handler_) handler_(std::move(delivery));
  }

  Timestamp now_ = std::numeric_limits<Timestamp>::min() / 2;

 private:
  int num_sites_;
  std::function<void(Delivery)> handler_;
  MessageLedger ledger_;
  std::vector<uint8_t> scratch_;
  uint64_t next_sequence_ = 0;
};

/// Perfect in-process transport: synchronous FIFO delivery inside Send.
class LoopbackChannel final : public Channel {
 public:
  explicit LoopbackChannel(int num_sites) : Channel(num_sites) {}

 protected:
  void Dispatch(Delivery delivery, const FrameInfo& frame) override;
};

/// Seeded fault injection with optional ack-and-resend reliability.
class FaultyChannel final : public Channel {
 public:
  FaultyChannel(int num_sites, const NetProfile& profile);

  void AdvanceTime(Timestamp t) override;
  FaultyChannel* AsFaulty() override { return this; }

  /// Live fault knobs; experiments mutate these mid-run (e.g. stop
  /// dropping to measure recovery).
  [[nodiscard]] NetProfile& profile() { return profile_; }
  [[nodiscard]] const NetProfile& profile() const { return profile_; }

  /// Frames currently queued (delayed or awaiting retransmission).
  [[nodiscard]] long in_flight() const {
    return static_cast<long>(queue_.size());
  }

 protected:
  void Dispatch(Delivery delivery, const FrameInfo& frame) override;

 private:
  struct Queued {
    Delivery delivery;
    FrameInfo frame;
    bool is_retransmit = false;  // retransmission attempt vs. delayed copy
  };

  /// One transmission attempt: rolls drop/duplicate/delay and either
  /// delivers, queues, or (reliable) schedules a retransmission.
  void Attempt(Delivery delivery, const FrameInfo& frame, bool retransmit);
  void DeliverNow(Delivery delivery, const FrameInfo& frame);
  void Enqueue(Timestamp due, Queued item);

  NetProfile profile_;
  Rng rng_;
  // (due time, enqueue order) -> item; processed in key order.
  std::map<std::pair<Timestamp, uint64_t>, Queued> queue_;
  uint64_t enqueue_counter_ = 0;
};

/// Builds the channel a tracker's config asks for: loopback when no fault
/// knob is set, otherwise a FaultyChannel whose RNG is seeded from
/// profile.seed mixed with `salt` (sub-protocols pass distinct salts so
/// they do not see correlated faults).
std::unique_ptr<Channel> MakeChannel(const NetProfile& profile, int num_sites,
                                     uint64_t salt);

}  // namespace dswm::net

#endif  // DSWM_NET_CHANNEL_H_
