// Named channel-backend registry.
//
// A backend is a ChannelBackendFn: given a NetProfile, site count, and
// sub-protocol salt it builds the transport one protocol channel sends
// through. src/net registers the two in-process backends ("loopback",
// "faulty" -- MakeChannel's automatic selection is registered as
// "default"); src/runtime registers the asynchronous ones ("events",
// "process") when a runtime is constructed. The registry exists so CLIs
// and experiments can select a transport by name without linking against
// the backend's headers.

#ifndef DSWM_NET_BACKEND_REGISTRY_H_
#define DSWM_NET_BACKEND_REGISTRY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "net/channel.h"

namespace dswm::net {

/// Registers `factory` under `name`. Re-registering a name replaces the
/// previous factory (runtimes re-register on each construction).
/// InvalidArgument on an empty name or null factory.
[[nodiscard]] Status RegisterChannelBackend(const std::string& name,
                                            ChannelBackendFn factory);

/// Looks up a backend by name. NotFound when it was never registered.
[[nodiscard]] StatusOr<ChannelBackendFn> FindChannelBackend(
    const std::string& name);

/// Registered backend names, sorted (for error messages and --help).
[[nodiscard]] std::vector<std::string> ChannelBackendNames();

}  // namespace dswm::net

#endif  // DSWM_NET_BACKEND_REGISTRY_H_
