#include "net/channel.h"

#include "common/check.h"

namespace dswm::net {

bool IsDataPlaneKind(MessageKind kind) {
  return kind == MessageKind::kRowUpload || kind == MessageKind::kEigenpair ||
         kind == MessageKind::kDa2Delta || kind == MessageKind::kSumDelta;
}

uint64_t MixChannelSeed(uint64_t seed, uint64_t salt) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Status NetProfile::Validate() const {
  if (!(drop >= 0.0 && drop < 1.0)) {
    return Status::InvalidArgument("net drop probability must be in [0, 1)");
  }
  if (!(duplicate >= 0.0 && duplicate < 1.0)) {
    return Status::InvalidArgument(
        "net duplicate probability must be in [0, 1)");
  }
  if (delay_min < 0 || delay_max < delay_min) {
    return Status::InvalidArgument(
        "net delay range must satisfy 0 <= delay_min <= delay_max");
  }
  if (retry < 1) {
    return Status::InvalidArgument("net retry timeout must be >= 1 tick");
  }
  return Status::OK();
}

Channel::Channel(int num_sites) : num_sites_(num_sites) {
  DSWM_CHECK_GE(num_sites, 1);
}

void Channel::Send(Direction dir, int site, const WireMessage& msg) {
  if (closed_) {
    DSWM_OBS_COUNT("net.send_after_close", 1);
    return;
  }
  DSWM_OBS_COUNT("net.sends", 1);
  DSWM_OBS_HISTOGRAM("net.payload_words",
                     (std::vector<long>{1, 4, 16, 64, 256, 1024, 4096}),
                     static_cast<long>(PayloadWords(msg)));
  FrameInfo frame;
  Delivery delivery;
  // Steal the scratch buffer under the lock (reusing its capacity), then
  // serialize into the now-local buffer with the lock released so Dispatch
  // -- and any handler it reaches, which may legally reenter Send -- never
  // runs under mu_.
  std::vector<uint8_t> buf;
  {
    MutexLock lock(mu_);
    buf = std::move(scratch_);
    delivery.sequence = ++wire_sequence_;
  }
  SerializeMessage(msg, &buf, delivery.sequence);
  // Deliver the parsed frame, not the original object: the receiving
  // side only ever sees what survived serialization. The two must agree
  // by construction; a parse failure here is a wire-format bug.
  StatusOr<ParsedFrame> parsed = ParseFrame(buf.data(), buf.size());
  DSWM_CHECK(parsed.ok());
  DSWM_CHECK(parsed.value().sequence == delivery.sequence);
  frame.kind = KindOf(msg);
  frame.payload_words = static_cast<uint32_t>(PayloadWords(msg));
  frame.frame_bytes = static_cast<uint32_t>(buf.size());
  delivery.dir = dir;
  delivery.site = dir == Direction::kBroadcast ? -1 : site;
  delivery.sent_at = now_;
  delivery.msg = std::move(parsed).value().msg;
  Dispatch(std::move(delivery), frame, buf);
  {
    MutexLock lock(mu_);
    scratch_ = std::move(buf);
  }
}

void Channel::Record(const Delivery& delivery, const FrameInfo& frame,
                     bool dropped, bool retransmit, bool duplicate) {
  MutexLock lock(mu_);
  LedgerEntry entry;
  entry.sequence = next_sequence_++;
  entry.kind = frame.kind;
  entry.dir = delivery.dir;
  entry.site = delivery.site;
  entry.time = now_;
  entry.payload_words = frame.payload_words;
  entry.frame_bytes = frame.frame_bytes;
  entry.copies = delivery.dir == Direction::kBroadcast
                     ? static_cast<uint16_t>(num_sites_)
                     : uint16_t{1};
  entry.dropped = dropped;
  entry.retransmit = retransmit;
  entry.duplicate = duplicate;
  ledger_.Record(entry);
}

void LoopbackChannel::Dispatch(Delivery delivery, const FrameInfo& frame,
                               const std::vector<uint8_t>& bytes) {
  (void)bytes;  // in-process: the parsed delivery already is the frame
  Record(delivery, frame, /*dropped=*/false, /*retransmit=*/false,
         /*duplicate=*/false);
  Handle(std::move(delivery));
}

FaultyChannel::FaultyChannel(int num_sites, const NetProfile& profile)
    : Channel(num_sites), profile_(profile), rng_(profile.seed) {}

void FaultyChannel::Dispatch(Delivery delivery, const FrameInfo& frame,
                             const std::vector<uint8_t>& bytes) {
  (void)bytes;  // in-process: the parsed delivery already is the frame
  if (!IsDataPlaneKind(frame.kind)) {
    // Control plane: the simulated negotiation reads shared state
    // synchronously, so these are always reliable and instant.
    Record(delivery, frame, false, false, false);
    Handle(std::move(delivery));
    return;
  }
  Attempt(std::move(delivery), frame, /*retransmit=*/false);
}

void FaultyChannel::Attempt(Delivery delivery, const FrameInfo& frame,
                            bool retransmit) {
  // Roll every fault die under the lock, in the exact order (and with the
  // exact knob-gated short-circuits) of the pre-lock implementation, so
  // the draw sequence -- and therefore every seeded experiment -- is
  // bit-identical. Records and deliveries happen after release.
  bool dropped = false;
  bool duplicated = false;
  Timestamp delay = 0;
  {
    MutexLock lock(fault_mu_);
    dropped = profile_.drop > 0.0 && rng_.NextDouble() < profile_.drop;
    if (!dropped) {
      duplicated =
          profile_.duplicate > 0.0 && rng_.NextDouble() < profile_.duplicate;
      if (profile_.delay_max > 0) {
        delay = profile_.delay_min +
                static_cast<Timestamp>(rng_.NextBelow(static_cast<uint64_t>(
                    profile_.delay_max - profile_.delay_min + 1)));
      }
    }
  }

  if (dropped) {
    Record(delivery, frame, /*dropped=*/true, retransmit, false);
    if (profile_.reliable) {
      // No ack will arrive; the sender times out and resends. The resend
      // rolls the fault dice again, so a frame can be lost repeatedly.
      Queued q;
      q.delivery = std::move(delivery);
      q.frame = frame;
      q.is_retransmit = true;
      Enqueue(now_ + profile_.retry, std::move(q));
    }
    return;
  }

  Record(delivery, frame, /*dropped=*/false, retransmit, false);
  if (profile_.reliable) {
    // Receiver acks the delivered frame: one word back the other way.
    // Transport-level only -- never surfaced to the handler.
    Delivery ack;
    ack.dir = delivery.dir == Direction::kUp ? Direction::kDown
                                             : Direction::kUp;
    ack.site = delivery.site;
    ack.sent_at = now_;
    FrameInfo ack_frame;
    ack_frame.kind = MessageKind::kAck;
    ack_frame.payload_words = 1;
    ack_frame.frame_bytes = static_cast<uint32_t>(kFrameHeaderBytes + 8);
    Record(ack, ack_frame, false, false, false);
  }

  if (duplicated) {
    // The duplicate is a real second transmission: ledgered, and
    // delivered right after the original copy.
    Record(delivery, frame, false, retransmit, /*duplicate=*/true);
  }

  if (delay == 0) {
    DeliverNow(delivery, frame);
    if (duplicated) DeliverNow(delivery, frame);
    return;
  }
  Queued q;
  q.delivery = delivery;
  q.frame = frame;
  Enqueue(now_ + delay, q);
  if (duplicated) Enqueue(now_ + delay, std::move(q));
}

void FaultyChannel::DeliverNow(Delivery delivery, const FrameInfo& frame) {
  (void)frame;
  Handle(std::move(delivery));
}

void FaultyChannel::Enqueue(Timestamp due, Queued item) {
  MutexLock lock(fault_mu_);
  queue_.emplace(std::make_pair(due, enqueue_counter_++), std::move(item));
}

void FaultyChannel::AdvanceTime(Timestamp t) {
  Channel::AdvanceTime(t);
  // Flush everything due by the new clock in (due, enqueue-order). An
  // attempt may re-enqueue (repeated loss under the shim); the map keeps
  // iteration deterministic regardless. Each item is popped under the
  // lock but delivered outside it: DeliverNow reaches the handler, which
  // may legally reenter Send/Enqueue.
  for (;;) {
    Queued item;
    {
      MutexLock lock(fault_mu_);
      if (queue_.empty() || queue_.begin()->first.first > now_) break;
      item = std::move(queue_.begin()->second);
      queue_.erase(queue_.begin());
    }
    if (item.is_retransmit) {
      Attempt(std::move(item.delivery), item.frame, /*retransmit=*/true);
    } else {
      DeliverNow(std::move(item.delivery), item.frame);
    }
  }
}

std::unique_ptr<Channel> MakeChannel(const NetProfile& profile, int num_sites,
                                     uint64_t salt) {
  if (!profile.faulty()) {
    return std::make_unique<LoopbackChannel>(num_sites);
  }
  NetProfile salted = profile;
  salted.seed = MixChannelSeed(profile.seed, salt);
  return std::make_unique<FaultyChannel>(num_sites, salted);
}

}  // namespace dswm::net
