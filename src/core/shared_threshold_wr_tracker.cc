#include "core/shared_threshold_wr_tracker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "sampling/scaled_rows.h"

namespace dswm {

SharedThresholdWrTracker::SharedThresholdWrTracker(
    const TrackerConfig& config, SamplingScheme scheme)
    : config_(config),
      scheme_(scheme),
      name_(scheme == SamplingScheme::kPriority ? "PWR-ST" : "ESWR-ST"),
      ell_(config.SampleSize()),
      tau_(LowestThreshold(scheme)),
      now_(std::numeric_limits<Timestamp>::min() / 2),
      channel_(MakeTrackerChannel(config, 0)),
      fnorm_tracker_(config.num_sites, config.window, config.epsilon / 2.0,
                     MakeTrackerChannel(config, 1)) {
  DSWM_CHECK(config.Validate().ok());
  channel_->SetHandler([this](net::Delivery d) { OnDelivery(std::move(d)); });
  sites_.reserve(config.num_sites);
  for (int j = 0; j < config.num_sites; ++j) {
    SiteState st{std::vector<std::list<Pending>>(ell_),
                 Rng(config.seed * 90007 + j)};
    sites_.push_back(std::move(st));
  }
  held_.resize(ell_);
}

// Coordinator side: a delivered (row, sampler, key) joins that sampler's
// held set.
void SharedThresholdWrTracker::OnDelivery(net::Delivery d) {
  auto* m = std::get_if<net::RowUploadMsg>(&d.msg);
  if (m == nullptr) return;
  DSWM_CHECK_GE(m->sampler, 0);
  DSWM_CHECK_LT(m->sampler, static_cast<int64_t>(held_.size()));
  auto row = std::make_shared<TimedRow>();
  row->values = std::move(m->values);
  row->timestamp = m->timestamp;
  row->support = std::move(m->support);
  const Timestamp t = row->timestamp;
  held_[static_cast<size_t>(m->sampler)].push_back(
      CoordEntryWr{std::move(row), m->key, t});
  ++total_held_;
}

void SharedThresholdWrTracker::Ship(int site, int sampler, const TimedRow& row,
                                    double key) {
  net::RowUploadMsg msg;  // row + sampler id + key + timestamp: d + 3 words
  msg.values = row.values;
  msg.timestamp = row.timestamp;
  msg.support = row.support;
  msg.has_key = true;
  msg.key = key;
  msg.has_sampler = true;
  msg.sampler = sampler;
  channel_->Send(net::Direction::kUp, site, msg);
}

void SharedThresholdWrTracker::BroadcastThreshold() {
  DSWM_OBS_COUNT("sampling.threshold_broadcasts", 1);
  net::ThresholdBroadcastMsg msg;
  msg.threshold = tau_;
  channel_->Send(net::Direction::kBroadcast, -1, msg);
}

Status SharedThresholdWrTracker::Observe(int site, const TimedRow& row) {
  DSWM_RETURN_NOT_OK(ValidateObserve(site, static_cast<int>(sites_.size()),
                                     row.timestamp));
  AdvanceTime(row.timestamp);

  const double w = row.NormSquared();
  if (w <= 0.0) return Status::OK();
  SiteState& st = sites_[site];
  auto shared_row = std::make_shared<const TimedRow>(row);

  for (int i = 0; i < ell_; ++i) {
    const double key = DrawKey(scheme_, w, &st.rng);
    // 1-dominance pruning: queued candidates beaten by this arrival can
    // never become sampler i's top-1 before they expire.
    std::list<Pending>& q = st.queues[i];
    for (auto it = q.begin(); it != q.end();) {
      it = (it->key <= key) ? q.erase(it) : ++it;
    }
    if (key >= tau_) {
      Ship(site, i, *shared_row, key);
    } else {
      q.push_back(Pending{shared_row, key});
    }
  }
  DSWM_RETURN_NOT_OK(fnorm_tracker_.Observe(site, w, row.timestamp));
  Maintain();
  return Status::OK();
}

void SharedThresholdWrTracker::AdvanceTime(Timestamp t) {
  if (t <= now_) {
    DSWM_CHECK_EQ(t, now_);
    return;
  }
  now_ = t;
  channel_->AdvanceTime(t);
  const Timestamp cutoff = t - config_.window;
  for (SiteState& st : sites_) {
    for (std::list<Pending>& q : st.queues) {
      // Keys are decreasing in arrival order but expiry is by arrival
      // order too; the front holds the oldest entries.
      while (!q.empty() && q.front().row->timestamp <= cutoff) q.pop_front();
    }
  }
  for (std::vector<CoordEntryWr>& h : held_) {
    const auto new_end = std::remove_if(
        h.begin(), h.end(),
        [cutoff](const CoordEntryWr& e) { return e.timestamp <= cutoff; });
    total_held_ -= static_cast<long>(h.end() - new_end);
    h.erase(new_end, h.end());
  }
  fnorm_tracker_.AdvanceTime(t);
  Maintain();
}

bool SharedThresholdWrTracker::AnythingOutstanding() const {
  for (const SiteState& st : sites_) {
    for (const std::list<Pending>& q : st.queues) {
      if (!q.empty()) return true;
    }
  }
  return false;
}

void SharedThresholdWrTracker::Maintain() {
  // Raise: too much shipped material held; move tau up to the smallest
  // per-sampler best so only potential top-1 improvements ship. One
  // broadcast serves all l samplers -- the whole point of sharing.
  if (total_held_ >= 4L * ell_) {
    double min_best = std::numeric_limits<double>::infinity();
    for (const std::vector<CoordEntryWr>& h : held_) {
      double best = -std::numeric_limits<double>::infinity();
      for (const CoordEntryWr& e : h) best = std::max(best, e.key);
      min_best = std::min(min_best, best);
    }
    if (min_best > tau_ && std::isfinite(min_best)) {
      tau_ = min_best;
      BroadcastThreshold();
      // Trim held entries strictly below the new threshold except each
      // sampler's best (coordinator-local bookkeeping, no messages).
      for (std::vector<CoordEntryWr>& h : held_) {
        if (h.empty()) continue;
        auto best_it = std::max_element(
            h.begin(), h.end(), [](const CoordEntryWr& a,
                                   const CoordEntryWr& b) {
              return a.key < b.key;
            });
        const CoordEntryWr best = *best_it;
        const auto new_end = std::remove_if(
            h.begin(), h.end(), [this](const CoordEntryWr& e) {
              return e.key < tau_;
            });
        total_held_ -= static_cast<long>(h.end() - new_end);
        h.erase(new_end, h.end());
        if (h.empty()) {
          h.push_back(best);
          ++total_held_;
        }
      }
    }
  }

  // Refill: some sampler lost all held entries to expiry; halve the
  // shared threshold and collect from every site until all samplers are
  // served again (or nothing is left anywhere).
  auto starved = [this]() {
    for (const std::vector<CoordEntryWr>& h : held_) {
      if (h.empty()) return true;
    }
    return false;
  };
  while (starved() && AnythingOutstanding()) {
    DSWM_OBS_COUNT("sampling.refill_rounds", 1);
    tau_ = RelaxThreshold(scheme_, tau_);
    BroadcastThreshold();
    for (int j = 0; j < static_cast<int>(sites_.size()); ++j) {
      SiteState& st = sites_[j];
      for (int i = 0; i < ell_; ++i) {
        std::list<Pending>& q = st.queues[i];
        for (auto it = q.begin(); it != q.end();) {
          if (it->key >= tau_) {
            Ship(j, i, *it->row, it->key);
            it = q.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
    if (tau_ == LowestThreshold(scheme_)) break;  // everything collected
  }
}

const CommStats& SharedThresholdWrTracker::Comm() const {
  comm_cache_ = channel_->comm();
  comm_cache_.Add(fnorm_tracker_.Comm());
  return comm_cache_;
}

std::vector<net::Channel*> SharedThresholdWrTracker::Channels() const {
  return {channel_.get(), fnorm_tracker_.channel()};
}

int SharedThresholdWrTracker::SamplersWithSample() const {
  int served = 0;
  for (const std::vector<CoordEntryWr>& h : held_) {
    if (!h.empty()) ++served;
  }
  return served;
}

CovarianceEstimate SharedThresholdWrTracker::Query() const {
  const double fnorm2 = std::max(fnorm_tracker_.Estimate(), 0.0);

  std::vector<const CoordEntryWr*> picks;
  for (const std::vector<CoordEntryWr>& h : held_) {
    const CoordEntryWr* best = nullptr;
    for (const CoordEntryWr& e : h) {
      if (best == nullptr || e.key > best->key) best = &e;
    }
    if (best != nullptr) picks.push_back(best);
  }
  const int k = static_cast<int>(picks.size());
  std::vector<const TimedRow*> picked(k);
  for (int i = 0; i < k; ++i) picked[i] = picks[i]->row.get();
  Matrix sketch_rows = MaterializeScaledRows(
      picked, config_.dim, [fnorm2, k](int /*i*/, double w) {
        return std::sqrt(fnorm2 / (static_cast<double>(k) * w));
      });
  return CovarianceEstimate::FromRows(std::move(sketch_rows));
}

long SharedThresholdWrTracker::MaxSiteSpaceWords() const {
  long best = 0;
  for (const SiteState& st : sites_) {
    long words = 0;
    for (const std::list<Pending>& q : st.queues) {
      words += static_cast<long>(q.size()) * (config_.dim + 2);
    }
    best = std::max(best, words);
  }
  return best + fnorm_tracker_.MaxSiteSpaceWords();
}

}  // namespace dswm
