// DA1: first deterministic protocol for tracking a covariance sketch
// (Algorithm 4).
//
// Each site tracks D = C - C_hat, the gap between its sliding-window
// covariance (maintained space-efficiently through a matrix exponential
// histogram) and what the coordinator currently believes for this site.
// When ||D||_2 crosses eps_t * ||A_w||_F^2 the site eigendecomposes D and
// ships the significant eigenpairs (lambda_i, v_i), d+1 words each; both
// parties apply C_hat += lambda_i v_i^T v_i. One-way communication only.
//
// Engineering notes (ablatable; DESIGN.md item 4):
//  * Lazy spectral check -- ||D|| can grow by at most the squared-norm
//    mass that arrived/expired since the last exact check, so the power
//    iteration runs only when that bound crosses the threshold.
//  * The site covariance C is maintained incrementally: arrivals add
//    a^T a; a dropped mEH bucket subtracts its sketch covariance; the
//    accumulated FD-shrinkage drift is wiped by re-deriving C from the
//    mEH once per window. All drift terms are inside the mEH error
//    budget.

#ifndef DSWM_CORE_DA1_TRACKER_H_
#define DSWM_CORE_DA1_TRACKER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/tracker.h"
#include "core/tracker_config.h"
#include "net/channel.h"
#include "window/matrix_eh.h"

namespace dswm {

/// Deterministic tracker DA1 (Algorithm 4).
class Da1Tracker : public DistributedTracker {
 public:
  explicit Da1Tracker(const TrackerConfig& config);

  Status Observe(int site, const TimedRow& row) override;
  void AdvanceTime(Timestamp t) override;
  CovarianceEstimate Query() const override;
  const CommStats& Comm() const override { return channel_->comm(); }
  std::vector<net::Channel*> Channels() const override {
    return {channel_.get()};
  }
  long MaxSiteSpaceWords() const override;
  std::string Name() const override { return "DA1"; }
  int Dim() const override { return config_.dim; }

  /// Number of eigendecompositions performed (tests/ablation).
  long decompositions() const { return decompositions_; }
  /// Number of threshold checks that ran the power iteration.
  long norm_checks() const { return norm_checks_; }

 private:
  struct SiteState {
    MatrixExpHistogram meh;
    Matrix c;               // incremental window covariance (site side)
    Matrix c_hat;           // coordinator's view of this site
    double last_gap_norm;   // ||D|| at the last exact check
    double mass_since_check;
    Timestamp next_rebuild; // wipe incremental drift when passed
    std::vector<double> warm;  // warm-start vector for the power iteration
  };

  void NoteExpirations(SiteState* st, Timestamp t);
  void MaybeReport(int site, SiteState* st, Timestamp t);

  TrackerConfig config_;
  double eps_threshold_;
  std::vector<SiteState> sites_;
  Matrix coordinator_c_hat_;
  Timestamp now_;
  std::unique_ptr<net::Channel> channel_;
  long decompositions_ = 0;
  long norm_checks_ = 0;
};

}  // namespace dswm

#endif  // DSWM_CORE_DA1_TRACKER_H_
