#include "core/tracker_factory.h"

#include "core/centralized_tracker.h"
#include "core/da1_tracker.h"
#include "core/da2_tracker.h"
#include "core/sampling_tracker.h"
#include "core/shared_threshold_wr_tracker.h"
#include "core/with_replacement_tracker.h"

namespace dswm {

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kPwor: return "PWOR";
    case Algorithm::kPworAll: return "PWOR-ALL";
    case Algorithm::kEswor: return "ESWOR";
    case Algorithm::kEsworAll: return "ESWOR-ALL";
    case Algorithm::kDa1: return "DA1";
    case Algorithm::kDa2: return "DA2";
    case Algorithm::kPwr: return "PWR";
    case Algorithm::kEswr: return "ESWR";
    case Algorithm::kPwrShared: return "PWR-ST";
    case Algorithm::kEswrShared: return "ESWR-ST";
    case Algorithm::kCentral: return "CENTRAL";
  }
  return "unknown";
}

StatusOr<Algorithm> ParseAlgorithm(const std::string& name) {
  for (Algorithm a :
       {Algorithm::kPwor, Algorithm::kPworAll, Algorithm::kEswor,
        Algorithm::kEsworAll, Algorithm::kDa1, Algorithm::kDa2,
        Algorithm::kPwr, Algorithm::kEswr, Algorithm::kPwrShared,
        Algorithm::kEswrShared, Algorithm::kCentral}) {
    if (name == AlgorithmName(a)) return a;
  }
  return Status::InvalidArgument("unknown algorithm: " + name);
}

std::vector<Algorithm> PaperAlgorithms() {
  return {Algorithm::kPwor, Algorithm::kPworAll, Algorithm::kEswor,
          Algorithm::kEsworAll, Algorithm::kDa1, Algorithm::kDa2};
}

StatusOr<std::unique_ptr<DistributedTracker>> MakeTracker(
    Algorithm algorithm, const TrackerConfig& config) {
  DSWM_RETURN_NOT_OK(config.Validate());
  switch (algorithm) {
    case Algorithm::kPwor:
      return std::unique_ptr<DistributedTracker>(new SamplingTracker(
          config, SamplingScheme::kPriority, /*use_all_samples=*/false));
    case Algorithm::kPworAll:
      return std::unique_ptr<DistributedTracker>(new SamplingTracker(
          config, SamplingScheme::kPriority, /*use_all_samples=*/true));
    case Algorithm::kEswor:
      return std::unique_ptr<DistributedTracker>(
          new SamplingTracker(config, SamplingScheme::kEfraimidisSpirakis,
                              /*use_all_samples=*/false));
    case Algorithm::kEsworAll:
      return std::unique_ptr<DistributedTracker>(
          new SamplingTracker(config, SamplingScheme::kEfraimidisSpirakis,
                              /*use_all_samples=*/true));
    case Algorithm::kDa1:
      return std::unique_ptr<DistributedTracker>(new Da1Tracker(config));
    case Algorithm::kDa2:
      return std::unique_ptr<DistributedTracker>(new Da2Tracker(config));
    case Algorithm::kPwr:
      return std::unique_ptr<DistributedTracker>(
          new WithReplacementTracker(config, SamplingScheme::kPriority));
    case Algorithm::kEswr:
      return std::unique_ptr<DistributedTracker>(new WithReplacementTracker(
          config, SamplingScheme::kEfraimidisSpirakis));
    case Algorithm::kPwrShared:
      return std::unique_ptr<DistributedTracker>(
          new SharedThresholdWrTracker(config, SamplingScheme::kPriority));
    case Algorithm::kEswrShared:
      return std::unique_ptr<DistributedTracker>(new SharedThresholdWrTracker(
          config, SamplingScheme::kEfraimidisSpirakis));
    case Algorithm::kCentral:
      return std::unique_ptr<DistributedTracker>(
          new CentralizedTracker(config));
  }
  return Status::InvalidArgument("unhandled algorithm");
}

}  // namespace dswm
