#include "core/centralized_tracker.h"

#include <utility>

namespace dswm {

CentralizedTracker::CentralizedTracker(const TrackerConfig& config)
    : config_(config),
      meh_(config.dim, config.epsilon, config.window),
      channel_(MakeTrackerChannel(config, 0)) {
  DSWM_CHECK(config.Validate().ok());
  channel_->SetHandler([this](net::Delivery d) {
    if (const auto* m = std::get_if<net::RowUploadMsg>(&d.msg)) {
      meh_.Insert(m->values.data(), m->timestamp);
    }
  });
}

Status CentralizedTracker::Observe(int site, const TimedRow& row) {
  DSWM_RETURN_NOT_OK(
      ValidateObserve(site, config_.num_sites, row.timestamp));
  channel_->AdvanceTime(row.timestamp);
  net::RowUploadMsg msg;  // row + timestamp: d + 1 words
  msg.values = row.values;
  msg.timestamp = row.timestamp;
  msg.support = row.support;
  channel_->Send(net::Direction::kUp, site, msg);
  return Status::OK();
}

void CentralizedTracker::AdvanceTime(Timestamp t) {
  channel_->AdvanceTime(t);
  meh_.Advance(t);
}

CovarianceEstimate CentralizedTracker::Query() const {
  return CovarianceEstimate::FromRows(meh_.QueryRows());
}

}  // namespace dswm
