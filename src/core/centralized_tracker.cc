#include "core/centralized_tracker.h"

namespace dswm {

CentralizedTracker::CentralizedTracker(const TrackerConfig& config)
    : config_(config),
      meh_(config.dim, config.epsilon, config.window) {
  DSWM_CHECK(config.Validate().ok());
}

void CentralizedTracker::Observe(int site, const TimedRow& row) {
  DSWM_CHECK_GE(site, 0);
  DSWM_CHECK_LT(site, config_.num_sites);
  comm_.SendUp(config_.dim + 1);  // row + timestamp
  ++comm_.rows_sent;
  meh_.Insert(row.values.data(), row.timestamp);
}

void CentralizedTracker::AdvanceTime(Timestamp t) { meh_.Advance(t); }

Approximation CentralizedTracker::GetApproximation() const {
  Approximation approx;
  approx.is_rows = true;
  approx.sketch_rows = meh_.QueryRows();
  return approx;
}

}  // namespace dswm
