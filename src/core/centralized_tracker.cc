#include "core/centralized_tracker.h"

#include <utility>

namespace dswm {

CentralizedTracker::CentralizedTracker(const TrackerConfig& config)
    : config_(config),
      meh_(config.dim, config.epsilon, config.window),
      channel_(net::MakeChannel(config.net, config.num_sites, 0)) {
  DSWM_CHECK(config.Validate().ok());
  channel_->SetHandler([this](net::Delivery d) {
    if (const auto* m = std::get_if<net::RowUploadMsg>(&d.msg)) {
      meh_.Insert(m->values.data(), m->timestamp);
    }
  });
}

void CentralizedTracker::Observe(int site, const TimedRow& row) {
  DSWM_CHECK_GE(site, 0);
  DSWM_CHECK_LT(site, config_.num_sites);
  channel_->AdvanceTime(row.timestamp);
  net::RowUploadMsg msg;  // row + timestamp: d + 1 words
  msg.values = row.values;
  msg.timestamp = row.timestamp;
  msg.support = row.support;
  channel_->Send(net::Direction::kUp, site, msg);
}

void CentralizedTracker::AdvanceTime(Timestamp t) {
  channel_->AdvanceTime(t);
  meh_.Advance(t);
}

Approximation CentralizedTracker::GetApproximation() const {
  Approximation approx;
  approx.is_rows = true;
  approx.sketch_rows = meh_.QueryRows();
  return approx;
}

}  // namespace dswm
