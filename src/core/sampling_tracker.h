// Sampling-based covariance-sketch tracking over distributed sliding
// windows (Section II): PWOR / PWOR-ALL (priority sampling) and
// ESWOR / ESWOR-ALL (ES sampling), under either the simple protocol
// (Algorithm 1) or the lazy-broadcast protocol (Algorithm 2).
//
// The coordinator tracks the set S of active rows with top-l priorities;
// each site queues sub-threshold rows until they expire or become
// right-l-dominated. The sketch rescales the samples into unbiased
// covariance estimators:
//   * priority sampling: row i scaled to squared norm
//     v_i = max(||a_i||^2, tau_l)            (Duffield et al. [26]);
//   * ES sampling: row i scaled by ||A_w||_F / (sqrt(l) ||a_i||), with
//     ||A_w||_F^2 tracked by the deterministic SUM tracker whose
//     communication is charged to this protocol (the paper's observed
//     extra cost of ES sampling).
//
// All traffic travels through a net::Channel: rows ship as kRowUpload
// frames and enter S only when delivered, so a faulty channel loses
// exactly the samples the network loses. The threshold negotiation
// (retrieve request/reply, tau broadcasts) is sent for accounting but the
// simulated protocol reads the shared threshold state synchronously --
// the control plane is reliable by construction (see channel.h).

#ifndef DSWM_CORE_SAMPLING_TRACKER_H_
#define DSWM_CORE_SAMPLING_TRACKER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/sum_tracker.h"
#include "core/tracker.h"
#include "core/tracker_config.h"
#include "net/channel.h"
#include "sampling/priority.h"
#include "sampling/sample_set.h"
#include "sampling/site_queue.h"

namespace dswm {

/// PWOR / ESWOR family tracker.
class SamplingTracker : public DistributedTracker {
 public:
  /// `use_all_samples` selects the -ALL estimator variants that rescale
  /// every row available at the coordinator (S plus the candidate set S')
  /// instead of exactly the top-l. `track_fnorm` (ES schemes only)
  /// disables the internal ||A_w||_F^2 SUM tracker when an enclosing
  /// protocol provides its own (the WR wrapper does). `channel_salt`
  /// decorrelates the fault RNG when an enclosing protocol owns several
  /// samplers sharing one NetProfile seed.
  SamplingTracker(const TrackerConfig& config, SamplingScheme scheme,
                  bool use_all_samples, bool track_fnorm = true,
                  uint64_t channel_salt = 0);

  Status Observe(int site, const TimedRow& row) override;
  void AdvanceTime(Timestamp t) override;
  CovarianceEstimate Query() const override;
  const CommStats& Comm() const override;
  std::vector<net::Channel*> Channels() const override;
  long MaxSiteSpaceWords() const override;
  std::string Name() const override { return name_; }
  int Dim() const override { return config_.dim; }

  /// Sample-set size l in use.
  int ell() const { return ell_; }
  /// Current threshold tau (tests).
  double threshold() const { return tau_; }
  /// Coordinator sample-set sizes (tests).
  int sample_set_size() const { return s_.size(); }
  int candidate_set_size() const { return s_prime_.size(); }
  /// The sampled rows (unscaled) the estimator would use, with their keys;
  /// exposed for the top-l oracle invariant tests.
  std::vector<const CoordEntry*> CurrentSamples() const;
  /// Largest priority key still held outside the sample set S (site queues
  /// and the candidate set S'), or -infinity; the protocol invariant is
  /// that it never exceeds the threshold, so S always contains the global
  /// top-l priorities among active rows.
  double MaxOutstandingKey() const;

 private:
  struct SiteState {
    SiteSampleQueue queue;
    Rng rng;
  };

  void OnDelivery(net::Delivery d);
  void Maintain();
  void MaintainSimple();
  void MaintainLazy();
  void ShipToCoordinator(int site, TimedRow row, double key);
  void BroadcastThreshold();
  bool AnyRowOutstanding() const;

  TrackerConfig config_;
  SamplingScheme scheme_;
  bool use_all_;
  int ell_;
  std::string name_;

  double tau_;
  std::vector<SiteState> sites_;
  KeyedSampleSet s_;        // top-l samples
  KeyedSampleSet s_prime_;  // candidate set
  Timestamp now_;
  std::unique_ptr<net::Channel> channel_;
  mutable CommStats comm_cache_;               // this channel + fnorm's
  std::unique_ptr<SumTracker> fnorm_tracker_;  // ES schemes only
};

}  // namespace dswm

#endif  // DSWM_CORE_SAMPLING_TRACKER_H_
