// The public tracking interface: continuously maintain a covariance sketch
// of the union of m distributed streams over a time-based sliding window.

#ifndef DSWM_CORE_TRACKER_H_
#define DSWM_CORE_TRACKER_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "monitor/comm_stats.h"
#include "stream/timed_row.h"

namespace dswm {

namespace net {
class Channel;
}  // namespace net

/// The coordinator's current approximation, in whichever form the protocol
/// produces natively: sampling protocols hold sketch rows B (l x d with
/// B^T B ~= A_w^T A_w), deterministic protocols hold the covariance
/// estimate C_hat = B^T B directly (d x d).
struct Approximation {
  /// True when `sketch_rows` is the native form; false when `covariance`
  /// is.
  bool is_rows = true;
  Matrix sketch_rows;
  Matrix covariance;
};

/// A distributed sliding-window covariance-sketch tracker.
///
/// Usage: call AdvanceTime(t) whenever the global clock moves, Observe()
/// for each arrival, and read the approximation through SketchRows() or
/// GetApproximation(). All protocols in the paper (PWOR, PWOR-ALL, ESWOR,
/// ESWOR-ALL, PWR, ESWR, DA1, DA2) implement this interface; build them
/// with MakeTracker() (tracker_factory.h).
class DistributedTracker {
 public:
  virtual ~DistributedTracker() = default;

  /// Row `row` arrives at site `site` at time row.timestamp. Timestamps
  /// across calls must be non-decreasing.
  virtual void Observe(int site, const TimedRow& row) = 0;

  /// Advances the global clock to `t`: expirations are processed at every
  /// site and at the coordinator, and the protocol re-establishes its
  /// invariants (threshold negotiation, refills, backward tracking).
  virtual void AdvanceTime(Timestamp t) = 0;

  /// The approximation in its native (cheapest) form.
  [[nodiscard]] virtual Approximation GetApproximation() const = 0;

  /// The sketch B (rows x d) with B^T B ~= A_w^T A_w. For deterministic
  /// trackers this runs an O(d^3) PSD square root (Algorithm 4/5 QUERY());
  /// measurement loops should prefer GetApproximation().
  [[nodiscard]] Matrix SketchRows() const;

  /// Cumulative communication.
  [[nodiscard]] virtual const CommStats& comm() const = 0;

  /// The transport channels this tracker sends through (composite
  /// protocols own several). Drivers aggregate their ledgers for trace
  /// dumps and wire-byte accounting.
  [[nodiscard]] virtual std::vector<net::Channel*> Channels() const {
    return {};
  }

  /// Current space usage, in words, of the most loaded site.
  [[nodiscard]] virtual long MaxSiteSpaceWords() const = 0;

  /// Algorithm name as used in the paper's figures ("PWOR", "DA2", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Row dimension d.
  [[nodiscard]] virtual int dim() const = 0;
};

}  // namespace dswm

#endif  // DSWM_CORE_TRACKER_H_
