// The public tracking interface: continuously maintain a covariance sketch
// of the union of m distributed streams over a time-based sliding window.

#ifndef DSWM_CORE_TRACKER_H_
#define DSWM_CORE_TRACKER_H_

#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/covariance_estimate.h"
#include "monitor/comm_stats.h"
#include "stream/timed_row.h"

namespace dswm {

namespace net {
class Channel;
}  // namespace net

/// A distributed sliding-window covariance-sketch tracker.
///
/// Usage: call AdvanceTime(t) whenever the global clock moves, Observe()
/// for each arrival, and read the estimate through Query(). All protocols
/// in the paper (PWOR, PWOR-ALL, ESWOR, ESWOR-ALL, PWR, ESWR, DA1, DA2)
/// implement this interface; build them with MakeTracker()
/// (tracker_factory.h).
///
/// Misuse is reported, not crashed on: Observe() returns InvalidArgument
/// for an out-of-range site or a timestamp regression. Contract violations
/// *inside* a protocol remain DSWM_CHECKs.
class DistributedTracker {
 public:
  virtual ~DistributedTracker() = default;

  /// Row `row` arrives at site `site` at time row.timestamp. Timestamps
  /// across calls must be non-decreasing; a decrease or an out-of-range
  /// site returns InvalidArgument without mutating tracker state.
  [[nodiscard]] virtual Status Observe(int site, const TimedRow& row) = 0;

  /// Advances the global clock to `t`: expirations are processed at every
  /// site and at the coordinator, and the protocol re-establishes its
  /// invariants (threshold negotiation, refills, backward tracking).
  virtual void AdvanceTime(Timestamp t) = 0;

  /// The current estimate in its native (cheapest) form; the other view
  /// converts lazily inside CovarianceEstimate. Move-returned -- no deep
  /// copies beyond the snapshot the protocol itself must take.
  [[nodiscard]] virtual CovarianceEstimate Query() const = 0;

  /// Cumulative communication.
  [[nodiscard]] virtual const CommStats& Comm() const = 0;

  /// The transport channels this tracker sends through (composite
  /// protocols own several). Drivers aggregate their ledgers for trace
  /// dumps and wire-byte accounting.
  [[nodiscard]] virtual std::vector<net::Channel*> Channels() const {
    return {};
  }

  /// Transport delivery pump: flushes every channel this tracker owns up
  /// to time `t` (delayed frames, retransmissions) without running any
  /// protocol maintenance. The lockstep driver never calls it -- trackers
  /// reach the same flush synchronously inside Observe/AdvanceTime -- but
  /// an event-driven runtime invokes it at transport due times
  /// (FaultyChannel::NextDueTime) so deliveries need not wait for the
  /// next row event. Flushing early is order-preserving: the channels
  /// deliver in (due-time, enqueue-order) regardless of how the clock
  /// advances, so the state the next Observe sees is identical.
  virtual void PumpChannels(Timestamp t);

  /// Current space usage, in words, of the most loaded site.
  [[nodiscard]] virtual long MaxSiteSpaceWords() const = 0;

  /// Algorithm name as used in the paper's figures ("PWOR", "DA2", ...).
  [[nodiscard]] virtual std::string Name() const = 0;

  /// Row dimension d.
  [[nodiscard]] virtual int Dim() const = 0;

 protected:
  /// Shared Observe() precondition check: `site` must be in
  /// [0, num_sites) and `t` must not precede the last observed timestamp.
  /// On OK the timestamp watermark advances; on error no state changes.
  [[nodiscard]] Status ValidateObserve(int site, int num_sites, Timestamp t);

 private:
  Timestamp last_observe_time_ = std::numeric_limits<Timestamp>::min();
};

}  // namespace dswm

#endif  // DSWM_CORE_TRACKER_H_
