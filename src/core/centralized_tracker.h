// Naive centralization baseline: every site forwards every row to the
// coordinator, which runs a (centralized) sliding-window covariance
// sketch -- a matrix exponential histogram.
//
// This is the trivial protocol every algorithm in the paper is implicitly
// compared against: it is exact up to the mEH guarantee but its
// communication is the entire stream, Theta(n*d) words per window. Used
// as the reference row in the ablation bench and in tests.
//
// Rows travel as kRowUpload frames (d + 1 words: row + timestamp) and
// enter the coordinator's mEH only on delivery.

#ifndef DSWM_CORE_CENTRALIZED_TRACKER_H_
#define DSWM_CORE_CENTRALIZED_TRACKER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/tracker.h"
#include "core/tracker_config.h"
#include "net/channel.h"
#include "window/matrix_eh.h"

namespace dswm {

/// Ship-everything baseline tracker.
class CentralizedTracker : public DistributedTracker {
 public:
  explicit CentralizedTracker(const TrackerConfig& config);

  Status Observe(int site, const TimedRow& row) override;
  void AdvanceTime(Timestamp t) override;
  CovarianceEstimate Query() const override;
  const CommStats& Comm() const override { return channel_->comm(); }
  std::vector<net::Channel*> Channels() const override {
    return {channel_.get()};
  }
  long MaxSiteSpaceWords() const override { return 0; }  // sites stateless
  std::string Name() const override { return "CENTRAL"; }
  int Dim() const override { return config_.dim; }

 private:
  TrackerConfig config_;
  MatrixExpHistogram meh_;
  std::unique_ptr<net::Channel> channel_;
};

}  // namespace dswm

#endif  // DSWM_CORE_CENTRALIZED_TRACKER_H_
