#include "core/sampling_tracker.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "sampling/scaled_rows.h"

namespace dswm {

namespace {

std::string MakeName(SamplingScheme scheme, bool use_all) {
  std::string base =
      scheme == SamplingScheme::kPriority ? "PWOR" : "ESWOR";
  if (use_all) base += "-ALL";
  return base;
}

}  // namespace

SamplingTracker::SamplingTracker(const TrackerConfig& config,
                                 SamplingScheme scheme, bool use_all_samples,
                                 bool track_fnorm, uint64_t channel_salt)
    : config_(config),
      scheme_(scheme),
      use_all_(use_all_samples),
      ell_(config.SampleSize()),
      name_(MakeName(scheme, use_all_samples)),
      tau_(LowestThreshold(scheme)),
      now_(std::numeric_limits<Timestamp>::min() / 2),
      channel_(MakeTrackerChannel(config,
                                2 * channel_salt)) {
  DSWM_CHECK(config.Validate().ok());
  channel_->SetHandler([this](net::Delivery d) { OnDelivery(std::move(d)); });
  sites_.reserve(config.num_sites);
  for (int j = 0; j < config.num_sites; ++j) {
    sites_.push_back(SiteState{SiteSampleQueue(ell_, config.window),
                               Rng(config.seed * 1000003 + j)});
  }
  if (scheme == SamplingScheme::kEfraimidisSpirakis && track_fnorm) {
    // Track ||A_w||_F^2 within a tight relative error; its (small)
    // communication is charged to this protocol through comm().
    fnorm_tracker_ = std::make_unique<SumTracker>(
        config.num_sites, config.window, config.epsilon / 2.0,
        MakeTrackerChannel(config, 2 * channel_salt + 1));
  }
}

// Coordinator side: a delivered row enters the sample set. The control
// plane (retrieve negotiation, tau broadcasts) carries no coordinator
// state -- the simulated negotiation reads shared state synchronously --
// so those kinds are accounting-only here.
void SamplingTracker::OnDelivery(net::Delivery d) {
  if (auto* m = std::get_if<net::RowUploadMsg>(&d.msg)) {
    TimedRow row;
    row.values = std::move(m->values);
    row.timestamp = m->timestamp;
    row.support = std::move(m->support);
    s_.Insert(CoordEntry{std::move(row), m->key});
  }
}

void SamplingTracker::ShipToCoordinator(int site, TimedRow row, double key) {
  // Row + priority + timestamp: d + 2 words.
  net::RowUploadMsg msg;
  msg.values = std::move(row.values);
  msg.timestamp = row.timestamp;
  msg.support = std::move(row.support);
  msg.has_key = true;
  msg.key = key;
  channel_->Send(net::Direction::kUp, site, msg);
}

void SamplingTracker::BroadcastThreshold() {
  DSWM_OBS_COUNT("sampling.threshold_broadcasts", 1);
  net::ThresholdBroadcastMsg msg;
  msg.threshold = tau_;
  channel_->Send(net::Direction::kBroadcast, -1, msg);
}

Status SamplingTracker::Observe(int site, const TimedRow& row) {
  DSWM_RETURN_NOT_OK(ValidateObserve(site, static_cast<int>(sites_.size()),
                                     row.timestamp));
  AdvanceTime(row.timestamp);

  const double w = row.NormSquared();
  if (w <= 0.0) return Status::OK();  // zero rows carry no covariance mass

  SiteState& st = sites_[site];
  const double key = DrawKey(scheme_, w, &st.rng);
  const double bv = KeyBucketValue(scheme_, key);
  st.queue.NoteArrival(bv);

  if (key >= tau_) {
    ShipToCoordinator(site, row, key);
  } else {
    st.queue.Enqueue(row, key, bv);
  }
  if (fnorm_tracker_ != nullptr) {
    DSWM_RETURN_NOT_OK(fnorm_tracker_->Observe(site, w, row.timestamp));
  }
  Maintain();
  return Status::OK();
}

void SamplingTracker::AdvanceTime(Timestamp t) {
  if (t <= now_) {
    DSWM_CHECK_EQ(t, now_);  // time never goes backwards
    return;
  }
  now_ = t;
  // Flush in-flight deliveries first so late rows land before expiry runs
  // and stale ones are evicted below like any other aged sample.
  channel_->AdvanceTime(t);
  const Timestamp cutoff = t - config_.window;
  for (SiteState& st : sites_) st.queue.Expire(t);
  s_.ExpireBefore(cutoff);
  s_prime_.ExpireBefore(cutoff);
  if (fnorm_tracker_ != nullptr) fnorm_tracker_->AdvanceTime(t);
  Maintain();
}

bool SamplingTracker::AnyRowOutstanding() const {
  if (!s_prime_.empty()) return true;
  for (const SiteState& st : sites_) {
    if (!st.queue.empty()) return true;
  }
  return false;
}

void SamplingTracker::Maintain() {
  if (config_.protocol == SamplingProtocol::kSimple) {
    MaintainSimple();
  } else {
    MaintainLazy();
  }
}

// Algorithm 1: keep |S| at exactly l, re-synchronize tau on every change.
void SamplingTracker::MaintainSimple() {
  while (s_.size() > ell_) s_prime_.Insert(s_.PopMin());

  if (s_.size() < ell_ && AnyRowOutstanding()) {
    // Negotiation: the coordinator requests each site's local highest
    // priority (one request + one reply word per site).
    DSWM_OBS_COUNT("sampling.negotiations", 1);
    const double none = -std::numeric_limits<double>::infinity();
    for (int j = 0; j < config_.num_sites; ++j) {
      net::RetrieveRequestMsg req;
      req.bound = tau_;
      channel_->Send(net::Direction::kDown, j, req);
      net::RetrieveResponseMsg resp;
      resp.key = sites_[j].queue.MaxKey(none);
      channel_->Send(net::Direction::kUp, j, resp);
    }
    while (s_.size() < ell_) {
      // Locate the highest outstanding priority across S' and all sites.
      double best = s_prime_.MaxKey(none);
      int best_site = -1;
      for (int j = 0; j < config_.num_sites; ++j) {
        const double k = sites_[j].queue.MaxKey(none);
        if (k > best) {
          best = k;
          best_site = j;
        }
      }
      if (best == none) break;  // fewer than l active rows in the system
      if (best_site < 0) {
        s_.Insert(s_prime_.PopMax());
      } else {
        SiteEntry e = sites_[best_site].queue.PopMax();
        // Retrieve the row, then ask that site for its next-highest
        // priority (one request + one reply word).
        ShipToCoordinator(best_site, std::move(e.row), e.key);
        net::RetrieveRequestMsg req;
        req.bound = tau_;
        channel_->Send(net::Direction::kDown, best_site, req);
        net::RetrieveResponseMsg resp;
        resp.key = sites_[best_site].queue.MaxKey(none);
        channel_->Send(net::Direction::kUp, best_site, resp);
      }
    }
  }

  const double new_tau =
      s_.size() >= ell_ ? s_.MinKey() : LowestThreshold(scheme_);
  if (new_tau != tau_) {
    tau_ = new_tau;
    BroadcastThreshold();
  }
}

// Algorithm 2: lazy broadcast, l <= |S| <= 4l.
void SamplingTracker::MaintainLazy() {
  if (s_.size() >= 4 * ell_) {
    tau_ = s_.KthLargestKey(2 * ell_);
    BroadcastThreshold();
    for (CoordEntry& e : s_.TakeBelow(tau_)) s_prime_.Insert(std::move(e));
  }

  if (s_.size() <= ell_) {
    while (s_.size() <= 2 * ell_ && AnyRowOutstanding()) {
      DSWM_OBS_COUNT("sampling.refill_rounds", 1);
      tau_ = RelaxThreshold(scheme_, tau_);
      BroadcastThreshold();
      for (CoordEntry& e : s_prime_.TakeAtLeast(tau_)) {
        s_.Insert(std::move(e));
      }
      for (int j = 0; j < static_cast<int>(sites_.size()); ++j) {
        for (SiteEntry& e : sites_[j].queue.TakeAtLeast(tau_)) {
          ShipToCoordinator(j, std::move(e.row), e.key);
        }
      }
    }
  }
}

const CommStats& SamplingTracker::Comm() const {
  comm_cache_ = channel_->comm();
  if (fnorm_tracker_ != nullptr) comm_cache_.Add(fnorm_tracker_->Comm());
  return comm_cache_;
}

std::vector<net::Channel*> SamplingTracker::Channels() const {
  std::vector<net::Channel*> out{channel_.get()};
  if (fnorm_tracker_ != nullptr) out.push_back(fnorm_tracker_->channel());
  return out;
}

double SamplingTracker::MaxOutstandingKey() const {
  double best = -std::numeric_limits<double>::infinity();
  best = std::max(best, s_prime_.MaxKey(best));
  for (const SiteState& st : sites_) {
    best = std::max(best, st.queue.MaxKey(best));
  }
  return best;
}

std::vector<const CoordEntry*> SamplingTracker::CurrentSamples() const {
  if (use_all_) {
    std::vector<const CoordEntry*> all = s_.All();
    for (const CoordEntry* e : s_prime_.All()) all.push_back(e);
    return all;
  }
  return s_.TopK(std::min(ell_, s_.size()));
}

CovarianceEstimate SamplingTracker::Query() const {
  const std::vector<const CoordEntry*> samples = CurrentSamples();
  const int k = static_cast<int>(samples.size());
  Matrix sketch_rows(k, config_.dim);
  if (k == 0) return CovarianceEstimate::FromRows(std::move(sketch_rows));

  // When the sample happens to contain every active row (small windows,
  // or eps so tight that l exceeds the window), every inclusion
  // probability is 1 and the sketch is exact: no rescaling.
  const int held = s_.size() + s_prime_.size();
  const bool exact_mode = !AnyRowOutstanding() && k == held;

  // Priority-sampling threshold: the (k+1)-th largest priority among
  // everything the coordinator can see (Duffield et al. [26]). Rows held
  // beyond the sample provide it; otherwise the sites' send threshold is
  // the best available stand-in (all outstanding keys are below it).
  double tau_k = LowestThreshold(scheme_);
  if (!exact_mode && scheme_ == SamplingScheme::kPriority) {
    if (use_all_) {
      // ALL estimator: the union itself is the sample; its minimum key
      // caps the rescale of small-norm rows (Section IV-B discussion).
      tau_k = std::numeric_limits<double>::infinity();
      for (const CoordEntry* e : samples) tau_k = std::min(tau_k, e->key);
    } else if (held > k) {
      double best_outside = LowestThreshold(scheme_);
      double sample_min = std::numeric_limits<double>::infinity();
      for (const CoordEntry* e : samples) {
        sample_min = std::min(sample_min, e->key);
      }
      // Largest held key strictly outside the sample. The sample is the
      // top-k of the held union, so this is the (k+1)-th largest held.
      for (const CoordEntry* e : s_.All()) {
        if (e->key < sample_min) best_outside = std::max(best_outside, e->key);
      }
      for (const CoordEntry* e : s_prime_.All()) {
        if (e->key < sample_min) best_outside = std::max(best_outside, e->key);
      }
      tau_k = best_outside;
    } else {
      tau_k = tau_;
    }
  }

  double fnorm2 = 0.0;
  if (fnorm_tracker_ != nullptr) {
    fnorm2 = std::max(fnorm_tracker_->Estimate(), 0.0);
  }

  std::vector<const TimedRow*> picked(k);
  for (int i = 0; i < k; ++i) picked[i] = &samples[i]->row;
  const SamplingScheme scheme = scheme_;
  sketch_rows = MaterializeScaledRows(
      picked, config_.dim,
      // Returns the multiplier c_i so that ||c_i a_i||^2 = v_i.
      [exact_mode, scheme, tau_k, fnorm2, k](int /*i*/, double w) {
        if (exact_mode) return 1.0;
        if (scheme == SamplingScheme::kPriority) {
          // v_i = max(w_i, tau_k). (The paper's in-line formula omits the
          // square root; the unbiased B^T B estimator needs c_i^2 w_i =
          // v_i.)
          return std::sqrt(std::max(w, tau_k) / w);
        }
        return std::sqrt(fnorm2 / (static_cast<double>(k) * w));
      });
  return CovarianceEstimate::FromRows(std::move(sketch_rows));
}

long SamplingTracker::MaxSiteSpaceWords() const {
  long best = 0;
  for (const SiteState& st : sites_) {
    best = std::max(best, st.queue.SpaceWords(config_.dim));
  }
  if (fnorm_tracker_ != nullptr) best += fnorm_tracker_->MaxSiteSpaceWords();
  return best;
}

}  // namespace dswm
