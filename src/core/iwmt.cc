#include "core/iwmt.h"

#include <cmath>

#include "linalg/svd.h"

namespace dswm {

IwmtProtocol::IwmtProtocol(int d, int ell) : d_(d), residual_(d, ell) {
  DSWM_CHECK_GT(d, 0);
}

void IwmtProtocol::Input(const double* row, double theta,
                         std::vector<IwmtOutput>* out) {
  DSWM_CHECK_GT(theta, 0.0);
  residual_.Append(row);
  mass_since_check_ += NormSquared(row, d_);
  // The residual's top eigenvalue grows by at most the appended mass, so
  // no decomposition is needed until this bound reaches theta.
  if (last_top_ + mass_since_check_ >= theta) CheckAndEmit(theta, out);
}

void IwmtProtocol::CheckAndEmit(double theta, std::vector<IwmtOutput>* out) {
  const Matrix rows = residual_.RowsMatrix();
  const RightSvdResult svd = RightSvd(rows);

  // Emit every direction with sigma^2 >= theta/2 and rebuild the residual
  // from the rest; afterwards the unreported spectral norm is < theta/2.
  residual_.Reset();
  double remaining_top = 0.0;
  std::vector<double> scaled(d_);
  for (size_t i = 0; i < svd.sigma_squared.size(); ++i) {
    const double s2 = svd.sigma_squared[i];
    if (s2 <= 0.0) continue;
    const double s = std::sqrt(s2);
    const double* v = svd.vt.Row(static_cast<int>(i));
    for (int j = 0; j < d_; ++j) scaled[j] = s * v[j];
    if (s2 >= theta / 2.0) {
      IwmtOutput o;
      o.direction = scaled;
      out->push_back(std::move(o));
    } else {
      residual_.Append(scaled.data());
      remaining_top = std::max(remaining_top, s2);
    }
  }
  last_top_ = remaining_top;
  mass_since_check_ = 0.0;
}

void IwmtProtocol::Flush(std::vector<IwmtOutput>* out) {
  const Matrix rows = residual_.RowsMatrix();
  for (int i = 0; i < rows.rows(); ++i) {
    IwmtOutput o;
    o.direction.assign(rows.Row(i), rows.Row(i) + d_);
    out->push_back(std::move(o));
  }
  residual_.Reset();
  last_top_ = 0.0;
  mass_since_check_ = 0.0;
}

}  // namespace dswm
