#include "core/with_replacement_tracker.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "sampling/scaled_rows.h"

namespace dswm {

WithReplacementTracker::WithReplacementTracker(const TrackerConfig& config,
                                               SamplingScheme scheme)
    : config_(config),
      scheme_(scheme),
      name_(scheme == SamplingScheme::kPriority ? "PWR" : "ESWR"),
      fnorm_tracker_(config.num_sites, config.window, config.epsilon / 2.0,
                     MakeTrackerChannel(config, 1)) {
  DSWM_CHECK(config.Validate().ok());
  const int ell = config.SampleSize();
  samplers_.reserve(ell);
  for (int i = 0; i < ell; ++i) {
    TrackerConfig sub = config;
    sub.ell_override = 1;
    sub.seed = config.seed + 7919ULL * (i + 1);
    // Each sub-sampler tracks a single sample without replacement; the
    // union over independent samplers is a with-replacement sample. The
    // shared SumTracker below replaces the samplers' own F-norm tracking.
    // Distinct channel salts keep per-sampler fault patterns independent.
    samplers_.push_back(std::make_unique<SamplingTracker>(
        sub, scheme, /*use_all_samples=*/false, /*track_fnorm=*/false,
        /*channel_salt=*/static_cast<uint64_t>(i) + 1));
  }
}

Status WithReplacementTracker::Observe(int site, const TimedRow& row) {
  DSWM_RETURN_NOT_OK(
      ValidateObserve(site, config_.num_sites, row.timestamp));
  const double w = row.NormSquared();
  if (w <= 0.0) return Status::OK();
  for (auto& s : samplers_) {
    // The wrapper's precondition check passed, so the delegated calls
    // cannot fail (sub-samplers see the same site range and timestamps).
    DSWM_RETURN_NOT_OK(s->Observe(site, row));
  }
  DSWM_RETURN_NOT_OK(fnorm_tracker_.Observe(site, w, row.timestamp));
  return Status::OK();
}

void WithReplacementTracker::AdvanceTime(Timestamp t) {
  for (auto& s : samplers_) s->AdvanceTime(t);
  fnorm_tracker_.AdvanceTime(t);
}

CovarianceEstimate WithReplacementTracker::Query() const {
  const double fnorm2 = std::max(fnorm_tracker_.Estimate(), 0.0);
  std::vector<const CoordEntry*> picks;
  for (const auto& s : samplers_) {
    const std::vector<const CoordEntry*> top = s->CurrentSamples();
    if (!top.empty()) picks.push_back(top.front());
  }
  const int k = static_cast<int>(picks.size());
  std::vector<const TimedRow*> picked(k);
  for (int i = 0; i < k; ++i) picked[i] = &picks[i]->row;
  // Standard WR estimator: each draw has P(row) ~ w / F^2, so the
  // contribution is rescaled to squared norm F^2 / k.
  Matrix sketch_rows = MaterializeScaledRows(
      picked, config_.dim, [fnorm2, k](int /*i*/, double w) {
        return std::sqrt(fnorm2 / (static_cast<double>(k) * w));
      });
  return CovarianceEstimate::FromRows(std::move(sketch_rows));
}

const CommStats& WithReplacementTracker::Comm() const {
  aggregate_ = CommStats();
  for (const auto& s : samplers_) aggregate_.Add(s->Comm());
  aggregate_.Add(fnorm_tracker_.Comm());
  return aggregate_;
}

std::vector<net::Channel*> WithReplacementTracker::Channels() const {
  std::vector<net::Channel*> out;
  for (const auto& s : samplers_) {
    for (net::Channel* c : s->Channels()) out.push_back(c);
  }
  out.push_back(fnorm_tracker_.channel());
  return out;
}

long WithReplacementTracker::MaxSiteSpaceWords() const {
  // Estimate: the samplers are independent, so a site's space is the
  // sum of its per-sampler queues; we report the sum of per-sampler
  // maxima (an upper bound).
  long total = 0;
  for (const auto& s : samplers_) total += s->MaxSiteSpaceWords();
  return total + fnorm_tracker_.MaxSiteSpaceWords();
}

}  // namespace dswm
