// IWMT: infinite-window matrix tracking of a single stream
// (realization of protocol P2 of Ghashami-Phillips-Li, VLDB 2014 [1],
// used as a black box by DA2 per Algorithm 5).
//
// Contract (Section III-B): the protocol consumes a row sequence and emits
// another row sequence of "significant directions" such that, at every
// point, the covariance gap between the consumed prefix and the emitted
// prefix has spectral norm below the threshold theta (plus the Frequent
// Directions shrinkage of the internal residual sketch, <= input mass /
// (l+1)).
//
// Realization: keep an FD sketch of the *unreported* rows. When the
// residual's top squared singular value can have reached theta (tracked
// lazily: last exact top + mass appended since), decompose the small
// residual and emit every direction sigma_i v_i with sigma_i^2 >= theta/2,
// removing them from the residual. Each emitted direction carries >=
// theta/2 squared mass, so a window of mass F emits O(F/theta) directions
// -- O(d/eps) words at theta = eps * F_hat^2.

#ifndef DSWM_CORE_IWMT_H_
#define DSWM_CORE_IWMT_H_

#include <vector>

#include "sketch/frequent_directions.h"

namespace dswm {

/// One emitted significant direction.
struct IwmtOutput {
  std::vector<double> direction;  // sigma_i * v_i, length d
};

/// Single-stream significant-direction emitter.
class IwmtProtocol {
 public:
  /// d-dimensional rows; residual FD sketch parameter ell (choose
  /// ~2/eps).
  IwmtProtocol(int d, int ell);

  /// Consumes a row under threshold `theta` (> 0; may differ between
  /// calls, e.g. IWMT_c's growing threshold). Emitted directions, if any,
  /// are appended to *out.
  void Input(const double* row, double theta, std::vector<IwmtOutput>* out);

  /// Emits the entire residual (every remaining direction) and resets the
  /// sketch; DA2 flushes at window boundaries so unreported mass and FD
  /// shrinkage cannot accumulate across windows.
  void Flush(std::vector<IwmtOutput>* out);

  /// Squared Frobenius mass currently unreported.
  [[nodiscard]] double unreported_mass() const { return residual_.input_mass(); }

  [[nodiscard]] long SpaceWords() const { return residual_.SpaceWords(); }

 private:
  void CheckAndEmit(double theta, std::vector<IwmtOutput>* out);

  int d_;
  FrequentDirections residual_;
  double last_top_ = 0.0;         // top sigma^2 at the last decomposition
  double mass_since_check_ = 0.0; // appended mass since then
};

}  // namespace dswm

#endif  // DSWM_CORE_IWMT_H_
