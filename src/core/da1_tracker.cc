#include "core/da1_tracker.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/spectral_norm.h"
#include "linalg/symmetric_eigen.h"

namespace dswm {

Da1Tracker::Da1Tracker(const TrackerConfig& config)
    : config_(config),
      eps_threshold_(config.epsilon / 2.0),
      coordinator_c_hat_(config.dim, config.dim),
      now_(std::numeric_limits<Timestamp>::min() / 2),
      channel_(MakeTrackerChannel(config, 0)) {
  DSWM_CHECK(config.Validate().ok());
  // Coordinator side: delivered eigenpairs rank-1-update C_hat. The site
  // side commits its own copy at send time; under loss the two diverge by
  // exactly the undelivered pairs.
  channel_->SetHandler([this](net::Delivery d) {
    if (const auto* m = std::get_if<net::EigenpairMsg>(&d.msg)) {
      coordinator_c_hat_.AddOuterProduct(m->vector.data(), m->lambda);
    }
  });
  sites_.reserve(config.num_sites);
  for (int j = 0; j < config.num_sites; ++j) {
    SiteState st{
        MatrixExpHistogram(config.dim, config.epsilon / 3.0, config.window),
        Matrix(config.dim, config.dim),
        Matrix(config.dim, config.dim),
        /*last_gap_norm=*/0.0,
        /*mass_since_check=*/0.0,
        /*next_rebuild=*/config.window,
        /*warm=*/{}};
    sites_.push_back(std::move(st));
  }
}

void Da1Tracker::NoteExpirations(SiteState* st, Timestamp t) {
  std::vector<MatrixExpHistogram::Bucket> dropped;
  st->meh.Advance(t, &dropped);
  for (const MatrixExpHistogram::Bucket& b : dropped) {
    const Matrix rows = b.fd.RowsMatrix();
    for (int i = 0; i < rows.rows(); ++i) {
      st->c.AddOuterProduct(rows.Row(i), -1.0);
    }
    st->mass_since_check += b.mass;
  }
  if (t >= st->next_rebuild) {
    // Wipe the FD-shrinkage drift accumulated by bucket-granular
    // subtraction: re-derive C from the histogram (once per window).
    st->c = st->meh.QueryCovariance();
    st->next_rebuild = (t / config_.window + 1) * config_.window;
  }
}

void Da1Tracker::MaybeReport(int site, SiteState* st, Timestamp /*t*/) {
  if (st->mass_since_check <= 0.0) return;  // D unchanged since last check

  const double fnorm2 = st->meh.FrobeniusSquaredEstimate();
  const double threshold = eps_threshold_ * fnorm2;
  // ||D|| grows by at most the arrived mass plus the dropped-bucket mass
  // (each row's outer product has spectral norm equal to its squared
  // norm), both of which are accumulated in mass_since_check.
  if (config_.da1_lazy_norm_check &&
      st->last_gap_norm + st->mass_since_check < threshold) {
    return;
  }

  ++norm_checks_;
  const int d = config_.dim;
  const Matrix gap = Subtract(st->c, st->c_hat);
  const double gap_norm = SpectralNormSymWarm(
      [&gap](const double* x, double* y) { MatVec(gap, x, y); }, d,
      &st->warm);

  // Report early (at 3/4 of the threshold) so every exact check buys at
  // least threshold/4 of slack before the next one can trigger; reporting
  // more often than Algorithm 4's letter only lowers the error.
  if (gap_norm > 0.75 * threshold && gap_norm > 0.0) {
    ++decompositions_;
    const EigenResult eig = SymmetricEigen(gap);
    // Ship every significant eigenpair; half the trigger threshold so the
    // residual drops well below it (avoids re-trigger thrash).
    const double send_cut = std::max(threshold / 2.0, 1e-12 * gap_norm);
    double residual = 0.0;
    for (int i = 0; i < d; ++i) {
      const double lambda = eig.values[i];
      if (std::fabs(lambda) >= send_cut) {
        // Ship (lambda_i, v_i): d + 1 words. The site's view of the
        // coordinator updates here; the coordinator's C_hat updates on
        // delivery.
        st->c_hat.AddOuterProduct(eig.vectors.Row(i), lambda);
        net::EigenpairMsg msg;
        msg.lambda = lambda;
        msg.vector.assign(eig.vectors.Row(i), eig.vectors.Row(i) + d);
        channel_->Send(net::Direction::kUp, site, msg);
      } else {
        residual = std::max(residual, std::fabs(lambda));
      }
    }
    st->last_gap_norm = residual;
  } else {
    st->last_gap_norm = gap_norm;
  }
  st->mass_since_check = 0.0;
}

Status Da1Tracker::Observe(int site, const TimedRow& row) {
  DSWM_RETURN_NOT_OK(ValidateObserve(site, static_cast<int>(sites_.size()),
                                     row.timestamp));
  AdvanceTime(row.timestamp);

  SiteState& st = sites_[site];
  st.meh.Insert(row.values.data(), row.timestamp);
  st.c.AddOuterProduct(row.values.data(), 1.0);
  st.mass_since_check += row.NormSquared();
  MaybeReport(site, &st, row.timestamp);
  return Status::OK();
}

void Da1Tracker::AdvanceTime(Timestamp t) {
  if (t <= now_) {
    DSWM_CHECK_EQ(t, now_);
    return;
  }
  now_ = t;
  channel_->AdvanceTime(t);
  for (int j = 0; j < static_cast<int>(sites_.size()); ++j) {
    NoteExpirations(&sites_[j], t);
    MaybeReport(j, &sites_[j], t);
  }
}

CovarianceEstimate Da1Tracker::Query() const {
  // The copy is the snapshot semantics: the estimate must not alias the
  // live coordinator state.
  return CovarianceEstimate::FromCovariance(Matrix(coordinator_c_hat_));
}

long Da1Tracker::MaxSiteSpaceWords() const {
  long best = 0;
  const long d2 = static_cast<long>(config_.dim) * config_.dim;
  for (const SiteState& st : sites_) {
    best = std::max(best, st.meh.SpaceWords() + 2 * d2 + config_.dim);
  }
  return best;
}

}  // namespace dswm
