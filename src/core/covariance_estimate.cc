#include "core/covariance_estimate.h"

#include <utility>

#include "common/check.h"
#include "linalg/psd_sqrt.h"
#include "obs/span.h"

namespace dswm {

CovarianceEstimate CovarianceEstimate::FromRows(Matrix rows) {
  CovarianceEstimate est;
  est.is_rows_ = true;
  est.rows_ = std::move(rows);
  return est;
}

CovarianceEstimate CovarianceEstimate::FromCovariance(Matrix covariance) {
  CovarianceEstimate est;
  est.is_rows_ = false;
  est.rows_.reset();
  est.covariance_ = std::move(covariance);
  return est;
}

const Matrix& CovarianceEstimate::Rows() const {
  if (!rows_.has_value()) {
    DSWM_CHECK(!sealed_);
    obs::Span span("query.psd_sqrt");
    rows_ = PsdSqrtFromEigen(Eigen());
  }
  return *rows_;
}

const EigenResult& CovarianceEstimate::Eigen() const {
  if (!eigen_.has_value()) {
    DSWM_CHECK(!sealed_);
    obs::Span span("query.eigen");
    eigen_ = SymmetricEigen(Covariance());
  }
  return *eigen_;
}

const Matrix& CovarianceEstimate::Covariance() const {
  if (!covariance_.has_value()) {
    DSWM_CHECK(!sealed_);
    obs::Span span("query.gram");
    covariance_ = GramTranspose(*rows_);
  }
  return *covariance_;
}

void CovarianceEstimate::MaterializeAndSeal() {
  // Conversion order matters for the once-per-version accounting: the
  // covariance (gram for rows-native estimates) feeds the eigenbasis,
  // which feeds the PSD root for covariance-native estimates. Rows-native
  // estimates already hold their rows, so Rows() is a no-op there.
  static_cast<void>(Covariance());
  static_cast<void>(Eigen());
  static_cast<void>(Rows());
  sealed_ = true;
}

int CovarianceEstimate::Dim() const {
  return is_rows_ ? rows_->cols() : covariance_->cols();
}

}  // namespace dswm
