#include "core/sum_tracker.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"

namespace dswm {

SumTracker::SumTracker(int num_sites, Timestamp window, double eps,
                       std::unique_ptr<net::Channel> channel)
    : eps_report_(eps / 2.0), channel_(std::move(channel)) {
  DSWM_CHECK_GT(num_sites, 0);
  DSWM_CHECK_GT(eps, 0.0);
  if (channel_ == nullptr) {
    channel_ = std::make_unique<net::LoopbackChannel>(num_sites);
  }
  channel_->SetHandler([this](net::Delivery d) {
    if (const auto* msg = std::get_if<net::SumDeltaMsg>(&d.msg)) {
      ApplyDelta(msg->delta);
    }
  });
  sites_.reserve(num_sites);
  for (int j = 0; j < num_sites; ++j) {
    sites_.push_back(SiteState{ExponentialHistogram(eps / 4.0, window), 0.0});
  }
}

void SumTracker::CheckSite(int site, Timestamp t) {
  SiteState& s = sites_[site];
  const double c = s.histogram.Query(t);
  if (std::fabs(c - s.reported) > eps_report_ * c) {
    // Ship D = C - C_hat: one word. The site commits its report at send
    // time; the coordinator's sum moves when the frame is delivered.
    net::SumDeltaMsg msg;
    msg.delta = c - s.reported;
    s.reported = c;
    channel_->Send(net::Direction::kUp, site, msg);
  }
}

Status SumTracker::Observe(int site, double w, Timestamp t) {
  if (site < 0 || site >= static_cast<int>(sites_.size())) {
    return Status::InvalidArgument("SumTracker::Observe: site " +
                                   std::to_string(site) + " not in [0, " +
                                   std::to_string(sites_.size()) + ")");
  }
  channel_->AdvanceTime(t);
  sites_[site].histogram.Insert(w, t);
  CheckSite(site, t);
  return Status::OK();
}

void SumTracker::AdvanceTime(Timestamp t) {
  channel_->AdvanceTime(t);
  for (int j = 0; j < static_cast<int>(sites_.size()); ++j) CheckSite(j, t);
}

long SumTracker::MaxSiteSpaceWords() const {
  long best = 0;
  for (const SiteState& s : sites_) {
    best = std::max(best, s.histogram.SpaceWords() + 1);
  }
  return best;
}

}  // namespace dswm
