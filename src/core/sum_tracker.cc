#include "core/sum_tracker.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace dswm {

SumTracker::SumTracker(int num_sites, Timestamp window, double eps,
                       CommStats* comm)
    : eps_report_(eps / 2.0), comm_(comm != nullptr ? comm : &own_) {
  DSWM_CHECK_GT(num_sites, 0);
  DSWM_CHECK_GT(eps, 0.0);
  sites_.reserve(num_sites);
  for (int j = 0; j < num_sites; ++j) {
    sites_.push_back(SiteState{ExponentialHistogram(eps / 4.0, window), 0.0});
  }
}

void SumTracker::CheckSite(int site, Timestamp t) {
  SiteState& s = sites_[site];
  const double c = s.histogram.Query(t);
  if (std::fabs(c - s.reported) > eps_report_ * c) {
    // Send D = C - C_hat: one word.
    comm_->SendUp(1);
    coordinator_sum_ += c - s.reported;
    s.reported = c;
  }
}

void SumTracker::Observe(int site, double w, Timestamp t) {
  DSWM_CHECK_GE(site, 0);
  DSWM_CHECK_LT(site, static_cast<int>(sites_.size()));
  sites_[site].histogram.Insert(w, t);
  CheckSite(site, t);
}

void SumTracker::AdvanceTime(Timestamp t) {
  for (int j = 0; j < static_cast<int>(sites_.size()); ++j) CheckSite(j, t);
}

long SumTracker::MaxSiteSpaceWords() const {
  long best = 0;
  for (const SiteState& s : sites_) {
    best = std::max(best, s.histogram.SpaceWords() + 1);
  }
  return best;
}

}  // namespace dswm
