// Sampling with replacement under a *shared* threshold (the refinement
// the paper adopts from Cormode et al. [2] at the end of Section II-A).
//
// The direct PWR construction keeps l independent thresholds, so every
// sampler's threshold move costs a broadcast -- O(l log NR) threshold
// synchronizations per window. Here all l samplers share one threshold
// tau: a site ships (row, sampler, key) whenever that sampler's key
// reaches tau, and the coordinator adjusts tau lazily (double-style raise
// when it holds too much, halve-and-collect when some sampler runs dry),
// exactly one broadcast per adjustment regardless of l.
//
// Per-row site work remains Theta(l) -- intrinsic to with-replacement
// sampling -- but threshold traffic drops from l broadcasts to one.

#ifndef DSWM_CORE_SHARED_THRESHOLD_WR_TRACKER_H_
#define DSWM_CORE_SHARED_THRESHOLD_WR_TRACKER_H_

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/sum_tracker.h"
#include "core/tracker.h"
#include "core/tracker_config.h"
#include "net/channel.h"
#include "sampling/priority.h"

namespace dswm {

/// PWR / ESWR with one shared threshold across the l samplers.
class SharedThresholdWrTracker : public DistributedTracker {
 public:
  SharedThresholdWrTracker(const TrackerConfig& config,
                           SamplingScheme scheme);

  Status Observe(int site, const TimedRow& row) override;
  void AdvanceTime(Timestamp t) override;
  CovarianceEstimate Query() const override;
  const CommStats& Comm() const override;
  std::vector<net::Channel*> Channels() const override;
  long MaxSiteSpaceWords() const override;
  std::string Name() const override { return name_; }
  int Dim() const override { return config_.dim; }

  int ell() const { return ell_; }
  double threshold() const { return tau_; }
  /// Number of samplers whose coordinator set currently holds at least
  /// one active entry (tests: must be l once enough rows are active).
  int SamplersWithSample() const;

 private:
  // A site-queued candidate: the row (shared across samplers to avoid l
  // copies) plus this sampler's key.
  struct Pending {
    std::shared_ptr<const TimedRow> row;
    double key;
  };
  struct SiteState {
    // Per-sampler queue, newest-dominates with l=1: only the best
    // pending key per sampler survives, plus arrival order for expiry.
    std::vector<std::list<Pending>> queues;  // size ell
    Rng rng;
  };
  // Coordinator-held entry for one sampler.
  struct CoordEntryWr {
    std::shared_ptr<const TimedRow> row;
    double key;
    Timestamp timestamp;
  };

  void OnDelivery(net::Delivery d);
  void Ship(int site, int sampler, const TimedRow& row, double key);
  void BroadcastThreshold();
  void Maintain();
  bool AnythingOutstanding() const;

  TrackerConfig config_;
  SamplingScheme scheme_;
  std::string name_;
  int ell_;
  double tau_;
  std::vector<SiteState> sites_;
  // Per sampler: active entries with key >= tau, newest-best first.
  std::vector<std::vector<CoordEntryWr>> held_;  // size ell
  Timestamp now_;
  std::unique_ptr<net::Channel> channel_;
  mutable CommStats comm_cache_;  // this channel + the fnorm tracker's
  SumTracker fnorm_tracker_;
  long total_held_ = 0;
};

}  // namespace dswm

#endif  // DSWM_CORE_SHARED_THRESHOLD_WR_TRACKER_H_
