// DA2: second deterministic protocol for tracking a covariance sketch
// (Algorithm 5), built on the forward-backward framework [28] and the
// IWMT significant-direction protocol [1] accelerated by Frequent
// Directions [13].
//
// Time is cut into windows (kW, (k+1)W]. Per site:
//  * IWMT_a (forward) tracks arrivals of the active window and ships
//    positive directions (flag +1).
//  * At each boundary kW the site replays the just-ended window's rows
//    (stored compactly in a matrix exponential histogram) in reverse time
//    order through IWMT_c, recording its outputs in a queue Q with their
//    original (bucket-granular) timestamps.
//  * During the next window, entries of Q are fed into IWMT_e as they
//    expire; its outputs ship as negative directions (flag -1).
// The coordinator maintains, per site, C_active (sum of forward outputs)
// and C_expiring (previous window's estimate minus backward outputs) and
// answers with their sum. At each boundary it rebases C_expiring :=
// C_active, discarding the stale residue so approximation drift cannot
// accumulate across windows (see DESIGN.md item 5). Communication is
// strictly one-way (sites -> coordinator).
//
// DA2 never eigendecomposes a d x d matrix on the update path -- only the
// small residual sketches -- which is why it scales to large d where DA1
// does not (Section IV-B).

#ifndef DSWM_CORE_DA2_TRACKER_H_
#define DSWM_CORE_DA2_TRACKER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/iwmt.h"
#include "core/tracker.h"
#include "core/tracker_config.h"
#include "net/channel.h"
#include "window/matrix_eh.h"

namespace dswm {

/// Deterministic tracker DA2 (Algorithm 5).
class Da2Tracker : public DistributedTracker {
 public:
  explicit Da2Tracker(const TrackerConfig& config);

  Status Observe(int site, const TimedRow& row) override;
  void AdvanceTime(Timestamp t) override;
  CovarianceEstimate Query() const override;
  const CommStats& Comm() const override { return channel_->comm(); }
  std::vector<net::Channel*> Channels() const override {
    return {channel_.get()};
  }
  long MaxSiteSpaceWords() const override;
  std::string Name() const override { return "DA2"; }
  int Dim() const override { return config_.dim; }

  /// Window boundaries processed so far (tests).
  long boundaries_processed() const { return boundaries_; }

 private:
  struct QEntry {
    std::vector<double> direction;
    Timestamp timestamp;
  };

  struct SiteState {
    MatrixExpHistogram meh;      // current-window rows, compactly
    IwmtProtocol iwmt_a;         // forward tracking of arrivals
    std::unique_ptr<IwmtProtocol> iwmt_e;  // backward (fresh per window)
    std::vector<QEntry> q;       // replay outputs, descending timestamp
    Matrix c_active;             // coordinator: forward accumulation
    Matrix c_expiring;           // coordinator: expiring-window estimate
    Timestamp next_boundary;
  };

  void ProcessBoundary(int site, SiteState* st, Timestamp boundary);
  void FeedExpired(int site, SiteState* st, Timestamp t);
  void ShipForward(int site, const std::vector<IwmtOutput>& outs);
  void ShipBackward(int site, const std::vector<IwmtOutput>& outs);
  double SiteTheta(const SiteState& st, double fallback_mass) const;

  TrackerConfig config_;
  double eps_threshold_;  // eps/2: IWMT_a and IWMT_e threshold factor
  int ell_fd_;
  std::vector<SiteState> sites_;
  Timestamp now_;
  bool initialized_ = false;
  std::unique_ptr<net::Channel> channel_;
  long boundaries_ = 0;
};

}  // namespace dswm

#endif  // DSWM_CORE_DA2_TRACKER_H_
