// The unified tracker query result: one covariance estimate, viewable as
// sketch rows or as a covariance matrix, converting lazily (and caching)
// so measurement loops never pay a repeated O(d^3) PSD square root.

#ifndef DSWM_CORE_COVARIANCE_ESTIMATE_H_
#define DSWM_CORE_COVARIANCE_ESTIMATE_H_

#include <optional>

#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"

namespace dswm {

/// A tracker's covariance estimate in whichever form the protocol produces
/// natively: sampling protocols hold sketch rows B (l x d with
/// B^T B ~= A_w^T A_w), deterministic protocols hold C_hat = B^T B (d x d).
/// Either view is available through Rows() / Covariance(); the non-native
/// one is derived on first access and cached:
///
///   rows -> covariance   GramTranspose (exact, B^T B)
///   covariance -> rows   PsdSqrt (Algorithm 4/5 QUERY(); O(d^3), clamps
///                        negative eigenvalues, r <= d rows)
///
/// Move-only-cheap value type: moves are O(1); copies deep-copy the cached
/// matrices. Lazy conversion mutates a cache, so a single instance must not
/// be queried from multiple threads concurrently (distinct instances are
/// independent).
class CovarianceEstimate {
 public:
  /// Empty estimate of dimension 0 in rows form.
  CovarianceEstimate() : is_rows_(true), rows_(Matrix()) {}

  [[nodiscard]] static CovarianceEstimate FromRows(Matrix rows);
  [[nodiscard]] static CovarianceEstimate FromCovariance(Matrix covariance);

  CovarianceEstimate(CovarianceEstimate&&) noexcept = default;
  CovarianceEstimate& operator=(CovarianceEstimate&&) noexcept = default;
  CovarianceEstimate(const CovarianceEstimate&) = default;
  CovarianceEstimate& operator=(const CovarianceEstimate&) = default;

  /// True when the native (conversion-free) view is Rows(). Error
  /// evaluation dispatches on this to stay in the cheap form.
  [[nodiscard]] bool NativeIsRows() const { return is_rows_; }

  /// The sketch B (r x d). Derived via PsdSqrt and cached when the native
  /// form is a covariance.
  [[nodiscard]] const Matrix& Rows() const;

  /// The covariance estimate B^T B (d x d). Derived via GramTranspose and
  /// cached when the native form is rows.
  [[nodiscard]] const Matrix& Covariance() const;

  /// Eigendecomposition of Covariance(), computed once per estimate and
  /// cached. Every consumer of the same snapshot (the Rows() conversion,
  /// anomaly scoring) shares this single SymmetricEigen instead of each
  /// recomputing it.
  [[nodiscard]] const EigenResult& Eigen() const;

  /// Eagerly computes every view (Covariance, Eigen, and Rows -- the
  /// O(d^3) PSD root) and freezes the estimate: after sealing, no accessor
  /// ever converts, so concurrent readers see pure-const state. This is
  /// the serving tier's publication step; the semantic linter
  /// (snapshot-immutability) confines callers to src/serve/. Accessors
  /// CHECK-fail if a sealed estimate would ever need a conversion, which
  /// cannot happen after a successful seal.
  void MaterializeAndSeal();

  /// True once MaterializeAndSeal() ran; sealed estimates are safe to read
  /// from any number of threads concurrently.
  [[nodiscard]] bool sealed() const { return sealed_; }

  /// Row dimension d (0 for an empty estimate).
  [[nodiscard]] int Dim() const;

 private:
  bool is_rows_;
  bool sealed_ = false;
  mutable std::optional<Matrix> rows_;
  mutable std::optional<Matrix> covariance_;
  mutable std::optional<EigenResult> eigen_;
};

}  // namespace dswm

#endif  // DSWM_CORE_COVARIANCE_ESTIMATE_H_
