#include "core/tracker.h"

#include <string>

#include "net/channel.h"

namespace dswm {

void DistributedTracker::PumpChannels(Timestamp t) {
  for (net::Channel* channel : Channels()) channel->AdvanceTime(t);
}

Status DistributedTracker::ValidateObserve(int site, int num_sites,
                                           Timestamp t) {
  if (site < 0 || site >= num_sites) {
    return Status::InvalidArgument("Observe: site " + std::to_string(site) +
                                   " out of range [0, " +
                                   std::to_string(num_sites) + ")");
  }
  if (t < last_observe_time_) {
    return Status::InvalidArgument(
        "Observe: timestamp regression (" + std::to_string(t) + " < " +
        std::to_string(last_observe_time_) + ")");
  }
  last_observe_time_ = t;
  return Status::OK();
}

}  // namespace dswm
