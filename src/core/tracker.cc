#include "core/tracker.h"

#include "linalg/psd_sqrt.h"

namespace dswm {

Matrix DistributedTracker::SketchRows() const {
  Approximation approx = GetApproximation();
  if (approx.is_rows) return std::move(approx.sketch_rows);
  return PsdSqrt(approx.covariance);
}

}  // namespace dswm
