#include "core/da2_tracker.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dswm {

Da2Tracker::Da2Tracker(const TrackerConfig& config)
    : config_(config),
      eps_threshold_(config.epsilon / 2.0),
      ell_fd_(static_cast<int>(std::ceil(2.0 / config.epsilon))),
      now_(std::numeric_limits<Timestamp>::min() / 2),
      channel_(MakeTrackerChannel(config, 0)) {
  DSWM_CHECK(config.Validate().ok());
  // Coordinator side: a delivered direction updates this site's forward
  // (flag +1) or expiring (flag -1) accumulation.
  channel_->SetHandler([this](net::Delivery d) {
    if (const auto* m = std::get_if<net::Da2DeltaMsg>(&d.msg)) {
      SiteState& st = sites_[d.site];
      if (m->flag > 0) {
        st.c_active.AddOuterProduct(m->direction.data(), 1.0);
      } else {
        st.c_expiring.AddOuterProduct(m->direction.data(), -1.0);
      }
    }
  });
  sites_.reserve(config.num_sites);
  for (int j = 0; j < config.num_sites; ++j) {
    SiteState st{
        MatrixExpHistogram(config.dim, config.epsilon / 3.0, config.window),
        IwmtProtocol(config.dim, ell_fd_),
        std::make_unique<IwmtProtocol>(config.dim, ell_fd_),
        {},
        Matrix(config.dim, config.dim),
        Matrix(config.dim, config.dim),
        /*next_boundary=*/0};
    sites_.push_back(std::move(st));
  }
}

double Da2Tracker::SiteTheta(const SiteState& st, double fallback_mass) const {
  const double mass =
      std::max(st.meh.FrobeniusSquaredEstimate(), fallback_mass);
  return std::max(eps_threshold_ * mass, 1e-300);
}

void Da2Tracker::ShipForward(int site, const std::vector<IwmtOutput>& outs) {
  for (const IwmtOutput& o : outs) {
    net::Da2DeltaMsg msg;  // (m_i, t_i, flag = +1): d + 2 words
    msg.direction = o.direction;
    msg.timestamp = now_;
    msg.flag = 1;
    channel_->Send(net::Direction::kUp, site, msg);
  }
}

void Da2Tracker::ShipBackward(int site, const std::vector<IwmtOutput>& outs) {
  for (const IwmtOutput& o : outs) {
    net::Da2DeltaMsg msg;  // (m'_i, t_i, flag = -1): d + 2 words
    msg.direction = o.direction;
    msg.timestamp = now_;
    msg.flag = -1;
    channel_->Send(net::Direction::kUp, site, msg);
  }
}

void Da2Tracker::FeedExpired(int site, SiteState* st, Timestamp t) {
  const Timestamp cutoff = t - config_.window;
  std::vector<IwmtOutput> outs;
  while (!st->q.empty() && st->q.back().timestamp <= cutoff) {
    const QEntry& e = st->q.back();
    const double w = NormSquared(e.direction.data(), config_.dim);
    if (w > 0.0) {
      st->iwmt_e->Input(e.direction.data(), SiteTheta(*st, w), &outs);
    }
    st->q.pop_back();
  }
  if (!outs.empty()) ShipBackward(site, outs);
}

void Da2Tracker::ProcessBoundary(int site, SiteState* st, Timestamp boundary) {
  ++boundaries_;
  st->meh.Advance(boundary);

  // Finish the backward side of the ending window: everything left in Q
  // has expired by now; the IWMT_e residual flushes as negative updates.
  FeedExpired(site, st, boundary);
  DSWM_CHECK(st->q.empty());
  {
    std::vector<IwmtOutput> outs;
    st->iwmt_e->Flush(&outs);
    ShipBackward(site, outs);
  }

  // Finish the forward side: flush IWMT_a so unreported mass and FD
  // shrinkage do not leak across windows.
  if (config_.da2_flush_at_boundary) {
    std::vector<IwmtOutput> outs;
    st->iwmt_a.Flush(&outs);
    ShipForward(site, outs);
  }

  // Coordinator rebase (both parties know the boundary; no messages):
  // the ending window's arrivals become the expiring window, and the
  // stale residue of the old expiring estimate is discarded.
  st->c_expiring = st->c_active;
  st->c_active.SetZero();

  // Reverse replay of the ended window (IWMT_c): read the mEH buckets
  // newest -> oldest under the growing threshold eps * (mass read so
  // far); record outputs into Q with bucket-granular timestamps.
  IwmtProtocol iwmt_c(config_.dim, ell_fd_);
  st->q.clear();
  double mass_so_far = 0.0;
  const auto& buckets = st->meh.buckets();
  std::vector<IwmtOutput> outs;
  for (auto it = buckets.rbegin(); it != buckets.rend(); ++it) {
    const Matrix rows = it->fd.RowsMatrix();
    for (int i = 0; i < rows.rows(); ++i) {
      const double w = NormSquared(rows.Row(i), config_.dim);
      if (w <= 0.0) continue;
      mass_so_far += w;
      outs.clear();
      iwmt_c.Input(rows.Row(i),
                   std::max(eps_threshold_ * mass_so_far, 1e-300), &outs);
      for (IwmtOutput& o : outs) {
        st->q.push_back(QEntry{std::move(o.direction), it->t_newest});
      }
    }
  }
  outs.clear();
  iwmt_c.Flush(&outs);
  const Timestamp oldest = buckets.empty() ? boundary : buckets.front().t_oldest;
  for (IwmtOutput& o : outs) {
    st->q.push_back(QEntry{std::move(o.direction), oldest});
  }

  // Fresh backward tracker for the new window.
  st->iwmt_e = std::make_unique<IwmtProtocol>(config_.dim, ell_fd_);
}

Status Da2Tracker::Observe(int site, const TimedRow& row) {
  DSWM_RETURN_NOT_OK(ValidateObserve(site, static_cast<int>(sites_.size()),
                                     row.timestamp));
  AdvanceTime(row.timestamp);

  SiteState& st = sites_[site];
  const double w = row.NormSquared();
  st.meh.Insert(row.values.data(), row.timestamp);
  if (w <= 0.0) return Status::OK();
  std::vector<IwmtOutput> outs;
  st.iwmt_a.Input(row.values.data(), SiteTheta(st, w), &outs);
  ShipForward(site, outs);
  return Status::OK();
}

void Da2Tracker::AdvanceTime(Timestamp t) {
  if (initialized_ && t <= now_) {
    DSWM_CHECK_EQ(t, now_);
    return;
  }
  if (!initialized_) {
    // First boundary: the smallest multiple of W that is >= t.
    const Timestamp w = config_.window;
    const Timestamp nb = ((t + w - 1) / w) * w;
    for (SiteState& st : sites_) st.next_boundary = std::max(nb, w);
    initialized_ = true;
  }
  now_ = t;
  channel_->AdvanceTime(t);
  for (int j = 0; j < static_cast<int>(sites_.size()); ++j) {
    SiteState& st = sites_[j];
    while (st.next_boundary < t) {
      ProcessBoundary(j, &st, st.next_boundary);
      st.next_boundary += config_.window;
    }
    FeedExpired(j, &st, t);
    st.meh.Advance(t);
  }
}

CovarianceEstimate Da2Tracker::Query() const {
  Matrix covariance(config_.dim, config_.dim);
  for (const SiteState& st : sites_) {
    covariance.AddScaled(st.c_active, 1.0);
    covariance.AddScaled(st.c_expiring, 1.0);
  }
  return CovarianceEstimate::FromCovariance(std::move(covariance));
}

long Da2Tracker::MaxSiteSpaceWords() const {
  long best = 0;
  for (const SiteState& st : sites_) {
    long words = st.meh.SpaceWords() + st.iwmt_a.SpaceWords() +
                 st.iwmt_e->SpaceWords() +
                 static_cast<long>(st.q.size()) * (config_.dim + 1);
    best = std::max(best, words);
  }
  return best;
}

}  // namespace dswm
