// Sampling *with* replacement (PWR / ESWR, Section II-A end & II-B).
//
// l independent single-sample trackers run side by side, each using the
// without-replacement machinery to maintain O(1) samples with its own
// threshold (the paper's direct construction; the shared-threshold
// refinement of [2] is future work). Every row is offered to every
// sampler, so update cost is Theta(l) per row -- the reason the paper
// excludes the WR schemes from its large-scale experiments; they are
// provided for completeness and exercised by the test suite at small l.

#ifndef DSWM_CORE_WITH_REPLACEMENT_TRACKER_H_
#define DSWM_CORE_WITH_REPLACEMENT_TRACKER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/sampling_tracker.h"
#include "core/sum_tracker.h"

namespace dswm {

/// PWR / ESWR tracker: l independent single-sample protocols.
class WithReplacementTracker : public DistributedTracker {
 public:
  WithReplacementTracker(const TrackerConfig& config, SamplingScheme scheme);

  Status Observe(int site, const TimedRow& row) override;
  void AdvanceTime(Timestamp t) override;
  CovarianceEstimate Query() const override;
  const CommStats& Comm() const override;
  std::vector<net::Channel*> Channels() const override;
  long MaxSiteSpaceWords() const override;
  std::string Name() const override { return name_; }
  int Dim() const override { return config_.dim; }

  int ell() const { return static_cast<int>(samplers_.size()); }

 private:
  TrackerConfig config_;
  SamplingScheme scheme_;
  std::string name_;
  std::vector<std::unique_ptr<SamplingTracker>> samplers_;
  SumTracker fnorm_tracker_;
  mutable CommStats aggregate_;
};

}  // namespace dswm

#endif  // DSWM_CORE_WITH_REPLACEMENT_TRACKER_H_
