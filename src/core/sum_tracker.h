// Deterministic SUM tracking over distributed sliding windows
// (Algorithm 3, Theorem 1).
//
// Each site keeps a generalized exponential histogram of its window sum C
// and the coordinator's current estimate C_hat for this site; when
// |C - C_hat| > eps' * C it ships the delta D (one word). The coordinator
// sums the m per-site estimates. Internal slack (eps' = eps/2, gEH at
// eps/4) absorbs the histogram's own approximation so the end-to-end
// relative error stays below eps.
//
// This is both a standalone public tracker (SUM is matrix tracking with
// d = 1) and the subroutine ES sampling uses to track ||A_w||_F^2. All
// deltas travel through a net::Channel as kSumDelta frames; the
// coordinator's sum is updated only when a frame is delivered, so under a
// faulty channel the estimate lags or loses exactly the deltas the
// network loses.

#ifndef DSWM_CORE_SUM_TRACKER_H_
#define DSWM_CORE_SUM_TRACKER_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "monitor/comm_stats.h"
#include "net/channel.h"
#include "window/exponential_histogram.h"

namespace dswm {

/// Tracks the sum of positive weights in the window across m sites with
/// relative error <= eps.
class SumTracker {
 public:
  /// If `channel` is null, a deterministic loopback channel is created.
  /// The tracker owns the channel and installs its delivery handler.
  SumTracker(int num_sites, Timestamp window, double eps,
             std::unique_ptr<net::Channel> channel = nullptr);

  /// Weight w (> 0) arrives at `site` at time t (non-decreasing).
  /// InvalidArgument on an out-of-range site, matching the
  /// DistributedTracker Observe contract.
  Status Observe(int site, double w, Timestamp t);

  /// Advances the clock; sites re-check their thresholds because expiry
  /// shrinks C even without arrivals.
  void AdvanceTime(Timestamp t);

  /// Coordinator's estimate of the window sum.
  [[nodiscard]] double Estimate() const { return coordinator_sum_; }

  [[nodiscard]] const CommStats& Comm() const { return channel_->comm(); }

  /// The transport this tracker sends through.
  [[nodiscard]] net::Channel* channel() const { return channel_.get(); }

  /// Coordinator-side application of one delivered delta. Public so an
  /// enclosing protocol routing a shared channel can forward kSumDelta
  /// frames here.
  void ApplyDelta(double delta) { coordinator_sum_ += delta; }

  /// Space (words) of the most loaded site: gEH buckets + C_hat.
  [[nodiscard]] long MaxSiteSpaceWords() const;

 private:
  struct SiteState {
    ExponentialHistogram histogram;
    double reported;  // C_hat for this site (site and coordinator agree)
  };

  void CheckSite(int site, Timestamp t);

  double eps_report_;
  std::vector<SiteState> sites_;
  double coordinator_sum_ = 0.0;
  std::unique_ptr<net::Channel> channel_;
};

}  // namespace dswm

#endif  // DSWM_CORE_SUM_TRACKER_H_
