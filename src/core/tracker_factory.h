// Factory for every tracking protocol in the paper.

#ifndef DSWM_CORE_TRACKER_FACTORY_H_
#define DSWM_CORE_TRACKER_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/tracker.h"
#include "core/tracker_config.h"

namespace dswm {

/// The protocols evaluated in the paper, plus the with-replacement
/// variants it describes but excludes from large-scale experiments.
enum class Algorithm {
  kPwor,      // priority sampling without replacement (Alg. 1/2)
  kPworAll,   // PWOR estimating from all coordinator-held samples
  kEswor,     // ES sampling without replacement
  kEsworAll,  // ESWOR estimating from all coordinator-held samples
  kDa1,       // deterministic, eigenpair shipping (Alg. 4)
  kDa2,       // deterministic, forward-backward IWMT (Alg. 5)
  kPwr,       // priority sampling with replacement
  kEswr,      // ES sampling with replacement
  kPwrShared,   // PWR under one shared threshold ([2]'s refinement)
  kEswrShared,  // ESWR under one shared threshold
  kCentral,     // ship-everything baseline (centralized mEH)
};

/// Display name matching the paper's figures.
const char* AlgorithmName(Algorithm algorithm);

/// Parses a display name ("PWOR-ALL", case-sensitive) back to the enum.
StatusOr<Algorithm> ParseAlgorithm(const std::string& name);

/// The six algorithms the paper's experiments compare.
std::vector<Algorithm> PaperAlgorithms();

/// Builds a tracker; fails on invalid configuration.
StatusOr<std::unique_ptr<DistributedTracker>> MakeTracker(
    Algorithm algorithm, const TrackerConfig& config);

}  // namespace dswm

#endif  // DSWM_CORE_TRACKER_FACTORY_H_
