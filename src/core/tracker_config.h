// Configuration shared by all distributed sliding-window trackers.

#ifndef DSWM_CORE_TRACKER_CONFIG_H_
#define DSWM_CORE_TRACKER_CONFIG_H_

#include <cmath>
#include <cstdint>

#include "common/status.h"
#include "net/channel.h"
#include "stream/timed_row.h"

namespace dswm {

/// Which threshold-maintenance protocol a sampling tracker runs.
enum class SamplingProtocol {
  /// Algorithm 1: |S| kept at exactly l; every change re-synchronizes tau.
  kSimple,
  /// Algorithm 2: l <= |S| <= 4l with lazy tau broadcasts (the default).
  kLazyBroadcast,
};

/// Parameters for building a tracker.
struct TrackerConfig {
  /// Row dimension d.
  int dim = 0;
  /// Number of distributed sites m.
  int num_sites = 1;
  /// Window length W in ticks.
  Timestamp window = 1;
  /// Target covariance error epsilon.
  double epsilon = 0.05;
  /// RNG seed (sampling protocols and tie-breaking).
  uint64_t seed = 1;

  /// Sample-set size l; 0 derives l = ceil(sample_constant *
  /// log(1/eps)/eps^2) per the paper's bound.
  int ell_override = 0;
  /// Leading constant for the derived l.
  double sample_constant = 1.0;
  /// Protocol for sampling trackers.
  SamplingProtocol protocol = SamplingProtocol::kLazyBroadcast;

  /// DA1: skip the spectral-norm check until the accumulated arrived or
  /// expired squared-norm mass could possibly cross the threshold (sound
  /// short-circuit; see DESIGN.md). Off = re-check on every row.
  bool da1_lazy_norm_check = true;

  /// DA2: flush the forward IWMT residual at window boundaries so
  /// unreported mass and FD shrinkage cannot accumulate across windows
  /// (DESIGN.md item 5). Off reproduces the drift the flush prevents
  /// (ablation only).
  bool da2_flush_at_boundary = true;

  /// Transport profile. All-zero (the default) selects the deterministic
  /// loopback channel; any fault knob selects the fault injector.
  net::NetProfile net;

  /// Transport backend override, installed by a runtime (src/runtime)
  /// before MakeTracker. Null keeps the default in-process selection
  /// above. Every sub-protocol channel a tracker constructs goes through
  /// this hook, so a single assignment moves the whole protocol onto an
  /// event-queued or cross-process transport.
  net::ChannelBackendFn channel_backend;

  /// Derived sample-set size.
  int SampleSize() const {
    if (ell_override > 0) return ell_override;
    const double e = epsilon;
    return static_cast<int>(
        std::ceil(sample_constant * std::log(1.0 / e) / (e * e)));
  }

  /// Validates the configuration.
  Status Validate() const {
    if (dim <= 0) return Status::InvalidArgument("dim must be > 0");
    if (num_sites <= 0) return Status::InvalidArgument("num_sites must be > 0");
    if (window <= 0) return Status::InvalidArgument("window must be > 0");
    if (!(epsilon > 0.0) || epsilon >= 1.0) {
      return Status::InvalidArgument("epsilon must be in (0, 1)");
    }
    DSWM_RETURN_NOT_OK(net.Validate());
    return Status::OK();
  }
};

/// Builds the transport for one (sub-)protocol channel of a tracker:
/// the configured backend when one is installed, MakeChannel's default
/// loopback/faulty selection otherwise. `salt` decorrelates sub-protocol
/// fault RNGs; trackers pass the same salts they always have, so a
/// backend swap never changes a seeded fault sequence.
inline std::unique_ptr<net::Channel> MakeTrackerChannel(
    const TrackerConfig& config, uint64_t salt) {
  if (config.channel_backend) {
    return config.channel_backend(config.net, config.num_sites, salt);
  }
  return net::MakeChannel(config.net, config.num_sites, salt);
}

}  // namespace dswm

#endif  // DSWM_CORE_TRACKER_CONFIG_H_
