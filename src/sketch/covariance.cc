#include "sketch/covariance.h"

#include <vector>

namespace dswm {

double CovarianceError(const Matrix& cov_exact,
                       const SymmetricApplyFn& estimate_apply,
                       double fnorm2) {
  const int d = cov_exact.rows();
  DSWM_CHECK_EQ(cov_exact.cols(), d);
  if (fnorm2 <= 0.0) return 0.0;

  std::vector<double> tmp(d);
  const SymmetricApplyFn diff = [&](const double* x, double* y) {
    MatVec(cov_exact, x, y);                  // y = C x
    estimate_apply(x, tmp.data());            // tmp = S x
    for (int i = 0; i < d; ++i) y[i] -= tmp[i];
  };
  return SpectralNormSym(diff, d) / fnorm2;
}

double CovarianceErrorOfSketch(const Matrix& cov_exact,
                               const Matrix& sketch_rows, double fnorm2) {
  const int d = cov_exact.rows();
  std::vector<double> z(std::max(sketch_rows.rows(), 1));
  return CovarianceError(
      cov_exact,
      [&](const double* x, double* y) {
        if (sketch_rows.rows() == 0) {
          std::fill(y, y + d, 0.0);
          return;
        }
        MatVec(sketch_rows, x, z.data());      // z = B x
        MatTVec(sketch_rows, z.data(), y);     // y = B^T z
      },
      fnorm2);
}

double CovarianceErrorOfCovariance(const Matrix& cov_exact,
                                   const Matrix& cov_estimate,
                                   double fnorm2) {
  return CovarianceError(
      cov_exact,
      [&](const double* x, double* y) { MatVec(cov_estimate, x, y); },
      fnorm2);
}

}  // namespace dswm
