// Frequent Directions (Liberty, KDD 2013) with a 2l row buffer.
//
// Maintains a sketch B of at most 2l rows over a stream of rows of A such
// that  0 <= x^T (A^T A - B^T B) x <= Delta <= ||A||_F^2 / (l+1)  for all
// unit x, where Delta is the total shrinkage (sum of the per-shrink
// subtracted sigma^2). Choosing l ~ 1/eps gives an eps-covariance sketch.
//
// Used by: the matrix exponential histogram buckets (mEH, [17]), the IWMT
// protocol inside DA2 ([1]), and as the centralized baseline.

#ifndef DSWM_SKETCH_FREQUENT_DIRECTIONS_H_
#define DSWM_SKETCH_FREQUENT_DIRECTIONS_H_

#include "linalg/matrix.h"

namespace dswm {

/// Streaming Frequent Directions sketch.
class FrequentDirections {
 public:
  /// Sketch over d-dimensional rows with parameter l >= 1; holds at most
  /// 2l rows and guarantees covariance error <= ||A||_F^2 / (l+1).
  FrequentDirections(int d, int ell);

  [[nodiscard]] int dim() const { return d_; }
  [[nodiscard]] int ell() const { return ell_; }

  /// Number of rows currently held (sketch + unshrunk buffer), <= 2l.
  [[nodiscard]] int row_count() const { return count_; }

  /// Appends one row of A; triggers a shrink when the buffer fills.
  void Append(const double* row);

  /// Total squared Frobenius mass of all input appended so far.
  [[nodiscard]] double input_mass() const { return input_mass_; }

  /// Total shrinkage Delta: an upper bound on ||A^T A - B^T B||_2, and an
  /// exact accounting of the deleted directional mass.
  [[nodiscard]] double shrinkage() const { return shrinkage_; }

  /// Current sketch rows as a row_count() x d matrix (copies).
  [[nodiscard]] Matrix RowsMatrix() const;

  /// B^T B, the d x d covariance estimate.
  [[nodiscard]] Matrix Covariance() const;

  /// Appends every row of `other`'s sketch into this sketch (mergeability:
  /// the combined guarantee is the sum of both shrinkages plus any new
  /// shrinkage incurred). `other` must have the same dimension.
  void Merge(const FrequentDirections& other);

  /// Forces a shrink down to at most l rows (idempotent when already
  /// small). Used before serializing a bucket or emitting a sketch.
  void Compact();

  /// Drops all rows and accounting.
  void Reset();

  /// Space in words currently used (rows * d), for space accounting.
  [[nodiscard]] long SpaceWords() const { return static_cast<long>(count_) * d_; }

 private:
  void Shrink();

  int d_;
  int ell_;
  int capacity_;
  int count_ = 0;
  double input_mass_ = 0.0;
  double shrinkage_ = 0.0;
  // Row buffer; the first count_ rows are live. Grows lazily (single-row
  // mEH buckets stay tiny) up to capacity_ rows, after which Append/Merge
  // reuse rows in place and never reallocate. Shrink() rewrites the live
  // prefix in place instead of materializing live/shrunk copies.
  Matrix buffer_;
  // ell_ x d scratch for the shrunk directions, allocated on first
  // Shrink() and reused; never visible outside Shrink().
  Matrix scratch_;
};

}  // namespace dswm

#endif  // DSWM_SKETCH_FREQUENT_DIRECTIONS_H_
