#include "sketch/frequent_directions.h"

#include <algorithm>
#include <cmath>

#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "obs/metrics.h"

namespace dswm {

FrequentDirections::FrequentDirections(int d, int ell)
    : d_(d), ell_(ell), capacity_(2 * ell), buffer_(0, d), scratch_(0, d) {
  DSWM_CHECK_GT(d, 0);
  DSWM_CHECK_GE(ell, 1);
}

void FrequentDirections::Append(const double* row) {
  if (count_ == capacity_) Shrink();
  if (count_ == buffer_.rows()) {
    // Streaming mode (past ell rows the buffer is certain to fill):
    // reserve the full capacity once so no later append reallocates.
    if (count_ >= ell_) buffer_.Reserve(capacity_);
    buffer_.AppendRow(row, d_);
  } else {
    buffer_.SetRow(count_, row);
  }
  ++count_;
  input_mass_ += NormSquared(row, d_);
}

void FrequentDirections::Shrink() {
  if (count_ <= ell_) return;
  DSWM_OBS_COUNT("sketch.fd.shrinks", 1);
  const int n = count_;
  const int r = std::min(n, d_);

  // Eigendecompose through the Gram matrix of the short side (<= 2l or d),
  // reading the live prefix of the buffer directly -- no `live` copy.
  const bool rows_are_short = n <= d_;
  const EigenResult eig =
      rows_are_short ? SymmetricEigen(GramPrefix(buffer_, n))
                     : SymmetricEigen(GramTransposePrefix(buffer_, n));
  const auto sigma_squared = [&eig](int i) {
    return std::max(eig.values[i], 0.0);
  };

  // delta = sigma^2 of the (ell+1)-th direction (0 if fewer exist).
  const double delta = (ell_ < r) ? sigma_squared(ell_) : 0.0;
  shrinkage_ += delta;

  // Directions that survive the shrink: eigenvalues are descending, so
  // they form a prefix.
  int keep = 0;
  const int limit = std::min(ell_, r);
  while (keep < limit && sigma_squared(keep) - delta > 0.0) ++keep;

  if (rows_are_short) {
    // v_i = B^T u_i / sigma_i, assembled in the scratch block (the
    // computation reads every live buffer row, so it cannot write the
    // buffer in place), then re-orthonormalized exactly as RightSvd does.
    if (scratch_.rows() < limit) scratch_ = Matrix(ell_, d_);
    const double lead = sigma_squared(0);
    for (int i = 0; i < keep; ++i) {
      double* v = scratch_.Row(i);
      std::fill(v, v + d_, 0.0);
      const double lambda = sigma_squared(i);
      if (lambda > lead * 1e-26 && lambda > 0.0) {
        const double* u = eig.vectors.Row(i);
        for (int row = 0; row < n; ++row) Axpy(u[row], buffer_.Row(row), v, d_);
        Scale(v, d_, 1.0 / std::sqrt(lambda));
      }
      // else: zero row, its sigma is (numerically) zero.
    }
    OrthonormalizeRows(&scratch_, keep);
    for (int i = 0; i < keep; ++i) {
      const double s = std::sqrt(sigma_squared(i) - delta);
      const double* v = scratch_.Row(i);
      double* dst = buffer_.Row(i);
      for (int j = 0; j < d_; ++j) dst[j] = s * v[j];
    }
  } else {
    // d x d Gram: eigenvectors are the right singular vectors directly,
    // and they live outside the buffer, so write rows in place.
    for (int i = 0; i < keep; ++i) {
      const double s = std::sqrt(sigma_squared(i) - delta);
      const double* v = eig.vectors.Row(i);
      double* dst = buffer_.Row(i);
      for (int j = 0; j < d_; ++j) dst[j] = s * v[j];
    }
  }
  count_ = keep;
}

Matrix FrequentDirections::RowsMatrix() const {
  Matrix m(count_, d_);
  for (int i = 0; i < count_; ++i) m.SetRow(i, buffer_.Row(i));
  return m;
}

Matrix FrequentDirections::Covariance() const {
  return GramTransposePrefix(buffer_, count_);
}

void FrequentDirections::Merge(const FrequentDirections& other) {
  DSWM_CHECK_EQ(d_, other.d_);
  buffer_.Reserve(std::min(capacity_, count_ + other.count_));
  for (int i = 0; i < other.count_; ++i) {
    if (count_ == capacity_) Shrink();
    if (count_ == buffer_.rows()) {
      buffer_.AppendRow(other.buffer_.Row(i), d_);
    } else {
      buffer_.SetRow(count_, other.buffer_.Row(i));
    }
    ++count_;
  }
  input_mass_ += other.input_mass_;
  shrinkage_ += other.shrinkage_;
}

void FrequentDirections::Compact() {
  if (count_ > ell_) Shrink();
  if (buffer_.rows() > count_) {
    // Trim allocation slack so sealed buckets (mEH holds many) cost only
    // their live rows, matching the paper's space accounting.
    Matrix trimmed(count_, d_);
    for (int i = 0; i < count_; ++i) trimmed.SetRow(i, buffer_.Row(i));
    buffer_ = std::move(trimmed);
    scratch_ = Matrix(0, d_);
  }
}

void FrequentDirections::Reset() {
  count_ = 0;
  input_mass_ = 0.0;
  shrinkage_ = 0.0;
  // The buffer allocation is kept for reuse; only the live count resets.
}

}  // namespace dswm
