#include "sketch/frequent_directions.h"

#include <algorithm>
#include <cmath>

#include "linalg/svd.h"

namespace dswm {

FrequentDirections::FrequentDirections(int d, int ell)
    : d_(d), ell_(ell), capacity_(2 * ell), buffer_(0, d) {
  DSWM_CHECK_GT(d, 0);
  DSWM_CHECK_GE(ell, 1);
}

void FrequentDirections::Append(const double* row) {
  if (count_ == capacity_) Shrink();
  if (count_ == buffer_.rows()) {
    buffer_.AppendRow(row, d_);
  } else {
    buffer_.SetRow(count_, row);
  }
  ++count_;
  input_mass_ += NormSquared(row, d_);
}

void FrequentDirections::Shrink() {
  if (count_ <= ell_) return;

  Matrix live(count_, d_);
  for (int i = 0; i < count_; ++i) live.SetRow(i, buffer_.Row(i));
  const RightSvdResult svd = RightSvd(live);

  // delta = sigma^2 of the (ell+1)-th direction (0 if fewer exist).
  const int k = static_cast<int>(svd.sigma_squared.size());
  const double delta = (ell_ < k) ? svd.sigma_squared[ell_] : 0.0;
  shrinkage_ += delta;

  // Rebuild the buffer with the shrunk directions; this keeps memory
  // proportional to live rows (mEH holds many small buckets).
  Matrix shrunk(0, d_);
  std::vector<double> scaled(d_);
  for (int i = 0; i < std::min(ell_, k); ++i) {
    const double s2 = svd.sigma_squared[i] - delta;
    if (s2 <= 0.0) break;
    const double s = std::sqrt(s2);
    const double* v = svd.vt.Row(i);
    for (int j = 0; j < d_; ++j) scaled[j] = s * v[j];
    shrunk.AppendRow(scaled.data(), d_);
  }
  count_ = shrunk.rows();
  buffer_ = std::move(shrunk);
}

Matrix FrequentDirections::RowsMatrix() const {
  Matrix m(count_, d_);
  for (int i = 0; i < count_; ++i) m.SetRow(i, buffer_.Row(i));
  return m;
}

Matrix FrequentDirections::Covariance() const {
  Matrix c(d_, d_);
  for (int i = 0; i < count_; ++i) c.AddOuterProduct(buffer_.Row(i), 1.0);
  return c;
}

void FrequentDirections::Merge(const FrequentDirections& other) {
  DSWM_CHECK_EQ(d_, other.d_);
  for (int i = 0; i < other.count_; ++i) {
    if (count_ == capacity_) Shrink();
    if (count_ == buffer_.rows()) {
      buffer_.AppendRow(other.buffer_.Row(i), d_);
    } else {
      buffer_.SetRow(count_, other.buffer_.Row(i));
    }
    ++count_;
  }
  input_mass_ += other.input_mass_;
  shrinkage_ += other.shrinkage_;
}

void FrequentDirections::Compact() {
  if (count_ > ell_) Shrink();
}

void FrequentDirections::Reset() {
  count_ = 0;
  input_mass_ = 0.0;
  shrinkage_ = 0.0;
  buffer_ = Matrix(0, d_);
}

}  // namespace dswm
