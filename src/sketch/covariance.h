// Covariance-error evaluation: err = ||A^T A - B^T B||_2 / ||A||_F^2.
//
// This is the paper's quality metric (Section I-A). Evaluators take the
// exact window covariance C = A_w^T A_w plus the approximation in either
// sketch-rows or covariance-matrix form, and run power iteration on the
// implicit difference operator so a query costs O(d^2 + l*d) rather than
// O(d^3).

#ifndef DSWM_SKETCH_COVARIANCE_H_
#define DSWM_SKETCH_COVARIANCE_H_

#include "linalg/matrix.h"
#include "linalg/spectral_norm.h"

namespace dswm {

/// ||C - S||_2 / fnorm2 where S is given implicitly by `estimate_apply`
/// (y = S x). `cov_exact` is the d x d exact covariance; `fnorm2` is
/// ||A_w||_F^2. Returns 0 when the window is empty (fnorm2 == 0).
[[nodiscard]] double CovarianceError(const Matrix& cov_exact,
                       const SymmetricApplyFn& estimate_apply, double fnorm2);

/// Covariance error of a sketch given as rows B (l x d): S = B^T B applied
/// in O(l*d) per power-iteration step.
[[nodiscard]] double CovarianceErrorOfSketch(const Matrix& cov_exact,
                               const Matrix& sketch_rows, double fnorm2);

/// Covariance error of an explicit d x d covariance estimate.
[[nodiscard]] double CovarianceErrorOfCovariance(const Matrix& cov_exact,
                                   const Matrix& cov_estimate, double fnorm2);

}  // namespace dswm

#endif  // DSWM_SKETCH_COVARIANCE_H_
