// The Runtime interface: how a materialized stream is driven through a
// tracker.
//
// A Runtime owns two decisions: which transport backend the tracker's
// channels use (backend(), installed into TrackerConfig::channel_backend
// before MakeTracker), and in what order the replay's rows, queries, and
// transport deliveries execute (Run()). The lockstep runtime below is the
// bit-exact oracle -- RunTracker delegates to it unchanged -- while the
// event-driven and multi-process runtimes live in src/runtime and are
// built through MakeRuntime (runtime/runtime.h). Every runtime drives the
// same ReplayHarness, so results are comparable metric for metric.

#ifndef DSWM_MONITOR_RUNTIME_H_
#define DSWM_MONITOR_RUNTIME_H_

#include <vector>

#include "common/status.h"
#include "core/tracker.h"
#include "monitor/driver.h"
#include "net/channel.h"
#include "stream/timed_row.h"

namespace dswm {

class Runtime {
 public:
  virtual ~Runtime() = default;

  /// Display name ("lockstep", "events", "process").
  [[nodiscard]] virtual const char* name() const = 0;

  /// The channel backend trackers must be constructed with under this
  /// runtime; null keeps the default in-process loopback/faulty
  /// selection. Callers assign it to TrackerConfig::channel_backend
  /// before MakeTracker.
  [[nodiscard]] virtual net::ChannelBackendFn backend() const {
    return nullptr;
  }

  /// Replays `rows` through `tracker` and reports the run's metrics.
  /// Same validation and semantics contract as RunTracker (driver.h).
  [[nodiscard]] virtual StatusOr<RunResult> Run(
      DistributedTracker* tracker, const std::vector<TimedRow>& rows,
      int num_sites, Timestamp window, const DriverOptions& options) = 0;
};

/// The lockstep single-machine simulation: rows stepped in stream order,
/// channels drained synchronously inside each Send. The bit-exact oracle
/// every other runtime is verified against.
class LockstepRuntime final : public Runtime {
 public:
  [[nodiscard]] const char* name() const override { return "lockstep"; }
  [[nodiscard]] StatusOr<RunResult> Run(DistributedTracker* tracker,
                                        const std::vector<TimedRow>& rows,
                                        int num_sites, Timestamp window,
                                        const DriverOptions& options) override;
};

}  // namespace dswm

#endif  // DSWM_MONITOR_RUNTIME_H_
