// Experiment driver: feeds a materialized dataset through a tracker,
// measures covariance error at random query points against the exact
// window, and reports the paper's metrics (Section IV-A):
//   msg       -- average words sent per window,
//   avg_err / max_err -- covariance error over the query points,
//   space     -- maximum per-site space (words) over the query points,
//   update rate -- tracker-only rows per second of wall-clock.

#ifndef DSWM_MONITOR_DRIVER_H_
#define DSWM_MONITOR_DRIVER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/tracker.h"
#include "obs/metrics.h"
#include "stream/timed_row.h"

namespace dswm {

namespace serve {
class SnapshotStore;
}  // namespace serve

/// Driver options.
struct DriverOptions {
  /// Number of random query timestamps (the paper uses 50).
  int query_points = 50;
  /// Query points are drawn from row indices >= warmup_fraction * n so
  /// measurements happen in steady state (after the first window fills).
  double warmup_fraction = 0.25;
  /// Seed for site assignment and query-point selection.
  uint64_t seed = 1234;
  /// When non-empty, the merged message-ledger trace of every channel the
  /// tracker owns is written here as JSONL (one transmission per line).
  std::string trace_jsonl;
  /// When non-null, the tracker's estimate is published into this store at
  /// every window-advance boundary (the first row of each window period)
  /// plus once at the end of the run. Publication points depend only on
  /// row timestamps and the window length, and every runtime drives the
  /// same ReplayHarness, so the published snapshot bytes are identical
  /// under lockstep, events, and process -- and under any reader count.
  serve::SnapshotStore* publish_store = nullptr;

  /// InvalidArgument unless query_points >= 0 and warmup_fraction is in
  /// [0, 1]. Checked by RunTracker; CLIs should call it up front to report
  /// flag errors before constructing trackers.
  [[nodiscard]] Status Validate() const;
};

/// One query-point measurement (chronological).
struct TraceEntry {
  Timestamp timestamp = 0;
  double err = 0.0;
  long words_so_far = 0;
  long site_space_words = 0;
};

/// Aggregated result of one run.
struct RunResult {
  /// Per-query-point series, chronological (size <= options.query_points).
  std::vector<TraceEntry> trace;
  double avg_err = 0.0;
  double max_err = 0.0;
  double words_per_window = 0.0;  // msg
  long total_words = 0;
  long messages = 0;
  long broadcasts = 0;
  long rows_sent = 0;
  long max_site_space_words = 0;
  double update_rows_per_sec = 0.0;
  double windows_spanned = 0.0;
  int rows = 0;
  /// Serialized bytes across the tracker's channels. Payload bytes are
  /// exactly 8 * total_words (the ledger cross-validation invariant);
  /// frame bytes add headers and sparse-support metadata.
  long wire_payload_bytes = 0;
  long wire_frame_bytes = 0;
  /// Transmissions recorded across the tracker's channels (>= messages:
  /// drops, duplicates, and retransmissions each record an entry).
  long wire_transmissions = 0;
  /// Outcome of the trace_jsonl dump (OK when disabled).
  Status trace_status = Status::OK();
  /// Observability snapshot scoped to this run (empty unless metrics are
  /// enabled, obs::SetEnabled(true)): per-phase spans, subsystem counters,
  /// and ledger-derived comm/space gauges in one document.
  obs::MetricsSnapshot metrics;
};

/// Runs `tracker` over `rows` (time-ordered), assigning each row to a
/// uniformly random site in [0, num_sites). `window` must equal the
/// tracker's configured window.
///
/// Inputs are validated up front -- null tracker, num_sites < 1,
/// window < 1, invalid options, rows out of time order, or a row whose
/// dimension differs from tracker->Dim() all return InvalidArgument
/// without feeding the tracker.
///
/// When the global ThreadPool has more than one thread (--threads /
/// DSWM_THREADS), query-point error evaluations run concurrently with the
/// stream replay on snapshots of the exact and approximate state. Results
/// are folded in query order, so every reported metric is identical to the
/// single-threaded run; only wall-clock changes. Tracker updates themselves
/// are causally ordered by the protocol and are never reordered.
[[nodiscard]] StatusOr<RunResult> RunTracker(DistributedTracker* tracker,
                                             const std::vector<TimedRow>& rows,
                                             int num_sites, Timestamp window,
                                             const DriverOptions& options);

}  // namespace dswm

#endif  // DSWM_MONITOR_DRIVER_H_
