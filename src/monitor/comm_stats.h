// Communication accounting for the simulated distributed-monitoring model.
//
// Follows the paper's cost model (Section IV-A): every real number
// (row coordinate, priority, timestamp, threshold, scalar update) costs one
// word; a broadcast of a scalar to m sites costs m words. `msg` in the
// figures is the average number of words sent per window.

#ifndef DSWM_MONITOR_COMM_STATS_H_
#define DSWM_MONITOR_COMM_STATS_H_

namespace dswm {

/// Word/message counters shared by all protocols.
struct CommStats {
  /// Words sent from sites to the coordinator.
  long words_up = 0;
  /// Words sent from the coordinator to sites (threshold broadcasts,
  /// negotiation requests).
  long words_down = 0;
  /// Individual point-to-point messages.
  long messages = 0;
  /// Threshold broadcasts (each also counted in words_down).
  long broadcasts = 0;
  /// Full rows (or directions) shipped site -> coordinator.
  long rows_sent = 0;

  [[nodiscard]] long TotalWords() const { return words_up + words_down; }

  /// One site->coordinator message of `words` words.
  void SendUp(int words) {
    words_up += words;
    ++messages;
  }

  /// One coordinator->site message of `words` words.
  void SendDown(int words) {
    words_down += words;
    ++messages;
  }

  /// Coordinator broadcast of one scalar to all m sites.
  void Broadcast(int num_sites) {
    words_down += num_sites;
    ++messages;
    ++broadcasts;
  }
};

}  // namespace dswm

#endif  // DSWM_MONITOR_COMM_STATS_H_
