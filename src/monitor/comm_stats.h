// Communication accounting for the simulated distributed-monitoring model.
//
// Follows the paper's cost model (Section IV-A): every real number
// (row coordinate, priority, timestamp, threshold, scalar update) costs one
// word; a broadcast of a scalar to m sites costs m words. `msg` in the
// figures is the average number of words sent per window.
//
// These counters are derived from the net::MessageLedger of each tracker's
// channel -- protocol code never mutates them directly (lint rule R6
// confines SendUp/SendDown/Broadcast calls to src/net/).

#ifndef DSWM_MONITOR_COMM_STATS_H_
#define DSWM_MONITOR_COMM_STATS_H_

#include "common/check.h"

namespace dswm {

/// Word/message counters shared by all protocols.
struct CommStats {
  /// Words sent from sites to the coordinator.
  long words_up = 0;
  /// Words sent from the coordinator to sites (threshold broadcasts,
  /// negotiation requests).
  long words_down = 0;
  /// Individual point-to-point messages.
  long messages = 0;
  /// Threshold broadcasts (each also counted in words_down).
  long broadcasts = 0;
  /// Full rows (or directions) shipped site -> coordinator.
  long rows_sent = 0;

  [[nodiscard]] long TotalWords() const { return words_up + words_down; }

  /// One site->coordinator message of `words` words.
  void SendUp(long words) {
    DSWM_DCHECK_GE(words, 0);
    words_up += words;
    ++messages;
  }

  /// One coordinator->site message of `words` words.
  void SendDown(long words) {
    DSWM_DCHECK_GE(words, 0);
    words_down += words;
    ++messages;
  }

  /// Coordinator broadcast of one scalar to all m sites: m words down in
  /// one message.
  void Broadcast(long num_sites) {
    SendDown(num_sites);
    ++broadcasts;
  }

  /// Folds another counter set into this one (composite protocols that
  /// aggregate several channels).
  void Add(const CommStats& other) {
    words_up += other.words_up;
    words_down += other.words_down;
    messages += other.messages;
    broadcasts += other.broadcasts;
    rows_sent += other.rows_sent;
  }
};

}  // namespace dswm

#endif  // DSWM_MONITOR_COMM_STATS_H_
