#include "monitor/replay.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "linalg/batched.h"
#include "net/channel.h"
#include "obs/span.h"
#include "serve/snapshot_store.h"
#include "sketch/covariance.h"

namespace dswm {

namespace {

double EvalError(const Matrix& cov_exact, const CovarianceEstimate& estimate,
                 double fnorm2) {
  // Dispatch on the native form so evaluation never pays a lazy
  // conversion (PsdSqrt / GramTranspose) inside the measurement loop.
  return estimate.NativeIsRows()
             ? CovarianceErrorOfSketch(cov_exact, estimate.Rows(), fnorm2)
             : CovarianceErrorOfCovariance(cov_exact, estimate.Covariance(),
                                           fnorm2);
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open trace file: " + path);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::OK();
}

Status ValidateRun(const DistributedTracker* tracker,
                   const std::vector<TimedRow>& rows, int num_sites,
                   Timestamp window, const DriverOptions& options) {
  if (tracker == nullptr) {
    return Status::InvalidArgument("RunTracker: tracker is null");
  }
  if (num_sites < 1) {
    return Status::InvalidArgument("RunTracker: num_sites must be >= 1, got " +
                                   std::to_string(num_sites));
  }
  if (window < 1) {
    return Status::InvalidArgument("RunTracker: window must be >= 1, got " +
                                   std::to_string(window));
  }
  DSWM_RETURN_NOT_OK(options.Validate());
  const int d = tracker->Dim();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (static_cast<int>(rows[i].values.size()) != d) {
      return Status::InvalidArgument(
          "RunTracker: row " + std::to_string(i) + " has dimension " +
          std::to_string(rows[i].values.size()) + ", tracker expects " +
          std::to_string(d));
    }
    if (i > 0 && rows[i].timestamp < rows[i - 1].timestamp) {
      return Status::InvalidArgument(
          "RunTracker: rows out of time order at index " + std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace

ReplayHarness::ReplayHarness(DistributedTracker* tracker,
                             const std::vector<TimedRow>& rows, int num_sites,
                             Timestamp window, const DriverOptions& options)
    : tracker_(tracker),
      rows_(rows),
      num_sites_(num_sites),
      window_(window),
      options_(options) {}

Status ReplayHarness::Plan() {
  DSWM_RETURN_NOT_OK(
      ValidateRun(tracker_, rows_, num_sites_, window_, options_));
  n_ = static_cast<int>(rows_.size());
  result_.rows = n_;
  planned_ = true;
  if (n_ == 0) return Status::OK();

  metrics_on_ = obs::Enabled();
  if (metrics_on_) metrics_base_ = obs::Registry().Snapshot();

  // Historical draw order (bit-compatibility with every seeded
  // experiment): all query points first, then one site draw per row. The
  // in-loop driver interleaved the site draws with observes, but nothing
  // between draws touched this RNG, so precomputing is draw-for-draw
  // identical.
  Rng rng(options_.seed);
  const int first = std::min(
      n_ - 1, static_cast<int>(options_.warmup_fraction * n_));
  is_query_.assign(static_cast<size_t>(n_), false);
  for (int q = 0; q < options_.query_points; ++q) {
    is_query_[static_cast<size_t>(
        first + static_cast<int>(rng.NextBelow(n_ - first)))] = true;
  }
  sites_.resize(static_cast<size_t>(n_));
  for (int i = 0; i < n_; ++i) {
    sites_[static_cast<size_t>(i)] =
        static_cast<int>(rng.NextBelow(num_sites_));
  }

  exact_.emplace(tracker_->Dim(), window_);
  return Status::OK();
}

Status ReplayHarness::Step(int i) {
  DSWM_CHECK(planned_);
  DSWM_CHECK(i == next_step_);
  ++next_step_;
  const TimedRow& row = rows_[static_cast<size_t>(i)];

  {
    obs::Span span("driver.observe", &tracker_seconds_);
    DSWM_RETURN_NOT_OK(tracker_->Observe(site_of(i), row));
  }

  exact_->Add(row);
  exact_->Advance(row.timestamp);

  if (options_.publish_store != nullptr) {
    // Publish at window-advance boundaries: the first row landing in each
    // window period triggers a version. The trigger depends only on the
    // row timestamps and the window length -- never on the runtime, the
    // channel backend, or any reader -- so lockstep stays the bit-exact
    // oracle for the published bytes.
    const long window_index = static_cast<long>(row.timestamp / window_);
    if (window_index > published_window_) {
      published_window_ = window_index;
      DSWM_RETURN_NOT_OK(PublishSnapshot(row.timestamp));
    }
  }

  if (query_at(i)) {
    obs::Span span("driver.query");
    CovarianceEstimate estimate = tracker_->Query();
    const long site_space = tracker_->MaxSiteSpaceWords();
    result_.max_site_space_words =
        std::max(result_.max_site_space_words, site_space);
    result_.trace.push_back(TraceEntry{row.timestamp, 0.0,
                                       tracker_->Comm().TotalWords(),
                                       site_space});
    jobs_.push_back(EvalJob{exact_->Covariance(), exact_->FrobeniusSquared(),
                            std::move(estimate)});
  }
  return Status::OK();
}

Status ReplayHarness::PublishSnapshot(Timestamp at) {
  obs::Span span("driver.publish");
  return options_.publish_store->Publish(tracker_->Query(), at, window_);
}

StatusOr<RunResult> ReplayHarness::Finish() {
  DSWM_CHECK(planned_);
  if (n_ == 0) return std::move(result_);
  DSWM_CHECK(next_step_ == n_);

  // Final publication: the last window's tail (rows after its boundary
  // publish) becomes queryable as the terminal version.
  if (options_.publish_store != nullptr) {
    DSWM_RETURN_NOT_OK(PublishSnapshot(rows_.back().timestamp));
  }

  // Query-point error evaluations are independent of the stream replay
  // (each acts on a snapshot of exact + approximate state), so the replay
  // only collects the snapshots; the whole fan-out runs afterwards as one
  // batch through the batched engine. Slot q belongs to query q and
  // results fold in query order, so avg/max/trace are identical at any
  // thread count.
  std::vector<double> errs(jobs_.size());
  {
    obs::Span span("driver.eval");
    BatchedDispatch(static_cast<int>(jobs_.size()), [this, &errs](int q) {
      errs[static_cast<size_t>(q)] =
          EvalError(jobs_[static_cast<size_t>(q)].cov,
                    jobs_[static_cast<size_t>(q)].estimate,
                    jobs_[static_cast<size_t>(q)].fnorm2);
    });
  }
  jobs_.clear();

  double err_sum = 0.0;
  for (size_t q = 0; q < errs.size(); ++q) {
    result_.trace[q].err = errs[q];
    err_sum += errs[q];
    result_.max_err = std::max(result_.max_err, errs[q]);
  }
  result_.avg_err =
      errs.empty() ? 0.0 : err_sum / static_cast<double>(errs.size());

  const CommStats& comm = tracker_->Comm();
  result_.total_words = comm.TotalWords();
  result_.messages = comm.messages;
  result_.broadcasts = comm.broadcasts;
  result_.rows_sent = comm.rows_sent;

  // Wire-level accounting and (optionally) the merged transmission trace,
  // aggregated over every channel the tracker owns.
  std::string trace_text;
  for (net::Channel* c : tracker_->Channels()) {
    result_.wire_payload_bytes += c->ledger().TotalPayloadBytes();
    result_.wire_frame_bytes += c->ledger().TotalFrameBytes();
    result_.wire_transmissions +=
        static_cast<long>(c->ledger().entries().size());
    if (!options_.trace_jsonl.empty()) c->ledger().AppendJsonl(&trace_text);
  }
  if (!options_.trace_jsonl.empty()) {
    result_.trace_status = WriteTextFile(options_.trace_jsonl, trace_text);
  }

  const Timestamp span =
      rows_.back().timestamp - rows_.front().timestamp + 1;
  result_.windows_spanned =
      static_cast<double>(span) / static_cast<double>(window_);
  result_.words_per_window =
      result_.windows_spanned > 0
          ? static_cast<double>(result_.total_words) / result_.windows_spanned
          : static_cast<double>(result_.total_words);
  result_.update_rows_per_sec =
      tracker_seconds_ > 0 ? n_ / tracker_seconds_ : 0.0;

  if (metrics_on_) {
    // Export the ledger-derived comm/space totals as gauges so one
    // snapshot covers comm + compute + space, then scope the cumulative
    // registry to this run.
    obs::MetricRegistry& reg = obs::Registry();
    reg.GetGauge("comm.total_words")->Set(result_.total_words);
    reg.GetGauge("comm.messages")->Set(result_.messages);
    reg.GetGauge("comm.broadcasts")->Set(result_.broadcasts);
    reg.GetGauge("comm.rows_sent")->Set(result_.rows_sent);
    reg.GetGauge("comm.wire_payload_bytes")->Set(result_.wire_payload_bytes);
    reg.GetGauge("comm.wire_frame_bytes")->Set(result_.wire_frame_bytes);
    reg.GetGauge("comm.wire_transmissions")->Set(result_.wire_transmissions);
    reg.GetGauge("space.max_site_words")->Set(result_.max_site_space_words);
    result_.metrics = reg.Snapshot().DeltaSince(metrics_base_);
  }
  return std::move(result_);
}

}  // namespace dswm
