// The stream-replay core shared by every runtime.
//
// RunTracker's historical behavior is split into three phases so the
// lockstep driver and the src/runtime schedulers (event-driven,
// multi-process) can drive the identical measurement harness:
//
//   Plan()   -- validate inputs and precompute the per-row site
//               assignment and query-point selection, drawing from the
//               seeded RNG in the driver's historical order (query points
//               first, then one site draw per row) so every runtime sees
//               the same plan bit for bit;
//   Step(i)  -- feed row i: Observe at its planned site, exact-window
//               upkeep, and (at query points) snapshot the state for
//               batched error evaluation;
//   Finish() -- run the evaluation fan-out, aggregate ledgers and wire
//               accounting, and assemble the RunResult.
//
// Rows must be stepped exactly once each, in index order; *when* a step
// runs (lockstep loop vs. popped from an event queue) is the runtime's
// business and does not change any reported metric except wall-clock.

#ifndef DSWM_MONITOR_REPLAY_H_
#define DSWM_MONITOR_REPLAY_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "core/tracker.h"
#include "linalg/matrix.h"
#include "monitor/driver.h"
#include "obs/metrics.h"
#include "stream/timed_row.h"
#include "window/exact_window.h"

namespace dswm {

class ReplayHarness {
 public:
  /// Borrows `tracker` and `rows`; both must outlive the harness.
  ReplayHarness(DistributedTracker* tracker, const std::vector<TimedRow>& rows,
                int num_sites, Timestamp window, const DriverOptions& options);

  [[nodiscard]] Status Plan();

  /// Row count (valid after Plan).
  [[nodiscard]] int rows() const { return n_; }
  /// Planned site for row i.
  [[nodiscard]] int site_of(int i) const { return sites_[static_cast<size_t>(i)]; }
  /// Whether row i is a query point.
  [[nodiscard]] bool query_at(int i) const {
    return is_query_[static_cast<size_t>(i)];
  }
  /// Arrival timestamp of row i.
  [[nodiscard]] Timestamp time_of(int i) const {
    return rows_[static_cast<size_t>(i)].timestamp;
  }

  [[nodiscard]] Status Step(int i);

  [[nodiscard]] StatusOr<RunResult> Finish();

 private:
  struct EvalJob {
    Matrix cov;
    double fnorm2;
    CovarianceEstimate estimate;
  };

  DistributedTracker* tracker_;
  const std::vector<TimedRow>& rows_;
  int num_sites_;
  Timestamp window_;
  DriverOptions options_;

  /// Publishes the tracker's current estimate into options_.publish_store
  /// (no-op when null). `at` stamps the snapshot's published_at.
  [[nodiscard]] Status PublishSnapshot(Timestamp at);

  int n_ = 0;
  bool planned_ = false;
  int next_step_ = 0;
  long published_window_ = -1;
  std::vector<int> sites_;
  std::vector<bool> is_query_;
  std::optional<ExactWindow> exact_;
  std::vector<EvalJob> jobs_;
  RunResult result_;
  double tracker_seconds_ = 0.0;
  bool metrics_on_ = false;
  obs::MetricsSnapshot metrics_base_;
};

}  // namespace dswm

#endif  // DSWM_MONITOR_REPLAY_H_
