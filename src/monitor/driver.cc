#include "monitor/driver.h"

#include <algorithm>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "sketch/covariance.h"
#include "window/exact_window.h"

namespace dswm {

RunResult RunTracker(DistributedTracker* tracker,
                     const std::vector<TimedRow>& rows, int num_sites,
                     Timestamp window, const DriverOptions& options) {
  RunResult result;
  result.rows = static_cast<int>(rows.size());
  if (rows.empty()) return result;

  Rng rng(options.seed);
  const int n = result.rows;

  // Pick query-point row indices in the steady-state region.
  const int first = std::min(
      n - 1, static_cast<int>(options.warmup_fraction * n));
  std::vector<bool> is_query(n, false);
  for (int q = 0; q < options.query_points; ++q) {
    is_query[first + static_cast<int>(rng.NextBelow(n - first))] = true;
  }

  ExactWindow exact(tracker->dim(), window);
  Stopwatch tracker_clock;
  double tracker_seconds = 0.0;
  double err_sum = 0.0;
  int err_count = 0;

  for (int i = 0; i < n; ++i) {
    const TimedRow& row = rows[i];
    const int site = static_cast<int>(rng.NextBelow(num_sites));

    tracker_clock.Start();
    tracker->Observe(site, row);
    tracker_seconds += tracker_clock.ElapsedSeconds();

    exact.Add(row);
    exact.Advance(row.timestamp);

    if (is_query[i]) {
      const Approximation approx = tracker->GetApproximation();
      const double err =
          approx.is_rows
              ? CovarianceErrorOfSketch(exact.Covariance(),
                                        approx.sketch_rows,
                                        exact.FrobeniusSquared())
              : CovarianceErrorOfCovariance(exact.Covariance(),
                                            approx.covariance,
                                            exact.FrobeniusSquared());
      err_sum += err;
      result.max_err = std::max(result.max_err, err);
      ++err_count;
      const long site_space = tracker->MaxSiteSpaceWords();
      result.max_site_space_words =
          std::max(result.max_site_space_words, site_space);
      result.trace.push_back(TraceEntry{row.timestamp, err,
                                        tracker->comm().TotalWords(),
                                        site_space});
    }
  }

  result.avg_err = err_count > 0 ? err_sum / err_count : 0.0;

  const CommStats& comm = tracker->comm();
  result.total_words = comm.TotalWords();
  result.messages = comm.messages;
  result.broadcasts = comm.broadcasts;
  result.rows_sent = comm.rows_sent;

  const Timestamp span =
      rows.back().timestamp - rows.front().timestamp + 1;
  result.windows_spanned =
      static_cast<double>(span) / static_cast<double>(window);
  result.words_per_window =
      result.windows_spanned > 0
          ? static_cast<double>(result.total_words) / result.windows_spanned
          : static_cast<double>(result.total_words);
  result.update_rows_per_sec =
      tracker_seconds > 0 ? n / tracker_seconds : 0.0;
  return result;
}

}  // namespace dswm
