#include "monitor/driver.h"

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "linalg/batched.h"
#include "net/channel.h"
#include "obs/span.h"
#include "sketch/covariance.h"
#include "window/exact_window.h"

namespace dswm {

namespace {

double EvalError(const Matrix& cov_exact, const CovarianceEstimate& estimate,
                 double fnorm2) {
  // Dispatch on the native form so evaluation never pays a lazy
  // conversion (PsdSqrt / GramTranspose) inside the measurement loop.
  return estimate.NativeIsRows()
             ? CovarianceErrorOfSketch(cov_exact, estimate.Rows(), fnorm2)
             : CovarianceErrorOfCovariance(cov_exact, estimate.Covariance(),
                                           fnorm2);
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open trace file: " + path);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::OK();
}

Status ValidateRun(const DistributedTracker* tracker,
                   const std::vector<TimedRow>& rows, int num_sites,
                   Timestamp window, const DriverOptions& options) {
  if (tracker == nullptr) {
    return Status::InvalidArgument("RunTracker: tracker is null");
  }
  if (num_sites < 1) {
    return Status::InvalidArgument("RunTracker: num_sites must be >= 1, got " +
                                   std::to_string(num_sites));
  }
  if (window < 1) {
    return Status::InvalidArgument("RunTracker: window must be >= 1, got " +
                                   std::to_string(window));
  }
  DSWM_RETURN_NOT_OK(options.Validate());
  const int d = tracker->Dim();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (static_cast<int>(rows[i].values.size()) != d) {
      return Status::InvalidArgument(
          "RunTracker: row " + std::to_string(i) + " has dimension " +
          std::to_string(rows[i].values.size()) + ", tracker expects " +
          std::to_string(d));
    }
    if (i > 0 && rows[i].timestamp < rows[i - 1].timestamp) {
      return Status::InvalidArgument(
          "RunTracker: rows out of time order at index " + std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace

Status DriverOptions::Validate() const {
  if (query_points < 0) {
    return Status::InvalidArgument(
        "DriverOptions: query_points must be >= 0, got " +
        std::to_string(query_points));
  }
  if (!(warmup_fraction >= 0.0 && warmup_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "DriverOptions: warmup_fraction must be in [0, 1], got " +
        std::to_string(warmup_fraction));
  }
  return Status::OK();
}

StatusOr<RunResult> RunTracker(DistributedTracker* tracker,
                               const std::vector<TimedRow>& rows,
                               int num_sites, Timestamp window,
                               const DriverOptions& options) {
  DSWM_RETURN_NOT_OK(
      ValidateRun(tracker, rows, num_sites, window, options));

  RunResult result;
  result.rows = static_cast<int>(rows.size());
  if (rows.empty()) return result;

  const bool metrics_on = obs::Enabled();
  const obs::MetricsSnapshot metrics_base =
      metrics_on ? obs::Registry().Snapshot() : obs::MetricsSnapshot();

  Rng rng(options.seed);
  const int n = result.rows;

  // Pick query-point row indices in the steady-state region.
  const int first = std::min(
      n - 1, static_cast<int>(options.warmup_fraction * n));
  std::vector<bool> is_query(n, false);
  for (int q = 0; q < options.query_points; ++q) {
    is_query[first + static_cast<int>(rng.NextBelow(n - first))] = true;
  }

  ExactWindow exact(tracker->Dim(), window);
  double tracker_seconds = 0.0;

  // Query-point error evaluations are independent of the stream replay
  // (each acts on a snapshot of exact + approximate state), so the replay
  // loop only collects the snapshots; the whole fan-out runs afterwards
  // as one batch through the batched engine. Slot q belongs to query q
  // and results fold in query order, so avg/max/trace are identical at
  // any thread count. Nothing is in flight during replay, so an error
  // return mid-loop unwinds safely.
  struct EvalJob {
    Matrix cov;
    double fnorm2;
    CovarianceEstimate estimate;
  };
  std::vector<EvalJob> jobs;

  for (int i = 0; i < n; ++i) {
    const TimedRow& row = rows[i];
    const int site = static_cast<int>(rng.NextBelow(num_sites));

    {
      obs::Span span("driver.observe", &tracker_seconds);
      DSWM_RETURN_NOT_OK(tracker->Observe(site, row));
    }

    exact.Add(row);
    exact.Advance(row.timestamp);

    if (is_query[i]) {
      obs::Span span("driver.query");
      CovarianceEstimate estimate = tracker->Query();
      const long site_space = tracker->MaxSiteSpaceWords();
      result.max_site_space_words =
          std::max(result.max_site_space_words, site_space);
      result.trace.push_back(TraceEntry{row.timestamp, 0.0,
                                        tracker->Comm().TotalWords(),
                                        site_space});
      jobs.push_back(EvalJob{exact.Covariance(), exact.FrobeniusSquared(),
                             std::move(estimate)});
    }
  }

  std::vector<double> errs(jobs.size());
  {
    obs::Span span("driver.eval");
    BatchedDispatch(static_cast<int>(jobs.size()), [&jobs, &errs](int q) {
      errs[q] = EvalError(jobs[q].cov, jobs[q].estimate, jobs[q].fnorm2);
    });
  }
  jobs.clear();

  double err_sum = 0.0;
  for (size_t q = 0; q < errs.size(); ++q) {
    result.trace[q].err = errs[q];
    err_sum += errs[q];
    result.max_err = std::max(result.max_err, errs[q]);
  }
  result.avg_err = errs.empty() ? 0.0 : err_sum / static_cast<double>(errs.size());

  const CommStats& comm = tracker->Comm();
  result.total_words = comm.TotalWords();
  result.messages = comm.messages;
  result.broadcasts = comm.broadcasts;
  result.rows_sent = comm.rows_sent;

  // Wire-level accounting and (optionally) the merged transmission trace,
  // aggregated over every channel the tracker owns.
  std::string trace_text;
  for (net::Channel* c : tracker->Channels()) {
    result.wire_payload_bytes += c->ledger().TotalPayloadBytes();
    result.wire_frame_bytes += c->ledger().TotalFrameBytes();
    result.wire_transmissions += static_cast<long>(c->ledger().entries().size());
    if (!options.trace_jsonl.empty()) c->ledger().AppendJsonl(&trace_text);
  }
  if (!options.trace_jsonl.empty()) {
    result.trace_status = WriteTextFile(options.trace_jsonl, trace_text);
  }

  const Timestamp span =
      rows.back().timestamp - rows.front().timestamp + 1;
  result.windows_spanned =
      static_cast<double>(span) / static_cast<double>(window);
  result.words_per_window =
      result.windows_spanned > 0
          ? static_cast<double>(result.total_words) / result.windows_spanned
          : static_cast<double>(result.total_words);
  result.update_rows_per_sec =
      tracker_seconds > 0 ? n / tracker_seconds : 0.0;

  if (metrics_on) {
    // Export the ledger-derived comm/space totals as gauges so one
    // snapshot covers comm + compute + space, then scope the cumulative
    // registry to this run.
    obs::MetricRegistry& reg = obs::Registry();
    reg.GetGauge("comm.total_words")->Set(result.total_words);
    reg.GetGauge("comm.messages")->Set(result.messages);
    reg.GetGauge("comm.broadcasts")->Set(result.broadcasts);
    reg.GetGauge("comm.rows_sent")->Set(result.rows_sent);
    reg.GetGauge("comm.wire_payload_bytes")->Set(result.wire_payload_bytes);
    reg.GetGauge("comm.wire_frame_bytes")->Set(result.wire_frame_bytes);
    reg.GetGauge("comm.wire_transmissions")->Set(result.wire_transmissions);
    reg.GetGauge("space.max_site_words")->Set(result.max_site_space_words);
    result.metrics = reg.Snapshot().DeltaSince(metrics_base);
  }
  return result;
}

}  // namespace dswm
