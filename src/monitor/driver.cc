#include "monitor/driver.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <utility>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "net/channel.h"
#include "sketch/covariance.h"
#include "window/exact_window.h"

namespace dswm {

namespace {

double EvalError(const Matrix& cov_exact, const Approximation& approx,
                 double fnorm2) {
  return approx.is_rows
             ? CovarianceErrorOfSketch(cov_exact, approx.sketch_rows, fnorm2)
             : CovarianceErrorOfCovariance(cov_exact, approx.covariance,
                                           fnorm2);
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open trace file: " + path);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::OK();
}

}  // namespace

RunResult RunTracker(DistributedTracker* tracker,
                     const std::vector<TimedRow>& rows, int num_sites,
                     Timestamp window, const DriverOptions& options) {
  RunResult result;
  result.rows = static_cast<int>(rows.size());
  if (rows.empty()) return result;

  Rng rng(options.seed);
  const int n = result.rows;

  // Pick query-point row indices in the steady-state region.
  const int first = std::min(
      n - 1, static_cast<int>(options.warmup_fraction * n));
  std::vector<bool> is_query(n, false);
  for (int q = 0; q < options.query_points; ++q) {
    is_query[first + static_cast<int>(rng.NextBelow(n - first))] = true;
  }

  ExactWindow exact(tracker->dim(), window);
  Stopwatch tracker_clock;
  double tracker_seconds = 0.0;

  // Query-point error evaluations are independent of the stream replay
  // (they act on a snapshot of exact + approximate state), so with a
  // multi-threaded pool they run concurrently with subsequent tracker
  // updates. Results are written into deque slots (stable addresses) and
  // folded in query order below, so avg/max/trace are identical to the
  // single-threaded run.
  ThreadPool* pool = ThreadPool::Global();
  const bool async_eval = pool->num_threads() > 1;
  std::deque<double> errs;

  for (int i = 0; i < n; ++i) {
    const TimedRow& row = rows[i];
    const int site = static_cast<int>(rng.NextBelow(num_sites));

    tracker_clock.Start();
    tracker->Observe(site, row);
    tracker_seconds += tracker_clock.ElapsedSeconds();

    exact.Add(row);
    exact.Advance(row.timestamp);

    if (is_query[i]) {
      Approximation approx = tracker->GetApproximation();
      const long site_space = tracker->MaxSiteSpaceWords();
      result.max_site_space_words =
          std::max(result.max_site_space_words, site_space);
      result.trace.push_back(TraceEntry{row.timestamp, 0.0,
                                        tracker->comm().TotalWords(),
                                        site_space});
      errs.push_back(0.0);
      double* out = &errs.back();
      if (async_eval) {
        pool->Submit([cov = exact.Covariance(),
                      fnorm2 = exact.FrobeniusSquared(),
                      snapshot = std::move(approx), out] {
          *out = EvalError(cov, snapshot, fnorm2);
        });
      } else {
        *out = EvalError(exact.Covariance(), approx,
                         exact.FrobeniusSquared());
      }
    }
  }
  pool->WaitIdle();

  double err_sum = 0.0;
  for (size_t q = 0; q < errs.size(); ++q) {
    result.trace[q].err = errs[q];
    err_sum += errs[q];
    result.max_err = std::max(result.max_err, errs[q]);
  }
  result.avg_err = errs.empty() ? 0.0 : err_sum / static_cast<double>(errs.size());

  const CommStats& comm = tracker->comm();
  result.total_words = comm.TotalWords();
  result.messages = comm.messages;
  result.broadcasts = comm.broadcasts;
  result.rows_sent = comm.rows_sent;

  // Wire-level accounting and (optionally) the merged transmission trace,
  // aggregated over every channel the tracker owns.
  std::string trace_text;
  for (net::Channel* c : tracker->Channels()) {
    result.wire_payload_bytes += c->ledger().TotalPayloadBytes();
    result.wire_frame_bytes += c->ledger().TotalFrameBytes();
    result.wire_transmissions += static_cast<long>(c->ledger().entries().size());
    if (!options.trace_jsonl.empty()) c->ledger().AppendJsonl(&trace_text);
  }
  if (!options.trace_jsonl.empty()) {
    result.trace_status = WriteTextFile(options.trace_jsonl, trace_text);
  }

  const Timestamp span =
      rows.back().timestamp - rows.front().timestamp + 1;
  result.windows_spanned =
      static_cast<double>(span) / static_cast<double>(window);
  result.words_per_window =
      result.windows_spanned > 0
          ? static_cast<double>(result.total_words) / result.windows_spanned
          : static_cast<double>(result.total_words);
  result.update_rows_per_sec =
      tracker_seconds > 0 ? n / tracker_seconds : 0.0;
  return result;
}

}  // namespace dswm
