#include "monitor/driver.h"

#include <string>

#include "monitor/replay.h"
#include "monitor/runtime.h"

namespace dswm {

Status DriverOptions::Validate() const {
  if (query_points < 0) {
    return Status::InvalidArgument(
        "DriverOptions: query_points must be >= 0, got " +
        std::to_string(query_points));
  }
  if (!(warmup_fraction >= 0.0 && warmup_fraction <= 1.0)) {
    return Status::InvalidArgument(
        "DriverOptions: warmup_fraction must be in [0, 1], got " +
        std::to_string(warmup_fraction));
  }
  return Status::OK();
}

StatusOr<RunResult> LockstepRuntime::Run(DistributedTracker* tracker,
                                         const std::vector<TimedRow>& rows,
                                         int num_sites, Timestamp window,
                                         const DriverOptions& options) {
  ReplayHarness replay(tracker, rows, num_sites, window, options);
  DSWM_RETURN_NOT_OK(replay.Plan());
  for (int i = 0; i < replay.rows(); ++i) {
    DSWM_RETURN_NOT_OK(replay.Step(i));
  }
  return replay.Finish();
}

StatusOr<RunResult> RunTracker(DistributedTracker* tracker,
                               const std::vector<TimedRow>& rows,
                               int num_sites, Timestamp window,
                               const DriverOptions& options) {
  LockstepRuntime runtime;
  return runtime.Run(tracker, rows, num_sites, window, options);
}

}  // namespace dswm
