#include "window/exponential_histogram.h"

#include "common/check.h"
#include "obs/metrics.h"

namespace dswm {

ExponentialHistogram::ExponentialHistogram(double eps, Timestamp window)
    : eps_(eps), window_(window) {
  DSWM_CHECK_GT(eps, 0.0);
  DSWM_CHECK_GT(window, 0);
}

void ExponentialHistogram::Insert(double w, Timestamp t) {
  DSWM_CHECK_GT(w, 0.0);
  DSWM_CHECK_GE(t, last_time_);
  last_time_ = t;
  ExpireUpTo(t);
  buckets_.push_back(Bucket{w, t, false});
  total_ += w;
  if (++inserts_since_compress_ >= 8) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void ExponentialHistogram::ExpireUpTo(Timestamp t_now) {
  const Timestamp cutoff = t_now - window_;
  while (!buckets_.empty() && buckets_.front().t_newest <= cutoff) {
    DSWM_OBS_COUNT("window.geh.expired_buckets", 1);
    total_ -= buckets_.front().sum;
    buckets_.pop_front();
  }
  // Expiry invariants: the surviving prefix is strictly within the window,
  // bucket timestamps are non-decreasing oldest -> newest, and the running
  // total never goes (more than rounding) negative.
  DSWM_DCHECK(buckets_.empty() || buckets_.front().t_newest > cutoff);
  DSWM_DCHECK(buckets_.size() < 2 ||
              buckets_.front().t_newest <= buckets_.back().t_newest);
  DSWM_DCHECK_GE(total_, -1e-9);
}

void ExponentialHistogram::Compress() {
  if (buckets_.size() < 2) return;
  // One pass oldest -> newest. prefix = mass of buckets strictly older than
  // the pair under consideration; suffix of the pair = total - prefix -
  // pair mass.
  double prefix = 0.0;
  size_t i = 0;
  while (i + 1 < buckets_.size()) {
    const double pair = buckets_[i].sum + buckets_[i + 1].sum;
    const double suffix = total_ - prefix - pair;
    if (pair <= eps_ * suffix) {
      DSWM_OBS_COUNT("window.geh.merges", 1);
      buckets_[i].sum = pair;
      buckets_[i].t_newest = buckets_[i + 1].t_newest;
      buckets_[i].merged = true;
      buckets_.erase(buckets_.begin() + static_cast<long>(i) + 1);
      // Re-test the same position: the merged bucket may merge again.
    } else {
      prefix += buckets_[i].sum;
      ++i;
    }
  }
}

double ExponentialHistogram::Query(Timestamp t_now) {
  DSWM_CHECK_GE(t_now, last_time_);
  last_time_ = t_now;
  ExpireUpTo(t_now);
  return Estimate();
}

double ExponentialHistogram::Estimate() const {
  if (buckets_.empty()) return 0.0;
  double est = total_;
  if (buckets_.front().merged) est -= 0.5 * buckets_.front().sum;
  return est;
}

}  // namespace dswm
