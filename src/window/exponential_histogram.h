// Generalized exponential histogram (gEH) for sliding-window sums.
//
// Maintains an epsilon-relative-error estimate of the sum of positive
// weights whose timestamps lie in (t_now - W, t_now], in
// O((1/eps) log(N R)) buckets (Datar-Gionis-Indyk-Motwani [19],
// generalized to real weights). Used by the deterministic SUM tracker
// (Algorithm 3) and by every site that needs ||A_w||_F^2 locally.
//
// Merge rule: two adjacent buckets merge only when their combined weight is
// at most eps times the total weight of strictly newer buckets. Because
// expiry removes oldest-first, the "strictly newer" mass of a surviving
// bucket can only grow after its merge, so every merged bucket's weight
// stays <= eps * (live newer mass) <= eps * (true window sum) at all times.
// Only the oldest (possibly straddling) bucket is ever partially expired,
// so the estimate total - merged_oldest/2 has relative error <= eps/2.

#ifndef DSWM_WINDOW_EXPONENTIAL_HISTOGRAM_H_
#define DSWM_WINDOW_EXPONENTIAL_HISTOGRAM_H_

#include <deque>

#include "stream/timed_row.h"

namespace dswm {

/// Sliding-window sum sketch with relative error <= eps.
class ExponentialHistogram {
 public:
  /// Window of length `window` ticks; estimates within relative `eps`.
  ExponentialHistogram(double eps, Timestamp window);

  /// Inserts weight w (> 0) at time t. Times must be non-decreasing.
  void Insert(double w, Timestamp t);

  /// Expires buckets and returns the window-sum estimate at time t_now.
  [[nodiscard]] double Query(Timestamp t_now);

  /// Estimate without advancing time (uses the last seen t_now).
  [[nodiscard]] double Estimate() const;

  /// Number of live buckets (space usage is 2 words per bucket).
  [[nodiscard]] int bucket_count() const { return static_cast<int>(buckets_.size()); }

  /// Space in words: 2 per bucket (sum + timestamp).
  [[nodiscard]] long SpaceWords() const { return 2L * bucket_count(); }

 private:
  struct Bucket {
    double sum;
    Timestamp t_newest;
    bool merged;  // true once this bucket contains more than one item
  };

  void ExpireUpTo(Timestamp t_now);
  void Compress();

  double eps_;
  Timestamp window_;
  std::deque<Bucket> buckets_;  // front = oldest
  double total_ = 0.0;
  Timestamp last_time_ = 0;
  int inserts_since_compress_ = 0;
};

}  // namespace dswm

#endif  // DSWM_WINDOW_EXPONENTIAL_HISTOGRAM_H_
