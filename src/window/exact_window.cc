#include "window/exact_window.h"

#include "common/check.h"

namespace dswm {

ExactWindow::ExactWindow(int d, Timestamp window)
    : d_(d), window_(window), cov_(d, d) {
  DSWM_CHECK_GT(d, 0);
  DSWM_CHECK_GT(window, 0);
}

void ExactWindow::Apply(const TimedRow& row, double sign) {
  if (!row.support.empty()) {
    cov_.AddSparseOuterProduct(row.values.data(), row.support, sign);
  } else {
    cov_.AddOuterProduct(row.values.data(), sign);
  }
  fnorm2_ += sign * row.NormSquared();
}

void ExactWindow::Add(const TimedRow& row) {
  DSWM_CHECK_EQ(static_cast<int>(row.values.size()), d_);
  Apply(row, 1.0);
  rows_.push_back(row);
}

void ExactWindow::Advance(Timestamp t_now) {
  const Timestamp cutoff = t_now - window_;
  while (!rows_.empty() && rows_.front().timestamp <= cutoff) {
    Apply(rows_.front(), -1.0);
    rows_.pop_front();
  }
  if (rows_.empty()) {
    cov_.SetZero();  // kill accumulated floating-point residue
    fnorm2_ = 0.0;
  }
}

Matrix ExactWindow::RowsMatrix() const {
  Matrix m(static_cast<int>(rows_.size()), d_);
  for (size_t i = 0; i < rows_.size(); ++i) {
    m.SetRow(static_cast<int>(i), rows_[i].values.data());
  }
  return m;
}

}  // namespace dswm
