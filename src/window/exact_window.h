// Exact sliding-window reference: stores every active row and maintains
// the exact covariance A_w^T A_w incrementally.
//
// This is the ground truth the driver measures protocols against, and
// doubles as the "store all active rows" fallback the paper assumes when
// mEH is not used. Sparse rows update the covariance in O(nnz^2).

#ifndef DSWM_WINDOW_EXACT_WINDOW_H_
#define DSWM_WINDOW_EXACT_WINDOW_H_

#include <deque>

#include "stream/timed_row.h"

namespace dswm {

/// Exact time-based sliding-window matrix with incremental covariance.
class ExactWindow {
 public:
  /// d-dimensional rows over a window of `window` ticks.
  ExactWindow(int d, Timestamp window);

  /// Adds a row (timestamps non-decreasing).
  void Add(const TimedRow& row);

  /// Expires rows older than t_now - window.
  void Advance(Timestamp t_now);

  /// Exact d x d covariance A_w^T A_w of active rows.
  [[nodiscard]] const Matrix& Covariance() const { return cov_; }

  /// Exact ||A_w||_F^2.
  [[nodiscard]] double FrobeniusSquared() const { return fnorm2_; }

  /// Number of active rows.
  [[nodiscard]] int size() const { return static_cast<int>(rows_.size()); }

  /// Materializes the active rows as a matrix (tests only; O(n*d)).
  [[nodiscard]] Matrix RowsMatrix() const;

  /// Active rows, oldest first.
  [[nodiscard]] const std::deque<TimedRow>& rows() const { return rows_; }

 private:
  void Apply(const TimedRow& row, double sign);

  int d_;
  Timestamp window_;
  std::deque<TimedRow> rows_;
  Matrix cov_;
  double fnorm2_ = 0.0;
};

}  // namespace dswm

#endif  // DSWM_WINDOW_EXACT_WINDOW_H_
