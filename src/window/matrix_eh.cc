#include "window/matrix_eh.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/check.h"
#include "linalg/batched.h"
#include "obs/metrics.h"

namespace dswm {

MatrixExpHistogram::MatrixExpHistogram(int d, double eps, Timestamp window)
    : d_(d),
      eps_bucket_(eps / 3.0),
      ell_(static_cast<int>(std::ceil(3.0 / eps))),
      window_(window) {
  DSWM_CHECK_GT(d, 0);
  DSWM_CHECK_GT(eps, 0.0);
  DSWM_CHECK_GT(window, 0);
}

void MatrixExpHistogram::Insert(const double* row, Timestamp t) {
  if (t < last_time_) {
    InsertLate(row, t);
    return;
  }
  last_time_ = t;
  Advance(t);

  Bucket b{FrequentDirections(d_, ell_), NormSquared(row, d_), t, t, false};
  b.fd.Append(row);
  total_mass_ += b.mass;
  buckets_.push_back(std::move(b));

  if (++inserts_since_compress_ >= 4) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void MatrixExpHistogram::InsertLate(const double* row, Timestamp t) {
  // A reordered arrival (retransmitted row upload): the histogram clock
  // already advanced past t. Never regress last_time_ -- expiry decisions
  // stay anchored to the newest time seen.
  if (t <= last_time_ - window_) {
    // Its whole interval has already expired; adding it would violate the
    // front-bucket freshness invariant and resurrect dropped mass.
    DSWM_OBS_COUNT("window.meh.late_dropped", 1);
    return;
  }
  DSWM_OBS_COUNT("window.meh.late_inserts", 1);
  Bucket b{FrequentDirections(d_, ell_), NormSquared(row, d_), t, t, false};
  b.fd.Append(row);
  total_mass_ += b.mass;
  // Splice into time order (after the last bucket at or before t, so
  // arrival order is preserved among equal timestamps), keeping the
  // deque's oldest -> newest invariant that expiry and DA2's reverse
  // replay both walk.
  auto it = buckets_.end();
  while (it != buckets_.begin() && (it - 1)->t_newest > t) --it;
  buckets_.insert(it, std::move(b));

  if (++inserts_since_compress_ >= 4) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void MatrixExpHistogram::Advance(Timestamp t_now,
                                 std::vector<Bucket>* dropped) {
  DSWM_CHECK_GE(t_now, last_time_);
  last_time_ = t_now;
  const Timestamp cutoff = t_now - window_;
  while (!buckets_.empty() && buckets_.front().t_newest <= cutoff) {
    DSWM_OBS_COUNT("window.meh.expired_buckets", 1);
    total_mass_ -= buckets_.front().mass;
    if (dropped != nullptr) dropped->push_back(std::move(buckets_.front()));
    buckets_.pop_front();
  }
  // Expiry invariants: surviving buckets end inside the window, hold
  // internally-ordered time ranges in oldest -> newest order, and the
  // running mass never goes (more than rounding) negative.
  DSWM_DCHECK(buckets_.empty() || buckets_.front().t_newest > cutoff);
  DSWM_DCHECK(buckets_.empty() ||
              buckets_.front().t_oldest <= buckets_.front().t_newest);
  DSWM_DCHECK(buckets_.size() < 2 ||
              buckets_.front().t_newest <= buckets_.back().t_newest);
  DSWM_DCHECK_GE(total_mass_, -1e-9);
}

void MatrixExpHistogram::Compress() {
  if (buckets_.size() < 2) return;
  // Plan first, execute second. Each merge decision reads only bucket
  // masses (prefix/suffix arithmetic), never sketch contents, so the
  // sequential decision loop can run to completion before any FD work
  // happens. A chained merge stays at the same destination, so every
  // group is one destination bucket absorbing the consecutive run of
  // source buckets [dst + 1, src_end).
  struct MergeGroup {
    size_t dst;
    size_t src_end;
    double mass;
  };
  std::vector<MergeGroup> groups;
  {
    std::vector<std::pair<size_t, double>> live;  // (original index, mass)
    live.reserve(buckets_.size());
    for (size_t b = 0; b < buckets_.size(); ++b) {
      live.emplace_back(b, buckets_[b].mass);
    }
    double prefix = 0.0;
    size_t i = 0;
    while (i + 1 < live.size()) {
      const double pair = live[i].second + live[i + 1].second;
      const double suffix = total_mass_ - prefix - pair;
      if (pair <= eps_bucket_ * suffix) {
        DSWM_OBS_COUNT("window.meh.merges", 1);
        if (!groups.empty() && groups.back().dst == live[i].first) {
          groups.back().src_end = live[i + 1].first + 1;
          groups.back().mass = pair;
        } else {
          groups.push_back({live[i].first, live[i + 1].first + 1, pair});
        }
        live[i].second = pair;
        live.erase(live.begin() + static_cast<long>(i) + 1);
      } else {
        prefix += live[i].second;
        ++i;
      }
    }
  }
  if (groups.empty()) return;

  // All merge chains due this tick run as one batch (one pool dispatch).
  // Each job replays its chain's Merge sequence in order -- the embedded
  // shrink schedule is per-destination, so the batch is bit-identical to
  // the sequential loop at any thread count.
  std::vector<FdShrinkJob> jobs(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    jobs[g].fd = &buckets_[groups[g].dst].fd;
    for (size_t s = groups[g].dst + 1; s < groups[g].src_end; ++s) {
      jobs[g].sources.push_back(&buckets_[s].fd);
    }
  }
  BatchedFdShrink(jobs.data(), static_cast<int>(jobs.size()));

  for (const MergeGroup& g : groups) {
    Bucket& dst = buckets_[g.dst];
    dst.mass = g.mass;
    dst.t_newest = buckets_[g.src_end - 1].t_newest;
    dst.merged = true;
  }
  // Drop the absorbed source buckets in one pass, preserving order.
  std::deque<Bucket> kept;
  size_t g = 0;
  for (size_t b = 0; b < buckets_.size(); ++b) {
    while (g < groups.size() && b >= groups[g].src_end) ++g;
    const bool is_source =
        g < groups.size() && b > groups[g].dst && b < groups[g].src_end;
    if (!is_source) kept.push_back(std::move(buckets_[b]));
  }
  buckets_ = std::move(kept);
}

Matrix MatrixExpHistogram::QueryRows() const {
  int total = 0;
  for (const Bucket& b : buckets_) total += b.fd.row_count();
  Matrix rows(0, d_);
  rows.Reserve(total);
  for (const Bucket& b : buckets_) {
    const Matrix m = b.fd.RowsMatrix();
    for (int i = 0; i < m.rows(); ++i) rows.AppendRow(m.Row(i), d_);
  }
  return rows;
}

Matrix MatrixExpHistogram::QueryCovariance() const {
  Matrix c(d_, d_);
  for (const Bucket& b : buckets_) {
    const Matrix m = b.fd.RowsMatrix();
    for (int i = 0; i < m.rows(); ++i) c.AddOuterProduct(m.Row(i), 1.0);
  }
  return c;
}

double MatrixExpHistogram::FrobeniusSquaredEstimate() const {
  if (buckets_.empty()) return 0.0;
  double est = total_mass_;
  if (buckets_.front().merged) est -= 0.5 * buckets_.front().mass;
  return est;
}

int MatrixExpHistogram::TotalRows() const {
  int n = 0;
  for (const Bucket& b : buckets_) n += b.fd.row_count();
  return n;
}

long MatrixExpHistogram::SpaceWords() const {
  long words = 0;
  for (const Bucket& b : buckets_) words += b.fd.SpaceWords() + 4;
  return words;
}

}  // namespace dswm
