#include "window/matrix_eh.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

namespace dswm {

MatrixExpHistogram::MatrixExpHistogram(int d, double eps, Timestamp window)
    : d_(d),
      eps_bucket_(eps / 3.0),
      ell_(static_cast<int>(std::ceil(3.0 / eps))),
      window_(window) {
  DSWM_CHECK_GT(d, 0);
  DSWM_CHECK_GT(eps, 0.0);
  DSWM_CHECK_GT(window, 0);
}

void MatrixExpHistogram::Insert(const double* row, Timestamp t) {
  DSWM_CHECK_GE(t, last_time_);
  last_time_ = t;
  Advance(t);

  Bucket b{FrequentDirections(d_, ell_), NormSquared(row, d_), t, t, false};
  b.fd.Append(row);
  total_mass_ += b.mass;
  buckets_.push_back(std::move(b));

  if (++inserts_since_compress_ >= 4) {
    Compress();
    inserts_since_compress_ = 0;
  }
}

void MatrixExpHistogram::Advance(Timestamp t_now,
                                 std::vector<Bucket>* dropped) {
  DSWM_CHECK_GE(t_now, last_time_);
  last_time_ = t_now;
  const Timestamp cutoff = t_now - window_;
  while (!buckets_.empty() && buckets_.front().t_newest <= cutoff) {
    DSWM_OBS_COUNT("window.meh.expired_buckets", 1);
    total_mass_ -= buckets_.front().mass;
    if (dropped != nullptr) dropped->push_back(std::move(buckets_.front()));
    buckets_.pop_front();
  }
  // Expiry invariants: surviving buckets end inside the window, hold
  // internally-ordered time ranges in oldest -> newest order, and the
  // running mass never goes (more than rounding) negative.
  DSWM_DCHECK(buckets_.empty() || buckets_.front().t_newest > cutoff);
  DSWM_DCHECK(buckets_.empty() ||
              buckets_.front().t_oldest <= buckets_.front().t_newest);
  DSWM_DCHECK(buckets_.size() < 2 ||
              buckets_.front().t_newest <= buckets_.back().t_newest);
  DSWM_DCHECK_GE(total_mass_, -1e-9);
}

void MatrixExpHistogram::Compress() {
  if (buckets_.size() < 2) return;
  double prefix = 0.0;
  size_t i = 0;
  while (i + 1 < buckets_.size()) {
    const double pair = buckets_[i].mass + buckets_[i + 1].mass;
    const double suffix = total_mass_ - prefix - pair;
    if (pair <= eps_bucket_ * suffix) {
      DSWM_OBS_COUNT("window.meh.merges", 1);
      Bucket& dst = buckets_[i];
      Bucket& src = buckets_[i + 1];
      dst.fd.Merge(src.fd);
      dst.mass = pair;
      dst.t_newest = src.t_newest;
      dst.merged = true;
      buckets_.erase(buckets_.begin() + static_cast<long>(i) + 1);
    } else {
      prefix += buckets_[i].mass;
      ++i;
    }
  }
}

Matrix MatrixExpHistogram::QueryRows() const {
  int total = 0;
  for (const Bucket& b : buckets_) total += b.fd.row_count();
  Matrix rows(0, d_);
  rows.Reserve(total);
  for (const Bucket& b : buckets_) {
    const Matrix m = b.fd.RowsMatrix();
    for (int i = 0; i < m.rows(); ++i) rows.AppendRow(m.Row(i), d_);
  }
  return rows;
}

Matrix MatrixExpHistogram::QueryCovariance() const {
  Matrix c(d_, d_);
  for (const Bucket& b : buckets_) {
    const Matrix m = b.fd.RowsMatrix();
    for (int i = 0; i < m.rows(); ++i) c.AddOuterProduct(m.Row(i), 1.0);
  }
  return c;
}

double MatrixExpHistogram::FrobeniusSquaredEstimate() const {
  if (buckets_.empty()) return 0.0;
  double est = total_mass_;
  if (buckets_.front().merged) est -= 0.5 * buckets_.front().mass;
  return est;
}

int MatrixExpHistogram::TotalRows() const {
  int n = 0;
  for (const Bucket& b : buckets_) n += b.fd.row_count();
  return n;
}

long MatrixExpHistogram::SpaceWords() const {
  long words = 0;
  for (const Bucket& b : buckets_) words += b.fd.SpaceWords() + 4;
  return words;
}

}  // namespace dswm
