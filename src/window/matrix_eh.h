// Matrix exponential histogram (mEH) -- sliding-window covariance sketch
// (Wei et al., SIGMOD 2016 [17]).
//
// Same bucket skeleton as the scalar gEH, but each bucket holds a Frequent
// Directions sketch of its rows and its exact squared-Frobenius mass.
// Error sources at query time:
//   * the partially-expired oldest bucket: <= its mass <= eps_b * window
//     mass (same suffix-growth argument as the scalar gEH);
//   * FD shrinkage inside buckets: <= sum of bucket shrinkages, controlled
//     by the per-bucket sketch parameter l.
// Internal parameters are derived from the caller's eps so the combined
// covariance error stays below eps (verified by property tests).
//
// Space: O((1/eps) log(NR)) buckets x O(1/eps) rows x d words, matching
// the d/eps^2 log(NR) per-site bound of Table II.

#ifndef DSWM_WINDOW_MATRIX_EH_H_
#define DSWM_WINDOW_MATRIX_EH_H_

#include <cmath>
#include <deque>

#include "sketch/frequent_directions.h"
#include "stream/timed_row.h"

namespace dswm {

/// Sliding-window covariance sketch with covariance error <= eps * F^2.
class MatrixExpHistogram {
 public:
  /// One time-interval bucket.
  struct Bucket {
    FrequentDirections fd;
    double mass;           // exact squared-Frobenius mass of rows in bucket
    Timestamp t_oldest;
    Timestamp t_newest;
    bool merged;
  };

  /// d-dimensional rows, window length `window` ticks, target covariance
  /// error eps.
  MatrixExpHistogram(int d, double eps, Timestamp window);

  /// Inserts a row at time t. The fast path expects non-decreasing times
  /// (a site's local stream); a row older than the newest seen -- a
  /// reordered retransmit delivered to the centralized tracker -- is
  /// spliced into its time-ordered bucket position without regressing the
  /// histogram clock, or dropped outright when its window has already
  /// expired. The in-order path is byte-identical to the historical
  /// monotone-only behavior.
  void Insert(const double* row, Timestamp t);

  /// Expires old buckets as of t_now (call before reading). If `dropped`
  /// is non-null, expired buckets are moved into it (DA1 subtracts their
  /// covariance from its incremental window covariance).
  void Advance(Timestamp t_now, std::vector<Bucket>* dropped = nullptr);

  /// Sketch rows of all live buckets concatenated (l' x d).
  [[nodiscard]] Matrix QueryRows() const;

  /// d x d covariance estimate C' ~= A_w^T A_w.
  [[nodiscard]] Matrix QueryCovariance() const;

  /// Estimate of ||A_w||_F^2 (relative error <= eps/2).
  [[nodiscard]] double FrobeniusSquaredEstimate() const;

  /// Live buckets, oldest first; DA2's reverse replay walks these.
  [[nodiscard]] const std::deque<Bucket>& buckets() const { return buckets_; }

  [[nodiscard]] int dim() const { return d_; }

  /// Total rows held across buckets.
  [[nodiscard]] int TotalRows() const;

  /// Space usage in words (sketch rows * d + per-bucket bookkeeping).
  [[nodiscard]] long SpaceWords() const;

 private:
  void InsertLate(const double* row, Timestamp t);
  void Compress();

  int d_;
  double eps_bucket_;  // merge-rule epsilon
  int ell_;            // per-bucket FD parameter
  Timestamp window_;
  std::deque<Bucket> buckets_;  // front = oldest
  double total_mass_ = 0.0;
  Timestamp last_time_ = 0;
  int inserts_since_compress_ = 0;
};

}  // namespace dswm

#endif  // DSWM_WINDOW_MATRIX_EH_H_
