// Runtime selection: lockstep oracle, event-driven scheduler, or
// multi-process scale-out.
//
// MakeRuntime builds the Runtime implementation behind a --runtime flag
// value and (as a side effect of linking this file) registers the
// "events" and "process" channel backends in the net backend registry.
// The contract each mode honors:
//
//   lockstep -- the bit-exact oracle (monitor/runtime.h): synchronous
//               loopback/faulty channels, rows stepped in a plain loop.
//   events   -- EventScheduler over EventChannel: per-site event queues,
//               run-to-completion delivery. Deterministic mode (the
//               default) is bit-identical to lockstep for all factory
//               algorithms; wall_clock additionally pumps transports at
//               their due times.
//   process  -- EventScheduler over ProcessChannel: every frame round-
//               trips through a forked per-site worker over an AF_UNIX
//               socket. Bit-identical to lockstep when fault-free;
//               drop/reliable faults match the documented determinism
//               contract (coordinator-side dice, same seeds).

#ifndef DSWM_RUNTIME_RUNTIME_H_
#define DSWM_RUNTIME_RUNTIME_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "monitor/runtime.h"

namespace dswm::runtime {

enum class RuntimeKind {
  kLockstep,
  kEvents,
  kProcess,
};

struct RuntimeOptions {
  RuntimeKind kind = RuntimeKind::kLockstep;
  /// Events mode only: pump transports at FaultyChannel::NextDueTime
  /// instead of inside tracker calls (documented divergence from the
  /// lockstep oracle under delay faults).
  bool wall_clock = false;
};

/// Parses a --runtime flag value: "lockstep", "events", "process".
[[nodiscard]] StatusOr<RuntimeKind> ParseRuntimeKind(const std::string& name);
[[nodiscard]] const char* RuntimeKindName(RuntimeKind kind);

/// Builds the selected runtime. Never fails for valid options.
[[nodiscard]] std::unique_ptr<Runtime> MakeRuntime(const RuntimeOptions& options);

/// Idempotently registers the "events" and "process" channel backends
/// (net/backend_registry.h). MakeRuntime calls this; tests that reach the
/// registry directly call it themselves.
void RegisterRuntimeBackends();

}  // namespace dswm::runtime

#endif  // DSWM_RUNTIME_RUNTIME_H_
