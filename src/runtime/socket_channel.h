// ProcessChannel: the cross-process transport backend.
//
// Every Send performs a synchronous RPC round trip through the target
// site's worker process (process_supervisor.h): the serialized frame
// goes out over an AF_UNIX stream socket, the worker independently
// re-parses and sequence-checks it, and the coordinator delivers the
// frame parsed from the *echoed* bytes -- so each delivered payload has
// crossed two real process boundaries byte for byte. Because the round
// trip completes inside Send, the delivery order is identical to
// LoopbackChannel's nested synchronous order, which makes the fault-free
// process runtime bit-exact against the lockstep oracle.
//
// Fault injection mirrors FaultyChannel where the semantics survive a
// real transport: the drop dice live on the coordinator (same seeded Rng
// and draw order, so ledgers line up bit for bit), a dropped frame still
// makes the round trip flagged kFlagDrop (validated, not delivered, and
// the worker's sequence cursor does not advance), and the reliable shim
// retransmits the same bytes -- same wire sequence -- on AdvanceTime.
// Duplicate and delay injection have no faithful synchronous-RPC analog
// and are rejected via Health() (the runtime surfaces the error before
// results are trusted).

#ifndef DSWM_RUNTIME_SOCKET_CHANNEL_H_
#define DSWM_RUNTIME_SOCKET_CHANNEL_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/channel.h"
#include "runtime/process_supervisor.h"

namespace dswm::runtime {

class ProcessChannel final : public net::Channel {
 public:
  /// `profile.seed` must already be salted (MixChannelSeed), exactly as
  /// MakeChannel salts FaultyChannel -- the backend factory does this.
  /// Forks the worker fleet; a failed Start latches Health().
  ProcessChannel(const net::NetProfile& profile, int num_sites);
  ~ProcessChannel() override;

  /// Flushes due retransmissions (reliable shim), like FaultyChannel.
  void AdvanceTime(Timestamp t) override;

  /// Shuts the worker fleet down (shutdown envelope + waitpid) and
  /// latches closed. Idempotent; also run by the destructor.
  void Close() override;

  /// First unrecoverable transport error (socket failure, worker verdict
  /// mismatch, abnormal worker exit, unsupported fault knob), or OK.
  [[nodiscard]] Status Health() const override { return health_; }

  /// Live fault knobs, mirroring FaultyChannel::profile(): experiments
  /// mutate drop/reliable mid-run (e.g. stop dropping to measure
  /// recovery). duplicate/delay stay rejected at construction.
  [[nodiscard]] net::NetProfile& profile() { return profile_; }
  [[nodiscard]] const net::NetProfile& profile() const { return profile_; }

  /// Completed coordinator -> worker -> coordinator round trips.
  [[nodiscard]] long round_trips() const { return round_trips_; }
  /// Data-plane frames the coordinator's dice dropped in flight.
  [[nodiscard]] long drops_injected() const { return drops_injected_; }
  /// Retransmission attempts performed by the reliable shim.
  [[nodiscard]] long retransmits() const { return retransmits_; }
  /// Retransmissions currently awaiting their due time.
  [[nodiscard]] long in_flight() const {
    return static_cast<long>(retry_queue_.size());
  }

 protected:
  void Dispatch(net::Delivery delivery, const FrameInfo& frame,
                const std::vector<uint8_t>& bytes) override;

 private:
  struct Pending {
    net::Delivery delivery;
    FrameInfo frame;
    std::vector<uint8_t> bytes;  // the original serialized frame
  };

  /// One transmission attempt: rolls the drop die (data plane only) and
  /// round-trips through the worker(s). Mirrors FaultyChannel::Attempt's
  /// record/retry structure.
  void Attempt(net::Delivery delivery, const FrameInfo& frame,
               const std::vector<uint8_t>& bytes, bool retransmit);

  /// Envelope + frame out, receipt + echo back, on one worker socket.
  /// Fills `echo` with the returned frame bytes. Fails on socket errors,
  /// mismatched echoes, or unexpected worker verdicts.
  [[nodiscard]] Status RoundTrip(int worker_site, const net::Delivery& delivery,
                                 const std::vector<uint8_t>& bytes, bool drop,
                                 bool retransmit, std::vector<uint8_t>* echo);

  void LatchHealth(Status s);

  ProcessSupervisor supervisor_;
  net::NetProfile profile_;
  /// Coordinator-side fault dice: same seed and draw order as the
  /// FaultyChannel this backend replaces, so ledgers match bit for bit.
  Rng rng_;
  Status health_ = Status::OK();
  // (due time, enqueue order) -> pending retransmission.
  std::map<std::pair<Timestamp, uint64_t>, Pending> retry_queue_;
  uint64_t retry_counter_ = 0;
  long round_trips_ = 0;
  long drops_injected_ = 0;
  long retransmits_ = 0;
};

}  // namespace dswm::runtime

#endif  // DSWM_RUNTIME_SOCKET_CHANNEL_H_
