#include "runtime/event_channel.h"

#include <utility>

#include "obs/metrics.h"

namespace dswm::runtime {

void EventChannel::Dispatch(net::Delivery delivery, const FrameInfo& frame,
                            const std::vector<uint8_t>& bytes) {
  (void)bytes;  // in-process: the parsed delivery already is the frame
  Record(delivery, frame, /*dropped=*/false, /*retransmit=*/false,
         /*duplicate=*/false);
  if (in_handler_) {
    // A handler sent during a delivery: splice the new arrival right
    // behind the event being processed, after any siblings it already
    // spawned (depth-first causal order, the order nested synchronous
    // delivery would have produced).
    pending_.insert(pending_.begin() + splice_pos_, std::move(delivery));
    ++splice_pos_;
  } else {
    pending_.push_back(std::move(delivery));
  }
  if (!draining_) Drain();
}

void EventChannel::Drain() {
  draining_ = true;
  while (!pending_.empty()) {
    net::Delivery next = std::move(pending_.front());
    pending_.pop_front();
    ++deliveries_;
    DSWM_OBS_COUNT("runtime.events.message", 1);
    if (next.sequence != expected_sequence_) {
      ++seq_anomalies_;
      DSWM_OBS_COUNT("runtime.seq_anomalies", 1);
      // Resynchronize on the observed number so one anomaly is counted
      // once, not once per subsequent frame.
      expected_sequence_ = next.sequence;
    }
    ++expected_sequence_;
    in_handler_ = true;
    splice_pos_ = 0;
    Handle(std::move(next));
    in_handler_ = false;
  }
  draining_ = false;
}

}  // namespace dswm::runtime
