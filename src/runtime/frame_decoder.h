// Incremental wire-frame framing.
//
// A stream socket delivers bytes, not frames: a read may return half a
// header, three frames, or one byte. FrameDecoder re-frames the stream --
// feed it arbitrary byte slices and take complete frames out as they
// materialize. Framing only: the extracted bytes still go through
// net::ParseFrame for semantic validation, so a corrupt length field is
// caught here (bounded by kMaxFrameBytes) and corrupt content is caught
// there.

#ifndef DSWM_RUNTIME_FRAME_DECODER_H_
#define DSWM_RUNTIME_FRAME_DECODER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"

namespace dswm::runtime {

class FrameDecoder {
 public:
  /// Upper bound on a single frame (header + payload + aux). Generously
  /// above anything the protocols emit (d <= hundreds, so frames are
  /// KB-scale); a declared length beyond it means a desynchronized or
  /// corrupt stream and fails the feed instead of growing unbounded.
  static constexpr size_t kMaxFrameBytes = 1u << 24;  // 16 MiB

  /// Appends `len` bytes from the stream. Fails (permanently) when a
  /// frame header declares an oversized frame.
  [[nodiscard]] Status Feed(const uint8_t* data, size_t len);

  /// True when at least one complete frame is buffered.
  [[nodiscard]] bool HasFrame() const;

  /// Moves the next complete frame out. Requires HasFrame().
  [[nodiscard]] std::vector<uint8_t> NextFrame();

  /// Bytes buffered but not yet consumed as frames.
  [[nodiscard]] size_t buffered_bytes() const { return buffer_.size(); }

 private:
  /// Frame length declared by the (complete) header at buffer_[0], or 0
  /// when fewer than kFrameHeaderBytes are buffered.
  [[nodiscard]] size_t PendingFrameBytes() const;

  std::vector<uint8_t> buffer_;
  bool poisoned_ = false;
};

}  // namespace dswm::runtime

#endif  // DSWM_RUNTIME_FRAME_DECODER_H_
