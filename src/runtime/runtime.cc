#include "runtime/runtime.h"

#include <utility>

#include "common/check.h"
#include "monitor/replay.h"
#include "net/backend_registry.h"
#include "runtime/event_channel.h"
#include "runtime/scheduler.h"
#include "runtime/socket_channel.h"

namespace dswm::runtime {

namespace {

std::unique_ptr<net::Channel> MakeEventBackendChannel(
    const net::NetProfile& profile, int num_sites, uint64_t salt) {
  if (profile.faulty()) {
    // Fault injection stays in FaultyChannel (its queue + dice are the
    // reference semantics); the event scheduler drives it via
    // NextDueTime instead of polling.
    return net::MakeChannel(profile, num_sites, salt);
  }
  return std::make_unique<EventChannel>(num_sites);
}

std::unique_ptr<net::Channel> MakeProcessBackendChannel(
    const net::NetProfile& profile, int num_sites, uint64_t salt) {
  net::NetProfile salted = profile;
  salted.seed = net::MixChannelSeed(profile.seed, salt);
  return std::make_unique<ProcessChannel>(salted, num_sites);
}

/// Shared Run body for the scheduler-driven runtimes: plan, drain the
/// event queue, finish -- then surface any transport health error before
/// the results are trusted.
StatusOr<RunResult> RunScheduled(DistributedTracker* tracker,
                                 const std::vector<TimedRow>& rows,
                                 int num_sites, Timestamp window,
                                 const DriverOptions& options,
                                 bool wall_clock) {
  ReplayHarness replay(tracker, rows, num_sites, window, options);
  DSWM_RETURN_NOT_OK(replay.Plan());
  EventScheduler::Options sched_options;
  sched_options.wall_clock = wall_clock;
  EventScheduler scheduler(tracker, &replay, sched_options);
  DSWM_RETURN_NOT_OK(scheduler.Run());
  StatusOr<RunResult> result = replay.Finish();
  for (net::Channel* channel : tracker->Channels()) {
    DSWM_RETURN_NOT_OK(channel->Health());
  }
  return result;
}

class EventRuntime final : public Runtime {
 public:
  explicit EventRuntime(bool wall_clock) : wall_clock_(wall_clock) {}

  [[nodiscard]] const char* name() const override { return "events"; }

  [[nodiscard]] net::ChannelBackendFn backend() const override {
    return MakeEventBackendChannel;
  }

  [[nodiscard]] StatusOr<RunResult> Run(
      DistributedTracker* tracker, const std::vector<TimedRow>& rows,
      int num_sites, Timestamp window, const DriverOptions& options) override {
    return RunScheduled(tracker, rows, num_sites, window, options,
                        wall_clock_);
  }

 private:
  bool wall_clock_;
};

class ProcessRuntime final : public Runtime {
 public:
  [[nodiscard]] const char* name() const override { return "process"; }

  [[nodiscard]] net::ChannelBackendFn backend() const override {
    return MakeProcessBackendChannel;
  }

  [[nodiscard]] StatusOr<RunResult> Run(
      DistributedTracker* tracker, const std::vector<TimedRow>& rows,
      int num_sites, Timestamp window, const DriverOptions& options) override {
    // ProcessChannel has no FaultyChannel queue, so wall-clock wakeups
    // never fire; retransmissions flush inside tracker AdvanceTime calls
    // exactly as in lockstep.
    return RunScheduled(tracker, rows, num_sites, window, options,
                        /*wall_clock=*/false);
  }
};

}  // namespace

void RegisterRuntimeBackends() {
  // Re-registration replaces, so repeated calls are harmless.
  DSWM_CHECK(
      net::RegisterChannelBackend("events", MakeEventBackendChannel).ok());
  DSWM_CHECK(
      net::RegisterChannelBackend("process", MakeProcessBackendChannel).ok());
}

StatusOr<RuntimeKind> ParseRuntimeKind(const std::string& name) {
  if (name == "lockstep") return RuntimeKind::kLockstep;
  if (name == "events") return RuntimeKind::kEvents;
  if (name == "process") return RuntimeKind::kProcess;
  return Status::InvalidArgument(
      "unknown runtime '" + name + "' (expected lockstep, events, process)");
}

const char* RuntimeKindName(RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::kLockstep:
      return "lockstep";
    case RuntimeKind::kEvents:
      return "events";
    case RuntimeKind::kProcess:
      return "process";
  }
  return "unknown";
}

std::unique_ptr<Runtime> MakeRuntime(const RuntimeOptions& options) {
  RegisterRuntimeBackends();
  switch (options.kind) {
    case RuntimeKind::kLockstep:
      return std::make_unique<LockstepRuntime>();
    case RuntimeKind::kEvents:
      return std::make_unique<EventRuntime>(options.wall_clock);
    case RuntimeKind::kProcess:
      return std::make_unique<ProcessRuntime>();
  }
  return nullptr;
}

}  // namespace dswm::runtime
