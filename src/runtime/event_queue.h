// Deterministic per-site event queues with a merged global order.
//
// Every schedulable occurrence in the event-driven runtime is an Event
// keyed by (time, kind, seq): simulation time first, then the event class
// (transport wakeups flush before the row that arrives at the same
// instant, matching the lockstep order where a tracker drains its
// channels before protocol maintenance), then a global arrival number as
// the final seeded tie-break. Events live in one FIFO queue per site
// (queue 0 is the control/transport queue), and PopMin merges the queue
// heads through a min-heap -- there is no global lockstep scan, and two
// sites with disjoint event times never serialize against each other's
// clocks.
//
// Per-queue pushes must be key-ordered (streams are time-ordered and seq
// is monotone, so this holds by construction); the class checks it.

#ifndef DSWM_RUNTIME_EVENT_QUEUE_H_
#define DSWM_RUNTIME_EVENT_QUEUE_H_

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "stream/timed_row.h"

namespace dswm::runtime {

struct Event {
  /// Event classes, in tie-break order at equal time.
  enum class Kind : uint8_t {
    /// Flush transports up to `time` (delayed frames, retransmissions).
    kChannelWakeup = 0,
    /// One stream row arrives at its planned site (message-arrival events
    /// then fire inside the channel layer as the protocol reacts).
    kRow = 1,
  };

  Timestamp time = 0;
  Kind kind = Kind::kRow;
  /// Global arrival number: the deterministic final tie-break.
  uint64_t seq = 0;
  /// Owning queue: 0 = control/transport, 1 + site otherwise.
  int queue = 0;
  /// Row index for kRow events.
  int row_index = -1;
};

class EventQueue {
 public:
  /// One control queue plus `num_sites` site queues.
  explicit EventQueue(int num_sites);

  /// Appends `e` to its queue. Keys must be non-decreasing per queue.
  void Push(Event e);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] size_t size() const { return size_; }

  /// The globally smallest event across all queues (empty() must be
  /// false). PeekMin leaves it in place.
  [[nodiscard]] const Event& PeekMin() const;
  Event PopMin();

 private:
  struct HeapKey {
    Timestamp time;
    uint8_t kind;
    uint64_t seq;
    int queue;
    [[nodiscard]] bool operator>(const HeapKey& o) const {
      if (time != o.time) return time > o.time;
      if (kind != o.kind) return kind > o.kind;
      return seq > o.seq;
    }
  };

  static HeapKey KeyOf(const Event& e) {
    return HeapKey{e.time, static_cast<uint8_t>(e.kind), e.seq, e.queue};
  }

  std::vector<std::deque<Event>> queues_;
  /// Min-heap over the head event of every non-empty queue.
  std::priority_queue<HeapKey, std::vector<HeapKey>, std::greater<HeapKey>>
      heads_;
  size_t size_ = 0;
};

}  // namespace dswm::runtime

#endif  // DSWM_RUNTIME_EVENT_QUEUE_H_
