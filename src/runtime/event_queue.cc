#include "runtime/event_queue.h"

#include <utility>

#include "common/check.h"

namespace dswm::runtime {

EventQueue::EventQueue(int num_sites) {
  DSWM_CHECK_GE(num_sites, 1);
  queues_.resize(static_cast<size_t>(num_sites) + 1);
}

void EventQueue::Push(Event e) {
  DSWM_CHECK(e.queue >= 0 &&
             e.queue < static_cast<int>(queues_.size()));
  std::deque<Event>& q = queues_[static_cast<size_t>(e.queue)];
  // FIFO-by-key within a queue: the merge invariant the heap relies on.
  if (!q.empty()) DSWM_CHECK(!(KeyOf(q.back()) > KeyOf(e)));
  const bool was_empty = q.empty();
  q.push_back(std::move(e));
  if (was_empty) heads_.push(KeyOf(q.back()));
  ++size_;
}

const Event& EventQueue::PeekMin() const {
  DSWM_CHECK(size_ > 0);
  const HeapKey& top = heads_.top();
  return queues_[static_cast<size_t>(top.queue)].front();
}

Event EventQueue::PopMin() {
  DSWM_CHECK(size_ > 0);
  const HeapKey top = heads_.top();
  heads_.pop();
  std::deque<Event>& q = queues_[static_cast<size_t>(top.queue)];
  Event e = std::move(q.front());
  q.pop_front();
  if (!q.empty()) heads_.push(KeyOf(q.front()));
  --size_;
  return e;
}

}  // namespace dswm::runtime
