// The event-driven replay scheduler.
//
// Replaces the lockstep driver loop with an EventQueue drain: every row
// of the planned replay is a row-arrival event on its site's queue, and
// (in wall-clock mode) transport due times surface as channel-wakeup
// events on the control queue, discovered through
// FaultyChannel::NextDueTime() -- the scheduler sleeps until the earliest
// due instant instead of polling the clock tick by tick.
//
// Determinism contract (DESIGN.md section 12): in deterministic mode
// (wall_clock = false) the popped order is exactly the key order
// (time, kind, seq) of the planned events, which reproduces the lockstep
// replay bit for bit -- logical clock, seeded tie-breaking, no wall-time
// dependence. Wall-clock mode additionally pumps transports at their due
// times, so delayed frames can arrive *between* rows; results under
// delay faults then legitimately differ from the lockstep oracle (the
// coordinator sees fresher state) and are compared statistically, not
// bitwise.

#ifndef DSWM_RUNTIME_SCHEDULER_H_
#define DSWM_RUNTIME_SCHEDULER_H_

#include <optional>

#include "common/status.h"
#include "core/tracker.h"
#include "monitor/replay.h"
#include "runtime/event_queue.h"

namespace dswm::runtime {

class EventScheduler {
 public:
  struct Options {
    /// Pump transports at NextDueTime instead of waiting for the next
    /// row event (the documented divergence from the lockstep oracle).
    bool wall_clock = false;
  };

  /// `replay` must already be planned; both pointers are borrowed.
  EventScheduler(DistributedTracker* tracker, ReplayHarness* replay,
                 const Options& options);

  /// Drains the event queue to empty, stepping the replay as row events
  /// fire. Fails fast on the first tracker error.
  [[nodiscard]] Status Run();

  [[nodiscard]] long events_processed() const { return events_processed_; }
  [[nodiscard]] long wakeups_fired() const { return wakeups_fired_; }

 private:
  void MaybeScheduleWakeup();

  DistributedTracker* tracker_;
  ReplayHarness* replay_;
  Options options_;
  EventQueue queue_;
  uint64_t next_seq_;
  std::optional<Timestamp> scheduled_wakeup_;
  long events_processed_ = 0;
  long wakeups_fired_ = 0;
};

}  // namespace dswm::runtime

#endif  // DSWM_RUNTIME_SCHEDULER_H_
