// Event-queued in-process transport.
//
// Each Send becomes a message-arrival event on the channel's delivery
// queue instead of a nested synchronous handler call. The first
// (outermost) Send drains the queue to empty before returning --
// run-to-completion semantics -- so protocol code that reads coordinator
// state immediately after a Send still observes the delivered result,
// while nested Sends issued *by* a handler enqueue in causal (depth-
// first) position rather than recursing. Because the repo's protocols
// never send from a delivery handler, the drained order is provably
// identical to LoopbackChannel's nested synchronous order, which is what
// makes the event-driven runtime bit-exact against the lockstep oracle.
//
// The channel also verifies the wire-header sequence number of every
// delivery (1, 2, ... per channel): a gap or regression -- impossible
// in-process, the invariant the socket backend relies on -- increments
// runtime.seq_anomalies instead of corrupting protocol state.

#ifndef DSWM_RUNTIME_EVENT_CHANNEL_H_
#define DSWM_RUNTIME_EVENT_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "net/channel.h"

namespace dswm::runtime {

class EventChannel final : public net::Channel {
 public:
  explicit EventChannel(int num_sites) : net::Channel(num_sites) {}

  /// Sequence gaps/regressions observed across all deliveries.
  [[nodiscard]] long seq_anomalies() const { return seq_anomalies_; }
  /// Message-arrival events processed.
  [[nodiscard]] long deliveries() const { return deliveries_; }

 protected:
  void Dispatch(net::Delivery delivery, const FrameInfo& frame,
                const std::vector<uint8_t>& bytes) override;

 private:
  void Drain();

  std::deque<net::Delivery> pending_;
  bool draining_ = false;
  bool in_handler_ = false;
  /// Insertion cursor for arrivals spawned by the handler in flight.
  std::deque<net::Delivery>::difference_type splice_pos_ = 0;
  uint64_t expected_sequence_ = 1;
  long seq_anomalies_ = 0;
  long deliveries_ = 0;
};

}  // namespace dswm::runtime

#endif  // DSWM_RUNTIME_EVENT_CHANNEL_H_
