// Lifecycle of the per-site worker processes.
//
// Start() forks one child per site connected by an AF_UNIX stream
// socketpair; each child runs SiteWorkerMain on its end and _exits.
// Shutdown() sends every live worker a kShutdown envelope, closes the
// sockets, and reaps with waitpid -- idempotent, and also run by the
// destructor so a failed construction path never leaks children.
//
// Fork without exec: the child reuses the parent's address space (the
// worker loop touches only its socket), so no binary path or argv
// plumbing is needed and the backend works from any test or tool that
// links the library. The global thread pool defaults to one thread and
// the child takes no locks before _exit, keeping the fork safe.

#ifndef DSWM_RUNTIME_PROCESS_SUPERVISOR_H_
#define DSWM_RUNTIME_PROCESS_SUPERVISOR_H_

#include <sys/types.h>

#include <vector>

#include "common/status.h"

namespace dswm::runtime {

class ProcessSupervisor {
 public:
  ProcessSupervisor() = default;
  ~ProcessSupervisor();
  ProcessSupervisor(const ProcessSupervisor&) = delete;
  ProcessSupervisor& operator=(const ProcessSupervisor&) = delete;

  /// Forks `num_sites` workers. Fails (and cleans up the partial fleet)
  /// if any socketpair or fork fails. At most one Start per supervisor.
  [[nodiscard]] Status Start(int num_sites);

  /// Coordinator-side socket fd for `site`, or -1 after Shutdown.
  [[nodiscard]] int fd(int site) const;

  [[nodiscard]] int num_workers() const {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] bool started() const { return started_; }

  /// Stops the fleet: shutdown envelope, close, waitpid. Idempotent.
  /// Returns the first worker's abnormal exit as an error (after still
  /// reaping the rest).
  Status Shutdown();

 private:
  struct Worker {
    pid_t pid = -1;
    int fd = -1;
  };

  std::vector<Worker> workers_;
  bool started_ = false;
};

}  // namespace dswm::runtime

#endif  // DSWM_RUNTIME_PROCESS_SUPERVISOR_H_
