// The per-site worker process and its coordinator <-> worker protocol.
//
// The process backend runs each site as a forked child connected by an
// AF_UNIX stream socketpair. Traffic on that socket is wire frames
// (net/wire.h) wrapped in a fixed 32-byte WorkerEnvelope that carries
// what the frame itself cannot: routing (site, direction), transport
// verdicts (parse error / duplicate / drop), and lifecycle (shutdown).
//
// Per Send, the coordinator writes one kFrame envelope + frame and
// blocks for the worker's kReceipt envelope + echoed frame -- a
// synchronous RPC round trip. The worker independently re-parses the
// frame and checks per-direction sequence monotonicity, then echoes the
// frame bytes verbatim; the coordinator delivers what came *back* over
// the socket, so every delivered payload really crossed two process
// boundaries, byte for byte. Injected drops are decided on the
// coordinator (seeded dice, identical to FaultyChannel) and announced in
// the envelope's drop flag: the worker validates but does not advance
// its sequence cursor, so the later retransmission -- same wire sequence
// -- is not misflagged as a duplicate.

#ifndef DSWM_RUNTIME_SITE_WORKER_H_
#define DSWM_RUNTIME_SITE_WORKER_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"

namespace dswm::runtime {

/// Fixed-size little-endian envelope preceding every frame on the worker
/// socket. sizeof-independent: encoded/decoded field by field.
struct WorkerEnvelope {
  enum Type : uint8_t {
    kFrame = 1,     // coordinator -> worker: frame follows
    kReceipt = 2,   // worker -> coordinator: verdict, frame echo follows
    kShutdown = 3,  // coordinator -> worker: exit cleanly; no frame
  };
  enum Code : uint8_t {
    kOk = 0,
    kParseError = 1,  // frame failed net::ParseFrame on the worker
    kDuplicate = 2,   // wire sequence did not advance (per direction)
    kDropped = 3,     // drop-flagged frame: validated, not delivered
  };
  /// Flag bit: coordinator decided this frame is dropped in flight; the
  /// worker must validate and echo but report kDropped.
  static constexpr uint8_t kFlagDrop = 1u << 0;
  /// Flag bit: this is the reliable shim resending an earlier wire
  /// sequence. The worker must not apply the monotonicity check (later
  /// frames may have advanced the cursor past the dropped sequence while
  /// the retransmission was pending).
  static constexpr uint8_t kFlagRetransmit = 1u << 1;

  static constexpr uint32_t kMagic = 0x4d575344;  // "DSWM" little-endian
  static constexpr size_t kEncodedBytes = 32;

  uint32_t magic = kMagic;
  uint8_t type = kFrame;
  uint8_t dir = 0;  // net::Direction as uint8_t
  uint8_t code = kOk;
  uint8_t flags = 0;
  int32_t site = -1;
  int64_t sent_at = 0;
  uint64_t sequence = 0;
  /// Length of the frame that follows this envelope (0 for kShutdown).
  uint32_t frame_len = 0;

  void EncodeTo(uint8_t out[kEncodedBytes]) const;
  [[nodiscard]] static StatusOr<WorkerEnvelope> Decode(
      const uint8_t in[kEncodedBytes]);
};

/// read() until exactly `len` bytes arrive. IoError on EOF or errno;
/// retries EINTR.
[[nodiscard]] Status ReadFull(int fd, uint8_t* buf, size_t len);

/// write() until all `len` bytes are out. IoError on errno; retries
/// EINTR.
[[nodiscard]] Status WriteFull(int fd, const uint8_t* buf, size_t len);

/// Blocks until `fd` is readable or `timeout_ms` elapses. Returns true
/// when readable; false on timeout. Negative timeout blocks forever.
[[nodiscard]] bool PollReadable(int fd, int timeout_ms);

/// The child-process entry point: serve envelopes on `fd` until a
/// kShutdown envelope, EOF, or an unrecoverable socket error. Returns
/// the process exit code (0 = clean shutdown).
int SiteWorkerMain(int fd, int site);

}  // namespace dswm::runtime

#endif  // DSWM_RUNTIME_SITE_WORKER_H_
