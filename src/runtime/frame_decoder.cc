#include "runtime/frame_decoder.h"

#include <cstring>

#include "common/check.h"
#include "net/wire.h"

namespace dswm::runtime {

namespace {

uint32_t ReadU32At(const std::vector<uint8_t>& b, size_t off) {
  return static_cast<uint32_t>(b[off]) |
         static_cast<uint32_t>(b[off + 1]) << 8 |
         static_cast<uint32_t>(b[off + 2]) << 16 |
         static_cast<uint32_t>(b[off + 3]) << 24;
}

}  // namespace

size_t FrameDecoder::PendingFrameBytes() const {
  if (buffer_.size() < net::kFrameHeaderBytes) return 0;
  // Header layout (wire.h): payload_words u32 at offset 4, aux_count u32
  // at offset 8, both little-endian.
  const uint64_t words = ReadU32At(buffer_, 4);
  const uint64_t aux = ReadU32At(buffer_, 8);
  return static_cast<size_t>(net::kFrameHeaderBytes + 8 * words + 4 * aux);
}

Status FrameDecoder::Feed(const uint8_t* data, size_t len) {
  if (poisoned_) {
    return Status::IoError("frame decoder: stream already desynchronized");
  }
  if (len > 0) {
    DSWM_CHECK(data != nullptr);
    buffer_.insert(buffer_.end(), data, data + len);
  }
  const size_t pending = PendingFrameBytes();
  if (pending > kMaxFrameBytes) {
    poisoned_ = true;
    return Status::IoError("frame decoder: declared frame exceeds 16 MiB");
  }
  return Status::OK();
}

bool FrameDecoder::HasFrame() const {
  const size_t pending = PendingFrameBytes();
  return pending > 0 && buffer_.size() >= pending;
}

std::vector<uint8_t> FrameDecoder::NextFrame() {
  DSWM_CHECK(HasFrame());
  const size_t pending = PendingFrameBytes();
  std::vector<uint8_t> frame(buffer_.begin(),
                             buffer_.begin() + static_cast<long>(pending));
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(pending));
  return frame;
}

}  // namespace dswm::runtime
