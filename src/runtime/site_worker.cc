#include "runtime/site_worker.h"

#include <errno.h>
#include <poll.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "net/wire.h"
#include "runtime/frame_decoder.h"

namespace dswm::runtime {

namespace {

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

void PutU64(uint8_t* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t GetU64(const uint8_t* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         static_cast<uint64_t>(GetU32(p + 4)) << 32;
}

}  // namespace

void WorkerEnvelope::EncodeTo(uint8_t out[kEncodedBytes]) const {
  PutU32(out, magic);
  out[4] = type;
  out[5] = dir;
  out[6] = code;
  out[7] = flags;
  PutU32(out + 8, static_cast<uint32_t>(site));
  PutU64(out + 12, static_cast<uint64_t>(sent_at));
  PutU64(out + 20, sequence);
  PutU32(out + 28, frame_len);
}

StatusOr<WorkerEnvelope> WorkerEnvelope::Decode(
    const uint8_t in[kEncodedBytes]) {
  WorkerEnvelope e;
  e.magic = GetU32(in);
  if (e.magic != kMagic) {
    return Status::IoError("worker envelope: bad magic");
  }
  e.type = in[4];
  if (e.type != kFrame && e.type != kReceipt && e.type != kShutdown) {
    return Status::IoError("worker envelope: unknown type " +
                           std::to_string(static_cast<int>(e.type)));
  }
  e.dir = in[5];
  if (e.dir > 2) {
    return Status::IoError("worker envelope: bad direction");
  }
  e.code = in[6];
  e.flags = in[7];
  e.site = static_cast<int32_t>(GetU32(in + 8));
  e.sent_at = static_cast<int64_t>(GetU64(in + 12));
  e.sequence = GetU64(in + 20);
  e.frame_len = GetU32(in + 28);
  return e;
}

Status ReadFull(int fd, uint8_t* buf, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = read(fd, buf + done, len - done);
    if (n == 0) return Status::IoError("worker socket: EOF mid-message");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("worker socket read: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteFull(int fd, const uint8_t* buf, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = write(fd, buf + done, len - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("worker socket write: ") +
                             std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

bool PollReadable(int fd, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = POLLIN;
  pfd.revents = 0;
  for (;;) {
    const int r = poll(&pfd, 1, timeout_ms);
    if (r < 0 && errno == EINTR) continue;
    return r > 0;
  }
}

int SiteWorkerMain(int fd, int site) {
  // Per-direction sequence cursors: the wire sequence is per sender
  // channel, and up/down/broadcast streams come from distinct logical
  // senders, so each direction advances independently.
  uint64_t last_seq[3] = {0, 0, 0};
  std::vector<uint8_t> frame;
  uint8_t env_buf[WorkerEnvelope::kEncodedBytes];
  for (;;) {
    if (!ReadFull(fd, env_buf, sizeof(env_buf)).ok()) return 2;
    StatusOr<WorkerEnvelope> env = WorkerEnvelope::Decode(env_buf);
    if (!env.ok()) return 3;
    if (env.value().type == WorkerEnvelope::kShutdown) return 0;
    if (env.value().type != WorkerEnvelope::kFrame) return 3;
    if (env.value().frame_len == 0 ||
        env.value().frame_len > FrameDecoder::kMaxFrameBytes) {
      return 3;
    }
    frame.resize(env.value().frame_len);
    if (!ReadFull(fd, frame.data(), frame.size()).ok()) return 2;

    WorkerEnvelope receipt = env.value();
    receipt.type = WorkerEnvelope::kReceipt;
    receipt.site = site;
    receipt.code = WorkerEnvelope::kOk;

    // Independent validation: re-parse what actually arrived.
    StatusOr<net::ParsedFrame> parsed =
        net::ParseFrame(frame.data(), frame.size());
    const bool dropped = (env.value().flags & WorkerEnvelope::kFlagDrop) != 0;
    const bool retransmit =
        (env.value().flags & WorkerEnvelope::kFlagRetransmit) != 0;
    if (!parsed.ok()) {
      receipt.code = WorkerEnvelope::kParseError;
    } else {
      const size_t d = env.value().dir;  // validated by Decode: <= 2
      if (!retransmit && parsed.value().sequence <= last_seq[d]) {
        receipt.code = WorkerEnvelope::kDuplicate;
      } else if (dropped) {
        // Validated but lost in flight: the cursor stays put for this
        // sequence, and the eventual retransmission arrives flagged.
        receipt.code = WorkerEnvelope::kDropped;
      } else if (parsed.value().sequence > last_seq[d]) {
        last_seq[d] = parsed.value().sequence;
      }
    }

    receipt.frame_len = static_cast<uint32_t>(frame.size());
    receipt.EncodeTo(env_buf);
    if (!WriteFull(fd, env_buf, sizeof(env_buf)).ok()) return 2;
    if (!WriteFull(fd, frame.data(), frame.size()).ok()) return 2;
  }
}

}  // namespace dswm::runtime
