#include "runtime/scheduler.h"

#include <algorithm>

#include "common/check.h"
#include "net/channel.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace dswm::runtime {

EventScheduler::EventScheduler(DistributedTracker* tracker,
                               ReplayHarness* replay, const Options& options)
    : tracker_(tracker),
      replay_(replay),
      options_(options),
      queue_(std::max(1, [replay] {
        int max_site = 0;
        for (int i = 0; i < replay->rows(); ++i) {
          max_site = std::max(max_site, replay->site_of(i));
        }
        return max_site + 1;
      }())),
      next_seq_(static_cast<uint64_t>(replay->rows())) {
  DSWM_CHECK(tracker_ != nullptr);
  // Row-arrival events, one per planned row, on the owning site's queue.
  // seq = stream index: the seeded global tie-break.
  for (int i = 0; i < replay_->rows(); ++i) {
    Event e;
    e.time = replay_->time_of(i);
    e.kind = Event::Kind::kRow;
    e.seq = static_cast<uint64_t>(i);
    e.queue = 1 + replay_->site_of(i);
    e.row_index = i;
    queue_.Push(e);
  }
}

Status EventScheduler::Run() {
  obs::Span run_span("runtime.events.run");
  while (!queue_.empty()) {
    Event e = queue_.PopMin();
    ++events_processed_;
    if (e.kind == Event::Kind::kRow) {
      DSWM_RETURN_NOT_OK(replay_->Step(e.row_index));
    } else {
      ++wakeups_fired_;
      DSWM_OBS_COUNT("runtime.events.wakeup", 1);
      scheduled_wakeup_.reset();
      tracker_->PumpChannels(e.time);
    }
    if (options_.wall_clock) MaybeScheduleWakeup();
  }
  return Status::OK();
}

void EventScheduler::MaybeScheduleWakeup() {
  // Earliest transport due time across every channel the tracker owns.
  std::optional<Timestamp> due;
  for (net::Channel* c : tracker_->Channels()) {
    net::FaultyChannel* faulty = c->AsFaulty();
    if (faulty == nullptr) continue;
    const std::optional<Timestamp> d = faulty->NextDueTime();
    if (d && (!due || *d < *due)) due = d;
  }
  if (!due) return;
  // Sleep-until semantics: fire only if the due instant precedes the next
  // already-queued event (otherwise that event's own tracker call flushes
  // the transport first, as in lockstep).
  if (!queue_.empty()) {
    const Event& next = queue_.PeekMin();
    if (next.time <= *due) return;
  }
  if (scheduled_wakeup_ && *scheduled_wakeup_ <= *due) return;
  Event e;
  e.time = *due;
  e.kind = Event::Kind::kChannelWakeup;
  e.seq = next_seq_++;
  e.queue = 0;
  queue_.Push(e);
  scheduled_wakeup_ = *due;
}

}  // namespace dswm::runtime
