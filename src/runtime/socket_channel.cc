#include "runtime/socket_channel.h"

#include <string>

#include "common/check.h"
#include "obs/metrics.h"
#include "runtime/frame_decoder.h"
#include "runtime/site_worker.h"

namespace dswm::runtime {

ProcessChannel::ProcessChannel(const net::NetProfile& profile, int num_sites)
    : net::Channel(num_sites), profile_(profile), rng_(profile.seed) {
  if (profile.duplicate > 0.0 || profile.delay_max > 0) {
    // No faithful synchronous-RPC analog: a duplicated or delayed frame
    // would have to arrive outside the Send that produced it, which the
    // round-trip design (deliberately) forbids.
    health_ = Status::InvalidArgument(
        "process backend supports drop/reliable faults only "
        "(duplicate and delay require an asynchronous transport)");
    return;
  }
  LatchHealth(supervisor_.Start(num_sites));
}

ProcessChannel::~ProcessChannel() { Close(); }

void ProcessChannel::Close() {
  if (closed()) return;
  net::Channel::Close();
  if (supervisor_.started()) LatchHealth(supervisor_.Shutdown());
}

void ProcessChannel::LatchHealth(Status s) {
  if (health_.ok() && !s.ok()) health_ = std::move(s);
}

void ProcessChannel::Dispatch(net::Delivery delivery, const FrameInfo& frame,
                              const std::vector<uint8_t>& bytes) {
  if (!health_.ok()) return;  // transport already failed; run is invalid
  Attempt(std::move(delivery), frame, bytes, /*retransmit=*/false);
}

void ProcessChannel::Attempt(net::Delivery delivery, const FrameInfo& frame,
                             const std::vector<uint8_t>& bytes,
                             bool retransmit) {
  // Same die, same order as FaultyChannel::Attempt (duplicate/delay are
  // knob-gated off by construction, so no extra draws happen there
  // either): seeded ledgers line up bit for bit across backends.
  const bool data_plane = net::IsDataPlaneKind(frame.kind);
  const bool dropped =
      data_plane && profile_.drop > 0.0 && rng_.NextDouble() < profile_.drop;

  // The frame crosses the wire either way; a drop is announced in the
  // envelope so the worker validates without delivering.
  std::vector<uint8_t> echo;
  if (delivery.dir == net::Direction::kBroadcast) {
    // Control plane by construction (every broadcast kind is control, so
    // `dropped` is false here): write to all workers, then collect
    // receipts in site order -- deterministic fan-out.
    for (int site = 0; site < supervisor_.num_workers(); ++site) {
      Status s = RoundTrip(site, delivery, bytes, /*drop=*/false,
                           /*retransmit=*/false, &echo);
      if (!s.ok()) {
        LatchHealth(std::move(s));
        return;
      }
    }
  } else {
    Status s =
        RoundTrip(delivery.site, delivery, bytes, dropped, retransmit, &echo);
    if (!s.ok()) {
      LatchHealth(std::move(s));
      return;
    }
  }

  if (dropped) {
    ++drops_injected_;
    DSWM_OBS_COUNT("runtime.process.drops", 1);
    Record(delivery, frame, /*dropped=*/true, retransmit, false);
    if (profile_.reliable) {
      // Sender-side timeout and resend, same bytes -- the retransmission
      // carries the original wire sequence, which is why the worker's
      // cursor must not advance on drops.
      Pending p;
      p.delivery = std::move(delivery);
      p.frame = frame;
      p.bytes = bytes;
      retry_queue_.emplace(std::make_pair(now_ + profile_.retry,
                                          retry_counter_++),
                           std::move(p));
    }
    return;
  }

  Record(delivery, frame, /*dropped=*/false, retransmit, false);
  if (profile_.reliable) {
    // Ack accounting identical to FaultyChannel: one word back the other
    // way, transport-level only.
    net::Delivery ack;
    ack.dir = delivery.dir == net::Direction::kUp ? net::Direction::kDown
                                                  : net::Direction::kUp;
    ack.site = delivery.site;
    ack.sent_at = now_;
    FrameInfo ack_frame;
    ack_frame.kind = net::MessageKind::kAck;
    ack_frame.payload_words = 1;
    ack_frame.frame_bytes = static_cast<uint32_t>(net::kFrameHeaderBytes + 8);
    Record(ack, ack_frame, false, false, false);
  }

  // Deliver what came back over the socket, not what went out.
  StatusOr<net::ParsedFrame> parsed = net::ParseFrame(echo.data(), echo.size());
  if (!parsed.ok()) {
    LatchHealth(Status::IoError("process backend: echoed frame unparseable: " +
                                parsed.status().message()));
    return;
  }
  delivery.msg = std::move(parsed).value().msg;
  Handle(std::move(delivery));
}

Status ProcessChannel::RoundTrip(int worker_site,
                                 const net::Delivery& delivery,
                                 const std::vector<uint8_t>& bytes, bool drop,
                                 bool retransmit, std::vector<uint8_t>* echo) {
  if (worker_site < 0 || worker_site >= supervisor_.num_workers()) {
    return Status::InvalidArgument("process backend: no worker for site " +
                                   std::to_string(worker_site));
  }
  const int fd = supervisor_.fd(worker_site);

  WorkerEnvelope env;
  env.type = WorkerEnvelope::kFrame;
  env.dir = static_cast<uint8_t>(delivery.dir);
  env.flags = static_cast<uint8_t>((drop ? WorkerEnvelope::kFlagDrop : 0) |
                                   (retransmit ? WorkerEnvelope::kFlagRetransmit
                                               : 0));
  env.site = worker_site;
  env.sent_at = delivery.sent_at;
  env.sequence = delivery.sequence;
  env.frame_len = static_cast<uint32_t>(bytes.size());
  uint8_t env_buf[WorkerEnvelope::kEncodedBytes];
  env.EncodeTo(env_buf);
  DSWM_RETURN_NOT_OK(WriteFull(fd, env_buf, sizeof(env_buf)));
  DSWM_RETURN_NOT_OK(WriteFull(fd, bytes.data(), bytes.size()));

  DSWM_RETURN_NOT_OK(ReadFull(fd, env_buf, sizeof(env_buf)));
  StatusOr<WorkerEnvelope> receipt = WorkerEnvelope::Decode(env_buf);
  DSWM_RETURN_NOT_OK(receipt.status());
  if (receipt.value().type != WorkerEnvelope::kReceipt) {
    return Status::IoError("process backend: expected receipt envelope");
  }
  if (receipt.value().frame_len != bytes.size()) {
    return Status::IoError("process backend: echo length mismatch");
  }

  // The echo may arrive in pieces on a stream socket; re-frame it with
  // the incremental decoder (which cross-checks the frame's own declared
  // length against what the envelope promised).
  echo->resize(receipt.value().frame_len);
  DSWM_RETURN_NOT_OK(ReadFull(fd, echo->data(), echo->size()));
  FrameDecoder decoder;
  DSWM_RETURN_NOT_OK(decoder.Feed(echo->data(), echo->size()));
  if (!decoder.HasFrame()) {
    return Status::IoError("process backend: echo is not one whole frame");
  }
  *echo = decoder.NextFrame();
  if (decoder.buffered_bytes() != 0) {
    return Status::IoError("process backend: trailing bytes after echo");
  }
  if (*echo != bytes) {
    return Status::IoError("process backend: worker echoed different bytes");
  }

  const uint8_t expected =
      drop ? WorkerEnvelope::kDropped : WorkerEnvelope::kOk;
  if (receipt.value().code != expected) {
    return Status::IoError(
        "process backend: worker verdict " +
        std::to_string(static_cast<int>(receipt.value().code)) +
        " (expected " + std::to_string(static_cast<int>(expected)) + ")");
  }

  ++round_trips_;
  DSWM_OBS_COUNT("runtime.process.round_trips", 1);
  return Status::OK();
}

void ProcessChannel::AdvanceTime(Timestamp t) {
  net::Channel::AdvanceTime(t);
  // Flush due retransmissions in (due, enqueue-order), like
  // FaultyChannel::AdvanceTime. An attempt may re-enqueue (repeated
  // loss); the map keeps iteration deterministic regardless.
  while (!retry_queue_.empty() && retry_queue_.begin()->first.first <= now_) {
    Pending p = std::move(retry_queue_.begin()->second);
    retry_queue_.erase(retry_queue_.begin());
    if (closed()) {
      DSWM_OBS_COUNT("net.drop_after_close", 1);
      continue;
    }
    ++retransmits_;
    DSWM_OBS_COUNT("runtime.process.retransmits", 1);
    Attempt(std::move(p.delivery), p.frame, p.bytes, /*retransmit=*/true);
  }
}

}  // namespace dswm::runtime
