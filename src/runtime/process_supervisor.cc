#include "runtime/process_supervisor.h"

#include <errno.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"
#include "runtime/site_worker.h"

namespace dswm::runtime {

ProcessSupervisor::~ProcessSupervisor() {
  // Destructor path: best effort; callers that care about worker exit
  // codes call Shutdown() themselves first.
  (void)Shutdown();  // dswm-semlint: allow(discarded-status)
}

Status ProcessSupervisor::Start(int num_sites) {
  DSWM_CHECK(!started_);
  DSWM_CHECK_GE(num_sites, 1);
  started_ = true;
  workers_.reserve(static_cast<size_t>(num_sites));
  for (int site = 0; site < num_sites; ++site) {
    int fds[2];
    if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
      const std::string err = std::strerror(errno);
      // Partial fleet: tear down what started; the real error follows.
      (void)Shutdown();  // dswm-semlint: allow(discarded-status)
      return Status::IoError("socketpair for site " + std::to_string(site) +
                             ": " + err);
    }
    const pid_t pid = fork();
    if (pid < 0) {
      const std::string err = std::strerror(errno);
      close(fds[0]);
      close(fds[1]);
      // Partial fleet: tear down what started; the real error follows.
      (void)Shutdown();  // dswm-semlint: allow(discarded-status)
      return Status::IoError("fork for site " + std::to_string(site) + ": " +
                             err);
    }
    if (pid == 0) {
      // Child: keep only our end. Close the parent end of this pair and
      // the parent ends of every earlier pair we inherited, so a worker
      // crash cannot hold a sibling's socket open.
      close(fds[0]);
      for (const Worker& w : workers_) close(w.fd);
      _exit(SiteWorkerMain(fds[1], site));
    }
    close(fds[1]);
    Worker w;
    w.pid = pid;
    w.fd = fds[0];
    workers_.push_back(w);
    DSWM_OBS_COUNT("runtime.process.workers_started", 1);
  }
  return Status::OK();
}

int ProcessSupervisor::fd(int site) const {
  DSWM_CHECK(site >= 0 && site < static_cast<int>(workers_.size()));
  return workers_[static_cast<size_t>(site)].fd;
}

Status ProcessSupervisor::Shutdown() {
  Status result = Status::OK();
  for (Worker& w : workers_) {
    if (w.fd >= 0) {
      WorkerEnvelope bye;
      bye.type = WorkerEnvelope::kShutdown;
      bye.frame_len = 0;
      uint8_t buf[WorkerEnvelope::kEncodedBytes];
      bye.EncodeTo(buf);
      // Best effort: a dead worker means the write fails and waitpid
      // below still reaps it.
      (void)WriteFull(w.fd, buf, sizeof(buf));  // dswm-semlint: allow(discarded-status)
      close(w.fd);
      w.fd = -1;
    }
    if (w.pid > 0) {
      int wstatus = 0;
      pid_t reaped;
      do {
        reaped = waitpid(w.pid, &wstatus, 0);
      } while (reaped < 0 && errno == EINTR);
      if (reaped == w.pid && result.ok() &&
          !(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)) {
        result = Status::IoError(
            "site worker pid " + std::to_string(static_cast<long>(w.pid)) +
            " exited abnormally (wstatus=" + std::to_string(wstatus) + ")");
      }
      w.pid = -1;
    }
  }
  return result;
}

}  // namespace dswm::runtime
