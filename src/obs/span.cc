#include "obs/span.h"

#include <chrono>
#include <string>

#include "obs/metrics.h"

namespace dswm {
namespace obs {

namespace {

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// The per-thread phase path. A span appends ".<phase>" (or "<phase>" at the
// root) on open and truncates back on close, so the string is maintained
// incrementally -- no joins on the hot path.
std::string& ThreadPath() {
  thread_local std::string path;
  return path;
}

}  // namespace

Span::Span(const char* phase, double* external_seconds)
    : external_seconds_(external_seconds) {
  const bool enabled = Enabled();
  if (enabled) {
    std::string& path = ThreadPath();
    restore_len_ = static_cast<int>(path.size());
    if (!path.empty()) path.push_back('.');
    path += phase;
  }
  timing_ = enabled || external_seconds_ != nullptr;
  if (timing_) start_ns_ = NowNs();
}

Span::~Span() {
  if (!timing_) return;
  const int64_t elapsed_ns = NowNs() - start_ns_;
  if (external_seconds_ != nullptr) {
    *external_seconds_ += static_cast<double>(elapsed_ns) * 1e-9;
  }
  if (restore_len_ < 0) return;
  std::string& path = ThreadPath();
  {
    // Look the two metrics up by full path; spans are not hot enough (one
    // per driver phase, not per element) for the map lookup to matter.
    const std::string base = "span." + path;
    Registry().GetCounter(base + ".count")->Add(1);
    Registry().GetCounter(base + ".wall_ns")->Add(elapsed_ns);
  }
  path.resize(static_cast<size_t>(restore_len_));
}

const char* Span::CurrentPath() { return ThreadPath().c_str(); }

}  // namespace obs
}  // namespace dswm
