// Deterministic, near-zero-overhead-when-disabled observability metrics.
//
// One process-global MetricRegistry holds named counters, gauges, and
// fixed-bucket histograms. Instrumented code pays a single relaxed atomic
// load (the global enabled flag) when metrics are off; when on, updates are
// relaxed atomic adds, which are commutative, so every *count*-valued
// metric is identical at any thread count (the PR 2 determinism contract).
// The only nondeterministic metrics are wall-clock times, which by
// convention live under names ending in ".wall_ns"; determinism tests and
// snapshot comparisons exclude exactly that suffix.
//
// Metric handles returned by the registry are stable for the process
// lifetime: ResetForTest() zeroes values but never invalidates pointers,
// so the DSWM_OBS_* macros can cache them in function-local statics.

#ifndef DSWM_OBS_METRICS_H_
#define DSWM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"

namespace dswm {
namespace obs {

/// True when metric collection is on. Single relaxed atomic load.
[[nodiscard]] bool Enabled();

/// Turns collection on or off. Toggle only between runs, never while
/// instrumented code is executing on another thread.
void SetEnabled(bool enabled);

/// A monotonically increasing counter. Add() is a relaxed atomic add and
/// does NOT check Enabled() -- gate at the call site (the DSWM_OBS_COUNT
/// macro does).
class Counter {
 public:
  void Add(long delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] long value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// A last-write-wins instantaneous value (e.g. end-of-run comm totals).
class Gauge {
 public:
  void Set(long v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] long value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<long> value_{0};
};

/// A histogram over fixed, strictly increasing upper bucket edges chosen at
/// registration. A sample v lands in the first bucket with v <= edge; values
/// above the last edge land in the implicit overflow bucket, so counts has
/// edges.size() + 1 entries. Observe() is a few relaxed atomic adds; like
/// Counter, it does not check Enabled().
class Histogram {
 public:
  explicit Histogram(std::vector<long> edges);

  void Observe(long value);
  [[nodiscard]] const std::vector<long>& edges() const { return edges_; }
  [[nodiscard]] std::vector<long> counts() const;
  [[nodiscard]] long total_count() const {
    return total_count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] long sum() const { return sum_.load(std::memory_order_relaxed); }
  void ResetForTest();

 private:
  std::vector<long> edges_;
  std::vector<std::atomic<long>> counts_;  // edges_.size() + 1 (overflow)
  std::atomic<long> total_count_{0};
  std::atomic<long> sum_{0};
};

/// Point-in-time copy of a histogram's state.
struct HistogramSnapshot {
  std::vector<long> edges;
  std::vector<long> counts;
  long total_count = 0;
  long sum = 0;

  [[nodiscard]] bool operator==(const HistogramSnapshot& o) const {
    return edges == o.edges && counts == o.counts &&
           total_count == o.total_count && sum == o.sum;
  }
};

/// A point-in-time copy of every metric, keyed by name in sorted (stable)
/// order. Snapshots are plain values: merge-able, diff-able, serializable.
struct MetricsSnapshot {
  std::map<std::string, long> counters;
  std::map<std::string, long> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// Folds `other` in: counters and histogram buckets add; gauges take the
  /// incoming value (last write wins, matching Gauge semantics).
  void Merge(const MetricsSnapshot& other);

  /// Returns this snapshot minus `base`: counters and histogram buckets
  /// subtract (metrics absent from `base` are kept whole); gauges keep
  /// their current value. Counters whose delta is 0 and histograms with no
  /// new samples are dropped -- the delta describes what moved during the
  /// interval, independent of what earlier activity registered. Use to
  /// scope the process-cumulative registry to one run.
  [[nodiscard]] MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;

  /// Drops every metric whose name ends in ".wall_ns" (the nondeterministic
  /// wall-clock convention), leaving only deterministic metrics.
  [[nodiscard]] MetricsSnapshot WithoutWallTimes() const;

  /// One JSON document: {"counters":{...},"gauges":{...},
  /// "histograms":{name:{"edges":[...],"counts":[...],"sum":n,"count":n}}}.
  /// Keys are emitted in sorted order, so equal snapshots serialize
  /// byte-identically.
  [[nodiscard]] std::string ToJson() const;
};

/// Registry of named metrics. Get*() registers on first use and returns a
/// pointer that stays valid for the process lifetime. Registration takes a
/// mutex; updates through the returned handles are lock-free (the metric
/// objects are heap-allocated and never destroyed while the registry
/// lives, so escaping the raw pointer from under mu_ is safe by design).
class MetricRegistry {
 public:
  [[nodiscard]] Counter* GetCounter(const std::string& name)
      DSWM_EXCLUDES(mu_);
  [[nodiscard]] Gauge* GetGauge(const std::string& name) DSWM_EXCLUDES(mu_);
  /// Registers (or fetches) a histogram. `edges` must be strictly
  /// increasing and non-empty; a second registration under the same name
  /// must pass identical edges (DCHECK'd) and returns the existing one.
  [[nodiscard]] Histogram* GetHistogram(const std::string& name,
                                        const std::vector<long>& edges)
      DSWM_EXCLUDES(mu_);

  [[nodiscard]] MetricsSnapshot Snapshot() const DSWM_EXCLUDES(mu_);

  /// Zeroes every metric value. Handles stay valid. Test-only: never call
  /// while instrumented code runs on another thread.
  void ResetForTest() DSWM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      DSWM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ DSWM_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      DSWM_GUARDED_BY(mu_);
};

/// The process-global registry every instrumentation site reports into.
[[nodiscard]] MetricRegistry& Registry();

}  // namespace obs
}  // namespace dswm

/// Bumps counter `name` by `delta` when metrics are enabled; a single
/// relaxed load + untaken branch when disabled. The handle lookup happens
/// once per site (function-local static), so the enabled path is one atomic
/// add. `name` must be a constant expression for the site's lifetime.
#define DSWM_OBS_COUNT(name, delta)                                         \
  do {                                                                      \
    if (::dswm::obs::Enabled()) {                                           \
      static ::dswm::obs::Counter* dswm_obs_counter =                       \
          ::dswm::obs::Registry().GetCounter(name);                         \
      dswm_obs_counter->Add(delta);                                         \
    }                                                                       \
  } while (0)

/// Records `value` into histogram `name` (edges fixed at first use).
#define DSWM_OBS_HISTOGRAM(name, edges, value)                              \
  do {                                                                      \
    if (::dswm::obs::Enabled()) {                                           \
      static ::dswm::obs::Histogram* dswm_obs_histogram =                   \
          ::dswm::obs::Registry().GetHistogram(name, edges);                \
      dswm_obs_histogram->Observe(value);                                   \
    }                                                                       \
  } while (0)

#endif  // DSWM_OBS_METRICS_H_
