// RAII scoped timers with nested phase attribution.
//
// A Span names the phase the current thread is in; nesting builds a
// dot-joined path ("driver.observe" inside Span("driver") + Span("observe")
// becomes "driver.observe"). On destruction the span records two metrics
// into the global registry:
//
//   span.<path>.count      deterministic (one per span, any thread count)
//   span.<path>.wall_ns    wall-clock, nondeterministic by convention
//
// The phase stack is thread_local, so ThreadPool workers attribute their
// own spans independently; all recording folds into the shared registry via
// commutative atomic adds, which keeps the deterministic metrics identical
// between threaded and single-threaded runs.
//
// When metrics are disabled a Span costs one relaxed atomic load -- unless
// constructed with an external accumulator, in which case it always
// measures (callers like the driver need tracker wall time regardless of
// metrics) but still skips the registry.

#ifndef DSWM_OBS_SPAN_H_
#define DSWM_OBS_SPAN_H_

#include <cstdint>

namespace dswm {
namespace obs {

class Span {
 public:
  /// Opens phase `phase` (a string literal or otherwise outliving the
  /// span). No-op when metrics are disabled.
  explicit Span(const char* phase) : Span(phase, nullptr) {}

  /// Like above, but additionally accumulates elapsed seconds into
  /// `*external_seconds` on destruction -- always, even with metrics
  /// disabled. Pass nullptr for registry-only recording.
  Span(const char* phase, double* external_seconds);

  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// The current thread's dot-joined phase path ("" outside any span).
  /// Exposed for tests.
  [[nodiscard]] static const char* CurrentPath();

 private:
  double* external_seconds_;
  int64_t start_ns_ = 0;
  // Length to truncate the thread-local path back to on close; -1 when the
  // span did not push a phase (metrics were disabled at construction).
  int restore_len_ = -1;
  bool timing_ = false;
};

}  // namespace obs
}  // namespace dswm

#endif  // DSWM_OBS_SPAN_H_
