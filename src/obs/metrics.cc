#include "obs/metrics.h"

#include <algorithm>

#include "common/check.h"

namespace dswm {
namespace obs {

namespace {

std::atomic<bool> g_enabled{false};

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      default: out->push_back(c);
    }
  }
  out->push_back('"');
}

bool EndsWithWallNs(const std::string& name) {
  static constexpr char kSuffix[] = ".wall_ns";
  static constexpr size_t kLen = sizeof(kSuffix) - 1;
  return name.size() >= kLen &&
         name.compare(name.size() - kLen, kLen, kSuffix) == 0;
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<long> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1) {
  DSWM_CHECK(!edges_.empty());
  for (size_t i = 1; i < edges_.size(); ++i) {
    DSWM_CHECK_LT(edges_[i - 1], edges_[i]);
  }
}

void Histogram::Observe(long value) {
  const size_t idx = static_cast<size_t>(
      std::lower_bound(edges_.begin(), edges_.end(), value) - edges_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  total_count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<long> Histogram::counts() const {
  std::vector<long> out(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::ResetForTest() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

void MetricsSnapshot::Merge(const MetricsSnapshot& other) {
  for (const auto& [name, v] : other.counters) counters[name] += v;
  for (const auto& [name, v] : other.gauges) gauges[name] = v;
  for (const auto& [name, h] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = h;
      continue;
    }
    DSWM_CHECK(it->second.edges == h.edges);
    for (size_t i = 0; i < h.counts.size(); ++i) {
      it->second.counts[i] += h.counts[i];
    }
    it->second.total_count += h.total_count;
    it->second.sum += h.sum;
  }
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& base) const {
  MetricsSnapshot out = *this;
  for (const auto& [name, v] : base.counters) {
    auto it = out.counters.find(name);
    if (it != out.counters.end()) it->second -= v;
  }
  for (const auto& [name, h] : base.histograms) {
    auto it = out.histograms.find(name);
    if (it == out.histograms.end()) continue;
    DSWM_CHECK(it->second.edges == h.edges);
    for (size_t i = 0; i < h.counts.size(); ++i) {
      it->second.counts[i] -= h.counts[i];
    }
    it->second.total_count -= h.total_count;
    it->second.sum -= h.sum;
  }
  // A run-scoped delta describes what happened *during* the run; metrics
  // that merely exist in the cumulative registry but did not move are
  // noise, and keeping them would make two identical runs' snapshots
  // differ on which zero-entries they inherited from earlier activity.
  for (auto it = out.counters.begin(); it != out.counters.end();) {
    it = it->second == 0 ? out.counters.erase(it) : std::next(it);
  }
  for (auto it = out.histograms.begin(); it != out.histograms.end();) {
    it = it->second.total_count == 0 ? out.histograms.erase(it)
                                     : std::next(it);
  }
  return out;
}

MetricsSnapshot MetricsSnapshot::WithoutWallTimes() const {
  MetricsSnapshot out;
  for (const auto& [name, v] : counters) {
    if (!EndsWithWallNs(name)) out.counters[name] = v;
  }
  for (const auto& [name, v] : gauges) {
    if (!EndsWithWallNs(name)) out.gauges[name] = v;
  }
  for (const auto& [name, h] : histograms) {
    if (!EndsWithWallNs(name)) out.histograms[name] = h;
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(name, &out);
    out += ":{\"edges\":[";
    for (size_t i = 0; i < h.edges.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(h.edges[i]);
    }
    out += "],\"counts\":[";
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out.push_back(',');
      out += std::to_string(h.counts[i]);
    }
    out += "],\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"count\":";
    out += std::to_string(h.total_count);
    out.push_back('}');
  }
  out += "}}";
  return out;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::vector<long>& edges) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>(edges);
  } else {
    DSWM_DCHECK(slot->edges() == edges);
  }
  return slot.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  MutexLock lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, c] : counters_) out.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) out.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.edges = h->edges();
    hs.counts = h->counts();
    hs.total_count = h->total_count();
    hs.sum = h->sum();
    out.histograms[name] = std::move(hs);
  }
  return out;
}

void MetricRegistry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->ResetForTest();
  for (auto& [name, g] : gauges_) g->ResetForTest();
  for (auto& [name, h] : histograms_) h->ResetForTest();
}

MetricRegistry& Registry() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace dswm
