// The stream item: a timestamped d-dimensional row.

#ifndef DSWM_STREAM_TIMED_ROW_H_
#define DSWM_STREAM_TIMED_ROW_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"

namespace dswm {

/// Timestamps are integer ticks; the window (t_now - W, t_now] is measured
/// in the same ticks. Poisson arrival processes are discretized to ticks.
using Timestamp = int64_t;

/// One stream record (a_i, t_i).
struct TimedRow {
  /// Dense row values, length d.
  std::vector<double> values;
  /// Arrival time t_i.
  Timestamp timestamp = 0;
  /// Indices of nonzero coordinates; empty means "treat as dense". Sparse
  /// workloads (tf-idf style) populate this so covariance updates cost
  /// O(nnz^2) instead of O(d^2).
  std::vector<int> support;

  /// Squared L2 norm ||a_i||^2, the sampling weight w_i.
  double NormSquared() const {
    if (!support.empty()) {
      double s = 0.0;
      for (int j : support) s += values[j] * values[j];
      return s;
    }
    return dswm::NormSquared(values.data(), static_cast<int>(values.size()));
  }
};

}  // namespace dswm

#endif  // DSWM_STREAM_TIMED_ROW_H_
