// Stream abstractions and helpers shared by all workload generators.

#ifndef DSWM_STREAM_ROW_STREAM_H_
#define DSWM_STREAM_ROW_STREAM_H_

#include <optional>
#include <vector>

#include "stream/timed_row.h"

namespace dswm {

/// A finite source of timestamped rows (non-decreasing timestamps).
class RowStream {
 public:
  virtual ~RowStream() = default;

  /// Next row, or nullopt at end of stream.
  virtual std::optional<TimedRow> Next() = 0;

  /// Row dimension d.
  virtual int dim() const = 0;
};

/// Materializes up to `max_rows` rows (the benches generate a dataset once
/// and reuse it across every algorithm and parameter setting).
std::vector<TimedRow> Materialize(RowStream* stream, int max_rows);

/// Summary statistics of a materialized dataset (the paper's Table III).
struct DatasetSummary {
  int rows = 0;
  int dim = 0;
  Timestamp span = 0;            // last - first timestamp
  double norm_ratio = 0.0;       // R: max/min squared row norm (zero rows
                                 // excluded)
  double avg_rows_per_window = 0.0;
};

/// Computes Table III statistics for a window of length `window`.
DatasetSummary Summarize(const std::vector<TimedRow>& rows, Timestamp window);

}  // namespace dswm

#endif  // DSWM_STREAM_ROW_STREAM_H_
