#include "stream/wiki_like.h"

#include <algorithm>
#include <cmath>

namespace dswm {

WikiLikeGenerator::WikiLikeGenerator(const WikiLikeConfig& config)
    : config_(config), rng_(config.seed) {
  DSWM_CHECK_GT(config.rows, 0);
  DSWM_CHECK_GT(config.dim, 1);
  DSWM_CHECK_GE(config.min_doc_len, 1);
  DSWM_CHECK_GE(config.max_doc_len, config.min_doc_len);

  // Zipfian popularity p_j ~ 1/(j+1)^s and idf_j = log(total/p_j-ish).
  zipf_cdf_.resize(config.dim);
  idf_.resize(config.dim);
  double total = 0.0;
  for (int j = 0; j < config.dim; ++j) {
    total += 1.0 / std::pow(j + 1.0, config.zipf_s);
    zipf_cdf_[j] = total;
  }
  for (int j = 0; j < config.dim; ++j) {
    zipf_cdf_[j] /= total;
    const double p = (1.0 / std::pow(j + 1.0, config.zipf_s)) / total;
    idf_[j] = std::log(1.0 / p);
  }
}

int WikiLikeGenerator::SampleWord() {
  const double u = rng_.NextDouble();
  return static_cast<int>(
      std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u) -
      zipf_cdf_.begin());
}

int WikiLikeGenerator::SampleDocLen() {
  // Pareto-like: len = min * u^{-1/alpha}, truncated.
  const double u = rng_.NextOpenDouble();
  const double len =
      config_.min_doc_len * std::pow(u, -1.0 / config_.doc_len_alpha);
  return std::min(config_.max_doc_len, static_cast<int>(len));
}

std::optional<TimedRow> WikiLikeGenerator::Next() {
  if (emitted_ >= config_.rows) return std::nullopt;

  TimedRow row;
  row.values.assign(config_.dim, 0.0);
  const int len = SampleDocLen();
  for (int k = 0; k < len; ++k) {
    const int word = SampleWord();
    if (row.values[word] == 0.0) row.support.push_back(word);
    // tf increments geometrically-ish: repeated draws of popular words
    // accumulate naturally.
    row.values[word] += idf_[word];
  }
  std::sort(row.support.begin(), row.support.end());

  clock_ += 1.0 / config_.rows_per_day;
  row.timestamp = static_cast<Timestamp>(std::ceil(clock_));
  ++emitted_;
  return row;
}

}  // namespace dswm
