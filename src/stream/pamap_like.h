// PAMAP-like workload: synthetic stand-in for the PAMAP physical-activity
// monitoring dataset (the real corpus is not redistributable here; see
// DESIGN.md item 2).
//
// Mimics the characteristics the evaluation depends on: d = 43 sensory
// columns, piecewise-stationary activity regimes (18 activities across 9
// subjects, each a Gaussian with activity-specific mean/scale), a slowly
// drifting heart-rate-like column, and a squared-norm ratio R ~ 60
// (paper: 60.78) induced by high- vs low-intensity activities. Poisson(1)
// timestamps; the paper's window holds ~200k rows.

#ifndef DSWM_STREAM_PAMAP_LIKE_H_
#define DSWM_STREAM_PAMAP_LIKE_H_

#include <vector>

#include "common/rng.h"
#include "stream/row_stream.h"

namespace dswm {

/// Configuration of the PAMAP-like generator.
struct PamapLikeConfig {
  int rows = 814729;   // paper's subset size
  int dim = 43;
  int activities = 18;
  double mean_regime_length = 2000.0;  // rows per activity bout
  double lambda = 1.0;                 // Poisson arrival rate
  uint64_t seed = 7;
};

/// Streaming generator for the PAMAP-like dataset.
class PamapLikeGenerator : public RowStream {
 public:
  explicit PamapLikeGenerator(const PamapLikeConfig& config);

  std::optional<TimedRow> Next() override;
  int dim() const override { return config_.dim; }

 private:
  struct Activity {
    std::vector<double> mean;
    std::vector<double> scale;
  };

  void SwitchActivity();

  PamapLikeConfig config_;
  Rng rng_;
  std::vector<Activity> activities_;
  int current_ = 0;
  int remaining_in_regime_ = 0;
  double heart_rate_;  // random-walk column
  int emitted_ = 0;
  double clock_ = 0.0;
};

}  // namespace dswm

#endif  // DSWM_STREAM_PAMAP_LIKE_H_
