#include "stream/csv_loader.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace dswm {

namespace {

Status ParseLine(const std::string& line, char delimiter,
                 std::vector<double>* fields) {
  fields->clear();
  size_t start = 0;
  while (start <= line.size()) {
    size_t end = line.find(delimiter, start);
    if (end == std::string::npos) end = line.size();
    const std::string token = line.substr(start, end - start);
    char* parse_end = nullptr;
    const double value = std::strtod(token.c_str(), &parse_end);
    if (parse_end == token.c_str() ||
        static_cast<size_t>(parse_end - token.c_str()) != token.size()) {
      return Status::InvalidArgument("non-numeric field: '" + token + "'");
    }
    fields->push_back(value);
    if (end == line.size()) break;
    start = end + 1;
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<TimedRow>> ParseCsv(const std::string& content,
                                         const CsvOptions& options) {
  std::vector<TimedRow> rows;
  std::istringstream in(content);
  std::string line;
  std::vector<double> fields;
  int expected_fields = -1;
  int line_no = 0;
  bool skipped_header = false;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (options.skip_header && !skipped_header) {
      skipped_header = true;
      continue;
    }
    DSWM_RETURN_NOT_OK(ParseLine(line, options.delimiter, &fields));
    if (expected_fields < 0) {
      expected_fields = static_cast<int>(fields.size());
      if (options.timestamp_column >= expected_fields) {
        return Status::InvalidArgument("timestamp_column out of range");
      }
    } else if (static_cast<int>(fields.size()) != expected_fields) {
      return Status::InvalidArgument(
          "ragged row at line " + std::to_string(line_no));
    }

    TimedRow row;
    if (options.timestamp_column >= 0) {
      row.timestamp = static_cast<Timestamp>(std::llround(
          fields[options.timestamp_column] * options.timestamp_scale));
      for (int j = 0; j < expected_fields; ++j) {
        if (j != options.timestamp_column) row.values.push_back(fields[j]);
      }
    } else {
      row.timestamp = static_cast<Timestamp>(rows.size() + 1);
      row.values = fields;
    }
    rows.push_back(std::move(row));
  }

  // Trackers require non-decreasing timestamps.
  if (!std::is_sorted(rows.begin(), rows.end(),
                      [](const TimedRow& a, const TimedRow& b) {
                        return a.timestamp < b.timestamp;
                      })) {
    std::stable_sort(rows.begin(), rows.end(),
                     [](const TimedRow& a, const TimedRow& b) {
                       return a.timestamp < b.timestamp;
                     });
  }
  return rows;
}

StatusOr<std::vector<TimedRow>> LoadCsv(const std::string& path,
                                        const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

}  // namespace dswm
