// CSV ingestion: load real datasets (e.g. the actual PAMAP dump) as a
// timed row stream, so the synthetic stand-ins can be swapped for the
// originals when available.

#ifndef DSWM_STREAM_CSV_LOADER_H_
#define DSWM_STREAM_CSV_LOADER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "stream/timed_row.h"

namespace dswm {

/// Options for LoadCsv.
struct CsvOptions {
  char delimiter = ',';
  /// Rows whose field count differs from the first row are rejected.
  bool skip_header = false;
  /// Column holding the timestamp; -1 assigns timestamps 1..n in file
  /// order. The timestamp column is excluded from the row values.
  int timestamp_column = -1;
  /// Multiplier applied to parsed timestamps before rounding to ticks
  /// (e.g. 100 for centisecond resolution).
  double timestamp_scale = 1.0;
};

/// Parses a delimiter-separated numeric file into timed rows. Fails with
/// InvalidArgument on malformed numerics or ragged rows, IoError when the
/// file cannot be read.
StatusOr<std::vector<TimedRow>> LoadCsv(const std::string& path,
                                        const CsvOptions& options = {});

/// Parses CSV content already in memory (used by tests and pipelines).
StatusOr<std::vector<TimedRow>> ParseCsv(const std::string& content,
                                         const CsvOptions& options = {});

}  // namespace dswm

#endif  // DSWM_STREAM_CSV_LOADER_H_
