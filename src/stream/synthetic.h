// SYNTHETIC workload: the paper's noisy low-rank-signal matrix.
//
// Each of three equal segments is A = S D U + N / zeta (Section IV-A):
// S has i.i.d. standard-normal entries, D is diagonal with
// D_ii = 1 - (i-1)/d, U is a random matrix with U U^T = I, N is standard
// Gaussian noise and zeta = 10 so the signal is recoverable. Each segment
// draws a fresh U, so the dominant subspace rotates twice over the
// stream. Timestamps follow a Poisson arrival process with rate lambda.

#ifndef DSWM_STREAM_SYNTHETIC_H_
#define DSWM_STREAM_SYNTHETIC_H_

#include "common/rng.h"
#include "linalg/matrix.h"
#include "stream/row_stream.h"

namespace dswm {

/// Configuration of the SYNTHETIC generator.
struct SyntheticConfig {
  int rows = 500000;     // total rows n (paper default)
  int dim = 300;         // d (paper default)
  double zeta = 10.0;    // noise attenuation
  double lambda = 1.0;   // Poisson arrival rate (rows per tick)
  int segments = 3;      // concatenated sub-matrices
  uint64_t seed = 42;
};

/// Streaming generator for the SYNTHETIC dataset.
class SyntheticGenerator : public RowStream {
 public:
  explicit SyntheticGenerator(const SyntheticConfig& config);

  std::optional<TimedRow> Next() override;
  int dim() const override { return config_.dim; }

 private:
  void StartSegment();

  SyntheticConfig config_;
  Rng rng_;
  int emitted_ = 0;
  int segment_ = -1;
  Matrix du_;           // D * U for the current segment (d x d)
  double clock_ = 0.0;  // continuous Poisson clock
};

}  // namespace dswm

#endif  // DSWM_STREAM_SYNTHETIC_H_
