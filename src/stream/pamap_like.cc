#include "stream/pamap_like.h"

#include <algorithm>
#include <cmath>

namespace dswm {

PamapLikeGenerator::PamapLikeGenerator(const PamapLikeConfig& config)
    : config_(config), rng_(config.seed), heart_rate_(1.0) {
  DSWM_CHECK_GT(config.rows, 0);
  DSWM_CHECK_GT(config.dim, 1);
  DSWM_CHECK_GE(config.activities, 1);

  // Activity intensities span roughly [1, 4] in amplitude; with the
  // per-row Gaussian spread this lands the squared-norm ratio R near the
  // paper's 60.78 for PAMAP. Lying/sitting at the low end,
  // rope-jumping/soccer at the high end.
  activities_.resize(config.activities);
  for (int a = 0; a < config.activities; ++a) {
    const double intensity =
        1.0 + 3.0 * a / std::max(1, config.activities - 1);
    Activity& act = activities_[a];
    act.mean.resize(config.dim);
    act.scale.resize(config.dim);
    for (int j = 0; j < config.dim; ++j) {
      act.mean[j] = intensity * rng_.NextGaussian() * 0.4;
      act.scale[j] = intensity * (0.5 + 0.5 * rng_.NextDouble());
    }
  }
  SwitchActivity();
}

void PamapLikeGenerator::SwitchActivity() {
  current_ = static_cast<int>(rng_.NextBelow(activities_.size()));
  remaining_in_regime_ = 1 + static_cast<int>(
      rng_.NextExponential(1.0 / config_.mean_regime_length));
}

std::optional<TimedRow> PamapLikeGenerator::Next() {
  if (emitted_ >= config_.rows) return std::nullopt;
  if (remaining_in_regime_ <= 0) SwitchActivity();
  --remaining_in_regime_;

  const Activity& act = activities_[current_];
  TimedRow row;
  row.values.resize(config_.dim);
  for (int j = 0; j < config_.dim; ++j) {
    row.values[j] = act.mean[j] + act.scale[j] * rng_.NextGaussian();
  }
  // Column 0 behaves like a bounded heart-rate random walk.
  heart_rate_ = std::clamp(heart_rate_ + 0.05 * rng_.NextGaussian(), 0.5, 2.5);
  row.values[0] = heart_rate_ * (1.0 + 0.1 * rng_.NextGaussian());

  clock_ += rng_.NextExponential(config_.lambda);
  row.timestamp = static_cast<Timestamp>(std::ceil(clock_));
  ++emitted_;
  return row;
}

}  // namespace dswm
