#include "stream/synthetic.h"

#include <cmath>

#include "linalg/qr.h"

namespace dswm {

SyntheticGenerator::SyntheticGenerator(const SyntheticConfig& config)
    : config_(config), rng_(config.seed) {
  DSWM_CHECK_GT(config.rows, 0);
  DSWM_CHECK_GT(config.dim, 0);
  DSWM_CHECK_GE(config.segments, 1);
}

void SyntheticGenerator::StartSegment() {
  ++segment_;
  const int d = config_.dim;
  // du_ row i = D_ii * u_i where u_i is the i-th orthonormal row of U.
  du_ = RandomOrthonormalRows(d, d, &rng_);
  for (int i = 0; i < d; ++i) {
    const double dii = 1.0 - static_cast<double>(i) / d;
    Scale(du_.Row(i), d, dii);
  }
}

std::optional<TimedRow> SyntheticGenerator::Next() {
  if (emitted_ >= config_.rows) return std::nullopt;
  const int d = config_.dim;
  const int per_segment = (config_.rows + config_.segments - 1) /
                          config_.segments;
  if (emitted_ % per_segment == 0 && segment_ + 1 <= emitted_ / per_segment) {
    StartSegment();
  }

  TimedRow row;
  row.values.assign(d, 0.0);
  // row = s^T (D U) + n / zeta.
  for (int i = 0; i < d; ++i) {
    const double s = rng_.NextGaussian();
    Axpy(s, du_.Row(i), row.values.data(), d);
  }
  for (int j = 0; j < d; ++j) {
    row.values[j] += rng_.NextGaussian() / config_.zeta;
  }

  clock_ += rng_.NextExponential(config_.lambda);
  row.timestamp = static_cast<Timestamp>(std::ceil(clock_));
  ++emitted_;
  return row;
}

}  // namespace dswm
