#include "stream/row_stream.h"

#include <algorithm>
#include <limits>

namespace dswm {

std::vector<TimedRow> Materialize(RowStream* stream, int max_rows) {
  std::vector<TimedRow> rows;
  rows.reserve(max_rows);
  for (int i = 0; i < max_rows; ++i) {
    std::optional<TimedRow> row = stream->Next();
    if (!row.has_value()) break;
    rows.push_back(std::move(*row));
  }
  return rows;
}

DatasetSummary Summarize(const std::vector<TimedRow>& rows,
                         Timestamp window) {
  DatasetSummary s;
  s.rows = static_cast<int>(rows.size());
  if (rows.empty()) return s;
  s.dim = static_cast<int>(rows.front().values.size());
  s.span = rows.back().timestamp - rows.front().timestamp;

  double min_w = std::numeric_limits<double>::infinity();
  double max_w = 0.0;
  for (const TimedRow& r : rows) {
    const double w = r.NormSquared();
    if (w <= 0.0) continue;
    min_w = std::min(min_w, w);
    max_w = std::max(max_w, w);
  }
  s.norm_ratio = (max_w > 0.0 && min_w > 0.0) ? max_w / min_w : 0.0;
  s.avg_rows_per_window =
      s.span > 0 ? static_cast<double>(s.rows) * window / s.span
                 : static_cast<double>(s.rows);
  return s;
}

}  // namespace dswm
