// WIKI-like workload: synthetic stand-in for the tf-idf English-Wikipedia
// matrix (not retrievable offline; see DESIGN.md item 2).
//
// Sparse rows over a vocabulary of d words: word popularity is Zipfian,
// document length follows a power law, entries are tf-idf-like weights
// (tf geometric, idf = log(1/popularity)). The induced squared-norm ratio
// R is in the thousands (paper: 2998.83), which is the property the
// evaluation turns on (it limits mEH compression and stresses the
// samplers). Timestamps model article publication days: many rows share a
// day, days advance steadily.

#ifndef DSWM_STREAM_WIKI_LIKE_H_
#define DSWM_STREAM_WIKI_LIKE_H_

#include <vector>

#include "common/rng.h"
#include "stream/row_stream.h"

namespace dswm {

/// Configuration of the WIKI-like generator.
struct WikiLikeConfig {
  int rows = 78608;         // paper's row count
  int dim = 512;            // vocabulary size (paper: 7047; scaled down --
                            // DESIGN.md item 2)
  double zipf_s = 1.1;      // word-popularity exponent
  int min_doc_len = 6;      // tf-idf draws per row, power-law distributed
  int max_doc_len = 800;
  double doc_len_alpha = 1.1;
  double rows_per_day = 20.0;  // ~78608 rows over ~3949 days
  uint64_t seed = 11;
};

/// Streaming generator for the WIKI-like dataset; rows carry a sparse
/// support set.
class WikiLikeGenerator : public RowStream {
 public:
  explicit WikiLikeGenerator(const WikiLikeConfig& config);

  std::optional<TimedRow> Next() override;
  int dim() const override { return config_.dim; }

 private:
  int SampleWord();
  int SampleDocLen();

  WikiLikeConfig config_;
  Rng rng_;
  std::vector<double> zipf_cdf_;  // cumulative word-popularity distribution
  std::vector<double> idf_;
  int emitted_ = 0;
  double clock_ = 0.0;
};

}  // namespace dswm

#endif  // DSWM_STREAM_WIKI_LIKE_H_
