// The unified query API of the serving tier.
//
// A QueryService fronts one SnapshotStore with typed, versioned results:
// every answer carries the SnapshotMeta of the exact version that produced
// it, so high-QPS readers can reason about staleness and reproducibility.
// Callers obtain a Session per thread (it owns one wait-free reader slot);
// each query pins the latest version for exactly the duration of the
// computation, so publication never blocks on readers and readers never
// block at all.
//
//   QueryService service(&store);
//   QueryService::Session session = service.NewSession();   // per thread
//   auto pca = session.Pca(x, d);        // StatusOr<PcaResult>
//   auto anomaly = session.Anomaly(x, d);
//   auto change = session.Change();      // seeds its reference lazily
//
// Error contract: FailedPrecondition before the first publish,
// InvalidArgument on a dimension mismatch. Queries never mutate snapshot
// state (the estimate is sealed), so results are bit-identical regardless
// of metrics, reader count, or runtime.

#ifndef DSWM_SERVE_QUERY_SERVICE_H_
#define DSWM_SERVE_QUERY_SERVICE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "analytics/change_detector.h"
#include "common/status.h"
#include "serve/snapshot_store.h"

namespace dswm {
namespace serve {

/// Projection of a point onto the served PCA basis.
struct PcaResult {
  SnapshotMeta meta;
  int components = 0;
  double captured_fraction = 0.0;
  std::vector<double> explained_variance;
  std::vector<double> coefficients;
  double reconstruction_error = 0.0;
};

/// Ridge-leverage anomaly score of a point.
struct AnomalyResult {
  SnapshotMeta meta;
  double score = 0.0;
  double lambda = 0.0;
};

/// Subspace-change verdict of the current version against the session's
/// frozen reference version.
struct ChangeResult {
  SnapshotMeta meta;
  uint64_t reference_version = 0;
  double distance = 0.0;
  double baseline = 0.0;
  bool change_detected = false;
};

class QueryService {
 public:
  /// Borrows `store` (must outlive the service and every session).
  /// `change_options` configures each session's change detector.
  explicit QueryService(SnapshotStore* store,
                        ChangeDetectorOptions change_options = {})
      : store_(store), change_options_(change_options) {}

  /// One reader's handle; create one per querying thread. Move-only.
  class Session {
   public:
    /// Projects x (length `dim`) onto the latest version's PCA basis.
    [[nodiscard]] StatusOr<PcaResult> Pca(const double* x, int dim);

    /// Scores x against the latest version's memoized anomaly scorer.
    [[nodiscard]] StatusOr<AnomalyResult> Anomaly(const double* x, int dim);

    /// Compares the latest version's subspace against this session's
    /// reference basis. The first call freezes the reference from the
    /// then-latest version (distance 0 by construction); later calls
    /// evaluate only when the version advanced, otherwise the previous
    /// verdict is returned unchanged.
    [[nodiscard]] StatusOr<ChangeResult> Change();

    /// Version answering the most recent successful query (0 if none).
    [[nodiscard]] uint64_t last_version() const { return last_version_; }

   private:
    friend class QueryService;
    Session(SnapshotStore* store, const ChangeDetectorOptions& options)
        : reader_(store), change_options_(options) {}

    /// FailedPrecondition before the first publish; otherwise a pinned
    /// ref recorded as last_version_.
    [[nodiscard]] StatusOr<SnapshotRef> PinLatest();

    SnapshotReader reader_;
    ChangeDetectorOptions change_options_;
    std::optional<ChangeDetector> detector_;
    uint64_t change_evaluated_version_ = 0;
    ChangeResult last_change_;
    uint64_t last_version_ = 0;
  };

  [[nodiscard]] Session NewSession() {
    return Session(store_, change_options_);
  }

  /// Forwards SnapshotStore::latest_version().
  [[nodiscard]] uint64_t latest_version() const {
    return store_->latest_version();
  }

 private:
  SnapshotStore* store_;
  ChangeDetectorOptions change_options_;
};

}  // namespace serve
}  // namespace dswm

#endif  // DSWM_SERVE_QUERY_SERVICE_H_
