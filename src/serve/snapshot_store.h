// Versioned snapshot store with wait-free readers and epoch-based
// reclamation -- the publish/read seam of the serving tier.
//
// Shape: an RCU-style atomic pointer to the latest immutable Snapshot,
// plus a fixed array of per-reader announcement slots. Publication (rare,
// serialized by a dswm::Mutex) builds the fully-materialized snapshot,
// swaps the latest pointer, bumps the global epoch, and retires the
// predecessor; a retired version is freed only once every claimed slot has
// announced an epoch at or past its retirement epoch. The read path is
// wait-free: Pin() is three seq_cst atomic accesses (load global epoch,
// announce it in the reader's own slot, load the latest pointer) -- no
// loops, no CAS, no locks.
//
// Safety argument (the scan-miss race): the publisher swaps the latest
// pointer *before* bumping the epoch to R and scanning slots; a reader
// announces *before* loading the pointer. Under seq_cst, if the
// publisher's scan missed a reader's announcement of an epoch < R, then
// that announcement is ordered after the scan, hence after the swap, so
// the reader's subsequent pointer load sees the new version -- it cannot
// hold the one retired at R. A stale announcement is therefore only ever
// conservative: it delays reclamation, never makes it unsafe.

#ifndef DSWM_SERVE_SNAPSHOT_STORE_H_
#define DSWM_SERVE_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "core/covariance_estimate.h"
#include "serve/snapshot.h"

namespace dswm {
namespace serve {

class SnapshotReader;
class SnapshotRef;

/// Store construction knobs.
struct StoreOptions {
  /// PCA components memoized per version (Snapshot::pca()).
  int pca_components = 8;
  /// Ridge fraction of the memoized anomaly scorer.
  double lambda_fraction = 0.01;
  /// Maximum concurrently-live SnapshotReader handles.
  int max_readers = 64;
  /// Test hook: called under the publication lock after each version is
  /// swapped in. Used by the bit-identity suite to record per-version
  /// bytes; leave empty in production paths.
  std::function<void(const Snapshot&)> on_publish;
};

/// The store. Publishers serialize on an internal mutex; readers never
/// block (and never make a publisher wait beyond deferred reclamation).
class SnapshotStore {
 public:
  using Options = StoreOptions;

  explicit SnapshotStore(Options options = Options());
  ~SnapshotStore();
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Publishes `estimate` as the next version: materializes every view
  /// (gram, eigenbasis, PSD root -- each exactly once), memoizes the PCA
  /// basis and default scorer, swaps the version in, and reclaims
  /// quiescent predecessors. InvalidArgument on an empty estimate;
  /// propagates construction failures without changing the published
  /// version. `published_at` stamps the triggering row's timestamp;
  /// `window` the coverage length.
  Status Publish(CovarianceEstimate estimate, Timestamp published_at,
                 Timestamp window) DSWM_EXCLUDES(mu_);

  /// Version of the latest published snapshot (0 before the first
  /// Publish). One acquire load; safe from any thread.
  [[nodiscard]] uint64_t latest_version() const {
    const Snapshot* s = latest_.load(std::memory_order_acquire);
    return s == nullptr ? 0 : s->meta().version;
  }

  /// Introspection for tests: versions published, versions freed, and
  /// retired-but-not-yet-freed versions (readers still announced below
  /// their retire epoch).
  [[nodiscard]] long published_count() const DSWM_EXCLUDES(mu_);
  [[nodiscard]] long reclaimed_count() const DSWM_EXCLUDES(mu_);
  [[nodiscard]] long retired_pending() const DSWM_EXCLUDES(mu_);

 private:
  friend class SnapshotReader;

  /// Announced by a claimed slot whose reader is not inside a pin.
  static constexpr uint64_t kQuiescent = ~uint64_t{0};

  struct alignas(64) ReaderSlot {
    std::atomic<uint64_t> epoch{kQuiescent};
    bool claimed = false;  // guarded by the owning store's mu_
  };

  struct Retired {
    const Snapshot* snapshot;
    uint64_t retire_epoch;
  };

  ReaderSlot* ClaimSlot() DSWM_EXCLUDES(mu_);
  void ReleaseSlot(ReaderSlot* slot) DSWM_EXCLUDES(mu_);
  /// Frees every retired version whose retire epoch is at or below the
  /// minimum epoch announced by a claimed slot.
  void Reclaim() DSWM_REQUIRES(mu_);

  Options options_;
  std::atomic<const Snapshot*> latest_{nullptr};
  std::atomic<uint64_t> global_epoch_{1};
  std::vector<ReaderSlot> slots_;

  mutable Mutex mu_;
  uint64_t next_version_ DSWM_GUARDED_BY(mu_) = 0;
  std::vector<Retired> retired_ DSWM_GUARDED_BY(mu_);
  long reclaimed_ DSWM_GUARDED_BY(mu_) = 0;
};

/// A per-thread read handle owning one announcement slot. Claiming takes
/// the store lock once; every Pin() afterwards is wait-free. Not
/// thread-safe itself: one reader per thread. Must not outlive the store,
/// and must be destroyed (or not moved) only with no live refs.
class SnapshotReader {
 public:
  /// Claims a slot; CHECK-fails when the store's max_readers slots are all
  /// claimed (size Options::max_readers for the expected thread count).
  explicit SnapshotReader(SnapshotStore* store);
  ~SnapshotReader();

  SnapshotReader(SnapshotReader&& other) noexcept;
  SnapshotReader& operator=(SnapshotReader&&) = delete;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// Pins the latest published version: announces the current epoch in
  /// this reader's slot and acquire-loads the latest pointer. Wait-free
  /// (no loops, no locks). Returns an empty ref before the first Publish.
  /// Pins nest: the slot stays announced until the outermost ref drops.
  [[nodiscard]] SnapshotRef Pin();

 private:
  friend class SnapshotRef;

  void Unpin();

  SnapshotStore* store_;
  SnapshotStore::ReaderSlot* slot_;
  int pin_depth_ = 0;
};

/// A pinned version: keeps the snapshot (and everything memoized on it)
/// alive until destruction. Move-only; must not outlive its reader.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  ~SnapshotRef();

  SnapshotRef(SnapshotRef&& other) noexcept;
  SnapshotRef& operator=(SnapshotRef&& other) noexcept;
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;

  /// False for a default-constructed ref or a pin taken before the first
  /// Publish.
  [[nodiscard]] bool has_value() const { return snapshot_ != nullptr; }
  explicit operator bool() const { return has_value(); }

  const Snapshot& operator*() const { return *snapshot_; }
  const Snapshot* operator->() const { return snapshot_; }
  [[nodiscard]] const SnapshotMeta& meta() const { return snapshot_->meta(); }

 private:
  friend class SnapshotReader;

  SnapshotRef(SnapshotReader* reader, const Snapshot* snapshot)
      : reader_(reader), snapshot_(snapshot) {}

  SnapshotReader* reader_ = nullptr;
  const Snapshot* snapshot_ = nullptr;
};

}  // namespace serve
}  // namespace dswm

#endif  // DSWM_SERVE_SNAPSHOT_STORE_H_
