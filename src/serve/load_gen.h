// Closed-loop serving load generator: a live tracker feeding a
// SnapshotStore while reader threads drive mixed PCA / anomaly / change
// queries through QueryService sessions.
//
// One ThreadPool task replays a synthetic stream through the tracker
// (publishing at every window boundary via DriverOptions::publish_store);
// N reader tasks each own a Session and issue queries back to back --
// closed loop, no think time -- until the feed ends and their minimum
// query count is met. Latency is recorded per query through an
// external-accumulator obs::Span (measured even with metrics off) and,
// when metrics are enabled, into the serve.query.latency_us histogram.
//
// Used by bench/bench_query_serving.cc and `dswm_cli serve-bench`.

#ifndef DSWM_SERVE_LOAD_GEN_H_
#define DSWM_SERVE_LOAD_GEN_H_

#include <cstdint>

#include "common/status.h"
#include "core/tracker_factory.h"
#include "monitor/driver.h"
#include "obs/metrics.h"

namespace dswm {
namespace serve {

struct LoadGenOptions {
  Algorithm algorithm = Algorithm::kDa2;
  int rows = 6000;
  int dim = 32;
  int sites = 4;
  double epsilon = 0.2;
  /// 0 = a quarter of the stream's time span.
  Timestamp window = 0;
  uint64_t seed = 5;
  /// Concurrent closed-loop reader threads.
  int reader_threads = 4;
  /// Each reader keeps querying (against the final version) until it has
  /// issued at least this many queries, so short feeds still produce a
  /// meaningful sample.
  long min_queries_per_reader = 200;
  /// PCA components memoized per published version.
  int pca_components = 8;

  [[nodiscard]] Status Validate() const;
};

struct LoadGenReport {
  /// Query counts across all readers (total = pca + anomaly + change).
  long total_queries = 0;
  long pca_queries = 0;
  long anomaly_queries = 0;
  long change_queries = 0;
  /// Queries that returned a non-OK Status (the acceptance bar is zero).
  long errors = 0;
  /// Wall-clock of the whole loaded phase (feed + concurrent readers).
  double elapsed_seconds = 0.0;
  /// total_queries / elapsed_seconds.
  double qps = 0.0;
  /// Versions the feeder published.
  uint64_t versions_published = 0;
  /// Tracker-side result of the feed (errors, comm, trace).
  RunResult run;
  /// Registry delta over the loaded phase (empty when metrics are off);
  /// contains the serve.query.latency_us histogram and serve.* counters.
  obs::MetricsSnapshot metrics;
};

/// Runs the load. Fails on invalid options or a tracker/feed failure;
/// per-query Status errors are counted in the report, not returned.
[[nodiscard]] StatusOr<LoadGenReport> RunServingLoad(
    const LoadGenOptions& options);

/// Determinism self-check for the serving path: replays the identical
/// deterministic feed twice -- metrics off, then on -- and compares every
/// query result of a fixed single-threaded query set bitwise. Internal
/// error on any divergence (metrics must never change a query result).
[[nodiscard]] Status VerifyMetricsInvariance(const LoadGenOptions& options);

}  // namespace serve
}  // namespace dswm

#endif  // DSWM_SERVE_LOAD_GEN_H_
