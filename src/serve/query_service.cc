#include "serve/query_service.h"

#include <string>
#include <utility>

#include "obs/metrics.h"

namespace dswm {
namespace serve {

namespace {

Status DimMismatch(int got, int want) {
  return Status::InvalidArgument("query dimension " + std::to_string(got) +
                                 " does not match snapshot dimension " +
                                 std::to_string(want));
}

}  // namespace

StatusOr<SnapshotRef> QueryService::Session::PinLatest() {
  SnapshotRef ref = reader_.Pin();
  if (!ref.has_value()) {
    return Status::FailedPrecondition("no snapshot published yet");
  }
  last_version_ = ref.meta().version;
  return ref;
}

StatusOr<PcaResult> QueryService::Session::Pca(const double* x, int dim) {
  auto pinned = PinLatest();
  DSWM_RETURN_NOT_OK(pinned.status());
  const SnapshotRef ref = std::move(pinned).value();
  if (dim != ref->dim()) return DimMismatch(dim, ref->dim());

  const ApproxPca& pca = ref->pca();
  PcaResult result;
  result.meta = ref.meta();
  result.components = pca.components();
  result.captured_fraction = pca.captured_fraction();
  result.explained_variance = pca.explained_variance();
  result.coefficients = pca.Project(x);
  result.reconstruction_error = pca.ReconstructionError(x);
  DSWM_OBS_COUNT("serve.query.pca", 1);
  return result;
}

StatusOr<AnomalyResult> QueryService::Session::Anomaly(const double* x,
                                                       int dim) {
  auto pinned = PinLatest();
  DSWM_RETURN_NOT_OK(pinned.status());
  const SnapshotRef ref = std::move(pinned).value();
  if (dim != ref->dim()) return DimMismatch(dim, ref->dim());

  AnomalyResult result;
  result.meta = ref.meta();
  result.score = ref->scorer().Score(x);
  result.lambda = ref->scorer().lambda();
  DSWM_OBS_COUNT("serve.query.anomaly", 1);
  return result;
}

StatusOr<ChangeResult> QueryService::Session::Change() {
  auto pinned = PinLatest();
  DSWM_RETURN_NOT_OK(pinned.status());
  const SnapshotRef ref = std::move(pinned).value();

  if (!detector_.has_value()) {
    auto detector = ChangeDetector::FromSnapshot(ref, change_options_);
    DSWM_RETURN_NOT_OK(detector.status());
    detector_ = std::move(detector).value();
    change_evaluated_version_ = ref.meta().version;
    last_change_.meta = ref.meta();
    last_change_.reference_version = detector_->reference_version();
    last_change_.distance = 0.0;
    last_change_.baseline = detector_->baseline();
    last_change_.change_detected = detector_->change_detected();
    DSWM_OBS_COUNT("serve.query.change", 1);
    return last_change_;
  }

  if (ref.meta().version > change_evaluated_version_) {
    auto distance = detector_->Update(ref);
    DSWM_RETURN_NOT_OK(distance.status());
    change_evaluated_version_ = ref.meta().version;
    last_change_.meta = ref.meta();
    last_change_.reference_version = detector_->reference_version();
    last_change_.distance = distance.value();
    last_change_.baseline = detector_->baseline();
    last_change_.change_detected = detector_->change_detected();
  }
  DSWM_OBS_COUNT("serve.query.change", 1);
  return last_change_;
}

}  // namespace serve
}  // namespace dswm
