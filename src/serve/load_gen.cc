#include "serve/load_gen.h"

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_pool.h"
#include "monitor/driver.h"
#include "obs/span.h"
#include "serve/query_service.h"
#include "serve/snapshot_store.h"
#include "stream/synthetic.h"

namespace dswm {
namespace serve {

namespace {

// Microsecond latency edges: sub-microsecond reads up to slow outliers.
const std::vector<long>& LatencyEdgesUs() {
  static const std::vector<long> edges{1,   2,   5,    10,   20,   50,  100,
                                       200, 500, 1000, 2000, 5000, 10000};
  return edges;
}

std::vector<TimedRow> MakeStream(const LoadGenOptions& options) {
  SyntheticConfig config;
  config.rows = options.rows;
  config.dim = options.dim;
  config.seed = options.seed;
  SyntheticGenerator gen(config);
  return Materialize(&gen, config.rows);
}

Timestamp WindowOf(const LoadGenOptions& options,
                   const std::vector<TimedRow>& rows) {
  if (options.window > 0) return options.window;
  const Timestamp span = rows.back().timestamp - rows.front().timestamp + 1;
  return std::max<Timestamp>(span / 4, 1);
}

}  // namespace

Status LoadGenOptions::Validate() const {
  if (rows < 1) return Status::InvalidArgument("rows must be >= 1");
  if (dim < 1) return Status::InvalidArgument("dim must be >= 1");
  if (sites < 1) return Status::InvalidArgument("sites must be >= 1");
  if (epsilon <= 0.0) return Status::InvalidArgument("epsilon must be > 0");
  if (window < 0) return Status::InvalidArgument("window must be >= 0");
  if (reader_threads < 1) {
    return Status::InvalidArgument("reader_threads must be >= 1");
  }
  if (min_queries_per_reader < 0) {
    return Status::InvalidArgument("min_queries_per_reader must be >= 0");
  }
  if (pca_components < 1) {
    return Status::InvalidArgument("pca_components must be >= 1");
  }
  return Status::OK();
}

StatusOr<LoadGenReport> RunServingLoad(const LoadGenOptions& options) {
  DSWM_RETURN_NOT_OK(options.Validate());
  const std::vector<TimedRow> rows = MakeStream(options);
  if (rows.empty()) return Status::Internal("synthetic stream is empty");
  const Timestamp window = WindowOf(options, rows);

  TrackerConfig config;
  config.dim = options.dim;
  config.num_sites = options.sites;
  config.window = window;
  config.epsilon = options.epsilon;
  config.seed = options.seed;
  auto tracker = MakeTracker(options.algorithm, config);
  DSWM_RETURN_NOT_OK(tracker.status());

  // The first-publish gate: readers block on a condvar until the feeder
  // publishes version 1 (or fails), then run a pure closed loop.
  Mutex gate_mu;
  CondVar gate_cv;
  bool first_published = false;  // guarded by gate_mu
  bool feed_done = false;        // guarded by gate_mu

  SnapshotStore::Options store_options;
  store_options.pca_components = options.pca_components;
  store_options.max_readers = options.reader_threads + 2;
  store_options.on_publish = [&](const Snapshot&) {
    MutexLock lock(gate_mu);
    if (!first_published) {
      first_published = true;
      gate_cv.NotifyAll();
    }
  };
  SnapshotStore store(store_options);
  QueryService service(&store);

  const bool metrics_on = obs::Enabled();
  obs::MetricsSnapshot metrics_base;
  if (metrics_on) metrics_base = obs::Registry().Snapshot();

  struct ReaderStats {
    long pca = 0;
    long anomaly = 0;
    long change = 0;
    long errors = 0;
  };
  std::vector<ReaderStats> stats(static_cast<size_t>(options.reader_threads));
  StatusOr<RunResult> feed = Status::Internal("feed not run");

  double elapsed_seconds = 0.0;
  {
    obs::Span timer("serve.load", &elapsed_seconds);
    // One pool sized so the feeder and every reader run concurrently
    // (the caller's thread just waits in WaitIdle).
    ThreadPool pool(options.reader_threads + 2);

    pool.Submit([&] {
      DriverOptions driver_options;
      driver_options.query_points = 0;
      driver_options.seed = options.seed;
      driver_options.publish_store = &store;
      feed = RunTracker(tracker.value().get(), rows, options.sites, window,
                        driver_options);
      MutexLock lock(gate_mu);
      feed_done = true;
      gate_cv.NotifyAll();
    });

    for (int r = 0; r < options.reader_threads; ++r) {
      pool.Submit([&, r] {
        {
          MutexLock lock(gate_mu);
          gate_cv.Wait(gate_mu, [&]() DSWM_REQUIRES(gate_mu) {
            return first_published || feed_done;
          });
        }
        if (store.latest_version() == 0) return;  // feed failed/empty
        QueryService::Session session = service.NewSession();
        ReaderStats& mine = stats[static_cast<size_t>(r)];
        long q = 0;
        bool feeding = true;
        while (feeding || q < options.min_queries_per_reader) {
          if (feeding) {
            MutexLock lock(gate_mu);
            feeding = !feed_done;
          }
          // Per-reader stride keeps readers from marching in lockstep
          // over the same query points.
          const TimedRow& point =
              rows[static_cast<size_t>((q * 7 + r * 31) %
                                       static_cast<long>(rows.size()))];
          double seconds = 0.0;
          Status status = Status::OK();
          {
            obs::Span span("serve.query", &seconds);
            switch (q % 3) {
              case 0: {
                auto got = session.Pca(point.values.data(), options.dim);
                status = got.status();
                if (status.ok()) ++mine.pca;
                break;
              }
              case 1: {
                auto got = session.Anomaly(point.values.data(), options.dim);
                status = got.status();
                if (status.ok()) ++mine.anomaly;
                break;
              }
              default: {
                auto got = session.Change();
                status = got.status();
                if (status.ok()) ++mine.change;
                break;
              }
            }
          }
          if (!status.ok()) ++mine.errors;
          DSWM_OBS_HISTOGRAM("serve.query.latency_us", LatencyEdgesUs(),
                             static_cast<long>(seconds * 1e6));
          ++q;
        }
      });
    }
    pool.WaitIdle();
  }

  DSWM_RETURN_NOT_OK(feed.status());

  LoadGenReport report;
  for (const ReaderStats& s : stats) {
    report.pca_queries += s.pca;
    report.anomaly_queries += s.anomaly;
    report.change_queries += s.change;
    report.errors += s.errors;
  }
  report.total_queries = report.pca_queries + report.anomaly_queries +
                         report.change_queries + report.errors;
  report.elapsed_seconds = elapsed_seconds;
  report.qps = elapsed_seconds > 0.0
                   ? static_cast<double>(report.total_queries) / elapsed_seconds
                   : 0.0;
  report.versions_published = static_cast<uint64_t>(store.published_count());
  report.run = std::move(feed).value();
  if (metrics_on) {
    report.metrics = obs::Registry().Snapshot().DeltaSince(metrics_base);
  }
  return report;
}

namespace {

/// One deterministic, single-threaded serving pass: feed the stream with
/// publication on, then run a fixed query set through one session,
/// flattening every result into doubles for bitwise comparison.
Status RunDeterministicPass(const LoadGenOptions& options,
                            std::vector<double>* flat) {
  const std::vector<TimedRow> rows = MakeStream(options);
  if (rows.empty()) return Status::Internal("synthetic stream is empty");
  const Timestamp window = WindowOf(options, rows);

  TrackerConfig config;
  config.dim = options.dim;
  config.num_sites = options.sites;
  config.window = window;
  config.epsilon = options.epsilon;
  config.seed = options.seed;
  auto tracker = MakeTracker(options.algorithm, config);
  DSWM_RETURN_NOT_OK(tracker.status());

  SnapshotStore::Options store_options;
  store_options.pca_components = options.pca_components;
  SnapshotStore store(store_options);
  DriverOptions driver_options;
  driver_options.query_points = 0;
  driver_options.seed = options.seed;
  driver_options.publish_store = &store;
  auto feed = RunTracker(tracker.value().get(), rows, options.sites, window,
                         driver_options);
  DSWM_RETURN_NOT_OK(feed.status());

  QueryService service(&store);
  QueryService::Session session = service.NewSession();
  const int probes = std::min<int>(16, static_cast<int>(rows.size()));
  for (int i = 0; i < probes; ++i) {
    const double* x = rows[static_cast<size_t>(i)].values.data();
    auto pca = session.Pca(x, options.dim);
    DSWM_RETURN_NOT_OK(pca.status());
    flat->push_back(pca.value().reconstruction_error);
    flat->push_back(pca.value().captured_fraction);
    flat->insert(flat->end(), pca.value().coefficients.begin(),
                 pca.value().coefficients.end());
    auto anomaly = session.Anomaly(x, options.dim);
    DSWM_RETURN_NOT_OK(anomaly.status());
    flat->push_back(anomaly.value().score);
    flat->push_back(anomaly.value().lambda);
    auto change = session.Change();
    DSWM_RETURN_NOT_OK(change.status());
    flat->push_back(change.value().distance);
    flat->push_back(static_cast<double>(change.value().meta.version));
  }
  flat->push_back(static_cast<double>(store.published_count()));
  return Status::OK();
}

}  // namespace

Status VerifyMetricsInvariance(const LoadGenOptions& options) {
  DSWM_RETURN_NOT_OK(options.Validate());
  const bool was_enabled = obs::Enabled();

  obs::SetEnabled(false);
  std::vector<double> without;
  Status off = RunDeterministicPass(options, &without);
  if (!off.ok()) {
    obs::SetEnabled(was_enabled);
    return off;
  }

  obs::SetEnabled(true);
  std::vector<double> with;
  Status on = RunDeterministicPass(options, &with);
  obs::SetEnabled(was_enabled);
  DSWM_RETURN_NOT_OK(on);

  if (without.size() != with.size() ||
      (!without.empty() &&
       std::memcmp(without.data(), with.data(),
                   without.size() * sizeof(double)) != 0)) {
    return Status::Internal(
        "serving query results changed when metrics were enabled");
  }
  return Status::OK();
}

}  // namespace serve
}  // namespace dswm
