// An immutable, fully-materialized published version of the tracker's
// covariance estimate -- the unit the serving tier hands to readers.
//
// Publication (SnapshotStore::Publish) pays the expensive derivations
// exactly once per version: the gram/covariance view, the shared
// eigendecomposition, the O(d^3) PSD root, the top-k PCA basis, and the
// default-ridge anomaly scorer are all computed here and memoized on the
// snapshot, so any number of concurrent readers amortize them. After
// Build() returns, a Snapshot is deeply const: the embedded estimate is
// sealed (CovarianceEstimate::MaterializeAndSeal), so no reader access can
// ever mutate a cache. MaterializeAndSeal is the only mutating call in the
// serving path and is confined to src/serve/ by the semantic linter
// (snapshot-immutability).

#ifndef DSWM_SERVE_SNAPSHOT_H_
#define DSWM_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <memory>

#include "analytics/anomaly_scorer.h"
#include "analytics/approx_pca.h"
#include "common/status.h"
#include "core/covariance_estimate.h"
#include "stream/timed_row.h"

namespace dswm {
namespace serve {

/// Identity and window coverage of one published version, carried along
/// with every query result so readers can tell exactly which state
/// answered them.
struct SnapshotMeta {
  /// Monotonically increasing from 1; 0 means "no snapshot".
  uint64_t version = 0;
  /// Timestamp of the row whose arrival triggered publication.
  Timestamp published_at = 0;
  /// Window coverage (window_start, published_at], matching the sliding
  /// window semantics (cutoff = t - window).
  Timestamp window_start = 0;
  Timestamp window = 0;
};

/// One immutable published version. Heap-allocated by the store, never
/// copied or moved (readers hold pointers into its materialized caches).
class Snapshot {
 public:
  Snapshot(const Snapshot&) = delete;
  Snapshot& operator=(const Snapshot&) = delete;

  [[nodiscard]] const SnapshotMeta& meta() const { return meta_; }

  /// The sealed estimate: Rows(), Covariance(), and Eigen() are all
  /// precomputed, so every accessor is a pure read.
  [[nodiscard]] const CovarianceEstimate& estimate() const { return est_; }

  /// Top-k PCA basis (k = store option pca_components, fewer when the
  /// estimate is rank-deficient), derived from the shared eigenbasis.
  [[nodiscard]] const ApproxPca& pca() const { return pca_; }

  /// Default-ridge anomaly scorer borrowing the shared eigenbasis.
  [[nodiscard]] const AnomalyScorer& scorer() const { return scorer_; }

  [[nodiscard]] int dim() const { return est_.Dim(); }

 private:
  friend class SnapshotStore;

  Snapshot() = default;

  /// Materializes every view of `estimate` and memoizes the per-version
  /// query structures. InvalidArgument on an empty estimate; propagates
  /// PCA/scorer construction failures.
  static StatusOr<std::unique_ptr<const Snapshot>> Build(
      CovarianceEstimate estimate, SnapshotMeta meta, int pca_components,
      double lambda_fraction);

  SnapshotMeta meta_;
  CovarianceEstimate est_;
  ApproxPca pca_;
  AnomalyScorer scorer_;
};

}  // namespace serve
}  // namespace dswm

#endif  // DSWM_SERVE_SNAPSHOT_H_
