#include "serve/snapshot.h"

#include <utility>

namespace dswm {
namespace serve {

StatusOr<std::unique_ptr<const Snapshot>> Snapshot::Build(
    CovarianceEstimate estimate, SnapshotMeta meta, int pca_components,
    double lambda_fraction) {
  if (estimate.Dim() == 0) {
    return Status::InvalidArgument("cannot publish an empty estimate");
  }
  std::unique_ptr<Snapshot> snap(new Snapshot());
  snap->meta_ = meta;
  snap->est_ = std::move(estimate);
  // The one place the estimate mutates on the serving path: every view is
  // derived here, exactly once per version, then frozen.
  snap->est_.MaterializeAndSeal();

  auto pca =
      ApproxPca::FromEigenbasis(snap->est_.Eigen(), snap->est_.Dim(),
                                pca_components);
  DSWM_RETURN_NOT_OK(pca.status());
  snap->pca_ = std::move(pca).value();

  auto scorer = AnomalyScorer::ForSealedEstimate(snap->est_, lambda_fraction);
  DSWM_RETURN_NOT_OK(scorer.status());
  snap->scorer_ = std::move(scorer).value();

  return std::unique_ptr<const Snapshot>(std::move(snap));
}

}  // namespace serve
}  // namespace dswm
