#include "serve/snapshot_store.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"

namespace dswm {
namespace serve {

SnapshotStore::SnapshotStore(Options options)
    : options_(std::move(options)),
      slots_(static_cast<size_t>(std::max(options_.max_readers, 1))) {
  DSWM_CHECK_GE(options_.pca_components, 1);
  DSWM_CHECK_GT(options_.lambda_fraction, 0.0);
}

SnapshotStore::~SnapshotStore() {
  MutexLock lock(mu_);
  for (const ReaderSlot& slot : slots_) DSWM_CHECK(!slot.claimed);
  for (const Retired& r : retired_) delete r.snapshot;
  delete latest_.load(std::memory_order_acquire);
}

Status SnapshotStore::Publish(CovarianceEstimate estimate,
                              Timestamp published_at, Timestamp window) {
  MutexLock lock(mu_);
  SnapshotMeta meta;
  meta.version = next_version_ + 1;
  meta.published_at = published_at;
  meta.window = window;
  meta.window_start = published_at - window + 1;
  auto built = Snapshot::Build(std::move(estimate), meta,
                               options_.pca_components,
                               options_.lambda_fraction);
  DSWM_RETURN_NOT_OK(built.status());
  ++next_version_;

  // Swap first, then bump the epoch: a reader that announces epoch >= R
  // (the post-bump value) is guaranteed to load the new pointer, which is
  // what makes retiring the predecessor at R safe.
  const Snapshot* fresh = std::move(built).value().release();
  const Snapshot* old = latest_.load(std::memory_order_relaxed);
  latest_.store(fresh, std::memory_order_seq_cst);
  const uint64_t retire_epoch =
      global_epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  if (old != nullptr) retired_.push_back(Retired{old, retire_epoch});
  Reclaim();

  DSWM_OBS_COUNT("serve.store.published", 1);
  if (options_.on_publish) options_.on_publish(*fresh);
  return Status::OK();
}

void SnapshotStore::Reclaim() {
  uint64_t min_announced = kQuiescent;
  for (const ReaderSlot& slot : slots_) {
    if (!slot.claimed) continue;
    min_announced = std::min(min_announced,
                             slot.epoch.load(std::memory_order_seq_cst));
  }
  size_t kept = 0;
  for (size_t i = 0; i < retired_.size(); ++i) {
    // Free iff every claimed slot has announced >= the retire epoch (a
    // quiescent slot announces kQuiescent = +inf). Readers announced
    // below it may still hold the pointer; keep those versions.
    if (retired_[i].retire_epoch <= min_announced) {
      delete retired_[i].snapshot;
      ++reclaimed_;
      DSWM_OBS_COUNT("serve.store.reclaimed", 1);
    } else {
      retired_[kept++] = retired_[i];
    }
  }
  retired_.resize(kept);
}

long SnapshotStore::published_count() const {
  MutexLock lock(mu_);
  return static_cast<long>(next_version_);
}

long SnapshotStore::reclaimed_count() const {
  MutexLock lock(mu_);
  return reclaimed_;
}

long SnapshotStore::retired_pending() const {
  MutexLock lock(mu_);
  return static_cast<long>(retired_.size());
}

SnapshotStore::ReaderSlot* SnapshotStore::ClaimSlot() {
  MutexLock lock(mu_);
  for (ReaderSlot& slot : slots_) {
    if (!slot.claimed) {
      slot.claimed = true;
      slot.epoch.store(kQuiescent, std::memory_order_seq_cst);
      return &slot;
    }
  }
  DSWM_CHECK(false);  // raise SnapshotStore::Options::max_readers
  return nullptr;
}

void SnapshotStore::ReleaseSlot(ReaderSlot* slot) {
  MutexLock lock(mu_);
  slot->epoch.store(kQuiescent, std::memory_order_seq_cst);
  slot->claimed = false;
  // The departing reader can no longer constrain reclamation; drain any
  // versions it alone was holding back.
  Reclaim();
}

SnapshotReader::SnapshotReader(SnapshotStore* store)
    : store_(store), slot_(store->ClaimSlot()) {}

SnapshotReader::SnapshotReader(SnapshotReader&& other) noexcept
    : store_(other.store_), slot_(other.slot_), pin_depth_(other.pin_depth_) {
  DSWM_CHECK(other.pin_depth_ == 0);  // refs hold a pointer to their reader
  other.store_ = nullptr;
  other.slot_ = nullptr;
}

SnapshotReader::~SnapshotReader() {
  if (store_ == nullptr) return;  // moved-from
  DSWM_CHECK(pin_depth_ == 0);
  store_->ReleaseSlot(slot_);
}

SnapshotRef SnapshotReader::Pin() {
  DSWM_CHECK(store_ != nullptr);
  if (++pin_depth_ == 1) {
    // Announce before loading: the publisher's swap-then-bump order plus
    // seq_cst makes a missed announcement imply we load the new pointer
    // (see the header's safety argument).
    slot_->epoch.store(store_->global_epoch_.load(std::memory_order_seq_cst),
                       std::memory_order_seq_cst);
  }
  const Snapshot* snapshot =
      store_->latest_.load(std::memory_order_seq_cst);
  if (snapshot == nullptr) {
    Unpin();
    return SnapshotRef();
  }
  return SnapshotRef(this, snapshot);
}

void SnapshotReader::Unpin() {
  DSWM_CHECK(pin_depth_ > 0);
  if (--pin_depth_ == 0) {
    slot_->epoch.store(SnapshotStore::kQuiescent, std::memory_order_release);
  }
}

SnapshotRef::~SnapshotRef() {
  if (reader_ != nullptr) reader_->Unpin();
}

SnapshotRef::SnapshotRef(SnapshotRef&& other) noexcept
    : reader_(other.reader_), snapshot_(other.snapshot_) {
  other.reader_ = nullptr;
  other.snapshot_ = nullptr;
}

SnapshotRef& SnapshotRef::operator=(SnapshotRef&& other) noexcept {
  if (this != &other) {
    if (reader_ != nullptr) reader_->Unpin();
    reader_ = other.reader_;
    snapshot_ = other.snapshot_;
    other.reader_ = nullptr;
    other.snapshot_ = nullptr;
  }
  return *this;
}

}  // namespace serve
}  // namespace dswm
