// Batched small-matrix engine.
//
// Steady-state tracker cost is dominated by many *small* same-shape
// problems: one SymmetricEigen per FrequentDirections shrink, one shrink
// chain per mEH bucket merge, one PsdSqrt/error evaluation per query
// point. Each problem is far below the kernels' parallelism threshold, so
// running them one at a time leaves the pool idle. This engine packs a
// whole batch and distributes the *problems* (not the flops inside one
// problem) across threads.
//
// Contract, matching common/thread_pool.h:
//   * one pool dispatch per batch: the entire batch goes through a single
//     ThreadPool::ParallelFor, and each chunk body opens a
//     ThreadPool::NestedInlineScope so kernels invoked from inside a
//     problem never submit a second round of tasks;
//   * fixed per-index partitioning: problem i writes only result slot i,
//     and the per-problem computation is bit-identical at any thread
//     count, so batched == looped == single-threaded, byte for byte;
//   * a batch of one runs inline without entering the scope, keeping the
//     inner kernels' own parallelism (still at most one dispatch).

#ifndef DSWM_LINALG_BATCHED_H_
#define DSWM_LINALG_BATCHED_H_

#include <functional>
#include <vector>

#include "linalg/symmetric_eigen.h"

namespace dswm {

class FrequentDirections;

/// Runs body(i) for every i in [0, count) through at most one ThreadPool
/// dispatch (none when count <= 1). body must write only state owned by
/// index i; bodies run concurrently on disjoint index ranges.
void BatchedDispatch(int count, const std::function<void(int)>& body);

/// Eigendecomposes `count` symmetric matrices of one common dimension.
/// results[i] == SymmetricEigen(*problems[i]) bitwise; count == 0 yields
/// an empty vector. All problems must be square with equal dimension.
[[nodiscard]] std::vector<EigenResult> BatchedSymEigen(
    const Matrix* const* problems, int count);
[[nodiscard]] std::vector<EigenResult> BatchedSymEigen(
    const std::vector<const Matrix*>& problems);

/// One deferred FrequentDirections maintenance job: merge `sources` into
/// `fd` in order (each merge replays the embedded shrink schedule exactly
/// as a sequential Merge loop would), then optionally force a Compact.
/// Jobs in one batch must target distinct `fd` objects, and no job's
/// `sources` may alias another job's `fd`.
struct FdShrinkJob {
  FrequentDirections* fd = nullptr;
  std::vector<const FrequentDirections*> sources;
  bool compact = false;
};

/// Executes every job through one dispatch. Job i touches only jobs[i].fd,
/// so the batch is bit-identical to running the same Merge/Compact
/// sequence in a sequential loop.
void BatchedFdShrink(FdShrinkJob* jobs, int count);

}  // namespace dswm

#endif  // DSWM_LINALG_BATCHED_H_
