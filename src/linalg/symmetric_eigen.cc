#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dswm {

namespace {

// Sum of squares of strictly-off-diagonal entries.
double OffDiagonalMass(const Matrix& a) {
  double s = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      if (i != j) s += a(i, j) * a(i, j);
    }
  }
  return s;
}

}  // namespace

EigenResult SymmetricEigen(const Matrix& input) {
  DSWM_CHECK_EQ(input.rows(), input.cols());
  const int d = input.rows();

  // Work on the symmetrized copy to be robust to tiny asymmetries from
  // accumulated floating-point updates (C_hat += lambda v v^T etc).
  Matrix a(d, d);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) a(i, j) = 0.5 * (input(i, j) + input(j, i));
  }

  Matrix v = Matrix::Identity(d);

  const double total = a.FrobeniusNormSquared();
  const double tol = total * 1e-24 + 1e-300;
  constexpr int kMaxSweeps = 64;

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (OffDiagonalMass(a) <= tol) break;
    for (int p = 0; p < d - 1; ++p) {
      for (int q = p + 1; q < d; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Skip rotations that cannot change anything at double precision.
        if (std::fabs(apq) <= 1e-18 * (std::fabs(app) + std::fabs(aqq))) {
          continue;
        }
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // A <- J^T A J applied to rows/cols p and q.
        for (int k = 0; k < d; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (int k = 0; k < d; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors: V <- V J. We keep eigenvectors as rows
        // of the result, so accumulate into rows here.
        for (int k = 0; k < d; ++k) {
          const double vpk = v(p, k);
          const double vqk = v(q, k);
          v(p, k) = c * vpk - s * vqk;
          v(q, k) = s * vpk + c * vqk;
        }
      }
    }
  }

  std::vector<int> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&a](int i, int j) { return a(i, i) > a(j, j); });

  EigenResult result;
  result.values.resize(d);
  result.vectors = Matrix(d, d);
  for (int i = 0; i < d; ++i) {
    result.values[i] = a(order[i], order[i]);
    result.vectors.SetRow(i, v.Row(order[i]));
  }
  return result;
}

double SpectralNormExact(const Matrix& a) {
  const EigenResult eig = SymmetricEigen(a);
  double m = 0.0;
  for (double lambda : eig.values) m = std::max(m, std::fabs(lambda));
  return m;
}

}  // namespace dswm
