#include "linalg/symmetric_eigen.h"

#include <algorithm>
#include <cfloat>
#include <cmath>
#include <numeric>

#include "obs/metrics.h"

namespace dswm {

namespace {

// Sum of squares of strictly-off-diagonal entries.
double OffDiagonalMass(const Matrix& a) {
  double s = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      if (i != j) s += a(i, j) * a(i, j);
    }
  }
  return s;
}

// Householder reduction of the symmetric matrix `a` (destroyed) to
// tridiagonal form T = Q^T A Q. On return diag[i] = T(i,i), sub[i] =
// T(i,i-1) (sub[0] = 0), and `a` holds the accumulated orthogonal Q with
// the basis vectors as columns. Classic tred2 recurrence (EISPACK
// lineage): for each trailing row a Householder reflector annihilates the
// entries left of the subdiagonal, and the rank-2 symmetric update
// A <- A - v w^T - w v^T is applied to the leading block.
void Tridiagonalize(Matrix* a_ptr, std::vector<double>* diag,
                    std::vector<double>* sub) {
  Matrix& a = *a_ptr;
  const int n = a.rows();
  std::vector<double>& d = *diag;
  std::vector<double>& e = *sub;
  d.assign(n, 0.0);
  e.assign(n, 0.0);
  for (int i = n - 1; i > 0; --i) {
    const int l = i - 1;
    double h = 0.0;
    double scale = 0.0;
    if (l > 0) {
      for (int k = 0; k <= l; ++k) scale += std::fabs(a(i, k));
      if (scale == 0.0) {
        // Row already annihilated; nothing to reflect.
        e[i] = a(i, l);
      } else {
        // Scaled Householder vector, stored in row i of `a`.
        for (int k = 0; k <= l; ++k) {
          a(i, k) /= scale;
          h += a(i, k) * a(i, k);
        }
        double f = a(i, l);
        double g = (f >= 0.0) ? -std::sqrt(h) : std::sqrt(h);
        e[i] = scale * g;
        h -= f * g;
        a(i, l) = f - g;
        // p = A v / h accumulated into e[0..l]; f = v^T p.
        f = 0.0;
        for (int j = 0; j <= l; ++j) {
          a(j, i) = a(i, j) / h;
          g = 0.0;
          for (int k = 0; k <= j; ++k) g += a(j, k) * a(i, k);
          for (int k = j + 1; k <= l; ++k) g += a(k, j) * a(i, k);
          e[j] = g / h;
          f += e[j] * a(i, j);
        }
        // w = p - (v^T p / 2h) v, then the rank-2 update on the lower
        // triangle of the leading block.
        const double hh = f / (h + h);
        for (int j = 0; j <= l; ++j) {
          f = a(i, j);
          g = e[j] - hh * f;
          e[j] = g;
          for (int k = 0; k <= j; ++k) {
            a(j, k) -= f * e[k] + g * a(i, k);
          }
        }
      }
    } else {
      e[i] = a(i, l);
    }
    d[i] = h;
  }
  d[0] = 0.0;
  e[0] = 0.0;
  // Accumulate the product of the reflectors into `a` (columns of Q).
  for (int i = 0; i < n; ++i) {
    const int l = i - 1;
    if (d[i] != 0.0) {
      for (int j = 0; j <= l; ++j) {
        double g = 0.0;
        for (int k = 0; k <= l; ++k) g += a(i, k) * a(k, j);
        for (int k = 0; k <= l; ++k) a(k, j) -= g * a(k, i);
      }
    }
    d[i] = a(i, i);
    a(i, i) = 1.0;
    for (int j = 0; j <= l; ++j) {
      a(j, i) = 0.0;
      a(i, j) = 0.0;
    }
  }
}

// Implicit-shift QL iteration on the tridiagonal (diag, sub). `zt` holds
// the accumulated transformation with basis vectors as ROWS (zt = Q^T),
// so the Givens updates rotate contiguous row pairs -- this O(d^3) loop
// is the hot path and vectorizes. Returns false if an eigenvalue fails
// to converge within the iteration cap (then the caller falls back to
// Jacobi; QL failure is essentially theoretical for symmetric input).
bool TridiagonalQL(std::vector<double>* diag, std::vector<double>* sub,
                   Matrix* zt_ptr) {
  std::vector<double>& d = *diag;
  std::vector<double>& e = *sub;
  Matrix& zt = *zt_ptr;
  const int n = static_cast<int>(d.size());
  if (n == 0) return true;
  for (int i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;
  for (int l = 0; l < n; ++l) {
    int iter = 0;
    while (true) {
      // Find the first negligible subdiagonal at or after l; the block
      // [l, m] is what the shift works on.
      int m = l;
      while (m < n - 1) {
        const double dd = std::fabs(d[m]) + std::fabs(d[m + 1]);
        if (std::fabs(e[m]) <= DBL_EPSILON * dd) break;
        ++m;
      }
      if (m == l) break;
      if (iter++ == 50) return false;
      DSWM_OBS_COUNT("linalg.eigen.ql_iterations", 1);
      // Wilkinson-style shift from the leading 2x2.
      double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
      double r = std::hypot(g, 1.0);
      g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
      double s = 1.0;
      double c = 1.0;
      double p = 0.0;
      int i = m - 1;
      for (; i >= l; --i) {
        double f = s * e[i];
        const double b = c * e[i];
        r = std::hypot(f, g);
        e[i + 1] = r;
        if (r == 0.0) {
          // Underflow in the chase: split the block and restart.
          d[i + 1] -= p;
          e[m] = 0.0;
          break;
        }
        s = f / r;
        c = g / r;
        g = d[i + 1] - p;
        r = (d[i] - g) * s + 2.0 * c * b;
        p = s * r;
        d[i + 1] = g + p;
        g = c * r - b;
        double* zi = zt.Row(i);
        double* zi1 = zt.Row(i + 1);
        for (int k = 0; k < n; ++k) {
          f = zi1[k];
          zi1[k] = s * zi[k] + c * f;
          zi[k] = c * zi[k] - s * f;
        }
      }
      if (r == 0.0 && i >= l) continue;
      d[l] -= p;
      e[l] = g;
      e[m] = 0.0;
    }
  }
  return true;
}

// Cyclic Jacobi fallback: robust, unconditionally convergent, but ~4-5x
// slower than tridiagonal QL at the sizes the sketch layer uses. `a` is
// the symmetrized input (destroyed; eigenvalues end up on its diagonal)
// and `v` accumulates the eigenvectors as rows.
void JacobiEigen(Matrix* a_ptr, Matrix* v_ptr) {
  Matrix& a = *a_ptr;
  Matrix& v = *v_ptr;
  const int d = a.rows();

  const double total = a.FrobeniusNormSquared();
  const double tol = total * 1e-24 + 1e-300;
  constexpr int kMaxSweeps = 64;

  for (int sweep = 0; sweep < kMaxSweeps; ++sweep) {
    if (OffDiagonalMass(a) <= tol) break;
    DSWM_OBS_COUNT("linalg.eigen.jacobi_sweeps", 1);
    for (int p = 0; p < d - 1; ++p) {
      for (int q = p + 1; q < d; ++q) {
        double* const ap = a.Row(p);
        double* const aq = a.Row(q);
        const double apq = ap[q];
        if (apq == 0.0) continue;
        const double app = ap[p];
        const double aqq = aq[q];
        // Skip rotations that cannot change anything at double precision.
        if (std::fabs(apq) <= 1e-18 * (std::fabs(app) + std::fabs(aqq))) {
          continue;
        }
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        // A <- J^T A J. A is kept exactly symmetric, so the column halves
        // of the update are mirror copies of the row halves: rotate the two
        // contiguous rows (vectorizable), patch the 2x2 pivot block with
        // the closed-form result (the pivot is annihilated exactly), then
        // mirror the rows back into columns p and q. This replaces the
        // strided column-rotation pass of the textbook formulation.
        for (int k = 0; k < d; ++k) {
          const double apk = ap[k];
          const double aqk = aq[k];
          ap[k] = c * apk - s * aqk;
          aq[k] = s * apk + c * aqk;
        }
        ap[p] = app - t * apq;
        aq[q] = aqq + t * apq;
        ap[q] = 0.0;
        aq[p] = 0.0;
        double* cp = &a(0, p);
        double* cq = &a(0, q);
        for (int k = 0; k < d; ++k, cp += d, cq += d) {
          *cp = ap[k];
          *cq = aq[k];
        }
        // Accumulate eigenvectors: V <- V J. We keep eigenvectors as rows
        // of the result, so accumulate into rows here.
        double* const vp = v.Row(p);
        double* const vq = v.Row(q);
        for (int k = 0; k < d; ++k) {
          const double vpk = vp[k];
          const double vqk = vq[k];
          vp[k] = c * vpk - s * vqk;
          vq[k] = s * vpk + c * vqk;
        }
      }
    }
  }
}

// Symmetrized copy: robust to tiny asymmetries from accumulated
// floating-point updates (C_hat += lambda v v^T etc).
Matrix Symmetrize(const Matrix& input) {
  const int d = input.rows();
  Matrix a(d, d);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) a(i, j) = 0.5 * (input(i, j) + input(j, i));
  }
  return a;
}

EigenResult SortDescending(std::vector<double>* values, Matrix* vectors_rows) {
  const int d = static_cast<int>(values->size());
  std::vector<int> order(d);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [values](int i, int j) {
    return (*values)[i] > (*values)[j];
  });
  EigenResult result;
  result.values.resize(d);
  result.vectors = Matrix(d, d);
  for (int i = 0; i < d; ++i) {
    result.values[i] = (*values)[order[i]];
    result.vectors.SetRow(i, vectors_rows->Row(order[i]));
  }
  return result;
}

}  // namespace

EigenResult SymmetricEigen(const Matrix& input) {
  DSWM_CHECK_EQ(input.rows(), input.cols());
  const int d = input.rows();
  DSWM_OBS_COUNT("linalg.eigen.calls", 1);

  // Fast path: Householder tridiagonalization + implicit-shift QL with
  // row-major eigenvector accumulation. ~4-5x cheaper than cyclic Jacobi
  // at the n = 2*ell Gram sizes the FrequentDirections shrink produces.
  Matrix a = Symmetrize(input);
  std::vector<double> diag;
  std::vector<double> sub;
  Tridiagonalize(&a, &diag, &sub);
  // zt = Q^T: rows of zt are the columns of the accumulated Q, so the QL
  // Givens rotations touch contiguous memory.
  Matrix zt(d, d);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < d; ++j) zt(i, j) = a(j, i);
  }
  if (TridiagonalQL(&diag, &sub, &zt)) {
    return SortDescending(&diag, &zt);
  }

  // QL failed to converge (essentially theoretical): fall back to the
  // unconditionally convergent Jacobi sweeps.
  Matrix jacobi_a = Symmetrize(input);
  Matrix v = Matrix::Identity(d);
  JacobiEigen(&jacobi_a, &v);
  std::vector<double> values(d);
  for (int i = 0; i < d; ++i) values[i] = jacobi_a(i, i);
  return SortDescending(&values, &v);
}

double SpectralNormExact(const Matrix& a) {
  const EigenResult eig = SymmetricEigen(a);
  double m = 0.0;
  for (double lambda : eig.values) m = std::max(m, std::fabs(lambda));
  return m;
}

}  // namespace dswm
