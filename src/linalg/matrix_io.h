// Matrix (de)serialization: a versioned little-endian binary format and
// a human-readable text form. Lets applications persist tracked sketches
// (e.g. freeze a reference-window PCA basis to disk and reload it in a
// later monitoring session).

#ifndef DSWM_LINALG_MATRIX_IO_H_
#define DSWM_LINALG_MATRIX_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "linalg/matrix.h"

namespace dswm {

/// Writes `m` in the dswm binary format ("DSWM" magic, version, shape,
/// row-major doubles).
Status WriteMatrixBinary(const Matrix& m, std::ostream* out);
Status SaveMatrixBinary(const Matrix& m, const std::string& path);

/// Reads a matrix written by WriteMatrixBinary. Rejects corrupt or
/// truncated input.
StatusOr<Matrix> ReadMatrixBinary(std::istream* in);
StatusOr<Matrix> LoadMatrixBinary(const std::string& path);

/// Writes "rows cols" then one whitespace-separated row per line, full
/// precision (round-trips exactly through text).
Status WriteMatrixText(const Matrix& m, std::ostream* out);

/// Reads the text form.
StatusOr<Matrix> ReadMatrixText(std::istream* in);

}  // namespace dswm

#endif  // DSWM_LINALG_MATRIX_IO_H_
