#include "linalg/bidiag_svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace dswm {

namespace {

// Givens pair with c*a + s*b = r >= 0 and -s*a + c*b = 0.
void GivensFromPair(double a, double b, double* c, double* s) {
  const double r = std::hypot(a, b);
  if (r == 0.0) {
    *c = 1.0;
    *s = 0.0;
    return;
  }
  *c = a / r;
  *s = b / r;
}

// cols (i, j) of m:  col_i' = c col_i + s col_j;  col_j' = -s col_i + c col_j.
void RotateColumns(Matrix* m, int i, int j, double c, double s) {
  for (int k = 0; k < m->rows(); ++k) {
    const double a = (*m)(k, i);
    const double b = (*m)(k, j);
    (*m)(k, i) = c * a + s * b;
    (*m)(k, j) = -s * a + c * b;
  }
}

// rows (i, j) of m:  row_i' = c row_i + s row_j;  row_j' = -s row_i + c row_j.
void RotateRows(Matrix* m, int i, int j, double c, double s) {
  double* ri = m->Row(i);
  double* rj = m->Row(j);
  for (int k = 0; k < m->cols(); ++k) {
    const double a = ri[k];
    const double b = rj[k];
    ri[k] = c * a + s * b;
    rj[k] = -s * a + c * b;
  }
}

struct Bidiagonal {
  std::vector<double> diag;    // d[0..m-1]
  std::vector<double> super;   // e[0..m-2], entry (i, i+1)
  Matrix u;                    // n x m with A = U B V^T
  Matrix vt;                   // m x d
};

// Householder bidiagonalization of a (n x d, n >= d).
Bidiagonal Bidiagonalize(const Matrix& a) {
  const int n = a.rows();
  const int d = a.cols();
  Matrix w = a;

  // Householder vectors: left[k] lives in rows k..n-1, right[k] in
  // columns k+1..d-1 of row k.
  std::vector<std::vector<double>> left(d);
  std::vector<std::vector<double>> right(d);
  std::vector<double> left_beta(d, 0.0);
  std::vector<double> right_beta(d, 0.0);

  for (int k = 0; k < d; ++k) {
    // Left Householder: zero column k below the diagonal.
    {
      double norm2 = 0.0;
      for (int i = k; i < n; ++i) norm2 += w(i, k) * w(i, k);
      const double norm = std::sqrt(norm2);
      if (norm > 0.0) {
        const double alpha = w(k, k) >= 0.0 ? -norm : norm;
        std::vector<double>& v = left[k];
        v.assign(n - k, 0.0);
        double vnorm2 = 0.0;
        for (int i = k; i < n; ++i) {
          v[i - k] = w(i, k) + (i == k ? -alpha : 0.0);
          vnorm2 += v[i - k] * v[i - k];
        }
        if (vnorm2 > 0.0) {
          left_beta[k] = 2.0 / vnorm2;
          for (int j = k; j < d; ++j) {
            double dot = 0.0;
            for (int i = k; i < n; ++i) dot += v[i - k] * w(i, j);
            const double f = left_beta[k] * dot;
            for (int i = k; i < n; ++i) w(i, j) -= f * v[i - k];
          }
        }
      }
    }
    // Right Householder: zero row k beyond the superdiagonal.
    if (k < d - 2) {
      double norm2 = 0.0;
      for (int j = k + 1; j < d; ++j) norm2 += w(k, j) * w(k, j);
      const double norm = std::sqrt(norm2);
      if (norm > 0.0) {
        const double alpha = w(k, k + 1) >= 0.0 ? -norm : norm;
        std::vector<double>& v = right[k];
        v.assign(d - k - 1, 0.0);
        double vnorm2 = 0.0;
        for (int j = k + 1; j < d; ++j) {
          v[j - k - 1] = w(k, j) + (j == k + 1 ? -alpha : 0.0);
          vnorm2 += v[j - k - 1] * v[j - k - 1];
        }
        if (vnorm2 > 0.0) {
          right_beta[k] = 2.0 / vnorm2;
          for (int i = k; i < n; ++i) {
            double dot = 0.0;
            for (int j = k + 1; j < d; ++j) dot += v[j - k - 1] * w(i, j);
            const double f = right_beta[k] * dot;
            for (int j = k + 1; j < d; ++j) w(i, j) -= f * v[j - k - 1];
          }
        }
      }
    }
  }

  Bidiagonal b;
  b.diag.resize(d);
  b.super.assign(std::max(d - 1, 0), 0.0);
  for (int k = 0; k < d; ++k) {
    b.diag[k] = w(k, k);
    if (k + 1 < d) b.super[k] = w(k, k + 1);
  }

  // Back-accumulate U (n x d): U = H_0 H_1 ... H_{d-1} restricted to the
  // first d columns of the identity.
  b.u = Matrix(n, d);
  for (int i = 0; i < std::min(n, d); ++i) b.u(i, i) = 1.0;
  for (int k = d - 1; k >= 0; --k) {
    if (left_beta[k] == 0.0) continue;
    const std::vector<double>& v = left[k];
    for (int j = 0; j < d; ++j) {
      double dot = 0.0;
      for (int i = k; i < n; ++i) dot += v[i - k] * b.u(i, j);
      const double f = left_beta[k] * dot;
      for (int i = k; i < n; ++i) b.u(i, j) -= f * v[i - k];
    }
  }
  // Back-accumulate V^T (d x d): B = H_{d-1}..H_0 A G_0..G_{d-3}, so
  // V^T = G_{d-3} .. G_1 G_0 (each G is a symmetric reflector); apply
  // the reflectors in ascending order on the left of the identity.
  b.vt = Matrix::Identity(d);
  for (int k = 0; k <= d - 3; ++k) {
    if (right_beta[k] == 0.0) continue;
    const std::vector<double>& v = right[k];
    // V^T <- V^T with rows k+1..d-1 reflected.
    for (int j = 0; j < d; ++j) {
      double dot = 0.0;
      for (int i = k + 1; i < d; ++i) dot += v[i - k - 1] * b.vt(i, j);
      const double f = right_beta[k] * dot;
      for (int i = k + 1; i < d; ++i) b.vt(i, j) -= f * v[i - k - 1];
    }
  }
  return b;
}

// One implicit-shift Golub-Kahan QR step on the block [l..q] of B.
void GolubKahanStep(Bidiagonal* b, int l, int q) {
  std::vector<double>& d = b->diag;
  std::vector<double>& e = b->super;

  // Wilkinson shift from the trailing 2x2 of B^T B.
  const double dq1 = d[q - 1];
  const double dq = d[q];
  const double eq1 = (q - 2 >= l) ? e[q - 2] : 0.0;
  const double eq = e[q - 1];
  const double t11 = dq1 * dq1 + eq1 * eq1;
  const double t12 = dq1 * eq;
  const double t22 = dq * dq + eq * eq;
  double mu = t22;
  if (t12 != 0.0) {
    const double delta = (t11 - t22) / 2.0;
    const double denom =
        delta + (delta >= 0.0 ? 1.0 : -1.0) * std::hypot(delta, t12);
    if (denom != 0.0) mu = t22 - t12 * t12 / denom;
  }

  double c = 1.0;
  double s = 0.0;
  double bulge = 0.0;
  const double y0 = d[l] * d[l] - mu;
  const double z0 = d[l] * e[l];

  for (int k = l; k < q; ++k) {
    // Right rotation on columns (k, k+1).
    if (k == l) {
      GivensFromPair(y0, z0, &c, &s);
    } else {
      GivensFromPair(e[k - 1], bulge, &c, &s);
      e[k - 1] = c * e[k - 1] + s * bulge;
    }
    {
      const double dk = d[k];
      const double ek = e[k];
      const double dk1 = d[k + 1];
      d[k] = c * dk + s * ek;
      e[k] = -s * dk + c * ek;
      bulge = s * dk1;  // new entry at (k+1, k)
      d[k + 1] = c * dk1;
    }
    RotateRows(&b->vt, k, k + 1, c, s);

    // Left rotation on rows (k, k+1) to kill the subdiagonal bulge.
    GivensFromPair(d[k], bulge, &c, &s);
    {
      const double dk = d[k];
      const double ek = e[k];
      const double dk1 = d[k + 1];
      d[k] = c * dk + s * bulge;
      e[k] = c * ek + s * dk1;
      d[k + 1] = -s * ek + c * dk1;
      if (k + 1 < q) {
        bulge = s * e[k + 1];  // new entry at (k, k+2)
        e[k + 1] = c * e[k + 1];
      }
    }
    RotateColumns(&b->u, k, k + 1, c, s);
  }
}

// Chase away e[i] when d[i] is (numerically) zero: left rotations of row
// i against rows i+1..q.
void ZeroDiagonalChase(Bidiagonal* b, int i, int q) {
  std::vector<double>& d = b->diag;
  std::vector<double>& e = b->super;
  double f = e[i];
  e[i] = 0.0;
  for (int j = i + 1; j <= q && f != 0.0; ++j) {
    const double g = d[j];
    const double r = std::hypot(f, g);
    const double c = g / r;
    const double s = f / r;
    d[j] = r;
    // U' : col_i' = c U_i - s U_j ; col_j' = s U_i + c U_j.
    for (int k = 0; k < b->u.rows(); ++k) {
      const double a = b->u(k, i);
      const double bb = b->u(k, j);
      b->u(k, i) = c * a - s * bb;
      b->u(k, j) = s * a + c * bb;
    }
    if (j < q) {
      f = -s * e[j];
      e[j] = c * e[j];
    }
  }
}

void DiagonalizeBidiagonal(Bidiagonal* b) {
  std::vector<double>& d = b->diag;
  std::vector<double>& e = b->super;
  const int m = static_cast<int>(d.size());
  if (m <= 1) return;

  double scale = 0.0;
  for (int i = 0; i < m; ++i) {
    scale = std::max(scale, std::fabs(d[i]));
    if (i + 1 < m) scale = std::max(scale, std::fabs(e[i]));
  }
  if (scale == 0.0) return;
  const double eps = 1e-15;

  int iterations = 0;
  const int max_iterations = 60 * m;
  while (iterations++ < max_iterations) {
    // Deflate negligible superdiagonals.
    for (int i = 0; i + 1 < m; ++i) {
      if (std::fabs(e[i]) <=
          eps * (std::fabs(d[i]) + std::fabs(d[i + 1]) + scale * 1e-3)) {
        e[i] = 0.0;
      }
    }
    // Find the trailing fully-diagonal part.
    int q = m - 1;
    while (q > 0 && e[q - 1] == 0.0) --q;
    if (q == 0) break;  // fully diagonal
    // Find the start of the active block.
    int l = q - 1;
    while (l > 0 && e[l - 1] != 0.0) --l;

    // Zero diagonal inside the block? Chase its superdiagonal away first.
    bool chased = false;
    for (int i = l; i < q; ++i) {
      if (std::fabs(d[i]) <= eps * scale) {
        d[i] = 0.0;
        ZeroDiagonalChase(b, i, q);
        chased = true;
        break;
      }
    }
    if (chased) continue;

    GolubKahanStep(b, l, q);
  }
}

}  // namespace

SvdResult BidiagonalSvd(const Matrix& a, double rel_tol) {
  const int n = a.rows();
  const int d = a.cols();
  SvdResult result;
  if (n == 0 || d == 0) {
    result.u = Matrix(n, 0);
    result.vt = Matrix(0, d);
    return result;
  }
  if (n < d) {
    // A = U S V^T  <=>  A^T = V S U^T.
    SvdResult t = BidiagonalSvd(a.Transposed(), rel_tol);
    result.sigma = std::move(t.sigma);
    result.u = t.vt.Transposed();
    result.vt = t.u.Transposed();
    return result;
  }

  Bidiagonal b = Bidiagonalize(a);
  DiagonalizeBidiagonal(&b);

  const int m = static_cast<int>(b.diag.size());
  // Make singular values nonnegative (flip the V^T row).
  for (int i = 0; i < m; ++i) {
    if (b.diag[i] < 0.0) {
      b.diag[i] = -b.diag[i];
      Scale(b.vt.Row(i), d, -1.0);
    }
  }
  // Sort descending.
  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&b](int i, int j) { return b.diag[i] > b.diag[j]; });

  const double sigma_max = m > 0 ? b.diag[order[0]] : 0.0;
  const double cutoff = std::max(rel_tol * sigma_max, 0.0);
  int r = 0;
  while (r < m && b.diag[order[r]] > cutoff) ++r;
  if (rel_tol == 0.0) {
    // Keep numerically-nonzero values only.
    while (r > 0 && b.diag[order[r - 1]] <= 1e-300) --r;
  }

  result.sigma.resize(r);
  result.u = Matrix(n, r);
  result.vt = Matrix(r, d);
  for (int i = 0; i < r; ++i) {
    const int p = order[i];
    result.sigma[i] = b.diag[p];
    result.vt.SetRow(i, b.vt.Row(p));
    for (int k = 0; k < n; ++k) result.u(k, i) = b.u(k, p);
  }
  return result;
}

}  // namespace dswm
