#include "linalg/matrix_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>

namespace dswm {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'W', 'M'};
constexpr uint32_t kVersion = 1;

}  // namespace

Status WriteMatrixBinary(const Matrix& m, std::ostream* out) {
  out->write(kMagic, 4);
  const uint32_t version = kVersion;
  const int64_t rows = m.rows();
  const int64_t cols = m.cols();
  out->write(reinterpret_cast<const char*>(&version), sizeof(version));
  out->write(reinterpret_cast<const char*>(&rows), sizeof(rows));
  out->write(reinterpret_cast<const char*>(&cols), sizeof(cols));
  out->write(reinterpret_cast<const char*>(m.data()),
             static_cast<std::streamsize>(rows * cols * sizeof(double)));
  if (!*out) return Status::IoError("matrix write failed");
  return Status::OK();
}

StatusOr<Matrix> ReadMatrixBinary(std::istream* in) {
  char magic[4];
  in->read(magic, 4);
  if (!*in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic: not a dswm matrix");
  }
  uint32_t version = 0;
  int64_t rows = 0;
  int64_t cols = 0;
  in->read(reinterpret_cast<char*>(&version), sizeof(version));
  in->read(reinterpret_cast<char*>(&rows), sizeof(rows));
  in->read(reinterpret_cast<char*>(&cols), sizeof(cols));
  if (!*in) return Status::InvalidArgument("truncated matrix header");
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported matrix format version " +
                                   std::to_string(version));
  }
  if (rows < 0 || cols < 0 || rows > (1LL << 32) || cols > (1LL << 32)) {
    return Status::InvalidArgument("implausible matrix shape");
  }
  Matrix m(static_cast<int>(rows), static_cast<int>(cols));
  in->read(reinterpret_cast<char*>(m.data()),
           static_cast<std::streamsize>(rows * cols * sizeof(double)));
  if (!*in) return Status::InvalidArgument("truncated matrix payload");
  return m;
}

Status SaveMatrixBinary(const Matrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return WriteMatrixBinary(m, &out);
}

StatusOr<Matrix> LoadMatrixBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadMatrixBinary(&in);
}

Status WriteMatrixText(const Matrix& m, std::ostream* out) {
  *out << m.rows() << ' ' << m.cols() << '\n';
  *out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      if (j > 0) *out << ' ';
      *out << m(i, j);
    }
    *out << '\n';
  }
  if (!*out) return Status::IoError("matrix write failed");
  return Status::OK();
}

StatusOr<Matrix> ReadMatrixText(std::istream* in) {
  long long rows = -1;
  long long cols = -1;
  if (!(*in >> rows >> cols) || rows < 0 || cols < 0) {
    return Status::InvalidArgument("bad text matrix header");
  }
  Matrix m(static_cast<int>(rows), static_cast<int>(cols));
  for (long long i = 0; i < rows; ++i) {
    for (long long j = 0; j < cols; ++j) {
      if (!(*in >> m(static_cast<int>(i), static_cast<int>(j)))) {
        return Status::InvalidArgument("truncated text matrix");
      }
    }
  }
  return m;
}

}  // namespace dswm
