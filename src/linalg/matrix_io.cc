#include "linalg/matrix_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <ostream>
#include <vector>

namespace dswm {

namespace {

constexpr char kMagic[4] = {'D', 'S', 'W', 'M'};
constexpr uint32_t kVersion = 1;

// Binary I/O is staged through a char buffer with std::memcpy (which takes
// void*, needing no cast) instead of reinterpret_cast'ing object pointers
// to char*: type-punning casts are confined to src/net framing by semlint
// rule cast-confinement, and matrix I/O is nowhere near hot enough for the
// extra copy to matter.
template <typename T>
void WritePod(std::ostream* out, const T& v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->write(buf, sizeof(T));
}

template <typename T>
void ReadPod(std::istream* in, T* v) {
  char buf[sizeof(T)];
  in->read(buf, sizeof(T));
  if (*in) std::memcpy(v, buf, sizeof(T));
}

}  // namespace

Status WriteMatrixBinary(const Matrix& m, std::ostream* out) {
  out->write(kMagic, 4);
  const int64_t rows = m.rows();
  const int64_t cols = m.cols();
  WritePod(out, kVersion);
  WritePod(out, rows);
  WritePod(out, cols);
  // Skip the payload entirely for 0-element matrices: an empty Matrix (and
  // an empty staging vector) may hand out nullptr, which memcpy and stream
  // I/O must never see even with a zero count.
  const size_t payload = static_cast<size_t>(rows * cols) * sizeof(double);
  if (payload != 0) {
    std::vector<char> buf(payload);
    std::memcpy(buf.data(), m.data(), payload);
    out->write(buf.data(), static_cast<std::streamsize>(payload));
  }
  if (!*out) return Status::IoError("matrix write failed");
  return Status::OK();
}

StatusOr<Matrix> ReadMatrixBinary(std::istream* in) {
  char magic[4];
  in->read(magic, 4);
  if (!*in || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::InvalidArgument("bad magic: not a dswm matrix");
  }
  uint32_t version = 0;
  int64_t rows = 0;
  int64_t cols = 0;
  ReadPod(in, &version);
  ReadPod(in, &rows);
  ReadPod(in, &cols);
  if (!*in) return Status::InvalidArgument("truncated matrix header");
  if (version != kVersion) {
    return Status::InvalidArgument("unsupported matrix format version " +
                                   std::to_string(version));
  }
  if (rows < 0 || cols < 0 || rows > (1LL << 32) || cols > (1LL << 32)) {
    return Status::InvalidArgument("implausible matrix shape");
  }
  Matrix m(static_cast<int>(rows), static_cast<int>(cols));
  const size_t payload = static_cast<size_t>(rows * cols) * sizeof(double);
  if (payload != 0) {
    std::vector<char> buf(payload);
    in->read(buf.data(), static_cast<std::streamsize>(payload));
    if (!*in) return Status::InvalidArgument("truncated matrix payload");
    std::memcpy(m.data(), buf.data(), payload);
  }
  return m;
}

Status SaveMatrixBinary(const Matrix& m, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return WriteMatrixBinary(m, &out);
}

StatusOr<Matrix> LoadMatrixBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  return ReadMatrixBinary(&in);
}

Status WriteMatrixText(const Matrix& m, std::ostream* out) {
  *out << m.rows() << ' ' << m.cols() << '\n';
  *out << std::setprecision(std::numeric_limits<double>::max_digits10);
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) {
      if (j > 0) *out << ' ';
      *out << m(i, j);
    }
    *out << '\n';
  }
  if (!*out) return Status::IoError("matrix write failed");
  return Status::OK();
}

StatusOr<Matrix> ReadMatrixText(std::istream* in) {
  long long rows = -1;
  long long cols = -1;
  if (!(*in >> rows >> cols) || rows < 0 || cols < 0) {
    return Status::InvalidArgument("bad text matrix header");
  }
  Matrix m(static_cast<int>(rows), static_cast<int>(cols));
  for (long long i = 0; i < rows; ++i) {
    for (long long j = 0; j < cols; ++j) {
      if (!(*in >> m(static_cast<int>(i), static_cast<int>(j)))) {
        return Status::InvalidArgument("truncated text matrix");
      }
    }
  }
  return m;
}

}  // namespace dswm
