// High-accuracy SVD via Householder bidiagonalization and Golub-Kahan
// implicit-shift QR iteration.
//
// The Gram-side SVD (svd.h) squares the condition number, losing singular
// values below ~sqrt(eps_machine) * sigma_max; that is fine for sketch
// shrinking, but library users computing PCA residuals or ill-conditioned
// spectra need the numerically-sound path. This decomposition computes
// all singular values to ~eps_machine * sigma_max.
//
// Cost: O(n d^2) for the bidiagonalization plus O(d^2) per QR sweep.

#ifndef DSWM_LINALG_BIDIAG_SVD_H_
#define DSWM_LINALG_BIDIAG_SVD_H_

#include "linalg/svd.h"

namespace dswm {

/// Thin SVD of `a` (any shape) computed without forming a Gram matrix.
/// Singular values below `rel_tol * sigma_max` are truncated (pass 0 to
/// keep all numerically-nonzero values).
[[nodiscard]] SvdResult BidiagonalSvd(const Matrix& a, double rel_tol = 0.0);

}  // namespace dswm

#endif  // DSWM_LINALG_BIDIAG_SVD_H_
