// Householder QR and random orthonormal matrices.
//
// Used by the SYNTHETIC workload generator (the paper's A = S D U + N/zeta
// requires a random U with U U^T = I) and by tests that need controlled
// spectra.

#ifndef DSWM_LINALG_QR_H_
#define DSWM_LINALG_QR_H_

#include "common/rng.h"
#include "linalg/matrix.h"

namespace dswm {

/// QR factorization A = Q R with Q (n x k, orthonormal columns) and
/// R (k x n_cols upper triangular), k = min(rows, cols).
struct QrResult {
  Matrix q;
  Matrix r;
};

/// Householder QR of `a` (thin form).
[[nodiscard]] QrResult HouseholderQr(const Matrix& a);

/// Returns a k x d matrix with orthonormal rows (k <= d), Haar-ish
/// distributed: QR of a Gaussian matrix.
[[nodiscard]] Matrix RandomOrthonormalRows(int k, int d, Rng* rng);

}  // namespace dswm

#endif  // DSWM_LINALG_QR_H_
