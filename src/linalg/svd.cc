#include "linalg/svd.h"

#include <algorithm>
#include <cmath>

#include "linalg/symmetric_eigen.h"

namespace dswm {

void OrthonormalizeRows(Matrix* m, int r) {
  for (int i = 0; i < r; ++i) {
    double* vi = m->Row(i);
    for (int pass = 0; pass < 2; ++pass) {
      for (int j = 0; j < i; ++j) {
        const double proj = Dot(vi, m->Row(j), m->cols());
        Axpy(-proj, m->Row(j), vi, m->cols());
      }
    }
    const double norm = std::sqrt(NormSquared(vi, m->cols()));
    if (norm > 0.0) Scale(vi, m->cols(), 1.0 / norm);
  }
}

RightSvdResult RightSvd(const Matrix& a) {
  RightSvdResult result;
  const int n = a.rows();
  const int d = a.cols();
  if (n == 0 || d == 0) {
    result.vt = Matrix(0, d);
    return result;
  }
  const int r = std::min(n, d);

  if (n <= d) {
    // Small Gram: G = A A^T (n x n); eigenvectors u_i give
    // v_i = A^T u_i / sigma_i.
    const EigenResult eig = SymmetricEigen(Gram(a));
    result.sigma_squared.resize(r);
    result.vt = Matrix(r, d);
    const double lead = std::max(eig.values.empty() ? 0.0 : eig.values[0], 0.0);
    for (int i = 0; i < r; ++i) {
      const double lambda = std::max(eig.values[i], 0.0);
      result.sigma_squared[i] = lambda;
      if (lambda > lead * 1e-26 && lambda > 0.0) {
        MatTVec(a, eig.vectors.Row(i), result.vt.Row(i));
        Scale(result.vt.Row(i), d, 1.0 / std::sqrt(lambda));
      }
      // else: leave a zero row; its sigma is (numerically) zero.
    }
    OrthonormalizeRows(&result.vt, r);
  } else {
    // Large row count: G = A^T A (d x d); its eigenvectors are the v_i.
    const EigenResult eig = SymmetricEigen(GramTranspose(a));
    result.sigma_squared.resize(r);
    result.vt = Matrix(r, d);
    for (int i = 0; i < r; ++i) {
      result.sigma_squared[i] = std::max(eig.values[i], 0.0);
      result.vt.SetRow(i, eig.vectors.Row(i));
    }
  }
  return result;
}

SvdResult ThinSvd(const Matrix& a, double rel_tol) {
  SvdResult result;
  const int n = a.rows();
  const int d = a.cols();
  RightSvdResult right = RightSvd(a);
  const int r_full = static_cast<int>(right.sigma_squared.size());
  const double sigma_max =
      r_full > 0 ? std::sqrt(std::max(right.sigma_squared[0], 0.0)) : 0.0;
  const double cutoff = std::max(rel_tol * sigma_max, 0.0);

  int r = 0;
  while (r < r_full && std::sqrt(right.sigma_squared[r]) > cutoff) ++r;

  result.sigma.resize(r);
  result.vt = Matrix(r, d);
  result.u = Matrix(n, r);
  for (int i = 0; i < r; ++i) {
    result.sigma[i] = std::sqrt(right.sigma_squared[i]);
    result.vt.SetRow(i, right.vt.Row(i));
  }
  // u_i = A v_i / sigma_i.
  std::vector<double> col(n);
  for (int i = 0; i < r; ++i) {
    MatVec(a, result.vt.Row(i), col.data());
    const double inv = 1.0 / result.sigma[i];
    for (int k = 0; k < n; ++k) result.u(k, i) = col[k] * inv;
  }
  return result;
}

}  // namespace dswm
