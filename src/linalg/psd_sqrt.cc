#include "linalg/psd_sqrt.h"

#include <cmath>

#include "linalg/symmetric_eigen.h"
#include "obs/metrics.h"

namespace dswm {

Matrix PsdSqrt(const Matrix& c, double rel_tol) {
  DSWM_CHECK_EQ(c.rows(), c.cols());
  return PsdSqrtFromEigen(SymmetricEigen(c), rel_tol);
}

Matrix PsdSqrtFromEigen(const EigenResult& eig, double rel_tol) {
  const int d = eig.vectors.rows();
  DSWM_OBS_COUNT("linalg.psd_sqrt.calls", 1);
  const double lead = eig.values.empty() ? 0.0 : std::max(eig.values[0], 0.0);
  const double cutoff = lead * rel_tol;

  int r = 0;
  while (r < d && eig.values[r] > cutoff) ++r;

  Matrix b(r, d);
  for (int i = 0; i < r; ++i) {
    const double s = std::sqrt(eig.values[i]);
    const double* v = eig.vectors.Row(i);
    double* row = b.Row(i);
    for (int j = 0; j < d; ++j) row[j] = s * v[j];
  }
  return b;
}

}  // namespace dswm
