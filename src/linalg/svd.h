// Thin singular value decomposition via the Gram matrix of the short side.
//
// For an n x d matrix the decomposition costs O(min(n,d)^3 + n*d*min(n,d)).
// This keeps Frequent Directions cheap even at large d (it decomposes the
// small 2l x 2l Gram matrix), while a full d x d decomposition (DA1's path)
// remains cubic in d -- matching the cost profile the paper reports.
//
// Accuracy note: squaring through the Gram matrix loses singular values
// below ~sqrt(machine-eps) * sigma_max. All uses here only need the
// dominant directions of sketches, where this is harmless.

#ifndef DSWM_LINALG_SVD_H_
#define DSWM_LINALG_SVD_H_

#include <vector>

#include "linalg/matrix.h"

namespace dswm {

/// Thin SVD A = U diag(sigma) Vt with singular values sorted descending.
struct SvdResult {
  /// n x r left singular vectors (columns orthonormal).
  Matrix u;
  /// r nonnegative singular values, descending.
  std::vector<double> sigma;
  /// r x d matrix whose row i is the right singular vector v_i.
  Matrix vt;
};

/// Computes the thin SVD of `a`. Singular values below
/// `rel_tol * sigma_max` are dropped (rank truncation); pass 0 to keep all
/// numerically-nonzero values. The default sits above the Gram-route noise
/// floor: eigenvalues of A A^T carry ~eps * lambda_max absolute error, so
/// sigmas below ~sqrt(eps) * sigma_max (~1.5e-8) are indistinguishable
/// from zero here. Use BidiagonalSvd to resolve smaller singular values.
[[nodiscard]] SvdResult ThinSvd(const Matrix& a, double rel_tol = 1e-7);

/// Right singular vectors and *squared* singular values of `a`, skipping the
/// computation of U. This is the exact shape Frequent Directions needs for
/// its shrink step.
struct RightSvdResult {
  /// Squared singular values (eigenvalues of A^T A), descending,
  /// length min(rows, cols).
  std::vector<double> sigma_squared;
  /// min(rows, cols) x cols right singular vectors as rows.
  Matrix vt;
};

/// Computes right singular vectors + squared singular values of `a`.
[[nodiscard]] RightSvdResult RightSvd(const Matrix& a);

/// Two-pass modified Gram-Schmidt re-orthonormalization of the first `r`
/// rows of `m` against each other; stabilizes vectors recovered through
/// near-degenerate Gram eigenpairs. Row i depends only on rows j < i, so
/// orthonormalizing a prefix matches orthonormalizing the full set on
/// that prefix. Zero rows stay zero.
void OrthonormalizeRows(Matrix* m, int r);

}  // namespace dswm

#endif  // DSWM_LINALG_SVD_H_
