// Spectral-norm estimation by power iteration.
//
// The covariance error ||A_w^T A_w - B^T B||_2 is the dominant eigenvalue
// magnitude of a symmetric (generally indefinite) d x d matrix. Power
// iteration converges to the dominant |lambda| at O(d^2) per step, which is
// what the benchmark driver and DA1's threshold check use instead of a full
// O(d^3) Jacobi decomposition.

#ifndef DSWM_LINALG_SPECTRAL_NORM_H_
#define DSWM_LINALG_SPECTRAL_NORM_H_

#include <functional>
#include <vector>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace dswm {

/// A symmetric linear operator y = M x on R^d, given as a callback so
/// callers can apply M implicitly (e.g. C_w x - B^T (B x)).
using SymmetricApplyFn = std::function<void(const double* x, double* y)>;

/// Estimates max |lambda(M)| for the symmetric operator `apply` of
/// dimension d by power iteration with a deterministic seeded start.
/// Relative accuracy is ~`tol` for matrices with any eigengap; for the
/// (measure-zero) gap-free worst case the estimate is a lower bound within
/// a few percent after `max_iters` steps -- ample for error reporting.
[[nodiscard]] double SpectralNormSym(const SymmetricApplyFn& apply, int d,
                       int max_iters = 300, double tol = 1e-9,
                       uint64_t seed = 0x5eed);

/// Convenience overload for an explicit symmetric matrix.
[[nodiscard]] double SpectralNormSym(const Matrix& m, int max_iters = 300,
                       double tol = 1e-9, uint64_t seed = 0x5eed);

/// As SpectralNormSym but warm-started from *warm (resized/seeded if it
/// does not match d); the converged iterate is written back, so repeated
/// calls against a slowly-drifting operator converge in a few steps.
[[nodiscard]] double SpectralNormSymWarm(const SymmetricApplyFn& apply, int d,
                           std::vector<double>* warm, int max_iters = 60,
                           double tol = 1e-6);

}  // namespace dswm

#endif  // DSWM_LINALG_SPECTRAL_NORM_H_
