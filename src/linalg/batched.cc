#include "linalg/batched.h"

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sketch/frequent_directions.h"

namespace dswm {

namespace {

// Batch widths seen by the engine; recorded once per batch call, so the
// histogram is deterministic at any thread count.
void RecordBatchSize(int count) {
  DSWM_OBS_HISTOGRAM("linalg.batched_eigen.batch_size",
                     (std::vector<long>{1, 2, 4, 8, 16, 32, 64, 128}),
                     static_cast<long>(count));
}

}  // namespace

void BatchedDispatch(int count, const std::function<void(int)>& body) {
  if (count <= 0) return;
  if (count == 1) {
    // A lone problem keeps the inner kernels' own parallelism; the batch
    // itself contributes no dispatch.
    body(0);
    return;
  }
  ThreadPool::Global()->ParallelFor(count, [&body](int begin, int end) {
    ThreadPool::NestedInlineScope inline_scope;
    for (int i = begin; i < end; ++i) body(i);
  });
}

std::vector<EigenResult> BatchedSymEigen(const Matrix* const* problems,
                                         int count) {
  std::vector<EigenResult> results(count > 0 ? count : 0);
  if (count <= 0) return results;
  const int d = problems[0]->rows();
  for (int i = 0; i < count; ++i) {
    DSWM_CHECK_EQ(problems[i]->rows(), d);
    DSWM_CHECK_EQ(problems[i]->cols(), d);
  }
  RecordBatchSize(count);
  BatchedDispatch(count, [problems, &results](int i) {
    results[i] = SymmetricEigen(*problems[i]);
  });
  return results;
}

std::vector<EigenResult> BatchedSymEigen(
    const std::vector<const Matrix*>& problems) {
  return BatchedSymEigen(problems.data(), static_cast<int>(problems.size()));
}

void BatchedFdShrink(FdShrinkJob* jobs, int count) {
  if (count <= 0) return;
  obs::Span span("batched_shrink");
  RecordBatchSize(count);
  BatchedDispatch(count, [jobs](int i) {
    FdShrinkJob& job = jobs[i];
    for (const FrequentDirections* src : job.sources) job.fd->Merge(*src);
    if (job.compact) job.fd->Compact();
  });
}

}  // namespace dswm
