// Symmetric eigendecomposition via Householder tridiagonalization +
// implicit-shift QL (cyclic Jacobi kept as a convergence fallback).
//
// Workhorse used by: DA1's decomposition of D = C - C_hat (Algorithm 4),
// the thin SVD (on the Gram matrix of the short side), the PSD matrix
// square root at the coordinator, and the IWMT significant-direction
// extraction.

#ifndef DSWM_LINALG_SYMMETRIC_EIGEN_H_
#define DSWM_LINALG_SYMMETRIC_EIGEN_H_

#include <vector>

#include "linalg/matrix.h"

namespace dswm {

/// Eigendecomposition A = sum_i lambda_i v_i v_i^T of a symmetric matrix.
struct EigenResult {
  /// Eigenvalues sorted by decreasing value (signed, not by magnitude).
  std::vector<double> values;
  /// Row i is the unit eigenvector for values[i]; shape d x d.
  Matrix vectors;
};

/// Decomposes the symmetric matrix `a` (only its symmetric part is used).
/// Householder reduction to tridiagonal form followed by implicit-shift QL
/// with eigenvectors accumulated as rows; O(d^3) with a small constant.
/// Falls back to cyclic Jacobi sweeps if QL fails to converge (essentially
/// theoretical for symmetric input). Accurate to machine precision.
[[nodiscard]] EigenResult SymmetricEigen(const Matrix& a);

/// Largest eigenvalue magnitude max_i |lambda_i|, i.e. the spectral norm of
/// a symmetric matrix, computed exactly via Jacobi. Prefer
/// SpectralNormSym (spectral_norm.h) in hot paths.
[[nodiscard]] double SpectralNormExact(const Matrix& a);

}  // namespace dswm

#endif  // DSWM_LINALG_SYMMETRIC_EIGEN_H_
