// Matrix square root of a positive semidefinite covariance estimate.
//
// DA1/DA2 coordinators accumulate C_hat = B^T B as a d x d matrix; a
// caller asking for the sketch itself receives B = Sigma^{1/2} V^T
// (Algorithm 4/5, QUERY()). Accumulated updates can leave C_hat slightly
// indefinite, so negative eigenvalues are clamped to zero.

#ifndef DSWM_LINALG_PSD_SQRT_H_
#define DSWM_LINALG_PSD_SQRT_H_

#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"

namespace dswm {

/// Returns an r x d matrix B with B^T B equal to the PSD projection of the
/// symmetric matrix `c` (negative eigenvalues clamped). Rows with
/// eigenvalue <= rel_tol * lambda_max are dropped, so r <= d.
[[nodiscard]] Matrix PsdSqrt(const Matrix& c, double rel_tol = 1e-12);

/// As PsdSqrt, from an already computed eigendecomposition of `c`.
/// PsdSqrt(c) == PsdSqrtFromEigen(SymmetricEigen(c)) bitwise; callers that
/// cache the decomposition (CovarianceEstimate::Eigen) share one
/// SymmetricEigen across every consumer of the same snapshot.
[[nodiscard]] Matrix PsdSqrtFromEigen(const EigenResult& eig,
                                      double rel_tol = 1e-12);

}  // namespace dswm

#endif  // DSWM_LINALG_PSD_SQRT_H_
