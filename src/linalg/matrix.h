// Dense row-major matrix and vector kernels.
//
// This is the numerical substrate for the whole library (the build
// environment has no Eigen). It provides exactly the operations the
// sketching and tracking algorithms need: BLAS-1/2/3 style kernels,
// Gram products, outer-product updates, and row views.

#ifndef DSWM_LINALG_MATRIX_H_
#define DSWM_LINALG_MATRIX_H_

#include <atomic>
#include <cstddef>
#include <cstring>
#include <vector>

#include "common/check.h"

namespace dswm {

/// Dense row-major matrix of doubles.
///
/// Rows are contiguous; `Row(i)` returns a pointer usable as a length-`cols`
/// vector. The class is a regular value type (copyable, movable).
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// Zero-initialized rows x cols matrix.
  Matrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<size_t>(rows) * cols, 0.0) {
    DSWM_CHECK_GE(rows, 0);
    DSWM_CHECK_GE(cols, 0);
  }

  /// d x d identity.
  [[nodiscard]] static Matrix Identity(int d);

  /// Matrix stays a regular value type, but deep copies bump a
  /// process-global counter so tests can assert a measured path performs
  /// no gratuitous copies (e.g. the driver's query-snapshot path). Moves
  /// are O(1) and uncounted.
  Matrix(const Matrix& other)
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
    copy_count_.fetch_add(1, std::memory_order_relaxed);
  }
  Matrix& operator=(const Matrix& other) {
    if (this != &other) {
      rows_ = other.rows_;
      cols_ = other.cols_;
      data_ = other.data_;
      copy_count_.fetch_add(1, std::memory_order_relaxed);
    }
    return *this;
  }
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Deep copies since process start (test hook; diff around the code
  /// under audit).
  [[nodiscard]] static long CopyCount() {
    return copy_count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return rows_ == 0 || cols_ == 0; }

  [[nodiscard]] double& operator()(int i, int j) {
    DSWM_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }
  [[nodiscard]] double operator()(int i, int j) const {
    DSWM_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }

  /// Bounds-checked access: CHECK-fails on out-of-range (i, j) in every
  /// build type. Prefer operator() in hot loops (DCHECK-only bounds).
  [[nodiscard]] double& at(int i, int j) {
    DSWM_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }
  [[nodiscard]] double at(int i, int j) const {
    DSWM_CHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[static_cast<size_t>(i) * cols_ + j];
  }

  [[nodiscard]] double* Row(int i) {
    DSWM_DCHECK(i >= 0 && i < rows_);
    return data_.data() + static_cast<size_t>(i) * cols_;
  }
  [[nodiscard]] const double* Row(int i) const {
    DSWM_DCHECK(i >= 0 && i < rows_);
    return data_.data() + static_cast<size_t>(i) * cols_;
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  /// Sets every entry to zero without reallocating.
  void SetZero() { std::memset(data_.data(), 0, data_.size() * sizeof(double)); }

  /// Copies `src` (length cols()) into row i.
  void SetRow(int i, const double* src) {
    std::memcpy(Row(i), src, sizeof(double) * cols_);
  }

  /// Pre-allocates storage for at least `rows` rows so subsequent
  /// AppendRow calls never reallocate; shape is unchanged. No-op when the
  /// current capacity already suffices.
  void Reserve(int rows);

  /// Appends a row (O(cols) amortized); keeps cols() fixed (or sets it if
  /// the matrix is empty).
  void AppendRow(const double* src, int len);

  /// Returns the transpose.
  [[nodiscard]] Matrix Transposed() const;

  /// Sum of squared entries, i.e. ||A||_F^2.
  [[nodiscard]] double FrobeniusNormSquared() const;

  /// this += alpha * other (same shape).
  void AddScaled(const Matrix& other, double alpha);

  /// this += alpha * v v^T where v has length cols(); requires square.
  void AddOuterProduct(const double* v, double alpha);

  /// As AddOuterProduct but touching only the listed nonzero coordinates of
  /// v (O(nnz^2)); used for sparse tf-idf style rows.
  void AddSparseOuterProduct(const double* v, const std::vector<int>& support,
                             double alpha);

  [[nodiscard]] bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
  }

 private:
  inline static std::atomic<long> copy_count_{0};

  int rows_;
  int cols_;
  std::vector<double> data_;
};

// ---- Vector kernels (operate on raw pointers of explicit length) ----------

/// Dot product of two length-n vectors.
[[nodiscard]] double Dot(const double* x, const double* y, int n);

/// Squared L2 norm.
[[nodiscard]] double NormSquared(const double* x, int n);

/// y += alpha * x.
void Axpy(double alpha, const double* x, double* y, int n);

/// x *= alpha.
void Scale(double* x, int n, double alpha);

// ---- Matrix kernels --------------------------------------------------------
//
// The production kernels (MatMul / Gram / GramTranspose and their *Prefix
// variants) are cache-blocked and register-tiled, and parallelize over row
// blocks of the output through ThreadPool::Global() when it has more than
// one thread. Every output element is owned by exactly one register
// accumulator that sums its reduction in ascending index order, so results
// are bit-identical to the naive `*Reference` oracles for finite inputs at
// any thread count (see DESIGN.md "Performance architecture").

/// y = A x (y length rows, x length cols).
void MatVec(const Matrix& a, const double* x, double* y);

/// y = A^T x (y length cols, x length rows).
void MatTVec(const Matrix& a, const double* x, double* y);

/// Returns A * B.
[[nodiscard]] Matrix MatMul(const Matrix& a, const Matrix& b);

/// Naive triple-loop oracle for MatMul; kept as the test/benchmark
/// reference for the blocked kernel.
[[nodiscard]] Matrix MatMulReference(const Matrix& a, const Matrix& b);

/// Returns A^T * A (cols x cols). This is the covariance Gram product used
/// throughout: for a sketch B it yields B^T B.
[[nodiscard]] Matrix GramTranspose(const Matrix& a);

/// A^T A over only the first `rows` rows of `a` (rows <= a.rows()). Lets
/// callers that keep live rows in a prefix of a larger buffer (the
/// zero-copy FrequentDirections shrink path) avoid materializing a copy.
[[nodiscard]] Matrix GramTransposePrefix(const Matrix& a, int rows);

/// Rank-1-update oracle for GramTranspose (the pre-blocking kernel).
[[nodiscard]] Matrix GramTransposeReference(const Matrix& a);

/// Returns A * A^T (rows x rows); used by the thin SVD on the short side.
[[nodiscard]] Matrix Gram(const Matrix& a);

/// A A^T over only the first `rows` rows of `a` (rows <= a.rows()).
[[nodiscard]] Matrix GramPrefix(const Matrix& a, int rows);

/// Dot-product oracle for Gram (the pre-blocking kernel).
[[nodiscard]] Matrix GramReference(const Matrix& a);

/// Returns A - B (same shape).
[[nodiscard]] Matrix Subtract(const Matrix& a, const Matrix& b);

/// Max absolute entry difference; used by tests.
[[nodiscard]] double MaxAbsDiff(const Matrix& a, const Matrix& b);

}  // namespace dswm

#endif  // DSWM_LINALG_MATRIX_H_
