#include "linalg/spectral_norm.h"

#include <cmath>
#include <vector>

namespace dswm {

double SpectralNormSym(const SymmetricApplyFn& apply, int d, int max_iters,
                       double tol, uint64_t seed) {
  DSWM_CHECK_GT(d, 0);
  Rng rng(seed);
  std::vector<double> x(d);
  std::vector<double> y(d);
  for (double& v : x) v = rng.NextGaussian();
  double xnorm = std::sqrt(NormSquared(x.data(), d));
  if (xnorm == 0.0) {
    x[0] = 1.0;
    xnorm = 1.0;
  }
  Scale(x.data(), d, 1.0 / xnorm);

  // Power iteration on M directly converges to the dominant |lambda| for a
  // symmetric indefinite M (the +/- sign flip does not affect |Rayleigh|),
  // except when lambda_max = -lambda_min exactly; iterating on M^2 (two
  // applies per step) removes that failure mode.
  double prev = 0.0;
  double est = 0.0;
  for (int it = 0; it < max_iters; ++it) {
    apply(x.data(), y.data());          // y = M x
    apply(y.data(), x.data());          // x = M^2 x  (pre-normalization)
    const double norm2 = std::sqrt(NormSquared(x.data(), d));
    if (norm2 == 0.0) return 0.0;       // x hit the null space: M is tiny.
    est = std::sqrt(norm2);             // ||M^2 x|| ~ lambda^2 for unit x.
    Scale(x.data(), d, 1.0 / norm2);
    if (it > 2 && std::fabs(est - prev) <= tol * std::fabs(est)) break;
    prev = est;
  }
  return est;
}

double SpectralNormSymWarm(const SymmetricApplyFn& apply, int d,
                           std::vector<double>* warm, int max_iters,
                           double tol) {
  DSWM_CHECK_GT(d, 0);
  std::vector<double>& x = *warm;
  if (static_cast<int>(x.size()) != d ||
      NormSquared(x.data(), d) == 0.0) {
    x.assign(d, 0.0);
    Rng rng(0xa11ce);
    for (double& v : x) v = rng.NextGaussian();
  }
  {
    const double n = std::sqrt(NormSquared(x.data(), d));
    Scale(x.data(), d, 1.0 / n);
  }
  // A dash of fresh randomness each call so a warm vector stuck in an
  // invariant subspace of a *changed* operator can escape.
  {
    Rng rng(0xbee5 + static_cast<uint64_t>(max_iters));
    for (int i = 0; i < d; ++i) x[i] += 1e-3 * rng.NextGaussian();
  }

  std::vector<double> y(d);
  double prev = 0.0;
  double est = 0.0;
  for (int it = 0; it < max_iters; ++it) {
    apply(x.data(), y.data());
    apply(y.data(), x.data());
    const double norm2 = std::sqrt(NormSquared(x.data(), d));
    if (norm2 == 0.0) return 0.0;
    est = std::sqrt(norm2);
    Scale(x.data(), d, 1.0 / norm2);
    if (it > 1 && std::fabs(est - prev) <= tol * std::fabs(est)) break;
    prev = est;
  }
  return est;
}

double SpectralNormSym(const Matrix& m, int max_iters, double tol,
                       uint64_t seed) {
  DSWM_CHECK_EQ(m.rows(), m.cols());
  if (m.rows() == 0) return 0.0;
  return SpectralNormSym(
      [&m](const double* x, double* y) { MatVec(m, x, y); }, m.rows(),
      max_iters, tol, seed);
}

}  // namespace dswm
