#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#if defined(__AVX__)
#include <immintrin.h>
#elif defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace dswm {

Matrix Matrix::Identity(int d) {
  Matrix m(d, d);
  for (int i = 0; i < d; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::Reserve(int rows) {
  DSWM_CHECK_GE(rows, 0);
  data_.reserve(static_cast<size_t>(rows) * cols_);
}

void Matrix::AppendRow(const double* src, int len) {
  if (rows_ == 0 && cols_ == 0) cols_ = len;
  DSWM_CHECK_EQ(len, cols_);
  data_.insert(data_.end(), src, src + len);
  ++rows_;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    const double* r = Row(i);
    for (int j = 0; j < cols_; ++j) t(j, i) = r[j];
  }
  return t;
}

double Matrix::FrobeniusNormSquared() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

void Matrix::AddScaled(const Matrix& other, double alpha) {
  DSWM_CHECK_EQ(rows_, other.rows_);
  DSWM_CHECK_EQ(cols_, other.cols_);
  const double* src = other.data();
  double* dst = data();
  const size_t n = data_.size();
  for (size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Matrix::AddOuterProduct(const double* v, double alpha) {
  DSWM_CHECK_EQ(rows_, cols_);
  for (int i = 0; i < rows_; ++i) {
    const double vi = alpha * v[i];
    if (vi == 0.0) continue;
    double* row = Row(i);
    for (int j = 0; j < cols_; ++j) row[j] += vi * v[j];
  }
}

void Matrix::AddSparseOuterProduct(const double* v,
                                   const std::vector<int>& support,
                                   double alpha) {
  DSWM_CHECK_EQ(rows_, cols_);
  for (int i : support) {
    const double vi = alpha * v[i];
    double* row = Row(i);
    for (int j : support) row[j] += vi * v[j];
  }
}

double Dot(const double* x, const double* y, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double NormSquared(const double* x, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += x[i] * x[i];
  return s;
}

void Axpy(double alpha, const double* x, double* y, int n) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(double* x, int n, double alpha) {
  for (int i = 0; i < n; ++i) x[i] *= alpha;
}

void MatVec(const Matrix& a, const double* x, double* y) {
  for (int i = 0; i < a.rows(); ++i) y[i] = Dot(a.Row(i), x, a.cols());
}

void MatTVec(const Matrix& a, const double* x, double* y) {
  std::fill(y, y + a.cols(), 0.0);
  for (int i = 0; i < a.rows(); ++i) Axpy(x[i], a.Row(i), y, a.cols());
}

// ---- Blocked kernels -------------------------------------------------------
//
// Geometry: each output tile holds kMr x kNr accumulators in registers and
// sums its reduction in ascending index order as one chain per element
// (never split across partial accumulators). Partial flushes store and
// reload exact doubles, so blocked, threaded, and naive results agree
// bitwise for finite inputs. Parallelism distributes whole row-tiles of
// the output; reductions are never split across threads.

namespace {

// Micro-tile rows / cols, sized so the accumulator tile occupies 8 of the
// 16 vector registers with room left for the A broadcasts and B loads; a
// wider tile spills the accumulators to the stack and halves throughput.
// AVX (4 doubles per ymm) carries a 4 x 8 tile, SSE2 (2 doubles per xmm)
// a 4 x 4 one. DSWM_AVX=ON (the default) builds this file with -mavx but
// never -mfma: every vector op is per-lane IEEE mul/add, so results stay
// bit-identical across the AVX, SSE2, and scalar bodies.
constexpr int kMr = 4;
#if defined(__AVX__)
constexpr int kNr = 8;
#else
constexpr int kNr = 4;
#endif
// Reduction slice processed between flushes of an output tile. Bounds the
// working set of the k-blocked kernels: a kKc x kNr B panel (8 KiB) stays
// L1-resident across all row tiles of a panel, and a kKc-column slice of A
// stays in L2 across panels.
constexpr int kKc = 256;
// Below this many multiply-adds the thread pool is not consulted.
constexpr long kParallelMulAddThreshold = 1L << 16;

[[nodiscard]] bool UsePool(const ThreadPool* pool, long mul_adds) {
  return pool->num_threads() > 1 && mul_adds >= kParallelMulAddThreshold;
}

// One multiply-accumulate step of an accumulator chain. The default build
// keeps a separate per-lane IEEE multiply and add so results stay
// bit-identical across the AVX / SSE2 / scalar bodies; a DSWM_FAST_MATH
// build compiles this file with -mfma and fuses the pair -- one rounding
// per step instead of two -- trading the memcmp oracle for a relative
// tolerance against the IEEE build (tests/linalg_fastmath_test.cc).
#if defined(__AVX__)
inline __m256d MulAdd(__m256d acc, __m256d a, __m256d b) {
#if defined(DSWM_FAST_MATH) && defined(__FMA__)
  return _mm256_fmadd_pd(a, b, acc);
#else
  return _mm256_add_pd(acc, _mm256_mul_pd(a, b));
#endif
}
#elif defined(__SSE2__)
inline __m128d MulAdd(__m128d acc, __m128d a, __m128d b) {
#if defined(DSWM_FAST_MATH) && defined(__FMA__)
  return _mm_fmadd_pd(a, b, acc);
#else
  return _mm_add_pd(acc, _mm_mul_pd(a, b));
#endif
}
#endif

// C[i0:i0+kMr) x [j0:j0+kNr) += A[i0:i0+kMr, k0:k1) * B[k0:k1, j0:j0+kNr)
// with the partial sums held in registers (interior tiles only). `first`
// starts the accumulator chains at zero; later k blocks reload the exact
// stored partials, so the per-element chain is one ascending-k sum.
//
// The SSE2 body is element-wise identical to the scalar one: mulpd/addpd
// are per-lane IEEE operations and intrinsics are never contracted to FMA,
// so each output element still accumulates as the same ascending-k chain.
#if defined(__AVX__)
// `bp` is the panel-major packed copy of B[k0:k1, j0:j0+kNr): kNr
// consecutive doubles per k, k ascending — sequential loads in the hot
// loop instead of a strided walk of B.
inline void MatMulTileFull(const Matrix& a, const double* bp, Matrix* c,
                           int i0, int j0, int k0, int k1, bool first) {
  const double* bk = bp;
  const double* a0 = a.Row(i0) + k0;
  const double* a1 = a.Row(i0 + 1) + k0;
  const double* a2 = a.Row(i0 + 2) + k0;
  const double* a3 = a.Row(i0 + 3) + k0;
  __m256d c00, c01, c10, c11, c20, c21, c30, c31;
  if (first) {
    c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 = _mm256_setzero_pd();
  } else {
    const double* r0 = c->Row(i0) + j0;
    const double* r1 = c->Row(i0 + 1) + j0;
    const double* r2 = c->Row(i0 + 2) + j0;
    const double* r3 = c->Row(i0 + 3) + j0;
    c00 = _mm256_loadu_pd(r0);
    c01 = _mm256_loadu_pd(r0 + 4);
    c10 = _mm256_loadu_pd(r1);
    c11 = _mm256_loadu_pd(r1 + 4);
    c20 = _mm256_loadu_pd(r2);
    c21 = _mm256_loadu_pd(r2 + 4);
    c30 = _mm256_loadu_pd(r3);
    c31 = _mm256_loadu_pd(r3 + 4);
  }
  const int len = k1 - k0;
  for (int k = 0; k < len; ++k) {
    const __m256d b0 = _mm256_loadu_pd(bk);
    const __m256d b1 = _mm256_loadu_pd(bk + 4);
    __m256d av = _mm256_broadcast_sd(a0 + k);
    c00 = MulAdd(c00, av, b0);
    c01 = MulAdd(c01, av, b1);
    av = _mm256_broadcast_sd(a1 + k);
    c10 = MulAdd(c10, av, b0);
    c11 = MulAdd(c11, av, b1);
    av = _mm256_broadcast_sd(a2 + k);
    c20 = MulAdd(c20, av, b0);
    c21 = MulAdd(c21, av, b1);
    av = _mm256_broadcast_sd(a3 + k);
    c30 = MulAdd(c30, av, b0);
    c31 = MulAdd(c31, av, b1);
    bk += kNr;
  }
  double* o0 = c->Row(i0) + j0;
  double* o1 = c->Row(i0 + 1) + j0;
  double* o2 = c->Row(i0 + 2) + j0;
  double* o3 = c->Row(i0 + 3) + j0;
  _mm256_storeu_pd(o0, c00);
  _mm256_storeu_pd(o0 + 4, c01);
  _mm256_storeu_pd(o1, c10);
  _mm256_storeu_pd(o1 + 4, c11);
  _mm256_storeu_pd(o2, c20);
  _mm256_storeu_pd(o2 + 4, c21);
  _mm256_storeu_pd(o3, c30);
  _mm256_storeu_pd(o3 + 4, c31);
}
#elif defined(__SSE2__)
// `bp` is the panel-major packed copy of B[k0:k1, j0:j0+kNr): kNr
// consecutive doubles per k, k ascending — sequential loads in the hot
// loop instead of a 4 KiB-strided walk of B.
inline void MatMulTileFull(const Matrix& a, const double* bp, Matrix* c,
                           int i0, int j0, int k0, int k1, bool first) {
  const double* bk = bp;
  const double* a0 = a.Row(i0) + k0;
  const double* a1 = a.Row(i0 + 1) + k0;
  const double* a2 = a.Row(i0 + 2) + k0;
  const double* a3 = a.Row(i0 + 3) + k0;
  __m128d c00, c01, c10, c11, c20, c21, c30, c31;
  if (first) {
    c00 = c01 = c10 = c11 = c20 = c21 = c30 = c31 = _mm_setzero_pd();
  } else {
    const double* r0 = c->Row(i0) + j0;
    const double* r1 = c->Row(i0 + 1) + j0;
    const double* r2 = c->Row(i0 + 2) + j0;
    const double* r3 = c->Row(i0 + 3) + j0;
    c00 = _mm_loadu_pd(r0);
    c01 = _mm_loadu_pd(r0 + 2);
    c10 = _mm_loadu_pd(r1);
    c11 = _mm_loadu_pd(r1 + 2);
    c20 = _mm_loadu_pd(r2);
    c21 = _mm_loadu_pd(r2 + 2);
    c30 = _mm_loadu_pd(r3);
    c31 = _mm_loadu_pd(r3 + 2);
  }
  // k is unrolled by two; each accumulator still receives its terms in
  // ascending k order within one chain, so no reassociation occurs.
  const int len = k1 - k0;
  int k = 0;
  for (; k + 2 <= len; k += 2) {
    __m128d b0 = _mm_loadu_pd(bk);
    __m128d b1 = _mm_loadu_pd(bk + 2);
    __m128d av = _mm_set1_pd(a0[k]);
    c00 = MulAdd(c00, av, b0);
    c01 = MulAdd(c01, av, b1);
    av = _mm_set1_pd(a1[k]);
    c10 = MulAdd(c10, av, b0);
    c11 = MulAdd(c11, av, b1);
    av = _mm_set1_pd(a2[k]);
    c20 = MulAdd(c20, av, b0);
    c21 = MulAdd(c21, av, b1);
    av = _mm_set1_pd(a3[k]);
    c30 = MulAdd(c30, av, b0);
    c31 = MulAdd(c31, av, b1);
    bk += kNr;
    b0 = _mm_loadu_pd(bk);
    b1 = _mm_loadu_pd(bk + 2);
    av = _mm_set1_pd(a0[k + 1]);
    c00 = MulAdd(c00, av, b0);
    c01 = MulAdd(c01, av, b1);
    av = _mm_set1_pd(a1[k + 1]);
    c10 = MulAdd(c10, av, b0);
    c11 = MulAdd(c11, av, b1);
    av = _mm_set1_pd(a2[k + 1]);
    c20 = MulAdd(c20, av, b0);
    c21 = MulAdd(c21, av, b1);
    av = _mm_set1_pd(a3[k + 1]);
    c30 = MulAdd(c30, av, b0);
    c31 = MulAdd(c31, av, b1);
    bk += kNr;
  }
  for (; k < len; ++k) {
    const __m128d b0 = _mm_loadu_pd(bk);
    const __m128d b1 = _mm_loadu_pd(bk + 2);
    __m128d av = _mm_set1_pd(a0[k]);
    c00 = MulAdd(c00, av, b0);
    c01 = MulAdd(c01, av, b1);
    av = _mm_set1_pd(a1[k]);
    c10 = MulAdd(c10, av, b0);
    c11 = MulAdd(c11, av, b1);
    av = _mm_set1_pd(a2[k]);
    c20 = MulAdd(c20, av, b0);
    c21 = MulAdd(c21, av, b1);
    av = _mm_set1_pd(a3[k]);
    c30 = MulAdd(c30, av, b0);
    c31 = MulAdd(c31, av, b1);
    bk += kNr;
  }
  double* o0 = c->Row(i0) + j0;
  double* o1 = c->Row(i0 + 1) + j0;
  double* o2 = c->Row(i0 + 2) + j0;
  double* o3 = c->Row(i0 + 3) + j0;
  _mm_storeu_pd(o0, c00);
  _mm_storeu_pd(o0 + 2, c01);
  _mm_storeu_pd(o1, c10);
  _mm_storeu_pd(o1 + 2, c11);
  _mm_storeu_pd(o2, c20);
  _mm_storeu_pd(o2 + 2, c21);
  _mm_storeu_pd(o3, c30);
  _mm_storeu_pd(o3 + 2, c31);
}
#else
inline void MatMulTileFull(const Matrix& a, const Matrix& b, Matrix* c,
                           int i0, int j0, int k0, int k1, bool first) {
  const size_t bstride = b.cols();
  const double* bk = b.data() + static_cast<size_t>(k0) * bstride + j0;
  const double* a0 = a.Row(i0) + k0;
  const double* a1 = a.Row(i0 + 1) + k0;
  const double* a2 = a.Row(i0 + 2) + k0;
  const double* a3 = a.Row(i0 + 3) + k0;
  double acc[kMr][kNr] = {};
  if (!first) {
    for (int r = 0; r < kMr; ++r) {
      const double* crow = c->Row(i0 + r) + j0;
      for (int n = 0; n < kNr; ++n) acc[r][n] = crow[n];
    }
  }
  const int len = k1 - k0;
  for (int k = 0; k < len; ++k) {
    const double av0 = a0[k];
    const double av1 = a1[k];
    const double av2 = a2[k];
    const double av3 = a3[k];
    for (int n = 0; n < kNr; ++n) {
      const double bv = bk[n];
      acc[0][n] += av0 * bv;
      acc[1][n] += av1 * bv;
      acc[2][n] += av2 * bv;
      acc[3][n] += av3 * bv;
    }
    bk += bstride;
  }
  for (int r = 0; r < kMr; ++r) {
    double* crow = c->Row(i0 + r) + j0;
    for (int n = 0; n < kNr; ++n) crow[n] = acc[r][n];
  }
}
#endif  // defined(__SSE2__)

// Edge tile with runtime mr x nr bounds (same per-element chains).
inline void MatMulTileEdge(const Matrix& a, const Matrix& b, Matrix* c,
                           int i0, int mr, int j0, int nr, int k0, int k1,
                           bool first) {
  const size_t bstride = b.cols();
  const double* bk = b.data() + static_cast<size_t>(k0) * bstride + j0;
  const double* arow[kMr];
  for (int r = 0; r < mr; ++r) arow[r] = a.Row(i0 + r) + k0;
  double acc[kMr][kNr] = {};
  if (!first) {
    for (int r = 0; r < mr; ++r) {
      const double* crow = c->Row(i0 + r) + j0;
      for (int n = 0; n < nr; ++n) acc[r][n] = crow[n];
    }
  }
  const int len = k1 - k0;
  for (int k = 0; k < len; ++k) {
    for (int r = 0; r < mr; ++r) {
      const double av = arow[r][k];
      for (int n = 0; n < nr; ++n) acc[r][n] += av * bk[n];
    }
    bk += bstride;
  }
  for (int r = 0; r < mr; ++r) {
    double* crow = c->Row(i0 + r) + j0;
    for (int n = 0; n < nr; ++n) crow[n] = acc[r][n];
  }
}

// Accumulates rows [r0, r1) of `a` into the kMr x kNr tile of `g` at
// (i0, j0): g_tile += sum_r a(r, i0:)^T a(r, j0:). Adds onto the existing
// tile so the SYRK kernel can flush between row blocks (interior tiles).
#if defined(__AVX__)
inline void SyrkTileFull(const Matrix& a, int r0, int r1, Matrix* g, int i0,
                         int j0) {
  double* o0 = g->Row(i0) + j0;
  double* o1 = g->Row(i0 + 1) + j0;
  double* o2 = g->Row(i0 + 2) + j0;
  double* o3 = g->Row(i0 + 3) + j0;
  __m256d c00 = _mm256_loadu_pd(o0);
  __m256d c01 = _mm256_loadu_pd(o0 + 4);
  __m256d c10 = _mm256_loadu_pd(o1);
  __m256d c11 = _mm256_loadu_pd(o1 + 4);
  __m256d c20 = _mm256_loadu_pd(o2);
  __m256d c21 = _mm256_loadu_pd(o2 + 4);
  __m256d c30 = _mm256_loadu_pd(o3);
  __m256d c31 = _mm256_loadu_pd(o3 + 4);
  for (int r = r0; r < r1; ++r) {
    const double* ar = a.Row(r);
    const __m256d b0 = _mm256_loadu_pd(ar + j0);
    const __m256d b1 = _mm256_loadu_pd(ar + j0 + 4);
    const double* ai = ar + i0;
    __m256d av = _mm256_broadcast_sd(ai);
    c00 = MulAdd(c00, av, b0);
    c01 = MulAdd(c01, av, b1);
    av = _mm256_broadcast_sd(ai + 1);
    c10 = MulAdd(c10, av, b0);
    c11 = MulAdd(c11, av, b1);
    av = _mm256_broadcast_sd(ai + 2);
    c20 = MulAdd(c20, av, b0);
    c21 = MulAdd(c21, av, b1);
    av = _mm256_broadcast_sd(ai + 3);
    c30 = MulAdd(c30, av, b0);
    c31 = MulAdd(c31, av, b1);
  }
  _mm256_storeu_pd(o0, c00);
  _mm256_storeu_pd(o0 + 4, c01);
  _mm256_storeu_pd(o1, c10);
  _mm256_storeu_pd(o1 + 4, c11);
  _mm256_storeu_pd(o2, c20);
  _mm256_storeu_pd(o2 + 4, c21);
  _mm256_storeu_pd(o3, c30);
  _mm256_storeu_pd(o3 + 4, c31);
}
#elif defined(__SSE2__)
inline void SyrkTileFull(const Matrix& a, int r0, int r1, Matrix* g, int i0,
                         int j0) {
  double* o0 = g->Row(i0) + j0;
  double* o1 = g->Row(i0 + 1) + j0;
  double* o2 = g->Row(i0 + 2) + j0;
  double* o3 = g->Row(i0 + 3) + j0;
  __m128d c00 = _mm_loadu_pd(o0);
  __m128d c01 = _mm_loadu_pd(o0 + 2);
  __m128d c10 = _mm_loadu_pd(o1);
  __m128d c11 = _mm_loadu_pd(o1 + 2);
  __m128d c20 = _mm_loadu_pd(o2);
  __m128d c21 = _mm_loadu_pd(o2 + 2);
  __m128d c30 = _mm_loadu_pd(o3);
  __m128d c31 = _mm_loadu_pd(o3 + 2);
  for (int r = r0; r < r1; ++r) {
    const double* ar = a.Row(r);
    const __m128d b0 = _mm_loadu_pd(ar + j0);
    const __m128d b1 = _mm_loadu_pd(ar + j0 + 2);
    const double* ai = ar + i0;
    __m128d av = _mm_set1_pd(ai[0]);
    c00 = MulAdd(c00, av, b0);
    c01 = MulAdd(c01, av, b1);
    av = _mm_set1_pd(ai[1]);
    c10 = MulAdd(c10, av, b0);
    c11 = MulAdd(c11, av, b1);
    av = _mm_set1_pd(ai[2]);
    c20 = MulAdd(c20, av, b0);
    c21 = MulAdd(c21, av, b1);
    av = _mm_set1_pd(ai[3]);
    c30 = MulAdd(c30, av, b0);
    c31 = MulAdd(c31, av, b1);
  }
  _mm_storeu_pd(o0, c00);
  _mm_storeu_pd(o0 + 2, c01);
  _mm_storeu_pd(o1, c10);
  _mm_storeu_pd(o1 + 2, c11);
  _mm_storeu_pd(o2, c20);
  _mm_storeu_pd(o2 + 2, c21);
  _mm_storeu_pd(o3, c30);
  _mm_storeu_pd(o3 + 2, c31);
}
#endif  // defined(__SSE2__)

// Runtime-bounded SYRK tile; also the interior fallback without SSE2.
inline void SyrkTile(const Matrix& a, int r0, int r1, Matrix* g, int i0,
                     int mr, int j0, int nr) {
  double acc[kMr][kNr];
  for (int p = 0; p < mr; ++p) {
    const double* grow = g->Row(i0 + p) + j0;
    for (int q = 0; q < nr; ++q) acc[p][q] = grow[q];
  }
  for (int r = r0; r < r1; ++r) {
    const double* ar = a.Row(r);
    const double* ai = ar + i0;
    const double* aj = ar + j0;
    for (int p = 0; p < mr; ++p) {
      const double av = ai[p];
      for (int q = 0; q < nr; ++q) acc[p][q] += av * aj[q];
    }
  }
  for (int p = 0; p < mr; ++p) {
    double* grow = g->Row(i0 + p) + j0;
    for (int q = 0; q < nr; ++q) grow[q] = acc[p][q];
  }
}

// Full-reduction kMr x kNr tile of A A^T: acc[p][q] = <row i0+p, row j0+q>
// (interior tiles). Vectorization is across the 16 independent elements
// (the j rows are gathered pairwise); each element's reduction is still
// one scalar ascending-k chain.
#if defined(__AVX__)
inline void GramTileFull(const Matrix& a, Matrix* g, int i0, int j0) {
  const int d = a.cols();
  const double* ai0 = a.Row(i0);
  const double* ai1 = a.Row(i0 + 1);
  const double* ai2 = a.Row(i0 + 2);
  const double* ai3 = a.Row(i0 + 3);
  const double* aj0 = a.Row(j0);
  const double* aj1 = a.Row(j0 + 1);
  const double* aj2 = a.Row(j0 + 2);
  const double* aj3 = a.Row(j0 + 3);
  const double* aj4 = a.Row(j0 + 4);
  const double* aj5 = a.Row(j0 + 5);
  const double* aj6 = a.Row(j0 + 6);
  const double* aj7 = a.Row(j0 + 7);
  __m256d c00 = _mm256_setzero_pd();
  __m256d c01 = _mm256_setzero_pd();
  __m256d c10 = _mm256_setzero_pd();
  __m256d c11 = _mm256_setzero_pd();
  __m256d c20 = _mm256_setzero_pd();
  __m256d c21 = _mm256_setzero_pd();
  __m256d c30 = _mm256_setzero_pd();
  __m256d c31 = _mm256_setzero_pd();
  for (int k = 0; k < d; ++k) {
    const __m256d b0 = _mm256_set_pd(aj3[k], aj2[k], aj1[k], aj0[k]);
    const __m256d b1 = _mm256_set_pd(aj7[k], aj6[k], aj5[k], aj4[k]);
    __m256d av = _mm256_broadcast_sd(ai0 + k);
    c00 = MulAdd(c00, av, b0);
    c01 = MulAdd(c01, av, b1);
    av = _mm256_broadcast_sd(ai1 + k);
    c10 = MulAdd(c10, av, b0);
    c11 = MulAdd(c11, av, b1);
    av = _mm256_broadcast_sd(ai2 + k);
    c20 = MulAdd(c20, av, b0);
    c21 = MulAdd(c21, av, b1);
    av = _mm256_broadcast_sd(ai3 + k);
    c30 = MulAdd(c30, av, b0);
    c31 = MulAdd(c31, av, b1);
  }
  double* o0 = g->Row(i0) + j0;
  double* o1 = g->Row(i0 + 1) + j0;
  double* o2 = g->Row(i0 + 2) + j0;
  double* o3 = g->Row(i0 + 3) + j0;
  _mm256_storeu_pd(o0, c00);
  _mm256_storeu_pd(o0 + 4, c01);
  _mm256_storeu_pd(o1, c10);
  _mm256_storeu_pd(o1 + 4, c11);
  _mm256_storeu_pd(o2, c20);
  _mm256_storeu_pd(o2 + 4, c21);
  _mm256_storeu_pd(o3, c30);
  _mm256_storeu_pd(o3 + 4, c31);
}
#elif defined(__SSE2__)
inline void GramTileFull(const Matrix& a, Matrix* g, int i0, int j0) {
  const int d = a.cols();
  const double* ai0 = a.Row(i0);
  const double* ai1 = a.Row(i0 + 1);
  const double* ai2 = a.Row(i0 + 2);
  const double* ai3 = a.Row(i0 + 3);
  const double* aj0 = a.Row(j0);
  const double* aj1 = a.Row(j0 + 1);
  const double* aj2 = a.Row(j0 + 2);
  const double* aj3 = a.Row(j0 + 3);
  __m128d c00 = _mm_setzero_pd();
  __m128d c01 = _mm_setzero_pd();
  __m128d c10 = _mm_setzero_pd();
  __m128d c11 = _mm_setzero_pd();
  __m128d c20 = _mm_setzero_pd();
  __m128d c21 = _mm_setzero_pd();
  __m128d c30 = _mm_setzero_pd();
  __m128d c31 = _mm_setzero_pd();
  for (int k = 0; k < d; ++k) {
    const __m128d b0 = _mm_set_pd(aj1[k], aj0[k]);
    const __m128d b1 = _mm_set_pd(aj3[k], aj2[k]);
    __m128d av = _mm_set1_pd(ai0[k]);
    c00 = MulAdd(c00, av, b0);
    c01 = MulAdd(c01, av, b1);
    av = _mm_set1_pd(ai1[k]);
    c10 = MulAdd(c10, av, b0);
    c11 = MulAdd(c11, av, b1);
    av = _mm_set1_pd(ai2[k]);
    c20 = MulAdd(c20, av, b0);
    c21 = MulAdd(c21, av, b1);
    av = _mm_set1_pd(ai3[k]);
    c30 = MulAdd(c30, av, b0);
    c31 = MulAdd(c31, av, b1);
  }
  double* o0 = g->Row(i0) + j0;
  double* o1 = g->Row(i0 + 1) + j0;
  double* o2 = g->Row(i0 + 2) + j0;
  double* o3 = g->Row(i0 + 3) + j0;
  _mm_storeu_pd(o0, c00);
  _mm_storeu_pd(o0 + 2, c01);
  _mm_storeu_pd(o1, c10);
  _mm_storeu_pd(o1 + 2, c11);
  _mm_storeu_pd(o2, c20);
  _mm_storeu_pd(o2 + 2, c21);
  _mm_storeu_pd(o3, c30);
  _mm_storeu_pd(o3 + 2, c31);
}
#endif  // defined(__SSE2__)

// Runtime-bounded Gram tile; also the interior fallback without SSE2.
inline void GramTile(const Matrix& a, Matrix* g, int i0, int mr, int j0,
                     int nr) {
  const int d = a.cols();
  const double* ai[kMr];
  const double* aj[kNr];
  for (int p = 0; p < mr; ++p) ai[p] = a.Row(i0 + p);
  for (int q = 0; q < nr; ++q) aj[q] = a.Row(j0 + q);
  double acc[kMr][kNr] = {};
  for (int k = 0; k < d; ++k) {
    for (int p = 0; p < mr; ++p) {
      const double av = ai[p][k];
      for (int q = 0; q < nr; ++q) acc[p][q] += av * aj[q][k];
    }
  }
  for (int p = 0; p < mr; ++p) {
    double* grow = g->Row(i0 + p) + j0;
    for (int q = 0; q < nr; ++q) grow[q] = acc[p][q];
  }
}

// Copies the (computed) upper triangle onto the lower one. Tiles
// straddling the diagonal compute a few lower entries directly; products
// commute exactly, so the overwrite is value-identical.
void MirrorLowerFromUpper(Matrix* g) {
  const int d = g->rows();
  for (int i = 0; i < d; ++i) {
    const double* upper = g->Row(i);
    for (int j = i + 1; j < d; ++j) (*g)(j, i) = upper[j];
  }
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  DSWM_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  const int m = a.rows();
  const int p = b.cols();
  const int kk = a.cols();
  if (m == 0 || p == 0 || kk == 0) return c;

  const int row_tiles = (m + kMr - 1) / kMr;
  ThreadPool* pool = ThreadPool::Global();
  const long mul_adds = static_cast<long>(m) * p * kk;
  DSWM_OBS_COUNT("linalg.matmul.calls", 1);
  DSWM_OBS_COUNT("linalg.matmul.flops", 2 * mul_adds);
  const bool parallel = UsePool(pool, mul_adds);

#if defined(__SSE2__)
  // Pack the full-width panels of B into panel-major layout (kNr doubles
  // per k, k ascending, panels consecutive): an exact element copy that
  // turns the hot loop's strided B walk into sequential loads. The ragged
  // last panel (p % kNr columns) goes through the edge kernel against the
  // original B.
  const int full_panels = p / kNr;
  std::vector<double> packed(static_cast<size_t>(full_panels) * kk * kNr);
  const size_t bstride = b.cols();
  for (int jp = 0; jp < full_panels; ++jp) {
    double* dst = packed.data() + static_cast<size_t>(jp) * kk * kNr;
    const double* src = b.data() + static_cast<size_t>(jp) * kNr;
    for (int k = 0; k < kk; ++k) {
      for (int n = 0; n < kNr; ++n) dst[n] = src[n];
      dst += kNr;
      src += bstride;
    }
  }
#endif

  // k blocks run sequentially (each element's chain stays ascending in k);
  // within a block, whole row-tiles are distributed over threads. Panels of
  // B iterate outermost inside a chunk so each kKc x kNr panel stays hot
  // across every row tile of the chunk.
  for (int k0 = 0; k0 < kk; k0 += kKc) {
    const int k1 = std::min(kk, k0 + kKc);
    const bool first = k0 == 0;
#if defined(__SSE2__)
    const double* pk = packed.data();
    const auto run = [&a, &b, &c, pk, kk, m, p, k0, k1, first](int t0,
                                                              int t1) {
      for (int j0 = 0; j0 < p; j0 += kNr) {
        const int nr = std::min(kNr, p - j0);
        const double* bp = pk +
                           static_cast<size_t>(j0 / kNr) * kk * kNr +
                           static_cast<size_t>(k0) * kNr;
        for (int t = t0; t < t1; ++t) {
          const int i0 = t * kMr;
          const int mr = std::min(kMr, m - i0);
          if (mr == kMr && nr == kNr) {
            MatMulTileFull(a, bp, &c, i0, j0, k0, k1, first);
          } else {
            MatMulTileEdge(a, b, &c, i0, mr, j0, nr, k0, k1, first);
          }
        }
      }
    };
#else
    const auto run = [&a, &b, &c, m, p, k0, k1, first](int t0, int t1) {
      for (int j0 = 0; j0 < p; j0 += kNr) {
        const int nr = std::min(kNr, p - j0);
        for (int t = t0; t < t1; ++t) {
          const int i0 = t * kMr;
          const int mr = std::min(kMr, m - i0);
          if (mr == kMr && nr == kNr) {
            MatMulTileFull(a, b, &c, i0, j0, k0, k1, first);
          } else {
            MatMulTileEdge(a, b, &c, i0, mr, j0, nr, k0, k1, first);
          }
        }
      }
    };
#endif
    if (parallel) {
      pool->ParallelFor(row_tiles, run);
    } else {
      run(0, row_tiles);
    }
  }
  return c;
}

Matrix MatMulReference(const Matrix& a, const Matrix& b) {
  DSWM_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const double* ar = a.Row(i);
    double* cr = c.Row(i);
    for (int k = 0; k < a.cols(); ++k) {
      Axpy(ar[k], b.Row(k), cr, b.cols());
    }
  }
  return c;
}

Matrix GramTransposePrefix(const Matrix& a, int rows) {
  DSWM_CHECK_GE(rows, 0);
  DSWM_CHECK_LE(rows, a.rows());
  const int d = a.cols();
  Matrix g(d, d);
  if (d == 0 || rows == 0) return g;

  ThreadPool* pool = ThreadPool::Global();
  const long mul_adds = static_cast<long>(rows) * d * (d + 1) / 2;
  DSWM_OBS_COUNT("linalg.gram_transpose.calls", 1);
  DSWM_OBS_COUNT("linalg.gram_transpose.flops", 2 * mul_adds);
  const bool parallel = UsePool(pool, mul_adds);
  const int row_tiles = (d + kMr - 1) / kMr;

  // Upper-triangle tiles only; row blocks of the reduction are processed
  // in order so each element's chain stays ascending across flushes.
  for (int r0 = 0; r0 < rows; r0 += kKc) {
    const int r1 = std::min(rows, r0 + kKc);
    const auto run = [&a, &g, d, r0, r1](int t0, int t1) {
      for (int t = t0; t < t1; ++t) {
        const int i0 = t * kMr;
        const int mr = std::min(kMr, d - i0);
        for (int j0 = (i0 / kNr) * kNr; j0 < d; j0 += kNr) {
          const int nr = std::min(kNr, d - j0);
#if defined(__SSE2__)
          if (mr == kMr && nr == kNr) {
            SyrkTileFull(a, r0, r1, &g, i0, j0);
            continue;
          }
#endif
          SyrkTile(a, r0, r1, &g, i0, mr, j0, nr);
        }
      }
    };
    if (parallel) {
      pool->ParallelFor(row_tiles, run);
    } else {
      run(0, row_tiles);
    }
  }
  MirrorLowerFromUpper(&g);
  return g;
}

Matrix GramTranspose(const Matrix& a) {
  return GramTransposePrefix(a, a.rows());
}

Matrix GramTransposeReference(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (int i = 0; i < a.rows(); ++i) g.AddOuterProduct(a.Row(i), 1.0);
  return g;
}

Matrix GramPrefix(const Matrix& a, int rows) {
  DSWM_CHECK_GE(rows, 0);
  DSWM_CHECK_LE(rows, a.rows());
  Matrix g(rows, rows);
  if (rows == 0 || a.cols() == 0) return g;

  ThreadPool* pool = ThreadPool::Global();
  const long mul_adds = static_cast<long>(rows) * (rows + 1) / 2 * a.cols();
  DSWM_OBS_COUNT("linalg.gram.calls", 1);
  DSWM_OBS_COUNT("linalg.gram.flops", 2 * mul_adds);
  const int row_tiles = (rows + kMr - 1) / kMr;
  const auto run = [&a, &g, rows](int t0, int t1) {
    for (int t = t0; t < t1; ++t) {
      const int i0 = t * kMr;
      const int mr = std::min(kMr, rows - i0);
      for (int j0 = (i0 / kNr) * kNr; j0 < rows; j0 += kNr) {
        const int nr = std::min(kNr, rows - j0);
#if defined(__SSE2__)
        if (mr == kMr && nr == kNr) {
          GramTileFull(a, &g, i0, j0);
          continue;
        }
#endif
        GramTile(a, &g, i0, mr, j0, nr);
      }
    }
  };
  if (UsePool(pool, mul_adds)) {
    pool->ParallelFor(row_tiles, run);
  } else {
    run(0, row_tiles);
  }
  MirrorLowerFromUpper(&g);
  return g;
}

Matrix Gram(const Matrix& a) { return GramPrefix(a, a.rows()); }

Matrix GramReference(const Matrix& a) {
  Matrix g(a.rows(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = i; j < a.rows(); ++j) {
      const double d = Dot(a.Row(i), a.Row(j), a.cols());
      g(i, j) = d;
      g(j, i) = d;
    }
  }
  return g;
}

Matrix Subtract(const Matrix& a, const Matrix& b) {
  DSWM_CHECK_EQ(a.rows(), b.rows());
  DSWM_CHECK_EQ(a.cols(), b.cols());
  Matrix c = a;
  c.AddScaled(b, -1.0);
  return c;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  DSWM_CHECK_EQ(a.rows(), b.rows());
  DSWM_CHECK_EQ(a.cols(), b.cols());
  double m = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    const double* ra = a.Row(i);
    const double* rb = b.Row(i);
    for (int j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::fabs(ra[j] - rb[j]));
    }
  }
  return m;
}

}  // namespace dswm
