#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

namespace dswm {

Matrix Matrix::Identity(int d) {
  Matrix m(d, d);
  for (int i = 0; i < d; ++i) m(i, i) = 1.0;
  return m;
}

void Matrix::AppendRow(const double* src, int len) {
  if (empty() && rows_ == 0) {
    if (cols_ == 0) cols_ = len;
  }
  DSWM_CHECK_EQ(len, cols_);
  data_.insert(data_.end(), src, src + len);
  ++rows_;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (int i = 0; i < rows_; ++i) {
    const double* r = Row(i);
    for (int j = 0; j < cols_; ++j) t(j, i) = r[j];
  }
  return t;
}

double Matrix::FrobeniusNormSquared() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return s;
}

void Matrix::AddScaled(const Matrix& other, double alpha) {
  DSWM_CHECK_EQ(rows_, other.rows_);
  DSWM_CHECK_EQ(cols_, other.cols_);
  const double* src = other.data();
  double* dst = data();
  const size_t n = data_.size();
  for (size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Matrix::AddOuterProduct(const double* v, double alpha) {
  DSWM_CHECK_EQ(rows_, cols_);
  for (int i = 0; i < rows_; ++i) {
    const double vi = alpha * v[i];
    if (vi == 0.0) continue;
    double* row = Row(i);
    for (int j = 0; j < cols_; ++j) row[j] += vi * v[j];
  }
}

void Matrix::AddSparseOuterProduct(const double* v,
                                   const std::vector<int>& support,
                                   double alpha) {
  DSWM_CHECK_EQ(rows_, cols_);
  for (int i : support) {
    const double vi = alpha * v[i];
    double* row = Row(i);
    for (int j : support) row[j] += vi * v[j];
  }
}

double Dot(const double* x, const double* y, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

double NormSquared(const double* x, int n) {
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += x[i] * x[i];
  return s;
}

void Axpy(double alpha, const double* x, double* y, int n) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(double* x, int n, double alpha) {
  for (int i = 0; i < n; ++i) x[i] *= alpha;
}

void MatVec(const Matrix& a, const double* x, double* y) {
  for (int i = 0; i < a.rows(); ++i) y[i] = Dot(a.Row(i), x, a.cols());
}

void MatTVec(const Matrix& a, const double* x, double* y) {
  std::fill(y, y + a.cols(), 0.0);
  for (int i = 0; i < a.rows(); ++i) Axpy(x[i], a.Row(i), y, a.cols());
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  DSWM_CHECK_EQ(a.cols(), b.rows());
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const double* ar = a.Row(i);
    double* cr = c.Row(i);
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = ar[k];
      if (aik == 0.0) continue;
      Axpy(aik, b.Row(k), cr, b.cols());
    }
  }
  return c;
}

Matrix GramTranspose(const Matrix& a) {
  Matrix g(a.cols(), a.cols());
  for (int i = 0; i < a.rows(); ++i) g.AddOuterProduct(a.Row(i), 1.0);
  return g;
}

Matrix Gram(const Matrix& a) {
  Matrix g(a.rows(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = i; j < a.rows(); ++j) {
      const double d = Dot(a.Row(i), a.Row(j), a.cols());
      g(i, j) = d;
      g(j, i) = d;
    }
  }
  return g;
}

Matrix Subtract(const Matrix& a, const Matrix& b) {
  DSWM_CHECK_EQ(a.rows(), b.rows());
  DSWM_CHECK_EQ(a.cols(), b.cols());
  Matrix c = a;
  c.AddScaled(b, -1.0);
  return c;
}

double MaxAbsDiff(const Matrix& a, const Matrix& b) {
  DSWM_CHECK_EQ(a.rows(), b.rows());
  DSWM_CHECK_EQ(a.cols(), b.cols());
  double m = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      m = std::max(m, std::fabs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

}  // namespace dswm
