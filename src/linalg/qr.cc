#include "linalg/qr.h"

#include <cmath>
#include <vector>

namespace dswm {

QrResult HouseholderQr(const Matrix& a) {
  const int n = a.rows();
  const int m = a.cols();
  const int k = std::min(n, m);

  Matrix r = a;                       // Will be reduced in place.
  Matrix q_full = Matrix::Identity(n);
  std::vector<double> v(n);

  for (int col = 0; col < k; ++col) {
    // Build the Householder vector for column `col` below the diagonal.
    double norm2 = 0.0;
    for (int i = col; i < n; ++i) norm2 += r(i, col) * r(i, col);
    const double norm = std::sqrt(norm2);
    if (norm == 0.0) continue;
    const double alpha = (r(col, col) >= 0.0) ? -norm : norm;
    double vnorm2 = 0.0;
    for (int i = col; i < n; ++i) {
      v[i] = r(i, col);
      if (i == col) v[i] -= alpha;
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 == 0.0) continue;
    const double beta = 2.0 / vnorm2;

    // R <- (I - beta v v^T) R.
    for (int j = col; j < m; ++j) {
      double dot = 0.0;
      for (int i = col; i < n; ++i) dot += v[i] * r(i, j);
      const double f = beta * dot;
      for (int i = col; i < n; ++i) r(i, j) -= f * v[i];
    }
    // Q <- Q (I - beta v v^T).
    for (int i = 0; i < n; ++i) {
      double dot = 0.0;
      for (int j = col; j < n; ++j) dot += q_full(i, j) * v[j];
      const double f = beta * dot;
      for (int j = col; j < n; ++j) q_full(i, j) -= f * v[j];
    }
  }

  QrResult result;
  result.q = Matrix(n, k);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) result.q(i, j) = q_full(i, j);
  }
  result.r = Matrix(k, m);
  for (int i = 0; i < k; ++i) {
    for (int j = i; j < m; ++j) result.r(i, j) = r(i, j);
  }
  return result;
}

Matrix RandomOrthonormalRows(int k, int d, Rng* rng) {
  DSWM_CHECK_LE(k, d);
  Matrix g(d, k);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j < k; ++j) g(i, j) = rng->NextGaussian();
  }
  const QrResult qr = HouseholderQr(g);
  // Columns of qr.q are orthonormal in R^d; return them as rows.
  Matrix rows(k, d);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = qr.q(j, i);
  }
  return rows;
}

}  // namespace dswm
