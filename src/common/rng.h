// Deterministic, fast pseudo-random number generation.
//
// xoshiro256++ seeded through SplitMix64. All randomized protocols and
// workload generators take an explicit seed so every experiment is
// reproducible; no global RNG state exists in the library.

#ifndef DSWM_COMMON_RNG_H_
#define DSWM_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace dswm {

/// xoshiro256++ generator. Not cryptographic; excellent statistical quality
/// and ~1ns/draw, suitable for sampling protocols and data generation.
class Rng {
 public:
  /// Seeds the four 64-bit lanes via SplitMix64 so any seed (including 0)
  /// yields a well-mixed state.
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& lane : state_) lane = SplitMix64(&x);
  }

  /// Uniform 64-bit draw.
  [[nodiscard]] uint64_t NextU64() {
    const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in the open interval (0, 1); never returns 0 exactly,
  /// which sampling priorities (w/u and u^{1/w}) require.
  [[nodiscard]] double NextOpenDouble() {
    double u = NextDouble();
    while (u == 0.0) u = NextDouble();
    return u;
  }

  /// Uniform integer in [0, n).
  [[nodiscard]] uint64_t NextBelow(uint64_t n) {
    DSWM_CHECK_GT(n, 0u);
    // Lemire's multiply-shift rejection-free-enough mapping; bias is
    // negligible for n << 2^64 which is all we use.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(NextU64()) * n) >> 64);
  }

  /// Standard normal via Box-Muller (cached second value).
  [[nodiscard]] double NextGaussian() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    const double u1 = NextOpenDouble();
    const double u2 = NextDouble();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * kPi * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Exponential with rate lambda (mean 1/lambda); used for Poisson
  /// arrival-process inter-arrival gaps.
  [[nodiscard]] double NextExponential(double lambda) {
    DSWM_CHECK_GT(lambda, 0.0);
    return -std::log(NextOpenDouble()) / lambda;
  }

 private:
  static constexpr double kPi = 3.14159265358979323846;

  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace dswm

#endif  // DSWM_COMMON_RNG_H_
