// Minimal command-line flag parsing for the CLI tool and bench binaries.
//
// Supports --name=value and --name value forms plus positional arguments;
// unknown flags are an error so typos fail loudly.

#ifndef DSWM_COMMON_FLAGS_H_
#define DSWM_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dswm {

/// Parsed command line: flag map + positional arguments in order.
class FlagSet {
 public:
  /// Parses argv[1..]; `known` lists the accepted flag names (without
  /// leading dashes). Fails on unknown flags, duplicate flags, an empty
  /// flag name ("--=v"), or a trailing valueless "--name".
  static StatusOr<FlagSet> Parse(int argc, const char* const* argv,
                                 const std::vector<std::string>& known);

  [[nodiscard]] bool Has(const std::string& name) const {
    return values_.count(name) > 0;
  }

  /// String value or default.
  [[nodiscard]] std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  /// Integer value or default; CHECKs that the stored text is numeric.
  [[nodiscard]] long GetInt(const std::string& name, long default_value) const;
  /// Double value or default.
  [[nodiscard]] double GetDouble(const std::string& name, double default_value) const;

  [[nodiscard]] const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace dswm

#endif  // DSWM_COMMON_FLAGS_H_
