#include "common/flags.h"

#include <algorithm>
#include <cstdlib>

namespace dswm {

StatusOr<FlagSet> FlagSet::Parse(int argc, const char* const* argv,
                                 const std::vector<std::string>& known) {
  FlagSet flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
    } else {
      if (i + 1 >= argc) {
        return Status::InvalidArgument("flag --" + name + " needs a value");
      }
      value = argv[++i];
    }
    if (name.empty()) {
      return Status::InvalidArgument("malformed flag '" + arg +
                                     "': empty flag name");
    }
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    if (flags.values_.count(name) > 0) {
      return Status::InvalidArgument("duplicate flag --" + name);
    }
    flags.values_[name] = std::move(value);
  }
  return flags;
}

std::string FlagSet::GetString(const std::string& name,
                               const std::string& default_value) const {
  const auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

long FlagSet::GetInt(const std::string& name, long default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const long v = std::strtol(it->second.c_str(), &end, 10);
  DSWM_CHECK(end != nullptr && *end == '\0');
  return v;
}

double FlagSet::GetDouble(const std::string& name,
                          double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  DSWM_CHECK(end != nullptr && *end == '\0');
  return v;
}

}  // namespace dswm
