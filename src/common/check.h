// Lightweight CHECK / DCHECK macros for invariant enforcement.
//
// The library does not use exceptions (Google C++ style); unrecoverable
// contract violations abort with a diagnostic. DCHECKs compile out in
// NDEBUG builds and guard internal invariants; CHECKs stay in all builds
// and guard API contracts.

#ifndef DSWM_COMMON_CHECK_H_
#define DSWM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dswm::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "[dswm] CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace dswm::internal

#define DSWM_CHECK(cond)                                      \
  do {                                                        \
    if (!(cond)) {                                            \
      ::dswm::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                         \
  } while (false)

#define DSWM_CHECK_GE(a, b) DSWM_CHECK((a) >= (b))
#define DSWM_CHECK_GT(a, b) DSWM_CHECK((a) > (b))
#define DSWM_CHECK_LE(a, b) DSWM_CHECK((a) <= (b))
#define DSWM_CHECK_LT(a, b) DSWM_CHECK((a) < (b))
#define DSWM_CHECK_EQ(a, b) DSWM_CHECK((a) == (b))
#define DSWM_CHECK_NE(a, b) DSWM_CHECK((a) != (b))

#ifdef NDEBUG
#define DSWM_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define DSWM_DCHECK(cond) DSWM_CHECK(cond)
#endif

#define DSWM_DCHECK_GE(a, b) DSWM_DCHECK((a) >= (b))
#define DSWM_DCHECK_GT(a, b) DSWM_DCHECK((a) > (b))
#define DSWM_DCHECK_LE(a, b) DSWM_DCHECK((a) <= (b))
#define DSWM_DCHECK_LT(a, b) DSWM_DCHECK((a) < (b))
#define DSWM_DCHECK_EQ(a, b) DSWM_DCHECK((a) == (b))

#endif  // DSWM_COMMON_CHECK_H_
