// Fixed-size worker pool with deterministic work partitioning.
//
// This is the only place in the codebase allowed to touch std::thread
// (enforced by tools/dswm_semlint.py rule raw-thread-outside-common). All
// parallelism flows through ParallelFor / Submit so that:
//   * the default configuration (1 thread) spawns no workers and runs
//     every task inline on the caller -- results are bit-identical to a
//     build with no threading code at all;
//   * ParallelFor splits [0, count) into at most num_threads() contiguous
//     chunks whose boundaries depend only on (count, num_threads), never
//     on scheduling, so repeated runs partition identically;
//   * no reduction is ever split across threads by the linalg kernels
//     (each output element is owned by exactly one chunk), so threaded
//     kernel results are bit-identical to single-threaded ones.
//
// The global pool is sized by DSWM_THREADS (env) or SetGlobalThreads()
// (the --threads CLI knob) and defaults to single-threaded.
//
// Concurrency contract (machine-checked under clang -Wthread-safety):
// mu_ guards the queue, the in-flight count, and the stop flag; workers
// and submitters only touch them through it. num_threads_ and workers_
// are immutable after construction.

#ifndef DSWM_COMMON_THREAD_POOL_H_
#define DSWM_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>  // dswm-semlint: allow(raw-thread-outside-common)
#include <vector>

#include "common/check.h"
#include "common/mutex.h"

namespace dswm {

/// A work-queue thread pool. `num_threads` counts the caller: a pool of N
/// spawns N-1 workers, and ParallelFor runs one chunk on the calling
/// thread. N == 1 means fully inline execution (no workers, no queue).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// Runs body(begin, end) over a deterministic partition of [0, count)
  /// into min(num_threads, count) contiguous chunks and blocks until all
  /// chunks finish. Chunk c covers [c*count/T, (c+1)*count/T). The caller
  /// executes chunk 0; workers execute the rest. `body` must be safe to
  /// call concurrently on disjoint ranges.
  void ParallelFor(int count, const std::function<void(int, int)>& body);

  /// Enqueues a task for asynchronous execution (runs inline when the
  /// pool is single-threaded). Pair with WaitIdle().
  void Submit(std::function<void()> task) DSWM_EXCLUDES(mu_);

  /// Blocks until every submitted task has completed.
  void WaitIdle() DSWM_EXCLUDES(mu_);

  /// Process-wide pool, sized by SetGlobalThreads() or, failing that, the
  /// DSWM_THREADS environment variable; defaults to 1 (inline execution).
  [[nodiscard]] static ThreadPool* Global();

  /// Resizes the global pool (the --threads knob). Must not be called
  /// while work is in flight. n < 1 is clamped to 1.
  static void SetGlobalThreads(int n);

  /// RAII: marks the current thread as inside a parallel region, so any
  /// nested ParallelFor runs inline instead of re-entering the queue.
  /// Worker threads carry this mark implicitly; the caller's chunk-0
  /// execution does not, which would let kernels invoked from inside a
  /// ParallelFor body submit a second round of tasks. The batched engine
  /// (linalg/batched.h) wraps each chunk body in this scope to guarantee
  /// exactly one pool dispatch per batch. Restores the previous state on
  /// destruction, so scopes nest.
  class NestedInlineScope {
   public:
    NestedInlineScope();
    ~NestedInlineScope();
    NestedInlineScope(const NestedInlineScope&) = delete;
    NestedInlineScope& operator=(const NestedInlineScope&) = delete;

   private:
    bool previous_;
  };

 private:
  void WorkerLoop() DSWM_EXCLUDES(mu_);

  const int num_threads_;
  Mutex mu_;
  CondVar work_ready_;
  CondVar idle_;
  std::deque<std::function<void()>> queue_ DSWM_GUARDED_BY(mu_);
  int in_flight_ DSWM_GUARDED_BY(mu_) = 0;  // queued + executing tasks
  bool stopping_ DSWM_GUARDED_BY(mu_) = false;
  // Written only by the constructor, joined by the destructor; never
  // touched while workers run.
  std::vector<std::thread> workers_;  // dswm-semlint: allow(raw-thread-outside-common)
};

}  // namespace dswm

#endif  // DSWM_COMMON_THREAD_POOL_H_
