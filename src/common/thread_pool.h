// Fixed-size worker pool with deterministic work partitioning.
//
// This is the only place in the codebase allowed to touch std::thread
// (enforced by tools/dswm_lint.py rule raw-thread-outside-common). All
// parallelism flows through ParallelFor / Submit so that:
//   * the default configuration (1 thread) spawns no workers and runs
//     every task inline on the caller -- results are bit-identical to a
//     build with no threading code at all;
//   * ParallelFor splits [0, count) into at most num_threads() contiguous
//     chunks whose boundaries depend only on (count, num_threads), never
//     on scheduling, so repeated runs partition identically;
//   * no reduction is ever split across threads by the linalg kernels
//     (each output element is owned by exactly one chunk), so threaded
//     kernel results are bit-identical to single-threaded ones.
//
// The global pool is sized by DSWM_THREADS (env) or SetGlobalThreads()
// (the --threads CLI knob) and defaults to single-threaded.

#ifndef DSWM_COMMON_THREAD_POOL_H_
#define DSWM_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>  // dswm-lint: allow(raw-thread-outside-common)
#include <vector>

#include "common/check.h"

namespace dswm {

/// A work-queue thread pool. `num_threads` counts the caller: a pool of N
/// spawns N-1 workers, and ParallelFor runs one chunk on the calling
/// thread. N == 1 means fully inline execution (no workers, no queue).
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_threads() const { return num_threads_; }

  /// Runs body(begin, end) over a deterministic partition of [0, count)
  /// into min(num_threads, count) contiguous chunks and blocks until all
  /// chunks finish. Chunk c covers [c*count/T, (c+1)*count/T). The caller
  /// executes chunk 0; workers execute the rest. `body` must be safe to
  /// call concurrently on disjoint ranges.
  void ParallelFor(int count, const std::function<void(int, int)>& body);

  /// Enqueues a task for asynchronous execution (runs inline when the
  /// pool is single-threaded). Pair with WaitIdle().
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void WaitIdle();

  /// Process-wide pool, sized by SetGlobalThreads() or, failing that, the
  /// DSWM_THREADS environment variable; defaults to 1 (inline execution).
  [[nodiscard]] static ThreadPool* Global();

  /// Resizes the global pool (the --threads knob). Must not be called
  /// while work is in flight. n < 1 is clamped to 1.
  static void SetGlobalThreads(int n);

 private:
  void WorkerLoop();

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  // queued + currently executing tasks
  bool stopping_ = false;
  std::vector<std::thread> workers_;  // dswm-lint: allow(raw-thread-outside-common)
};

}  // namespace dswm

#endif  // DSWM_COMMON_THREAD_POOL_H_
