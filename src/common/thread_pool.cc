#include "common/thread_pool.h"

#include <cstdlib>
#include <memory>
#include <utility>

namespace dswm {

namespace {
// True on pool worker threads and inside a NestedInlineScope. Nested
// ParallelFor calls from inside a task run inline instead of re-entering
// the queue (which could deadlock when every worker blocks in WaitIdle).
thread_local bool tls_in_worker = false;
}  // namespace

ThreadPool::NestedInlineScope::NestedInlineScope() : previous_(tls_in_worker) {
  tls_in_worker = true;
}

ThreadPool::NestedInlineScope::~NestedInlineScope() {
  tls_in_worker = previous_;
}

ThreadPool::ThreadPool(int num_threads) : num_threads_(num_threads) {
  DSWM_CHECK_GE(num_threads, 1);
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    // Contract: destruction with queued work waits for it (WaitIdle
    // semantics), so no task is silently dropped.
    idle_.Wait(mu_, [this]() DSWM_REQUIRES(mu_) { return in_flight_ == 0; });
    stopping_ = true;
  }
  work_ready_.NotifyAll();
  for (std::thread& w : workers_) w.join();  // dswm-semlint: allow(raw-thread-outside-common)
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      work_ready_.Wait(mu_, [this]() DSWM_REQUIRES(mu_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(mu_);
      if (--in_flight_ == 0) idle_.NotifyAll();
    }
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  if (num_threads_ == 1) {
    task();
    return;
  }
  {
    MutexLock lock(mu_);
    DSWM_CHECK(!stopping_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_ready_.NotifyOne();
}

void ThreadPool::WaitIdle() {
  if (num_threads_ == 1) return;
  MutexLock lock(mu_);
  idle_.Wait(mu_, [this]() DSWM_REQUIRES(mu_) { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(int count,
                             const std::function<void(int, int)>& body) {
  if (count <= 0) return;
  const int chunks = num_threads_ < count ? num_threads_ : count;
  if (chunks <= 1 || tls_in_worker) {
    body(0, count);
    return;
  }
  // Deterministic partition: chunk c covers [c*count/T, (c+1)*count/T).
  const auto boundary = [count, chunks](int c) {
    return static_cast<int>((static_cast<long>(c) * count) / chunks);
  };
  for (int c = 1; c < chunks; ++c) {
    const int begin = boundary(c);
    const int end = boundary(c + 1);
    Submit([&body, begin, end] { body(begin, end); });
  }
  body(0, boundary(1));  // the caller is thread 0
  WaitIdle();
}

namespace {

std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

Mutex& GlobalPoolMutex() {
  static Mutex mu;
  return mu;
}

int ThreadsFromEnv() {
  const char* env = std::getenv("DSWM_THREADS");
  if (env == nullptr) return 1;
  const int n = std::atoi(env);
  return n >= 1 ? n : 1;
}

}  // namespace

ThreadPool* ThreadPool::Global() {
  MutexLock lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (slot == nullptr) slot = std::make_unique<ThreadPool>(ThreadsFromEnv());
  return slot.get();
}

void ThreadPool::SetGlobalThreads(int n) {
  if (n < 1) n = 1;
  MutexLock lock(GlobalPoolMutex());
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (slot != nullptr && slot->num_threads() == n) return;
  slot = std::make_unique<ThreadPool>(n);
}

}  // namespace dswm
