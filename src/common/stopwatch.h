// Wall-clock stopwatch for update-rate measurements (Figure 4(d)).

#ifndef DSWM_COMMON_STOPWATCH_H_
#define DSWM_COMMON_STOPWATCH_H_

#include <chrono>

namespace dswm {

/// Monotonic wall-clock timer. Start() resets; ElapsedSeconds() reads.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dswm

#endif  // DSWM_COMMON_STOPWATCH_H_
