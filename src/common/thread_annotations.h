// Clang thread-safety-analysis capability annotations (no-ops elsewhere).
//
// These macros attach the concurrency contract of a structure to its
// declaration so `clang -Wthread-safety` can machine-check it: which mutex
// guards which field, which functions must (or must not) be called with a
// lock held, and which scoped objects acquire/release a capability. Under
// GCC -- which has no thread-safety analysis -- every macro expands to
// nothing, so annotated code compiles identically everywhere; the analysis
// runs wherever clang is available (tools/run_checks.sh adds a
// -DDSWM_THREAD_SAFETY=ON clang tree when it can) and the structural
// invariant "every mutex field names guarded siblings" is enforced
// compiler-independently by tools/dswm_semlint.py rule
// mutex-without-capability.
//
// Conventions (DESIGN.md section 11):
//   * Lockable types are declared with DSWM_CAPABILITY("mutex"); the only
//     such type in the tree is dswm::Mutex (common/mutex.h). Raw std::mutex
//     outside common/mutex.h is a semlint violation -- it cannot carry the
//     capability, so clang could not check anything about it.
//   * Every field protected by a mutex is annotated DSWM_GUARDED_BY(mu_)
//     (DSWM_PT_GUARDED_BY for the pointee of a pointer field).
//   * Functions that must run with the lock held are DSWM_REQUIRES(mu_);
//     functions that take the lock themselves are DSWM_EXCLUDES(mu_) so
//     reentrant acquisition is rejected at compile time.

#ifndef DSWM_COMMON_THREAD_ANNOTATIONS_H_
#define DSWM_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && (!defined(SWIG))
#define DSWM_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define DSWM_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Declares a lockable type; the string names the capability in diagnostics.
#define DSWM_CAPABILITY(x) DSWM_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII type whose constructor acquires and destructor releases
/// a capability (e.g. MutexLock).
#define DSWM_SCOPED_CAPABILITY DSWM_THREAD_ANNOTATION_(scoped_lockable)

/// Field or method data is protected by the given capability.
#define DSWM_GUARDED_BY(x) DSWM_THREAD_ANNOTATION_(guarded_by(x))

/// The data a pointer field points to is protected by the capability (the
/// pointer itself may be read freely).
#define DSWM_PT_GUARDED_BY(x) DSWM_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Callers must hold the capability (exclusively) when calling.
#define DSWM_REQUIRES(...) \
  DSWM_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Callers must NOT hold the capability when calling (the function takes it
/// itself; rejects self-deadlock at compile time).
#define DSWM_EXCLUDES(...) \
  DSWM_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and does not release it.
#define DSWM_ACQUIRE(...) \
  DSWM_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the capability.
#define DSWM_RELEASE(...) \
  DSWM_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function returns a reference to the given capability (used by
/// accessors like Mutex::native()).
#define DSWM_RETURN_CAPABILITY(x) DSWM_THREAD_ANNOTATION_(lock_returned(x))

/// Asserts (at runtime, to the analysis) that the capability is held.
#define DSWM_ASSERT_CAPABILITY(x) \
  DSWM_THREAD_ANNOTATION_(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the contract holds anyway.
#define DSWM_NO_THREAD_SAFETY_ANALYSIS \
  DSWM_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // DSWM_COMMON_THREAD_ANNOTATIONS_H_
