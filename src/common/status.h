// Arrow/RocksDB-style Status and StatusOr for fallible operations.
//
// Used for operations that can fail at runtime for reasons outside the
// caller's control (I/O, malformed input, configuration validation).
// Programming errors use DSWM_CHECK instead.

#ifndef DSWM_COMMON_STATUS_H_
#define DSWM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace dswm {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Result of an operation that can fail without a value.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: epsilon must be > 0".
  [[nodiscard]] std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kInternal: return "Internal";
    }
    return "Unknown";
  }

  StatusCode code_;
  std::string message_;
};

/// Result of an operation that yields a T on success.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from a value: success.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  /// Implicit from a non-OK status: failure.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    DSWM_CHECK(!status_.ok());
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// The contained value; requires ok().
  [[nodiscard]] const T& value() const& {
    DSWM_CHECK(ok());
    return *value_;
  }
  [[nodiscard]] T& value() & {
    DSWM_CHECK(ok());
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    DSWM_CHECK(ok());
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dswm

/// Propagates a non-OK Status from the current function.
#define DSWM_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::dswm::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (false)

#endif  // DSWM_COMMON_STATUS_H_
