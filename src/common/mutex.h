// Annotated mutex primitives: the only lockable types in the codebase.
//
// dswm::Mutex wraps std::mutex and carries the clang thread-safety
// CAPABILITY attribute, so fields can be declared DSWM_GUARDED_BY(mu_) and
// the analysis can prove every access happens under the right lock. Raw
// std::mutex cannot carry the attribute, so it is confined to this header
// (enforced by tools/dswm_semlint.py rule mutex-without-capability).
//
// dswm::MutexLock is the scoped acquisition type (SCOPED_CAPABILITY);
// dswm::CondVar is the matching condition variable whose Wait() declares
// DSWM_REQUIRES(mu), closing the classic annotation hole where a wait
// releases and reacquires the lock invisibly.
//
// All three are thin, header-only, and exception-free. Locking discipline:
// never hold a Mutex across a call that can reenter the owning object
// (Channel::Send -> handler -> Send is a legal cycle; see net/channel.h).

#ifndef DSWM_COMMON_MUTEX_H_
#define DSWM_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace dswm {

/// A std::mutex with the clang thread-safety capability attribute.
class DSWM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DSWM_ACQUIRE() { mu_.lock(); }
  void Unlock() DSWM_RELEASE() { mu_.unlock(); }

  /// The wrapped std::mutex, for interop with std condition primitives.
  /// Only CondVar below should need this.
  [[nodiscard]] std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// RAII lock for a Mutex; the scoped capability the analysis tracks.
class DSWM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DSWM_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() DSWM_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with dswm::Mutex. Wait() must be called with
/// the mutex held (a MutexLock in scope) and returns with it held again;
/// the annotation makes clang reject a wait on an unlocked mutex.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks until notified, and reacquires `mu`.
  /// Spurious wakeups happen; use the predicate overload.
  void Wait(Mutex& mu) DSWM_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release the unique_lock's ownership claim so the MutexLock in
    // the caller's scope remains the sole owner.
    std::unique_lock<std::mutex> lock(mu.native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Waits until `pred()` holds (re-checked on every wakeup).
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) DSWM_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dswm

#endif  // DSWM_COMMON_MUTEX_H_
