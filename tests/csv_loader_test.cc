#include "stream/csv_loader.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace dswm {
namespace {

TEST(ParseCsv, BasicNumericRows) {
  const auto rows = ParseCsv("1.5,2,3\n4,5,6.25\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0].values, (std::vector<double>{1.5, 2, 3}));
  EXPECT_EQ(rows.value()[0].timestamp, 1);
  EXPECT_EQ(rows.value()[1].timestamp, 2);
}

TEST(ParseCsv, TimestampColumnExtracted) {
  CsvOptions options;
  options.timestamp_column = 0;
  options.timestamp_scale = 10.0;
  const auto rows = ParseCsv("3.0,1,2\n5.0,4,5\n", options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0].timestamp, 30);
  EXPECT_EQ(rows.value()[0].values, (std::vector<double>{1, 2}));
  EXPECT_EQ(rows.value()[1].timestamp, 50);
}

TEST(ParseCsv, SortsByTimestamp) {
  CsvOptions options;
  options.timestamp_column = 0;
  const auto rows = ParseCsv("5,1\n2,7\n9,3\n", options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[0].timestamp, 2);
  EXPECT_EQ(rows.value()[1].timestamp, 5);
  EXPECT_EQ(rows.value()[2].timestamp, 9);
}

TEST(ParseCsv, SkipHeaderAndCrLf) {
  CsvOptions options;
  options.skip_header = true;
  const auto rows = ParseCsv("a,b\r\n1,2\r\n", options);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 1u);
  EXPECT_EQ(rows.value()[0].values, (std::vector<double>{1, 2}));
}

TEST(ParseCsv, CustomDelimiter) {
  CsvOptions options;
  options.delimiter = ';';
  const auto rows = ParseCsv("1;2\n3;4\n", options);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value()[1].values, (std::vector<double>{3, 4}));
}

TEST(ParseCsv, RejectsNonNumeric) {
  const auto rows = ParseCsv("1,two\n");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParseCsv, RejectsRaggedRows) {
  const auto rows = ParseCsv("1,2,3\n4,5\n");
  ASSERT_FALSE(rows.ok());
}

TEST(ParseCsv, RejectsBadTimestampColumn) {
  CsvOptions options;
  options.timestamp_column = 7;
  EXPECT_FALSE(ParseCsv("1,2\n", options).ok());
}

TEST(ParseCsv, EmptyContent) {
  const auto rows = ParseCsv("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows.value().empty());
}

TEST(LoadCsv, MissingFileIsIoError) {
  const auto rows = LoadCsv("/nonexistent/definitely_missing.csv");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kIoError);
}

TEST(LoadCsv, RoundTripThroughDisk) {
  const std::string path = ::testing::TempDir() + "/dswm_csv_test.csv";
  {
    std::ofstream out(path);
    out << "1,0.5\n2,0.25\n";
  }
  const auto rows = LoadCsv(path);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_DOUBLE_EQ(rows.value()[1].values[1], 0.25);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dswm
