#include "core/sum_tracker.h"

#include <cmath>
#include <deque>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dswm {
namespace {

// Exact reference: per-site window sums.
class ExactDistributedSum {
 public:
  ExactDistributedSum(int sites, Timestamp window)
      : window_(window), items_(sites) {}
  void Add(int site, double w, Timestamp t) {
    items_[site].push_back({w, t});
  }
  double Query(Timestamp now) {
    double total = 0.0;
    for (auto& q : items_) {
      while (!q.empty() && q.front().second <= now - window_) q.pop_front();
      for (const auto& [w, t] : q) total += w;
    }
    return total;
  }

 private:
  Timestamp window_;
  std::vector<std::deque<std::pair<double, Timestamp>>> items_;
};

struct SumCase {
  double eps;
  int sites;
  bool heavy;
};

class SumTrackerProperty : public ::testing::TestWithParam<SumCase> {};

TEST_P(SumTrackerProperty, RelativeErrorBoundHolds) {
  const auto [eps, sites, heavy] = GetParam();
  const Timestamp window = 600;
  SumTracker tracker(sites, window, eps);
  ExactDistributedSum exact(sites, window);
  Rng rng(11 + sites);

  double worst = 0.0;
  for (int i = 1; i <= 8000; ++i) {
    const Timestamp t = i;
    const int site = static_cast<int>(rng.NextBelow(sites));
    const double w =
        heavy ? std::exp(3.0 * rng.NextGaussian()) : 1.0 + rng.NextDouble();
    tracker.AdvanceTime(t);
    ASSERT_TRUE(tracker.Observe(site, w, t).ok());
    exact.Add(site, w, t);
    if (i % 17 == 0) {
      const double truth = exact.Query(t);
      if (truth <= 0) continue;
      worst = std::max(worst,
                       std::fabs(tracker.Estimate() - truth) / truth);
    }
  }
  EXPECT_LE(worst, eps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SumTrackerProperty,
    ::testing::Values(SumCase{0.3, 1, false}, SumCase{0.1, 1, false},
                      SumCase{0.1, 5, false}, SumCase{0.1, 5, true},
                      SumCase{0.05, 3, true}, SumCase{0.02, 2, false}));

TEST(SumTracker, EstimateDropsToZeroAfterFullExpiry) {
  SumTracker tracker(2, 50, 0.1);
  EXPECT_TRUE(tracker.Observe(0, 10.0, 1).ok());
  EXPECT_TRUE(tracker.Observe(1, 20.0, 2).ok());
  EXPECT_GT(tracker.Estimate(), 0.0);
  tracker.AdvanceTime(1000);
  EXPECT_DOUBLE_EQ(tracker.Estimate(), 0.0);
}

TEST(SumTracker, CommunicationScalesLogarithmicallyNotLinearly) {
  const Timestamp window = 2000;
  SumTracker tracker(1, window, 0.1);
  Rng rng(5);
  for (int i = 1; i <= 20000; ++i) {
    tracker.AdvanceTime(i);
    ASSERT_TRUE(tracker.Observe(0, 1.0 + rng.NextDouble(), i).ok());
  }
  // 20000 arrivals, 10 windows: O((1/eps) log(NR)) messages per window is
  // a few hundred; sending every arrival would be 20000 messages.
  EXPECT_LT(tracker.Comm().messages, 3000);
  EXPECT_GT(tracker.Comm().messages, 10);
  // One-way protocol: nothing flows down.
  EXPECT_EQ(tracker.Comm().words_down, 0);
}

TEST(SumTracker, TighterEpsilonCostsMoreCommunication) {
  auto run = [](double eps) {
    SumTracker tracker(2, 500, eps);
    Rng rng(6);
    for (int i = 1; i <= 5000; ++i) {
      tracker.AdvanceTime(i);
      EXPECT_TRUE(tracker
                      .Observe(static_cast<int>(rng.NextBelow(2)),
                               1.0 + rng.NextDouble(), i)
                      .ok());
    }
    return tracker.Comm().TotalWords();
  };
  EXPECT_GT(run(0.02), run(0.2));
}

TEST(SumTracker, InjectedChannelCarriesTheDeltas) {
  auto channel = std::make_unique<net::LoopbackChannel>(1);
  net::Channel* raw = channel.get();
  SumTracker tracker(1, 100, 0.1, std::move(channel));
  EXPECT_TRUE(tracker.Observe(0, 5.0, 1).ok());
  EXPECT_GT(raw->comm().TotalWords(), 0);
  EXPECT_EQ(tracker.channel(), raw);
  // Every delta is a 1-word kSumDelta frame; the ledger and the derived
  // counters agree byte for byte.
  EXPECT_EQ(raw->ledger().TotalPayloadBytes(), 8 * raw->comm().TotalWords());
  EXPECT_EQ(raw->ledger().ByKind(net::MessageKind::kSumDelta).words,
            raw->comm().words_up);
}

TEST(SumTracker, SpaceBoundedBySketchNotStream) {
  SumTracker tracker(1, 5000, 0.1);
  Rng rng(7);
  for (int i = 1; i <= 20000; ++i) {
    tracker.AdvanceTime(i);
    ASSERT_TRUE(tracker.Observe(0, 1.0 + rng.NextDouble(), i).ok());
  }
  EXPECT_LT(tracker.MaxSiteSpaceWords(), 3000);  // << 5000 active items
}

}  // namespace
}  // namespace dswm
