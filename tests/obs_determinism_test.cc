// The observability determinism contract (DESIGN.md §10):
//
//  1. Enabling metrics must not change any reported tracker result -- every
//     algorithm must produce a bit-identical RunResult and sketch with
//     metrics on vs off.
//  2. Deterministic metrics (everything but *.wall_ns) must be identical
//     between threaded and single-threaded runs: counter adds are
//     commutative and instrumentation sites never depend on chunking.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "core/tracker_factory.h"
#include "monitor/driver.h"
#include "obs/metrics.h"
#include "stream/synthetic.h"

namespace dswm {
namespace {

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kPwor,      Algorithm::kPworAll, Algorithm::kEswor,
          Algorithm::kEsworAll,  Algorithm::kDa1,     Algorithm::kDa2,
          Algorithm::kPwr,       Algorithm::kEswr,    Algorithm::kPwrShared,
          Algorithm::kEswrShared, Algorithm::kCentral};
}

std::vector<TimedRow> Data() {
  SyntheticConfig config;
  config.rows = 1800;
  config.dim = 6;
  config.seed = 31;
  SyntheticGenerator gen(config);
  return Materialize(&gen, config.rows);
}

struct RunOutput {
  RunResult result;
  Matrix sketch;
};

RunOutput RunOnce(Algorithm algorithm, const std::vector<TimedRow>& rows) {
  TrackerConfig config;
  config.dim = 6;
  config.num_sites = 3;
  config.window = 400;
  config.epsilon = 0.25;
  config.ell_override = 16;
  config.seed = 21;
  auto tracker = MakeTracker(algorithm, config);
  DSWM_CHECK(tracker.ok());
  DriverOptions options;
  options.query_points = 8;
  options.seed = 5;
  StatusOr<RunResult> run =
      RunTracker(tracker.value().get(), rows, 3, 400, options);
  DSWM_CHECK(run.ok());
  return RunOutput{std::move(run).value(), tracker.value()->Query().Rows()};
}

void ExpectSameResult(const RunOutput& a, const RunOutput& b) {
  EXPECT_DOUBLE_EQ(a.result.avg_err, b.result.avg_err);
  EXPECT_DOUBLE_EQ(a.result.max_err, b.result.max_err);
  EXPECT_EQ(a.result.total_words, b.result.total_words);
  EXPECT_EQ(a.result.messages, b.result.messages);
  EXPECT_EQ(a.result.rows_sent, b.result.rows_sent);
  EXPECT_EQ(a.result.broadcasts, b.result.broadcasts);
  EXPECT_EQ(a.result.max_site_space_words, b.result.max_site_space_words);
  EXPECT_EQ(a.sketch, b.sketch);
}

class ObsDeterminism : public ::testing::TestWithParam<Algorithm> {
 protected:
  void SetUp() override {
    obs::SetEnabled(false);
    obs::Registry().ResetForTest();
  }
  void TearDown() override {
    obs::SetEnabled(false);
    obs::Registry().ResetForTest();
  }
};

TEST_P(ObsDeterminism, EnablingMetricsChangesNoResult) {
  const std::vector<TimedRow> rows = Data();
  const RunOutput off = RunOnce(GetParam(), rows);
  EXPECT_TRUE(off.result.metrics.empty());  // metrics off: no snapshot

  obs::SetEnabled(true);
  const RunOutput on = RunOnce(GetParam(), rows);
  ExpectSameResult(off, on);
  EXPECT_FALSE(on.result.metrics.empty());
}

TEST_P(ObsDeterminism, ThreadedRunSameDeterministicMetrics) {
  const std::vector<TimedRow> rows = Data();
  obs::SetEnabled(true);

  const RunOutput single = RunOnce(GetParam(), rows);
  ThreadPool::SetGlobalThreads(4);
  const RunOutput threaded = RunOnce(GetParam(), rows);
  ThreadPool::SetGlobalThreads(1);

  ExpectSameResult(single, threaded);
  const obs::MetricsSnapshot a = single.result.metrics.WithoutWallTimes();
  const obs::MetricsSnapshot b = threaded.result.metrics.WithoutWallTimes();
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  EXPECT_EQ(a.histograms, b.histograms);
  // Serialized form agrees byte for byte, too.
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ObsDeterminism,
                         ::testing::ValuesIn(AllAlgorithms()));

TEST(ObsDeterminism, RunSnapshotIsScopedToTheRun) {
  // Two identical runs with metrics on: the second run's DeltaSince-scoped
  // snapshot must equal the first (the cumulative registry cancels out).
  const std::vector<TimedRow> rows = Data();
  obs::SetEnabled(true);
  obs::Registry().ResetForTest();
  const RunOutput first = RunOnce(Algorithm::kDa2, rows);
  const RunOutput second = RunOnce(Algorithm::kDa2, rows);
  const obs::MetricsSnapshot a = first.result.metrics.WithoutWallTimes();
  const obs::MetricsSnapshot b = second.result.metrics.WithoutWallTimes();
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.histograms, b.histograms);
  obs::SetEnabled(false);
  obs::Registry().ResetForTest();
}

}  // namespace
}  // namespace dswm
