#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dswm {
namespace {

TEST(Matrix, IdentityAndAccess) {
  Matrix m = Matrix::Identity(3);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(Matrix, AppendRowGrowsAndKeepsData) {
  Matrix m(0, 3);
  const double r0[] = {1, 2, 3};
  const double r1[] = {4, 5, 6};
  m.AppendRow(r0, 3);
  m.AppendRow(r1, 3);
  EXPECT_EQ(m.rows(), 2);
  EXPECT_DOUBLE_EQ(m(1, 1), 5.0);
}

TEST(Matrix, ReservePreallocatesWithoutChangingShape) {
  Matrix m(0, 3);
  m.Reserve(100);
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 3);
  const double r0[] = {1, 2, 3};
  m.AppendRow(r0, 3);
  EXPECT_EQ(m.rows(), 1);
  // Reserving must not invalidate existing data, and appending up to the
  // reserved capacity keeps row pointers stable (no reallocation).
  const double* row0 = m.Row(0);
  const double r1[] = {4, 5, 6};
  for (int i = 1; i < 100; ++i) m.AppendRow(r1, 3);
  EXPECT_EQ(m.Row(0), row0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(99, 2), 6.0);
  // Shrinking reserve is a no-op.
  m.Reserve(1);
  EXPECT_EQ(m.rows(), 100);
  EXPECT_DOUBLE_EQ(m(42, 0), 4.0);
}

TEST(Matrix, AppendRowSetsColsOnEmptyMatrix) {
  Matrix m(0, 0);
  const double r0[] = {7, 8};
  m.AppendRow(r0, 2);
  EXPECT_EQ(m.rows(), 1);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
}

TEST(Matrix, TransposedRoundTrip) {
  Rng rng(3);
  Matrix m(4, 7);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 7; ++j) m(i, j) = rng.NextGaussian();
  }
  const Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 7);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.Transposed(), m);
}

TEST(Matrix, FrobeniusNormSquared) {
  Matrix m(2, 2);
  m(0, 0) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.FrobeniusNormSquared(), 25.0);
}

TEST(Matrix, AddOuterProduct) {
  Matrix c(2, 2);
  const double v[] = {2.0, -1.0};
  c.AddOuterProduct(v, 1.0);
  EXPECT_DOUBLE_EQ(c(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(c(1, 0), -2.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 1.0);
}

TEST(Matrix, SparseOuterProductMatchesDense) {
  const int d = 6;
  Matrix dense(d, d);
  Matrix sparse(d, d);
  std::vector<double> v(d, 0.0);
  v[1] = 2.0;
  v[4] = -3.0;
  dense.AddOuterProduct(v.data(), 1.5);
  sparse.AddSparseOuterProduct(v.data(), {1, 4}, 1.5);
  EXPECT_LT(MaxAbsDiff(dense, sparse), 1e-15);
}

TEST(Matrix, GramTransposeEqualsExplicit) {
  Rng rng(5);
  Matrix a(5, 3);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 3; ++j) a(i, j) = rng.NextGaussian();
  }
  const Matrix g = GramTranspose(a);
  const Matrix g2 = MatMul(a.Transposed(), a);
  EXPECT_LT(MaxAbsDiff(g, g2), 1e-12);
}

TEST(Matrix, GramEqualsExplicit) {
  Rng rng(6);
  Matrix a(4, 6);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 6; ++j) a(i, j) = rng.NextGaussian();
  }
  const Matrix g = Gram(a);
  const Matrix g2 = MatMul(a, a.Transposed());
  EXPECT_LT(MaxAbsDiff(g, g2), 1e-12);
}

TEST(Matrix, MatVecAndMatTVec) {
  Matrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const double x[] = {1.0, -1.0, 2.0};
  double y[2];
  MatVec(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 11.0);

  const double z[] = {1.0, 1.0};
  double w[3];
  MatTVec(a, z, w);
  EXPECT_DOUBLE_EQ(w[0], 5.0);
  EXPECT_DOUBLE_EQ(w[1], 7.0);
  EXPECT_DOUBLE_EQ(w[2], 9.0);
}

TEST(Matrix, SubtractAndAddScaled) {
  Matrix a = Matrix::Identity(2);
  Matrix b = Matrix::Identity(2);
  b.AddScaled(a, 2.0);  // b = 3I
  const Matrix c = Subtract(b, a);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 0.0);
}

TEST(VectorKernels, DotNormAxpyScale) {
  double x[] = {1.0, 2.0, 2.0};
  double y[] = {1.0, 0.0, -1.0};
  EXPECT_DOUBLE_EQ(Dot(x, y, 3), -1.0);
  EXPECT_DOUBLE_EQ(NormSquared(x, 3), 9.0);
  Axpy(2.0, x, y, 3);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
  Scale(y, 3, 0.5);
  EXPECT_DOUBLE_EQ(y[0], 1.5);
}

}  // namespace
}  // namespace dswm
