// Bit-identity of the batched small-matrix engine against sequential
// loops, over a grid of dimensions x batch sizes (including 0 and 1) x
// thread counts. The batched engine's contract (linalg/batched.h) is that
// problem i writes only slot i and the per-problem computation is the
// same instruction sequence as the loop, so batched == looped == threaded
// byte for byte. The *Threaded* tests also run under TSan via the
// 'ThreadPool|Threaded' filter in tools/run_checks.sh.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/batched.h"
#include "linalg/matrix.h"
#include "linalg/symmetric_eigen.h"
#include "sketch/frequent_directions.h"
#include "window/matrix_eh.h"

namespace dswm {
namespace {

Matrix RandomSymmetric(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(d, d);
  for (int i = 0; i < d; ++i) {
    for (int j = 0; j <= i; ++j) {
      const double v = rng.NextGaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

::testing::AssertionResult BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  for (int i = 0; i < a.rows(); ++i) {
    if (std::memcmp(a.Row(i), b.Row(i),
                    sizeof(double) * static_cast<size_t>(a.cols())) != 0) {
      return ::testing::AssertionFailure() << "row " << i << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult BitIdenticalValues(const std::vector<double>& a,
                                              const std::vector<double>& b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), sizeof(double) * a.size()) != 0) {
    return ::testing::AssertionFailure() << "values differ";
  }
  return ::testing::AssertionSuccess();
}

class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { ThreadPool::SetGlobalThreads(n); }
  ~ScopedThreads() { ThreadPool::SetGlobalThreads(1); }
};

struct BatchedCase {
  int dim;
  int batch;
  int threads;
};

class ThreadedBatchedEngine : public ::testing::TestWithParam<BatchedCase> {};

TEST_P(ThreadedBatchedEngine, SymEigenMatchesLoopedSequential) {
  const auto [dim, batch, threads] = GetParam();

  std::vector<Matrix> problems;
  problems.reserve(batch);
  for (int i = 0; i < batch; ++i) {
    problems.push_back(
        RandomSymmetric(dim, 900 + 31ULL * dim + 7ULL * i));
  }
  std::vector<const Matrix*> ptrs;
  for (const Matrix& m : problems) ptrs.push_back(&m);

  // Looped oracle, always single-threaded-inline semantics.
  std::vector<EigenResult> looped;
  for (const Matrix& m : problems) looped.push_back(SymmetricEigen(m));

  ScopedThreads scoped(threads);
  const std::vector<EigenResult> batched = BatchedSymEigen(ptrs);

  ASSERT_EQ(batched.size(), static_cast<size_t>(batch));
  for (int i = 0; i < batch; ++i) {
    EXPECT_TRUE(BitIdenticalValues(batched[i].values, looped[i].values))
        << "problem " << i;
    EXPECT_TRUE(BitIdentical(batched[i].vectors, looped[i].vectors))
        << "problem " << i;
  }
}

TEST_P(ThreadedBatchedEngine, FdShrinkMatchesLoopedSequential) {
  const auto [dim, batch, threads] = GetParam();
  const int ell = 3;

  // Per job: a destination FD with a part-full buffer, two source FDs
  // whose rows force embedded shrinks during the merge, and alternating
  // compact flags.
  std::vector<FrequentDirections> dsts;
  std::vector<FrequentDirections> srcs;
  dsts.reserve(batch);
  srcs.reserve(2 * batch);
  for (int i = 0; i < batch; ++i) {
    Rng rng(4400 + 13ULL * dim + static_cast<uint64_t>(i));
    FrequentDirections dst(dim, ell);
    std::vector<double> row(dim);
    for (int r = 0; r < ell + i % 3; ++r) {
      for (double& v : row) v = rng.NextGaussian();
      dst.Append(row.data());
    }
    dsts.push_back(std::move(dst));
    for (int s = 0; s < 2; ++s) {
      FrequentDirections src(dim, ell);
      for (int r = 0; r < 2 * ell - s; ++r) {
        for (double& v : row) v = rng.NextGaussian();
        src.Append(row.data());
      }
      srcs.push_back(std::move(src));
    }
  }

  // Looped oracle on copies: the exact Merge/Compact sequence each job
  // will replay.
  std::vector<FrequentDirections> expected = dsts;
  for (int i = 0; i < batch; ++i) {
    expected[i].Merge(srcs[2 * i]);
    expected[i].Merge(srcs[2 * i + 1]);
    if (i % 2 == 0) expected[i].Compact();
  }

  std::vector<FdShrinkJob> jobs(batch);
  for (int i = 0; i < batch; ++i) {
    jobs[i].fd = &dsts[i];
    jobs[i].sources = {&srcs[2 * i], &srcs[2 * i + 1]};
    jobs[i].compact = i % 2 == 0;
  }

  ScopedThreads scoped(threads);
  BatchedFdShrink(jobs.data(), batch);

  for (int i = 0; i < batch; ++i) {
    EXPECT_EQ(dsts[i].row_count(), expected[i].row_count()) << "job " << i;
    EXPECT_TRUE(BitIdentical(dsts[i].RowsMatrix(), expected[i].RowsMatrix()))
        << "job " << i;
    const double got = dsts[i].shrinkage();
    const double want = expected[i].shrinkage();
    EXPECT_EQ(std::memcmp(&got, &want, sizeof(double)), 0) << "job " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ThreadedBatchedEngine,
    ::testing::Values(BatchedCase{1, 0, 1}, BatchedCase{1, 1, 4},
                      BatchedCase{3, 2, 1}, BatchedCase{3, 5, 4},
                      BatchedCase{8, 0, 4}, BatchedCase{8, 1, 1},
                      BatchedCase{8, 3, 2}, BatchedCase{8, 16, 4},
                      BatchedCase{17, 2, 4}, BatchedCase{17, 7, 3},
                      BatchedCase{33, 4, 4}, BatchedCase{33, 9, 2}));

// End-to-end: the same stream replayed through MatrixExpHistogram at 1 vs
// N threads produces byte-identical sketches. The stream interleaves unit
// rows with heavy bursts so Compress runs many multi-source merge groups
// (the batched path) as well as single merges and no-op passes.
TEST(ThreadedMehCompress, EndToEndBitIdenticalOneVsFourThreads) {
  const int d = 24;
  const double eps = 0.4;
  const Timestamp window = 600;

  auto replay = [&]() {
    MatrixExpHistogram meh(d, eps, window);
    Rng rng(77);
    std::vector<double> row(d);
    for (int t = 1; t <= 900; ++t) {
      for (double& v : row) v = rng.NextGaussian();
      if (t % 37 == 0) {
        for (double& v : row) v *= 16.0;  // heavy burst: cascades merges
      }
      meh.Insert(row.data(), t);
    }
    return meh;
  };

  const MatrixExpHistogram single = replay();
  MatrixExpHistogram threaded(d, eps, window);
  {
    ScopedThreads scoped(4);
    threaded = replay();
  }

  EXPECT_EQ(single.TotalRows(), threaded.TotalRows());
  EXPECT_EQ(single.SpaceWords(), threaded.SpaceWords());
  const double f1 = single.FrobeniusSquaredEstimate();
  const double f4 = threaded.FrobeniusSquaredEstimate();
  EXPECT_EQ(std::memcmp(&f1, &f4, sizeof(double)), 0);
  EXPECT_TRUE(BitIdentical(single.QueryRows(), threaded.QueryRows()));
  EXPECT_TRUE(
      BitIdentical(single.QueryCovariance(), threaded.QueryCovariance()));
}

}  // namespace
}  // namespace dswm
