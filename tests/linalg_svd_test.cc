#include "linalg/svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dswm {
namespace {

Matrix RandomMatrix(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

Matrix ReconstructFromSvd(const SvdResult& svd) {
  const int n = svd.u.rows();
  const int d = svd.vt.cols();
  const int r = static_cast<int>(svd.sigma.size());
  Matrix a(n, d);
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < r; ++k) {
      Axpy(svd.u(i, k) * svd.sigma[k], svd.vt.Row(k), a.Row(i), d);
    }
  }
  return a;
}

struct Shape {
  int n;
  int d;
};

class SvdProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(SvdProperty, ReconstructsWithOrthonormalFactors) {
  const auto [n, d] = GetParam();
  const Matrix a = RandomMatrix(n, d, 31 * n + d);
  const SvdResult svd = ThinSvd(a);
  const int r = static_cast<int>(svd.sigma.size());
  ASSERT_LE(r, std::min(n, d));

  // Descending nonnegative singular values.
  for (int i = 1; i < r; ++i) EXPECT_GE(svd.sigma[i - 1], svd.sigma[i]);
  for (double s : svd.sigma) EXPECT_GE(s, 0.0);

  // Vt rows orthonormal.
  for (int i = 0; i < r; ++i) {
    for (int j = i; j < r; ++j) {
      EXPECT_NEAR(Dot(svd.vt.Row(i), svd.vt.Row(j), d), i == j ? 1.0 : 0.0,
                  1e-8);
    }
  }
  // U columns orthonormal.
  for (int i = 0; i < r; ++i) {
    for (int j = i; j < r; ++j) {
      double dot = 0.0;
      for (int k = 0; k < n; ++k) dot += svd.u(k, i) * svd.u(k, j);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-7);
    }
  }

  const double scale = std::sqrt(a.FrobeniusNormSquared()) + 1e-12;
  EXPECT_LT(MaxAbsDiff(ReconstructFromSvd(svd), a) / scale, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdProperty,
    ::testing::Values(Shape{1, 1}, Shape{3, 8}, Shape{8, 3}, Shape{5, 5},
                      Shape{2, 40}, Shape{40, 2}, Shape{20, 64},
                      Shape{64, 20}));

TEST(Svd, RankDeficientDropsZeroDirections) {
  // Two identical rows: rank 1.
  Matrix a(2, 4);
  for (int j = 0; j < 4; ++j) {
    a(0, j) = j + 1.0;
    a(1, j) = j + 1.0;
  }
  const SvdResult svd = ThinSvd(a);
  ASSERT_EQ(svd.sigma.size(), 1u);
  EXPECT_NEAR(svd.sigma[0] * svd.sigma[0], 2.0 * (1 + 4 + 9 + 16), 1e-9);
}

TEST(Svd, EmptyMatrix) {
  const SvdResult svd = ThinSvd(Matrix(0, 5));
  EXPECT_TRUE(svd.sigma.empty());
}

TEST(RightSvd, SigmaSquaredMatchesGramEigenvalues) {
  const Matrix a = RandomMatrix(6, 4, 77);
  const RightSvdResult r = RightSvd(a);
  // sum sigma^2 = ||A||_F^2.
  double sum = 0.0;
  for (double s2 : r.sigma_squared) sum += s2;
  EXPECT_NEAR(sum, a.FrobeniusNormSquared(), 1e-8);
  // A^T A v_i = sigma_i^2 v_i.
  const Matrix g = GramTranspose(a);
  std::vector<double> gv(4);
  for (int i = 0; i < 4; ++i) {
    MatVec(g, r.vt.Row(i), gv.data());
    for (int j = 0; j < 4; ++j) {
      EXPECT_NEAR(gv[j], r.sigma_squared[i] * r.vt(i, j), 1e-7);
    }
  }
}

TEST(RightSvd, WideMatrixUsesSmallGram) {
  // 3 x 200: the decomposition must go through the 3x3 Gram matrix and
  // still produce orthonormal right vectors.
  const Matrix a = RandomMatrix(3, 200, 5);
  const RightSvdResult r = RightSvd(a);
  ASSERT_EQ(r.vt.rows(), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(NormSquared(r.vt.Row(i), 200), 1.0, 1e-8);
  }
}

}  // namespace
}  // namespace dswm
