// Reproducibility: all protocols are deterministic functions of
// (config.seed, stream), so identical runs must produce identical
// communication, samples, and sketches -- the property every experiment
// in EXPERIMENTS.md relies on.

#include <gtest/gtest.h>

#include "core/tracker_factory.h"
#include "monitor/driver.h"
#include "stream/synthetic.h"

namespace dswm {
namespace {

std::vector<TimedRow> Data() {
  SyntheticConfig config;
  config.rows = 2500;
  config.dim = 6;
  config.seed = 8;
  SyntheticGenerator gen(config);
  return Materialize(&gen, config.rows);
}

class Determinism : public ::testing::TestWithParam<Algorithm> {};

TEST_P(Determinism, IdenticalRunsIdenticalResults) {
  const Algorithm algorithm = GetParam();
  const std::vector<TimedRow> rows = Data();

  auto run = [&rows, algorithm]() {
    TrackerConfig config;
    config.dim = 6;
    config.num_sites = 3;
    config.window = 500;
    config.epsilon = 0.2;
    config.ell_override = 20;
    config.seed = 77;
    auto tracker = MakeTracker(algorithm, config);
    DSWM_CHECK(tracker.ok());
    DriverOptions options;
    options.query_points = 10;
    options.seed = 5;
    StatusOr<RunResult> r =
        RunTracker(tracker.value().get(), rows, 3, 500, options);
    DSWM_CHECK(r.ok());
    return std::make_pair(std::move(r).value(),
                          tracker.value()->Query().Rows());
  };

  const auto [r1, sketch1] = run();
  const auto [r2, sketch2] = run();
  EXPECT_EQ(r1.total_words, r2.total_words);
  EXPECT_EQ(r1.messages, r2.messages);
  EXPECT_EQ(r1.rows_sent, r2.rows_sent);
  EXPECT_EQ(r1.broadcasts, r2.broadcasts);
  EXPECT_DOUBLE_EQ(r1.avg_err, r2.avg_err);
  EXPECT_DOUBLE_EQ(r1.max_err, r2.max_err);
  EXPECT_EQ(r1.max_site_space_words, r2.max_site_space_words);
  EXPECT_EQ(sketch1, sketch2);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, Determinism,
                         ::testing::ValuesIn(PaperAlgorithms()));

TEST(Determinism, DifferentSeedsDifferForSampling) {
  const std::vector<TimedRow> rows = Data();
  auto words = [&rows](uint64_t seed) {
    TrackerConfig config;
    config.dim = 6;
    config.num_sites = 3;
    config.window = 500;
    config.epsilon = 0.2;
    config.ell_override = 20;
    config.seed = seed;
    auto tracker = MakeTracker(Algorithm::kPwor, config);
    DriverOptions options;
    options.query_points = 3;
    return RunTracker(tracker.value().get(), rows, 3, 500, options)
        .value()
        .total_words;
  };
  EXPECT_NE(words(1), words(2));  // different priority draws
}

}  // namespace
}  // namespace dswm
