// The serving-tier determinism contract: published snapshot bytes are a
// pure function of the stream and the window -- bit-identical under the
// lockstep oracle, the event-driven scheduler, and the multi-process
// socket backend, and untouched by any number of concurrent readers.

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/tracker_factory.h"
#include "linalg/matrix.h"
#include "monitor/driver.h"
#include "monitor/runtime.h"
#include "runtime/runtime.h"
#include "serve/query_service.h"
#include "serve/snapshot_store.h"
#include "stream/synthetic.h"

namespace dswm {
namespace {

std::vector<TimedRow> SmallStream(int rows) {
  SyntheticConfig config;
  config.rows = rows;
  config.dim = 8;
  config.seed = 3;
  SyntheticGenerator gen(config);
  return Materialize(&gen, config.rows);
}

struct VersionBytes {
  uint64_t version = 0;
  Timestamp published_at = 0;
  std::vector<double> covariance;
  std::vector<double> rows;
};

std::vector<double> CopyMatrix(const Matrix& m) {
  const size_t n = static_cast<size_t>(m.rows()) * static_cast<size_t>(m.cols());
  return std::vector<double>(m.data(), m.data() + n);
}

// Replays `rows` under the given runtime with publication wired into the
// driver, recording every published version's bytes. `reader_threads`
// concurrent sessions hammer the store for the whole run (0 = none).
std::vector<VersionBytes> RunAndRecord(runtime::RuntimeKind kind,
                                       Algorithm algorithm,
                                       const std::vector<TimedRow>& rows,
                                       Timestamp window, int reader_threads) {
  runtime::RuntimeOptions runtime_options;
  runtime_options.kind = kind;
  const std::unique_ptr<Runtime> rt = runtime::MakeRuntime(runtime_options);

  TrackerConfig config;
  config.dim = 8;
  config.num_sites = 3;
  config.window = window;
  config.epsilon = 0.2;
  config.seed = 11;
  config.channel_backend = rt->backend();
  auto tracker = MakeTracker(algorithm, config);
  EXPECT_TRUE(tracker.ok()) << tracker.status().message();

  std::vector<VersionBytes> recorded;
  serve::StoreOptions store_options;
  store_options.on_publish = [&recorded](const serve::Snapshot& snapshot) {
    VersionBytes v;
    v.version = snapshot.meta().version;
    v.published_at = snapshot.meta().published_at;
    v.covariance = CopyMatrix(snapshot.estimate().Covariance());
    v.rows = CopyMatrix(snapshot.estimate().Rows());
    recorded.push_back(std::move(v));
  };
  serve::SnapshotStore store(store_options);
  serve::QueryService service(&store);

  DriverOptions options;
  options.query_points = 4;
  options.seed = 123;
  options.publish_store = &store;

  std::atomic<bool> done{false};
  ThreadPool pool(reader_threads + 1);
  for (int r = 0; r < reader_threads; ++r) {
    pool.Submit([&service, &done] {
      serve::QueryService::Session session = service.NewSession();
      const std::vector<double> x(8, 0.5);
      long served = 0;
      while (!done.load(std::memory_order_acquire) || served < 50) {
        if (session.Pca(x.data(), 8).ok()) ++served;
        if (session.Anomaly(x.data(), 8).ok()) ++served;
      }
    });
  }
  auto run = rt->Run(tracker.value().get(), rows, config.num_sites, window,
                     options);
  done.store(true, std::memory_order_release);
  pool.WaitIdle();
  EXPECT_TRUE(run.ok()) << run.status().message();
  EXPECT_GE(recorded.size(), 2u);
  return recorded;
}

void ExpectSameVersions(const std::vector<VersionBytes>& got,
                        const std::vector<VersionBytes>& want,
                        const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].version, want[i].version) << label << " v" << i;
    EXPECT_EQ(got[i].published_at, want[i].published_at) << label << " v" << i;
    ASSERT_EQ(got[i].covariance.size(), want[i].covariance.size())
        << label << " v" << i;
    EXPECT_EQ(std::memcmp(got[i].covariance.data(), want[i].covariance.data(),
                          got[i].covariance.size() * sizeof(double)),
              0)
        << label << " covariance v" << i;
    ASSERT_EQ(got[i].rows.size(), want[i].rows.size()) << label << " v" << i;
    EXPECT_EQ(std::memcmp(got[i].rows.data(), want[i].rows.data(),
                          got[i].rows.size() * sizeof(double)),
              0)
        << label << " rows v" << i;
  }
}

TEST(ServeBitIdentity, SnapshotBytesIdenticalAcrossRuntimesAndReaders) {
  const std::vector<TimedRow> rows = SmallStream(500);
  const Timestamp window =
      (rows.back().timestamp - rows.front().timestamp + 1) / 3;

  // DA2 publishes covariance-native estimates, PWOR rows-native sketches:
  // both conversion directions must be deterministic.
  for (Algorithm a : {Algorithm::kDa2, Algorithm::kPwor}) {
    SCOPED_TRACE(AlgorithmName(a));
    const auto oracle =
        RunAndRecord(runtime::RuntimeKind::kLockstep, a, rows, window, 0);

    const auto with_readers =
        RunAndRecord(runtime::RuntimeKind::kLockstep, a, rows, window, 4);
    ExpectSameVersions(with_readers, oracle, "lockstep+4readers");

    const auto events =
        RunAndRecord(runtime::RuntimeKind::kEvents, a, rows, window, 0);
    ExpectSameVersions(events, oracle, "events");

    const auto process =
        RunAndRecord(runtime::RuntimeKind::kProcess, a, rows, window, 0);
    ExpectSameVersions(process, oracle, "process");
  }
}

TEST(ServeBitIdentity, LoadedRunsRepeatIdentically) {
  // Two identical loaded runs (readers racing the feed) record identical
  // publication streams: reader pressure cannot perturb published state.
  const std::vector<TimedRow> rows = SmallStream(400);
  const Timestamp window =
      (rows.back().timestamp - rows.front().timestamp + 1) / 3;
  const auto first = RunAndRecord(runtime::RuntimeKind::kLockstep,
                                  Algorithm::kDa2, rows, window, 2);
  const auto second = RunAndRecord(runtime::RuntimeKind::kLockstep,
                                   Algorithm::kDa2, rows, window, 2);
  ExpectSameVersions(second, first, "repeat");
}

}  // namespace
}  // namespace dswm
