#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/psd_sqrt.h"
#include "linalg/qr.h"
#include "linalg/spectral_norm.h"
#include "linalg/symmetric_eigen.h"

namespace dswm {
namespace {

Matrix RandomSymmetric(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(d, d);
  for (int i = 0; i < d; ++i) {
    for (int j = i; j < d; ++j) {
      const double v = rng.NextGaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

TEST(HouseholderQr, Reconstructs) {
  Rng rng(1);
  Matrix a(6, 4);
  for (int i = 0; i < 6; ++i) {
    for (int j = 0; j < 4; ++j) a(i, j) = rng.NextGaussian();
  }
  const QrResult qr = HouseholderQr(a);
  EXPECT_LT(MaxAbsDiff(MatMul(qr.q, qr.r), a), 1e-10);
  // R upper triangular.
  for (int i = 1; i < qr.r.rows(); ++i) {
    for (int j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(qr.r(i, j), 0.0);
  }
  // Q columns orthonormal.
  const Matrix qtq = GramTranspose(qr.q);
  EXPECT_LT(MaxAbsDiff(qtq, Matrix::Identity(4)), 1e-10);
}

class RandomOrthonormalProperty
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(RandomOrthonormalProperty, RowsAreOrthonormal) {
  const auto [k, d] = GetParam();
  Rng rng(17);
  const Matrix u = RandomOrthonormalRows(k, d, &rng);
  ASSERT_EQ(u.rows(), k);
  ASSERT_EQ(u.cols(), d);
  const Matrix uut = Gram(u);
  EXPECT_LT(MaxAbsDiff(uut, Matrix::Identity(k)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Shapes, RandomOrthonormalProperty,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 5},
                                           std::pair{5, 5}, std::pair{8, 32},
                                           std::pair{32, 32}));

TEST(SpectralNorm, MatchesExactOnRandomSymmetric) {
  for (int d : {2, 5, 12, 33}) {
    const Matrix m = RandomSymmetric(d, 200 + d);
    const double exact = SpectralNormExact(m);
    const double power = SpectralNormSym(m);
    EXPECT_NEAR(power, exact, 1e-5 * exact) << "d=" << d;
  }
}

TEST(SpectralNorm, DominantNegativeEigenvalue) {
  Matrix m(2, 2);
  m(0, 0) = -10.0;
  m(1, 1) = 3.0;
  EXPECT_NEAR(SpectralNormSym(m), 10.0, 1e-6);
}

TEST(SpectralNorm, SymmetricPlusMinusPair) {
  // lambda = +5 and -5: the M^2 iteration must not cancel them out.
  Matrix m(2, 2);
  m(0, 1) = 5.0;
  m(1, 0) = 5.0;
  EXPECT_NEAR(SpectralNormSym(m), 5.0, 1e-6);
}

TEST(SpectralNorm, ZeroMatrix) {
  EXPECT_DOUBLE_EQ(SpectralNormSym(Matrix(4, 4)), 0.0);
}

TEST(SpectralNormWarm, ConvergesAndReusesVector) {
  const Matrix m = RandomSymmetric(10, 4);
  const double exact = SpectralNormExact(m);
  std::vector<double> warm;
  const double first = SpectralNormSymWarm(
      [&m](const double* x, double* y) { MatVec(m, x, y); }, 10, &warm, 200,
      1e-10);
  EXPECT_NEAR(first, exact, 1e-4 * exact);
  // Second call with warm vector and few iterations stays accurate.
  const double second = SpectralNormSymWarm(
      [&m](const double* x, double* y) { MatVec(m, x, y); }, 10, &warm, 5,
      1e-10);
  EXPECT_NEAR(second, exact, 1e-3 * exact);
}

TEST(PsdSqrt, RoundTripsPsdMatrix) {
  Rng rng(8);
  Matrix b0(5, 7);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 7; ++j) b0(i, j) = rng.NextGaussian();
  }
  const Matrix c = GramTranspose(b0);
  const Matrix b = PsdSqrt(c);
  EXPECT_LE(b.rows(), 7);
  EXPECT_LT(MaxAbsDiff(GramTranspose(b), c),
            1e-8 * (1.0 + c.FrobeniusNormSquared()));
}

TEST(PsdSqrt, ClampsNegativeEigenvalues) {
  Matrix c(2, 2);
  c(0, 0) = 4.0;
  c(1, 1) = -1.0;  // slightly indefinite accumulation artifact
  const Matrix b = PsdSqrt(c);
  ASSERT_EQ(b.rows(), 1);
  EXPECT_NEAR(NormSquared(b.Row(0), 2), 4.0, 1e-12);
}

TEST(PsdSqrt, ZeroMatrixGivesEmptySketch) {
  EXPECT_EQ(PsdSqrt(Matrix(3, 3)).rows(), 0);
}

}  // namespace
}  // namespace dswm
