#include "core/with_replacement_tracker.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tracker_factory.h"
#include "sketch/covariance.h"
#include "window/exact_window.h"

namespace dswm {
namespace {

TimedRow RandomRow(Rng* rng, int d, Timestamp t) {
  TimedRow row;
  row.timestamp = t;
  row.values.resize(d);
  for (int j = 0; j < d; ++j) row.values[j] = rng->NextGaussian();
  return row;
}

TrackerConfig Config(int ell) {
  TrackerConfig config;
  config.dim = 4;
  config.num_sites = 2;
  config.window = 300;
  config.epsilon = 0.3;
  config.ell_override = ell;
  config.seed = 21;
  return config;
}

TEST(WithReplacement, ProducesEllSamplesInSteadyState) {
  WithReplacementTracker tracker(Config(12), SamplingScheme::kPriority);
  EXPECT_EQ(tracker.ell(), 12);
  Rng rng(1);
  for (int i = 1; i <= 1200; ++i) {
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)), RandomRow(&rng, 4, i)).ok());
  }
  const Matrix sketch = tracker.Query().Rows();
  EXPECT_EQ(sketch.rows(), 12);
  // WR estimator: every scaled row has squared norm F^2 / l.
  const double expected = NormSquared(sketch.Row(0), 4);
  for (int i = 1; i < 12; ++i) {
    EXPECT_NEAR(NormSquared(sketch.Row(i), 4), expected, 1e-9 * expected);
  }
}

TEST(WithReplacement, AggregatedCommIsSumOfParts) {
  WithReplacementTracker tracker(Config(6), SamplingScheme::kPriority);
  Rng rng(2);
  for (int i = 1; i <= 600; ++i) {
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)), RandomRow(&rng, 4, i)).ok());
  }
  const CommStats& c = tracker.Comm();
  EXPECT_GT(c.TotalWords(), 0);
  EXPECT_EQ(c.TotalWords(), c.words_up + c.words_down);
  EXPECT_GE(c.messages, 6);  // at least one shipment per sampler
}

TEST(WithReplacement, EstimatorRoughlyTracksCovariance) {
  WithReplacementTracker tracker(Config(96), SamplingScheme::kPriority);
  ExactWindow exact(4, 300);
  Rng rng(3);
  double err = 1.0;
  for (int i = 1; i <= 1500; ++i) {
    TimedRow row = RandomRow(&rng, 4, i);
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)), row).ok());
    exact.Add(row);
    exact.Advance(i);
    if (i == 1500) {
      err = CovarianceErrorOfSketch(exact.Covariance(),
                                    tracker.Query().Rows(),
                                    exact.FrobeniusSquared());
    }
  }
  EXPECT_LT(err, 0.45);  // ~1/sqrt(96) with slack
}

TEST(WithReplacement, ExpiryDrainsAllSamplers) {
  WithReplacementTracker tracker(Config(5), SamplingScheme::kPriority);
  Rng rng(4);
  for (int i = 1; i <= 200; ++i) {
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)), RandomRow(&rng, 4, i)).ok());
  }
  tracker.AdvanceTime(5000);
  EXPECT_EQ(tracker.Query().Rows().rows(), 0);
}

TEST(WithReplacement, EsVariantNameAndBehaviour) {
  WithReplacementTracker tracker(Config(5),
                                 SamplingScheme::kEfraimidisSpirakis);
  EXPECT_EQ(tracker.Name(), "ESWR");
  Rng rng(5);
  for (int i = 1; i <= 400; ++i) {
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)), RandomRow(&rng, 4, i)).ok());
  }
  EXPECT_EQ(tracker.Query().Rows().rows(), 5);
}

}  // namespace
}  // namespace dswm
