// The unified query/Status API: CovarianceEstimate lazy conversion and
// caching, Observe/RunTracker error paths, and the no-gratuitous-copy
// audit of the driver's snapshot path (via the Matrix copy counter).

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "core/covariance_estimate.h"
#include "core/tracker_factory.h"
#include "monitor/driver.h"
#include "stream/synthetic.h"

namespace dswm {
namespace {

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kPwor,      Algorithm::kPworAll, Algorithm::kEswor,
          Algorithm::kEsworAll,  Algorithm::kDa1,     Algorithm::kDa2,
          Algorithm::kPwr,       Algorithm::kEswr,    Algorithm::kPwrShared,
          Algorithm::kEswrShared, Algorithm::kCentral};
}

Matrix SmallRows() {
  Matrix b(3, 2);
  b(0, 0) = 1.0;
  b(1, 1) = 2.0;
  b(2, 0) = 0.5;
  b(2, 1) = -1.0;
  return b;
}

TEST(CovarianceEstimate, RowsNativeComputesCovarianceLazily) {
  CovarianceEstimate est = CovarianceEstimate::FromRows(SmallRows());
  EXPECT_TRUE(est.NativeIsRows());
  EXPECT_EQ(est.Dim(), 2);

  const Matrix& cov1 = est.Covariance();
  EXPECT_EQ(cov1.rows(), 2);
  EXPECT_EQ(cov1.cols(), 2);
  EXPECT_EQ(cov1, GramTranspose(est.Rows()));

  // Cached: the second access returns the same object, no recompute.
  const Matrix& cov2 = est.Covariance();
  EXPECT_EQ(&cov1, &cov2);
}

TEST(CovarianceEstimate, CovarianceNativeComputesRowsLazily) {
  const Matrix cov = GramTranspose(SmallRows());
  CovarianceEstimate est = CovarianceEstimate::FromCovariance(cov);
  EXPECT_FALSE(est.NativeIsRows());
  EXPECT_EQ(est.Dim(), 2);

  const Matrix& b1 = est.Rows();
  EXPECT_EQ(b1.cols(), 2);
  // PSD square root: B^T B reconstructs the covariance.
  EXPECT_LT(MaxAbsDiff(GramTranspose(b1), cov), 1e-9);
  EXPECT_EQ(&b1, &est.Rows());  // cached
}

TEST(CovarianceEstimate, NativeAccessAndMovesNeverCopy) {
  Matrix b = SmallRows();
  const long before = Matrix::CopyCount();
  CovarianceEstimate est = CovarianceEstimate::FromRows(std::move(b));
  const Matrix& rows = est.Rows();  // native view: no conversion
  EXPECT_EQ(rows.rows(), 3);
  CovarianceEstimate moved = std::move(est);
  EXPECT_EQ(moved.Rows().rows(), 3);
  EXPECT_EQ(Matrix::CopyCount(), before);
}

TEST(CovarianceEstimate, CopyIsDeepAndCountsAsCopy) {
  CovarianceEstimate est = CovarianceEstimate::FromRows(SmallRows());
  const long before = Matrix::CopyCount();
  CovarianceEstimate copy = est;
  EXPECT_GT(Matrix::CopyCount(), before);
  EXPECT_EQ(copy.Rows(), est.Rows());
}

TEST(CovarianceEstimate, EmptyEstimate) {
  const CovarianceEstimate est;
  EXPECT_TRUE(est.NativeIsRows());
  EXPECT_EQ(est.Dim(), 0);
  EXPECT_EQ(est.Rows().rows(), 0);
}

TimedRow RowAt(Timestamp t, int d) {
  TimedRow row;
  row.timestamp = t;
  row.values.assign(d, 1.0);
  return row;
}

std::unique_ptr<DistributedTracker> SmallTracker(Algorithm a) {
  TrackerConfig config;
  config.dim = 3;
  config.num_sites = 2;
  config.window = 100;
  config.epsilon = 0.3;
  config.ell_override = 8;
  auto tracker = MakeTracker(a, config);
  DSWM_CHECK(tracker.ok());
  return std::move(tracker).value();
}

class ObserveErrors : public ::testing::TestWithParam<Algorithm> {};

TEST_P(ObserveErrors, RejectsBadSiteAndTimeRegression) {
  auto tracker = SmallTracker(GetParam());

  const Status bad_site_low = tracker->Observe(-1, RowAt(1, 3));
  EXPECT_EQ(bad_site_low.code(), StatusCode::kInvalidArgument);
  const Status bad_site_high = tracker->Observe(2, RowAt(1, 3));
  EXPECT_EQ(bad_site_high.code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(tracker->Observe(0, RowAt(10, 3)).ok());
  // Time must be non-decreasing across Observe calls.
  const Status regression = tracker->Observe(1, RowAt(9, 3));
  EXPECT_EQ(regression.code(), StatusCode::kInvalidArgument);
  // Equal timestamps and later times remain fine after the rejection.
  EXPECT_TRUE(tracker->Observe(1, RowAt(10, 3)).ok());
  EXPECT_TRUE(tracker->Observe(0, RowAt(11, 3)).ok());
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, ObserveErrors,
                         ::testing::ValuesIn(AllAlgorithms()));

TEST(DriverOptionsValidate, CatchesBadFields) {
  DriverOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.query_points = -1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.query_points = 5;
  options.warmup_fraction = 1.5;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.warmup_fraction = -0.1;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(RunTrackerValidation, RejectsBadInputsUpFront) {
  const std::vector<TimedRow> rows = {RowAt(1, 3), RowAt(2, 3)};

  EXPECT_EQ(RunTracker(nullptr, rows, 2, 100, DriverOptions()).status().code(),
            StatusCode::kInvalidArgument);

  auto tracker = SmallTracker(Algorithm::kDa2);
  EXPECT_EQ(RunTracker(tracker.get(), rows, 0, 100, DriverOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      RunTracker(tracker.get(), rows, 2, 0, DriverOptions()).status().code(),
      StatusCode::kInvalidArgument);

  DriverOptions bad;
  bad.warmup_fraction = 2.0;
  EXPECT_EQ(RunTracker(tracker.get(), rows, 2, 100, bad).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RunTrackerValidation, RejectsBadRowsWithoutFeedingTracker) {
  auto tracker = SmallTracker(Algorithm::kDa2);

  const std::vector<TimedRow> wrong_dim = {RowAt(1, 3), RowAt(2, 4)};
  EXPECT_EQ(RunTracker(tracker.get(), wrong_dim, 2, 100, DriverOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  const std::vector<TimedRow> out_of_order = {RowAt(5, 3), RowAt(4, 3)};
  EXPECT_EQ(RunTracker(tracker.get(), out_of_order, 2, 100, DriverOptions())
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Validation happened before any Observe: the tracker is still usable
  // from its initial time.
  EXPECT_TRUE(tracker->Observe(0, RowAt(1, 3)).ok());
  EXPECT_EQ(tracker->Comm().TotalWords() >= 0, true);
}

TEST(DriverSnapshotPath, QueryEvaluationAvoidsGratuitousCopies) {
  // The driver snapshots tracker state at each query point; the estimate
  // must move (not deep-copy) into the evaluation. Replaying the same
  // stream with 0 vs 20 query points isolates the per-query cost from
  // tracker-internal bookkeeping: the difference must be a small constant
  // per query point (exact-window snapshot + tracker estimate snapshot),
  // never linear in rows.
  SyntheticConfig data;
  data.rows = 600;
  data.dim = 5;
  data.seed = 7;
  SyntheticGenerator gen(data);
  const std::vector<TimedRow> rows = Materialize(&gen, data.rows);

  const auto copies_for = [&rows](int query_points) {
    TrackerConfig config;
    config.dim = 5;
    config.num_sites = 2;
    config.window = 150;
    config.epsilon = 0.3;
    auto tracker = MakeTracker(Algorithm::kDa2, config);
    DSWM_CHECK(tracker.ok());
    DriverOptions options;
    options.query_points = query_points;
    const long before = Matrix::CopyCount();
    DSWM_CHECK(RunTracker(tracker.value().get(), rows, 2, 150, options).ok());
    return Matrix::CopyCount() - before;
  };

  const long baseline = copies_for(0);
  const long with_queries = copies_for(20);
  EXPECT_LE(with_queries - baseline, 4 * 20 + 8);
}

}  // namespace
}  // namespace dswm
