// End-to-end integration: every protocol built through the factory, run
// over miniature versions of the paper's workloads through the driver,
// must (a) stay well under its error target, (b) communicate sublinearly
// in the stream, and (c) survive failure-injection streams.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tracker_factory.h"
#include "monitor/driver.h"
#include "stream/pamap_like.h"
#include "stream/synthetic.h"
#include "stream/wiki_like.h"

namespace dswm {
namespace {

std::vector<TimedRow> MiniSynthetic(int rows, int d) {
  SyntheticConfig config;
  config.rows = rows;
  config.dim = d;
  config.seed = 5;
  SyntheticGenerator gen(config);
  return Materialize(&gen, rows);
}

struct GridCase {
  Algorithm algorithm;
  double eps;
};

class TrackerGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(TrackerGrid, ErrorAndCommunicationOnMiniSynthetic) {
  const auto [algorithm, eps] = GetParam();
  const int d = 8;
  const Timestamp window = 600;
  const std::vector<TimedRow> rows = MiniSynthetic(3000, d);

  TrackerConfig config;
  config.dim = d;
  config.num_sites = 4;
  config.window = window;
  config.epsilon = eps;
  config.seed = 2;
  if (algorithm == Algorithm::kPwr || algorithm == Algorithm::kEswr) {
    config.ell_override = 24;  // WR cost is Theta(l) per row
  }
  auto tracker_or = MakeTracker(algorithm, config);
  ASSERT_TRUE(tracker_or.ok());

  DriverOptions options;
  options.query_points = 25;
  const StatusOr<RunResult> run = RunTracker(tracker_or.value().get(), rows,
                                             config.num_sites, window, options);
  ASSERT_TRUE(run.ok());
  const RunResult& result = run.value();

  // Deterministic protocols must meet eps outright; sampling protocols
  // carry a randomized guarantee (and WR uses a tiny l here), so allow
  // slack.
  const bool deterministic =
      algorithm == Algorithm::kDa1 || algorithm == Algorithm::kDa2;
  const bool with_replacement =
      algorithm == Algorithm::kPwr || algorithm == Algorithm::kEswr;
  const double budget =
      deterministic ? eps : (with_replacement ? 1.0 : 3.0 * eps);
  EXPECT_LE(result.max_err, budget) << AlgorithmName(algorithm);

  // Sublinear communication: far fewer words than shipping every row.
  // (WR protocols run l independent samplers, so their total is ~l times
  // a single-sample protocol -- the cost the paper excludes them for.)
  if (!with_replacement) {
    const long naive = static_cast<long>(rows.size()) * (d + 1);
    EXPECT_LT(result.total_words, naive) << AlgorithmName(algorithm);
  }
  EXPECT_GT(result.total_words, 0);
}

std::vector<GridCase> MakeGrid() {
  std::vector<GridCase> grid;
  for (Algorithm a : PaperAlgorithms()) {
    for (double eps : {0.3, 0.15}) grid.push_back({a, eps});
  }
  grid.push_back({Algorithm::kPwr, 0.3});
  grid.push_back({Algorithm::kEswr, 0.3});
  return grid;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, TrackerGrid,
                         ::testing::ValuesIn(MakeGrid()));

class FailureInjection : public ::testing::TestWithParam<Algorithm> {};

TEST_P(FailureInjection, BurstySilenceAndSkew) {
  // Bursts, long silences (whole windows expire), a silent site, constant
  // rows, and one enormous outlier.
  const Algorithm algorithm = GetParam();
  const int d = 5;
  const Timestamp window = 200;

  std::vector<TimedRow> rows;
  Rng rng(77);
  Timestamp t = 1;
  for (int phase = 0; phase < 6; ++phase) {
    const int burst = phase % 2 == 0 ? 300 : 30;
    for (int i = 0; i < burst; ++i) {
      TimedRow row;
      row.timestamp = t;
      row.values.resize(d);
      if (phase == 3) {
        for (int j = 0; j < d; ++j) row.values[j] = 1.0;  // constant rows
      } else {
        for (int j = 0; j < d; ++j) row.values[j] = rng.NextGaussian();
      }
      if (phase == 4 && i == 10) {
        row.values.assign(d, 0.0);
        row.values[0] = 300.0;  // massive outlier
      }
      rows.push_back(std::move(row));
      if (i % 3 == 0) ++t;
    }
    t += phase == 1 ? 3 * window : window / 2;  // silences; full expiry once
  }

  TrackerConfig config;
  config.dim = d;
  config.num_sites = 3;  // driver assigns at random; some sites go quiet
  config.window = window;
  config.epsilon = 0.25;
  config.ell_override = 40;
  config.seed = 4;
  auto tracker_or = MakeTracker(algorithm, config);
  ASSERT_TRUE(tracker_or.ok());

  DriverOptions options;
  options.query_points = 30;
  options.warmup_fraction = 0.1;
  const StatusOr<RunResult> run = RunTracker(tracker_or.value().get(), rows,
                                             config.num_sites, window, options);
  ASSERT_TRUE(run.ok());
  const RunResult& result = run.value();
  // Survival + sanity: errors finite and bounded, nothing crashed.
  EXPECT_LT(result.max_err, 1.0) << AlgorithmName(algorithm);
  EXPECT_GE(result.avg_err, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, FailureInjection,
                         ::testing::ValuesIn(PaperAlgorithms()));

TEST(Integration, DeterministicBeatsSamplingAtEqualEpsilon) {
  // The paper's headline qualitative claim (Section IV-B observation 1).
  const int d = 8;
  const Timestamp window = 500;
  const std::vector<TimedRow> rows = MiniSynthetic(4000, d);

  TrackerConfig config;
  config.dim = d;
  config.num_sites = 4;
  config.window = window;
  config.epsilon = 0.2;
  config.seed = 9;

  auto da2 = MakeTracker(Algorithm::kDa2, config);
  auto pwor = MakeTracker(Algorithm::kPwor, config);
  DriverOptions options;
  const StatusOr<RunResult> rd =
      RunTracker(da2.value().get(), rows, 4, window, options);
  const StatusOr<RunResult> rs =
      RunTracker(pwor.value().get(), rows, 4, window, options);
  ASSERT_TRUE(rd.ok());
  ASSERT_TRUE(rs.ok());
  EXPECT_LT(rd.value().avg_err, rs.value().avg_err);
}

TEST(Integration, SamplingCommFlatInSitesDeterministicLinear) {
  // Figure 1(f)/2(f) shape: deterministic comm ~ m, sampling comm ~ const.
  const int d = 6;
  const Timestamp window = 400;
  const std::vector<TimedRow> rows = MiniSynthetic(4000, d);

  auto words = [&](Algorithm a, int m) {
    TrackerConfig config;
    config.dim = d;
    config.num_sites = m;
    config.window = window;
    config.epsilon = 0.2;
    config.seed = 10;
    auto tracker = MakeTracker(a, config);
    DriverOptions options;
    options.query_points = 5;
    return RunTracker(tracker.value().get(), rows, m, window, options)
        .value()
        .total_words;
  };

  const double da2_ratio =
      static_cast<double>(words(Algorithm::kDa2, 16)) /
      static_cast<double>(words(Algorithm::kDa2, 2));
  const double pwor_ratio =
      static_cast<double>(words(Algorithm::kPwor, 16)) /
      static_cast<double>(words(Algorithm::kPwor, 2));
  EXPECT_GT(da2_ratio, 3.0);   // roughly linear in m (8x sites)
  EXPECT_LT(pwor_ratio, 2.5);  // nearly flat in m
}

TEST(Integration, MiniPamapAndWikiRunAllAlgorithms) {
  PamapLikeConfig pconfig;
  pconfig.rows = 2000;
  PamapLikeGenerator pgen(pconfig);
  const std::vector<TimedRow> pamap = Materialize(&pgen, pconfig.rows);

  WikiLikeConfig wconfig;
  wconfig.rows = 1500;
  wconfig.dim = 64;
  wconfig.max_doc_len = 48;
  WikiLikeGenerator wgen(wconfig);
  const std::vector<TimedRow> wiki = Materialize(&wgen, wconfig.rows);

  for (Algorithm a : PaperAlgorithms()) {
    for (const auto* data : {&pamap, &wiki}) {
      const int d = static_cast<int>(data->front().values.size());
      TrackerConfig config;
      config.dim = d;
      config.num_sites = 3;
      config.window = (data == &pamap) ? 500 : 40;
      config.epsilon = 0.3;
      config.ell_override = 30;
      config.seed = 6;
      auto tracker = MakeTracker(a, config);
      ASSERT_TRUE(tracker.ok());
      DriverOptions options;
      options.query_points = 8;
      const StatusOr<RunResult> r = RunTracker(tracker.value().get(), *data, 3,
                                               config.window, options);
      ASSERT_TRUE(r.ok());
      EXPECT_LT(r.value().max_err, 1.0) << AlgorithmName(a);
    }
  }
}

}  // namespace
}  // namespace dswm
