#include "window/exponential_histogram.h"

#include <cmath>
#include <deque>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dswm {
namespace {

// Exact reference for windowed sums.
class ExactSum {
 public:
  explicit ExactSum(Timestamp window) : window_(window) {}
  void Insert(double w, Timestamp t) { items_.push_back({w, t}); }
  double Query(Timestamp now) {
    while (!items_.empty() && items_.front().second <= now - window_) {
      items_.pop_front();
    }
    double s = 0.0;
    for (const auto& [w, t] : items_) s += w;
    return s;
  }

 private:
  Timestamp window_;
  std::deque<std::pair<double, Timestamp>> items_;
};

TEST(ExponentialHistogram, ExactForFewItems) {
  ExponentialHistogram eh(0.1, 100);
  eh.Insert(5.0, 10);
  eh.Insert(3.0, 20);
  EXPECT_DOUBLE_EQ(eh.Query(30), 8.0);
  // After the first item expires (t=10 <= 110-100).
  EXPECT_DOUBLE_EQ(eh.Query(110), 3.0);
  // Everything expired.
  EXPECT_DOUBLE_EQ(eh.Query(300), 0.0);
}

struct EhCase {
  double eps;
  int weight_mode;  // 0 uniform, 1 heavy-tailed, 2 bursty arrivals
};

class EhProperty : public ::testing::TestWithParam<EhCase> {};

TEST_P(EhProperty, RelativeErrorBoundHolds) {
  const auto [eps, mode] = GetParam();
  const Timestamp window = 500;
  ExponentialHistogram eh(eps, window);
  ExactSum exact(window);
  Rng rng(static_cast<uint64_t>(eps * 1000) + mode);

  Timestamp t = 0;
  double max_rel_err = 0.0;
  for (int i = 0; i < 6000; ++i) {
    switch (mode) {
      case 0:
        t += 1;
        break;
      case 1:
        t += 1;
        break;
      case 2:
        // Bursts followed by silence.
        t += (i % 100 == 0) ? 200 : (i % 3 == 0 ? 1 : 0);
        break;
    }
    const double w =
        mode == 1 ? std::exp(4.0 * rng.NextGaussian()) : 1.0 + rng.NextDouble();
    eh.Insert(w, t);
    exact.Insert(w, t);
    if (i % 7 == 0) {
      const double truth = exact.Query(t);
      const double est = eh.Query(t);
      if (truth > 0) {
        max_rel_err = std::max(max_rel_err, std::fabs(est - truth) / truth);
      }
    }
  }
  EXPECT_LE(max_rel_err, eps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EhProperty,
    ::testing::Values(EhCase{0.3, 0}, EhCase{0.1, 0}, EhCase{0.02, 0},
                      EhCase{0.3, 1}, EhCase{0.1, 1}, EhCase{0.02, 1},
                      EhCase{0.1, 2}, EhCase{0.02, 2}));

TEST(ExponentialHistogram, SpaceStaysLogarithmic) {
  const double eps = 0.1;
  ExponentialHistogram eh(eps, 10000);
  Rng rng(5);
  Timestamp t = 0;
  int max_buckets = 0;
  for (int i = 0; i < 50000; ++i) {
    ++t;
    eh.Insert(1.0 + rng.NextDouble(), t);
    max_buckets = std::max(max_buckets, eh.bucket_count());
  }
  // O((1/eps) log(NR)): generous constant check, but far below N.
  EXPECT_LT(max_buckets, 1200);
  EXPECT_GT(max_buckets, 10);
}

TEST(ExponentialHistogram, RejectsNonPositiveWeight) {
  ExponentialHistogram eh(0.1, 10);
  EXPECT_DEATH(eh.Insert(0.0, 1), "CHECK failed");
}

TEST(ExponentialHistogram, RejectsTimeTravel) {
  ExponentialHistogram eh(0.1, 10);
  eh.Insert(1.0, 5);
  EXPECT_DEATH(eh.Insert(1.0, 4), "CHECK failed");
}

TEST(ExponentialHistogram, EstimateWithoutAdvance) {
  ExponentialHistogram eh(0.5, 100);
  eh.Insert(2.0, 1);
  eh.Insert(3.0, 2);
  EXPECT_DOUBLE_EQ(eh.Estimate(), 5.0);
}

}  // namespace
}  // namespace dswm
