// Cross-validation between independent implementations of the same
// mathematics: the two SVD paths, spectral-norm estimators vs exact
// eigenvalues, FD vs exact covariance on random sweeps, and mEH vs the
// scalar gEH on the F-norm they both track.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/bidiag_svd.h"
#include "linalg/spectral_norm.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"
#include "sketch/frequent_directions.h"
#include "window/exponential_histogram.h"
#include "window/matrix_eh.h"

namespace dswm {
namespace {

Matrix RandomMatrix(int n, int d, uint64_t seed, double spread = 0.0) {
  Rng rng(seed);
  Matrix m(n, d);
  for (int i = 0; i < n; ++i) {
    const double scale =
        spread > 0.0 ? std::exp(spread * rng.NextGaussian()) : 1.0;
    for (int j = 0; j < d; ++j) m(i, j) = scale * rng.NextGaussian();
  }
  return m;
}

struct Shape {
  int n;
  int d;
};

class SvdCrossValidation : public ::testing::TestWithParam<Shape> {};

TEST_P(SvdCrossValidation, GramAndBidiagonalAgree) {
  const auto [n, d] = GetParam();
  const Matrix a = RandomMatrix(n, d, 7 * n + d, 0.5);
  const SvdResult gram = ThinSvd(a, 1e-9);
  const SvdResult bidiag = BidiagonalSvd(a, 1e-9);
  ASSERT_EQ(gram.sigma.size(), bidiag.sigma.size());
  for (size_t i = 0; i < gram.sigma.size(); ++i) {
    EXPECT_NEAR(gram.sigma[i], bidiag.sigma[i], 1e-6 * bidiag.sigma[0])
        << "i=" << i;
  }
  // Right subspaces agree: every gram v_i has unit projection onto the
  // bidiagonal basis restricted to (numerically) equal singular values.
  // Spot-check the leading vector when it is isolated.
  if (gram.sigma.size() >= 2 &&
      gram.sigma[0] > 1.05 * gram.sigma[1]) {
    const double dot =
        std::fabs(Dot(gram.vt.Row(0), bidiag.vt.Row(0), d));
    EXPECT_NEAR(dot, 1.0, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SvdCrossValidation,
                         ::testing::Values(Shape{6, 6}, Shape{20, 7},
                                           Shape{7, 20}, Shape{32, 16},
                                           Shape{48, 48}));

TEST(SpectralCrossValidation, ThreeEstimatorsAgree) {
  for (int d : {4, 9, 21}) {
    const Matrix a = RandomMatrix(2 * d, d, 31 + d);
    const Matrix c = GramTranspose(a);
    const double exact = SpectralNormExact(c);
    const double power = SpectralNormSym(c);
    std::vector<double> warm;
    const double warm_est = SpectralNormSymWarm(
        [&c](const double* x, double* y) { MatVec(c, x, y); }, d, &warm,
        300, 1e-10);
    const double svd_based = BidiagonalSvd(a).sigma[0];
    EXPECT_NEAR(power, exact, 1e-5 * exact);
    EXPECT_NEAR(warm_est, exact, 1e-4 * exact);
    EXPECT_NEAR(svd_based * svd_based, exact, 1e-6 * exact);
  }
}

struct FdSweep {
  int n;
  int d;
  int ell;
  double spread;
};

class FdCrossValidation : public ::testing::TestWithParam<FdSweep> {};

TEST_P(FdCrossValidation, ErrorMeasuredTwoWaysMatches) {
  const auto [n, d, ell, spread] = GetParam();
  const Matrix rows = RandomMatrix(n, d, 3 * n + d + ell, spread);
  FrequentDirections fd(d, ell);
  for (int i = 0; i < n; ++i) fd.Append(rows.Row(i));

  const Matrix gap = Subtract(GramTranspose(rows), fd.Covariance());
  const double exact = SpectralNormExact(gap);
  const double power = SpectralNormSym(gap);
  EXPECT_NEAR(power, exact, 1e-4 * (exact + 1e-12));
  EXPECT_LE(exact, fd.shrinkage() + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FdCrossValidation,
    ::testing::Values(FdSweep{100, 6, 2, 0.0}, FdSweep{400, 10, 5, 1.0},
                      FdSweep{250, 16, 4, 2.0}, FdSweep{800, 8, 8, 0.5}));

TEST(WindowCrossValidation, MehMassMatchesGehSum) {
  // The mEH's F-norm estimate and a gEH fed the same squared norms must
  // agree within their combined tolerances at all times.
  const int d = 5;
  const Timestamp window = 400;
  MatrixExpHistogram meh(d, 0.2, window);
  ExponentialHistogram geh(0.05, window);
  Rng rng(41);
  std::vector<double> row(d);
  for (int i = 1; i <= 3000; ++i) {
    for (int j = 0; j < d; ++j) row[j] = rng.NextGaussian();
    meh.Insert(row.data(), i);
    geh.Insert(NormSquared(row.data(), d), i);
    if (i > 400 && i % 61 == 0) {
      const double a = meh.FrobeniusSquaredEstimate();
      const double b = geh.Query(i);
      EXPECT_NEAR(a, b, 0.25 * b);
    }
  }
}

}  // namespace
}  // namespace dswm
