// Move and propagation semantics for Status / StatusOr: move-only payloads,
// rvalue value() extraction, DSWM_RETURN_NOT_OK chaining, and the
// [[nodiscard]] contract (compile-time; exercised here only for value flow).

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"

namespace dswm {
namespace {

TEST(StatusMove, MovedFromStatusTransfersMessage) {
  Status s = Status::IoError("disk on fire");
  const Status moved = std::move(s);
  EXPECT_EQ(moved.code(), StatusCode::kIoError);
  EXPECT_EQ(moved.message(), "disk on fire");
}

TEST(StatusMove, CopyKeepsSourceIntact) {
  const Status s = Status::OutOfRange("index 9");
  const Status copy = s;  // NOLINT(performance-unnecessary-copy-initialization)
  EXPECT_EQ(s.ToString(), copy.ToString());
  EXPECT_EQ(copy.code(), StatusCode::kOutOfRange);
}

TEST(StatusOrMove, HoldsMoveOnlyType) {
  StatusOr<std::unique_ptr<int>> result(std::make_unique<int>(7));
  ASSERT_TRUE(result.ok());
  const std::unique_ptr<int> extracted = std::move(result).value();
  ASSERT_NE(extracted, nullptr);
  EXPECT_EQ(*extracted, 7);
}

TEST(StatusOrMove, RvalueValueMovesOutOfContainer) {
  StatusOr<std::vector<int>> result(std::vector<int>{1, 2, 3});
  ASSERT_TRUE(result.ok());
  const std::vector<int> taken = std::move(result).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(StatusOrMove, MoveConstructedStatusOrKeepsError) {
  StatusOr<std::string> err(Status::NotFound("missing key"));
  const StatusOr<std::string> moved = std::move(err);
  EXPECT_FALSE(moved.ok());
  EXPECT_EQ(moved.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(moved.status().message(), "missing key");
}

TEST(StatusOrMove, LvalueValueAllowsInPlaceMutation) {
  StatusOr<std::vector<int>> result(std::vector<int>{1});
  ASSERT_TRUE(result.ok());
  result.value().push_back(2);
  EXPECT_EQ(result.value().size(), 2u);
}

Status Level2() { return Status::FailedPrecondition("bottom"); }
Status Level1() {
  DSWM_RETURN_NOT_OK(Level2());
  return Status::Internal("unreachable");
}
Status Level0() {
  DSWM_RETURN_NOT_OK(Level1());
  return Status::Internal("unreachable");
}

TEST(StatusPropagation, ReturnNotOkChainsAcrossFrames) {
  const Status s = Level0();
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(s.message(), "bottom");
}

Status OkChain() {
  DSWM_RETURN_NOT_OK(Status::OK());
  return Status::OK();
}

TEST(StatusPropagation, ReturnNotOkPassesThroughOk) {
  EXPECT_TRUE(OkChain().ok());
}

TEST(StatusOrContract, ValueOnErrorChecks) {
  const StatusOr<int> err(Status::Internal("boom"));
  EXPECT_DEATH({ (void)err.value(); }, "CHECK failed");
}

TEST(StatusOrContract, ConstructingFromOkStatusChecks) {
  EXPECT_DEATH({ StatusOr<int> bad{Status::OK()}; }, "CHECK failed");
}

}  // namespace
}  // namespace dswm
