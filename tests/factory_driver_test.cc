#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/tracker_factory.h"
#include "monitor/driver.h"
#include "stream/synthetic.h"

namespace dswm {
namespace {

TEST(Factory, NamesRoundTrip) {
  for (Algorithm a :
       {Algorithm::kPwor, Algorithm::kPworAll, Algorithm::kEswor,
        Algorithm::kEsworAll, Algorithm::kDa1, Algorithm::kDa2,
        Algorithm::kPwr, Algorithm::kEswr}) {
    const auto parsed = ParseAlgorithm(AlgorithmName(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), a);
  }
}

TEST(Factory, RejectsUnknownName) {
  EXPECT_FALSE(ParseAlgorithm("GRADIENT-DESCENT").ok());
}

TEST(Factory, RejectsInvalidConfig) {
  TrackerConfig config;  // dim = 0
  EXPECT_FALSE(MakeTracker(Algorithm::kPwor, config).ok());

  config.dim = 4;
  config.epsilon = 0.0;
  EXPECT_FALSE(MakeTracker(Algorithm::kDa2, config).ok());

  config.epsilon = 0.1;
  config.num_sites = 0;
  EXPECT_FALSE(MakeTracker(Algorithm::kDa1, config).ok());
}

TEST(Factory, RejectsEveryInvalidField) {
  // Each invalid field must fail on every algorithm, not just the ones the
  // smoke test above happens to pick.
  const std::vector<Algorithm> all = {
      Algorithm::kPwor,      Algorithm::kPworAll, Algorithm::kEswor,
      Algorithm::kEsworAll,  Algorithm::kDa1,     Algorithm::kDa2,
      Algorithm::kPwr,       Algorithm::kEswr,    Algorithm::kPwrShared,
      Algorithm::kEswrShared, Algorithm::kCentral};
  const auto base = [] {
    TrackerConfig c;
    c.dim = 3;
    c.num_sites = 2;
    c.window = 50;
    c.epsilon = 0.2;
    c.ell_override = 4;
    return c;
  };
  for (Algorithm a : all) {
    TrackerConfig c = base();
    c.epsilon = 1.0;  // must be strictly inside (0, 1)
    EXPECT_FALSE(MakeTracker(a, c).ok()) << AlgorithmName(a);

    c = base();
    c.epsilon = -0.1;
    EXPECT_FALSE(MakeTracker(a, c).ok()) << AlgorithmName(a);

    c = base();
    c.window = 0;
    EXPECT_FALSE(MakeTracker(a, c).ok()) << AlgorithmName(a);

    c = base();
    c.window = -7;
    EXPECT_FALSE(MakeTracker(a, c).ok()) << AlgorithmName(a);

    c = base();
    c.num_sites = -1;
    EXPECT_FALSE(MakeTracker(a, c).ok()) << AlgorithmName(a);
  }
}

TEST(Factory, RejectsInvalidNetProfile) {
  TrackerConfig config;
  config.dim = 3;
  config.num_sites = 2;
  config.window = 50;
  config.epsilon = 0.2;
  config.ell_override = 4;

  config.net.drop = 1.0;  // certain loss never delivers anything
  EXPECT_FALSE(MakeTracker(Algorithm::kPwor, config).ok());

  config.net.drop = 0.0;
  config.net.duplicate = -0.5;
  EXPECT_FALSE(MakeTracker(Algorithm::kDa2, config).ok());

  config.net.duplicate = 0.0;
  config.net.delay_min = 5;
  config.net.delay_max = 2;  // inverted range
  EXPECT_FALSE(MakeTracker(Algorithm::kCentral, config).ok());

  config.net.delay_min = 0;
  config.net.delay_max = 0;
  config.net.retry = 0;
  EXPECT_FALSE(MakeTracker(Algorithm::kEswor, config).ok());
}

TEST(Factory, UnknownNamesFailWithInvalidArgument) {
  for (const char* name : {"", "pwor", "DA3", "CENTRALIZED", "PWOR "}) {
    const auto parsed = ParseAlgorithm(name);
    EXPECT_FALSE(parsed.ok()) << "'" << name << "'";
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(Factory, BuildsEveryAlgorithmWithMatchingName) {
  TrackerConfig config;
  config.dim = 3;
  config.num_sites = 2;
  config.window = 100;
  config.epsilon = 0.2;
  config.ell_override = 8;
  for (Algorithm a : PaperAlgorithms()) {
    auto tracker = MakeTracker(a, config);
    ASSERT_TRUE(tracker.ok());
    EXPECT_EQ(tracker.value()->Name(), AlgorithmName(a));
    EXPECT_EQ(tracker.value()->Dim(), 3);
  }
}

TEST(TrackerConfig, SampleSizeDerivation) {
  TrackerConfig config;
  config.epsilon = 0.1;
  config.sample_constant = 1.0;
  // ceil(log(10)/0.01) = ceil(230.25...) = 231.
  EXPECT_EQ(config.SampleSize(), 231);
  config.ell_override = 77;
  EXPECT_EQ(config.SampleSize(), 77);
}

TEST(Driver, ReportsSaneMetrics) {
  SyntheticConfig data;
  data.rows = 1200;
  data.dim = 6;
  SyntheticGenerator gen(data);
  const std::vector<TimedRow> rows = Materialize(&gen, data.rows);

  TrackerConfig config;
  config.dim = 6;
  config.num_sites = 2;
  config.window = 300;
  config.epsilon = 0.25;
  config.ell_override = 30;
  auto tracker = MakeTracker(Algorithm::kPwor, config);
  ASSERT_TRUE(tracker.ok());

  DriverOptions options;
  options.query_points = 10;
  const StatusOr<RunResult> run =
      RunTracker(tracker.value().get(), rows, 2, 300, options);
  ASSERT_TRUE(run.ok());
  const RunResult& r = run.value();
  EXPECT_EQ(r.rows, 1200);
  EXPECT_GT(r.windows_spanned, 2.0);
  EXPECT_GT(r.words_per_window, 0.0);
  EXPECT_GT(r.update_rows_per_sec, 0.0);
  EXPECT_GT(r.max_site_space_words, 0);
  EXPECT_GE(r.max_err, r.avg_err);
  EXPECT_LE(r.avg_err, 1.0);
}

TEST(Driver, ThreadedRunMatchesSingleThreaded) {
  // The driver offloads query-point evaluation to the global pool but folds
  // results in query order, so a threaded run must report exactly the same
  // accuracy and communication as the single-threaded default.
  SyntheticConfig data;
  data.rows = 900;
  data.dim = 5;
  SyntheticGenerator gen(data);
  const std::vector<TimedRow> rows = Materialize(&gen, data.rows);

  TrackerConfig config;
  config.dim = 5;
  config.num_sites = 2;
  config.window = 250;
  config.epsilon = 0.25;
  config.ell_override = 20;
  DriverOptions options;
  options.query_points = 8;

  const auto run = [&] {
    auto tracker = MakeTracker(Algorithm::kPwor, config);
    EXPECT_TRUE(tracker.ok());
    StatusOr<RunResult> r = RunTracker(tracker.value().get(), rows, 2, 250,
                                       options);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  };
  const RunResult single = run();
  ThreadPool::SetGlobalThreads(4);
  const RunResult threaded = run();
  ThreadPool::SetGlobalThreads(1);

  EXPECT_DOUBLE_EQ(threaded.avg_err, single.avg_err);
  EXPECT_DOUBLE_EQ(threaded.max_err, single.max_err);
  EXPECT_EQ(threaded.total_words, single.total_words);
  EXPECT_EQ(threaded.rows, single.rows);
}

TEST(Driver, EmptyDataset) {
  TrackerConfig config;
  config.dim = 3;
  config.num_sites = 1;
  config.window = 10;
  config.epsilon = 0.2;
  auto tracker = MakeTracker(Algorithm::kDa2, config);
  const StatusOr<RunResult> run =
      RunTracker(tracker.value().get(), {}, 1, 10, DriverOptions());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run.value().rows, 0);
  EXPECT_EQ(run.value().total_words, 0);
}

TEST(Tracker, RowsAccessorFromCovarianceForm) {
  // Query().Rows() on a covariance-native estimate must PSD-sqrt it.
  TrackerConfig config;
  config.dim = 4;
  config.num_sites = 1;
  config.window = 100;
  config.epsilon = 0.3;
  auto tracker = MakeTracker(Algorithm::kDa1, config);
  Rng rng(3);
  for (int i = 1; i <= 300; ++i) {
    TimedRow row;
    row.timestamp = i;
    row.values = {rng.NextGaussian(), rng.NextGaussian(), rng.NextGaussian(),
                  rng.NextGaussian()};
    EXPECT_TRUE(tracker.value()->Observe(0, row).ok());
  }
  const CovarianceEstimate estimate = tracker.value()->Query();
  EXPECT_FALSE(estimate.NativeIsRows());
  const Matrix& b = estimate.Rows();
  EXPECT_GT(b.rows(), 0);
  EXPECT_EQ(b.cols(), 4);
  const Matrix& cov = estimate.Covariance();
  // B^T B ~= PSD projection of the covariance estimate.
  EXPECT_LT(MaxAbsDiff(GramTranspose(b), cov),
            0.05 * (1.0 + cov.FrobeniusNormSquared()));
}

}  // namespace
}  // namespace dswm
