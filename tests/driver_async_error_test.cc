// Regression test for the driver's early-return path while asynchronous
// query-point evaluations are in flight.
//
// With a multi-threaded pool, RunTracker submits error evaluations that
// write through pointers into its local state (the `errs` deque). An
// Observe() failure mid-replay returns early; RunTracker must quiesce
// the pool before its frame unwinds or a still-running worker writes
// into freed stack/deque memory (a use-after-free ASan catches). The
// fake tracker below makes many rows query points and then injects a
// failure immediately after a burst of submissions.

#include <algorithm>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/covariance_estimate.h"
#include "core/tracker.h"
#include "gtest/gtest.h"
#include "monitor/comm_stats.h"
#include "monitor/driver.h"
#include "stream/timed_row.h"

namespace dswm {
namespace {

// Observes successfully `fail_after` times, then fails every call.
// Query() returns a dense covariance so each async evaluation does real
// work (widening the window in which a worker is still running when the
// injected failure unwinds RunTracker).
class FailAfterTracker : public DistributedTracker {
 public:
  FailAfterTracker(int dim, int fail_after)
      : dim_(dim), fail_after_(fail_after), cov_(dim, dim) {
    for (int i = 0; i < dim_; ++i) cov_(i, i) = 1.0;
  }

  Status Observe(int site, const TimedRow& row) override {
    DSWM_RETURN_NOT_OK(ValidateObserve(site, 1 << 20, row.timestamp));
    if (++seen_ > fail_after_) {
      return Status::Internal("injected failure at row " +
                              std::to_string(seen_));
    }
    return Status::OK();
  }

  void AdvanceTime(Timestamp) override {}

  CovarianceEstimate Query() const override {
    return CovarianceEstimate::FromCovariance(cov_);
  }

  const CommStats& Comm() const override { return comm_; }
  long MaxSiteSpaceWords() const override { return dim_; }
  std::string Name() const override { return "FailAfter"; }
  int Dim() const override { return dim_; }

 private:
  int dim_;
  int fail_after_;
  int seen_ = 0;
  Matrix cov_;
  CommStats comm_;
};

std::vector<TimedRow> MakeRows(int n, int dim) {
  std::vector<TimedRow> rows(n);
  for (int i = 0; i < n; ++i) {
    rows[i].values.assign(dim, 1.0 / (1.0 + i % 7));
    rows[i].timestamp = i + 1;
  }
  return rows;
}

TEST(DriverAsyncError, MidStreamFailureQuiescesPoolBeforeReturning) {
  const int kDim = 48;
  const int kRows = 240;
  const int kFailAfter = 200;
  const std::vector<TimedRow> rows = MakeRows(kRows, kDim);

  FailAfterTracker tracker(kDim, kFailAfter);
  DriverOptions options;
  // Query nearly every row before the failure so a burst of evaluations
  // is in flight when Observe() starts erroring.
  options.query_points = 400;
  options.warmup_fraction = 0.0;

  ThreadPool::SetGlobalThreads(4);
  const StatusOr<RunResult> run =
      RunTracker(&tracker, rows, 4, 60, options);

  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_NE(run.status().message().find("injected failure"),
            std::string::npos);

  // The pool must be reusable after the unwound run: no dangling task may
  // still be executing against the dead frame.
  std::vector<double> sums(64, 0.0);
  ThreadPool::Global()->ParallelFor(
      64, [&sums](int begin, int end) {
        for (int i = begin; i < end; ++i) sums[i] = i * 2.0;
      });
  ThreadPool::SetGlobalThreads(1);
  EXPECT_DOUBLE_EQ(sums[63], 126.0);
}

TEST(DriverAsyncError, MidStreamFailureSingleThreadedStillClean) {
  // Same failure shape with the inline (single-threaded) evaluation path:
  // the quiescer is a no-op there, and the error must surface identically.
  const int kDim = 8;
  const std::vector<TimedRow> rows = MakeRows(60, kDim);
  FailAfterTracker tracker(kDim, 40);
  DriverOptions options;
  options.query_points = 30;
  options.warmup_fraction = 0.0;

  const StatusOr<RunResult> run =
      RunTracker(&tracker, rows, 2, 20, options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace dswm
