// Event-queue ordering, EventChannel run-to-completion semantics, and
// the polled-vs-event-driven FaultyChannel drain identity.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "net/backend_registry.h"
#include "net/channel.h"
#include "net/wire.h"
#include "runtime/event_channel.h"
#include "runtime/event_queue.h"
#include "runtime/runtime.h"

namespace dswm {
namespace {

using runtime::Event;
using runtime::EventChannel;
using runtime::EventQueue;

Event MakeEvent(Timestamp time, Event::Kind kind, uint64_t seq, int queue) {
  Event e;
  e.time = time;
  e.kind = kind;
  e.seq = seq;
  e.queue = queue;
  return e;
}

TEST(EventQueue, PopsInTimeKindSeqOrderAcrossQueues) {
  EventQueue q(3);  // queues 0..3: control + 3 sites
  // Pushed out of global order but FIFO-by-key within each queue.
  q.Push(MakeEvent(5, Event::Kind::kRow, 2, 1));
  q.Push(MakeEvent(9, Event::Kind::kRow, 5, 1));
  q.Push(MakeEvent(5, Event::Kind::kRow, 1, 2));
  q.Push(MakeEvent(7, Event::Kind::kRow, 4, 2));
  q.Push(MakeEvent(5, Event::Kind::kChannelWakeup, 9, 0));
  q.Push(MakeEvent(6, Event::Kind::kChannelWakeup, 10, 0));
  ASSERT_EQ(q.size(), 6u);

  std::vector<std::pair<Timestamp, uint64_t>> popped;
  while (!q.empty()) {
    const Event e = q.PopMin();
    popped.emplace_back(e.time, e.seq);
  }
  // Equal time 5: wakeup (kind 0) precedes rows; rows tie-break on seq.
  const std::vector<std::pair<Timestamp, uint64_t>> want = {
      {5, 9}, {5, 1}, {5, 2}, {6, 10}, {7, 4}, {9, 5}};
  EXPECT_EQ(popped, want);
}

TEST(EventQueue, PeekMatchesPop) {
  EventQueue q(1);
  q.Push(MakeEvent(3, Event::Kind::kRow, 0, 1));
  q.Push(MakeEvent(1, Event::Kind::kRow, 1, 0));
  EXPECT_EQ(q.PeekMin().time, 1);
  EXPECT_EQ(q.PopMin().seq, 1u);
  EXPECT_EQ(q.PeekMin().time, 3);
}

TEST(EventChannel, RunToCompletionMatchesNestedSynchronousOrder) {
  // A handler that sends while handling: loopback delivers the nested
  // message *during* the outer Handle (depth-first); the event channel
  // must produce the identical delivery order from its queue.
  const auto drive = [](net::Channel* channel,
                        std::vector<std::string>* order) {
    channel->SetHandler([channel, order](net::Delivery d) {
      if (const auto* sum = std::get_if<net::SumDeltaMsg>(&d.msg)) {
        order->push_back("sum:" + std::to_string(sum->delta));
        if (sum->delta == 1.0) {
          // Spawn two children mid-handling; each must run before
          // anything the outer Send's caller does next.
          channel->Send(net::Direction::kDown, 0,
                        net::WireMessage(net::SumDeltaMsg{10.0}));
          channel->Send(net::Direction::kDown, 0,
                        net::WireMessage(net::SumDeltaMsg{11.0}));
        }
      }
    });
    channel->Send(net::Direction::kUp, 0,
                  net::WireMessage(net::SumDeltaMsg{1.0}));
    channel->Send(net::Direction::kUp, 0,
                  net::WireMessage(net::SumDeltaMsg{2.0}));
  };

  std::vector<std::string> loopback_order;
  net::LoopbackChannel loopback(2);
  drive(&loopback, &loopback_order);

  std::vector<std::string> event_order;
  EventChannel events(2);
  drive(&events, &event_order);

  EXPECT_EQ(loopback_order,
            (std::vector<std::string>{"sum:1.000000", "sum:10.000000",
                                      "sum:11.000000", "sum:2.000000"}));
  EXPECT_EQ(event_order, loopback_order);
  EXPECT_EQ(events.deliveries(), 4);
  EXPECT_EQ(events.seq_anomalies(), 0);
}

TEST(EventChannel, SequenceVerificationCountsAnomaliesOnce) {
  EventChannel channel(1);
  int delivered = 0;
  channel.SetHandler([&](net::Delivery) { ++delivered; });
  for (int i = 0; i < 5; ++i) {
    channel.Send(net::Direction::kUp, 0,
                 net::WireMessage(net::SumDeltaMsg{1.0}));
  }
  // In-process sequences are gapless by construction.
  EXPECT_EQ(delivered, 5);
  EXPECT_EQ(channel.seq_anomalies(), 0);
}

// Satellite check: delayed FaultyChannel delivery order is identical
// whether the clock is polled tick by tick or jumped straight to
// NextDueTime, for both plain delay and reliable drop/retry traffic.
TEST(FaultyChannel, PolledAndEventDrivenDrainsAgree) {
  net::NetProfile profile;
  profile.drop = 0.3;
  profile.delay_min = 1;
  profile.delay_max = 4;
  profile.seed = 99;
  profile.reliable = true;
  profile.retry = 2;

  const auto drive = [&](bool event_driven) {
    net::FaultyChannel channel(2, profile);
    std::vector<std::pair<Timestamp, double>> delivered;
    channel.SetHandler([&](net::Delivery d) {
      if (const auto* sum = std::get_if<net::SumDeltaMsg>(&d.msg)) {
        delivered.emplace_back(channel.now(), sum->delta);
      }
    });
    channel.AdvanceTime(0);
    for (int i = 0; i < 40; ++i) {
      channel.Send(net::Direction::kUp, i % 2,
                   net::WireMessage(net::SumDeltaMsg{static_cast<double>(i)}));
      const Timestamp next = channel.now() + 1;
      if (event_driven) {
        // Jump only when something is due by `next`; otherwise advance
        // straight to the row's own tick, as the scheduler would.
        const auto due = channel.NextDueTime();
        if (due && *due < next) channel.AdvanceTime(*due);
        channel.AdvanceTime(next);
      } else {
        channel.AdvanceTime(next);
      }
    }
    // Flush the tail either way.
    while (channel.in_flight() > 0) {
      const auto due = channel.NextDueTime();
      EXPECT_TRUE(due.has_value());
      if (!due) break;
      channel.AdvanceTime(*due);
    }
    return delivered;
  };

  const auto polled = drive(false);
  const auto evented = drive(true);
  EXPECT_FALSE(polled.empty());
  EXPECT_EQ(polled, evented);
}

TEST(FaultyChannel, NextDueTimeTracksTheQueueHead) {
  net::NetProfile profile;
  profile.delay_min = 3;
  profile.delay_max = 3;
  profile.seed = 1;
  net::FaultyChannel channel(1, profile);
  int delivered = 0;
  channel.SetHandler([&](net::Delivery) { ++delivered; });
  channel.AdvanceTime(10);
  EXPECT_FALSE(channel.NextDueTime().has_value());
  channel.Send(net::Direction::kUp, 0,
               net::WireMessage(net::SumDeltaMsg{1.0}));
  ASSERT_TRUE(channel.NextDueTime().has_value());
  EXPECT_EQ(*channel.NextDueTime(), 13);
  EXPECT_EQ(delivered, 0);
  channel.AdvanceTime(13);
  EXPECT_EQ(delivered, 1);
  EXPECT_FALSE(channel.NextDueTime().has_value());
}

TEST(BackendRegistry, RuntimeBackendsAreDiscoverable) {
  runtime::RegisterRuntimeBackends();
  for (const char* name : {"default", "loopback", "events", "process"}) {
    auto backend = net::FindChannelBackend(name);
    ASSERT_TRUE(backend.ok()) << name;
  }
  EXPECT_FALSE(net::FindChannelBackend("carrier-pigeon").ok());

  // The events backend builds an in-process channel that behaves like
  // loopback for a perfect profile.
  auto backend = net::FindChannelBackend("events");
  ASSERT_TRUE(backend.ok());
  net::NetProfile perfect;
  auto channel = backend.value()(perfect, 2, 0);
  int delivered = 0;
  channel->SetHandler([&](net::Delivery) { ++delivered; });
  channel->Send(net::Direction::kUp, 1,
                net::WireMessage(net::SumDeltaMsg{4.0}));
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace dswm
