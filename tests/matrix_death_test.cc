// Death tests for Matrix bounds checking: at() CHECK-fails in every build
// type; operator() DCHECK-fails in Debug/sanitizer builds (and is
// unchecked in NDEBUG Release builds, where the DCHECK compiles out).

#include <gtest/gtest.h>

#include "linalg/matrix.h"

namespace dswm {
namespace {

TEST(MatrixDeath, AtOutOfBoundsChecksInAllBuilds) {
  Matrix m(2, 3);
  EXPECT_DEATH({ (void)m.at(2, 0); }, "CHECK failed");
  EXPECT_DEATH({ (void)m.at(0, 3); }, "CHECK failed");
  EXPECT_DEATH({ (void)m.at(-1, 0); }, "CHECK failed");
}

TEST(MatrixDeath, AtConstOutOfBoundsChecks) {
  const Matrix m(2, 3);
  EXPECT_DEATH({ (void)m.at(0, -1); }, "CHECK failed");
}

TEST(MatrixDeath, AtInBoundsReadsAndWrites) {
  Matrix m(2, 3);
  m.at(1, 2) = 4.5;
  EXPECT_DOUBLE_EQ(m.at(1, 2), 4.5);
  EXPECT_DOUBLE_EQ(m(1, 2), 4.5);
}

TEST(MatrixDeath, OperatorOutOfBoundsDChecksInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "DSWM_DCHECK compiles out under NDEBUG";
#else
  Matrix m(2, 3);
  EXPECT_DEATH({ (void)m(2, 0); }, "CHECK failed");
  EXPECT_DEATH({ (void)m(0, 3); }, "CHECK failed");
#endif
}

TEST(MatrixDeath, RowOutOfBoundsDChecksInDebug) {
#ifdef NDEBUG
  GTEST_SKIP() << "DSWM_DCHECK compiles out under NDEBUG";
#else
  Matrix m(2, 3);
  EXPECT_DEATH({ (void)m.Row(5); }, "CHECK failed");
#endif
}

}  // namespace
}  // namespace dswm
