// Cross-validates the ledger-derived accounting against the tracker-level
// CommStats for every factory protocol over a full driver run, and checks
// each recorded transmission against the per-kind word-cost catalog
// (DESIGN.md section 9).

#include <gtest/gtest.h>

#include <vector>

#include "core/tracker_factory.h"
#include "monitor/driver.h"
#include "net/channel.h"
#include "stream/synthetic.h"

namespace dswm {
namespace {

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kPwor,      Algorithm::kPworAll, Algorithm::kEswor,
          Algorithm::kEsworAll,  Algorithm::kDa1,     Algorithm::kDa2,
          Algorithm::kPwr,       Algorithm::kEswr,    Algorithm::kPwrShared,
          Algorithm::kEswrShared, Algorithm::kCentral};
}

/// Word cost of one row upload under each protocol's frame shape.
long RowUploadWords(Algorithm a, int d) {
  switch (a) {
    case Algorithm::kCentral:
      return d + 1;  // row + timestamp
    case Algorithm::kPwrShared:
    case Algorithm::kEswrShared:
      return d + 3;  // row + timestamp + key + sampler id
    default:
      return d + 2;  // row + timestamp + priority key
  }
}

long ExpectedEntryWords(Algorithm a, net::MessageKind kind, int d) {
  switch (kind) {
    case net::MessageKind::kRowUpload:
      return RowUploadWords(a, d);
    case net::MessageKind::kEigenpair:
      return d + 1;
    case net::MessageKind::kDa2Delta:
      return d + 2;
    default:
      return 1;  // every scalar kind
  }
}

TEST(NetCrossValidation, LedgerWordsMatchCommStatsForEveryProtocol) {
  constexpr int kDim = 5;
  constexpr int kSites = 3;
  constexpr Timestamp kWindow = 200;

  SyntheticConfig data;
  data.rows = 800;
  data.dim = kDim;
  SyntheticGenerator gen(data);
  const std::vector<TimedRow> rows = Materialize(&gen, data.rows);

  for (Algorithm a : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmName(a));
    TrackerConfig config;
    config.dim = kDim;
    config.num_sites = kSites;
    config.window = kWindow;
    config.epsilon = 0.25;
    config.ell_override = 12;
    auto tracker = MakeTracker(a, config);
    ASSERT_TRUE(tracker.ok());

    DriverOptions options;
    options.query_points = 6;
    const StatusOr<RunResult> run =
        RunTracker(tracker.value().get(), rows, kSites, kWindow, options);
    ASSERT_TRUE(run.ok());
    const RunResult& r = run.value();

    const std::vector<net::Channel*> channels = tracker.value()->Channels();
    ASSERT_FALSE(channels.empty());

    // 1. The tracker-level CommStats are exactly the sum of its channels'
    //    ledger-derived counters -- no hand-maintained words anywhere.
    CommStats sum;
    long payload_bytes = 0;
    long frame_bytes = 0;
    long transmissions = 0;
    for (const net::Channel* c : channels) {
      sum.Add(c->comm());
      payload_bytes += c->ledger().TotalPayloadBytes();
      frame_bytes += c->ledger().TotalFrameBytes();
      transmissions += static_cast<long>(c->ledger().entries().size());
    }
    const CommStats& legacy = tracker.value()->Comm();
    EXPECT_EQ(legacy.words_up, sum.words_up);
    EXPECT_EQ(legacy.words_down, sum.words_down);
    EXPECT_EQ(legacy.messages, sum.messages);
    EXPECT_EQ(legacy.broadcasts, sum.broadcasts);
    EXPECT_EQ(legacy.rows_sent, sum.rows_sent);
    EXPECT_GT(legacy.TotalWords(), 0);

    // 2. Bytes/words duality: 8 payload bytes per word, end to end
    //    through the driver's aggregation.
    EXPECT_EQ(r.total_words, legacy.TotalWords());
    EXPECT_EQ(r.wire_payload_bytes, 8 * r.total_words);
    EXPECT_EQ(r.wire_transmissions, transmissions);
    EXPECT_EQ(r.wire_frame_bytes, frame_bytes);
    EXPECT_GE(r.wire_frame_bytes,
              r.wire_payload_bytes +
                  static_cast<long>(net::kFrameHeaderBytes) * transmissions);

    // 3. Every recorded transmission matches the per-kind cost catalog,
    //    and loopback never drops, duplicates, or retransmits.
    for (net::Channel* c : channels) {
      EXPECT_EQ(c->AsFaulty(), nullptr);  // clean profile => loopback
      for (const net::LedgerEntry& e : c->ledger().entries()) {
        EXPECT_EQ(static_cast<long>(e.payload_words),
                  ExpectedEntryWords(a, e.kind, kDim))
            << net::KindName(e.kind) << " seq " << e.sequence;
        EXPECT_GE(static_cast<long>(e.frame_bytes),
                  static_cast<long>(net::kFrameHeaderBytes) +
                      8L * e.payload_words);
        EXPECT_FALSE(e.dropped);
        EXPECT_FALSE(e.retransmit);
        EXPECT_FALSE(e.duplicate);
        if (e.dir == net::Direction::kBroadcast) {
          EXPECT_EQ(e.copies, kSites);
          EXPECT_EQ(e.site, -1);
          EXPECT_EQ(e.kind, net::MessageKind::kThresholdBroadcast);
        } else {
          EXPECT_EQ(e.copies, 1);
          EXPECT_GE(e.site, 0);
          EXPECT_LT(e.site, kSites);
        }
        EXPECT_NE(e.kind, net::MessageKind::kAck);  // loopback never acks
      }
    }
  }
}

TEST(NetCrossValidation, DeterministicProtocolsNeverTalkDown) {
  // DA1/DA2/CENTRAL have no coordinator->site traffic at all: their
  // ledgers must contain only kUp entries under loopback.
  SyntheticConfig data;
  data.rows = 500;
  data.dim = 4;
  SyntheticGenerator gen(data);
  const std::vector<TimedRow> rows = Materialize(&gen, data.rows);

  for (Algorithm a :
       {Algorithm::kDa1, Algorithm::kDa2, Algorithm::kCentral}) {
    SCOPED_TRACE(AlgorithmName(a));
    TrackerConfig config;
    config.dim = 4;
    config.num_sites = 2;
    config.window = 150;
    config.epsilon = 0.3;
    auto tracker = MakeTracker(a, config);
    ASSERT_TRUE(tracker.ok());
    ASSERT_TRUE(
        RunTracker(tracker.value().get(), rows, 2, 150, DriverOptions())
            .ok());
    EXPECT_EQ(tracker.value()->Comm().words_down, 0);
    EXPECT_EQ(tracker.value()->Comm().broadcasts, 0);
    for (const net::Channel* c : tracker.value()->Channels()) {
      for (const net::LedgerEntry& e : c->ledger().entries()) {
        EXPECT_EQ(e.dir, net::Direction::kUp);
      }
    }
  }
}

}  // namespace
}  // namespace dswm
