#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/da1_tracker.h"
#include "core/da2_tracker.h"
#include "sketch/covariance.h"
#include "window/exact_window.h"

namespace dswm {
namespace {

TimedRow RandomRow(Rng* rng, int d, Timestamp t, double scale = 1.0) {
  TimedRow row;
  row.timestamp = t;
  row.values.resize(d);
  for (int j = 0; j < d; ++j) row.values[j] = scale * rng->NextGaussian();
  return row;
}

TrackerConfig Config(int d, int sites, Timestamp window, double eps) {
  TrackerConfig config;
  config.dim = d;
  config.num_sites = sites;
  config.window = window;
  config.epsilon = eps;
  config.seed = 21;
  return config;
}

// Runs a tracker over a random stream, measuring the covariance error at
// regular checkpoints; returns the worst error seen after warmup.
template <typename Tracker>
double WorstError(Tracker* tracker, int d, int sites, Timestamp window,
                  int n, uint64_t seed, bool heavy = false) {
  ExactWindow exact(d, window);
  Rng rng(seed);
  double worst = 0.0;
  for (int i = 1; i <= n; ++i) {
    const double scale = heavy ? std::exp(1.2 * rng.NextGaussian()) : 1.0;
    TimedRow row = RandomRow(&rng, d, i, scale);
    EXPECT_TRUE(tracker->Observe(static_cast<int>(rng.NextBelow(sites)), row).ok());
    exact.Add(row);
    exact.Advance(i);
    if (i > static_cast<int>(window) / 2 && i % 97 == 0) {
      const CovarianceEstimate approx = tracker->Query();
      const double err = CovarianceErrorOfCovariance(
          exact.Covariance(), approx.Covariance(), exact.FrobeniusSquared());
      worst = std::max(worst, err);
    }
  }
  return worst;
}

struct DetCase {
  double eps;
  int d;
  int sites;
  bool heavy;
};

class Da1Property : public ::testing::TestWithParam<DetCase> {};

TEST_P(Da1Property, ErrorStaysBelowEpsilon) {
  const auto [eps, d, sites, heavy] = GetParam();
  const Timestamp window = 400;
  Da1Tracker tracker(Config(d, sites, window, eps));
  const double worst =
      WorstError(&tracker, d, sites, window, 2000, 51 + d, heavy);
  EXPECT_LE(worst, eps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Da1Property,
    ::testing::Values(DetCase{0.3, 6, 2, false}, DetCase{0.15, 6, 2, false},
                      DetCase{0.15, 10, 4, true}, DetCase{0.08, 8, 1, false},
                      DetCase{0.3, 4, 3, true}));

class Da2Property : public ::testing::TestWithParam<DetCase> {};

TEST_P(Da2Property, ErrorStaysBelowEpsilon) {
  const auto [eps, d, sites, heavy] = GetParam();
  const Timestamp window = 400;
  Da2Tracker tracker(Config(d, sites, window, eps));
  const double worst =
      WorstError(&tracker, d, sites, window, 2000, 77 + d, heavy);
  EXPECT_LE(worst, eps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Da2Property,
    ::testing::Values(DetCase{0.3, 6, 2, false}, DetCase{0.15, 6, 2, false},
                      DetCase{0.15, 10, 4, true}, DetCase{0.08, 8, 1, false},
                      DetCase{0.3, 4, 3, true}));

TEST(Da1, OneWayCommunicationOnly) {
  Da1Tracker tracker(Config(5, 3, 200, 0.2));
  Rng rng(1);
  for (int i = 1; i <= 1000; ++i) {
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(3)), RandomRow(&rng, 5, i)).ok());
  }
  EXPECT_EQ(tracker.Comm().words_down, 0);
  EXPECT_EQ(tracker.Comm().broadcasts, 0);
  EXPECT_GT(tracker.Comm().words_up, 0);
}

TEST(Da2, OneWayCommunicationOnly) {
  Da2Tracker tracker(Config(5, 3, 200, 0.2));
  Rng rng(2);
  for (int i = 1; i <= 1000; ++i) {
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(3)), RandomRow(&rng, 5, i)).ok());
  }
  EXPECT_EQ(tracker.Comm().words_down, 0);
  EXPECT_EQ(tracker.Comm().broadcasts, 0);
  EXPECT_GT(tracker.Comm().words_up, 0);
}

TEST(Da1, LazyNormCheckMatchesEagerWithinBudgetAndIsCheaper) {
  TrackerConfig lazy_config = Config(6, 2, 300, 0.2);
  TrackerConfig eager_config = lazy_config;
  eager_config.da1_lazy_norm_check = false;

  Da1Tracker lazy(lazy_config);
  Da1Tracker eager(eager_config);
  const double lazy_err = WorstError(&lazy, 6, 2, 300, 1500, 5);
  const double eager_err = WorstError(&eager, 6, 2, 300, 1500, 5);
  EXPECT_LE(lazy_err, 0.2);
  EXPECT_LE(eager_err, 0.2);
  // The lazy check is the whole point: far fewer power iterations.
  EXPECT_LT(lazy.norm_checks() * 4, eager.norm_checks());
}

TEST(Da1, CommunicationGrowsAsEpsilonShrinks) {
  auto run = [](double eps) {
    Da1Tracker tracker(Config(5, 2, 300, eps));
    Rng rng(6);
    for (int i = 1; i <= 2500; ++i) {
      EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)),
                      RandomRow(&rng, 5, i)).ok());
    }
    return tracker.Comm().TotalWords();
  };
  EXPECT_GT(run(0.05), run(0.4));
}

TEST(Da2, CommunicationGrowsAsEpsilonShrinks) {
  auto run = [](double eps) {
    Da2Tracker tracker(Config(5, 2, 300, eps));
    Rng rng(7);
    for (int i = 1; i <= 2500; ++i) {
      EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)),
                      RandomRow(&rng, 5, i)).ok());
    }
    return tracker.Comm().TotalWords();
  };
  EXPECT_GT(run(0.05), run(0.4));
}

TEST(Da2, ProcessesBoundariesOnIdleTimeJumps) {
  Da2Tracker tracker(Config(4, 1, 100, 0.3));
  Rng rng(8);
  for (int i = 1; i <= 150; ++i) {
    EXPECT_TRUE(tracker.Observe(0, RandomRow(&rng, 4, i)).ok());
  }
  EXPECT_GE(tracker.boundaries_processed(), 1);
  // A jump across several windows must process every crossed boundary and
  // drain the coordinator's estimate to ~zero.
  tracker.AdvanceTime(1000);
  EXPECT_GE(tracker.boundaries_processed(), 3);
  const Matrix cov = tracker.Query().Covariance();
  // All mass expired; only discarded-residue noise may remain.
  ExactWindow empty(4, 100);
  EXPECT_LT(std::sqrt(cov.FrobeniusNormSquared()), 150 * 4 * 0.35);
}

TEST(Da1, ExpiryOnlyStreamDrainsEstimate) {
  Da1Tracker tracker(Config(4, 1, 100, 0.2));
  Rng rng(9);
  double mass = 0.0;
  for (int i = 1; i <= 200; ++i) {
    TimedRow row = RandomRow(&rng, 4, i);
    mass += row.NormSquared();
    EXPECT_TRUE(tracker.Observe(0, row).ok());
  }
  tracker.AdvanceTime(5000);
  const Matrix cov = tracker.Query().Covariance();
  // After full expiry the site must have reported the (negative) change.
  EXPECT_LT(std::sqrt(cov.FrobeniusNormSquared()), 0.25 * mass);
}

TEST(Da1, ConstantRowsLowRankStream) {
  // Rank-1 stream: DA1 needs very few eigenpair messages.
  Da1Tracker tracker(Config(6, 2, 300, 0.2));
  TimedRow row;
  row.values = {1.0, 2.0, 0.0, -1.0, 0.5, 3.0};
  Rng rng(10);
  for (int i = 1; i <= 2000; ++i) {
    row.timestamp = i;
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)), row).ok());
  }
  // Every message carries d+1 words; a rank-1 drift needs few messages.
  EXPECT_LT(tracker.Comm().rows_sent, 200);
}

}  // namespace
}  // namespace dswm
