// Process-backend tests: envelope codec, incremental frame framing
// (byte-at-a-time partial reads), worker round trips, drop/retry soak
// with full recovery after faults stop, and supervisor lifecycle.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "net/channel.h"
#include "net/wire.h"
#include "runtime/frame_decoder.h"
#include "runtime/process_supervisor.h"
#include "runtime/site_worker.h"
#include "runtime/socket_channel.h"

namespace dswm {
namespace {

using runtime::FrameDecoder;
using runtime::ProcessChannel;
using runtime::ProcessSupervisor;
using runtime::WorkerEnvelope;

TEST(WorkerEnvelope, EncodeDecodeRoundTrips) {
  WorkerEnvelope env;
  env.type = WorkerEnvelope::kReceipt;
  env.dir = 2;
  env.code = WorkerEnvelope::kDropped;
  env.flags = WorkerEnvelope::kFlagDrop;
  env.site = 7;
  env.sent_at = -123456789012345LL;
  env.sequence = 0xfeedfacecafebeefULL;
  env.frame_len = 4096;

  uint8_t buf[WorkerEnvelope::kEncodedBytes];
  env.EncodeTo(buf);
  const StatusOr<WorkerEnvelope> back = WorkerEnvelope::Decode(buf);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back.value().type, env.type);
  EXPECT_EQ(back.value().dir, env.dir);
  EXPECT_EQ(back.value().code, env.code);
  EXPECT_EQ(back.value().flags, env.flags);
  EXPECT_EQ(back.value().site, env.site);
  EXPECT_EQ(back.value().sent_at, env.sent_at);
  EXPECT_EQ(back.value().sequence, env.sequence);
  EXPECT_EQ(back.value().frame_len, env.frame_len);
}

TEST(WorkerEnvelope, DecodeRejectsCorruption) {
  WorkerEnvelope env;
  uint8_t buf[WorkerEnvelope::kEncodedBytes];
  env.EncodeTo(buf);

  uint8_t bad_magic[WorkerEnvelope::kEncodedBytes];
  std::copy(buf, buf + sizeof(buf), bad_magic);
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(WorkerEnvelope::Decode(bad_magic).ok());

  uint8_t bad_type[WorkerEnvelope::kEncodedBytes];
  std::copy(buf, buf + sizeof(buf), bad_type);
  bad_type[4] = 99;
  EXPECT_FALSE(WorkerEnvelope::Decode(bad_type).ok());

  uint8_t bad_dir[WorkerEnvelope::kEncodedBytes];
  std::copy(buf, buf + sizeof(buf), bad_dir);
  bad_dir[5] = 3;
  EXPECT_FALSE(WorkerEnvelope::Decode(bad_dir).ok());
}

TEST(FrameDecoder, ReassemblesFramesFedByteAtATime) {
  // The partial-read scenario a stream socket produces: every frame
  // arrives one byte at a time, two frames back to back.
  std::vector<uint8_t> first;
  net::RowUploadMsg row;
  row.values = {1.5, -2.5, 3.25};
  row.timestamp = 9;
  row.support = {0, 2};
  net::SerializeMessage(net::WireMessage(row), &first, /*sequence=*/41);
  std::vector<uint8_t> second;
  net::SerializeMessage(net::WireMessage(net::SumDeltaMsg{7.5}), &second,
                        /*sequence=*/42);

  std::vector<uint8_t> stream = first;
  stream.insert(stream.end(), second.begin(), second.end());

  FrameDecoder decoder;
  std::vector<std::vector<uint8_t>> frames;
  for (uint8_t byte : stream) {
    ASSERT_TRUE(decoder.Feed(&byte, 1).ok());
    while (decoder.HasFrame()) frames.push_back(decoder.NextFrame());
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0], first);
  EXPECT_EQ(frames[1], second);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);

  // The reassembled bytes parse with their sequences intact.
  const auto p0 = net::ParseFrame(frames[0].data(), frames[0].size());
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(p0.value().sequence, 41u);
  const auto p1 = net::ParseFrame(frames[1].data(), frames[1].size());
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1.value().sequence, 42u);
}

TEST(FrameDecoder, HeaderOnlyFrameCompletesAtTwentyBytes) {
  // A frame declaring zero payload words and zero aux entries is complete
  // at exactly the header size; the decoder must not wait for more bytes.
  std::vector<uint8_t> frame(net::kFrameHeaderBytes, 0);
  frame[0] = 4;  // kThresholdBroadcast range-valid kind
  frame[2] = static_cast<uint8_t>(net::kWireFormatVersion);
  FrameDecoder decoder;
  ASSERT_TRUE(decoder.Feed(frame.data(), frame.size()).ok());
  ASSERT_TRUE(decoder.HasFrame());
  EXPECT_EQ(decoder.NextFrame().size(), net::kFrameHeaderBytes);
  // Framing accepted it; semantic validation still rejects it (the kind
  // requires one payload word).
  EXPECT_FALSE(net::ParseFrame(frame.data(), frame.size()).ok());
}

TEST(FrameDecoder, OversizedDeclaredFramePoisonsTheStream) {
  std::vector<uint8_t> header(net::kFrameHeaderBytes, 0);
  header[0] = 1;
  header[2] = static_cast<uint8_t>(net::kWireFormatVersion);
  header[6] = 0xff;  // payload_words bytes 4..7: huge declared length
  header[7] = 0xff;
  FrameDecoder decoder;
  EXPECT_FALSE(decoder.Feed(header.data(), header.size()).ok());
  EXPECT_FALSE(decoder.Feed(header.data(), 1).ok());  // stays poisoned
}

TEST(ProcessSupervisor, StartsAndShutsDownCleanly) {
  ProcessSupervisor supervisor;
  ASSERT_TRUE(supervisor.Start(3).ok());
  EXPECT_EQ(supervisor.num_workers(), 3);
  for (int site = 0; site < 3; ++site) EXPECT_GE(supervisor.fd(site), 0);
  EXPECT_TRUE(supervisor.Shutdown().ok());
  // Idempotent.
  EXPECT_TRUE(supervisor.Shutdown().ok());
}

TEST(ProcessChannel, DeliversWhatTheWorkerEchoes) {
  net::NetProfile perfect;
  ProcessChannel channel(perfect, 2);
  ASSERT_TRUE(channel.Health().ok()) << channel.Health().message();

  std::vector<double> delivered;
  std::vector<uint64_t> sequences;
  channel.SetHandler([&](net::Delivery d) {
    if (const auto* sum = std::get_if<net::SumDeltaMsg>(&d.msg)) {
      delivered.push_back(sum->delta);
      sequences.push_back(d.sequence);
    }
  });
  for (int i = 0; i < 10; ++i) {
    channel.Send(net::Direction::kUp, i % 2,
                 net::WireMessage(net::SumDeltaMsg{static_cast<double>(i)}));
  }
  ASSERT_EQ(delivered.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(delivered[static_cast<size_t>(i)], static_cast<double>(i));
    EXPECT_EQ(sequences[static_cast<size_t>(i)], static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(channel.round_trips(), 10);
  channel.Close();
  EXPECT_TRUE(channel.Health().ok()) << channel.Health().message();
}

TEST(ProcessChannel, BroadcastFansOutToEveryWorker) {
  net::NetProfile perfect;
  ProcessChannel channel(perfect, 3);
  int delivered = 0;
  channel.SetHandler([&](net::Delivery d) {
    EXPECT_EQ(d.dir, net::Direction::kBroadcast);
    ++delivered;
  });
  channel.Send(net::Direction::kBroadcast, -1,
               net::WireMessage(net::ThresholdBroadcastMsg{0.5}));
  // One logical delivery, but one round trip per worker.
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(channel.round_trips(), 3);
  // Ledger charges num_sites copies, as on every backend.
  EXPECT_EQ(channel.comm().broadcasts, 1);
  channel.Close();
  EXPECT_TRUE(channel.Health().ok()) << channel.Health().message();
}

TEST(ProcessChannel, SendAfterCloseIsDiscardedNotACrash) {
  net::NetProfile perfect;
  ProcessChannel channel(perfect, 1);
  int delivered = 0;
  channel.SetHandler([&](net::Delivery) { ++delivered; });
  channel.Send(net::Direction::kUp, 0,
               net::WireMessage(net::SumDeltaMsg{1.0}));
  EXPECT_EQ(delivered, 1);
  channel.Close();
  channel.Send(net::Direction::kUp, 0,
               net::WireMessage(net::SumDeltaMsg{2.0}));
  EXPECT_EQ(delivered, 1);
  EXPECT_TRUE(channel.Health().ok()) << channel.Health().message();
}

TEST(ProcessChannel, RejectsKnobsWithoutASynchronousAnalog) {
  net::NetProfile delayed;
  delayed.delay_max = 2;
  delayed.seed = 1;
  ProcessChannel channel(delayed, 1);
  EXPECT_EQ(channel.Health().code(), StatusCode::kInvalidArgument);

  net::NetProfile duplicating;
  duplicating.duplicate = 0.5;
  duplicating.seed = 1;
  ProcessChannel dup_channel(duplicating, 1);
  EXPECT_EQ(dup_channel.Health().code(), StatusCode::kInvalidArgument);
}

TEST(ProcessChannel, DropRetrySoakRecoversFullyAfterFaultsStop) {
  net::NetProfile lossy;
  lossy.drop = 0.4;
  lossy.seed = 17;
  lossy.reliable = true;
  lossy.retry = 2;
  ProcessChannel channel(lossy, 2);
  ASSERT_TRUE(channel.Health().ok()) << channel.Health().message();

  std::vector<double> delivered;
  channel.SetHandler([&](net::Delivery d) {
    if (const auto* sum = std::get_if<net::SumDeltaMsg>(&d.msg)) {
      delivered.push_back(sum->delta);
    }
  });

  // Soak: 200 sends under 40% loss with the retry shim on.
  Timestamp now = 0;
  channel.AdvanceTime(now);
  for (int i = 0; i < 200; ++i) {
    channel.Send(net::Direction::kUp, i % 2,
                 net::WireMessage(net::SumDeltaMsg{static_cast<double>(i)}));
    channel.AdvanceTime(++now);
  }
  EXPECT_GT(channel.drops_injected(), 0);
  EXPECT_GT(channel.retransmits(), 0);
  const size_t during_faults = delivered.size();
  EXPECT_LT(during_faults, 200u);  // some frames still pending retry

  // Faults stop; one retry window later every frame must have landed.
  channel.profile().drop = 0.0;
  channel.AdvanceTime(now + channel.profile().retry);
  EXPECT_EQ(channel.in_flight(), 0);
  ASSERT_EQ(delivered.size(), 200u);
  // Every payload exactly once -- the worker's per-direction sequence
  // cursor must have accepted each retransmission and no duplicates.
  std::vector<bool> seen(200, false);
  for (double v : delivered) {
    const int idx = static_cast<int>(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, 200);
    EXPECT_FALSE(seen[static_cast<size_t>(idx)]) << "duplicate " << idx;
    seen[static_cast<size_t>(idx)] = true;
  }
  channel.Close();
  EXPECT_TRUE(channel.Health().ok()) << channel.Health().message();
}

}  // namespace
}  // namespace dswm
