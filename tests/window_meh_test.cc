#include "window/matrix_eh.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/spectral_norm.h"
#include "window/exact_window.h"

namespace dswm {
namespace {

TimedRow MakeRow(Rng* rng, int d, Timestamp t, double scale = 1.0) {
  TimedRow row;
  row.timestamp = t;
  row.values.resize(d);
  for (int j = 0; j < d; ++j) row.values[j] = scale * rng->NextGaussian();
  return row;
}

struct MehCase {
  double eps;
  int d;
  bool heavy_tail;
};

class MehProperty : public ::testing::TestWithParam<MehCase> {};

TEST_P(MehProperty, CovarianceErrorWithinEpsilon) {
  const auto [eps, d, heavy] = GetParam();
  const Timestamp window = 400;
  MatrixExpHistogram meh(d, eps, window);
  ExactWindow exact(d, window);
  Rng rng(91 + d);

  double worst = 0.0;
  for (int i = 0; i < 2500; ++i) {
    const Timestamp t = i + 1;
    const double scale =
        heavy ? std::exp(1.5 * rng.NextGaussian()) : 1.0;
    const TimedRow row = MakeRow(&rng, d, t, scale);
    meh.Insert(row.values.data(), t);
    exact.Add(row);
    exact.Advance(t);
    if (i > 400 && i % 37 == 0) {
      const double fnorm2 = exact.FrobeniusSquared();
      if (fnorm2 <= 0) continue;
      const Matrix approx = meh.QueryCovariance();
      const double err =
          SpectralNormSym(Subtract(exact.Covariance(), approx)) / fnorm2;
      worst = std::max(worst, err);
    }
  }
  EXPECT_LE(worst, eps);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MehProperty,
    ::testing::Values(MehCase{0.3, 6, false}, MehCase{0.15, 6, false},
                      MehCase{0.3, 6, true}, MehCase{0.15, 12, true},
                      MehCase{0.08, 8, false}));

TEST(MatrixExpHistogram, FrobeniusEstimateTracksWindowMass) {
  const int d = 5;
  const Timestamp window = 300;
  MatrixExpHistogram meh(d, 0.2, window);
  ExactWindow exact(d, window);
  Rng rng(3);
  for (int i = 1; i <= 2000; ++i) {
    const TimedRow row = MakeRow(&rng, d, i);
    meh.Insert(row.values.data(), i);
    exact.Add(row);
    exact.Advance(i);
    if (i > 300 && i % 50 == 0) {
      EXPECT_NEAR(meh.FrobeniusSquaredEstimate(), exact.FrobeniusSquared(),
                  0.2 * exact.FrobeniusSquared());
    }
  }
}

TEST(MatrixExpHistogram, QueryRowsMatchesQueryCovariance) {
  const int d = 4;
  MatrixExpHistogram meh(d, 0.25, 100);
  Rng rng(7);
  for (int i = 1; i <= 300; ++i) {
    const TimedRow row = MakeRow(&rng, d, i);
    meh.Insert(row.values.data(), i);
  }
  const Matrix rows = meh.QueryRows();
  EXPECT_LT(MaxAbsDiff(GramTranspose(rows), meh.QueryCovariance()), 1e-9);
  EXPECT_EQ(rows.rows(), meh.TotalRows());
}

TEST(MatrixExpHistogram, DroppedBucketsReportedOnAdvance) {
  const int d = 3;
  MatrixExpHistogram meh(d, 0.3, 50);
  Rng rng(8);
  for (int i = 1; i <= 100; ++i) {
    const TimedRow row = MakeRow(&rng, d, i);
    meh.Insert(row.values.data(), i);
  }
  std::vector<MatrixExpHistogram::Bucket> dropped;
  meh.Advance(500, &dropped);
  EXPECT_FALSE(dropped.empty());
  EXPECT_EQ(meh.TotalRows(), 0);
  EXPECT_DOUBLE_EQ(meh.FrobeniusSquaredEstimate(), 0.0);
  double dropped_mass = 0.0;
  for (const auto& b : dropped) dropped_mass += b.mass;
  EXPECT_GT(dropped_mass, 0.0);
}

TEST(MatrixExpHistogram, SpaceSublinearInStreamLength) {
  const int d = 6;
  MatrixExpHistogram meh(d, 0.2, 5000);
  Rng rng(9);
  long max_words = 0;
  for (int i = 1; i <= 20000; ++i) {
    const TimedRow row = MakeRow(&rng, d, i);
    meh.Insert(row.values.data(), i);
    max_words = std::max(max_words, meh.SpaceWords());
  }
  // Storing all 5000 active rows would take 30000 words.
  EXPECT_LT(max_words, 15000);
}

TEST(MatrixExpHistogram, EmptyQuery) {
  MatrixExpHistogram meh(4, 0.2, 10);
  EXPECT_EQ(meh.QueryRows().rows(), 0);
  EXPECT_DOUBLE_EQ(meh.QueryCovariance().FrobeniusNormSquared(), 0.0);
}

TEST(MatrixExpHistogram, LateInsertSplicesIntoTimeOrder) {
  // A reordered arrival (e.g. a retransmitted upload delivered after the
  // clock advanced) must land in its time-ordered position, count toward
  // the window, and expire on the same schedule as an in-order twin.
  const int d = 3;
  const Timestamp window = 50;
  MatrixExpHistogram meh(d, 0.3, window);
  Rng rng(11);
  for (int t = 1; t <= 100; ++t) {
    const TimedRow row = MakeRow(&rng, d, t);
    meh.Insert(row.values.data(), t);
  }
  const int rows_before = meh.TotalRows();
  const double mass_before = meh.FrobeniusSquaredEstimate();

  const TimedRow late = MakeRow(&rng, d, 80);
  meh.Insert(late.values.data(), 80);  // last_time_ is 100: late path
  EXPECT_EQ(meh.TotalRows(), rows_before + 1);
  EXPECT_GT(meh.FrobeniusSquaredEstimate(), mass_before);

  // The histogram clock never regresses: advancing to the present is
  // still legal, and the late row expires with its own timestamp.
  for (int t = 101; t <= 129; ++t) {
    const TimedRow row = MakeRow(&rng, d, t);
    meh.Insert(row.values.data(), t);
  }
  // Advancing the full clock stays legal (the splice never regressed
  // last_time_) and expiry keeps its invariants (DCHECK'd in Advance).
  meh.Advance(80 + window);
  EXPECT_GT(meh.QueryRows().rows(), 0);
}

TEST(MatrixExpHistogram, LateInsertAlreadyExpiredIsDropped) {
  const int d = 3;
  MatrixExpHistogram meh(d, 0.3, 50);
  Rng rng(12);
  for (int t = 1; t <= 100; ++t) {
    const TimedRow row = MakeRow(&rng, d, t);
    meh.Insert(row.values.data(), t);
  }
  const int rows_before = meh.TotalRows();
  const double mass_before = meh.FrobeniusSquaredEstimate();
  // t = 50 satisfies t <= last_time_ - window: its interval has fully
  // expired, so inserting it would resurrect dropped mass.
  const TimedRow expired = MakeRow(&rng, d, 50);
  meh.Insert(expired.values.data(), 50);
  EXPECT_EQ(meh.TotalRows(), rows_before);
  EXPECT_DOUBLE_EQ(meh.FrobeniusSquaredEstimate(), mass_before);
}

TEST(MatrixExpHistogram, LateInsertKeepsCovarianceAccuracy) {
  // Feeding 10% of rows two ticks late must not break the eps guarantee:
  // the spliced buckets participate in the same merge discipline.
  const int d = 5;
  const double eps = 0.3;
  const Timestamp window = 300;
  MatrixExpHistogram meh(d, eps, window);
  ExactWindow exact(d, window);
  Rng rng(13);
  std::vector<TimedRow> pending;
  double worst = 0.0;
  for (int i = 1; i <= 1500; ++i) {
    const Timestamp t = i;
    const TimedRow row = MakeRow(&rng, d, t);
    exact.Add(row);
    exact.Advance(t);
    if (i % 10 == 0) {
      pending.push_back(row);  // deliver late
    } else {
      meh.Insert(row.values.data(), t);
    }
    while (!pending.empty() && pending.front().timestamp + 2 <= t) {
      meh.Insert(pending.front().values.data(), pending.front().timestamp);
      pending.erase(pending.begin());
    }
    if (i > 400 && i % 41 == 0) {
      const double fnorm2 = exact.FrobeniusSquared();
      if (fnorm2 <= 0) continue;
      const double err =
          SpectralNormSym(Subtract(exact.Covariance(), meh.QueryCovariance())) /
          fnorm2;
      worst = std::max(worst, err);
    }
  }
  EXPECT_LE(worst, eps);
}

}  // namespace
}  // namespace dswm
