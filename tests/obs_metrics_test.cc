// Unit tests for the obs metric registry, snapshots, and spans.
//
// These run in their own binary (dswm_obs_tests, label "obs") because they
// toggle the process-global enabled flag and reset the registry; the
// fixture restores a clean disabled state around every test.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/span.h"

namespace dswm::obs {
namespace {

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry().ResetForTest();
    SetEnabled(false);
  }
  void TearDown() override {
    SetEnabled(false);
    Registry().ResetForTest();
  }
};

TEST_F(ObsTest, DisabledMacrosRecordNothing) {
  DSWM_OBS_COUNT("test.disabled_counter", 5);
  DSWM_OBS_HISTOGRAM("test.disabled_hist", (std::vector<long>{1, 2}), 1);
  const MetricsSnapshot snap = Registry().Snapshot();
  EXPECT_EQ(snap.counters.count("test.disabled_counter"), 0u);
  EXPECT_EQ(snap.histograms.count("test.disabled_hist"), 0u);
}

TEST_F(ObsTest, EnabledMacrosRecord) {
  SetEnabled(true);
  DSWM_OBS_COUNT("test.counter", 2);
  DSWM_OBS_COUNT("test.counter", 3);
  const MetricsSnapshot snap = Registry().Snapshot();
  ASSERT_EQ(snap.counters.count("test.counter"), 1u);
  EXPECT_EQ(snap.counters.at("test.counter"), 5);
}

TEST_F(ObsTest, RegistryHandlesAreStableAcrossReset) {
  Counter* c = Registry().GetCounter("test.stable");
  c->Add(7);
  Registry().ResetForTest();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(Registry().GetCounter("test.stable"), c);
  c->Add(1);
  EXPECT_EQ(Registry().Snapshot().counters.at("test.stable"), 1);
}

TEST_F(ObsTest, HistogramBucketEdges) {
  // A sample v lands in the first bucket with v <= edge; above the last
  // edge is the overflow bucket.
  Histogram* h = Registry().GetHistogram("test.edges", {10, 20, 30});
  for (long v : {-5L, 0L, 10L}) h->Observe(v);  // all land in bucket 0
  h->Observe(11);                               // bucket 1
  h->Observe(20);                               // bucket 1 (v <= edge)
  h->Observe(30);                               // bucket 2
  h->Observe(31);                               // overflow
  h->Observe(1000);                             // overflow
  EXPECT_EQ(h->counts(), (std::vector<long>{3, 2, 1, 2}));
  EXPECT_EQ(h->total_count(), 8);
  EXPECT_EQ(h->sum(), -5 + 0 + 10 + 11 + 20 + 30 + 31 + 1000);
}

TEST_F(ObsTest, GaugeLastWriteWins) {
  Gauge* g = Registry().GetGauge("test.gauge");
  g->Set(3);
  g->Set(11);
  EXPECT_EQ(Registry().Snapshot().gauges.at("test.gauge"), 11);
}

TEST_F(ObsTest, SnapshotMerge) {
  MetricsSnapshot a;
  a.counters["c"] = 2;
  a.gauges["g"] = 5;
  a.histograms["h"] = HistogramSnapshot{{10}, {1, 0}, 1, 4};
  MetricsSnapshot b;
  b.counters["c"] = 3;
  b.counters["only_b"] = 1;
  b.gauges["g"] = 9;
  b.histograms["h"] = HistogramSnapshot{{10}, {0, 2}, 2, 50};
  a.Merge(b);
  EXPECT_EQ(a.counters.at("c"), 5);          // counters add
  EXPECT_EQ(a.counters.at("only_b"), 1);
  EXPECT_EQ(a.gauges.at("g"), 9);            // gauges last-write-wins
  EXPECT_EQ(a.histograms.at("h").counts, (std::vector<long>{1, 2}));
  EXPECT_EQ(a.histograms.at("h").total_count, 3);
  EXPECT_EQ(a.histograms.at("h").sum, 54);
}

TEST_F(ObsTest, DeltaSinceScopesARun) {
  Counter* c = Registry().GetCounter("test.delta");
  Gauge* g = Registry().GetGauge("test.delta_gauge");
  c->Add(10);
  g->Set(1);
  const MetricsSnapshot base = Registry().Snapshot();
  c->Add(7);
  g->Set(42);
  const MetricsSnapshot delta = Registry().Snapshot().DeltaSince(base);
  EXPECT_EQ(delta.counters.at("test.delta"), 7);
  // Gauges keep the current value: they are end-of-run absolutes.
  EXPECT_EQ(delta.gauges.at("test.delta_gauge"), 42);
}

TEST_F(ObsTest, WithoutWallTimesDropsExactlyTheSuffix) {
  MetricsSnapshot s;
  s.counters["span.a.count"] = 1;
  s.counters["span.a.wall_ns"] = 123456;
  s.counters["wall_ns"] = 2;  // bare name, not the ".wall_ns" suffix: kept
  s.counters["a.wall_ns_total"] = 3;  // not the suffix, kept
  const MetricsSnapshot d = s.WithoutWallTimes();
  EXPECT_EQ(d.counters.count("span.a.count"), 1u);
  EXPECT_EQ(d.counters.count("span.a.wall_ns"), 0u);
  EXPECT_EQ(d.counters.count("wall_ns"), 1u);
  EXPECT_EQ(d.counters.count("a.wall_ns_total"), 1u);
}

TEST_F(ObsTest, ToJsonIsSortedAndStable) {
  MetricsSnapshot s;
  s.counters["b"] = 2;
  s.counters["a"] = 1;
  s.gauges["g"] = 3;
  s.histograms["h"] = HistogramSnapshot{{1, 2}, {0, 1, 0}, 1, 2};
  const std::string json = s.ToJson();
  EXPECT_EQ(json,
            "{\"counters\":{\"a\":1,\"b\":2},\"gauges\":{\"g\":3},"
            "\"histograms\":{\"h\":{\"edges\":[1,2],\"counts\":[0,1,0],"
            "\"sum\":2,\"count\":1}}}");
  // Equal snapshots serialize byte-identically.
  MetricsSnapshot t = s;
  EXPECT_EQ(t.ToJson(), json);
}

TEST_F(ObsTest, ConcurrentCounterAddsAreExact) {
  SetEnabled(true);
  Counter* c = Registry().GetCounter("test.concurrent");
  // Raw threads on purpose: the contract is about bare concurrent Add()
  // calls, independent of ThreadPool scheduling.
  std::vector<std::thread> threads;  // dswm-lint: allow(raw-thread-outside-common)
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([c] {
      for (int j = 0; j < 10000; ++j) c->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), 40000);
}

TEST_F(ObsTest, SpanNestingBuildsDotPaths) {
  SetEnabled(true);
  EXPECT_STREQ(Span::CurrentPath(), "");
  {
    Span outer("driver");
    EXPECT_STREQ(Span::CurrentPath(), "driver");
    {
      Span inner("observe");
      EXPECT_STREQ(Span::CurrentPath(), "driver.observe");
    }
    EXPECT_STREQ(Span::CurrentPath(), "driver");
  }
  EXPECT_STREQ(Span::CurrentPath(), "");
  const MetricsSnapshot snap = Registry().Snapshot();
  EXPECT_EQ(snap.counters.at("span.driver.count"), 1);
  EXPECT_EQ(snap.counters.at("span.driver.observe.count"), 1);
  EXPECT_GE(snap.counters.at("span.driver.wall_ns"), 0);
}

TEST_F(ObsTest, SpanDisabledIsInvisible) {
  {
    Span span("ghost");
    EXPECT_STREQ(Span::CurrentPath(), "");
  }
  EXPECT_TRUE(Registry().Snapshot().empty());
}

TEST_F(ObsTest, SpanAlwaysFeedsExternalAccumulator) {
  double seconds = 0.0;
  { Span span("timed", &seconds); }
  EXPECT_GE(seconds, 0.0);
  // Disabled: still measured, but nothing hits the registry.
  EXPECT_TRUE(Registry().Snapshot().empty());

  SetEnabled(true);
  double more = 0.0;
  { Span span("timed", &more); }
  EXPECT_GE(more, 0.0);
  EXPECT_EQ(Registry().Snapshot().counters.at("span.timed.count"), 1);
}

TEST_F(ObsTest, PerThreadSpanPathsAreIndependent) {
  SetEnabled(true);
  Span main_span("main_phase");
  // A genuinely fresh thread (not a pooled worker) is the point: its
  // thread_local span path must start empty.
  std::thread worker([] {  // dswm-lint: allow(raw-thread-outside-common)
    // Fresh thread: no inherited path from the spawning thread.
    EXPECT_STREQ(Span::CurrentPath(), "");
    Span span("worker_phase");
    EXPECT_STREQ(Span::CurrentPath(), "worker_phase");
  });
  worker.join();
  EXPECT_STREQ(Span::CurrentPath(), "main_phase");
}

}  // namespace
}  // namespace dswm::obs
