#include "linalg/bidiag_svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/qr.h"

namespace dswm {
namespace {

Matrix RandomMatrix(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

Matrix Reconstruct(const SvdResult& svd, int n, int d) {
  Matrix a(n, d);
  const int r = static_cast<int>(svd.sigma.size());
  for (int i = 0; i < n; ++i) {
    for (int k = 0; k < r; ++k) {
      Axpy(svd.u(i, k) * svd.sigma[k], svd.vt.Row(k), a.Row(i), d);
    }
  }
  return a;
}

void CheckSvd(const Matrix& a, const SvdResult& svd, double tol) {
  const int n = a.rows();
  const int d = a.cols();
  const int r = static_cast<int>(svd.sigma.size());
  for (int i = 1; i < r; ++i) EXPECT_GE(svd.sigma[i - 1], svd.sigma[i]);
  for (double s : svd.sigma) EXPECT_GE(s, 0.0);
  // Orthonormal factors.
  for (int i = 0; i < r; ++i) {
    for (int j = i; j < r; ++j) {
      EXPECT_NEAR(Dot(svd.vt.Row(i), svd.vt.Row(j), d), i == j ? 1.0 : 0.0,
                  1e-9);
      double u_dot = 0.0;
      for (int k = 0; k < n; ++k) u_dot += svd.u(k, i) * svd.u(k, j);
      EXPECT_NEAR(u_dot, i == j ? 1.0 : 0.0, 1e-9);
    }
  }
  const double scale = std::sqrt(a.FrobeniusNormSquared()) + 1e-12;
  EXPECT_LT(MaxAbsDiff(Reconstruct(svd, n, d), a) / scale, tol);
}

struct Shape {
  int n;
  int d;
};

class BidiagSvdProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(BidiagSvdProperty, ReconstructsOrthonormally) {
  const auto [n, d] = GetParam();
  const Matrix a = RandomMatrix(n, d, 17 * n + d);
  CheckSvd(a, BidiagonalSvd(a), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BidiagSvdProperty,
    ::testing::Values(Shape{1, 1}, Shape{2, 2}, Shape{5, 3}, Shape{3, 5},
                      Shape{10, 10}, Shape{40, 12}, Shape{12, 40},
                      Shape{64, 32}, Shape{33, 33}));

TEST(BidiagSvd, MatchesGramSvdOnWellConditioned) {
  const Matrix a = RandomMatrix(20, 8, 5);
  const SvdResult accurate = BidiagonalSvd(a);
  const SvdResult gram = ThinSvd(a);
  ASSERT_EQ(accurate.sigma.size(), gram.sigma.size());
  for (size_t i = 0; i < accurate.sigma.size(); ++i) {
    EXPECT_NEAR(accurate.sigma[i], gram.sigma[i], 1e-7 * accurate.sigma[0]);
  }
}

TEST(BidiagSvd, ResolvesTinySingularValuesGramCannot) {
  // Construct A with singular values {1, 1e-9}: squaring through the
  // Gram matrix puts 1e-18 at the edge of double precision, while the
  // bidiagonal path recovers 1e-9 to full relative accuracy.
  Rng rng(9);
  const Matrix u = RandomOrthonormalRows(2, 12, &rng);
  const Matrix v = RandomOrthonormalRows(2, 12, &rng);
  Matrix a(12, 12);
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 12; ++j) {
      a(i, j) = 1.0 * u(0, i) * v(0, j) + 1e-9 * u(1, i) * v(1, j);
    }
  }
  const SvdResult svd = BidiagonalSvd(a, /*rel_tol=*/1e-12);
  ASSERT_GE(svd.sigma.size(), 2u);
  EXPECT_NEAR(svd.sigma[0], 1.0, 1e-10);
  EXPECT_NEAR(svd.sigma[1], 1e-9, 1e-12);
}

TEST(BidiagSvd, ExactlyRankDeficient) {
  // Rank-2 matrix built from outer products.
  Rng rng(11);
  Matrix a(10, 6);
  const Matrix u = RandomOrthonormalRows(2, 10, &rng);
  const Matrix v = RandomOrthonormalRows(2, 6, &rng);
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 6; ++j) {
      a(i, j) = 3.0 * u(0, i) * v(0, j) + 2.0 * u(1, i) * v(1, j);
    }
  }
  const SvdResult svd = BidiagonalSvd(a, 1e-10);
  ASSERT_EQ(svd.sigma.size(), 2u);
  EXPECT_NEAR(svd.sigma[0], 3.0, 1e-9);
  EXPECT_NEAR(svd.sigma[1], 2.0, 1e-9);
  CheckSvd(a, svd, 1e-9);
}

TEST(BidiagSvd, ZeroMatrix) {
  const SvdResult svd = BidiagonalSvd(Matrix(4, 3));
  EXPECT_TRUE(svd.sigma.empty());
}

TEST(BidiagSvd, ZeroColumnInside) {
  // Forces a zero diagonal in the bidiagonal form (the chase path).
  Matrix a(4, 3);
  a(0, 0) = 1.0;
  a(1, 2) = 2.0;
  a(2, 2) = 1.0;  // column 1 entirely zero
  const SvdResult svd = BidiagonalSvd(a);
  CheckSvd(a, svd, 1e-10);
}

TEST(BidiagSvd, GradedSpectrum) {
  // sigma_i = 2^{-i}: all must be recovered with small relative error.
  const int k = 16;
  Rng rng(13);
  const Matrix u = RandomOrthonormalRows(k, 24, &rng);
  const Matrix v = RandomOrthonormalRows(k, 20, &rng);
  Matrix a(24, 20);
  for (int c = 0; c < k; ++c) {
    const double sigma = std::pow(2.0, -c);
    for (int i = 0; i < 24; ++i) {
      Axpy(sigma * u(c, i), v.Row(c), a.Row(i), 20);
    }
  }
  const SvdResult svd = BidiagonalSvd(a, 1e-12);
  ASSERT_GE(svd.sigma.size(), static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    EXPECT_NEAR(svd.sigma[c], std::pow(2.0, -c), 1e-10 * std::pow(2.0, -c) + 1e-13)
        << "c=" << c;
  }
}

}  // namespace
}  // namespace dswm
