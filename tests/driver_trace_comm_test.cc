// Driver trace series and communication-accounting consistency across
// every protocol.

#include <gtest/gtest.h>

#include "core/tracker_factory.h"
#include "monitor/driver.h"
#include "stream/synthetic.h"

namespace dswm {
namespace {

std::vector<TimedRow> Data(int rows) {
  SyntheticConfig config;
  config.rows = rows;
  config.dim = 5;
  config.seed = 13;
  SyntheticGenerator gen(config);
  return Materialize(&gen, rows);
}

TEST(DriverTrace, ChronologicalAndConsistentWithAggregates) {
  const std::vector<TimedRow> rows = Data(2000);
  TrackerConfig config;
  config.dim = 5;
  config.num_sites = 3;
  config.window = 400;
  config.epsilon = 0.2;
  config.ell_override = 20;
  auto tracker = MakeTracker(Algorithm::kPwor, config);
  DriverOptions options;
  options.query_points = 20;
  const StatusOr<RunResult> run =
      RunTracker(tracker.value().get(), rows, 3, 400, options);
  ASSERT_TRUE(run.ok());
  const RunResult& r = run.value();

  ASSERT_FALSE(r.trace.empty());
  ASSERT_LE(static_cast<int>(r.trace.size()), options.query_points);

  double max_err = 0.0;
  double sum_err = 0.0;
  long prev_words = -1;
  Timestamp prev_t = -1;
  long max_space = 0;
  for (const TraceEntry& e : r.trace) {
    EXPECT_GE(e.timestamp, prev_t);         // chronological
    EXPECT_GE(e.words_so_far, prev_words);  // cumulative words monotone
    prev_t = e.timestamp;
    prev_words = e.words_so_far;
    max_err = std::max(max_err, e.err);
    sum_err += e.err;
    max_space = std::max(max_space, e.site_space_words);
  }
  EXPECT_DOUBLE_EQ(max_err, r.max_err);
  EXPECT_NEAR(sum_err / r.trace.size(), r.avg_err, 1e-12);
  EXPECT_EQ(max_space, r.max_site_space_words);
  EXPECT_LE(r.trace.back().words_so_far, r.total_words);
}

class CommConsistency : public ::testing::TestWithParam<Algorithm> {};

TEST_P(CommConsistency, CountersAreCoherent) {
  const Algorithm algorithm = GetParam();
  const std::vector<TimedRow> rows = Data(1500);
  TrackerConfig config;
  config.dim = 5;
  config.num_sites = 4;
  config.window = 300;
  config.epsilon = 0.25;
  config.ell_override = 16;
  auto tracker = MakeTracker(algorithm, config);
  DriverOptions options;
  options.query_points = 5;
  ASSERT_TRUE(RunTracker(tracker.value().get(), rows, 4, 300, options).ok());

  const CommStats& c = tracker.value()->Comm();
  EXPECT_EQ(c.TotalWords(), c.words_up + c.words_down);
  EXPECT_GE(c.words_up, 0);
  EXPECT_GE(c.words_down, 0);
  EXPECT_GE(c.messages, c.broadcasts);
  // Every shipped row/direction costs at least d words up.
  EXPECT_GE(c.words_up, c.rows_sent * 5);
  // Broadcasts cost exactly m words each and are part of words_down.
  EXPECT_GE(c.words_down, c.broadcasts * 4);
  // Something happened.
  EXPECT_GT(c.messages, 0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, CommConsistency,
                         ::testing::ValuesIn(PaperAlgorithms()));

TEST(CommConsistency, DeterministicProtocolsNeverTalkDown) {
  const std::vector<TimedRow> rows = Data(1500);
  for (Algorithm a : {Algorithm::kDa1, Algorithm::kDa2}) {
    TrackerConfig config;
    config.dim = 5;
    config.num_sites = 4;
    config.window = 300;
    config.epsilon = 0.25;
    auto tracker = MakeTracker(a, config);
    DriverOptions options;
    options.query_points = 2;
    ASSERT_TRUE(RunTracker(tracker.value().get(), rows, 4, 300, options).ok());
    EXPECT_EQ(tracker.value()->Comm().words_down, 0) << AlgorithmName(a);
  }
}

}  // namespace
}  // namespace dswm
