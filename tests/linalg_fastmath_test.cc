// Tolerance suite for the DSWM_FAST_MATH build mode.
//
// Under DSWM_FAST_MATH the matmul/Gram tiles contract each accumulate
// step to a fused multiply-add: one rounding per step instead of two, so
// each output element may differ from the per-lane IEEE build by
// O(k * machine_eps) relative. These tests bound that drift against the
// naive *Reference oracles (which never contract in either mode). They
// pass in BOTH modes -- exactly equal in the default build, within
// tolerance under FAST_MATH -- so tools/run_checks.sh runs them as the
// acceptance gate of the -DDSWM_FAST_MATH=ON tree (ctest -R FastMath).

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"

namespace dswm {
namespace {

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

double MaxAbsEntry(const Matrix& m) {
  double s = 0.0;
  for (int i = 0; i < m.rows(); ++i) {
    for (int j = 0; j < m.cols(); ++j) s = std::max(s, std::fabs(m(i, j)));
  }
  return s;
}

// Contraction changes each length-k accumulator chain by at most ~k
// roundings; 1e-11 relative to the largest reference entry leaves two
// orders of margin at the k <= 513 shapes below.
::testing::AssertionResult WithinContractionTolerance(const Matrix& got,
                                                      const Matrix& ref) {
  if (got.rows() != ref.rows() || got.cols() != ref.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << got.rows() << "x" << got.cols() << " vs "
           << ref.rows() << "x" << ref.cols();
  }
  const double tol = 1e-11 * std::max(1.0, MaxAbsEntry(ref));
  const double diff = MaxAbsDiff(got, ref);
  if (diff > tol) {
    return ::testing::AssertionFailure()
           << "MaxAbsDiff=" << diff << " exceeds tol=" << tol;
  }
  return ::testing::AssertionSuccess();
}

TEST(FastMathTolerance, MatMulMatchesReference) {
  for (const auto& [m, k, p] : {std::array<int, 3>{64, 300, 48},
                                std::array<int, 3>{128, 37, 129},
                                std::array<int, 3>{13, 513, 12}}) {
    const Matrix a = RandomMatrix(m, k, 100 + static_cast<uint64_t>(k));
    const Matrix b = RandomMatrix(k, p, 200 + static_cast<uint64_t>(p));
    EXPECT_TRUE(WithinContractionTolerance(MatMul(a, b), MatMulReference(a, b)))
        << m << "x" << k << "x" << p;
  }
}

TEST(FastMathTolerance, GramKernelsMatchReference) {
  for (const auto& [rows, cols] : {std::array<int, 2>{40, 43},
                                   std::array<int, 2>{300, 24},
                                   std::array<int, 2>{24, 300}}) {
    const Matrix a =
        RandomMatrix(rows, cols, 300 + static_cast<uint64_t>(rows));
    EXPECT_TRUE(WithinContractionTolerance(Gram(a), GramReference(a)))
        << rows << "x" << cols;
    EXPECT_TRUE(
        WithinContractionTolerance(GramTranspose(a), GramTransposeReference(a)))
        << rows << "x" << cols;
  }
}

::testing::AssertionResult BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  for (int i = 0; i < a.rows(); ++i) {
    if (std::memcmp(a.Row(i), b.Row(i),
                    sizeof(double) * static_cast<size_t>(a.cols())) != 0) {
      return ::testing::AssertionFailure() << "row " << i << " differs";
    }
  }
  return ::testing::AssertionSuccess();
}

// Contraction must not break the thread-count invariance: the chunk
// partition never splits an accumulator chain, fused or not.
TEST(FastMathTolerance, ThreadedStillBitIdenticalToSingle) {
  const Matrix a = RandomMatrix(96, 280, 400);
  const Matrix b = RandomMatrix(280, 64, 500);
  const Matrix single_mm = MatMul(a, b);
  const Matrix single_gt = GramTranspose(a);
  ThreadPool::SetGlobalThreads(4);
  const Matrix threaded_mm = MatMul(a, b);
  const Matrix threaded_gt = GramTranspose(a);
  ThreadPool::SetGlobalThreads(1);
  EXPECT_TRUE(BitIdentical(single_mm, threaded_mm));
  EXPECT_TRUE(BitIdentical(single_gt, threaded_gt));
}

}  // namespace
}  // namespace dswm
