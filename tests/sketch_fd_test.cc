#include "sketch/frequent_directions.h"

#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/spectral_norm.h"
#include "linalg/svd.h"
#include "linalg/symmetric_eigen.h"

namespace dswm {
namespace {

Matrix RandomRows(int n, int d, uint64_t seed, double spike_every = 0.0) {
  Rng rng(seed);
  Matrix m(n, d);
  for (int i = 0; i < n; ++i) {
    const double scale =
        (spike_every > 0.0 && rng.NextDouble() < spike_every) ? 20.0 : 1.0;
    for (int j = 0; j < d; ++j) m(i, j) = scale * rng.NextGaussian();
  }
  return m;
}

double SketchError(const Matrix& input, const FrequentDirections& fd) {
  const Matrix exact = GramTranspose(input);
  const Matrix approx = fd.Covariance();
  return SpectralNormExact(Subtract(exact, approx));
}

TEST(FrequentDirections, ExactBelowCapacity) {
  FrequentDirections fd(4, 8);
  const Matrix rows = RandomRows(10, 4, 1);  // 10 < 2*8
  for (int i = 0; i < 10; ++i) fd.Append(rows.Row(i));
  EXPECT_EQ(fd.row_count(), 10);
  EXPECT_DOUBLE_EQ(fd.shrinkage(), 0.0);
  EXPECT_LT(SketchError(rows, fd), 1e-9);
}

TEST(FrequentDirections, InputMassTracksAppends) {
  FrequentDirections fd(3, 2);
  const double r[] = {3.0, 0.0, 4.0};
  fd.Append(r);
  fd.Append(r);
  EXPECT_DOUBLE_EQ(fd.input_mass(), 50.0);
}

struct FdCase {
  int n;
  int d;
  int ell;
};

class FdGuarantee : public ::testing::TestWithParam<FdCase> {};

TEST_P(FdGuarantee, CovarianceErrorWithinBoundAndUnderestimates) {
  const auto [n, d, ell] = GetParam();
  const Matrix rows = RandomRows(n, d, 11 * n + d + ell, 0.02);
  FrequentDirections fd(d, ell);
  for (int i = 0; i < n; ++i) fd.Append(rows.Row(i));

  EXPECT_LE(fd.row_count(), 2 * ell);
  EXPECT_NEAR(fd.input_mass(), rows.FrobeniusNormSquared(), 1e-6);

  // Guarantee: error <= shrinkage <= ||A||_F^2 / (ell+1).
  const double err = SketchError(rows, fd);
  EXPECT_LE(err, fd.shrinkage() + 1e-6);
  EXPECT_LE(fd.shrinkage(), rows.FrobeniusNormSquared() / (ell + 1) + 1e-6);

  // FD underestimates: A^T A - B^T B is PSD.
  const EigenResult gap =
      SymmetricEigen(Subtract(GramTranspose(rows), fd.Covariance()));
  EXPECT_GE(gap.values.back(), -1e-6 * rows.FrobeniusNormSquared());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FdGuarantee,
    ::testing::Values(FdCase{50, 8, 2}, FdCase{200, 8, 4}, FdCase{200, 16, 8},
                      FdCase{500, 16, 3}, FdCase{1000, 32, 10},
                      FdCase{300, 4, 1}, FdCase{64, 64, 8}));

TEST(FrequentDirections, MergePreservesGuarantee) {
  const int d = 10;
  const Matrix a = RandomRows(300, d, 21);
  const Matrix b = RandomRows(200, d, 22);
  FrequentDirections fa(d, 6);
  FrequentDirections fb(d, 6);
  for (int i = 0; i < a.rows(); ++i) fa.Append(a.Row(i));
  for (int i = 0; i < b.rows(); ++i) fb.Append(b.Row(i));
  fa.Merge(fb);

  Matrix all(0, d);
  for (int i = 0; i < a.rows(); ++i) all.AppendRow(a.Row(i), d);
  for (int i = 0; i < b.rows(); ++i) all.AppendRow(b.Row(i), d);
  const double err = SketchError(all, fa);
  EXPECT_LE(err, fa.shrinkage() + 1e-6);
  EXPECT_LE(err, all.FrobeniusNormSquared() / 7.0 * 2.5);
}

TEST(FrequentDirections, CompactReducesToEllRows) {
  FrequentDirections fd(6, 3);
  const Matrix rows = RandomRows(5, 6, 30);
  for (int i = 0; i < 5; ++i) fd.Append(rows.Row(i));
  EXPECT_EQ(fd.row_count(), 5);
  fd.Compact();
  EXPECT_LE(fd.row_count(), 3);
}

TEST(FrequentDirections, ResetClearsState) {
  FrequentDirections fd(4, 2);
  const Matrix rows = RandomRows(9, 4, 31);
  for (int i = 0; i < 9; ++i) fd.Append(rows.Row(i));
  fd.Reset();
  EXPECT_EQ(fd.row_count(), 0);
  EXPECT_DOUBLE_EQ(fd.input_mass(), 0.0);
  EXPECT_DOUBLE_EQ(fd.shrinkage(), 0.0);
  EXPECT_DOUBLE_EQ(fd.Covariance().FrobeniusNormSquared(), 0.0);
}

TEST(FrequentDirections, SpaceWordsMatchesRows) {
  FrequentDirections fd(4, 2);
  const Matrix rows = RandomRows(3, 4, 32);
  for (int i = 0; i < 3; ++i) fd.Append(rows.Row(i));
  EXPECT_EQ(fd.SpaceWords(), 12);
}

// The pre-zero-copy shrink, reimplemented verbatim: materialize the live
// rows, take a full RightSvd, rebuild shrunk rows in a fresh buffer. The
// production in-place shrink must stay numerically equivalent to it.
class LegacyFrequentDirections {
 public:
  LegacyFrequentDirections(int d, int ell) : d_(d), ell_(ell), rows_(0, d) {}

  void Append(const double* row) {
    if (rows_.rows() == 2 * ell_) Shrink();
    rows_.AppendRow(row, d_);
  }

  [[nodiscard]] Matrix Covariance() const { return GramTranspose(rows_); }

 private:
  void Shrink() {
    const RightSvdResult svd = RightSvd(rows_);
    const int r = static_cast<int>(svd.sigma_squared.size());
    const double delta =
        (ell_ < r) ? std::max(svd.sigma_squared[ell_], 0.0) : 0.0;
    Matrix shrunk(0, d_);
    for (int i = 0; i < std::min(ell_, r); ++i) {
      const double s2 = std::max(svd.sigma_squared[i], 0.0) - delta;
      if (s2 <= 0.0) break;
      std::vector<double> row(svd.vt.Row(i), svd.vt.Row(i) + d_);
      Scale(row.data(), d_, std::sqrt(s2));
      shrunk.AppendRow(row.data(), d_);
    }
    rows_ = std::move(shrunk);
  }

  int d_;
  int ell_;
  Matrix rows_;
};

TEST(FrequentDirections, ZeroCopyShrinkMatchesLegacyShrink) {
  // Both the short-side (n <= d) and Gram-side (n > d) shrink paths.
  for (const auto& [d, ell] : {std::pair<int, int>{24, 8},
                               std::pair<int, int>{6, 5}}) {
    FrequentDirections fd(d, ell);
    LegacyFrequentDirections legacy(d, ell);
    const Matrix input = RandomRows(300, d, 91 + static_cast<uint64_t>(d));
    for (int i = 0; i < input.rows(); ++i) {
      fd.Append(input.Row(i));
      legacy.Append(input.Row(i));
    }
    const Matrix cov = fd.Covariance();
    const Matrix legacy_cov = legacy.Covariance();
    const double scale = std::max(1.0, legacy_cov.FrobeniusNormSquared());
    EXPECT_LT(MaxAbsDiff(cov, legacy_cov) / scale, 1e-9)
        << "d=" << d << " ell=" << ell;
  }
}

TEST(FrequentDirections, AdversarialSingleHeavyDirection) {
  // One giant direction among noise must survive sketching.
  const int d = 12;
  FrequentDirections fd(d, 4);
  Rng rng(40);
  std::vector<double> heavy(d, 0.0);
  heavy[3] = 100.0;
  Matrix all(0, d);
  std::vector<double> row(d);
  for (int i = 0; i < 400; ++i) {
    if (i == 200) {
      fd.Append(heavy.data());
      all.AppendRow(heavy.data(), d);
      continue;
    }
    for (int j = 0; j < d; ++j) row[j] = rng.NextGaussian();
    fd.Append(row.data());
    all.AppendRow(row.data(), d);
  }
  const Matrix cov = fd.Covariance();
  // The heavy direction's mass (10000) must be nearly intact.
  EXPECT_GT(cov(3, 3), 9000.0);
}

}  // namespace
}  // namespace dswm
