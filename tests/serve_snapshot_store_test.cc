// SnapshotStore semantics: versioning and meta stamping, wait-free pins,
// epoch-based reclamation (a pinned version is never freed, a quiescent
// one is), the exactly-once materialization contract, and a
// publish-while-read stress that TSan can chew on (ctest -L serve runs
// in the TSan tree via tools/run_checks.sh).

#include <atomic>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "core/covariance_estimate.h"
#include "obs/metrics.h"
#include "serve/query_service.h"
#include "serve/snapshot_store.h"

namespace dswm {
namespace {

// A d x d covariance whose (0,0) entry encodes `tag`, so readers can
// cross-check that the version they pinned serves that version's bytes.
Matrix TaggedCovariance(int d, double tag) {
  Matrix c(d, d);
  for (int i = 0; i < d; ++i) c(i, i) = 1.0 + static_cast<double>(i);
  c(0, 0) = tag;
  return c;
}

Status PublishTagged(serve::SnapshotStore* store, int d, double tag,
                     Timestamp at) {
  return store->Publish(
      CovarianceEstimate::FromCovariance(TaggedCovariance(d, tag)), at,
      /*window=*/100);
}

TEST(SnapshotStore, RejectsEmptyEstimateAndBadOptions) {
  serve::SnapshotStore store;
  const Status empty = store.Publish(CovarianceEstimate(), 10, 100);
  EXPECT_FALSE(empty.ok());
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.latest_version(), 0u);
  EXPECT_EQ(store.published_count(), 0);
}

TEST(SnapshotStore, VersionsAndMetaStamping) {
  serve::SnapshotStore store;
  serve::SnapshotReader reader(&store);
  EXPECT_FALSE(reader.Pin().has_value());  // before the first publish

  ASSERT_TRUE(PublishTagged(&store, 4, 7.0, 250).ok());
  ASSERT_TRUE(PublishTagged(&store, 4, 8.0, 350).ok());
  EXPECT_EQ(store.latest_version(), 2u);
  EXPECT_EQ(store.published_count(), 2);

  const serve::SnapshotRef ref = reader.Pin();
  ASSERT_TRUE(ref.has_value());
  EXPECT_EQ(ref.meta().version, 2u);
  EXPECT_EQ(ref.meta().published_at, 350);
  EXPECT_EQ(ref.meta().window, 100);
  // Coverage (window_start, published_at] with cutoff = t - window.
  EXPECT_EQ(ref.meta().window_start, 251);
  EXPECT_DOUBLE_EQ(ref->estimate().Covariance()(0, 0), 8.0);
  EXPECT_TRUE(ref->estimate().sealed());
}

TEST(SnapshotStore, PinnedVersionSurvivesLaterPublishes) {
  serve::SnapshotStore store;
  serve::SnapshotReader reader(&store);
  ASSERT_TRUE(PublishTagged(&store, 4, 1.0, 100).ok());

  {
    const serve::SnapshotRef pinned = reader.Pin();
    ASSERT_TRUE(pinned.has_value());
    ASSERT_TRUE(PublishTagged(&store, 4, 2.0, 200).ok());
    ASSERT_TRUE(PublishTagged(&store, 4, 3.0, 300).ok());
    // Version 1 is retired but must not be freed while pinned; version 2
    // was retired after this pin's announced epoch, so it may not be
    // freed either. The pinned bytes stay valid and version-consistent.
    EXPECT_EQ(pinned.meta().version, 1u);
    EXPECT_DOUBLE_EQ(pinned->estimate().Covariance()(0, 0), 1.0);
    EXPECT_EQ(store.reclaimed_count(), 0);
    EXPECT_EQ(store.retired_pending(), 2);
  }
  // Quiescent again: the next publish reclaims both retired versions.
  ASSERT_TRUE(PublishTagged(&store, 4, 4.0, 400).ok());
  EXPECT_EQ(store.reclaimed_count(), 3);
  EXPECT_EQ(store.retired_pending(), 0);
  // Conservation: every published version is the live one, pending, or
  // reclaimed.
  EXPECT_EQ(store.published_count(),
            store.reclaimed_count() + store.retired_pending() + 1);
}

TEST(SnapshotStore, ReaderDestructionReclaims) {
  serve::SnapshotStore store;
  ASSERT_TRUE(PublishTagged(&store, 3, 1.0, 100).ok());
  {
    serve::SnapshotReader reader(&store);
    const serve::SnapshotRef pinned = reader.Pin();
    ASSERT_TRUE(PublishTagged(&store, 3, 2.0, 200).ok());
    EXPECT_EQ(store.retired_pending(), 1);
  }
  // Releasing the slot runs reclamation without needing another publish.
  EXPECT_EQ(store.retired_pending(), 0);
  EXPECT_EQ(store.reclaimed_count(), 1);
}

TEST(SnapshotStore, NestedPinsShareTheAnnouncedEpoch) {
  serve::SnapshotStore store;
  serve::SnapshotReader reader(&store);
  ASSERT_TRUE(PublishTagged(&store, 3, 1.0, 100).ok());
  const serve::SnapshotRef outer = reader.Pin();
  ASSERT_TRUE(PublishTagged(&store, 3, 2.0, 200).ok());
  // The inner pin sees the newer version; both stay valid until released
  // (the slot stays announced while any pin is live).
  const serve::SnapshotRef inner = reader.Pin();
  EXPECT_EQ(outer.meta().version, 1u);
  EXPECT_EQ(inner.meta().version, 2u);
  EXPECT_DOUBLE_EQ(outer->estimate().Covariance()(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(inner->estimate().Covariance()(0, 0), 2.0);
  EXPECT_EQ(store.reclaimed_count(), 0);
}

TEST(SnapshotStore, MaterializesEachVersionExactlyOnce) {
  // The acceptance counter-assert: per published version, exactly one
  // eigendecomposition and one PSD root (covariance-native estimates make
  // the root real O(d^3) work), no matter how many readers query.
  const bool was_enabled = obs::Enabled();
  obs::SetEnabled(true);
  obs::Registry().ResetForTest();

  const int kVersions = 5;
  serve::SnapshotStore store;
  for (int v = 1; v <= kVersions; ++v) {
    ASSERT_TRUE(PublishTagged(&store, 6, static_cast<double>(v), 100 * v).ok());
  }
  serve::QueryService service(&store);
  for (int s = 0; s < 3; ++s) {
    serve::QueryService::Session session = service.NewSession();
    const std::vector<double> x(6, 1.0);
    for (int q = 0; q < 10; ++q) {
      ASSERT_TRUE(session.Pca(x.data(), 6).ok());
      ASSERT_TRUE(session.Anomaly(x.data(), 6).ok());
    }
  }

  long eigen_count = 0;
  long psd_count = 0;
  for (const auto& [name, value] : obs::Registry().Snapshot().counters) {
    const auto ends_with = [&name](const char* suffix) {
      const size_t n = std::strlen(suffix);
      return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
    };
    if (ends_with("query.eigen.count")) eigen_count += value;
    if (ends_with("query.psd_sqrt.count")) psd_count += value;
  }
  EXPECT_EQ(eigen_count, kVersions);
  EXPECT_EQ(psd_count, kVersions);

  obs::SetEnabled(was_enabled);
}

TEST(SnapshotStore, PublishWhileReadStress) {
  // Concurrency stress for TSan: one publisher task races several reader
  // tasks. Readers verify that whatever version they pin serves that
  // version's bytes -- a reclaimed-while-pinned bug shows up as a torn
  // tag, a use-after-free, or a TSan report.
  const int kReaders = 3;
  const int kVersions = 60;
  const int d = 8;
  serve::SnapshotStore store;
  std::atomic<bool> done{false};
  std::atomic<long> mismatches{0};
  std::atomic<long> reads{0};

  ThreadPool pool(kReaders + 2);
  pool.Submit([&] {
    for (int v = 1; v <= kVersions; ++v) {
      ASSERT_TRUE(
          PublishTagged(&store, d, static_cast<double>(v), 10 * v).ok());
    }
    done.store(true, std::memory_order_release);
  });
  for (int r = 0; r < kReaders; ++r) {
    pool.Submit([&] {
      serve::SnapshotReader reader(&store);
      long local_reads = 0;
      while (!done.load(std::memory_order_acquire) || local_reads < 100) {
        const serve::SnapshotRef ref = reader.Pin();
        if (!ref.has_value()) continue;
        ++local_reads;
        const double tag = ref->estimate().Covariance()(0, 0);
        if (tag != static_cast<double>(ref.meta().version)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        // Touch the memoized views too: all shared, all sealed.
        if (ref->estimate().Rows().cols() != d) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
      reads.fetch_add(local_reads, std::memory_order_relaxed);
    });
  }
  pool.WaitIdle();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GE(reads.load(), kReaders * 100);
  EXPECT_EQ(store.published_count(), kVersions);
  // All readers released their slots: everything but the latest version
  // is reclaimable, and the next publish proves it.
  ASSERT_TRUE(PublishTagged(&store, d, kVersions + 1.0, 10000).ok());
  EXPECT_EQ(store.retired_pending(), 0);
  EXPECT_EQ(store.reclaimed_count(), kVersions);
}

}  // namespace
}  // namespace dswm
