#include "window/exact_window.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace dswm {
namespace {

TimedRow Row(std::vector<double> v, Timestamp t) {
  TimedRow row;
  row.values = std::move(v);
  row.timestamp = t;
  return row;
}

TEST(ExactWindow, CovarianceMatchesDirectComputation) {
  ExactWindow w(2, 100);
  w.Add(Row({1.0, 2.0}, 1));
  w.Add(Row({3.0, -1.0}, 2));
  w.Advance(2);
  const Matrix c = w.Covariance();
  EXPECT_DOUBLE_EQ(c(0, 0), 1.0 + 9.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 2.0 - 3.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 4.0 + 1.0);
  EXPECT_DOUBLE_EQ(w.FrobeniusSquared(), 15.0);
}

TEST(ExactWindow, ExpiryRemovesContributions) {
  ExactWindow w(2, 10);
  w.Add(Row({5.0, 0.0}, 1));
  w.Add(Row({0.0, 2.0}, 8));
  w.Advance(11);  // cutoff 1: first row (t=1 <= 1) expires
  EXPECT_EQ(w.size(), 1);
  EXPECT_DOUBLE_EQ(w.Covariance()(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(w.FrobeniusSquared(), 4.0);
}

TEST(ExactWindow, EmptyWindowResetsResidue) {
  ExactWindow w(3, 5);
  Rng rng(1);
  for (int i = 1; i <= 100; ++i) {
    TimedRow r;
    r.timestamp = i;
    r.values = {rng.NextGaussian(), rng.NextGaussian(), rng.NextGaussian()};
    w.Add(r);
    w.Advance(i);
  }
  w.Advance(1000);
  EXPECT_EQ(w.size(), 0);
  EXPECT_DOUBLE_EQ(w.FrobeniusSquared(), 0.0);
  EXPECT_DOUBLE_EQ(w.Covariance().FrobeniusNormSquared(), 0.0);
}

TEST(ExactWindow, SparseRowsMatchDense) {
  ExactWindow sparse(4, 100);
  ExactWindow dense(4, 100);

  TimedRow s = Row({0.0, 3.0, 0.0, -2.0}, 1);
  s.support = {1, 3};
  sparse.Add(s);

  TimedRow d = Row({0.0, 3.0, 0.0, -2.0}, 1);
  dense.Add(d);

  EXPECT_LT(MaxAbsDiff(sparse.Covariance(), dense.Covariance()), 1e-15);
  EXPECT_DOUBLE_EQ(sparse.FrobeniusSquared(), dense.FrobeniusSquared());
}

TEST(ExactWindow, RowsMatrixMaterializesActiveRows) {
  ExactWindow w(2, 100);
  w.Add(Row({1.0, 0.0}, 1));
  w.Add(Row({0.0, 1.0}, 2));
  const Matrix m = w.RowsMatrix();
  ASSERT_EQ(m.rows(), 2);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 1.0);
}

}  // namespace
}  // namespace dswm
