#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sampling/dominance_counter.h"
#include "sampling/priority.h"
#include "sampling/sample_set.h"
#include "sampling/site_queue.h"

namespace dswm {
namespace {

TimedRow MakeRow(double value, Timestamp t) {
  TimedRow row;
  row.values = {value};
  row.timestamp = t;
  return row;
}

// ---- Priority policies -----------------------------------------------------

TEST(PriorityPolicy, PriorityKeysExceedWeight) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const double w = 0.5 + rng.NextDouble();
    const double key = DrawKey(SamplingScheme::kPriority, w, &rng);
    EXPECT_GT(key, w);  // w/u with u in (0,1)
  }
}

TEST(PriorityPolicy, EsKeysAreNegativeLogDomain) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const double w = 0.5 + rng.NextDouble();
    const double key = DrawKey(SamplingScheme::kEfraimidisSpirakis, w, &rng);
    EXPECT_LT(key, 0.0);
    EXPECT_GT(KeyBucketValue(SamplingScheme::kEfraimidisSpirakis, key), 0.0);
  }
}

TEST(PriorityPolicy, EsHigherWeightWinsInExpectation) {
  // P(key_w > key_1) = w/(w+1) for ES sampling; check statistically.
  Rng rng(3);
  const double w = 4.0;
  int wins = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    const double kw = DrawKey(SamplingScheme::kEfraimidisSpirakis, w, &rng);
    const double k1 = DrawKey(SamplingScheme::kEfraimidisSpirakis, 1.0, &rng);
    if (kw > k1) ++wins;
  }
  EXPECT_NEAR(static_cast<double>(wins) / trials, w / (w + 1.0), 0.02);
}

TEST(PriorityPolicy, RelaxLowersThresholdMonotonically) {
  for (SamplingScheme s :
       {SamplingScheme::kPriority, SamplingScheme::kEfraimidisSpirakis}) {
    double tau = s == SamplingScheme::kPriority ? 100.0 : -0.5;
    for (int i = 0; i < 10; ++i) {
      const double next = RelaxThreshold(s, tau);
      EXPECT_LT(next, tau);
      tau = next;
    }
    // Lowest threshold is a fixed point.
    const double low = LowestThreshold(s);
    EXPECT_LE(RelaxThreshold(s, low), low);
  }
}

// ---- DominanceCounter ------------------------------------------------------

TEST(DominanceCounter, CountsStrictlyHigherBuckets) {
  DominanceCounter c;
  c.Add(1.0);
  c.Add(10.0);
  c.Add(100.0);
  EXPECT_EQ(c.total(), 3);
  EXPECT_EQ(c.CountStrictlyAbove(1.0), 2);
  EXPECT_EQ(c.CountStrictlyAbove(100.0), 0);
  EXPECT_EQ(c.CountStrictlyAbove(0.001), 3);
}

TEST(DominanceCounter, SameBucketNotCounted) {
  DominanceCounter c;
  c.Add(1.0);
  c.Add(1.0);
  // Near-ties land in the same log-scale bucket: conservatively 0.
  EXPECT_EQ(c.CountStrictlyAbove(1.0), 0);
}

TEST(DominanceCounter, NeverOvercountsVsExact) {
  Rng rng(7);
  DominanceCounter c;
  std::vector<double> values;
  for (int i = 0; i < 2000; ++i) {
    const double v = std::exp(3.0 * rng.NextGaussian());
    // Exact count of strictly larger values added so far.
    long exact = 0;
    for (double u : values) {
      if (u > v) ++exact;
    }
    EXPECT_LE(c.CountStrictlyAbove(v), exact);
    c.Add(v);
    values.push_back(v);
  }
}

// ---- SiteSampleQueue -------------------------------------------------------

TEST(SiteSampleQueue, ExpiresOldEntries) {
  SiteSampleQueue q(2, 10);
  q.NoteArrival(1.0);
  q.Enqueue(MakeRow(1.0, 1), 1.0, 1.0);
  q.NoteArrival(2.0);
  q.Enqueue(MakeRow(1.0, 8), 2.0, 2.0);
  EXPECT_EQ(q.size(), 2);
  q.Expire(11);  // cutoff 1
  EXPECT_EQ(q.size(), 1);
  EXPECT_DOUBLE_EQ(q.MaxKey(-1), 2.0);
}

TEST(SiteSampleQueue, TakeAtLeastRemovesQualified) {
  SiteSampleQueue q(2, 100);
  for (int i = 1; i <= 5; ++i) {
    const double key = i * 10.0;
    q.NoteArrival(key);
    q.Enqueue(MakeRow(1.0, i), key, key);
  }
  const auto taken = q.TakeAtLeast(30.0);
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_EQ(q.size(), 2);
  for (const SiteEntry& e : taken) EXPECT_GE(e.key, 30.0);
}

TEST(SiteSampleQueue, PopMaxReturnsLargest) {
  SiteSampleQueue q(2, 100);
  for (double key : {5.0, 50.0, 0.5}) {
    q.NoteArrival(key);
    q.Enqueue(MakeRow(1.0, 1), key, key);
  }
  EXPECT_DOUBLE_EQ(q.PopMax().key, 50.0);
  EXPECT_DOUBLE_EQ(q.PopMax().key, 5.0);
  EXPECT_EQ(q.size(), 1);
}

TEST(SiteSampleQueue, PrunesDominatedEntriesEventually) {
  // One tiny-key entry, then floods of large keys: with ell=4 the tiny
  // entry must eventually be pruned (amortized), well before 10x growth.
  SiteSampleQueue q(4, 1000000);
  q.NoteArrival(1.0);
  q.Enqueue(MakeRow(1.0, 1), 1.0, 1.0);
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const double key = 1000.0 + rng.NextDouble();
    q.NoteArrival(key);
    q.Enqueue(MakeRow(1.0, 2 + i), key, key);
  }
  // The tiny key must be gone; survivors are all large.
  EXPECT_GT(q.TakeAtLeast(500.0).size(), 0u);
  EXPECT_EQ(q.TakeAtLeast(0.0).size(), 0u);
}

TEST(SiteSampleQueue, KeepsEverythingNotDominated) {
  // With ell larger than the stream, nothing may be pruned.
  SiteSampleQueue q(1000, 1000000);
  Rng rng(10);
  for (int i = 0; i < 300; ++i) {
    const double key = std::exp(rng.NextGaussian());
    q.NoteArrival(key);
    q.Enqueue(MakeRow(1.0, 1 + i), key, key);
  }
  EXPECT_EQ(q.size(), 300);
}

TEST(SiteSampleQueue, SpaceWordsScalesWithEntries) {
  SiteSampleQueue q(2, 100);
  const long empty = q.SpaceWords(5);
  q.NoteArrival(1.0);
  q.Enqueue(MakeRow(1.0, 1), 1.0, 1.0);
  EXPECT_EQ(q.SpaceWords(5) - empty, 5 + 3);
}

// ---- KeyedSampleSet --------------------------------------------------------

TEST(KeyedSampleSet, OrderedOperations) {
  KeyedSampleSet s;
  s.Insert({MakeRow(1.0, 1), 5.0});
  s.Insert({MakeRow(1.0, 2), 1.0});
  s.Insert({MakeRow(1.0, 3), 9.0});
  EXPECT_EQ(s.size(), 3);
  EXPECT_DOUBLE_EQ(s.MinKey(), 1.0);
  EXPECT_DOUBLE_EQ(s.MaxKey(-1), 9.0);
  EXPECT_DOUBLE_EQ(s.KthLargestKey(1), 9.0);
  EXPECT_DOUBLE_EQ(s.KthLargestKey(2), 5.0);
  EXPECT_DOUBLE_EQ(s.KthLargestKey(3), 1.0);
}

TEST(KeyedSampleSet, ExpireBeforeRemovesByTimestamp) {
  KeyedSampleSet s;
  s.Insert({MakeRow(1.0, 10), 5.0});
  s.Insert({MakeRow(1.0, 20), 1.0});
  EXPECT_EQ(s.ExpireBefore(10), 1);
  EXPECT_EQ(s.size(), 1);
  EXPECT_DOUBLE_EQ(s.MinKey(), 1.0);
}

TEST(KeyedSampleSet, PopMinPopMax) {
  KeyedSampleSet s;
  s.Insert({MakeRow(1.0, 1), 5.0});
  s.Insert({MakeRow(1.0, 2), 1.0});
  s.Insert({MakeRow(1.0, 3), 9.0});
  EXPECT_DOUBLE_EQ(s.PopMin().key, 1.0);
  EXPECT_DOUBLE_EQ(s.PopMax().key, 9.0);
  EXPECT_EQ(s.size(), 1);
}

TEST(KeyedSampleSet, TakeBelowAndAtLeastPartition) {
  KeyedSampleSet s;
  for (int i = 1; i <= 10; ++i) s.Insert({MakeRow(1.0, i), i * 1.0});
  const auto low = s.TakeBelow(4.0);
  EXPECT_EQ(low.size(), 3u);
  const auto high = s.TakeAtLeast(8.0);
  EXPECT_EQ(high.size(), 3u);
  EXPECT_EQ(s.size(), 4);
}

TEST(KeyedSampleSet, TopKReturnsLargest) {
  KeyedSampleSet s;
  for (int i = 1; i <= 5; ++i) s.Insert({MakeRow(1.0, i), i * 1.0});
  const auto top = s.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_DOUBLE_EQ(top[0]->key, 5.0);
  EXPECT_DOUBLE_EQ(top[1]->key, 4.0);
}

TEST(KeyedSampleSet, DuplicateKeysAndTimestamps) {
  KeyedSampleSet s;
  s.Insert({MakeRow(1.0, 7), 3.0});
  s.Insert({MakeRow(2.0, 7), 3.0});
  s.Insert({MakeRow(3.0, 7), 3.0});
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.ExpireBefore(7), 3);
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace dswm
