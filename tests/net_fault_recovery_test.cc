// End-to-end fault injection: PWOR under data-plane loss, with and
// without the ack-and-resend reliability shim, and recovery once the
// network heals and the lossy era slides out of the window.
//
// The tracker runs in exact mode (l larger than the window population),
// so the clean-network error is ~0 and any residual error is exactly the
// covariance mass the network lost.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/tracker_factory.h"
#include "net/channel.h"
#include "sketch/covariance.h"
#include "window/exact_window.h"

namespace dswm {
namespace {

constexpr int kDim = 4;
constexpr int kSites = 2;
constexpr Timestamp kWindow = 200;
constexpr double kEpsilon = 0.3;

std::unique_ptr<DistributedTracker> MakeLossyPwor(bool reliable) {
  TrackerConfig config;
  config.dim = kDim;
  config.num_sites = kSites;
  config.window = kWindow;
  config.epsilon = kEpsilon;
  // Exact mode: l comfortably exceeds the <= kWindow rows ever active.
  config.ell_override = 2 * static_cast<int>(kWindow);
  config.seed = 5;
  config.net.drop = 0.5;  // selects the fault injector; phases flip it
  config.net.seed = 7;
  config.net.reliable = reliable;
  config.net.retry = 1;
  auto tracker = MakeTracker(Algorithm::kPwor, config);
  EXPECT_TRUE(tracker.ok());
  return std::move(tracker).value();
}

void SetDrop(DistributedTracker* tracker, double p) {
  for (net::Channel* c : tracker->Channels()) {
    net::FaultyChannel* faulty = c->AsFaulty();
    ASSERT_NE(faulty, nullptr);
    faulty->profile().drop = p;
  }
}

double ErrorAgainst(const ExactWindow& exact,
                    const DistributedTracker& tracker) {
  const CovarianceEstimate approx = tracker.Query();
  const Matrix cov = exact.Covariance();
  const double fnorm2 = exact.FrobeniusSquared();
  return approx.NativeIsRows()
             ? CovarianceErrorOfSketch(cov, approx.Rows(), fnorm2)
             : CovarianceErrorOfCovariance(cov, approx.Covariance(), fnorm2);
}

std::vector<TimedRow> GaussianRows(int n) {
  Rng rng(11);
  std::vector<TimedRow> rows(n);
  for (int i = 0; i < n; ++i) {
    rows[i].timestamp = i + 1;
    rows[i].values.resize(kDim);
    for (double& v : rows[i].values) v = rng.NextGaussian();
  }
  return rows;
}

TEST(NetFaultRecovery, PworDegradesUnderLossAndRecoversAfterwards) {
  const std::vector<TimedRow> rows = GaussianRows(900);

  auto unreliable = MakeLossyPwor(/*reliable=*/false);
  auto reliable = MakeLossyPwor(/*reliable=*/true);
  SetDrop(unreliable.get(), 0.0);
  SetDrop(reliable.get(), 0.0);

  ExactWindow exact(kDim, kWindow);
  const auto feed = [&](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      const int site = i % kSites;
      EXPECT_TRUE(unreliable->Observe(site, rows[i]).ok());
      EXPECT_TRUE(reliable->Observe(site, rows[i]).ok());
      exact.Add(rows[i]);
      exact.Advance(rows[i].timestamp);
    }
  };

  // Phase A: clean network for two windows. Exact mode => error ~ 0.
  feed(0, 400);
  const double err_clean_unreliable = ErrorAgainst(exact, *unreliable);
  const double err_clean_reliable = ErrorAgainst(exact, *reliable);
  EXPECT_LT(err_clean_unreliable, 0.02);
  EXPECT_LT(err_clean_reliable, 0.02);

  // Phase B: 50% data-plane loss for one full window.
  SetDrop(unreliable.get(), 0.5);
  SetDrop(reliable.get(), 0.5);
  feed(400, 600);
  const double err_lossy_unreliable = ErrorAgainst(exact, *unreliable);
  const double err_lossy_reliable = ErrorAgainst(exact, *reliable);

  // Without the shim, half the window's covariance mass is gone: for
  // N(0, I_d) rows the spectral error plateaus near drop/d ~ 0.125.
  EXPECT_GT(err_lossy_unreliable, 0.06);
  // With ack-and-resend, every lost row is retransmitted one tick later:
  // at most the last tick's frames are still in flight.
  EXPECT_LT(err_lossy_reliable, 0.05);
  EXPECT_GT(err_lossy_unreliable, 2.0 * err_lossy_reliable);

  // The shim's price is visible in the ledger: retransmissions and acks.
  long drops_unreliable = 0;
  for (const net::Channel* c : unreliable->Channels()) {
    for (const net::LedgerEntry& e : c->ledger().entries()) {
      drops_unreliable += e.dropped ? 1 : 0;
      EXPECT_FALSE(e.retransmit);  // nobody resends without the shim
    }
  }
  EXPECT_GT(drops_unreliable, 0);
  long retransmits = 0;
  long acks = 0;
  for (const net::Channel* c : reliable->Channels()) {
    for (const net::LedgerEntry& e : c->ledger().entries()) {
      retransmits += e.retransmit ? 1 : 0;
      acks += e.kind == net::MessageKind::kAck ? 1 : 0;
    }
  }
  EXPECT_GT(retransmits, 0);
  EXPECT_GT(acks, 0);
  // Reliability costs words: the reliable run sent strictly more.
  EXPECT_GT(reliable->Comm().TotalWords(), unreliable->Comm().TotalWords());

  // Phase C: the network heals. After the lossy era slides fully out of
  // the window, the unreliable tracker's sample is whole again.
  SetDrop(unreliable.get(), 0.0);
  SetDrop(reliable.get(), 0.0);
  feed(600, 900);
  const double err_recovered = ErrorAgainst(exact, *unreliable);
  EXPECT_LT(err_recovered, kEpsilon * 1.5);  // the paper-level guarantee
  EXPECT_LT(err_recovered, 0.02);            // and in fact exact again
  EXPECT_LT(ErrorAgainst(exact, *reliable), 0.02);
}

}  // namespace
}  // namespace dswm
