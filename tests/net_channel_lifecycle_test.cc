// Channel lifecycle edges: send-after-close, a handler that closes its
// own channel mid-delivery, null handlers, and zero-length-payload
// frames. These are the teardown and boundary paths asynchronous
// runtimes exercise; none may crash or corrupt accounting.

#include <gtest/gtest.h>

#include <vector>

#include "net/backend_registry.h"
#include "net/channel.h"
#include "net/wire.h"

namespace dswm::net {
namespace {

TEST(ChannelLifecycle, SendAfterCloseIsDiscarded) {
  LoopbackChannel channel(2);
  int delivered = 0;
  channel.SetHandler([&](Delivery) { ++delivered; });
  channel.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{1.0}));
  EXPECT_EQ(delivered, 1);
  EXPECT_EQ(channel.comm().messages, 1);

  channel.Close();
  EXPECT_TRUE(channel.closed());
  channel.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{2.0}));
  EXPECT_EQ(delivered, 1);
  // Nothing was serialized or ledgered: the frame never existed.
  EXPECT_EQ(channel.comm().messages, 1);

  // Close is idempotent.
  channel.Close();
  EXPECT_TRUE(channel.closed());
}

TEST(ChannelLifecycle, HandlerClosingItsOwnChannelIsSafe) {
  // A delivery handler that closes the channel it is being called from:
  // the in-flight delivery completes, later sends are discarded.
  LoopbackChannel channel(1);
  int delivered = 0;
  channel.SetHandler([&](Delivery) {
    ++delivered;
    channel.Close();
  });
  channel.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{1.0}));
  EXPECT_EQ(delivered, 1);
  channel.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{2.0}));
  EXPECT_EQ(delivered, 1);
}

TEST(ChannelLifecycle, LateFaultyDeliveriesAfterCloseAreDropped) {
  NetProfile profile;
  profile.delay_min = 5;
  profile.delay_max = 5;
  profile.seed = 3;
  FaultyChannel channel(1, profile);
  int delivered = 0;
  channel.SetHandler([&](Delivery) { ++delivered; });
  channel.AdvanceTime(0);
  channel.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{1.0}));
  EXPECT_EQ(delivered, 0);
  ASSERT_TRUE(channel.NextDueTime().has_value());

  // Teardown before the delayed frame lands: the flush discards it.
  channel.Close();
  channel.AdvanceTime(10);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(channel.in_flight(), 0);
  // The transmission was still ledgered when it was sent.
  EXPECT_EQ(channel.comm().messages, 1);
}

TEST(ChannelLifecycle, NullHandlerDropsDeliveriesWithoutCrashing) {
  LoopbackChannel channel(1);
  channel.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{1.0}));
  channel.Send(Direction::kBroadcast, -1,
               WireMessage(ThresholdBroadcastMsg{0.5}));
  EXPECT_EQ(channel.comm().messages, 2);
  EXPECT_EQ(channel.comm().broadcasts, 1);
}

TEST(ChannelLifecycle, ZeroLengthPayloadFramesAreHandledCleanly) {
  // An eigenpair with an empty vector is the smallest real message: one
  // payload word (lambda). It must survive the full serialize ->
  // parse -> deliver path.
  LoopbackChannel channel(1);
  int delivered = 0;
  channel.SetHandler([&](Delivery d) {
    const auto& eig = std::get<EigenpairMsg>(d.msg);
    EXPECT_TRUE(eig.vector.empty());
    ++delivered;
  });
  channel.Send(Direction::kUp, 0, WireMessage(EigenpairMsg{1.5, {}}));
  EXPECT_EQ(delivered, 1);

  // A frame with *zero* payload words is structurally expressible (the
  // header admits words=0) but semantically invalid for every kind; the
  // parser must reject it as a Status, never deliver garbage.
  std::vector<uint8_t> header_only(kFrameHeaderBytes, 0);
  header_only[0] = kMinMessageKind;
  header_only[2] = static_cast<uint8_t>(kWireFormatVersion);
  for (uint8_t kind = kMinMessageKind; kind <= kMaxMessageKind; ++kind) {
    header_only[0] = kind;
    EXPECT_FALSE(ParseFrame(header_only.data(), header_only.size()).ok())
        << "kind " << static_cast<int>(kind);
  }
}

TEST(ChannelLifecycle, WireSequencesAreGaplessPerChannelAndIndependent) {
  LoopbackChannel a(1);
  LoopbackChannel b(1);
  std::vector<uint64_t> a_seqs;
  std::vector<uint64_t> b_seqs;
  a.SetHandler([&](Delivery d) { a_seqs.push_back(d.sequence); });
  b.SetHandler([&](Delivery d) { b_seqs.push_back(d.sequence); });
  for (int i = 0; i < 3; ++i) {
    a.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{1.0}));
  }
  b.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{2.0}));
  EXPECT_EQ(a_seqs, (std::vector<uint64_t>{1, 2, 3}));
  // Per-channel numbering: b starts at 1 regardless of a's traffic.
  EXPECT_EQ(b_seqs, (std::vector<uint64_t>{1}));
}

TEST(ChannelLifecycle, RegistryBackendsBuildWorkingChannels) {
  // "default" obeys the profile (loopback when perfect, faulty when not);
  // the explicit names force the implementation.
  NetProfile perfect;
  NetProfile lossy;
  lossy.drop = 0.5;
  lossy.seed = 9;

  auto default_backend = FindChannelBackend("default");
  ASSERT_TRUE(default_backend.ok());
  EXPECT_EQ(default_backend.value()(perfect, 2, 0)->AsFaulty(), nullptr);
  EXPECT_NE(default_backend.value()(lossy, 2, 0)->AsFaulty(), nullptr);

  auto loopback_backend = FindChannelBackend("loopback");
  ASSERT_TRUE(loopback_backend.ok());
  EXPECT_EQ(loopback_backend.value()(lossy, 2, 0)->AsFaulty(), nullptr);

  auto faulty_backend = FindChannelBackend("faulty");
  ASSERT_TRUE(faulty_backend.ok());
  auto faulty = faulty_backend.value()(lossy, 2, 7);
  ASSERT_NE(faulty->AsFaulty(), nullptr);
  // The registry applies the same per-salt seed mix as MakeChannel.
  EXPECT_EQ(faulty->AsFaulty()->profile().seed, MixChannelSeed(lossy.seed, 7));

  const std::vector<std::string> names = ChannelBackendNames();
  EXPECT_GE(names.size(), 3u);
}

}  // namespace
}  // namespace dswm::net
