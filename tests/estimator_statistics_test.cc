// Statistical properties of the sampling estimators: averaged over many
// independent runs, B^T B must be close to A_w^T A_w entry-wise
// (unbiasedness of the priority / ES rescaling), and error must shrink as
// the sample size l grows.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/sampling_tracker.h"
#include "window/exact_window.h"

namespace dswm {
namespace {

constexpr int kDim = 3;
constexpr Timestamp kWindow = 10000;  // nothing expires: clean estimator test
constexpr int kRows = 400;

std::vector<TimedRow> FixedStream() {
  Rng rng(424242);
  std::vector<TimedRow> rows(kRows);
  for (int i = 0; i < kRows; ++i) {
    rows[i].timestamp = i + 1;
    rows[i].values.resize(kDim);
    // Heavy-tailed norms: the regime where weighted sampling matters.
    const double scale = std::exp(1.5 * rng.NextGaussian());
    for (int j = 0; j < kDim; ++j) {
      rows[i].values[j] = scale * rng.NextGaussian();
    }
  }
  return rows;
}

Matrix MeanSketchCovariance(SamplingScheme scheme, int ell, int trials) {
  const std::vector<TimedRow> rows = FixedStream();
  Matrix mean(kDim, kDim);
  for (int trial = 0; trial < trials; ++trial) {
    TrackerConfig config;
    config.dim = kDim;
    config.num_sites = 2;
    config.window = kWindow;
    config.epsilon = 0.3;
    config.ell_override = ell;
    config.seed = 1000 + trial;
    SamplingTracker tracker(config, scheme, /*use_all_samples=*/false);
    Rng site_rng(trial);
    for (const TimedRow& row : rows) {
      EXPECT_TRUE(tracker.Observe(static_cast<int>(site_rng.NextBelow(2)), row).ok());
    }
    mean.AddScaled(GramTranspose(tracker.Query().Rows()),
                   1.0 / trials);
  }
  return mean;
}

class EstimatorUnbiasedness
    : public ::testing::TestWithParam<SamplingScheme> {};

TEST_P(EstimatorUnbiasedness, MeanSketchCovarianceMatchesExact) {
  const SamplingScheme scheme = GetParam();
  const std::vector<TimedRow> rows = FixedStream();
  ExactWindow exact(kDim, kWindow);
  for (const TimedRow& row : rows) exact.Add(row);

  const Matrix mean = MeanSketchCovariance(scheme, /*ell=*/40, /*trials=*/60);
  // Entry-wise agreement within Monte-Carlo noise (~F^2/sqrt(l*trials)).
  // Priority sampling's max(w, tau) estimator is unbiased; the ES
  // rescaling is only approximately so under heavy norm skew -- the very
  // effect behind the paper's "ESWOR degrades on skewed datasets"
  // observation (Section IV-B (4)) -- so it gets a wider band.
  const double tol =
      (scheme == SamplingScheme::kPriority ? 0.15 : 0.5) *
      exact.FrobeniusSquared();
  EXPECT_LT(MaxAbsDiff(mean, exact.Covariance()), tol);
  // Total mass preserved in expectation (trace unbiasedness, tighter).
  double trace_mean = 0.0;
  for (int j = 0; j < kDim; ++j) trace_mean += mean(j, j);
  EXPECT_NEAR(trace_mean, exact.FrobeniusSquared(),
              0.12 * exact.FrobeniusSquared());
}

INSTANTIATE_TEST_SUITE_P(Schemes, EstimatorUnbiasedness,
                         ::testing::Values(
                             SamplingScheme::kPriority,
                             SamplingScheme::kEfraimidisSpirakis));

TEST(EstimatorConvergence, ErrorShrinksWithSampleSize) {
  const std::vector<TimedRow> rows = FixedStream();
  ExactWindow exact(kDim, kWindow);
  for (const TimedRow& row : rows) exact.Add(row);
  const Matrix truth = exact.Covariance();

  auto mean_abs_err = [&](int ell) {
    double total = 0.0;
    const int trials = 12;
    for (int trial = 0; trial < trials; ++trial) {
      TrackerConfig config;
      config.dim = kDim;
      config.num_sites = 2;
      config.window = kWindow;
      config.epsilon = 0.3;
      config.ell_override = ell;
      config.seed = 7000 + trial;
      SamplingTracker tracker(config, SamplingScheme::kPriority, false);
      Rng site_rng(trial);
      for (const TimedRow& row : rows) {
        EXPECT_TRUE(tracker.Observe(static_cast<int>(site_rng.NextBelow(2)), row).ok());
      }
      total += MaxAbsDiff(
          GramTranspose(tracker.Query().Rows()), truth);
    }
    return total / trials;
  };

  // 16x the samples should cut the deviation at least ~2.5x (theory: 4x).
  EXPECT_GT(mean_abs_err(8), 2.5 * mean_abs_err(128));
}

}  // namespace
}  // namespace dswm
