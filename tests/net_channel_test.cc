// Transport semantics: loopback synchrony, ledger-derived accounting, and
// the seeded fault injector (drop / duplicate / delay / ack-and-resend).

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "net/channel.h"

namespace dswm::net {
namespace {

/// Collects every delivery the handler sees.
struct Sink {
  std::vector<Delivery> received;
  void Attach(Channel* channel) {
    channel->SetHandler(
        [this](Delivery d) { received.push_back(std::move(d)); });
  }
};

TEST(NetProfile, ValidateRejectsOutOfRangeKnobs) {
  NetProfile p;
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_FALSE(p.faulty());

  p.drop = 1.0;
  EXPECT_FALSE(p.Validate().ok());
  p.drop = -0.1;
  EXPECT_FALSE(p.Validate().ok());
  p.drop = 0.5;
  EXPECT_TRUE(p.Validate().ok());
  EXPECT_TRUE(p.faulty());

  p.duplicate = 1.0;
  EXPECT_FALSE(p.Validate().ok());
  p.duplicate = 0.0;

  p.delay_min = 3;
  p.delay_max = 1;
  EXPECT_FALSE(p.Validate().ok());
  p.delay_min = -1;
  EXPECT_FALSE(p.Validate().ok());
  p.delay_min = 0;
  p.delay_max = 4;
  EXPECT_TRUE(p.Validate().ok());

  p.retry = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(NetChannel, MakeChannelSelectsTheImplementation) {
  NetProfile clean;
  auto loop = MakeChannel(clean, 2, /*salt=*/0);
  EXPECT_EQ(loop->AsFaulty(), nullptr);

  NetProfile lossy;
  lossy.drop = 0.25;
  auto faulty = MakeChannel(lossy, 2, /*salt=*/0);
  ASSERT_NE(faulty->AsFaulty(), nullptr);
  // The salt is mixed into the fault seed, not visible in the profile
  // knobs the caller set.
  EXPECT_NEAR(faulty->AsFaulty()->profile().drop, 0.25, 0.0);
}

TEST(NetChannel, LoopbackDeliversSynchronouslyInOrder) {
  LoopbackChannel channel(3);
  Sink sink;
  sink.Attach(&channel);
  channel.AdvanceTime(10);

  channel.Send(Direction::kUp, 1, WireMessage(SumDeltaMsg{2.5}));
  ASSERT_EQ(sink.received.size(), 1u);  // delivered inside Send
  channel.Send(Direction::kDown, 2, WireMessage(RetrieveRequestMsg{0.5}));
  channel.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{-1.0}));
  ASSERT_EQ(sink.received.size(), 3u);

  EXPECT_EQ(sink.received[0].dir, Direction::kUp);
  EXPECT_EQ(sink.received[0].site, 1);
  EXPECT_EQ(sink.received[0].sent_at, 10);
  EXPECT_NEAR(std::get<SumDeltaMsg>(sink.received[0].msg).delta, 2.5, 0.0);
  EXPECT_EQ(sink.received[1].dir, Direction::kDown);
  EXPECT_EQ(sink.received[1].site, 2);
  EXPECT_NEAR(std::get<SumDeltaMsg>(sink.received[2].msg).delta, -1.0, 0.0);

  const auto& entries = channel.ledger().entries();
  ASSERT_EQ(entries.size(), 3u);
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].sequence, i);
    EXPECT_EQ(entries[i].copies, 1);
    EXPECT_FALSE(entries[i].dropped);
    EXPECT_FALSE(entries[i].retransmit);
    EXPECT_FALSE(entries[i].duplicate);
  }
  EXPECT_EQ(channel.comm().words_up, 2);
  EXPECT_EQ(channel.comm().words_down, 1);
  EXPECT_EQ(channel.comm().messages, 3);
  EXPECT_EQ(channel.ledger().TotalPayloadBytes(),
            8 * channel.comm().TotalWords());
}

TEST(NetChannel, BroadcastChargesOneCopyPerSite) {
  LoopbackChannel channel(4);
  Sink sink;
  sink.Attach(&channel);
  channel.Send(Direction::kBroadcast, -1,
               WireMessage(ThresholdBroadcastMsg{0.75}));

  ASSERT_EQ(sink.received.size(), 1u);  // one logical delivery
  EXPECT_EQ(sink.received[0].site, -1);
  const auto& entry = channel.ledger().entries().at(0);
  EXPECT_EQ(entry.copies, 4);
  EXPECT_EQ(entry.payload_words, 1u);
  EXPECT_EQ(channel.comm().words_down, 4);  // m words, the paper's cost
  EXPECT_EQ(channel.comm().broadcasts, 1);
  EXPECT_EQ(channel.ledger().TotalPayloadBytes(), 32);
  EXPECT_EQ(channel.ledger().ByKind(MessageKind::kThresholdBroadcast).words,
            4);
}

TEST(NetChannel, CertainDropLosesDataButStillChargesWords) {
  NetProfile p;
  p.drop = 1.0;  // FaultyChannel applies the knob as-is (tests only;
                 // TrackerConfig::Validate forbids it for real runs)
  FaultyChannel channel(2, p);
  Sink sink;
  sink.Attach(&channel);
  channel.AdvanceTime(0);

  channel.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{1.0}));
  EXPECT_TRUE(sink.received.empty());
  ASSERT_EQ(channel.ledger().entries().size(), 1u);
  EXPECT_TRUE(channel.ledger().entries()[0].dropped);
  // The bytes crossed the wire before the loss: still one word up.
  EXPECT_EQ(channel.comm().words_up, 1);
  EXPECT_EQ(channel.in_flight(), 0);  // unreliable: nobody resends
  channel.AdvanceTime(100);
  EXPECT_TRUE(sink.received.empty());
}

TEST(NetChannel, ControlPlaneIsImmuneToFaults) {
  NetProfile p;
  p.drop = 1.0;
  p.delay_min = 5;
  p.delay_max = 5;
  FaultyChannel channel(2, p);
  Sink sink;
  sink.Attach(&channel);
  channel.AdvanceTime(0);

  channel.Send(Direction::kBroadcast, -1,
               WireMessage(ThresholdBroadcastMsg{1.0}));
  channel.Send(Direction::kDown, 0, WireMessage(RetrieveRequestMsg{1.0}));
  channel.Send(Direction::kUp, 0, WireMessage(RetrieveResponseMsg{2.0}));
  // All three are control plane: delivered instantly despite drop=1.
  EXPECT_EQ(sink.received.size(), 3u);
  for (const LedgerEntry& e : channel.ledger().entries()) {
    EXPECT_FALSE(e.dropped);
  }
  // A data-plane frame under the same profile is lost.
  channel.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{1.0}));
  EXPECT_EQ(sink.received.size(), 3u);
}

TEST(NetChannel, ReliableShimRetransmitsUntilDelivered) {
  NetProfile p;
  p.drop = 1.0;
  p.reliable = true;
  p.retry = 2;
  FaultyChannel channel(2, p);
  Sink sink;
  sink.Attach(&channel);
  channel.AdvanceTime(0);

  channel.Send(Direction::kUp, 1, WireMessage(SumDeltaMsg{3.0}));
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(channel.in_flight(), 1);  // queued for resend at t=2

  channel.AdvanceTime(1);
  EXPECT_TRUE(sink.received.empty());  // not due yet

  // Network heals; the pending retransmission succeeds at its due time.
  channel.profile().drop = 0.0;
  channel.AdvanceTime(2);
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_NEAR(std::get<SumDeltaMsg>(sink.received[0].msg).delta, 3.0, 0.0);
  EXPECT_EQ(channel.in_flight(), 0);

  // Ledger: original dropped attempt, successful retransmit, and its ack.
  const auto& entries = channel.ledger().entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_TRUE(entries[0].dropped);
  EXPECT_FALSE(entries[0].retransmit);
  EXPECT_FALSE(entries[1].dropped);
  EXPECT_TRUE(entries[1].retransmit);
  EXPECT_EQ(entries[2].kind, MessageKind::kAck);
  EXPECT_EQ(entries[2].dir, Direction::kDown);  // ack opposes the send
  // Both transmission attempts and the ack are charged.
  EXPECT_EQ(channel.comm().words_up, 2);
  EXPECT_EQ(channel.comm().words_down, 1);
}

TEST(NetChannel, AcksOnlyExistInReliableMode) {
  NetProfile p;
  p.duplicate = 0.0;
  p.delay_max = 0;
  p.drop = 0.0;
  p.reliable = true;
  // reliable + all-zero faults is not "faulty()", so build directly.
  FaultyChannel reliable(2, p);
  Sink sink;
  sink.Attach(&reliable);
  reliable.AdvanceTime(0);
  reliable.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{1.0}));
  EXPECT_EQ(reliable.ledger().ByKind(MessageKind::kAck).count, 1);
  EXPECT_EQ(reliable.comm().words_down, 1);  // the ack word

  p.reliable = false;
  FaultyChannel unreliable(2, p);
  sink.Attach(&unreliable);
  unreliable.AdvanceTime(0);
  unreliable.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{1.0}));
  EXPECT_EQ(unreliable.ledger().ByKind(MessageKind::kAck).count, 0);
  EXPECT_EQ(unreliable.comm().words_down, 0);
}

TEST(NetChannel, DuplicateDeliversAndChargesTwice) {
  NetProfile p;
  p.duplicate = 1.0;
  FaultyChannel channel(2, p);
  Sink sink;
  sink.Attach(&channel);
  channel.AdvanceTime(0);

  channel.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{4.0}));
  ASSERT_EQ(sink.received.size(), 2u);
  const auto& entries = channel.ledger().entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_FALSE(entries[0].duplicate);
  EXPECT_TRUE(entries[1].duplicate);
  EXPECT_EQ(channel.comm().words_up, 2);
}

TEST(NetChannel, DelayedFramesFlushAtTheirDueTick) {
  NetProfile p;
  p.delay_min = 3;
  p.delay_max = 3;
  FaultyChannel channel(2, p);
  Sink sink;
  sink.Attach(&channel);
  channel.AdvanceTime(10);

  channel.Send(Direction::kUp, 0, WireMessage(SumDeltaMsg{5.0}));
  EXPECT_TRUE(sink.received.empty());
  EXPECT_EQ(channel.in_flight(), 1);
  channel.AdvanceTime(12);
  EXPECT_TRUE(sink.received.empty());
  channel.AdvanceTime(13);
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0].sent_at, 10);  // send-time stamp preserved
  EXPECT_EQ(channel.in_flight(), 0);
}

TEST(NetChannel, SameSeedSameFaultsSameLedger) {
  const auto run = [](uint64_t seed) {
    NetProfile p;
    p.drop = 0.4;
    p.duplicate = 0.3;
    p.delay_min = 1;
    p.delay_max = 3;
    p.seed = seed;
    p.reliable = true;
    FaultyChannel channel(3, p);
    Sink sink;
    sink.Attach(&channel);
    for (int t = 0; t < 60; ++t) {
      channel.AdvanceTime(t);
      channel.Send(Direction::kUp, t % 3,
                   WireMessage(SumDeltaMsg{static_cast<double>(t)}));
    }
    // Drain: a retransmit can be re-dropped and re-queued at now+retry,
    // so keep ticking until the queue is empty.
    for (Timestamp t = 60; channel.in_flight() > 0 && t < 5000; ++t) {
      channel.AdvanceTime(t);
    }
    EXPECT_EQ(channel.in_flight(), 0);
    return std::make_pair(channel.ledger().entries(), sink.received.size());
  };

  const auto [entries_a, delivered_a] = run(99);
  const auto [entries_b, delivered_b] = run(99);
  ASSERT_EQ(entries_a.size(), entries_b.size());
  EXPECT_EQ(delivered_a, delivered_b);
  for (size_t i = 0; i < entries_a.size(); ++i) {
    EXPECT_EQ(entries_a[i].sequence, entries_b[i].sequence);
    EXPECT_EQ(entries_a[i].kind, entries_b[i].kind);
    EXPECT_EQ(entries_a[i].time, entries_b[i].time);
    EXPECT_EQ(entries_a[i].dropped, entries_b[i].dropped);
    EXPECT_EQ(entries_a[i].retransmit, entries_b[i].retransmit);
    EXPECT_EQ(entries_a[i].duplicate, entries_b[i].duplicate);
  }

  // A different seed produces a different fault pattern (overwhelmingly
  // likely over 60 sends at these rates).
  const auto [entries_c, delivered_c] = run(100);
  bool any_difference = entries_c.size() != entries_a.size();
  for (size_t i = 0; !any_difference && i < entries_a.size(); ++i) {
    any_difference = entries_a[i].dropped != entries_c[i].dropped ||
                     entries_a[i].duplicate != entries_c[i].duplicate ||
                     entries_a[i].kind != entries_c[i].kind;
  }
  EXPECT_TRUE(any_difference);
}

TEST(NetChannel, CommCountersAreExactlyTheLedgerDerivation) {
  NetProfile p;
  p.drop = 0.3;
  p.duplicate = 0.2;
  p.seed = 7;
  p.reliable = true;
  FaultyChannel channel(2, p);
  channel.AdvanceTime(0);
  for (int t = 0; t < 40; ++t) {
    channel.AdvanceTime(t);
    channel.Send(Direction::kUp, t % 2, WireMessage(SumDeltaMsg{1.0}));
    if (t % 10 == 0) {
      channel.Send(Direction::kBroadcast, -1,
                   WireMessage(ThresholdBroadcastMsg{0.5}));
    }
  }
  channel.AdvanceTime(1000);

  long up = 0;
  long down = 0;
  long messages = 0;
  long broadcasts = 0;
  for (const LedgerEntry& e : channel.ledger().entries()) {
    const long words = static_cast<long>(e.payload_words) * e.copies;
    switch (e.dir) {
      case Direction::kUp: up += words; break;
      case Direction::kDown: down += words; break;
      case Direction::kBroadcast:
        down += words;
        ++broadcasts;
        break;
    }
    ++messages;
  }
  EXPECT_EQ(channel.comm().words_up, up);
  EXPECT_EQ(channel.comm().words_down, down);
  EXPECT_EQ(channel.comm().messages, messages);
  EXPECT_EQ(channel.comm().broadcasts, broadcasts);
  EXPECT_EQ(channel.ledger().TotalPayloadBytes(), 8 * (up + down));
}

}  // namespace
}  // namespace dswm::net
