#include "core/sampling_tracker.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sketch/covariance.h"
#include "window/exact_window.h"

namespace dswm {
namespace {

TimedRow RandomRow(Rng* rng, int d, Timestamp t, double scale = 1.0) {
  TimedRow row;
  row.timestamp = t;
  row.values.resize(d);
  for (int j = 0; j < d; ++j) row.values[j] = scale * rng->NextGaussian();
  return row;
}

TrackerConfig SmallConfig(int d = 4, int sites = 3, Timestamp window = 300,
                          double eps = 0.2) {
  TrackerConfig config;
  config.dim = d;
  config.num_sites = sites;
  config.window = window;
  config.epsilon = eps;
  config.ell_override = 24;
  config.seed = 5;
  return config;
}

// Feeds a stream and asserts the structural protocol invariants at every
// step: the sample set S holds between l and 4l entries when enough rows
// are active, every S key is >= tau, and no outstanding key reaches tau
// -- together these imply S contains the global top-l priorities.
void CheckInvariantsOverStream(SamplingScheme scheme,
                               SamplingProtocol protocol) {
  TrackerConfig config = SmallConfig();
  config.protocol = protocol;
  SamplingTracker tracker(config, scheme, /*use_all_samples=*/false);
  Rng rng(17);

  int active_estimate = 0;
  for (int i = 1; i <= 2500; ++i) {
    const Timestamp t = i;
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(config.num_sites)),
                    RandomRow(&rng, config.dim, t)).ok());
    active_estimate = std::min(i, static_cast<int>(config.window));

    if (active_estimate >= 4 * tracker.ell()) {
      EXPECT_GE(tracker.sample_set_size(), tracker.ell());
      if (protocol == SamplingProtocol::kLazyBroadcast) {
        EXPECT_LT(tracker.sample_set_size(), 4 * tracker.ell());
      } else {
        EXPECT_EQ(tracker.sample_set_size(), tracker.ell());
      }
    }
    // Top-l correctness: every key outside S is below every key inside S.
    const double outstanding = tracker.MaxOutstandingKey();
    EXPECT_LE(outstanding, tracker.threshold());
    for (const CoordEntry* e : tracker.CurrentSamples()) {
      EXPECT_GE(e->key, tracker.threshold());
    }
  }
}

TEST(SamplingTracker, LazyInvariantsPriority) {
  CheckInvariantsOverStream(SamplingScheme::kPriority,
                            SamplingProtocol::kLazyBroadcast);
}

TEST(SamplingTracker, LazyInvariantsEs) {
  CheckInvariantsOverStream(SamplingScheme::kEfraimidisSpirakis,
                            SamplingProtocol::kLazyBroadcast);
}

TEST(SamplingTracker, SimpleInvariantsPriority) {
  CheckInvariantsOverStream(SamplingScheme::kPriority,
                            SamplingProtocol::kSimple);
}

TEST(SamplingTracker, SimpleInvariantsEs) {
  CheckInvariantsOverStream(SamplingScheme::kEfraimidisSpirakis,
                            SamplingProtocol::kSimple);
}

TEST(SamplingTracker, FewActiveRowsAllAtCoordinator) {
  // With fewer than l active rows the coordinator must hold all of them.
  TrackerConfig config = SmallConfig();
  config.ell_override = 50;
  SamplingTracker tracker(config, SamplingScheme::kPriority, false);
  Rng rng(3);
  for (int i = 1; i <= 30; ++i) {
    EXPECT_TRUE(tracker.Observe(0, RandomRow(&rng, config.dim, i)).ok());
  }
  EXPECT_EQ(tracker.sample_set_size(), 30);
  const Matrix sketch = tracker.Query().Rows();
  EXPECT_EQ(sketch.rows(), 30);
}

TEST(SamplingTracker, ExpiryDrainsSamples) {
  TrackerConfig config = SmallConfig(4, 2, /*window=*/50);
  SamplingTracker tracker(config, SamplingScheme::kPriority, false);
  Rng rng(4);
  for (int i = 1; i <= 200; ++i) {
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)),
                    RandomRow(&rng, 4, i)).ok());
  }
  EXPECT_GT(tracker.sample_set_size(), 0);
  tracker.AdvanceTime(1000);  // everything expires
  EXPECT_EQ(tracker.sample_set_size(), 0);
  EXPECT_EQ(tracker.candidate_set_size(), 0);
  EXPECT_EQ(tracker.Query().Rows().rows(), 0);
}

TEST(SamplingTracker, LazyBroadcastsFarFewerThanSimple) {
  auto run = [](SamplingProtocol protocol) {
    TrackerConfig config = SmallConfig(4, 4, 400, 0.2);
    config.protocol = protocol;
    SamplingTracker tracker(config, SamplingScheme::kPriority, false);
    Rng rng(6);
    for (int i = 1; i <= 4000; ++i) {
      EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(4)),
                      RandomRow(&rng, 4, i)).ok());
    }
    return tracker.Comm().broadcasts;
  };
  const long lazy = run(SamplingProtocol::kLazyBroadcast);
  const long simple = run(SamplingProtocol::kSimple);
  EXPECT_LT(lazy * 5, simple);  // the whole point of Algorithm 2
}

struct EstimatorCase {
  SamplingScheme scheme;
  bool use_all;
};

class SamplingEstimator : public ::testing::TestWithParam<EstimatorCase> {};

TEST_P(SamplingEstimator, CovarianceErrorSmallOnSteadyStream) {
  const auto [scheme, use_all] = GetParam();
  TrackerConfig config = SmallConfig(6, 3, 500, 0.3);
  config.ell_override = 150;
  SamplingTracker tracker(config, scheme, use_all);
  ExactWindow exact(6, 500);
  Rng rng(31);

  double err_at_end = 1.0;
  for (int i = 1; i <= 3000; ++i) {
    TimedRow row = RandomRow(&rng, 6, i);
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(3)), row).ok());
    exact.Add(row);
    exact.Advance(i);
    if (i == 3000) {
      const CovarianceEstimate approx = tracker.Query();
      err_at_end = CovarianceErrorOfSketch(
          exact.Covariance(), approx.Rows(), exact.FrobeniusSquared());
    }
  }
  // l=150 gives roughly 1/sqrt(l) ~ 0.08 error; allow generous slack.
  EXPECT_LT(err_at_end, 0.3);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SamplingEstimator,
    ::testing::Values(EstimatorCase{SamplingScheme::kPriority, false},
                      EstimatorCase{SamplingScheme::kPriority, true},
                      EstimatorCase{SamplingScheme::kEfraimidisSpirakis, false},
                      EstimatorCase{SamplingScheme::kEfraimidisSpirakis,
                                    true}));

TEST(SamplingTracker, SkewedStreamHeavyRowAlwaysSampled) {
  // The motivating example from Section I: one row with enormous norm must
  // be in any weighted sample (uniform sampling would miss it).
  TrackerConfig config = SmallConfig(2, 2, 1000, 0.3);
  config.ell_override = 16;
  SamplingTracker tracker(config, SamplingScheme::kPriority, false);
  Rng rng(8);
  for (int i = 1; i <= 500; ++i) {
    TimedRow row;
    row.timestamp = i;
    row.values = (i == 250) ? std::vector<double>{500.0, 0.0}
                            : std::vector<double>{0.0, 1.0};
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)), row).ok());
  }
  bool found_heavy = false;
  for (const CoordEntry* e : tracker.CurrentSamples()) {
    if (e->row.values[0] == 500.0) found_heavy = true;
  }
  EXPECT_TRUE(found_heavy);
  // And the estimator must reproduce its mass within a small factor.
  const Matrix sketch = tracker.Query().Rows();
  const Matrix cov = GramTranspose(sketch);
  EXPECT_GT(cov(0, 0), 0.5 * 250000.0);
}

TEST(SamplingTracker, ZeroNormRowsIgnored) {
  TrackerConfig config = SmallConfig();
  SamplingTracker tracker(config, SamplingScheme::kPriority, false);
  TimedRow zero;
  zero.timestamp = 1;
  zero.values = {0.0, 0.0, 0.0, 0.0};
  EXPECT_TRUE(tracker.Observe(0, zero).ok());
  EXPECT_EQ(tracker.sample_set_size(), 0);
  EXPECT_EQ(tracker.Comm().TotalWords(), 0);
}

TEST(SamplingTracker, EsChargesFnormTrackingCommunication) {
  TrackerConfig config = SmallConfig();
  SamplingTracker pwor(config, SamplingScheme::kPriority, false);
  SamplingTracker eswor(config, SamplingScheme::kEfraimidisSpirakis, false);
  Rng rng1(9);
  Rng rng2(9);
  for (int i = 1; i <= 1500; ++i) {
    EXPECT_TRUE(pwor.Observe(static_cast<int>(rng1.NextBelow(3)), RandomRow(&rng1, 4, i)).ok());
    EXPECT_TRUE(eswor.Observe(static_cast<int>(rng2.NextBelow(3)), RandomRow(&rng2, 4, i)).ok());
  }
  // Same key distribution family, but ESWOR additionally tracks F^2.
  EXPECT_GT(eswor.Comm().messages, pwor.Comm().messages);
}

TEST(SamplingTracker, BurstyArrivalsKeepInvariant) {
  // Long silence (mass expiry) followed by bursts: the refill path
  // (threshold halving) must restore |S| >= l.
  TrackerConfig config = SmallConfig(3, 2, 100, 0.2);
  config.ell_override = 10;
  SamplingTracker tracker(config, SamplingScheme::kPriority, false);
  Rng rng(12);
  Timestamp t = 1;
  for (int burst = 0; burst < 20; ++burst) {
    for (int i = 0; i < 80; ++i) {
      EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)),
                      RandomRow(&rng, 3, t)).ok());
      if (i % 4 == 0) ++t;
    }
    t += 90;  // almost the whole window of silence
    tracker.AdvanceTime(t);
    EXPECT_GE(tracker.sample_set_size(), 1);
    EXPECT_LE(tracker.MaxOutstandingKey(), tracker.threshold());
  }
}

}  // namespace
}  // namespace dswm
