#include "core/iwmt.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/spectral_norm.h"

namespace dswm {
namespace {

struct IwmtCase {
  int d;
  int ell;
  double theta_scale;  // theta as a fraction of final stream mass
};

class IwmtProperty : public ::testing::TestWithParam<IwmtCase> {};

TEST_P(IwmtProperty, PrefixCovarianceGapStaysBounded) {
  const auto [d, ell, theta_scale] = GetParam();
  IwmtProtocol iwmt(d, ell);
  Rng rng(101 + d);

  Matrix input_cov(d, d);
  Matrix output_cov(d, d);
  double input_mass = 0.0;
  std::vector<double> row(d);
  std::vector<IwmtOutput> outs;

  double worst_ratio = 0.0;
  for (int i = 0; i < 1500; ++i) {
    for (int j = 0; j < d; ++j) row[j] = rng.NextGaussian();
    input_cov.AddOuterProduct(row.data(), 1.0);
    input_mass += NormSquared(row.data(), d);
    const double theta = std::max(theta_scale * input_mass, 1e-12);

    outs.clear();
    iwmt.Input(row.data(), theta, &outs);
    for (const IwmtOutput& o : outs) {
      output_cov.AddOuterProduct(o.direction.data(), 1.0);
      // Every emitted direction carries >= theta/2 squared mass (the
      // communication bound's linchpin).
      EXPECT_GE(NormSquared(o.direction.data(), d), theta / 2.0 - 1e-9);
    }

    if (i > 50 && i % 31 == 0) {
      const double gap =
          SpectralNormSym(Subtract(input_cov, output_cov));
      // Contract: gap <= theta + FD shrinkage (<= mass/(ell+1)).
      const double budget = theta + input_mass / (ell + 1) + 1e-9;
      worst_ratio = std::max(worst_ratio, gap / budget);
    }
  }
  EXPECT_LE(worst_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IwmtProperty,
                         ::testing::Values(IwmtCase{8, 4, 0.05},
                                           IwmtCase{8, 10, 0.02},
                                           IwmtCase{16, 8, 0.1},
                                           IwmtCase{4, 2, 0.2},
                                           IwmtCase{24, 12, 0.05}));

TEST(Iwmt, FlushEmitsEverythingAndResets) {
  const int d = 6;
  IwmtProtocol iwmt(d, 3);
  Rng rng(5);
  Matrix input_cov(d, d);
  std::vector<double> row(d);
  std::vector<IwmtOutput> outs;
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < d; ++j) row[j] = rng.NextGaussian();
    input_cov.AddOuterProduct(row.data(), 1.0);
    iwmt.Input(row.data(), 1e9, &outs);  // huge theta: nothing emits
  }
  EXPECT_TRUE(outs.empty());
  EXPECT_GT(iwmt.unreported_mass(), 0.0);

  iwmt.Flush(&outs);
  EXPECT_FALSE(outs.empty());
  EXPECT_DOUBLE_EQ(iwmt.unreported_mass(), 0.0);

  Matrix output_cov(d, d);
  for (const IwmtOutput& o : outs) {
    output_cov.AddOuterProduct(o.direction.data(), 1.0);
  }
  // After a flush, the only gap left is FD shrinkage.
  const double gap = SpectralNormSym(Subtract(input_cov, output_cov));
  EXPECT_LE(gap, input_cov.FrobeniusNormSquared());
  EXPECT_LE(gap, 40.0 * d / 4.0);  // mass/(ell+1) ballpark
}

TEST(Iwmt, CommunicationSublinearInStreamLength) {
  const int d = 8;
  IwmtProtocol iwmt(d, 4);
  Rng rng(6);
  std::vector<double> row(d);
  std::vector<IwmtOutput> outs;
  double mass = 0.0;
  for (int i = 0; i < 5000; ++i) {
    for (int j = 0; j < d; ++j) row[j] = rng.NextGaussian();
    mass += NormSquared(row.data(), d);
    iwmt.Input(row.data(), std::max(0.05 * mass, 1e-12), &outs);
  }
  // #directions <= 2*mass/theta_final-ish; far below 5000 rows.
  EXPECT_LT(outs.size(), 500u);
  EXPECT_GT(outs.size(), 2u);
}

TEST(Iwmt, SingleHeavyRowEmitsImmediately) {
  const int d = 4;
  IwmtProtocol iwmt(d, 2);
  std::vector<IwmtOutput> outs;
  const double heavy[] = {100.0, 0.0, 0.0, 0.0};
  iwmt.Input(heavy, /*theta=*/50.0, &outs);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_NEAR(NormSquared(outs[0].direction.data(), d), 10000.0, 1e-6);
}

}  // namespace
}  // namespace dswm
