// Error-path coverage for the FlagSet command-line parser: malformed
// flags, duplicates, unknown names, and the CHECK contract on numeric
// getters.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/flags.h"

namespace dswm {
namespace {

const std::vector<std::string> kKnown = {"eps", "window", "name"};

StatusOr<FlagSet> ParseArgs(const std::vector<const char*>& argv) {
  return FlagSet::Parse(static_cast<int>(argv.size()), argv.data(), kKnown);
}

TEST(FlagsError, UnknownFlagFailsLoudly) {
  const auto result = ParseArgs({"prog", "--epsilon=0.1"});
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("unknown flag --epsilon"),
            std::string::npos);
}

TEST(FlagsError, TrailingValuelessFlagFails) {
  const auto result = ParseArgs({"prog", "--eps"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("needs a value"),
            std::string::npos);
}

TEST(FlagsError, EmptyFlagNameFails) {
  const auto result = ParseArgs({"prog", "--=0.1"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("empty flag name"),
            std::string::npos);
}

TEST(FlagsError, DuplicateFlagFails) {
  const auto result = ParseArgs({"prog", "--eps=0.1", "--eps=0.2"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate flag --eps"),
            std::string::npos);
}

TEST(FlagsError, DuplicateAcrossBothFormsFails) {
  const auto result = ParseArgs({"prog", "--eps", "0.1", "--eps=0.2"});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("duplicate flag --eps"),
            std::string::npos);
}

TEST(FlagsError, SeparateValueFormParses) {
  const auto result = ParseArgs({"prog", "--eps", "0.25", "pos1"});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().GetDouble("eps", 0.0), 0.25, 1e-15);
  ASSERT_EQ(result.value().positional().size(), 1u);
  EXPECT_EQ(result.value().positional()[0], "pos1");
}

TEST(FlagsError, EmptyValueIsAllowed) {
  const auto result = ParseArgs({"prog", "--name="});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().Has("name"));
  EXPECT_EQ(result.value().GetString("name", "default"), "");
}

TEST(FlagsError, GetIntChecksOnNonNumericValue) {
  const auto result = ParseArgs({"prog", "--window=abc"});
  ASSERT_TRUE(result.ok());
  EXPECT_DEATH(
      { (void)result.value().GetInt("window", 0); },
      "CHECK failed");
}

TEST(FlagsError, GetDoubleChecksOnTrailingGarbage) {
  const auto result = ParseArgs({"prog", "--eps=0.5x"});
  ASSERT_TRUE(result.ok());
  EXPECT_DEATH(
      { (void)result.value().GetDouble("eps", 0.0); },
      "CHECK failed");
}

}  // namespace
}  // namespace dswm
