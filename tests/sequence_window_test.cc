// Sequence-based (count-based) sliding windows, the alternative model the
// paper discusses in Section I-A: in the *centralized* setting it is the
// special case of the time-based model where every row's timestamp is its
// sequence number -- these tests pin that usage down for the substrates
// (gEH, mEH, trackers with m = 1).

#include <cmath>
#include <deque>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tracker_factory.h"
#include "linalg/spectral_norm.h"
#include "window/exact_window.h"
#include "window/exponential_histogram.h"
#include "window/matrix_eh.h"

namespace dswm {
namespace {

TEST(SequenceWindow, GehTracksLastNItems) {
  const int n_window = 200;  // last 200 items
  ExponentialHistogram eh(0.1, n_window);
  std::deque<double> exact;
  Rng rng(3);
  double worst = 0.0;
  for (int i = 1; i <= 3000; ++i) {
    const double w = std::exp(rng.NextGaussian());
    eh.Insert(w, /*t=*/i);  // timestamp := sequence number
    exact.push_back(w);
    if (static_cast<int>(exact.size()) > n_window) exact.pop_front();
    if (i > n_window && i % 13 == 0) {
      double truth = 0.0;
      for (double v : exact) truth += v;
      worst = std::max(worst, std::fabs(eh.Query(i) - truth) / truth);
    }
  }
  EXPECT_LE(worst, 0.1);
}

TEST(SequenceWindow, MehTracksLastNRows) {
  const int d = 6;
  const int n_window = 300;
  MatrixExpHistogram meh(d, 0.25, n_window);
  ExactWindow exact(d, n_window);
  Rng rng(4);
  double worst = 0.0;
  for (int i = 1; i <= 2000; ++i) {
    TimedRow row;
    row.timestamp = i;  // sequence number as timestamp
    row.values.resize(d);
    for (int j = 0; j < d; ++j) row.values[j] = rng.NextGaussian();
    meh.Insert(row.values.data(), i);
    exact.Add(row);
    exact.Advance(i);
    if (i > n_window && i % 41 == 0) {
      // Exactly the last n_window rows are active.
      ASSERT_EQ(exact.size(), n_window);
      const double err =
          SpectralNormSym(Subtract(exact.Covariance(),
                                   meh.QueryCovariance())) /
          exact.FrobeniusSquared();
      worst = std::max(worst, err);
    }
  }
  EXPECT_LE(worst, 0.25);
}

TEST(SequenceWindow, SingleSiteTrackerOverLastNRows) {
  // Centralized (m = 1) sequence-based tracking via DA2.
  const int d = 5;
  const int n_window = 250;
  TrackerConfig config;
  config.dim = d;
  config.num_sites = 1;
  config.window = n_window;
  config.epsilon = 0.3;
  auto tracker = MakeTracker(Algorithm::kDa2, config);
  ASSERT_TRUE(tracker.ok());

  ExactWindow exact(d, n_window);
  Rng rng(5);
  double worst = 0.0;
  for (int i = 1; i <= 1500; ++i) {
    TimedRow row;
    row.timestamp = i;
    row.values.resize(d);
    for (int j = 0; j < d; ++j) row.values[j] = rng.NextGaussian();
    EXPECT_TRUE(tracker.value()->Observe(0, row).ok());
    exact.Add(row);
    exact.Advance(i);
    if (i > n_window && i % 97 == 0) {
      const CovarianceEstimate approx = tracker.value()->Query();
      const double err =
          SpectralNormSym(Subtract(exact.Covariance(), approx.Covariance())) /
          exact.FrobeniusSquared();
      worst = std::max(worst, err);
    }
  }
  EXPECT_LE(worst, 0.3);
}

}  // namespace
}  // namespace dswm
