// The runtime equivalence harness: the event-driven and multi-process
// runtimes must reproduce the lockstep oracle.
//
// For every factory algorithm, the same dataset is replayed under
// lockstep (LoopbackChannel, plain loop), events (EventChannel, event
// queue), and process (ProcessChannel, forked per-site workers). The
// deterministic contract demands bit-identical results: every RunResult
// metric, the final Query() covariance byte for byte, and the per-kind
// ledger counts/words across all channels. Fault injection (drop +
// reliable) is additionally compared events-vs-lockstep -- the events
// backend reuses FaultyChannel, and deterministic mode schedules no
// wakeups, so even the fault dice line up draw for draw.

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/tracker_factory.h"
#include "linalg/matrix.h"
#include "monitor/driver.h"
#include "monitor/runtime.h"
#include "net/ledger.h"
#include "runtime/runtime.h"
#include "stream/synthetic.h"

namespace dswm {
namespace {

std::vector<Algorithm> AllAlgorithms() {
  return {Algorithm::kPwor,      Algorithm::kPworAll, Algorithm::kEswor,
          Algorithm::kEsworAll,  Algorithm::kDa1,     Algorithm::kDa2,
          Algorithm::kPwr,       Algorithm::kEswr,    Algorithm::kPwrShared,
          Algorithm::kEswrShared, Algorithm::kCentral};
}

std::vector<TimedRow> SmallStream(int rows) {
  SyntheticConfig config;
  config.rows = rows;
  config.dim = 8;
  config.seed = 3;
  SyntheticGenerator gen(config);
  return Materialize(&gen, config.rows);
}

struct RunOutput {
  RunResult result;
  Matrix covariance;
  // (kind, count, words, dropped) per kind, summed over all channels.
  std::map<int, std::tuple<long, long, long>> by_kind;
};

TrackerConfig BaseConfig(int dim, int sites, Timestamp window) {
  TrackerConfig config;
  config.dim = dim;
  config.num_sites = sites;
  config.window = window;
  config.epsilon = 0.15;
  config.seed = 11;
  return config;
}

StatusOr<RunOutput> RunUnder(Runtime* rt, Algorithm algorithm,
                             const std::vector<TimedRow>& rows,
                             TrackerConfig config) {
  config.channel_backend = rt->backend();
  auto tracker = MakeTracker(algorithm, config);
  DSWM_RETURN_NOT_OK(tracker.status());
  DriverOptions options;
  options.query_points = 6;
  options.seed = 123;
  RunOutput out;
  auto run = rt->Run(tracker.value().get(), rows, config.num_sites,
                     config.window, options);
  DSWM_RETURN_NOT_OK(run.status());
  out.result = std::move(run).value();
  out.covariance = tracker.value()->Query().Covariance();
  for (const net::Channel* channel : tracker.value()->Channels()) {
    for (int k = static_cast<int>(net::kMinMessageKind);
         k <= static_cast<int>(net::kMaxMessageKind); ++k) {
      const net::KindStats& s =
          channel->ledger().ByKind(static_cast<net::MessageKind>(k));
      auto& agg = out.by_kind[k];
      std::get<0>(agg) += s.count;
      std::get<1>(agg) += s.words;
      std::get<2>(agg) += s.dropped;
    }
  }
  return out;
}

void ExpectBitIdentical(const RunOutput& got, const RunOutput& want,
                        const char* label) {
  // Every reported metric, bitwise. Floating-point equality is the point:
  // the runtimes execute the identical arithmetic in the identical order.
  EXPECT_EQ(got.result.avg_err, want.result.avg_err) << label;
  EXPECT_EQ(got.result.max_err, want.result.max_err) << label;
  EXPECT_EQ(got.result.total_words, want.result.total_words) << label;
  EXPECT_EQ(got.result.messages, want.result.messages) << label;
  EXPECT_EQ(got.result.broadcasts, want.result.broadcasts) << label;
  EXPECT_EQ(got.result.rows_sent, want.result.rows_sent) << label;
  EXPECT_EQ(got.result.max_site_space_words, want.result.max_site_space_words)
      << label;
  EXPECT_EQ(got.result.wire_payload_bytes, want.result.wire_payload_bytes)
      << label;
  EXPECT_EQ(got.result.wire_frame_bytes, want.result.wire_frame_bytes)
      << label;
  EXPECT_EQ(got.result.wire_transmissions, want.result.wire_transmissions)
      << label;
  ASSERT_EQ(got.result.trace.size(), want.result.trace.size()) << label;
  for (size_t i = 0; i < got.result.trace.size(); ++i) {
    EXPECT_EQ(got.result.trace[i].timestamp, want.result.trace[i].timestamp)
        << label << " trace " << i;
    EXPECT_EQ(got.result.trace[i].err, want.result.trace[i].err)
        << label << " trace " << i;
    EXPECT_EQ(got.result.trace[i].words_so_far,
              want.result.trace[i].words_so_far)
        << label << " trace " << i;
  }

  // The final covariance estimate, byte for byte.
  ASSERT_EQ(got.covariance.rows(), want.covariance.rows()) << label;
  ASSERT_EQ(got.covariance.cols(), want.covariance.cols()) << label;
  EXPECT_EQ(std::memcmp(got.covariance.data(), want.covariance.data(),
                        sizeof(double) *
                            static_cast<size_t>(got.covariance.rows()) *
                            static_cast<size_t>(got.covariance.cols())),
            0)
      << label;

  // Ledger-derived per-kind accounting.
  EXPECT_EQ(got.by_kind, want.by_kind) << label;
}

TEST(RuntimeEquivalence, EventsMatchesLockstepForEveryAlgorithm) {
  const std::vector<TimedRow> rows = SmallStream(900);
  const Timestamp window =
      (rows.back().timestamp - rows.front().timestamp + 1) / 3;
  runtime::RuntimeOptions events_options;
  events_options.kind = runtime::RuntimeKind::kEvents;
  const auto events = runtime::MakeRuntime(events_options);
  LockstepRuntime lockstep;
  for (Algorithm a : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmName(a));
    const TrackerConfig config = BaseConfig(8, 5, window);
    auto want = RunUnder(&lockstep, a, rows, config);
    ASSERT_TRUE(want.ok()) << want.status().message();
    auto got = RunUnder(events.get(), a, rows, config);
    ASSERT_TRUE(got.ok()) << got.status().message();
    ExpectBitIdentical(got.value(), want.value(), AlgorithmName(a));
  }
}

TEST(RuntimeEquivalence, ProcessMatchesLockstepForEveryAlgorithm) {
  // Smaller stream: every frame round-trips through a forked worker.
  const std::vector<TimedRow> rows = SmallStream(400);
  const Timestamp window =
      (rows.back().timestamp - rows.front().timestamp + 1) / 3;
  runtime::RuntimeOptions process_options;
  process_options.kind = runtime::RuntimeKind::kProcess;
  const auto process = runtime::MakeRuntime(process_options);
  LockstepRuntime lockstep;
  for (Algorithm a : AllAlgorithms()) {
    SCOPED_TRACE(AlgorithmName(a));
    const TrackerConfig config = BaseConfig(8, 3, window);
    auto want = RunUnder(&lockstep, a, rows, config);
    ASSERT_TRUE(want.ok()) << want.status().message();
    auto got = RunUnder(process.get(), a, rows, config);
    ASSERT_TRUE(got.ok()) << got.status().message();
    ExpectBitIdentical(got.value(), want.value(), AlgorithmName(a));
  }
}

TEST(RuntimeEquivalence, EventsMatchesLockstepUnderDropAndReliableFaults) {
  // The events backend keeps FaultyChannel for faulty profiles and the
  // deterministic scheduler fires no wakeups, so even seeded fault dice
  // line up draw for draw.
  const std::vector<TimedRow> rows = SmallStream(700);
  const Timestamp window =
      (rows.back().timestamp - rows.front().timestamp + 1) / 3;
  runtime::RuntimeOptions events_options;
  events_options.kind = runtime::RuntimeKind::kEvents;
  const auto events = runtime::MakeRuntime(events_options);
  LockstepRuntime lockstep;
  // CENTRAL included: the centralized mEH splices reordered retransmits
  // into their time-ordered bucket position (dropping already-expired
  // ones), so all 11 algorithms now replay under fault profiles.
  for (Algorithm a : {Algorithm::kPwor, Algorithm::kDa2, Algorithm::kEswor,
                      Algorithm::kPwrShared, Algorithm::kCentral}) {
    SCOPED_TRACE(AlgorithmName(a));
    TrackerConfig config = BaseConfig(8, 4, window);
    config.net.drop = 0.15;
    config.net.seed = 21;
    config.net.reliable = true;
    config.net.retry = 2;
    auto want = RunUnder(&lockstep, a, rows, config);
    ASSERT_TRUE(want.ok()) << want.status().message();
    auto got = RunUnder(events.get(), a, rows, config);
    ASSERT_TRUE(got.ok()) << got.status().message();
    ExpectBitIdentical(got.value(), want.value(), AlgorithmName(a));
  }
}

TEST(RuntimeEquivalence, ProcessMatchesLockstepUnderDropAndReliableFaults) {
  // The process backend rolls the same coordinator-side dice as
  // FaultyChannel (same MixChannelSeed salting, same draw order), so a
  // drop+reliable profile is bit-identical too -- the documented
  // determinism contract for the socket backend.
  const std::vector<TimedRow> rows = SmallStream(400);
  const Timestamp window =
      (rows.back().timestamp - rows.front().timestamp + 1) / 3;
  runtime::RuntimeOptions process_options;
  process_options.kind = runtime::RuntimeKind::kProcess;
  const auto process = runtime::MakeRuntime(process_options);
  LockstepRuntime lockstep;
  for (Algorithm a : {Algorithm::kPwor, Algorithm::kDa2, Algorithm::kCentral}) {
    SCOPED_TRACE(AlgorithmName(a));
    TrackerConfig config = BaseConfig(8, 3, window);
    config.net.drop = 0.2;
    config.net.seed = 7;
    config.net.reliable = true;
    config.net.retry = 2;
    auto want = RunUnder(&lockstep, a, rows, config);
    ASSERT_TRUE(want.ok()) << want.status().message();
    auto got = RunUnder(process.get(), a, rows, config);
    ASSERT_TRUE(got.ok()) << got.status().message();
    ExpectBitIdentical(got.value(), want.value(), AlgorithmName(a));
  }
}

TEST(RuntimeEquivalence, ProcessRejectsUnsupportedFaultKnobs) {
  const std::vector<TimedRow> rows = SmallStream(60);
  runtime::RuntimeOptions process_options;
  process_options.kind = runtime::RuntimeKind::kProcess;
  const auto process = runtime::MakeRuntime(process_options);
  TrackerConfig config = BaseConfig(8, 2, 50);
  config.net.delay_max = 3;  // no synchronous-RPC analog
  config.net.seed = 5;
  auto got = RunUnder(process.get(), Algorithm::kPwor, rows, config);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument)
      << got.status().message();
}

TEST(RuntimeEquivalence, ParseAndNameRoundTrip) {
  for (runtime::RuntimeKind kind :
       {runtime::RuntimeKind::kLockstep, runtime::RuntimeKind::kEvents,
        runtime::RuntimeKind::kProcess}) {
    auto parsed = runtime::ParseRuntimeKind(runtime::RuntimeKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(runtime::ParseRuntimeKind("threads").ok());
}

}  // namespace
}  // namespace dswm
