#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"

namespace dswm {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoublesInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.NextOpenDouble();
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowUniformish) {
  Rng rng(9);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.NextBelow(10)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("epsilon must be > 0");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.ToString(), "InvalidArgument: epsilon must be > 0");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

Status FailingHelper() { return Status::IoError("disk"); }
Status Propagating() {
  DSWM_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(Status, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(Propagating().code(), StatusCode::kIoError);
}

// Stopwatch's own behavior test -- the one place outside src/common/ and
// src/obs/ that may touch the raw timer.
TEST(Stopwatch, MeasuresElapsedTime) {  // dswm-lint: allow(raw-timing-outside-obs)
  Stopwatch sw;  // dswm-lint: allow(raw-timing-outside-obs)
  volatile double x = 0.0;
  for (int i = 0; i < 100000; ++i) x = x + std::sqrt(i * 1.0);
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
}

}  // namespace
}  // namespace dswm
