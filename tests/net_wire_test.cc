// Wire-format tests: bit-exact round trips over adversarial payloads, and
// Status (never a crash) on every malformed input the parser can see.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "net/wire.h"

namespace dswm::net {
namespace {

uint64_t Bits(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

std::vector<uint8_t> Serialize(const WireMessage& msg) {
  std::vector<uint8_t> buf;
  SerializeMessage(msg, &buf);
  return buf;
}

WireMessage RoundTrip(const WireMessage& msg) {
  const std::vector<uint8_t> buf = Serialize(msg);
  StatusOr<WireMessage> parsed = ParseMessage(buf.data(), buf.size());
  EXPECT_TRUE(parsed.ok()) << parsed.status().message();
  return std::move(parsed).value();
}

// One representative instance of every message kind.
std::vector<WireMessage> OneOfEachKind() {
  RowUploadMsg row;
  row.values = {1.5, -2.25, 0.0};
  row.timestamp = 12345;
  row.support = {0, 2};
  row.has_key = true;
  row.key = 0.75;
  row.has_sampler = true;
  row.sampler = 42;
  return {row,
          RetrieveRequestMsg{3.5},
          RetrieveResponseMsg{-1.25},
          ThresholdBroadcastMsg{0.125},
          EigenpairMsg{2.0, {0.5, -0.5, 0.25, 0.0}},
          Da2DeltaMsg{{1.0, 2.0}, 77, -1},
          SumDeltaMsg{-4.5},
          ExpiryNoticeMsg{99},
          AckMsg{0xdeadbeefcafef00dULL}};
}

TEST(Wire, EveryKindRoundTripsAndMatchesTheCostCatalog) {
  for (const WireMessage& msg : OneOfEachKind()) {
    const std::vector<uint8_t> buf = Serialize(msg);
    const WireMessage back = RoundTrip(msg);
    EXPECT_EQ(KindOf(back), KindOf(msg));
    EXPECT_EQ(PayloadWords(back), PayloadWords(msg));
    // Frame size formula: header + 8 bytes per payload word (+ support).
    size_t aux = 0;
    if (const auto* row = std::get_if<RowUploadMsg>(&msg)) {
      aux = row->support.size();
    }
    EXPECT_EQ(buf.size(), kFrameHeaderBytes +
                              8 * static_cast<size_t>(PayloadWords(msg)) +
                              4 * aux);
  }
  // The documented per-kind word costs (DESIGN.md message catalog).
  RowUploadMsg row;
  row.values.resize(7);
  EXPECT_EQ(PayloadWords(WireMessage(row)), 8);  // d + timestamp
  row.has_key = true;
  EXPECT_EQ(PayloadWords(WireMessage(row)), 9);  // PWOR shape: d + 2
  row.has_sampler = true;
  EXPECT_EQ(PayloadWords(WireMessage(row)), 10);  // PWR-ST shape: d + 3
  EXPECT_EQ(PayloadWords(WireMessage(RetrieveRequestMsg{})), 1);
  EXPECT_EQ(PayloadWords(WireMessage(RetrieveResponseMsg{})), 1);
  EXPECT_EQ(PayloadWords(WireMessage(ThresholdBroadcastMsg{})), 1);
  EXPECT_EQ(PayloadWords(WireMessage(EigenpairMsg{0.0, {1, 2, 3, 4, 5}})), 6);
  EXPECT_EQ(PayloadWords(WireMessage(Da2DeltaMsg{{1, 2, 3}, 0, 1})), 5);
  EXPECT_EQ(PayloadWords(WireMessage(SumDeltaMsg{})), 1);
  EXPECT_EQ(PayloadWords(WireMessage(ExpiryNoticeMsg{})), 1);
  EXPECT_EQ(PayloadWords(WireMessage(AckMsg{})), 1);
}

TEST(Wire, AdversarialDoublesRoundTripBitExactly) {
  const double quiet_nan = std::numeric_limits<double>::quiet_NaN();
  double payload_nan = quiet_nan;
  {
    // A NaN with a nonzero mantissa payload: must survive byte-for-byte.
    uint64_t bits = Bits(quiet_nan) | 0xdeadbeefULL;
    std::memcpy(&payload_nan, &bits, sizeof(bits));
  }
  const std::vector<double> adversarial = {
      quiet_nan,
      payload_nan,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
      std::numeric_limits<double>::lowest(),
      std::numeric_limits<double>::epsilon(),
      0.0,
      -0.0,
  };

  RowUploadMsg row;
  row.values = adversarial;
  row.timestamp = std::numeric_limits<Timestamp>::max();
  row.has_key = true;
  row.key = payload_nan;
  const WireMessage back = RoundTrip(WireMessage(row));
  const auto parsed = std::get<RowUploadMsg>(std::move(back));
  ASSERT_EQ(parsed.values.size(), adversarial.size());
  for (size_t i = 0; i < adversarial.size(); ++i) {
    EXPECT_EQ(Bits(parsed.values[i]), Bits(adversarial[i])) << "index " << i;
  }
  EXPECT_EQ(parsed.timestamp, row.timestamp);
  EXPECT_EQ(Bits(parsed.key), Bits(payload_nan));

  // Scalar kinds carry the same bit patterns unharmed.
  for (double v : adversarial) {
    const auto delta =
        std::get<SumDeltaMsg>(RoundTrip(WireMessage(SumDeltaMsg{v})));
    EXPECT_EQ(Bits(delta.delta), Bits(v));
    const auto tau = std::get<ThresholdBroadcastMsg>(
        RoundTrip(WireMessage(ThresholdBroadcastMsg{v})));
    EXPECT_EQ(Bits(tau.threshold), Bits(v));
  }
}

TEST(Wire, DegenerateShapesRoundTrip) {
  // d = 1, no key, no sampler, empty support.
  RowUploadMsg tiny;
  tiny.values = {-0.0};
  tiny.timestamp = 1;
  const auto tiny_back = std::get<RowUploadMsg>(RoundTrip(WireMessage(tiny)));
  ASSERT_EQ(tiny_back.values.size(), 1u);
  EXPECT_EQ(Bits(tiny_back.values[0]), Bits(-0.0));
  EXPECT_TRUE(tiny_back.support.empty());
  EXPECT_FALSE(tiny_back.has_key);
  EXPECT_FALSE(tiny_back.has_sampler);

  // Empty retrieve set: the site answers with -infinity.
  const double none = -std::numeric_limits<double>::infinity();
  const auto resp = std::get<RetrieveResponseMsg>(
      RoundTrip(WireMessage(RetrieveResponseMsg{none})));
  EXPECT_EQ(Bits(resp.key), Bits(none));

  // Eigenpair with an empty vector (d = 0 is never sent, but the frame
  // is well-formed: just lambda).
  const auto eig =
      std::get<EigenpairMsg>(RoundTrip(WireMessage(EigenpairMsg{3.5, {}})));
  EXPECT_TRUE(eig.vector.empty());
  EXPECT_EQ(Bits(eig.lambda), Bits(3.5));
}

TEST(Wire, EveryTruncationReturnsStatusNotACrash) {
  for (const WireMessage& msg : OneOfEachKind()) {
    const std::vector<uint8_t> buf = Serialize(msg);
    for (size_t len = 0; len < buf.size(); ++len) {
      const StatusOr<WireMessage> parsed = ParseMessage(buf.data(), len);
      EXPECT_FALSE(parsed.ok())
          << KindName(KindOf(msg)) << " accepted a " << len << "-byte prefix";
    }
    // One trailing byte of garbage is a size mismatch, not a crash.
    std::vector<uint8_t> longer = buf;
    longer.push_back(0x5a);
    EXPECT_FALSE(ParseMessage(longer.data(), longer.size()).ok());
  }
  EXPECT_FALSE(ParseMessage(nullptr, 3).ok());
}

TEST(Wire, StructurallyMalformedFramesAreRejected) {
  std::vector<uint8_t> buf = Serialize(WireMessage(SumDeltaMsg{1.5}));

  for (uint8_t bad_kind : {uint8_t{0}, uint8_t{10}, uint8_t{255}}) {
    std::vector<uint8_t> frame = buf;
    frame[0] = bad_kind;
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
  {
    std::vector<uint8_t> frame = buf;
    frame[2] = static_cast<uint8_t>(kWireFormatVersion + 1);  // future version
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
  {
    std::vector<uint8_t> frame = buf;
    frame[3] = 1;  // version high byte: 256 + current
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
  {
    std::vector<uint8_t> frame = buf;
    frame[2] = 0;  // version 0 (the pre-versioning layout) is not accepted
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
  {
    std::vector<uint8_t> frame = buf;
    frame[1] = 1;  // flags on a non-row message
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
  {
    std::vector<uint8_t> frame = buf;
    frame[4] = 7;  // inflated word count vs. actual buffer size
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
  {
    // A scalar kind must be exactly 1 word even if the frame is
    // self-consistent about a larger size.
    std::vector<uint8_t> frame = buf;
    frame[4] = 2;
    frame.insert(frame.end(), 8, 0);
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
}

TEST(Wire, SequenceRoundTripsThroughTheHeader) {
  const uint64_t seq = 0x0123456789abcdefULL;
  std::vector<uint8_t> buf;
  SerializeMessage(WireMessage(SumDeltaMsg{2.5}), &buf, seq);

  // Header layout: version u16 at offset 2, sequence u64 little-endian at
  // offset 12 -- the offsets the incremental decoder and the fuzz corpus
  // rely on.
  EXPECT_EQ(buf[2], static_cast<uint8_t>(kWireFormatVersion));
  EXPECT_EQ(buf[3], static_cast<uint8_t>(kWireFormatVersion >> 8));
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(buf[12 + i], static_cast<uint8_t>(seq >> (8 * i))) << i;
  }

  const StatusOr<ParsedFrame> parsed = ParseFrame(buf.data(), buf.size());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed.value().sequence, seq);
  EXPECT_DOUBLE_EQ(std::get<SumDeltaMsg>(parsed.value().msg).delta, 2.5);

  // ParseMessage is the sequence-agnostic view of the same frame.
  EXPECT_TRUE(ParseMessage(buf.data(), buf.size()).ok());

  // Default sequence is 0 (callers outside a channel's Send path).
  std::vector<uint8_t> unsequenced;
  SerializeMessage(WireMessage(SumDeltaMsg{2.5}), &unsequenced);
  const StatusOr<ParsedFrame> p2 =
      ParseFrame(unsequenced.data(), unsequenced.size());
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2.value().sequence, 0u);
}

TEST(Wire, RowUploadRejectsBadSupportAndShortFixedFields) {
  RowUploadMsg row;
  row.values = {1.0, 2.0};
  row.timestamp = 5;
  row.support = {1};
  std::vector<uint8_t> buf = Serialize(WireMessage(row));

  {
    std::vector<uint8_t> frame = buf;
    frame[frame.size() - 4] = 9;  // support index 9 >= d = 2
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
  {
    std::vector<uint8_t> frame = buf;
    frame[frame.size() - 1] = 0xff;  // negative support index
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
  {
    std::vector<uint8_t> frame = buf;
    frame[1] = 0xff;  // unknown flag bits set
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
  {
    // has_key + has_sampler + timestamp need 3 words; claim only 2. The
    // frame must also shrink so the size check is not what rejects it.
    RowUploadMsg empty;
    empty.has_key = true;
    empty.has_sampler = true;
    std::vector<uint8_t> frame = Serialize(WireMessage(empty));
    frame[4] = 2;
    frame.resize(kFrameHeaderBytes + 16);
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
  {
    // DA2 delta needs timestamp + flag: one word is too short.
    std::vector<uint8_t> frame =
        Serialize(WireMessage(Da2DeltaMsg{{}, 0, 1}));
    frame[4] = 1;
    frame.resize(kFrameHeaderBytes + 8);
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
  {
    // DA2 flag must be exactly +1 or -1 on the wire.
    std::vector<uint8_t> frame =
        Serialize(WireMessage(Da2DeltaMsg{{1.0}, 3, 1}));
    frame[frame.size() - 8] = 2;  // low byte of the trailing flag i64
    EXPECT_FALSE(ParseMessage(frame.data(), frame.size()).ok());
  }
}

TEST(Wire, SeededMutationCorpusNeverCrashesTheParser) {
  // Flip random bytes of valid frames; the parser must return (ok or not)
  // without crashing, and anything it accepts must re-serialize into a
  // frame it accepts again.
  Rng rng(20260805);
  const std::vector<WireMessage> corpus = OneOfEachKind();
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<uint8_t> buf =
        Serialize(corpus[rng.NextBelow(corpus.size())]);
    const int flips = 1 + static_cast<int>(rng.NextBelow(4));
    for (int f = 0; f < flips; ++f) {
      buf[rng.NextBelow(buf.size())] =
          static_cast<uint8_t>(rng.NextU64() & 0xff);
    }
    // Occasionally truncate or extend as well.
    if (rng.NextBelow(4) == 0) buf.resize(rng.NextBelow(buf.size() + 8));
    const StatusOr<WireMessage> parsed = ParseMessage(buf.data(), buf.size());
    if (!parsed.ok()) continue;
    const std::vector<uint8_t> again = Serialize(parsed.value());
    const StatusOr<WireMessage> reparsed =
        ParseMessage(again.data(), again.size());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(KindOf(reparsed.value()), KindOf(parsed.value()));
    EXPECT_EQ(PayloadWords(reparsed.value()), PayloadWords(parsed.value()));
  }
}

}  // namespace
}  // namespace dswm::net
