#include "linalg/symmetric_eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/matrix.h"

namespace dswm {
namespace {

Matrix RandomSymmetric(int d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(d, d);
  for (int i = 0; i < d; ++i) {
    for (int j = i; j < d; ++j) {
      const double v = rng.NextGaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

Matrix Reconstruct(const EigenResult& eig) {
  const int d = eig.vectors.cols();
  Matrix r(d, d);
  for (int i = 0; i < d; ++i) {
    r.AddOuterProduct(eig.vectors.Row(i), eig.values[i]);
  }
  return r;
}

TEST(SymmetricEigen, DiagonalMatrix) {
  Matrix m(3, 3);
  m(0, 0) = 2.0;
  m(1, 1) = -1.0;
  m(2, 2) = 5.0;
  const EigenResult eig = SymmetricEigen(m);
  EXPECT_NEAR(eig.values[0], 5.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.values[2], -1.0, 1e-12);
}

TEST(SymmetricEigen, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix m(2, 2);
  m(0, 0) = 2;
  m(0, 1) = 1;
  m(1, 0) = 1;
  m(1, 1) = 2;
  const EigenResult eig = SymmetricEigen(m);
  EXPECT_NEAR(eig.values[0], 3.0, 1e-12);
  EXPECT_NEAR(eig.values[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  EXPECT_NEAR(std::fabs(eig.vectors(0, 0)), std::sqrt(0.5), 1e-10);
}

TEST(SymmetricEigen, ZeroMatrix) {
  const EigenResult eig = SymmetricEigen(Matrix(4, 4));
  for (double v : eig.values) EXPECT_DOUBLE_EQ(v, 0.0);
}

class SymmetricEigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricEigenProperty, ReconstructsAndOrthonormal) {
  const int d = GetParam();
  const Matrix m = RandomSymmetric(d, 100 + d);
  const EigenResult eig = SymmetricEigen(m);

  // Eigenvalues sorted descending.
  for (int i = 1; i < d; ++i) EXPECT_GE(eig.values[i - 1], eig.values[i]);

  // V rows orthonormal.
  for (int i = 0; i < d; ++i) {
    for (int j = i; j < d; ++j) {
      const double dot = Dot(eig.vectors.Row(i), eig.vectors.Row(j), d);
      EXPECT_NEAR(dot, i == j ? 1.0 : 0.0, 1e-9) << "i=" << i << " j=" << j;
    }
  }

  // sum lambda_i v_i v_i^T == m.
  const double scale = std::sqrt(m.FrobeniusNormSquared()) + 1e-12;
  EXPECT_LT(MaxAbsDiff(Reconstruct(eig), m) / scale, 1e-9);

  // Trace preserved.
  double trace = 0.0;
  double sum = 0.0;
  for (int i = 0; i < d; ++i) {
    trace += m(i, i);
    sum += eig.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-8 * (std::fabs(trace) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Dims, SymmetricEigenProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 31, 64));

TEST(SymmetricEigen, HandlesSlightAsymmetry) {
  Matrix m = RandomSymmetric(6, 9);
  m(0, 1) += 1e-13;  // accumulated floating-point drift
  const EigenResult eig = SymmetricEigen(m);
  EXPECT_LT(MaxAbsDiff(Reconstruct(eig), m), 1e-10);
}

TEST(SpectralNormExact, MatchesMaxAbsEigenvalue) {
  Matrix m(2, 2);
  m(0, 0) = -7.0;
  m(1, 1) = 3.0;
  EXPECT_NEAR(SpectralNormExact(m), 7.0, 1e-12);
}

}  // namespace
}  // namespace dswm
