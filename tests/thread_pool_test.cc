// ThreadPool semantics: deterministic partitioning, inline single-thread
// execution, Submit/WaitIdle draining, nested-ParallelFor safety, and
// global-pool configuration. Test names carry "ThreadPool" so the TSan
// tree in tools/run_checks.sh can select them with a ctest regex.

#include "common/thread_pool.h"

#include <atomic>
#include <mutex>
#include <set>
#include <thread>  // dswm-lint: allow(raw-thread-outside-common)
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace dswm {
namespace {

class ScopedGlobalThreads {
 public:
  explicit ScopedGlobalThreads(int n) { ThreadPool::SetGlobalThreads(n); }
  ~ScopedGlobalThreads() { ThreadPool::SetGlobalThreads(1); }
};

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  // thread::id only observes identity, it spawns nothing.
  const std::thread::id caller =  // dswm-lint: allow(raw-thread-outside-common)
      std::this_thread::get_id();
  std::thread::id seen;  // dswm-lint: allow(raw-thread-outside-common)
  pool.ParallelFor(10, [&seen](int, int) {
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
  bool ran = false;
  pool.Submit([&ran] { ran = true; });
  // Inline Submit completes before returning; WaitIdle is then a no-op.
  EXPECT_TRUE(ran);
  pool.WaitIdle();
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 4, 7}) {
    for (const int count : {0, 1, 3, 4, 5, 64, 1000}) {
      ThreadPool pool(threads);
      std::vector<std::atomic<int>> hits(count);
      pool.ParallelFor(count, [&hits](int begin, int end) {
        for (int i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (int i = 0; i < count; ++i) {
        EXPECT_EQ(hits[i].load(), 1) << "threads=" << threads
                                     << " count=" << count << " i=" << i;
      }
    }
  }
}

TEST(ThreadPool, PartitionIsDeterministic) {
  // Chunk boundaries depend only on (count, num_threads); repeated runs
  // must produce the identical set of [begin, end) ranges.
  ThreadPool pool(4);
  const auto collect = [&pool] {
    std::mutex mu;
    std::set<std::pair<int, int>> ranges;
    pool.ParallelFor(103, [&mu, &ranges](int begin, int end) {
      std::lock_guard<std::mutex> lock(mu);
      ranges.emplace(begin, end);
    });
    return ranges;
  };
  const auto first = collect();
  EXPECT_EQ(first.size(), 4u);
  for (int rep = 0; rep < 10; ++rep) EXPECT_EQ(collect(), first);
  // Boundaries follow the documented c*count/T formula.
  std::set<std::pair<int, int>> expected;
  for (int c = 0; c < 4; ++c) {
    expected.emplace(c * 103 / 4, (c + 1) * 103 / 4);
  }
  EXPECT_EQ(first, expected);
}

TEST(ThreadPool, SubmitWaitIdleDrainsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 100);
  // WaitIdle is reusable: a second batch drains too.
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(done.load(), 110);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&done] { done.fetch_add(1); });
    }
    // No WaitIdle: the destructor must finish the queue, not drop it.
  }
  EXPECT_EQ(done.load(), 50);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // A ParallelFor body that itself calls ParallelFor (e.g. a threaded
  // kernel invoked from a threaded driver stage) must run the inner loop
  // inline on the worker rather than re-enqueueing and deadlocking.
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(8, [&pool, &inner_total](int begin, int end) {
    for (int i = begin; i < end; ++i) {
      pool.ParallelFor(16, [&inner_total](int b, int e) {
        inner_total.fetch_add(e - b);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, GlobalDefaultsToSingleThread) {
  // DSWM_THREADS is unset in the test environment, so the global pool must
  // be the deterministic single-threaded configuration.
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 1);
}

TEST(ThreadPool, SetGlobalThreadsResizesAndClamps) {
  {
    ScopedGlobalThreads threads(3);
    EXPECT_EQ(ThreadPool::Global()->num_threads(), 3);
    std::atomic<int> total{0};
    ThreadPool::Global()->ParallelFor(30, [&total](int begin, int end) {
      total.fetch_add(end - begin);
    });
    EXPECT_EQ(total.load(), 30);
  }
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 1);
  ThreadPool::SetGlobalThreads(0);  // clamps to 1
  EXPECT_EQ(ThreadPool::Global()->num_threads(), 1);
}

}  // namespace
}  // namespace dswm
