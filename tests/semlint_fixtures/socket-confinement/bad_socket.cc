// semlint-fixture-path: src/monitor/bad_socket.cc
// Fixture: raw POSIX socket/poll/select calls outside src/runtime/ +
// src/net/ must be flagged; transport I/O goes through a net::Channel
// backend or the runtime worker protocol, never ad-hoc descriptors.
#include <poll.h>
#include <sys/select.h>
#include <sys/socket.h>

namespace dswm {

int OpenSidechannel() {
  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) return -1;
  return fds[0];
}

bool WaitReadable(int fd) {
  struct pollfd pfd = {fd, POLLIN, 0};
  return poll(&pfd, 1, 100) > 0;
}

bool WaitReadableLegacy(int fd) {
  fd_set rd;
  FD_ZERO(&rd);
  FD_SET(fd, &rd);
  return select(fd + 1, &rd, nullptr, nullptr, nullptr) > 0;
}

}  // namespace dswm
