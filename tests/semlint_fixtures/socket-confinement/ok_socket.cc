// semlint-fixture-path: src/runtime/ok_socket.cc
// Fixture: src/runtime (like src/net) is a sanctioned home for the
// socket layer -- the process backend lives here.
#include <poll.h>
#include <sys/socket.h>

namespace dswm {

int OpenWorkerPair(int* fds) {
  return socketpair(AF_UNIX, SOCK_STREAM, 0, fds);
}

bool WorkerReadable(int fd) {
  struct pollfd pfd = {fd, POLLIN, 0};
  return poll(&pfd, 1, -1) > 0;
}

}  // namespace dswm
