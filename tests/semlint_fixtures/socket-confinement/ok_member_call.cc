// semlint-fixture-path: src/core/ok_member_call.cc
// Fixture: member and namespace-qualified calls that merely share a name
// with a socket primitive (x.poll(), registry::select()) are not raw
// sockets and must not fire.

namespace dswm {

struct Sampler {
  bool poll() { return true; }
  int accept(int x) { return x; }
};

namespace registry {
inline int select(int which) { return which; }
}  // namespace registry

int Drive(Sampler& s) {
  if (!s.poll()) return -1;
  int chosen = registry::select(2);
  return s.accept(chosen);
}

}  // namespace dswm
