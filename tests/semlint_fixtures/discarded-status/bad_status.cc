// semlint-fixture-path: src/core/bad_status.cc
// Fixture: every discard shape the rule must see -- bare expression
// statement, (void) cast in src/, both ternary branches, lambda body,
// and a discard after a nested block (the statement-splitting case).

namespace dswm {

class Status;
template <typename T>
class StatusOr;

Status CheckConfig(int x);
StatusOr<double> ParseKnob(int x);

void UseAll(bool flag) {
  CheckConfig(1);          // bare discard
  (void)CheckConfig(2);    // (void) discard is still a discard in src/
  ParseKnob(3);            // StatusOr discard
  flag ? CheckConfig(4) : CheckConfig(5);  // ternary discard
  auto deferred = [&] {
    CheckConfig(6);        // discard inside a lambda body
  };
  deferred();
  if (flag) {
    int unused = 0;
    (void)unused;
  }
  CheckConfig(7);          // discard following a nested block
}

}  // namespace dswm
