// semlint-fixture-path: tests/ok_status_void_in_tests.cc
// Fixture: an explicit (void) discard is the sanctioned idiom in tests/
// (death tests evaluate an expression purely for its side effect), but a
// bare discard is flagged even there.

namespace dswm {

class Status;

Status CheckConfig(int x);

void DeathTestBody() {
  (void)CheckConfig(1);  // sanctioned: explicit discard in tests/
}

}  // namespace dswm
