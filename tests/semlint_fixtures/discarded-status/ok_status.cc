// semlint-fixture-path: src/core/ok_status.cc
// Fixture: every sanctioned consumption shape -- propagation, explicit
// checks, assignment, return (including mid-statement after `if`), and
// calls whose result feeds a larger expression.

namespace dswm {

class Status;
template <typename T>
class StatusOr;

Status CheckConfig(int x);
StatusOr<double> ParseKnob(int x);
Status Wrap(Status s);

Status ConsumeProperly(bool flag) {
  Status kept = CheckConfig(1);
  if (!kept.ok()) return kept;
  if (flag) return CheckConfig(2);
  auto knob = ParseKnob(3);
  if (!knob.ok()) {
    return knob.status();
  }
  return Wrap(CheckConfig(4));  // inner result consumed by Wrap
}

}  // namespace dswm
