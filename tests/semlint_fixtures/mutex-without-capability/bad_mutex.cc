// semlint-fixture-path: src/obs/bad_mutex.cc
// Fixture: a dswm::Mutex member no annotation references, and a raw
// std::mutex member outside src/common/mutex.h, must both be flagged.
#include <mutex>

#include "common/mutex.h"

namespace dswm {

class UncheckedCache {
 public:
  void Put(int k, double v);

 private:
  Mutex mu_;       // no DSWM_GUARDED_BY / DSWM_REQUIRES references it
  double last_ = 0.0;
};

class RawLockHolder {
 private:
  std::mutex raw_mu_;  // raw std::mutex cannot carry the capability
  int count_ = 0;
};

}  // namespace dswm
