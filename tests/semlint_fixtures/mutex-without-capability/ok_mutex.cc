// semlint-fixture-path: src/obs/ok_mutex.cc
// Fixture: annotated mutexes pass -- via GUARDED_BY on a sibling field,
// or via REQUIRES/EXCLUDES on methods.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace dswm {

class GuardedCache {
 public:
  void Put(int k, double v) DSWM_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  double last_ DSWM_GUARDED_BY(mu_) = 0.0;
};

class MethodAnnotatedQueue {
 public:
  void PushLocked(int v) DSWM_REQUIRES(queue_mu_);

 private:
  Mutex queue_mu_;
};

}  // namespace dswm
