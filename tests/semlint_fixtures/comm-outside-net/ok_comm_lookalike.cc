// semlint-fixture-path: src/core/ok_comm_lookalike.cc
// Fixture: free functions and different member names must not match the
// member-call pattern.

namespace dswm {

void SendUp(int);

struct Uploader {
  void SendUpstream(int);
};

void NotCommMutation(Uploader& u) {
  SendUp(3);        // free function, not a CommStats member call
  u.SendUpstream(3);
}

}  // namespace dswm
