// semlint-fixture-path: src/core/bad_comm.cc
// Fixture: hand-mutating CommStats outside src/net must be flagged.

namespace dswm {

struct CommStats;

void CountByHand(CommStats& stats, CommStats* remote) {
  stats.SendUp(4);
  remote->SendDown(2);
  remote->Broadcast(1);
}

}  // namespace dswm
