// semlint-fixture-path: src/net/ok_comm.cc
// Fixture: src/net owns the ledger-derived counters, so the same calls
// are sanctioned here; similarly-named methods elsewhere do not match.

namespace dswm {

struct CommStats;

void DeriveFromLedger(CommStats& stats) {
  stats.SendUp(4);
  stats.SendDown(2);
}

}  // namespace dswm
