// semlint-fixture-path: src/net/ok_cast.cc
// Fixture: src/net wire framing is the one sanctioned home for
// reinterpret_cast; value casts are fine everywhere.

namespace dswm {

const unsigned char* FrameBytes(const char* data) {
  return reinterpret_cast<const unsigned char*>(data);
}

long Narrow(double x) { return static_cast<long>(x); }

}  // namespace dswm
