// semlint-fixture-path: src/linalg/ok_cast_value.cc
// Fixture: static_cast and memcpy-staged conversion are the sanctioned
// patterns outside src/net.
#include <cstring>

namespace dswm {

long Narrow(double x) { return static_cast<long>(x); }

unsigned long long BitsOf(double x) {
  unsigned long long bits = 0;
  std::memcpy(&bits, &x, sizeof(bits));
  return bits;
}

}  // namespace dswm
