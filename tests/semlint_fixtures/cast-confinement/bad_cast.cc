// semlint-fixture-path: src/linalg/bad_cast.cc
// Fixture: reinterpret_cast / const_cast outside src/net must be
// flagged; binary I/O stages through memcpy instead.
#include <cstdint>

namespace dswm {

const char* PunBytes(const double* values) {
  return reinterpret_cast<const char*>(values);
}

double* StripConst(const double* values) {
  return const_cast<double*>(values);
}

}  // namespace dswm
