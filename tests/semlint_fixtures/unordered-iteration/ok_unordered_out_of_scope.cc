// semlint-fixture-path: src/analytics/ok_unordered_out_of_scope.cc
// Fixture: the rule is scoped to src/core, src/window, src/sketch --
// iteration elsewhere (diagnostics, tooling) is not flagged.
#include <unordered_map>

namespace dswm {

double DiagnosticSum(const std::unordered_map<int, double>& histogram) {
  std::unordered_map<int, double> local = histogram;
  double sum = 0.0;
  for (const auto& kv : local) sum += kv.second;
  return sum;
}

}  // namespace dswm
