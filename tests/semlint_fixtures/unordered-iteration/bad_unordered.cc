// semlint-fixture-path: src/core/bad_unordered.cc
// Fixture: iteration over unordered containers in the bit-identity
// dirs (src/core, src/window, src/sketch) must be flagged -- range-for,
// structured bindings, explicit iterator loops, and aliased types.
#include <unordered_map>
#include <unordered_set>

namespace dswm {

using SiteIndex = std::unordered_map<int, double>;

class Accumulator {
 public:
  double Total() const {
    double sum = 0.0;
    for (const auto& [site, weight] : weights_) {  // range-for, bindings
      sum += weight;
    }
    for (auto it = members_.begin(); it != members_.end(); ++it) {
      sum += static_cast<double>(*it);  // iterator traversal
    }
    for (const auto& kv : index_) {  // iteration via type alias
      sum += kv.second;
    }
    return sum;
  }

 private:
  std::unordered_map<int, double> weights_;
  std::unordered_set<int> members_;
  SiteIndex index_;
};

}  // namespace dswm
