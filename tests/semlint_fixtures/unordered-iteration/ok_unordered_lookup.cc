// semlint-fixture-path: src/core/ok_unordered_lookup.cc
// Fixture: point lookups into unordered containers are order-free and
// stay legal in the bit-identity dirs; ordered containers iterate freely.
#include <map>
#include <unordered_map>
#include <vector>

namespace dswm {

class Lookup {
 public:
  double At(int site) const {
    auto it = cache_.find(site);
    if (it != cache_.end()) return it->second;
    return 0.0;
  }

  double OrderedSum() const {
    double sum = 0.0;
    for (const auto& [site, weight] : sorted_) sum += weight;  // std::map
    for (double v : values_) sum += v;
    return sum;
  }

 private:
  std::unordered_map<int, double> cache_;
  std::map<int, double> sorted_;
  std::vector<double> values_;
};

}  // namespace dswm
