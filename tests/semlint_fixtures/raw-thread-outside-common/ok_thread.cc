// semlint-fixture-path: src/stream/ok_thread.cc
// Fixture: std::this_thread is identity-only (no spawn) and a justified
// suppression marker silences the rule on its line.
#include <thread>

namespace dswm {

void ObserveIdentity() {
  (void)std::this_thread::get_id();
  // Fresh thread needed to test thread_local isolation:
  std::thread probe([] {});  // dswm-semlint: allow(raw-thread-outside-common)
  probe.join();
}

}  // namespace dswm
