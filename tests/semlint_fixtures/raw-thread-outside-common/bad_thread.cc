// semlint-fixture-path: src/stream/bad_thread.cc
// Fixture: std::thread / std::async outside src/common must be flagged.
#include <future>
#include <thread>

namespace dswm {

void SpawnDirectly() {
  std::thread worker([] {});
  worker.join();
  auto fut = std::async([] { return 1; });
  fut.get();
}

}  // namespace dswm
