// semlint-fixture-path: src/common/ok_thread_in_common.cc
// Fixture: src/common is the sanctioned home for raw threads.
#include <thread>

namespace dswm {

void PoolWorkerSpawn() {
  std::thread worker([] {});
  worker.join();
}

}  // namespace dswm
