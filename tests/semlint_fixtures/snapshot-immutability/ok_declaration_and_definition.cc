// semlint-fixture-path: src/core/ok_declaration_and_definition.cc
// Fixture: the declaration and the qualified out-of-line definition in
// src/core are not member calls and must not fire.

namespace dswm {

class CovarianceEstimate {
 public:
  void MaterializeAndSeal();
};

void CovarianceEstimate::MaterializeAndSeal() {}

}  // namespace dswm
