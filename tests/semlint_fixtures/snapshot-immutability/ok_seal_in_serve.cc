// semlint-fixture-path: src/serve/ok_seal_in_serve.cc
// Fixture: src/serve is the sanctioned home of the publish-time seal.

namespace dswm {
namespace serve {

struct CovarianceEstimate;

void PublishStep(CovarianceEstimate* est) { est->MaterializeAndSeal(); }

}  // namespace serve
}  // namespace dswm
