// semlint-fixture-path: src/monitor/bad_seal_outside_serve.cc
// Fixture: sealing an estimate outside src/serve must be flagged -- both
// the dot and arrow call shapes. Sealing belongs to the publish step in
// serve::SnapshotStore; everywhere else estimates are mutable-by-design
// (tracker side) or already sealed behind a SnapshotRef.

namespace dswm {

struct CovarianceEstimate;

void SealInPlace(CovarianceEstimate& est, CovarianceEstimate* shared) {
  est.MaterializeAndSeal();
  shared->MaterializeAndSeal();
}

}  // namespace dswm
