#include <sstream>

#include <gtest/gtest.h>

#include "common/flags.h"
#include "common/rng.h"
#include "linalg/matrix_io.h"

namespace dswm {
namespace {

Matrix RandomMatrix(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

TEST(MatrixIo, BinaryRoundTrip) {
  const Matrix m = RandomMatrix(7, 5, 1);
  std::stringstream buffer;
  ASSERT_TRUE(WriteMatrixBinary(m, &buffer).ok());
  const auto loaded = ReadMatrixBinary(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), m);
}

TEST(MatrixIo, BinaryEmptyMatrix) {
  std::stringstream buffer;
  ASSERT_TRUE(WriteMatrixBinary(Matrix(0, 3), &buffer).ok());
  const auto loaded = ReadMatrixBinary(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().rows(), 0);
  EXPECT_EQ(loaded.value().cols(), 3);
}

TEST(MatrixIo, RejectsBadMagic) {
  std::stringstream buffer("NOPE....");
  EXPECT_FALSE(ReadMatrixBinary(&buffer).ok());
}

TEST(MatrixIo, RejectsTruncatedPayload) {
  const Matrix m = RandomMatrix(4, 4, 2);
  std::stringstream buffer;
  ASSERT_TRUE(WriteMatrixBinary(m, &buffer).ok());
  std::string bytes = buffer.str();
  bytes.resize(bytes.size() - 9);
  std::stringstream truncated(bytes);
  EXPECT_FALSE(ReadMatrixBinary(&truncated).ok());
}

TEST(MatrixIo, TextRoundTripExact) {
  const Matrix m = RandomMatrix(3, 6, 3);
  std::stringstream buffer;
  ASSERT_TRUE(WriteMatrixText(m, &buffer).ok());
  const auto loaded = ReadMatrixText(&buffer);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), m);  // max_digits10 => bit-exact round trip
}

TEST(MatrixIo, TextRejectsTruncation) {
  std::stringstream buffer("2 2\n1 2\n3\n");
  EXPECT_FALSE(ReadMatrixText(&buffer).ok());
}

TEST(MatrixIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/dswm_matrix_io.bin";
  const Matrix m = RandomMatrix(5, 9, 4);
  ASSERT_TRUE(SaveMatrixBinary(m, path).ok());
  const auto loaded = LoadMatrixBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), m);
  std::remove(path.c_str());
}

TEST(MatrixIo, MissingFile) {
  EXPECT_EQ(LoadMatrixBinary("/definitely/not/here.bin").status().code(),
            StatusCode::kIoError);
}

TEST(Flags, ParsesBothForms) {
  const char* argv[] = {"prog", "run",          "--epsilon=0.1",
                        "--sites", "20",        "--dataset=wiki"};
  const auto flags =
      FlagSet::Parse(6, argv, {"epsilon", "sites", "dataset"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags.value().positional().size(), 1u);
  EXPECT_EQ(flags.value().positional()[0], "run");
  EXPECT_DOUBLE_EQ(flags.value().GetDouble("epsilon", 0), 0.1);
  EXPECT_EQ(flags.value().GetInt("sites", 0), 20);
  EXPECT_EQ(flags.value().GetString("dataset", ""), "wiki");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  const auto flags = FlagSet::Parse(1, argv, {"x"});
  ASSERT_TRUE(flags.ok());
  EXPECT_FALSE(flags.value().Has("x"));
  EXPECT_EQ(flags.value().GetInt("x", 42), 42);
  EXPECT_EQ(flags.value().GetString("x", "d"), "d");
}

TEST(Flags, RejectsUnknownFlag) {
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(FlagSet::Parse(2, argv, {"real"}).ok());
}

TEST(Flags, RejectsTrailingValuelessFlag) {
  const char* argv[] = {"prog", "--sites"};
  EXPECT_FALSE(FlagSet::Parse(2, argv, {"sites"}).ok());
}

}  // namespace
}  // namespace dswm
