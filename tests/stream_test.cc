#include <cmath>

#include <gtest/gtest.h>

#include "stream/pamap_like.h"
#include "stream/row_stream.h"
#include "stream/synthetic.h"
#include "stream/wiki_like.h"

namespace dswm {
namespace {

template <typename Gen, typename Config>
std::vector<TimedRow> Generate(const Config& config, int n) {
  Gen gen(config);
  return Materialize(&gen, n);
}

TEST(Synthetic, DeterministicForFixedSeed) {
  SyntheticConfig config;
  config.rows = 50;
  config.dim = 8;
  auto a = Generate<SyntheticGenerator>(config, 50);
  auto b = Generate<SyntheticGenerator>(config, 50);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].timestamp, b[i].timestamp);
    EXPECT_EQ(a[i].values, b[i].values);
  }
}

TEST(Synthetic, TimestampsNonDecreasingPoissonRate) {
  SyntheticConfig config;
  config.rows = 5000;
  config.dim = 4;
  const auto rows = Generate<SyntheticGenerator>(config, config.rows);
  ASSERT_EQ(rows.size(), 5000u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LE(rows[i - 1].timestamp, rows[i].timestamp);
  }
  // Poisson(1): span ~ n.
  const Timestamp span = rows.back().timestamp - rows.front().timestamp;
  EXPECT_NEAR(static_cast<double>(span), 5000.0, 500.0);
}

TEST(Synthetic, LowNormRatioMatchesPaper) {
  // Paper Table III: SYNTHETIC R = 3.72 (mild skew).
  SyntheticConfig config;
  config.rows = 20000;
  config.dim = 64;
  const auto rows = Generate<SyntheticGenerator>(config, config.rows);
  const DatasetSummary s = Summarize(rows, 1000);
  EXPECT_GT(s.norm_ratio, 1.5);
  EXPECT_LT(s.norm_ratio, 30.0);
}

TEST(Synthetic, SignalDominatesNoise) {
  SyntheticConfig config;
  config.rows = 2000;
  config.dim = 32;
  config.zeta = 10.0;
  const auto rows = Generate<SyntheticGenerator>(config, config.rows);
  // Average squared norm ~ sum_i (1 - i/d)^2 (~ d/3) + d/zeta^2.
  double avg = 0.0;
  for (const auto& r : rows) avg += r.NormSquared();
  avg /= rows.size();
  const double signal = config.dim / 3.0;
  EXPECT_GT(avg, 0.5 * signal);
  EXPECT_LT(avg, 2.0 * signal);
}

TEST(PamapLike, ShapeAndSkew) {
  PamapLikeConfig config;
  config.rows = 40000;
  const auto rows = Generate<PamapLikeGenerator>(config, config.rows);
  ASSERT_EQ(rows.size(), 40000u);
  EXPECT_EQ(rows.front().values.size(), 43u);
  const DatasetSummary s = Summarize(rows, 10000);
  // Paper: R = 60.78. Accept the right order of magnitude.
  EXPECT_GT(s.norm_ratio, 15.0);
  EXPECT_LT(s.norm_ratio, 2000.0);
  for (size_t i = 1; i < rows.size(); ++i) {
    ASSERT_LE(rows[i - 1].timestamp, rows[i].timestamp);
  }
}

TEST(WikiLike, SparseRowsWithLargeNormRatio) {
  WikiLikeConfig config;
  config.rows = 20000;
  config.dim = 256;
  const auto rows = Generate<WikiLikeGenerator>(config, config.rows);
  ASSERT_EQ(rows.size(), 20000u);

  double max_nnz = 0.0;
  for (const auto& r : rows) {
    ASSERT_FALSE(r.support.empty());
    max_nnz = std::max(max_nnz, static_cast<double>(r.support.size()));
    // Support lists exactly the nonzeros.
    int nnz = 0;
    for (double v : r.values) {
      if (v != 0.0) ++nnz;
    }
    EXPECT_EQ(nnz, static_cast<int>(r.support.size()));
  }
  EXPECT_LT(max_nnz, 256.0);  // genuinely sparse

  const DatasetSummary s = Summarize(rows, 300);
  // Paper: R = 2998.83. Accept hundreds-to-tens-of-thousands.
  EXPECT_GT(s.norm_ratio, 100.0);
  EXPECT_LT(s.norm_ratio, 100000.0);
}

TEST(Summarize, ComputesWindowAverage) {
  std::vector<TimedRow> rows(100);
  for (int i = 0; i < 100; ++i) {
    rows[i].values = {1.0};
    rows[i].timestamp = i + 1;  // span 99
  }
  const DatasetSummary s = Summarize(rows, 33);
  EXPECT_EQ(s.rows, 100);
  EXPECT_EQ(s.dim, 1);
  EXPECT_NEAR(s.avg_rows_per_window, 100.0 * 33 / 99, 1e-9);
  EXPECT_DOUBLE_EQ(s.norm_ratio, 1.0);
}

TEST(Summarize, EmptyDataset) {
  const DatasetSummary s = Summarize({}, 10);
  EXPECT_EQ(s.rows, 0);
  EXPECT_EQ(s.dim, 0);
}

TEST(Materialize, StopsAtStreamEnd) {
  SyntheticConfig config;
  config.rows = 10;
  config.dim = 3;
  SyntheticGenerator gen(config);
  const auto rows = Materialize(&gen, 100);
  EXPECT_EQ(rows.size(), 10u);
}

}  // namespace
}  // namespace dswm
