// QueryService contract: typed StatusOr results stamped with the exact
// SnapshotMeta that answered them, FailedPrecondition before the first
// publish, InvalidArgument on dimension mismatch, parity with the
// snapshot's memoized structures, and the lazy change-reference flow.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/covariance_estimate.h"
#include "linalg/qr.h"
#include "serve/query_service.h"
#include "serve/snapshot_store.h"

namespace dswm {
namespace {

Matrix GaussianRows(int n, int d, uint64_t seed) {
  Rng rng(seed);
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) rows(i, j) = rng.NextGaussian();
  }
  return rows;
}

Status PublishRows(serve::SnapshotStore* store, Matrix rows, Timestamp at) {
  return store->Publish(CovarianceEstimate::FromRows(std::move(rows)), at,
                        /*window=*/50);
}

TEST(QueryService, FailsBeforeFirstPublish) {
  serve::SnapshotStore store;
  serve::QueryService service(&store);
  serve::QueryService::Session session = service.NewSession();
  const double x[] = {1.0, 2.0};
  EXPECT_EQ(session.Pca(x, 2).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Anomaly(x, 2).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.Change().status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(session.last_version(), 0u);
}

TEST(QueryService, RejectsDimensionMismatch) {
  serve::SnapshotStore store;
  ASSERT_TRUE(PublishRows(&store, GaussianRows(30, 5, 1), 100).ok());
  serve::QueryService service(&store);
  serve::QueryService::Session session = service.NewSession();
  const std::vector<double> x(4, 1.0);
  EXPECT_EQ(session.Pca(x.data(), 4).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(session.Anomaly(x.data(), 4).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryService, ResultsMatchSnapshotMemoizedStructures) {
  serve::StoreOptions options;
  options.pca_components = 3;
  options.lambda_fraction = 0.02;
  serve::SnapshotStore store(options);
  ASSERT_TRUE(PublishRows(&store, GaussianRows(80, 6, 2), 100).ok());

  serve::QueryService service(&store);
  serve::QueryService::Session session = service.NewSession();
  serve::SnapshotReader reader(&store);
  const serve::SnapshotRef ref = reader.Pin();
  ASSERT_TRUE(ref.has_value());

  const Matrix probes = GaussianRows(5, 6, 3);
  for (int i = 0; i < probes.rows(); ++i) {
    const double* x = probes.Row(i);
    const auto pca = session.Pca(x, 6);
    ASSERT_TRUE(pca.ok());
    EXPECT_EQ(pca.value().meta.version, 1u);
    EXPECT_EQ(pca.value().components, ref->pca().components());
    EXPECT_EQ(pca.value().coefficients, ref->pca().Project(x));
    EXPECT_EQ(pca.value().reconstruction_error,
              ref->pca().ReconstructionError(x));
    EXPECT_EQ(pca.value().captured_fraction, ref->pca().captured_fraction());

    const auto anomaly = session.Anomaly(x, 6);
    ASSERT_TRUE(anomaly.ok());
    EXPECT_EQ(anomaly.value().meta.version, 1u);
    EXPECT_EQ(anomaly.value().score, ref->scorer().Score(x));
    EXPECT_EQ(anomaly.value().lambda, ref->scorer().lambda());
  }
  EXPECT_EQ(session.last_version(), 1u);
}

TEST(QueryService, ChangeSeedsLazilyAndEvaluatesPerVersion) {
  const int d = 10;
  Rng rng(4);
  const Matrix basis_a = RandomOrthonormalRows(2, d, &rng);
  const Matrix basis_b = RandomOrthonormalRows(2, d, &rng);
  auto rows_in = [&](const Matrix& basis, uint64_t seed) {
    Rng r(seed);
    Matrix rows(200, d);
    for (int i = 0; i < 200; ++i) {
      for (int c = 0; c < basis.rows(); ++c) {
        Axpy(r.NextGaussian() * (basis.rows() - c), basis.Row(c), rows.Row(i),
             d);
      }
    }
    return rows;
  };

  serve::SnapshotStore store;
  ChangeDetectorOptions change_options;
  change_options.components = 2;
  change_options.calibration_updates = 2;
  serve::QueryService service(&store, change_options);
  serve::QueryService::Session session = service.NewSession();

  ASSERT_TRUE(PublishRows(&store, rows_in(basis_a, 10), 100).ok());
  // First call freezes the reference from version 1: distance 0.
  auto seeded = session.Change();
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(seeded.value().reference_version, 1u);
  EXPECT_EQ(seeded.value().meta.version, 1u);
  EXPECT_DOUBLE_EQ(seeded.value().distance, 0.0);
  EXPECT_FALSE(seeded.value().change_detected);

  // Same version again: the cached verdict comes back unchanged.
  auto cached = session.Change();
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached.value().meta.version, 1u);
  EXPECT_DOUBLE_EQ(cached.value().distance, 0.0);

  // Quiet versions calibrate; a rotated subspace then flags.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(PublishRows(&store, rows_in(basis_a, 20 + i), 200 + i).ok());
    auto quiet = session.Change();
    ASSERT_TRUE(quiet.ok());
    EXPECT_LT(quiet.value().distance, 0.1);
    EXPECT_FALSE(quiet.value().change_detected);
  }
  ASSERT_TRUE(PublishRows(&store, rows_in(basis_b, 30), 300).ok());
  auto flagged = session.Change();
  ASSERT_TRUE(flagged.ok());
  EXPECT_EQ(flagged.value().reference_version, 1u);
  EXPECT_EQ(flagged.value().meta.version, store.latest_version());
  EXPECT_GT(flagged.value().distance, 0.3);
  EXPECT_TRUE(flagged.value().change_detected);
}

TEST(QueryService, SessionsAreIndependent) {
  serve::SnapshotStore store;
  ASSERT_TRUE(PublishRows(&store, GaussianRows(40, 4, 5), 100).ok());
  serve::QueryService service(&store);
  serve::QueryService::Session a = service.NewSession();
  serve::QueryService::Session b = service.NewSession();
  ASSERT_TRUE(a.Change().ok());  // seeds a's reference at version 1
  ASSERT_TRUE(PublishRows(&store, GaussianRows(40, 4, 6), 200).ok());
  auto b_first = b.Change();  // b seeds from version 2 instead
  ASSERT_TRUE(b_first.ok());
  EXPECT_EQ(b_first.value().reference_version, 2u);
  auto a_second = a.Change();
  ASSERT_TRUE(a_second.ok());
  EXPECT_EQ(a_second.value().reference_version, 1u);
}

}  // namespace
}  // namespace dswm
