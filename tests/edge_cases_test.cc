// Edge-case battery: numeric extremes, degenerate streams, duplicate
// timestamps, and protocol knobs not covered elsewhere.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/da2_tracker.h"
#include "core/tracker_factory.h"
#include "monitor/driver.h"
#include "sampling/priority.h"
#include "sketch/covariance.h"
#include "window/exact_window.h"

namespace dswm {
namespace {

TimedRow RowOf(std::vector<double> v, Timestamp t) {
  TimedRow row;
  row.values = std::move(v);
  row.timestamp = t;
  return row;
}

TEST(EdgeCases, ExtremeWeightRatiosInPriorityKeys) {
  // Weights spanning 24 orders of magnitude must stay ordered and finite.
  Rng rng(1);
  for (double w : {1e-12, 1e-6, 1.0, 1e6, 1e12}) {
    const double key = DrawKey(SamplingScheme::kPriority, w, &rng);
    EXPECT_TRUE(std::isfinite(key));
    EXPECT_GT(key, 0.0);
    const double es = DrawKey(SamplingScheme::kEfraimidisSpirakis, w, &rng);
    EXPECT_TRUE(es < 0.0 && std::isfinite(es));
    EXPECT_TRUE(std::isfinite(
        KeyBucketValue(SamplingScheme::kEfraimidisSpirakis, es)));
  }
}

TEST(EdgeCases, SamplerHandlesHugeNormRatioStream) {
  // R = 1e12: the motivating regime for weighted (vs uniform) sampling.
  TrackerConfig config;
  config.dim = 2;
  config.num_sites = 2;
  config.window = 500;
  config.epsilon = 0.3;
  config.ell_override = 16;
  config.seed = 2;
  auto tracker = MakeTracker(Algorithm::kPwor, config);
  Rng rng(3);
  ExactWindow exact(2, 500);
  for (int i = 1; i <= 1200; ++i) {
    const double scale = (i % 400 == 0) ? 1e6 : 1.0;
    TimedRow row = RowOf({scale * rng.NextGaussian(), rng.NextGaussian()}, i);
    EXPECT_TRUE(tracker.value()->Observe(static_cast<int>(rng.NextBelow(2)), row).ok());
    exact.Add(row);
    exact.Advance(i);
  }
  const double err = CovarianceErrorOfSketch(
      exact.Covariance(), tracker.value()->Query().Rows(),
      exact.FrobeniusSquared());
  EXPECT_TRUE(std::isfinite(err));
  EXPECT_LT(err, 0.5);
}

TEST(EdgeCases, ManyRowsSharingOneTimestamp) {
  // A whole burst at a single tick, then expiry of the burst as a unit.
  for (Algorithm a : PaperAlgorithms()) {
    TrackerConfig config;
    config.dim = 3;
    config.num_sites = 2;
    config.window = 10;
    config.epsilon = 0.3;
    config.ell_override = 12;
    config.seed = 4;
    auto tracker = MakeTracker(a, config);
    Rng rng(5);
    for (int i = 0; i < 300; ++i) {
      EXPECT_TRUE(tracker.value()->Observe(
          static_cast<int>(rng.NextBelow(2)),
          RowOf({rng.NextGaussian(), rng.NextGaussian(), rng.NextGaussian()},
                /*t=*/7)).ok());
    }
    tracker.value()->AdvanceTime(8);
    EXPECT_GT(tracker.value()->Query().Rows().FrobeniusNormSquared(), 0.0)
        << AlgorithmName(a);
    tracker.value()->AdvanceTime(100);  // burst fully expires
    const Matrix sketch = tracker.value()->Query().Rows();
    // Deterministic trackers may carry sub-threshold residue; samplers
    // must be empty.
    if (a != Algorithm::kDa1 && a != Algorithm::kDa2) {
      EXPECT_EQ(sketch.rows(), 0) << AlgorithmName(a);
    }
  }
}

TEST(EdgeCases, SingleRowWindow) {
  TrackerConfig config;
  config.dim = 4;
  config.num_sites = 1;
  config.window = 1;  // every row expires at the next tick
  config.epsilon = 0.3;
  config.ell_override = 4;
  auto tracker = MakeTracker(Algorithm::kPwor, config);
  Rng rng(6);
  for (int i = 1; i <= 100; ++i) {
    EXPECT_TRUE(tracker.value()->Observe(0, RowOf({1, 2, 3, 4}, i)).ok());
    // Exactly one active row at all times.
    const Matrix sketch = tracker.value()->Query().Rows();
    ASSERT_EQ(sketch.rows(), 1);
    EXPECT_NEAR(NormSquared(sketch.Row(0), 4), 30.0, 1e-9);
  }
}

TEST(EdgeCases, AllMassOnOneSite) {
  // Site skew: one site receives everything; others stay silent.
  for (Algorithm a : {Algorithm::kPwor, Algorithm::kDa1, Algorithm::kDa2}) {
    TrackerConfig config;
    config.dim = 4;
    config.num_sites = 8;
    config.window = 300;
    config.epsilon = 0.25;
    config.ell_override = 24;
    config.seed = 7;
    auto tracker = MakeTracker(a, config);
    ExactWindow exact(4, 300);
    Rng rng(8);
    for (int i = 1; i <= 900; ++i) {
      TimedRow row = RowOf({rng.NextGaussian(), rng.NextGaussian(),
                            rng.NextGaussian(), rng.NextGaussian()},
                           i);
      EXPECT_TRUE(tracker.value()->Observe(/*site=*/3, row).ok());
      exact.Add(row);
      exact.Advance(i);
    }
    const CovarianceEstimate approx = tracker.value()->Query();
    const double err =
        approx.NativeIsRows()
            ? CovarianceErrorOfSketch(exact.Covariance(), approx.Rows(),
                                      exact.FrobeniusSquared())
            : CovarianceErrorOfCovariance(exact.Covariance(),
                                          approx.Covariance(),
                                          exact.FrobeniusSquared());
    EXPECT_LT(err, 0.5) << AlgorithmName(a);
  }
}

TEST(EdgeCases, TinyEpsilonLargeEll) {
  // eps small enough that l exceeds the active row count: samplers
  // degenerate to exact (every active row at the coordinator).
  TrackerConfig config;
  config.dim = 3;
  config.num_sites = 2;
  config.window = 100;
  config.epsilon = 0.01;  // derived l ~ 46k >> 100 active rows
  config.seed = 9;
  auto tracker = MakeTracker(Algorithm::kPwor, config);
  ExactWindow exact(3, 100);
  Rng rng(10);
  for (int i = 1; i <= 400; ++i) {
    TimedRow row =
        RowOf({rng.NextGaussian(), rng.NextGaussian(), rng.NextGaussian()}, i);
    EXPECT_TRUE(tracker.value()->Observe(static_cast<int>(rng.NextBelow(2)), row).ok());
    exact.Add(row);
    exact.Advance(i);
  }
  const double err = CovarianceErrorOfSketch(
      exact.Covariance(), tracker.value()->Query().Rows(),
      exact.FrobeniusSquared());
  EXPECT_LT(err, 1e-9);  // exact: the full window is the "sample"
}

TEST(EdgeCases, Da2BoundaryFlushPreventsCrossWindowDrift) {
  // Ablation (DESIGN.md item 5): without the boundary flush, unreported
  // IWMT_a mass and FD shrinkage accumulate across windows.
  auto run = [](bool flush) {
    TrackerConfig config;
    config.dim = 6;
    config.num_sites = 2;
    config.window = 200;
    config.epsilon = 0.2;
    config.seed = 11;
    config.da2_flush_at_boundary = flush;
    Da2Tracker tracker(config);
    ExactWindow exact(6, 200);
    Rng rng(12);
    double worst = 0.0;
    for (int i = 1; i <= 3000; ++i) {  // 15 windows
      TimedRow row;
      row.timestamp = i;
      row.values.resize(6);
      for (int j = 0; j < 6; ++j) row.values[j] = rng.NextGaussian();
      EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(2)), row).ok());
      exact.Add(row);
      exact.Advance(i);
      if (i > 400 && i % 83 == 0) {
        worst = std::max(
            worst, CovarianceErrorOfCovariance(
                       exact.Covariance(),
                       tracker.Query().Covariance(),
                       exact.FrobeniusSquared()));
      }
    }
    return worst;
  };
  const double with_flush = run(true);
  const double without_flush = run(false);
  EXPECT_LE(with_flush, 0.2);
  EXPECT_GT(without_flush, with_flush);
}

TEST(EdgeCases, AdvanceTimeWithoutObservationsIsSafeEverywhere) {
  for (Algorithm a : PaperAlgorithms()) {
    TrackerConfig config;
    config.dim = 2;
    config.num_sites = 2;
    config.window = 50;
    config.epsilon = 0.3;
    config.ell_override = 4;
    auto tracker = MakeTracker(a, config);
    for (Timestamp t = 1; t <= 500; t += 37) {
      tracker.value()->AdvanceTime(t);
    }
    EXPECT_EQ(tracker.value()->Comm().TotalWords(), 0) << AlgorithmName(a);
    EXPECT_EQ(tracker.value()->Query().Rows().rows(), 0) << AlgorithmName(a);
  }
}

}  // namespace
}  // namespace dswm
