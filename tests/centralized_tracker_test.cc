#include "core/centralized_tracker.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tracker_factory.h"
#include "monitor/driver.h"
#include "sketch/covariance.h"
#include "stream/synthetic.h"
#include "window/exact_window.h"

namespace dswm {
namespace {

TEST(CentralizedTracker, NearExactButShipsEverything) {
  const int d = 8;
  const Timestamp window = 400;
  SyntheticConfig data;
  data.rows = 2000;
  data.dim = d;
  SyntheticGenerator gen(data);
  const std::vector<TimedRow> rows = Materialize(&gen, data.rows);

  TrackerConfig config;
  config.dim = d;
  config.num_sites = 4;
  config.window = window;
  config.epsilon = 0.1;
  auto tracker = MakeTracker(Algorithm::kCentral, config);
  ASSERT_TRUE(tracker.ok());
  EXPECT_EQ(tracker.value()->Name(), "CENTRAL");

  DriverOptions options;
  options.query_points = 15;
  const StatusOr<RunResult> run =
      RunTracker(tracker.value().get(), rows, 4, window, options);
  ASSERT_TRUE(run.ok());
  const RunResult& r = run.value();

  // Near-exact (only the mEH guarantee applies)...
  EXPECT_LE(r.max_err, 0.1);
  // ...at exactly full-stream communication cost.
  EXPECT_EQ(r.rows_sent, static_cast<long>(rows.size()));
  EXPECT_EQ(r.total_words, static_cast<long>(rows.size()) * (d + 1));
  // Sites hold nothing.
  EXPECT_EQ(r.max_site_space_words, 0);
}

TEST(CentralizedTracker, EveryProtocolCommunicatesLessThanCentral) {
  const int d = 6;
  const Timestamp window = 500;
  SyntheticConfig data;
  data.rows = 4000;
  data.dim = d;
  SyntheticGenerator gen(data);
  const std::vector<TimedRow> rows = Materialize(&gen, data.rows);

  TrackerConfig config;
  config.dim = d;
  config.num_sites = 4;
  config.window = window;
  config.epsilon = 0.2;
  config.seed = 3;

  DriverOptions options;
  options.query_points = 3;
  auto central = MakeTracker(Algorithm::kCentral, config);
  const long central_words =
      RunTracker(central.value().get(), rows, 4, window, options)
          .value()
          .total_words;

  for (Algorithm a : PaperAlgorithms()) {
    auto tracker = MakeTracker(a, config);
    const long words =
        RunTracker(tracker.value().get(), rows, 4, window, options)
            .value()
            .total_words;
    EXPECT_LT(words, central_words) << AlgorithmName(a);
  }
}

}  // namespace
}  // namespace dswm
