// Bitwise equivalence of the blocked/vectorized linalg kernels against
// their naive *Reference oracles, across a shape grid that exercises every
// dispatch path: empty, 1x1, tall, wide, exact register-tile multiples,
// ragged edges (not multiples of the 4-row / 4-or-8-column tile), and
// reductions longer than the kKc=256 k-block. The *Threaded tests assert
// the same bitwise identity at 4 threads (row-tile distribution must not
// change any accumulation order).

#include <cmath>
#include <cstring>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/matrix.h"

namespace dswm {
namespace {

// Under DSWM_FAST_MATH the kernels contract each accumulate step to an
// FMA, so bitwise identity with the per-lane IEEE *Reference oracles no
// longer holds (by design). Those comparisons skip themselves; the
// FastMath suite (linalg_fastmath_test.cc) covers the mode under a
// relative tolerance. Kernel-vs-kernel identities (threaded vs single,
// prefix vs full) hold in both modes and keep running.
#if defined(DSWM_FAST_MATH)
#define DSWM_REQUIRE_BITWISE_KERNELS()                                  \
  GTEST_SKIP() << "DSWM_FAST_MATH build: kernels are FMA-contracted; "  \
                  "see the FastMath tolerance suite"
#else
#define DSWM_REQUIRE_BITWISE_KERNELS() (void)0
#endif

Matrix RandomMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) m(i, j) = rng.NextGaussian();
  }
  return m;
}

// Bitwise comparison (memcmp of the row payloads, not double ==, so even a
// -0.0 vs +0.0 discrepancy would be caught).
::testing::AssertionResult BitIdentical(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  for (int i = 0; i < a.rows(); ++i) {
    if (std::memcmp(a.Row(i), b.Row(i),
                    sizeof(double) * static_cast<size_t>(a.cols())) != 0) {
      return ::testing::AssertionFailure()
             << "row " << i << " differs; MaxAbsDiff=" << MaxAbsDiff(a, b);
    }
  }
  return ::testing::AssertionSuccess();
}

// Restores the global pool size on scope exit so a failing test cannot
// leak a multi-threaded pool into unrelated tests.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { ThreadPool::SetGlobalThreads(n); }
  ~ScopedThreads() { ThreadPool::SetGlobalThreads(1); }
};

struct MatMulShape {
  int m;
  int k;
  int p;
};

class MatMulEquivalence : public ::testing::TestWithParam<MatMulShape> {};

TEST_P(MatMulEquivalence, BitIdenticalToReference) {
  DSWM_REQUIRE_BITWISE_KERNELS();
  const auto [m, k, p] = GetParam();
  const Matrix a = RandomMatrix(m, k, 1000 + static_cast<uint64_t>(m));
  const Matrix b = RandomMatrix(k, p, 2000 + static_cast<uint64_t>(p));
  EXPECT_TRUE(BitIdentical(MatMul(a, b), MatMulReference(a, b)));
}

TEST_P(MatMulEquivalence, ThreadedBitIdenticalToSingle) {
  const auto [m, k, p] = GetParam();
  const Matrix a = RandomMatrix(m, k, 3000 + static_cast<uint64_t>(m));
  const Matrix b = RandomMatrix(k, p, 4000 + static_cast<uint64_t>(p));
  const Matrix single = MatMul(a, b);
  ScopedThreads threads(4);
  EXPECT_TRUE(BitIdentical(MatMul(a, b), single));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMulEquivalence,
    ::testing::Values(MatMulShape{0, 0, 0}, MatMulShape{0, 3, 2},
                      MatMulShape{2, 0, 3}, MatMulShape{1, 1, 1},
                      MatMulShape{4, 4, 4}, MatMulShape{4, 4, 8},
                      MatMulShape{5, 7, 9}, MatMulShape{8, 8, 8},
                      MatMulShape{3, 100, 2}, MatMulShape{100, 3, 100},
                      MatMulShape{13, 17, 11}, MatMulShape{16, 32, 24},
                      MatMulShape{33, 29, 37}, MatMulShape{64, 64, 64},
                      // k > kKc: the reduction crosses a k-block boundary,
                      // exercising the store/reload of partial tiles.
                      MatMulShape{20, 300, 20}, MatMulShape{7, 513, 12}));

struct GramShape {
  int rows;
  int cols;
};

class GramEquivalence : public ::testing::TestWithParam<GramShape> {};

TEST_P(GramEquivalence, GramBitIdenticalToReference) {
  DSWM_REQUIRE_BITWISE_KERNELS();
  const auto [rows, cols] = GetParam();
  const Matrix a = RandomMatrix(rows, cols, 5000 + static_cast<uint64_t>(rows));
  EXPECT_TRUE(BitIdentical(Gram(a), GramReference(a)));
}

TEST_P(GramEquivalence, GramTransposeBitIdenticalToReference) {
  DSWM_REQUIRE_BITWISE_KERNELS();
  const auto [rows, cols] = GetParam();
  const Matrix a = RandomMatrix(rows, cols, 6000 + static_cast<uint64_t>(cols));
  EXPECT_TRUE(BitIdentical(GramTranspose(a), GramTransposeReference(a)));
}

TEST_P(GramEquivalence, PrefixMatchesFullKernelOnPrefixCopy) {
  const auto [rows, cols] = GetParam();
  const Matrix a = RandomMatrix(rows, cols, 7000 + static_cast<uint64_t>(rows));
  for (const int r : {0, 1, rows / 2, rows}) {
    if (r > rows) continue;
    Matrix prefix(r, cols);
    for (int i = 0; i < r; ++i) prefix.SetRow(i, a.Row(i));
    EXPECT_TRUE(BitIdentical(GramPrefix(a, r), Gram(prefix))) << "r=" << r;
    EXPECT_TRUE(BitIdentical(GramTransposePrefix(a, r), GramTranspose(prefix)))
        << "r=" << r;
  }
}

TEST_P(GramEquivalence, ThreadedBitIdenticalToSingle) {
  const auto [rows, cols] = GetParam();
  const Matrix a = RandomMatrix(rows, cols, 8000 + static_cast<uint64_t>(cols));
  const Matrix gram_single = Gram(a);
  const Matrix gramt_single = GramTranspose(a);
  ScopedThreads threads(4);
  EXPECT_TRUE(BitIdentical(Gram(a), gram_single));
  EXPECT_TRUE(BitIdentical(GramTranspose(a), gramt_single));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GramEquivalence,
    ::testing::Values(GramShape{0, 0}, GramShape{0, 5}, GramShape{1, 1},
                      GramShape{1, 9}, GramShape{4, 4}, GramShape{5, 3},
                      GramShape{3, 5}, GramShape{8, 8}, GramShape{12, 8},
                      GramShape{13, 17}, GramShape{40, 43},
                      GramShape{64, 33}, GramShape{33, 64},
                      GramShape{2, 300}, GramShape{300, 2},
                      // rows > kKc for GramTranspose's k-blocked reduction.
                      GramShape{280, 24}));

TEST(KernelEquivalence, MatMulSpecialValuesSurviveBlocking) {
  // The blocked kernel must not "optimize" away zeros (the old naive loop
  // skipped aik == 0.0, which breaks NaN/inf propagation semantics).
  Matrix a(4, 4);
  Matrix b(4, 4);
  a(0, 0) = 0.0;
  a(1, 1) = 1.0;
  b(0, 2) = std::numeric_limits<double>::infinity();
  b(1, 3) = std::numeric_limits<double>::quiet_NaN();
  const Matrix c = MatMul(a, b);
  const Matrix r = MatMulReference(a, b);
  EXPECT_TRUE(std::isnan(c(0, 2)) == std::isnan(r(0, 2)));
  EXPECT_TRUE(std::isnan(c(1, 3)));
}

}  // namespace
}  // namespace dswm
