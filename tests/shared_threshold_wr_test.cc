#include "core/shared_threshold_wr_tracker.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/tracker_factory.h"
#include "core/with_replacement_tracker.h"
#include "monitor/driver.h"
#include "sketch/covariance.h"
#include "stream/synthetic.h"
#include "window/exact_window.h"

namespace dswm {
namespace {

TimedRow RandomRow(Rng* rng, int d, Timestamp t) {
  TimedRow row;
  row.timestamp = t;
  row.values.resize(d);
  for (int j = 0; j < d; ++j) row.values[j] = rng->NextGaussian();
  return row;
}

TrackerConfig Config(int ell) {
  TrackerConfig config;
  config.dim = 5;
  config.num_sites = 3;
  config.window = 400;
  config.epsilon = 0.3;
  config.ell_override = ell;
  config.seed = 12;
  return config;
}

TEST(SharedThresholdWr, EverySamplerServedInSteadyState) {
  SharedThresholdWrTracker tracker(Config(16), SamplingScheme::kPriority);
  Rng rng(1);
  for (int i = 1; i <= 2000; ++i) {
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(3)), RandomRow(&rng, 5, i)).ok());
    if (i > 100) {
      EXPECT_EQ(tracker.SamplersWithSample(), 16) << "at row " << i;
    }
  }
  const Matrix sketch = tracker.Query().Rows();
  EXPECT_EQ(sketch.rows(), 16);
}

TEST(SharedThresholdWr, SurvivesFullExpiryAndRefills) {
  SharedThresholdWrTracker tracker(Config(8), SamplingScheme::kPriority);
  Rng rng(2);
  Timestamp t = 1;
  for (int burst = 0; burst < 10; ++burst) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(3)),
                      RandomRow(&rng, 5, t)).ok());
      if (i % 2 == 0) ++t;
    }
    t += 1000;  // full expiry
    tracker.AdvanceTime(t);
    EXPECT_EQ(tracker.SamplersWithSample(), 0);
  }
}

TEST(SharedThresholdWr, FarFewerBroadcastsThanIndependentThresholds) {
  const TrackerConfig config = Config(24);
  SyntheticConfig data;
  data.rows = 3000;
  data.dim = 5;
  SyntheticGenerator gen(data);
  const std::vector<TimedRow> rows = Materialize(&gen, data.rows);

  auto shared = MakeTracker(Algorithm::kPwrShared, config);
  auto independent = MakeTracker(Algorithm::kPwr, config);
  DriverOptions options;
  options.query_points = 3;
  const StatusOr<RunResult> rs =
      RunTracker(shared.value().get(), rows, 3, config.window, options);
  const StatusOr<RunResult> ri =
      RunTracker(independent.value().get(), rows, 3, config.window, options);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(ri.ok());

  // The whole point of threshold sharing ([2]): one broadcast serves all
  // l samplers instead of one per sampler.
  EXPECT_LT(rs.value().broadcasts * 4, ri.value().broadcasts);
  EXPECT_GT(rs.value().broadcasts, 0);
}

TEST(SharedThresholdWr, EstimatorAccuracyComparableToIndependentWr) {
  const int d = 5;
  const Timestamp window = 500;
  TrackerConfig config = Config(64);
  config.window = window;

  SharedThresholdWrTracker tracker(config, SamplingScheme::kPriority);
  ExactWindow exact(d, window);
  Rng rng(3);
  double err = 1.0;
  for (int i = 1; i <= 2500; ++i) {
    TimedRow row = RandomRow(&rng, d, i);
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(3)), row).ok());
    exact.Add(row);
    exact.Advance(i);
    if (i == 2500) {
      err = CovarianceErrorOfSketch(exact.Covariance(),
                                    tracker.Query().Rows(),
                                    exact.FrobeniusSquared());
    }
  }
  EXPECT_LT(err, 0.5);  // ~1/sqrt(64) scale with generous slack
}

TEST(SharedThresholdWr, EsSchemeWorksToo) {
  SharedThresholdWrTracker tracker(Config(8),
                                   SamplingScheme::kEfraimidisSpirakis);
  EXPECT_EQ(tracker.Name(), "ESWR-ST");
  Rng rng(4);
  for (int i = 1; i <= 800; ++i) {
    EXPECT_TRUE(tracker.Observe(static_cast<int>(rng.NextBelow(3)), RandomRow(&rng, 5, i)).ok());
  }
  EXPECT_EQ(tracker.SamplersWithSample(), 8);
  EXPECT_GT(tracker.Comm().TotalWords(), 0);
}

TEST(SharedThresholdWr, FactoryRoundTrip) {
  for (Algorithm a : {Algorithm::kPwrShared, Algorithm::kEswrShared}) {
    const auto parsed = ParseAlgorithm(AlgorithmName(a));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), a);
    auto tracker = MakeTracker(a, Config(4));
    ASSERT_TRUE(tracker.ok());
    EXPECT_EQ(tracker.value()->Name(), AlgorithmName(a));
  }
}

}  // namespace
}  // namespace dswm
