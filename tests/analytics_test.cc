// Analytics built on the serving tier: every scorer/basis/detector is
// constructed from a pinned snapshot of a single-version SnapshotStore
// (the snapshot-API successor of the old matrix-style constructors).

#include <cmath>

#include <gtest/gtest.h>

#include "analytics/anomaly_scorer.h"
#include "analytics/approx_pca.h"
#include "analytics/change_detector.h"
#include "common/rng.h"
#include "core/covariance_estimate.h"
#include "linalg/qr.h"
#include "serve/snapshot_store.h"

namespace dswm {
namespace {

// Rows concentrated in the span of `basis` (k x d) plus small noise.
Matrix RowsInSubspace(const Matrix& basis, int n, double noise,
                      uint64_t seed) {
  Rng rng(seed);
  const int d = basis.cols();
  const int k = basis.rows();
  Matrix rows(n, d);
  for (int i = 0; i < n; ++i) {
    for (int c = 0; c < k; ++c) {
      Axpy(rng.NextGaussian() * (k - c), basis.Row(c), rows.Row(i), d);
    }
    for (int j = 0; j < d; ++j) rows(i, j) += noise * rng.NextGaussian();
  }
  return rows;
}

// One published version, pinned: the snapshot-API equivalent of handing a
// sketch matrix straight to an analytics constructor.
struct Published {
  explicit Published(Matrix rows) : reader(&store) {
    status = store.Publish(CovarianceEstimate::FromRows(std::move(rows)),
                           /*published_at=*/100, /*window=*/100);
    if (status.ok()) ref = reader.Pin();
  }

  serve::SnapshotStore store;
  serve::SnapshotReader reader;
  Status status = Status::OK();
  serve::SnapshotRef ref;
};

TEST(ApproxPca, RecoversPlantedSubspace) {
  const int d = 16;
  const int k = 3;
  Rng rng(1);
  const Matrix basis = RandomOrthonormalRows(k, d, &rng);
  Published data(RowsInSubspace(basis, 400, 0.01, 2));
  ASSERT_TRUE(data.status.ok());

  const auto pca = ApproxPca::FromSnapshot(data.ref, k);
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ(pca.value().components(), k);
  EXPECT_GT(pca.value().captured_fraction(), 0.99);

  // The recovered basis must span the planted one.
  Published planted_snapshot(basis);
  const auto planted = ApproxPca::FromSnapshot(planted_snapshot.ref, k);
  ASSERT_TRUE(planted.ok());
  EXPECT_GT(pca.value().Affinity(planted.value()), 0.99);
}

TEST(ApproxPca, ExplainedVarianceDescending) {
  Rng rng(3);
  Matrix rows(60, 8);
  for (int i = 0; i < 60; ++i) {
    for (int j = 0; j < 8; ++j) rows(i, j) = rng.NextGaussian() * (8 - j);
  }
  Published data(std::move(rows));
  const auto pca = ApproxPca::FromSnapshot(data.ref, 8);
  ASSERT_TRUE(pca.ok());
  const auto& ev = pca.value().explained_variance();
  for (size_t i = 1; i < ev.size(); ++i) EXPECT_GE(ev[i - 1], ev[i]);
}

TEST(ApproxPca, ProjectAndReconstructionError) {
  Matrix basis(1, 3);
  basis(0, 0) = 1.0;  // e1
  Published data(std::move(basis));
  const auto pca = ApproxPca::FromSnapshot(data.ref, 1);
  ASSERT_TRUE(pca.ok());
  const double x[] = {2.0, 3.0, 0.0};
  const auto coeffs = pca.value().Project(x);
  ASSERT_EQ(coeffs.size(), 1u);
  EXPECT_NEAR(std::fabs(coeffs[0]), 2.0, 1e-12);
  EXPECT_NEAR(pca.value().ReconstructionError(x), 9.0, 1e-12);
}

TEST(ApproxPca, RankDeficientKeepsFewerComponents) {
  Matrix rows(2, 5);
  rows(0, 2) = 1.0;
  rows(1, 2) = 2.0;  // rank 1
  Published data(std::move(rows));
  const auto pca = ApproxPca::FromSnapshot(data.ref, 4);
  ASSERT_TRUE(pca.ok());
  EXPECT_EQ(pca.value().components(), 1);
}

TEST(ApproxPca, RejectsBadKAndEmptyRef) {
  Published data(Matrix(2, 2));
  EXPECT_FALSE(ApproxPca::FromSnapshot(data.ref, 0).ok());
  EXPECT_FALSE(ApproxPca::FromSnapshot(serve::SnapshotRef(), 2).ok());
}

TEST(ApproxPca, AffinityOrthogonalSubspacesIsZero) {
  Matrix e1(1, 4);
  e1(0, 0) = 1.0;
  Matrix e2(1, 4);
  e2(0, 1) = 1.0;
  Published pub_a(std::move(e1));
  Published pub_b(std::move(e2));
  const auto a = ApproxPca::FromSnapshot(pub_a.ref, 1);
  const auto b = ApproxPca::FromSnapshot(pub_b.ref, 1);
  EXPECT_NEAR(a.value().Affinity(b.value()), 0.0, 1e-12);
  EXPECT_NEAR(a.value().Affinity(a.value()), 1.0, 1e-12);
}

TEST(ChangeDetector, FlagsSubspaceRotationOnly) {
  const int d = 12;
  Rng rng(9);
  const Matrix basis_a = RandomOrthonormalRows(3, d, &rng);
  const Matrix basis_b = RandomOrthonormalRows(3, d, &rng);

  // One store, many versions: the detector freezes its reference from
  // version 1 and each Update() pins the then-latest version.
  serve::SnapshotStore store;
  serve::SnapshotReader reader(&store);
  auto publish = [&](Matrix rows, Timestamp at) {
    return store.Publish(CovarianceEstimate::FromRows(std::move(rows)), at,
                         /*window=*/100);
  };
  ASSERT_TRUE(publish(RowsInSubspace(basis_a, 300, 0.02, 10), 100).ok());

  ChangeDetectorOptions options;
  options.components = 3;
  options.calibration_updates = 3;
  auto detector = ChangeDetector::FromSnapshot(reader.Pin(), options);
  ASSERT_TRUE(detector.ok());
  EXPECT_EQ(detector.value().reference_version(), 1u);

  // Quiet period: same subspace, fresh noise.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        publish(RowsInSubspace(basis_a, 300, 0.02, 20 + i), 200 + i).ok());
    const auto dist = detector.value().Update(reader.Pin());
    ASSERT_TRUE(dist.ok());
    EXPECT_LT(dist.value(), 0.05);
  }
  EXPECT_FALSE(detector.value().change_detected());

  // Rotated subspace: must flag.
  ASSERT_TRUE(publish(RowsInSubspace(basis_b, 300, 0.02, 30), 300).ok());
  ASSERT_TRUE(detector.value().Update(reader.Pin()).ok());
  EXPECT_TRUE(detector.value().change_detected());
  EXPECT_GT(detector.value().last_distance(), 0.3);

  detector.value().Reset();
  EXPECT_FALSE(detector.value().change_detected());
}

TEST(ChangeDetector, RejectsZeroRankReference) {
  Published data(Matrix(2, 4));  // all-zero rows: rank 0
  ASSERT_TRUE(data.status.ok());
  EXPECT_FALSE(
      ChangeDetector::FromSnapshot(data.ref, ChangeDetectorOptions()).ok());
}

TEST(AnomalyScorer, UnexcitedDirectionsScoreHigh) {
  const int d = 10;
  Rng rng(5);
  const Matrix basis = RandomOrthonormalRows(2, d, &rng);
  Published data(RowsInSubspace(basis, 500, 0.0, 6));

  const auto scorer = AnomalyScorer::FromSnapshot(data.ref, 0.01);
  ASSERT_TRUE(scorer.ok());

  // A point inside the excited subspace.
  std::vector<double> inside(basis.Row(0), basis.Row(0) + d);
  // A point orthogonal to it (Gram-Schmidt a random vector).
  std::vector<double> outside(d);
  for (double& v : outside) v = rng.NextGaussian();
  for (int c = 0; c < 2; ++c) {
    const double proj = Dot(outside.data(), basis.Row(c), d);
    Axpy(-proj, basis.Row(c), outside.data(), d);
  }
  const double norm = std::sqrt(NormSquared(outside.data(), d));
  Scale(outside.data(), d, 1.0 / norm);

  EXPECT_GT(scorer.value().Score(outside.data()),
            20.0 * scorer.value().Score(inside.data()));
}

TEST(AnomalyScorer, RowsMatchCovarianceConstruction) {
  // The same window published in rows form and in covariance form must
  // score identically (both routes share C = B^T B).
  Rng rng(7);
  Matrix rows(40, 6);
  for (int i = 0; i < 40; ++i) {
    for (int j = 0; j < 6; ++j) rows(i, j) = rng.NextGaussian();
  }
  const Matrix gram = GramTranspose(rows);
  Published from_rows(std::move(rows));

  serve::SnapshotStore cov_store;
  serve::SnapshotReader cov_reader(&cov_store);
  ASSERT_TRUE(cov_store
                  .Publish(CovarianceEstimate::FromCovariance(gram), 100, 100)
                  .ok());
  const serve::SnapshotRef cov_ref = cov_reader.Pin();

  const auto a = AnomalyScorer::FromSnapshot(from_rows.ref, 0.05);
  const auto b = AnomalyScorer::FromSnapshot(cov_ref, 0.05);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<double> x(6);
  for (double& v : x) v = rng.NextGaussian();
  EXPECT_NEAR(a.value().Score(x.data()), b.value().Score(x.data()),
              1e-9 * a.value().Score(x.data()));
}

TEST(AnomalyScorer, RejectsBadInput) {
  Published data(Matrix(3, 3));
  EXPECT_FALSE(AnomalyScorer::FromSnapshot(data.ref, 0.0).ok());
  EXPECT_FALSE(AnomalyScorer::FromSnapshot(serve::SnapshotRef(), 0.01).ok());
  // An empty estimate cannot even be published.
  serve::SnapshotStore store;
  EXPECT_FALSE(store.Publish(CovarianceEstimate(), 100, 100).ok());
}

}  // namespace
}  // namespace dswm
