// libFuzzer harness for the CSV loader (stream/csv_loader.h).
//
// The first input byte selects the parse options (delimiter, header skip,
// timestamp column and scale), so one corpus covers every configuration
// the CLI can reach; the rest is the file content. Checked properties:
//   1. ParseCsv never crashes, over-reads, or aborts on arbitrary bytes
//      (Status is the only legal rejection path).
//   2. An accepted parse yields structurally sane rows: uniform dimension
//      and non-decreasing synthetic timestamps when timestamp_column is
//      -1 (file order), which downstream window code relies on.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/check.h"
#include "stream/csv_loader.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const uint8_t opts_byte = data[0];
  const char* content_begin =
      static_cast<const char*>(static_cast<const void*>(data)) + 1;
  const std::string content(content_begin, size - 1);

  dswm::CsvOptions options;
  constexpr char kDelims[] = {',', ';', '\t', ' '};
  options.delimiter = kDelims[opts_byte & 0x3];
  options.skip_header = (opts_byte & 0x4) != 0;
  options.timestamp_column = ((opts_byte >> 3) & 0x3) - 1;  // -1..2
  options.timestamp_scale = (opts_byte & 0x20) != 0 ? 100.0 : 1.0;

  dswm::StatusOr<std::vector<dswm::TimedRow>> rows =
      dswm::ParseCsv(content, options);
  if (!rows.ok()) return 0;

  const std::vector<dswm::TimedRow>& parsed = rows.value();
  for (size_t i = 0; i < parsed.size(); ++i) {
    DSWM_CHECK_EQ(parsed[i].values.size(), parsed[0].values.size());
    if (options.timestamp_column == -1 && i > 0) {
      DSWM_CHECK_GE(parsed[i].timestamp, parsed[i - 1].timestamp);
    }
  }
  return 0;
}
