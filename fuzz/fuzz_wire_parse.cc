// libFuzzer harness for the wire-format parser (net/wire.h).
//
// Properties checked on every input, not just "does not crash":
//   1. ParseMessage never reads out of bounds and never aborts on
//      arbitrary bytes (ASan/UBSan catch the former; a DSWM_CHECK inside
//      the parser would abort and count as a finding).
//   2. Any frame that parses OK re-serializes to a canonical frame that
//      (a) parses OK, (b) has the same kind and word cost, and
//      (c) is a fixed point: serialize(parse(canonical)) == canonical.
//      This pins the parser and serializer to each other, so a lenient
//      parse path that fabricates unserializable state is a crash here.
//
// Built under -fsanitize=fuzzer on clang; under any other toolchain the
// standalone driver (standalone_driver.cc) provides main() with corpus
// replay and a deterministic mutation mode, so the committed corpus runs
// as an ordinary ctest everywhere (see fuzz/CMakeLists.txt).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "net/wire.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  using dswm::net::KindOf;
  using dswm::net::ParseMessage;
  using dswm::net::PayloadWords;
  using dswm::net::SerializeMessage;
  using dswm::net::WireMessage;

  dswm::StatusOr<WireMessage> parsed = ParseMessage(data, size);
  if (!parsed.ok()) return 0;  // malformed input correctly rejected

  // Canonicalize: the parsed message must survive its own serialization.
  const WireMessage& msg = parsed.value();
  std::vector<uint8_t> canonical;
  SerializeMessage(msg, &canonical);

  dswm::StatusOr<WireMessage> reparsed =
      ParseMessage(canonical.data(), canonical.size());
  DSWM_CHECK(reparsed.ok());
  DSWM_CHECK(KindOf(reparsed.value()) == KindOf(msg));
  DSWM_CHECK_EQ(PayloadWords(reparsed.value()), PayloadWords(msg));

  // Fixed point: a canonical frame re-serializes byte-identically.
  std::vector<uint8_t> twice;
  SerializeMessage(reparsed.value(), &twice);
  DSWM_CHECK(twice == canonical);
  return 0;
}
