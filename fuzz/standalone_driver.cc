// Standalone driver for the fuzz harnesses when libFuzzer is unavailable
// (any non-clang toolchain). Provides main() over the same
// LLVMFuzzerTestOneInput entry point with a libFuzzer-compatible surface:
//
//   fuzz_foo -runs=0   DIR|FILE...    replay corpus inputs (regression)
//   fuzz_foo -runs=N   DIR|FILE...    replay, then N deterministic
//                                     mutations of the corpus (smoke fuzz)
//   fuzz_foo -seed=S   ...            mutation seed (default 1)
//
// The mutation loop is a deliberately simple byte-level fuzzer (flips,
// truncations, duplications, splices, interesting-value stamps) driven by
// a self-contained splitmix64 so runs replay bit-identically; it is a
// smoke layer, not a coverage-guided engine -- real fuzzing runs happen
// under clang/libFuzzer with the same harness object file.
//
// Exit status: 0 when every input ran clean; a harness property violation
// aborts (DSWM_CHECK), and ASan/UBSan abort on memory/UB findings, so any
// finding fails the enclosing ctest.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<uint8_t> ReadFile(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::vector<uint8_t> bytes;
  char c;
  while (in.get(c)) bytes.push_back(static_cast<uint8_t>(c));
  *ok = true;
  return bytes;
}

/// One deterministic mutation of `base` (never grows past 1 MiB).
std::vector<uint8_t> Mutate(const std::vector<uint8_t>& base,
                            uint64_t* state) {
  std::vector<uint8_t> out = base;
  const int kind = static_cast<int>(SplitMix64(state) % 6);
  const auto pos = [&](size_t span) -> size_t {
    return span == 0 ? 0 : static_cast<size_t>(SplitMix64(state) % span);
  };
  switch (kind) {
    case 0:  // flip one byte
      if (!out.empty()) out[pos(out.size())] ^= static_cast<uint8_t>(
          1u << (SplitMix64(state) % 8));
      break;
    case 1:  // truncate
      if (!out.empty()) out.resize(pos(out.size()));
      break;
    case 2: {  // insert a random byte
      const size_t at = pos(out.size() + 1);
      out.insert(out.begin() + static_cast<long>(at),
                 static_cast<uint8_t>(SplitMix64(state)));
      break;
    }
    case 3: {  // stamp an "interesting" 32-bit value
      static constexpr uint32_t kInteresting[] = {
          0u, 1u, 0x7fu, 0x80u, 0xffu, 0x7fffu, 0xffffu, 0x7fffffffu,
          0x80000000u, 0xffffffffu};
      if (out.size() >= 4) {
        const uint32_t v = kInteresting[SplitMix64(state) %
                                        (sizeof(kInteresting) / 4)];
        std::memcpy(&out[pos(out.size() - 3)], &v, 4);
      }
      break;
    }
    case 4: {  // duplicate a slice
      if (!out.empty() && out.size() < (1u << 20)) {
        const size_t a = pos(out.size());
        const size_t len = pos(out.size() - a) + 1;
        out.insert(out.begin() + static_cast<long>(pos(out.size() + 1)),
                   out.begin() + static_cast<long>(a),
                   out.begin() + static_cast<long>(a + len));
      }
      break;
    }
    default:  // overwrite with a run of one byte
      if (!out.empty()) {
        const size_t a = pos(out.size());
        const size_t len = std::min(out.size() - a, pos(16) + 1);
        std::memset(&out[a], static_cast<int>(SplitMix64(state) & 0xff),
                    len);
      }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  long runs = 0;
  uint64_t seed = 1;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-runs=", 0) == 0) {
      runs = std::atol(arg.c_str() + 6);
    } else if (arg.rfind("-seed=", 0) == 0) {
      seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 6));
    } else if (!arg.empty() && arg[0] == '-') {
      // Ignore other libFuzzer-style flags so ctest invocations stay
      // engine-portable.
    } else {
      inputs.push_back(arg);
    }
  }

  // Expand directories into sorted file lists so replay order (and the
  // mutation stream below) is deterministic across filesystems.
  std::vector<std::string> files;
  for (const std::string& input : inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(input, ec)) {
      for (const auto& entry : std::filesystem::directory_iterator(input)) {
        if (entry.is_regular_file()) files.push_back(entry.path().string());
      }
    } else {
      files.push_back(input);
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<std::vector<uint8_t>> corpus;
  for (const std::string& path : files) {
    bool ok = false;
    std::vector<uint8_t> bytes = ReadFile(path, &ok);
    if (!ok) {
      std::fprintf(stderr, "fuzz driver: cannot read %s\n", path.c_str());
      return 2;
    }
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    corpus.push_back(std::move(bytes));
  }
  std::printf("replayed %zu corpus input(s)\n", corpus.size());

  if (runs > 0 && !corpus.empty()) {
    uint64_t state = seed;
    for (long i = 0; i < runs; ++i) {
      const std::vector<uint8_t>& base =
          corpus[SplitMix64(&state) % corpus.size()];
      std::vector<uint8_t> mutated = Mutate(base, &state);
      // Occasionally splice two corpus entries head-to-tail.
      if ((SplitMix64(&state) & 7) == 0) {
        const std::vector<uint8_t>& other =
            corpus[SplitMix64(&state) % corpus.size()];
        mutated.insert(mutated.end(), other.begin(),
                       other.begin() + static_cast<long>(
                           other.size() / 2));
      }
      LLVMFuzzerTestOneInput(mutated.data(), mutated.size());
    }
    std::printf("executed %ld mutation run(s) (seed %llu)\n", runs,
                static_cast<unsigned long long>(seed));
  }
  return 0;
}
