// Regenerates the committed fuzz seed corpus (fuzz/corpus/...).
//
//   build/fuzz/fuzz_make_seed_corpus <repo-root>/fuzz/corpus
//
// One valid frame per wire message kind plus structured near-misses
// (truncations, bad tags, inflated counts), and CSV seeds covering every
// option nibble the harness decodes. Deterministic output: regenerating
// over an unchanged wire format is a no-op diff.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "net/wire.h"

namespace {

bool WriteBytes(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  for (uint8_t b : bytes) out.put(static_cast<char>(b));
  return static_cast<bool>(out);
}

bool WriteText(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << text;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dswm::net;
  if (argc != 2) {
    std::fprintf(stderr, "usage: fuzz_make_seed_corpus <corpus-dir>\n");
    return 2;
  }
  const std::filesystem::path root = argv[1];
  std::filesystem::create_directories(root / "wire");
  std::filesystem::create_directories(root / "csv");

  std::vector<std::pair<std::string, WireMessage>> messages;
  RowUploadMsg row;
  row.values = {1.0, -2.5, 3.25, 0.0};
  row.timestamp = 42;
  row.support = {0, 2, 3};
  row.has_key = true;
  row.key = 0.125;
  row.has_sampler = true;
  row.sampler = 7;
  messages.emplace_back("row_upload", row);
  RowUploadMsg row_plain;
  row_plain.values = {5.0, 6.0};
  row_plain.timestamp = 1;
  messages.emplace_back("row_upload_plain", row_plain);
  messages.emplace_back("retrieve_request", RetrieveRequestMsg{0.5});
  messages.emplace_back("retrieve_response", RetrieveResponseMsg{-1.75});
  messages.emplace_back("threshold_broadcast", ThresholdBroadcastMsg{2.0});
  EigenpairMsg eig;
  eig.lambda = 3.5;
  eig.vector = {0.5, 0.5, -0.5, 0.5};
  messages.emplace_back("eigenpair", eig);
  Da2DeltaMsg da2;
  da2.direction = {1.0, 0.0, -1.0};
  da2.timestamp = 99;
  da2.flag = -1;
  messages.emplace_back("da2_delta", da2);
  messages.emplace_back("sum_delta", SumDeltaMsg{12.5});
  messages.emplace_back("expiry_notice", ExpiryNoticeMsg{1234});
  messages.emplace_back("ack", AckMsg{77});

  int failures = 0;
  std::vector<uint8_t> frame;
  for (const auto& [name, msg] : messages) {
    SerializeMessage(msg, &frame);
    if (!WriteBytes((root / "wire" / (name + ".bin")).string(), frame)) {
      ++failures;
    }
  }

  // Structured near-misses: the shapes a parser most plausibly mishandles.
  SerializeMessage(RetrieveRequestMsg{1.0}, &frame);
  std::vector<uint8_t> truncated(frame.begin(), frame.begin() + 6);
  if (!WriteBytes((root / "wire" / "truncated_header.bin").string(),
                  truncated)) {
    ++failures;
  }
  std::vector<uint8_t> bad_kind = frame;
  bad_kind[0] = 0xee;  // outside [kMinMessageKind, kMaxMessageKind]
  if (!WriteBytes((root / "wire" / "bad_kind.bin").string(), bad_kind)) {
    ++failures;
  }
  std::vector<uint8_t> inflated = frame;
  inflated[4] = 0xff;  // payload_words claims far more than is present
  inflated[5] = 0xff;
  if (!WriteBytes((root / "wire" / "inflated_words.bin").string(),
                  inflated)) {
    ++failures;
  }
  std::vector<uint8_t> wrong_version = frame;
  wrong_version[2] = static_cast<uint8_t>(kWireFormatVersion + 1);
  if (!WriteBytes((root / "wire" / "wrong_version.bin").string(),
                  wrong_version)) {
    ++failures;
  }
  std::vector<uint8_t> version_zero = frame;
  version_zero[2] = 0;  // the pre-versioning layout's reserved bytes
  version_zero[3] = 0;
  if (!WriteBytes((root / "wire" / "version_zero.bin").string(),
                  version_zero)) {
    ++failures;
  }
  // A frame with every sequence byte set: the parser must treat the
  // transport sequence as opaque payload, never as structure.
  SerializeMessage(AckMsg{77}, &frame, ~0ULL);
  if (!WriteBytes((root / "wire" / "sequenced_ack.bin").string(), frame)) {
    ++failures;
  }
  if (!WriteBytes((root / "wire" / "empty.bin").string(), {})) ++failures;

  // CSV seeds: first byte = option selector (see fuzz_csv_parse.cc).
  const std::pair<std::string, std::string> csvs[] = {
      {"comma_plain", std::string(1, '\x00') + "1,2,3\n4,5,6\n7,8,9\n"},
      {"semicolon", std::string(1, '\x01') + "1;2\n3;4\n"},
      {"tab_header", std::string(1, '\x06') + "a\tb\n1\t2\n3\t4\n"},
      {"ts_column", std::string(1, '\x08') + "10,1,2\n20,3,4\n30,5,6\n"},
      {"ts_scaled", std::string(1, '\x28') + "0.5,1\n1.0,2\n1.5,3\n"},
      {"ragged", std::string(1, '\x00') + "1,2,3\n4,5\n"},
      {"bad_number", std::string(1, '\x00') + "1,banana\n"},
      {"empty", std::string(1, '\x00')},
      {"negatives", std::string(1, '\x00') + "-1e300,2.5e-10\nnan,inf\n"},
  };
  for (const auto& [name, text] : csvs) {
    if (!WriteText((root / "csv" / (name + ".csv")).string(), text)) {
      ++failures;
    }
  }

  if (failures != 0) {
    std::fprintf(stderr, "fuzz_make_seed_corpus: %d write failure(s)\n",
                 failures);
    return 1;
  }
  std::printf("seed corpus written under %s\n", root.string().c_str());
  return 0;
}
