#!/usr/bin/env python3
"""Self-test for tools/dswm_semlint.py against the committed fixtures.

Every rule ships at least one violating (`bad_*`) and one clean (`ok_*`)
fixture under tests/semlint_fixtures/<rule>/. Each fixture's first line
declares the in-tree path it impersonates:

    // semlint-fixture-path: src/core/bad_unordered.cc

The test stages all fixtures into a temporary tree at those paths (the
directory-scoped rules only fire on realistic locations), runs the
linter over the staged tree with the built-in frontend, and asserts:

  * every bad fixture yields >= 1 violation of its own rule,
  * no ok fixture yields any violation of its own rule,
  * a staging of only the ok fixtures exits 0 (fully clean), and
  * the grandfather lists in the linter source are empty.

Run directly or via ctest (dswm_semlint_selftest):
    tools/dswm_semlint_test.py --root <repo-root>
"""

import argparse
import pathlib
import re
import shutil
import subprocess
import sys
import tempfile

FIXTURE_PATH_RE = re.compile(r"//\s*semlint-fixture-path:\s*(\S+)")
VIOLATION_RE = re.compile(r"^(\S+?):(\d+): \[([\w-]+)\] ")


def load_fixtures(fixture_root):
    """[(rule, is_bad, fixture_file, pretend_relpath)]"""
    fixtures = []
    for rule_dir in sorted(fixture_root.iterdir()):
        if not rule_dir.is_dir():
            continue
        for f in sorted(rule_dir.glob("*.cc")):
            first = f.read_text(encoding="utf-8").splitlines()[0]
            m = FIXTURE_PATH_RE.search(first)
            if not m:
                raise SystemExit(
                    f"{f}: missing '// semlint-fixture-path: ...' header")
            is_bad = f.name.startswith("bad_")
            if not is_bad and not f.name.startswith("ok_"):
                raise SystemExit(f"{f}: fixture name must start bad_ or ok_")
            fixtures.append((rule_dir.name, is_bad, f,
                             pathlib.PurePosixPath(m.group(1))))
    return fixtures


def stage(fixtures, stage_dir):
    (stage_dir / "src").mkdir(parents=True, exist_ok=True)
    for (_, _, f, rel) in fixtures:
        dest = stage_dir / rel
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(f, dest)


def run_semlint(linter, stage_dir):
    proc = subprocess.run(
        [sys.executable, str(linter), "--root", str(stage_dir),
         "--frontend", "builtin"],
        capture_output=True, text=True)
    violations = {}  # relpath -> set of rules
    for line in proc.stdout.splitlines():
        m = VIOLATION_RE.match(line)
        if m:
            violations.setdefault(m.group(1), set()).add(m.group(3))
    return proc, violations


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--root", default=".")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    linter = root / "tools" / "dswm_semlint.py"
    fixture_root = root / "tests" / "semlint_fixtures"
    if not linter.is_file() or not fixture_root.is_dir():
        print("semlint selftest: repo layout not found under --root",
              file=sys.stderr)
        return 2

    fixtures = load_fixtures(fixture_root)
    rules = {rule for (rule, _, _, _) in fixtures}
    for rule in sorted(rules):
        kinds = {is_bad for (r, is_bad, _, _) in fixtures if r == rule}
        if kinds != {True, False}:
            print(f"semlint selftest: rule '{rule}' needs both a bad_ and "
                  "an ok_ fixture", file=sys.stderr)
            return 2

    failures = []

    # Grandfather lists must be empty (the run_checks.sh gate relies on it).
    src = linter.read_text(encoding="utf-8")
    block = re.search(r"GRANDFATHERED = \{(.*?)\n\}", src, re.S)
    if not block or re.search(r":\s*\{\s*\"", block.group(1)):
        failures.append("GRANDFATHERED lists in dswm_semlint.py are missing "
                        "or non-empty")

    with tempfile.TemporaryDirectory(prefix="semlint_fixtures_") as tmp:
        stage_dir = pathlib.Path(tmp) / "all"
        stage(fixtures, stage_dir)
        proc, violations = run_semlint(linter, stage_dir)
        if proc.returncode not in (0, 1):
            print(proc.stdout + proc.stderr, file=sys.stderr)
            print(f"semlint selftest: linter exited {proc.returncode}",
                  file=sys.stderr)
            return 2
        for (rule, is_bad, f, rel) in fixtures:
            hit = rule in violations.get(str(rel), set())
            if is_bad and not hit:
                failures.append(f"{f.name}: expected a '{rule}' violation "
                                f"at {rel}, got none")
            if not is_bad and hit:
                failures.append(f"{f.name}: unexpected '{rule}' violation "
                                f"at {rel}")

        # The clean half alone must produce a fully green run.
        ok_only = [fx for fx in fixtures if not fx[1]]
        ok_dir = pathlib.Path(tmp) / "ok_only"
        stage(ok_only, ok_dir)
        proc_ok, violations_ok = run_semlint(linter, ok_dir)
        if proc_ok.returncode != 0:
            detail = "; ".join(f"{p}: {sorted(rs)}"
                               for p, rs in sorted(violations_ok.items()))
            failures.append("ok-only staging should be clean but exited "
                            f"{proc_ok.returncode} ({detail})")

    if failures:
        for f in failures:
            print(f"FAIL: {f}")
        print(f"semlint selftest: {len(failures)} failure(s)")
        return 1
    bad_n = sum(1 for (_, b, _, _) in fixtures if b)
    print(f"semlint selftest: OK ({len(rules)} rules, {bad_n} violating + "
          f"{len(fixtures) - bad_n} clean fixtures)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
