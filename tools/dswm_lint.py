#!/usr/bin/env python3
"""Repo-invariant linter for the dswm codebase.

Enforces determinism and style rules the paper reproduction depends on,
beyond what the compiler and clang-tidy check:

  R1 rng-outside-common     No rand()/srand()/std::random_device/<random>
                            engines outside common/rng.h. Every random draw
                            must flow through the seeded dswm::Rng so
                            experiments replay bit-identically.
  R2 no-exceptions          No throw/try/catch anywhere. Fallible operations
                            return Status/StatusOr (common/status.h);
                            contract violations use DSWM_CHECK.
  R3 header-guard           Every header's include guard is derived from its
                            path: src/linalg/matrix.h -> DSWM_LINALG_MATRIX_H_
                            (the src/ prefix is stripped; other roots keep
                            their directory name).
  R4 float-eq-in-tests      No EXPECT_EQ/ASSERT_EQ whose argument is a
                            floating-point literal; windowed-sketch estimates
                            carry rounding, so tests must state a tolerance
                            (EXPECT_NEAR) or an exactness claim
                            (EXPECT_DOUBLE_EQ).
  R5 raw-thread-outside-common  (RETIRED here -- moved to the AST-level
                            linter tools/dswm_semlint.py, which matches
                            tokens instead of text and shares suppression
                            markers with this tool.)
  R6 comm-outside-net       (RETIRED here -- moved to tools/dswm_semlint.py,
                            which requires a real member-call receiver.)
  R7 raw-timing-outside-obs No Stopwatch/std::chrono timing outside
                            src/common/ and src/obs/. Phase timing flows
                            through obs::Span (obs/span.h) so wall-clock
                            metrics sit behind the single enabled gate and
                            the .wall_ns naming convention; ad-hoc timers
                            would be invisible to --metrics-json and to the
                            determinism contract's wall-time exclusion.

Exit status: 0 when clean, 1 when any violation is found, 2 on usage error.
Suppress a single line with a trailing `// dswm-lint: allow(<rule>)`.
"""

import argparse
import pathlib
import re
import sys

LINT_DIRS = ("src", "tests", "bench", "examples", "tools", "fuzz")
CPP_SUFFIXES = (".h", ".cc", ".cpp")
# Semlint fixtures deliberately violate rules; dswm_semlint_test.py lints
# them from a staged tree.
EXCLUDED_PREFIXES = (("tests", "semlint_fixtures"),)

RNG_ALLOWED = {pathlib.PurePosixPath("src/common/rng.h")}
RNG_PATTERN = re.compile(
    r"std::random_device|std::mt19937|std::minstd_rand|std::ranlux"
    r"|(?<![\w:])s?rand\s*\(")
EXCEPTION_PATTERN = re.compile(r"(?<![\w:])(throw|try|catch)(?![\w])")
FLOAT_LITERAL = re.compile(
    r"^[-+]?(\d+\.\d*|\.\d+)(e[-+]?\d+)?[fl]?$|^[-+]?\d+e[-+]?\d+[fl]?$",
    re.IGNORECASE)
EQ_MACRO = re.compile(r"\b(EXPECT_EQ|ASSERT_EQ)\s*\(")
# Raw timing primitives. Confined to src/common/ (Stopwatch's home) and
# src/obs/ (the Span implementation). Grandfather list: empty -- the obs
# refactor routed every timing site through Span; keep it empty.
TIMING_PATTERN = re.compile(r"\bStopwatch\b|std::chrono\b")
TIMING_ALLOWED_PREFIXES = (("src", "common"), ("src", "obs"))
TIMING_GRANDFATHERED = set()
ALLOW = re.compile(r"//\s*dswm-lint:\s*allow\(([\w-]+)\)")


def strip_comments_and_strings(text):
    """Blanks out comments and string/char literals, preserving newlines and
    `dswm-lint: allow` markers so suppression still works."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            comment = text[i:j]
            m = ALLOW.search(comment)
            out.append(m.group(0) if m else "")
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("\n" * text.count("\n", i, j))
            i = j
        elif c == "'" and i > 0 and text[i - 1].isdigit() and \
                i + 1 < n and text[i + 1].isdigit():
            out.append(c)  # C++14 digit separator (1'000'000), not a literal
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def split_top_level_args(argtext):
    """Splits macro arguments at top-level commas (depth-0 w.r.t. parens,
    brackets, braces, and angle-free heuristics)."""
    args, depth, start = [], 0, 0
    for i, c in enumerate(argtext):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif c == "," and depth == 0:
            args.append(argtext[start:i])
            start = i + 1
    args.append(argtext[start:])
    return args


def extract_call_args(text, open_paren):
    """Returns (argtext, end_index) for the call whose '(' is at open_paren,
    or None if unbalanced (e.g. spans a macro line continuation we blanked)."""
    depth = 0
    for i in range(open_paren, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return text[open_paren + 1:i], i
    return None


class Reporter:
    def __init__(self):
        self.count = 0

    def report(self, path, line_no, rule, msg):
        self.count += 1
        print(f"{path}:{line_no}: [{rule}] {msg}")


def line_of(text, index):
    return text.count("\n", 0, index) + 1


def allowed(lines, line_no, rule):
    line = lines[line_no - 1] if line_no <= len(lines) else ""
    m = ALLOW.search(line)
    return bool(m and m.group(1) == rule)


def check_rng(path, stripped, lines, rep):
    if path in RNG_ALLOWED:
        return
    for m in RNG_PATTERN.finditer(stripped):
        ln = line_of(stripped, m.start())
        if allowed(lines, ln, "rng-outside-common"):
            continue
        rep.report(path, ln, "rng-outside-common",
                   f"'{m.group(0).strip()}' breaks replayability; draw from "
                   "a seeded dswm::Rng (common/rng.h) instead")


def check_exceptions(path, stripped, lines, rep):
    for m in EXCEPTION_PATTERN.finditer(stripped):
        ln = line_of(stripped, m.start())
        if allowed(lines, ln, "no-exceptions"):
            continue
        rep.report(path, ln, "no-exceptions",
                   f"'{m.group(1)}' found; this codebase is exception-free "
                   "-- return Status/StatusOr or DSWM_CHECK")


def check_raw_timing(path, stripped, lines, rep):
    if path.parts[:2] in TIMING_ALLOWED_PREFIXES or path in TIMING_GRANDFATHERED:
        return
    for m in TIMING_PATTERN.finditer(stripped):
        ln = line_of(stripped, m.start())
        if allowed(lines, ln, "raw-timing-outside-obs"):
            continue
        rep.report(path, ln, "raw-timing-outside-obs",
                   f"'{m.group(0)}' outside src/common/ and src/obs/; time "
                   "phases with obs::Span (obs/span.h) so wall-clock metrics "
                   "stay behind the enabled gate and the .wall_ns convention")


def expected_guard(path):
    parts = list(path.parts)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts)
    for suffix in CPP_SUFFIXES:
        if stem.endswith(suffix):
            stem = stem[: -len(suffix)]
    token = re.sub(r"[^0-9a-zA-Z]", "_", stem).upper()
    return f"DSWM_{token}_H_"


def check_header_guard(path, text, lines, rep):
    want = expected_guard(path)
    m = re.search(r"^#ifndef\s+(\S+)\s*\n#define\s+(\S+)", text, re.MULTILINE)
    if not m:
        if not allowed(lines, 1, "header-guard"):
            rep.report(path, 1, "header-guard",
                       f"missing #ifndef/#define include guard (want {want})")
        return
    ln = line_of(text, m.start())
    if allowed(lines, ln, "header-guard"):
        return
    if m.group(1) != want or m.group(2) != want:
        rep.report(path, ln, "header-guard",
                   f"guard is '{m.group(1)}', want '{want}'")
    elif f"#endif  // {want}" not in text:
        rep.report(path, len(lines), "header-guard",
                   f"closing '#endif  // {want}' comment missing")


def check_float_eq(path, stripped, lines, rep):
    for m in EQ_MACRO.finditer(stripped):
        call = extract_call_args(stripped, m.end() - 1)
        if call is None:
            continue
        argtext, _ = call
        ln = line_of(stripped, m.start())
        if allowed(lines, ln, "float-eq-in-tests"):
            continue
        for arg in split_top_level_args(argtext):
            if FLOAT_LITERAL.match(arg.strip()):
                rep.report(path, ln, "float-eq-in-tests",
                           f"{m.group(1)} against float literal "
                           f"'{arg.strip()}'; use EXPECT_NEAR(..., tol) or "
                           "EXPECT_DOUBLE_EQ")
                break


def lint_file(root, rel, rep):
    text = (root / rel).read_text(encoding="utf-8", errors="replace")
    lines = text.split("\n")
    stripped = strip_comments_and_strings(text)
    check_rng(rel, stripped, lines, rep)
    check_exceptions(rel, stripped, lines, rep)
    check_raw_timing(rel, stripped, lines, rep)
    if rel.suffix == ".h":
        check_header_guard(rel, text, lines, rep)
    if rel.parts[0] == "tests":
        check_float_eq(rel, stripped, lines, rep)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"dswm_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    rep = Reporter()
    files = []
    for top in LINT_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in CPP_SUFFIXES and p.is_file():
                rel = p.relative_to(root)
                if any(rel.parts[:len(e)] == e for e in EXCLUDED_PREFIXES):
                    continue
                files.append(rel)
    for rel in files:
        lint_file(root, pathlib.PurePosixPath(rel.as_posix()), rep)

    if rep.count:
        print(f"dswm_lint: {rep.count} violation(s) in {len(files)} files")
        return 1
    print(f"dswm_lint: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
