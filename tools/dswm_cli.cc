// dswm command-line tool.
//
//   dswm_cli run --dataset synthetic --algorithm DA2 --epsilon 0.05
//            --sites 20 [--rows N] [--window W] [--seed S]
//            [--queries Q] [--save-sketch out.mat] [--threads T]
//   dswm_cli run --csv data.csv [--timestamp-col 0] --algorithm PWOR ...
//   dswm_cli run ... --trace 1           # per-query-point error series
//   dswm_cli run ... --trace-jsonl t.jsonl   # full message-ledger dump
//   dswm_cli run ... --net-drop 0.01 --net-seed 7 [--net-dup P]
//            [--net-delay D] [--net-reliable 1 --net-retry R]
//   dswm_cli run ... --net-json 1        # wire/ledger metrics as JSON line
//   dswm_cli run ... --runtime lockstep|events|process [--wall-clock 1]
//   dswm_cli run ... --metrics-json -    # obs snapshot (spans + counters +
//            comm gauges) as one JSON document to stdout, or to a file path
//   dswm_cli sweep --dataset pamap --algorithms PWOR,DA2
//            --epsilons 0.2,0.1,0.05     # CSV to stdout
//   dswm_cli serve-bench [--algorithm DA2] [--rows N] [--dim D]
//            [--sites M] [--epsilon E] [--window W] [--readers R]
//            [--min-queries Q] [--seed S]   # closed-loop serving load
//   dswm_cli serve-bench --selfcheck 1      # metrics-invariance check only
//   dswm_cli datasets [--rows N]
//   dswm_cli algorithms
//
// Runs one tracking experiment and prints the paper's metrics (avg/max
// covariance error, words per window, per-site space, update rate).

#include <cstdio>
#include <memory>
#include <string>

#include "common/flags.h"
#include "common/thread_pool.h"
#include "core/tracker_factory.h"
#include "linalg/matrix_io.h"
#include "monitor/driver.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "serve/load_gen.h"
#include "stream/csv_loader.h"
#include "stream/pamap_like.h"
#include "stream/synthetic.h"
#include "stream/wiki_like.h"

namespace {

using namespace dswm;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Status WriteTextFile(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IoError("cannot open file: " + path);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const int close_rc = std::fclose(f);
  if (written != text.size() || close_rc != 0) {
    return Status::IoError("short write to file: " + path);
  }
  return Status::OK();
}

StatusOr<std::vector<TimedRow>> BuildDataset(const std::string& name,
                                             int rows, uint64_t seed) {
  if (name == "synthetic") {
    SyntheticConfig config;
    config.rows = rows > 0 ? rows : 50000;
    config.dim = 64;
    config.seed = seed;
    SyntheticGenerator gen(config);
    return Materialize(&gen, config.rows);
  }
  if (name == "pamap") {
    PamapLikeConfig config;
    config.rows = rows > 0 ? rows : 100000;
    config.seed = seed;
    PamapLikeGenerator gen(config);
    return Materialize(&gen, config.rows);
  }
  if (name == "wiki") {
    WikiLikeConfig config;
    config.rows = rows > 0 ? rows : 20000;
    config.seed = seed;
    WikiLikeGenerator gen(config);
    return Materialize(&gen, config.rows);
  }
  return Status::InvalidArgument("unknown dataset '" + name +
                                 "' (use synthetic|pamap|wiki)");
}

int CmdAlgorithms() {
  std::printf("available algorithms:\n");
  for (Algorithm a : PaperAlgorithms()) std::printf("  %s\n", AlgorithmName(a));
  std::printf("  PWR\n  ESWR\n  CENTRAL\n");
  return 0;
}

int CmdDatasets(const FlagSet& flags) {
  const int rows = static_cast<int>(flags.GetInt("rows", 0));
  std::printf("%-10s %10s %6s %10s %12s\n", "dataset", "rows", "d", "span",
              "ratio R");
  for (const char* name : {"pamap", "synthetic", "wiki"}) {
    auto data = BuildDataset(name, rows, 1);
    if (!data.ok()) return Fail(data.status());
    const Timestamp window =
        std::max<Timestamp>(1, (data.value().back().timestamp -
                                data.value().front().timestamp) /
                                   4);
    const DatasetSummary s = Summarize(data.value(), window);
    std::printf("%-10s %10d %6d %10lld %12.2f\n", name, s.rows, s.dim,
                static_cast<long long>(s.span), s.norm_ratio);
  }
  return 0;
}

int CmdRun(const FlagSet& flags) {
  const std::string algorithm_name = flags.GetString("algorithm", "DA2");
  auto algorithm = ParseAlgorithm(algorithm_name);
  if (!algorithm.ok()) return Fail(algorithm.status());

  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  std::vector<TimedRow> rows;
  if (flags.Has("csv")) {
    CsvOptions options;
    options.timestamp_column =
        static_cast<int>(flags.GetInt("timestamp-col", -1));
    auto loaded = LoadCsv(flags.GetString("csv", ""), options);
    if (!loaded.ok()) return Fail(loaded.status());
    rows = std::move(loaded).value();
  } else {
    auto built = BuildDataset(flags.GetString("dataset", "synthetic"),
                              static_cast<int>(flags.GetInt("rows", 0)),
                              seed);
    if (!built.ok()) return Fail(built.status());
    rows = std::move(built).value();
  }
  if (rows.empty()) return Fail(Status::InvalidArgument("empty dataset"));

  TrackerConfig config;
  config.dim = static_cast<int>(rows.front().values.size());
  config.num_sites = static_cast<int>(flags.GetInt("sites", 20));
  const Timestamp span =
      rows.back().timestamp - rows.front().timestamp + 1;
  config.window = flags.GetInt("window", std::max<Timestamp>(1, span / 4));
  config.epsilon = flags.GetDouble("epsilon", 0.05);
  config.seed = seed;
  config.ell_override = static_cast<int>(flags.GetInt("ell", 0));
  config.net.drop = flags.GetDouble("net-drop", 0.0);
  config.net.duplicate = flags.GetDouble("net-dup", 0.0);
  config.net.delay_max = flags.GetInt("net-delay", 0);
  config.net.seed = static_cast<uint64_t>(flags.GetInt("net-seed", 0));
  config.net.reliable = flags.GetInt("net-reliable", 0) != 0;
  config.net.retry = std::max<Timestamp>(1, flags.GetInt("net-retry", 1));

  runtime::RuntimeOptions runtime_options;
  auto runtime_kind =
      runtime::ParseRuntimeKind(flags.GetString("runtime", "lockstep"));
  if (!runtime_kind.ok()) return Fail(runtime_kind.status());
  runtime_options.kind = runtime_kind.value();
  runtime_options.wall_clock = flags.GetInt("wall-clock", 0) != 0;
  std::unique_ptr<Runtime> runtime = runtime::MakeRuntime(runtime_options);
  config.channel_backend = runtime->backend();

  auto tracker = MakeTracker(algorithm.value(), config);
  if (!tracker.ok()) return Fail(tracker.status());

  DriverOptions options;
  options.query_points = static_cast<int>(flags.GetInt("queries", 50));
  options.seed = seed + 99;
  options.trace_jsonl = flags.GetString("trace-jsonl", "");
  const Status options_status = options.Validate();
  if (!options_status.ok()) return Fail(options_status);

  const bool want_metrics = flags.Has("metrics-json");
  if (want_metrics) obs::SetEnabled(true);

  const StatusOr<RunResult> run = runtime->Run(
      tracker.value().get(), rows, config.num_sites, config.window, options);
  if (!run.ok()) return Fail(run.status());
  const RunResult& r = run.value();
  if (!r.trace_status.ok()) return Fail(r.trace_status);

  std::printf("algorithm        : %s\n", AlgorithmName(algorithm.value()));
  std::printf("runtime          : %s\n", runtime->name());
  std::printf("rows x dim       : %d x %d\n", r.rows, config.dim);
  std::printf("sites m          : %d\n", config.num_sites);
  std::printf("window W         : %lld ticks (%.1f windows spanned)\n",
              static_cast<long long>(config.window), r.windows_spanned);
  std::printf("epsilon          : %.4f\n", config.epsilon);
  std::printf("avg_err          : %.5f\n", r.avg_err);
  std::printf("max_err          : %.5f\n", r.max_err);
  std::printf("msg (words/W)    : %.0f\n", r.words_per_window);
  std::printf("total words      : %ld (%ld messages, %ld broadcasts)\n",
              r.total_words, r.messages, r.broadcasts);
  std::printf("max site space   : %ld words\n", r.max_site_space_words);
  std::printf("update rate      : %.0f rows/s\n", r.update_rows_per_sec);
  std::printf("wire bytes       : %ld payload (%ld framed, %ld sends)\n",
              r.wire_payload_bytes, r.wire_frame_bytes, r.wire_transmissions);
  if (!options.trace_jsonl.empty()) {
    std::printf("trace written to : %s\n", options.trace_jsonl.c_str());
  }

  // Machine-readable summary for bench baselines: bytes are exact under
  // loopback, so baseline checks can demand zero drift.
  if (flags.Has("net-json")) {
    std::printf(
        "{\"algorithm\":\"%s\",\"total_words\":%ld,"
        "\"wire_payload_bytes\":%ld,\"wire_frame_bytes\":%ld,"
        "\"wire_transmissions\":%ld,\"windows_spanned\":%.6f,"
        "\"payload_bytes_per_window\":%.1f}\n",
        AlgorithmName(algorithm.value()), r.total_words, r.wire_payload_bytes,
        r.wire_frame_bytes, r.wire_transmissions, r.windows_spanned,
        r.windows_spanned > 0
            ? static_cast<double>(r.wire_payload_bytes) / r.windows_spanned
            : 0.0);
  }

  if (flags.Has("trace")) {
    std::printf("\n%-12s %10s %14s %14s\n", "timestamp", "err",
                "words_so_far", "site_space");
    for (const TraceEntry& e : r.trace) {
      std::printf("%-12lld %10.5f %14ld %14ld\n",
                  static_cast<long long>(e.timestamp), e.err,
                  e.words_so_far, e.site_space_words);
    }
  }

  if (want_metrics) {
    const std::string json = r.metrics.ToJson();
    const std::string dest = flags.GetString("metrics-json", "-");
    if (dest == "-" || dest == "1" || dest.empty()) {
      std::printf("%s\n", json.c_str());
    } else {
      const Status st = WriteTextFile(dest, json + "\n");
      if (!st.ok()) return Fail(st);
      std::printf("metrics written  : %s\n", dest.c_str());
    }
  }

  if (flags.Has("save-sketch")) {
    const Status st = SaveMatrixBinary(tracker.value()->Query().Rows(),
                                       flags.GetString("save-sketch", ""));
    if (!st.ok()) return Fail(st);
    std::printf("sketch saved to  : %s\n",
                flags.GetString("save-sketch", "").c_str());
  }
  return 0;
}

int CmdServeBench(const FlagSet& flags) {
  auto algorithm = ParseAlgorithm(flags.GetString("algorithm", "DA2"));
  if (!algorithm.ok()) return Fail(algorithm.status());

  serve::LoadGenOptions options;
  options.algorithm = algorithm.value();
  options.rows = static_cast<int>(flags.GetInt("rows", options.rows));
  options.dim = static_cast<int>(flags.GetInt("dim", options.dim));
  options.sites = static_cast<int>(flags.GetInt("sites", options.sites));
  options.epsilon = flags.GetDouble("epsilon", options.epsilon);
  options.window = flags.GetInt("window", 0);
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 5));
  options.reader_threads =
      static_cast<int>(flags.GetInt("readers", options.reader_threads));
  options.min_queries_per_reader =
      flags.GetInt("min-queries", options.min_queries_per_reader);
  const Status valid = options.Validate();
  if (!valid.ok()) return Fail(valid);

  if (flags.GetInt("selfcheck", 0) != 0) {
    const Status status = serve::VerifyMetricsInvariance(options);
    if (!status.ok()) return Fail(status);
    std::printf("metrics-invariance self-check: ok\n");
    return 0;
  }

  // The latency histogram and serve.* counters live in the obs registry.
  obs::SetEnabled(true);
  auto report = serve::RunServingLoad(options);
  if (!report.ok()) return Fail(report.status());
  const serve::LoadGenReport& r = report.value();

  std::printf("algorithm        : %s\n", AlgorithmName(options.algorithm));
  std::printf("rows x dim       : %d x %d (%d sites)\n", options.rows,
              options.dim, options.sites);
  std::printf("readers          : %d\n", options.reader_threads);
  std::printf("versions         : %llu published\n",
              static_cast<unsigned long long>(r.versions_published));
  std::printf("queries          : %ld (%ld pca, %ld anomaly, %ld change)\n",
              r.total_queries, r.pca_queries, r.anomaly_queries,
              r.change_queries);
  std::printf("errors           : %ld\n", r.errors);
  std::printf("elapsed          : %.3f s\n", r.elapsed_seconds);
  std::printf("qps              : %.0f\n", r.qps);
  const auto it = r.metrics.histograms.find("serve.query.latency_us");
  if (it != r.metrics.histograms.end()) {
    std::printf("latency (us)     :");
    const obs::HistogramSnapshot& h = it->second;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;
      if (i < h.edges.size()) {
        std::printf(" <=%ld:%ld", h.edges[i], h.counts[i]);
      } else {
        std::printf(" >%ld:%ld", h.edges.back(), h.counts[i]);
      }
    }
    std::printf("\n");
  }
  return r.errors == 0 ? 0 : 1;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t end = s.find(',', start);
    if (end == std::string::npos) end = s.size();
    if (end > start) out.push_back(s.substr(start, end - start));
    if (end == s.size()) break;
    start = end + 1;
  }
  return out;
}

int CmdSweep(const FlagSet& flags) {
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  auto data = BuildDataset(flags.GetString("dataset", "synthetic"),
                           static_cast<int>(flags.GetInt("rows", 0)), seed);
  if (!data.ok()) return Fail(data.status());
  const std::vector<TimedRow>& rows = data.value();
  if (rows.empty()) return Fail(Status::InvalidArgument("empty dataset"));

  const int sites = static_cast<int>(flags.GetInt("sites", 20));
  const Timestamp span = rows.back().timestamp - rows.front().timestamp + 1;
  const Timestamp window =
      flags.GetInt("window", std::max<Timestamp>(1, span / 4));

  std::vector<Algorithm> algorithms;
  for (const std::string& name :
       SplitCommas(flags.GetString("algorithms", "PWOR,PWOR-ALL,DA2"))) {
    auto parsed = ParseAlgorithm(name);
    if (!parsed.ok()) return Fail(parsed.status());
    algorithms.push_back(parsed.value());
  }
  std::vector<double> epsilons;
  for (const std::string& e :
       SplitCommas(flags.GetString("epsilons", "0.2,0.1,0.05"))) {
    epsilons.push_back(std::atof(e.c_str()));
  }

  std::printf("algorithm,epsilon,sites,avg_err,max_err,words_per_window,"
              "max_site_space_words,update_rows_per_sec\n");
  for (Algorithm a : algorithms) {
    for (double eps : epsilons) {
      TrackerConfig config;
      config.dim = static_cast<int>(rows.front().values.size());
      config.num_sites = sites;
      config.window = window;
      config.epsilon = eps;
      config.seed = seed;
      auto tracker = MakeTracker(a, config);
      if (!tracker.ok()) return Fail(tracker.status());
      DriverOptions options;
      options.query_points = static_cast<int>(flags.GetInt("queries", 25));
      options.seed = seed + 99;
      const Status options_status = options.Validate();
      if (!options_status.ok()) return Fail(options_status);
      const StatusOr<RunResult> run =
          RunTracker(tracker.value().get(), rows, sites, window, options);
      if (!run.ok()) return Fail(run.status());
      const RunResult& r = run.value();
      std::printf("%s,%g,%d,%.6f,%.6f,%.0f,%ld,%.0f\n", AlgorithmName(a),
                  eps, sites, r.avg_err, r.max_err, r.words_per_window,
                  r.max_site_space_words, r.update_rows_per_sec);
      std::fflush(stdout);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> known = {
      "dataset", "csv",     "timestamp-col", "algorithm", "epsilon",
      "sites",   "window",  "rows",          "seed",      "queries",
      "ell",     "save-sketch", "trace",     "algorithms", "epsilons",
      "threads", "trace-jsonl", "net-drop",  "net-dup",   "net-delay",
      "net-seed", "net-reliable", "net-retry", "net-json", "metrics-json",
      "runtime", "wall-clock", "dim", "readers", "min-queries", "selfcheck"};
  auto flags = FlagSet::Parse(argc, argv, known);
  if (!flags.ok()) return Fail(flags.status());

  // --threads overrides DSWM_THREADS (both default to 1: deterministic,
  // bit-identical single-threaded kernels).
  if (flags.value().Has("threads")) {
    ThreadPool::SetGlobalThreads(
        static_cast<int>(flags.value().GetInt("threads", 1)));
  }

  const auto& positional = flags.value().positional();
  const std::string command = positional.empty() ? "run" : positional[0];
  if (command == "run") return CmdRun(flags.value());
  if (command == "sweep") return CmdSweep(flags.value());
  if (command == "serve-bench") return CmdServeBench(flags.value());
  if (command == "datasets") return CmdDatasets(flags.value());
  if (command == "algorithms") return CmdAlgorithms();
  std::fprintf(
      stderr,
      "usage: dswm_cli [run|sweep|serve-bench|datasets|algorithms] "
      "[--flags]\n");
  return 1;
}
