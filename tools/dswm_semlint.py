#!/usr/bin/env python3
"""Semantic (AST-level) linter for the dswm codebase.

Enforces the concurrency and error-handling contracts that the regex
linter (tools/dswm_lint.py, rules R1-R4 + R7) structurally cannot see:
rules here need a symbol table, statement boundaries, expression shape
(ternaries, lambdas, cast-to-void), or class-body structure. Rules R5 and
R6 started life as regex rules in dswm_lint.py and were migrated here.

  R5  raw-thread-outside-common
          No std::thread / std::jthread / std::async outside src/common/.
          All parallelism flows through common/thread_pool.h so the
          deterministic single-threaded default holds. This includes
          batched fan-out: batches of small-matrix problems go through
          linalg/batched.h (one ThreadPool dispatch per batch), never a
          hand-rolled thread-per-problem loop. (Migrated.)
  R6  comm-outside-net
          No CommStats mutation (member SendUp/SendDown/Broadcast calls)
          in src/ outside src/net/: comm accounting is derived from the
          message ledger, never hand-counted. (Migrated.)
  R8  discarded-status
          No call whose result is Status/StatusOr may be evaluated as a
          discarded expression -- as a bare expression statement, behind a
          (void) cast (outside tests/), through either branch of a
          ternary statement, or inside a lambda body. The compiler's
          [[nodiscard]] only fires with -Werror and never in
          uninstantiated templates; this rule always fires.
  R9  unordered-iteration
          No iteration (range-for, .begin()/.end() loops) over
          std::unordered_{map,set,multimap,multiset} in src/core,
          src/window, or src/sketch: iteration order is
          implementation-defined and would leak into tracker results,
          breaking the bit-identity contract.
  R10 mutex-without-capability
          Every mutex-typed class member must participate in the clang
          thread-safety capability system: raw std::mutex is confined to
          src/common/mutex.h (it cannot carry the CAPABILITY attribute),
          and every dswm::Mutex member must be referenced by at least one
          DSWM_GUARDED_BY / DSWM_PT_GUARDED_BY / DSWM_REQUIRES /
          DSWM_ACQUIRE / DSWM_RELEASE / DSWM_EXCLUDES annotation in the
          same class -- an unannotated lock checks nothing.
  R11 cast-confinement
          No const_cast / reinterpret_cast outside src/net/ (wire framing
          is the one sanctioned place to reinterpret bytes; linalg binary
          I/O stages through memcpy instead).
  R12 socket-confinement
          No raw POSIX socket/poll/select calls (socket, socketpair,
          accept, listen, poll, select, epoll_*, recvmsg, sendmsg, ...)
          outside src/runtime/ + src/net/: transport I/O flows through
          net::Channel backends and the runtime's framed worker protocol
          (runtime/site_worker.h), never ad-hoc descriptors. Member and
          qualified calls (x.poll(), ns::select()) are not raw sockets
          and do not fire.
  R13 snapshot-immutability
          No member call to CovarianceEstimate::MaterializeAndSeal
          (x.MaterializeAndSeal(), p->MaterializeAndSeal()) outside
          src/serve/: sealing is the serving tier's publish-time step.
          Everywhere else an estimate is either still being built (the
          tracker side) or already sealed behind a SnapshotRef; a stray
          seal call would hide a mutation on what readers assume is an
          immutable snapshot. The qualified definition
          (CovarianceEstimate::MaterializeAndSeal() { ... }) in
          src/core/ does not fire.

Frontends: with the clang python bindings + libclang available the rules
that benefit from real types (R8, R9) run over the actual AST using the
build's compile_commands.json; otherwise a built-in C++ lexer and
structural parser computes the same verdicts (statement splitting,
brace-tree classification, declaration scanning). Both frontends share
the structural rules (R5, R6, R10, R11) and the reporting format.

Grandfather lists are EMPTY and must stay empty -- tools/run_checks.sh
fails the gate if any rule acquires one. Suppress a single line with a
trailing `// dswm-semlint: allow(<rule>)` and a justifying comment.

Exit status: 0 clean, 1 violations, 2 usage/environment error.
"""

import argparse
import json
import pathlib
import re
import sys

LINT_DIRS = ("src", "tests", "bench", "examples", "tools", "fuzz")
CPP_SUFFIXES = (".h", ".cc", ".cpp")
# Fixture files deliberately violate rules; the selftest lints them from a
# staged tree with realistic pretend paths.
EXCLUDED_PARTS = {("tests", "semlint_fixtures")}

THREAD_ALLOWED_PREFIX = ("src", "common")
COMM_ALLOWED_PREFIX = ("src", "net")
CAST_ALLOWED_PREFIX = ("src", "net")
SOCKET_ALLOWED_PREFIXES = (("src", "runtime"), ("src", "net"))
SEAL_ALLOWED_PREFIX = ("src", "serve")
UNORDERED_SCOPED_PREFIXES = (("src", "core"), ("src", "window"),
                             ("src", "sketch"))
STD_MUTEX_ALLOWED = {pathlib.PurePosixPath("src/common/mutex.h")}

# Grandfather lists: one set of PurePosixPath per rule. All empty; the
# run_checks.sh gate greps this block and fails on any entry.
GRANDFATHERED = {
    "raw-thread-outside-common": set(),
    "comm-outside-net": set(),
    "discarded-status": set(),
    "unordered-iteration": set(),
    "mutex-without-capability": set(),
    "cast-confinement": set(),
    "socket-confinement": set(),
    "snapshot-immutability": set(),
}

# Legacy `dswm-lint:` markers stay honored for the migrated rules so the
# move from the regex linter did not require touching every suppression.
ALLOW = re.compile(r"//\s*dswm-(?:sem)?lint:\s*allow\(([\w-]+)\)")

UNORDERED_TYPES = {"unordered_map", "unordered_set", "unordered_multimap",
                   "unordered_multiset"}
MUTEX_STD_TYPES = {"mutex", "recursive_mutex", "timed_mutex",
                   "recursive_timed_mutex", "shared_mutex",
                   "shared_timed_mutex"}
CAPABILITY_MACROS = {"DSWM_GUARDED_BY", "DSWM_PT_GUARDED_BY",
                     "DSWM_REQUIRES", "DSWM_ACQUIRE", "DSWM_RELEASE",
                     "DSWM_EXCLUDES", "DSWM_ASSERT_CAPABILITY"}
# POSIX transport-layer entry points. Deliberately excludes read/write/
# close (ubiquitous on ordinary fds) and bind/connect/shutdown/send/recv
# (too commonly shadowed by member functions to flag reliably); the
# remaining names only ever mean the socket layer when called unqualified.
SOCKET_CALLS = {"socket", "socketpair", "accept", "accept4", "listen",
                "poll", "ppoll", "select", "pselect", "epoll_create",
                "epoll_create1", "epoll_ctl", "epoll_wait", "epoll_pwait",
                "recvmsg", "recvfrom", "sendmsg", "sendto", "getsockopt",
                "setsockopt"}


# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

class Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind  # 'id' | 'num' | 'str' | 'punct'
        self.text = text
        self.line = line

    def __repr__(self):
        return f"{self.kind}:{self.text}@{self.line}"


TWO_CHAR_PUNCT = {"::", "->", "==", "!=", "<=", ">=", "+=", "-=", "*=",
                  "/=", "%=", "&=", "|=", "^=", "<<", ">>", "&&", "||",
                  "++", "--"}
ID_START = re.compile(r"[A-Za-z_]")
ID_CHARS = re.compile(r"[A-Za-z0-9_]*")
NUM_RE = re.compile(r"[0-9](?:[0-9a-fA-FxXbB'.]|[eEpP][+-]?)*")


def tokenize(text):
    """C++-aware token stream: comments, strings, char literals, and
    preprocessor directives are consumed (not emitted); line numbers are
    preserved for reporting."""
    toks = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
        elif c in " \t\r\f\v":
            i += 1
        elif c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            i = n if j == -1 else j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            line += text.count("\n", i, j)
            i = j
        elif c == "#":
            # Preprocessor directive: consume to end of line, honoring
            # backslash continuations.
            j = i
            while j < n:
                k = text.find("\n", j)
                if k == -1:
                    j = n
                    break
                if text[k - 1] == "\\" or (k >= 2 and text[k - 2:k] == "\\\r"):
                    line += 1
                    j = k + 1
                    continue
                j = k
                break
            i = j
        elif c == "R" and i + 1 < n and text[i + 1] == '"':
            # Raw string literal R"delim( ... )delim"
            m = re.match(r'R"([^()\\ \t\n]*)\(', text[i:])
            if m:
                close = ")" + m.group(1) + '"'
                j = text.find(close, i + m.end())
                j = n if j == -1 else j + len(close)
                toks.append(Token("str", '""', line))
                line += text.count("\n", i, j)
                i = j
            else:
                toks.append(Token("id", "R", line))
                i += 1
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            toks.append(Token("str", '""', line))
            i = j + 1
        elif c == "'" and not (toks and toks[-1].kind == "num"):
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            toks.append(Token("str", "''", line))
            i = j + 1
        elif ID_START.match(c):
            m = ID_CHARS.match(text, i + 1)
            word = text[i:m.end()]
            toks.append(Token("id", word, line))
            i = m.end()
        elif c.isdigit():
            m = NUM_RE.match(text, i)
            toks.append(Token("num", m.group(0), line))
            i = m.end()
        else:
            two = text[i:i + 2]
            if two in TWO_CHAR_PUNCT:
                toks.append(Token("punct", two, line))
                i += 2
            else:
                toks.append(Token("punct", c, line))
                i += 1
    return toks


OPEN = {"(": ")", "[": "]", "{": "}"}
CLOSE = {")": "(", "]": "[", "}": "{"}


def match_brackets(toks):
    """index of opener -> index of closer (and vice versa); unbalanced
    brackets map to None entries being absent."""
    pairs = {}
    stack = []
    for idx, t in enumerate(toks):
        if t.kind != "punct":
            continue
        if t.text in OPEN:
            stack.append(idx)
        elif t.text in CLOSE:
            while stack:
                o = stack.pop()
                if toks[o].text == CLOSE[t.text]:
                    pairs[o] = idx
                    pairs[idx] = o
                    break
    return pairs


# ---------------------------------------------------------------------------
# Shared infrastructure
# ---------------------------------------------------------------------------

class Reporter:
    def __init__(self):
        self.count = 0

    def report(self, path, line_no, rule, msg):
        self.count += 1
        print(f"{path}:{line_no}: [{rule}] {msg}")


def allow_map(text):
    """line number -> set of allowed rule names on that line."""
    allowed = {}
    for ln, raw in enumerate(text.split("\n"), start=1):
        for m in ALLOW.finditer(raw):
            allowed.setdefault(ln, set()).add(m.group(1))
    return allowed


class FileUnit:
    def __init__(self, rel, text):
        self.rel = rel  # PurePosixPath relative to root
        self.text = text
        self.toks = tokenize(text)
        self.pairs = match_brackets(self.toks)
        self.allowed = allow_map(text)

    def is_allowed(self, line_no, rule):
        return rule in self.allowed.get(line_no, set())

    def emit(self, rep, line_no, rule, msg):
        if self.is_allowed(line_no, rule):
            return
        if self.rel in GRANDFATHERED.get(rule, set()):
            return
        rep.report(self.rel, line_no, rule, msg)


def under(rel, prefix):
    return tuple(rel.parts[:len(prefix)]) == tuple(prefix)


# ---------------------------------------------------------------------------
# Symbol table for R8 (both frontends; the libclang frontend refines it)
# ---------------------------------------------------------------------------

def collect_status_functions(units):
    """Names declared with Status/StatusOr return type anywhere in the
    tree, minus names that are also declared returning void somewhere
    (ambiguous without real overload resolution; the libclang frontend
    resolves those via actual types)."""
    status, void = set(), set()

    def plausible_function(name):
        # Repo style: functions are PascalCase, variables lower_snake.
        # `StatusOr<int> v(42);` is a variable with ctor args, textually
        # identical to a function declaration; the case convention is
        # what separates them without overload resolution.
        return name[0].isupper()

    for u in units:
        toks = u.toks
        n = len(toks)
        for i, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text == "Status":
                if i + 2 < n and toks[i + 1].kind == "id" and \
                        toks[i + 2].text == "(":
                    name = toks[i + 1].text
                    if name != "Status" and plausible_function(name):
                        status.add(name)
            elif t.text == "StatusOr":
                if i + 1 < n and toks[i + 1].text == "<":
                    depth = 0
                    j = i + 1
                    while j < n:
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif toks[j].text == ">>":
                            depth -= 2
                            if depth <= 0:
                                break
                        elif toks[j].text == ";":
                            j = n
                            break
                        j += 1
                    if j < n - 2 and toks[j + 1].kind == "id" and \
                            toks[j + 2].text == "(" and \
                            plausible_function(toks[j + 1].text):
                        status.add(toks[j + 1].text)
            elif t.text == "void":
                if i + 2 < n and toks[i + 1].kind == "id" and \
                        toks[i + 2].text == "(":
                    void.add(toks[i + 1].text)
    return status - void, status & void


# ---------------------------------------------------------------------------
# Built-in frontend: statement-level analysis
# ---------------------------------------------------------------------------

BLOCK_PREDECESSORS = {")", "]", "else", "do", "try", "{", "}", ";"}
QUALIFIER_SKIP = {"const", "noexcept", "override", "final", "mutable", "&",
                  "&&"}
STMT_SKIP_LEADERS = {"return", "co_return", "throw", "goto", "using",
                     "typedef", "template", "public", "private",
                     "protected", "friend", "static_assert", "break",
                     "continue"}


def is_block_brace(toks, idx):
    """Heuristic: does the '{' at idx open a statement block (function,
    control-flow, or lambda body) rather than an initializer/class/enum/
    namespace body?"""
    j = idx - 1
    while j >= 0 and (toks[j].text in QUALIFIER_SKIP or
                      (toks[j].kind == "id" and toks[j].text in
                       QUALIFIER_SKIP)):
        j -= 1
    if j < 0:
        return False
    prev = toks[j]
    # `-> Type {` trailing return: walk back over the type to the ')'.
    if prev.kind == "id" or prev.text in (">", "::", "*"):
        k = j
        while k >= 0 and (toks[k].kind == "id" or
                          toks[k].text in (">", "<", "::", "*", "&", ",")):
            k -= 1
        if k >= 0 and toks[k].text == "->" and k >= 1 and \
                toks[k - 1].text == ")":
            return True
        return False
    return prev.text in BLOCK_PREDECESSORS


def block_statements(toks, pairs, open_idx):
    """Yields (start, end) token index ranges for statements directly
    inside the block opened at open_idx: runs split at top-level ';',
    with nested bracket groups treated as opaque."""
    close_idx = pairs.get(open_idx)
    if close_idx is None:
        return
    i = open_idx + 1
    start = i
    while i < close_idx:
        t = toks[i]
        if t.kind == "punct" and t.text in OPEN:
            nested_brace = t.text == "{"
            i = pairs.get(i, close_idx) + 1
            # A nested brace group ends the current statement run:
            # `if (...) { ... } return Foo();` must split at the '}' or
            # the trailing return would hide inside an `if`-led run.
            if nested_brace:
                start = i
            continue
        if t.kind == "punct" and t.text == ";":
            if i > start:
                yield (start, i)
            start = i + 1
        i += 1


def statement_calls(toks, pairs, start, end):
    """Returns (top-level call names in order, has_assign, leading_void_cast)
    for the statement toks[start:end), nested brackets opaque."""
    calls = []
    has_assign = False
    void_cast = False
    if end - start >= 3 and toks[start].text == "(" and \
            toks[start + 1].text == "void" and toks[start + 2].text == ")":
        void_cast = True
    i = start
    while i < end:
        t = toks[i]
        if t.kind == "punct" and t.text in OPEN:
            if t.text == "(" and i > start and toks[i - 1].kind == "id":
                calls.append((toks[i - 1].text, toks[i - 1].line))
            i = pairs.get(i, end - 1) + 1
            continue
        if t.kind == "punct" and t.text == "=":
            has_assign = True
        elif t.kind == "id" and t.text in ("return", "co_return", "throw"):
            # The value escapes (e.g. `if (x) return Foo();`): not a
            # discard regardless of where the keyword sits in the run.
            has_assign = True
        i += 1
    return calls, has_assign, void_cast


def split_ternary(toks, pairs, start, end):
    """If the statement has a top-level ternary, returns the two branch
    ranges [(b1s, b1e), (b2s, b2e)]; else None."""
    i = start
    q = None
    while i < end:
        t = toks[i]
        if t.kind == "punct" and t.text in OPEN:
            i = pairs.get(i, end - 1) + 1
            continue
        if t.text == "?":
            q = i
            break
        i += 1
    if q is None:
        return None
    depth = 0
    i = q + 1
    while i < end:
        t = toks[i]
        if t.kind == "punct" and t.text in OPEN:
            i = pairs.get(i, end - 1) + 1
            continue
        if t.text == "?":
            depth += 1
        elif t.text == ":":
            if depth == 0:
                return [(q + 1, i), (i + 1, end)]
            depth -= 1
        i += 1
    return None


def final_call(toks, pairs, start, end):
    calls, has_assign, void_cast = statement_calls(toks, pairs, start, end)
    if has_assign or not calls:
        return None, void_cast
    return calls[-1], void_cast


def check_discarded_status(u, status_funcs, rep):
    in_tests = u.rel.parts[0] == "tests"
    toks, pairs = u.toks, u.pairs
    for idx, t in enumerate(toks):
        if t.text != "{" or t.kind != "punct":
            continue
        if not is_block_brace(toks, idx):
            continue
        for (s, e) in block_statements(toks, pairs, idx):
            if toks[s].kind == "id" and toks[s].text in STMT_SKIP_LEADERS:
                continue
            tern = split_ternary(toks, pairs, s, e)
            ranges = tern if tern else [(s, e)]
            for (bs, be) in ranges:
                call, void_cast = final_call(toks, pairs, bs, be)
                if call is None:
                    continue
                name, line = call
                if name not in status_funcs:
                    continue
                if void_cast and in_tests:
                    continue  # sanctioned in death/expectation tests
                what = "(void)-discarded" if void_cast else "discarded"
                u.emit(rep, line, "discarded-status",
                       f"result of '{name}(...)' (returns Status/StatusOr) "
                       f"is {what}; check it, propagate it "
                       "(DSWM_RETURN_NOT_OK), or DSWM_CHECK(...ok())")


# ---------------------------------------------------------------------------
# R9: unordered-container iteration (built-in frontend)
# ---------------------------------------------------------------------------

def unordered_var_names(u):
    names = set()
    aliases = set()
    toks, pairs = u.toks, u.pairs
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in UNORDERED_TYPES:
            continue
        j = i + 1
        if j < n and toks[j].text == "<":
            depth = 0
            while j < n:
                if toks[j].text == "<":
                    depth += 1
                elif toks[j].text == ">":
                    depth -= 1
                    if depth == 0:
                        break
                elif toks[j].text == ">>":
                    depth -= 2
                    if depth <= 0:
                        break
                j += 1
            j += 1
        # `using Alias = std::unordered_map<...>`: record the alias.
        k = i - 1
        while k >= 0 and toks[k].text in ("::", "std"):
            k -= 1
        if k >= 1 and toks[k].text == "=" and toks[k - 1].kind == "id":
            aliases.add(toks[k - 1].text)
            continue
        if j < n and toks[j].kind == "id":
            names.add(toks[j].text)
    if aliases:
        for i, t in enumerate(toks):
            if t.kind == "id" and t.text in aliases and i + 1 < n and \
                    toks[i + 1].kind == "id":
                names.add(toks[i + 1].text)
    return names


def check_unordered_iteration(u, rep):
    if not any(under(u.rel, p) for p in UNORDERED_SCOPED_PREFIXES):
        return
    names = unordered_var_names(u)
    if not names:
        return
    toks, pairs = u.toks, u.pairs
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text == "for" and i + 1 < n and \
                toks[i + 1].text == "(":
            close = pairs.get(i + 1)
            if close is None:
                continue
            # Range-for: a top-level ':' with no top-level ';'.
            j = i + 2
            colon = None
            has_semi = False
            while j < close:
                if toks[j].text in OPEN:
                    j = pairs.get(j, close) + 1
                    continue
                if toks[j].text == ";":
                    has_semi = True
                    break
                if toks[j].text == ":" and colon is None:
                    colon = j
                j += 1
            if has_semi or colon is None:
                continue
            k = colon + 1
            while k < close and toks[k].kind != "id":
                k += 1
            if k < close and toks[k].text in names:
                u.emit(rep, toks[k].line, "unordered-iteration",
                       f"range-for over unordered container '{toks[k].text}'"
                       "; iteration order is implementation-defined and may "
                       "reach a tracker result -- use a sorted container or "
                       "an explicitly ordered traversal")
        elif t.kind == "id" and t.text in names and i + 2 < n and \
                toks[i + 1].text in (".", "->") and \
                toks[i + 2].kind == "id" and \
                toks[i + 2].text in ("begin", "cbegin", "rbegin"):
            u.emit(rep, t.line, "unordered-iteration",
                   f"iterator traversal of unordered container '{t.text}'; "
                   "iteration order is implementation-defined and may reach "
                   "a tracker result")


# ---------------------------------------------------------------------------
# R10: mutex members must carry capability annotations
# ---------------------------------------------------------------------------

def class_bodies(toks, pairs):
    """Yields (open_idx, close_idx) for each class/struct definition body."""
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in ("class", "struct"):
            continue
        if i > 0 and toks[i - 1].text == "enum":
            continue
        j = i + 1
        while j < n and toks[j].text not in ("{", ";"):
            if toks[j].text in ("(", "["):  # e.g. a variable of type
                break                       # `struct {...}`? bail out
            j += 1
        if j < n and toks[j].text == "{":
            close = pairs.get(j)
            if close is not None:
                yield (j, close)


def mutex_fields(toks, pairs, open_idx, close_idx):
    """(name, line, is_std) for every owned mutex member directly in the
    class body (nested classes are visited by their own class_bodies
    entry; their tokens are skipped here)."""
    out = []
    i = open_idx + 1
    while i < close_idx:
        t = toks[i]
        if t.text in OPEN and t.kind == "punct":
            i = pairs.get(i, close_idx) + 1
            continue
        is_std = False
        type_end = None
        if t.kind == "id" and t.text == "std" and i + 2 < close_idx and \
                toks[i + 1].text == "::" and \
                toks[i + 2].text in MUTEX_STD_TYPES:
            is_std = True
            type_end = i + 3
        elif t.kind == "id" and t.text == "Mutex":
            if i > open_idx + 1 and toks[i - 1].text == "::" and \
                    i >= 2 and toks[i - 2].text != "dswm":
                type_end = None
            else:
                type_end = i + 1
        if type_end is not None:
            j = type_end
            while j < close_idx and toks[j].text == "::":
                j += 2
            if j < close_idx and toks[j].kind == "id" and \
                    j + 1 < close_idx and toks[j + 1].text in (";", "=", "{"):
                out.append((toks[j].text, toks[j].line, is_std))
                i = j + 1
                continue
        i += 1
    return out


def check_mutex_capability(u, rep):
    toks, pairs = u.toks, u.pairs
    for (o, c) in class_bodies(toks, pairs):
        fields = mutex_fields(toks, pairs, o, c)
        if not fields:
            continue
        # Annotation references anywhere in the class body (including
        # nested blocks: lambdas in inline methods may carry REQUIRES).
        annotated = set()
        for i in range(o + 1, c):
            t = toks[i]
            if t.kind == "id" and t.text in CAPABILITY_MACROS and \
                    i + 1 < c and toks[i + 1].text == "(":
                close = pairs.get(i + 1)
                if close is None:
                    continue
                for j in range(i + 2, close):
                    if toks[j].kind == "id":
                        annotated.add(toks[j].text)
        for (name, line, is_std) in fields:
            if is_std:
                if u.rel in STD_MUTEX_ALLOWED:
                    continue
                u.emit(rep, line, "mutex-without-capability",
                       f"raw std::mutex member '{name}'; use dswm::Mutex "
                       "(common/mutex.h) so the lock carries the clang "
                       "thread-safety capability")
            elif name not in annotated:
                u.emit(rep, line, "mutex-without-capability",
                       f"mutex member '{name}' is referenced by no "
                       "DSWM_GUARDED_BY / DSWM_REQUIRES / DSWM_EXCLUDES "
                       "annotation in this class; an unannotated lock "
                       "checks nothing")


# ---------------------------------------------------------------------------
# R5 / R6 / R11: migrated + token-level rules
# ---------------------------------------------------------------------------

def check_raw_thread(u, rep):
    if under(u.rel, THREAD_ALLOWED_PREFIX):
        return
    toks = u.toks
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text in ("thread", "jthread", "async") and \
                i >= 2 and toks[i - 1].text == "::" and \
                toks[i - 2].text == "std":
            u.emit(rep, t.line, "raw-thread-outside-common",
                   f"'std::{t.text}' outside src/common/; route parallelism "
                   "through dswm::ThreadPool (common/thread_pool.h) so the "
                   "deterministic single-threaded default holds")


def check_comm_mutation(u, rep):
    if u.rel.parts[0] != "src" or under(u.rel, COMM_ALLOWED_PREFIX):
        return
    toks = u.toks
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text in ("SendUp", "SendDown", "Broadcast") \
                and i >= 1 and toks[i - 1].text in (".", "->") and \
                i + 1 < len(toks) and toks[i + 1].text == "(":
            u.emit(rep, t.line, "comm-outside-net",
                   f"'{t.text}(...)' mutates CommStats outside src/net/; "
                   "send a typed wire message through a net::Channel -- the "
                   "ledger derives the counters")


def check_cast_confinement(u, rep):
    if under(u.rel, CAST_ALLOWED_PREFIX):
        return
    for t in u.toks:
        if t.kind == "id" and t.text in ("const_cast", "reinterpret_cast"):
            u.emit(rep, t.line, "cast-confinement",
                   f"'{t.text}' outside src/net/; type-punning is confined "
                   "to wire framing -- stage binary I/O through std::memcpy "
                   "or redesign the API to avoid the cast")


def check_snapshot_immutability(u, rep):
    if under(u.rel, SEAL_ALLOWED_PREFIX):
        return
    toks = u.toks
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text != "MaterializeAndSeal":
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue  # mention in a comment-adjacent identifier or decl list
        if i == 0 or toks[i - 1].text not in (".", "->"):
            continue  # declaration or qualified definition, not a call
        u.emit(rep, t.line, "snapshot-immutability",
               "'MaterializeAndSeal(...)' member call outside src/serve/; "
               "sealing is the publish-time step of the serving tier -- "
               "publish the estimate through serve::SnapshotStore and read "
               "it via a pinned SnapshotRef instead of sealing in place")


def check_socket_confinement(u, rep):
    if any(under(u.rel, p) for p in SOCKET_ALLOWED_PREFIXES):
        return
    toks = u.toks
    n = len(toks)
    for i, t in enumerate(toks):
        if t.kind != "id" or t.text not in SOCKET_CALLS:
            continue
        if i + 1 >= n or toks[i + 1].text != "(":
            continue  # not a call
        if i > 0 and toks[i - 1].text in (".", "->", "::"):
            continue  # member or qualified call: not the POSIX entry point
        if i > 0 and toks[i - 1].kind == "id" and \
                toks[i - 1].text not in ("return", "co_return"):
            continue  # `bool poll(...)`: a declaration, not a call
        u.emit(rep, t.line, "socket-confinement",
               f"raw socket-layer call '{t.text}(...)' outside "
               "src/runtime/ + src/net/; transport I/O goes through a "
               "net::Channel backend or the runtime worker protocol "
               "(runtime/site_worker.h), never ad-hoc descriptors")


# ---------------------------------------------------------------------------
# libclang frontend (used when the bindings + library are importable)
# ---------------------------------------------------------------------------

def try_libclang(root, units, compile_commands, rep):
    """Runs R8/R9 over the real AST. Returns True on success; on any
    failure the caller falls back to the built-in frontend for those
    rules (structural rules always run built-in)."""
    try:
        import clang.cindex as ci  # noqa: PLC0415

        index = ci.Index.create()
        by_file = {}
        if compile_commands and compile_commands.exists():
            for entry in json.loads(compile_commands.read_text()):
                args = [a for a in entry.get("arguments",
                                             entry.get("command", "").split())
                        if a not in ("-c", "-o")][1:]
                by_file[pathlib.Path(entry["directory"], entry["file"])
                        .resolve()] = args

        wanted = {(root / u.rel).resolve(): u for u in units}

        def unit_for(loc):
            if loc.file is None:
                return None
            return wanted.get(pathlib.Path(loc.file.name).resolve())

        def status_type(t):
            s = t.spelling
            return s.startswith(("dswm::Status", "Status", "dswm::StatusOr",
                                 "StatusOr"))

        def walk(node, parent):
            u = unit_for(node.location)
            if u is not None:
                if node.kind == ci.CursorKind.CALL_EXPR and \
                        status_type(node.type) and parent is not None and \
                        parent.kind in (ci.CursorKind.COMPOUND_STMT,):
                    u.emit(rep, node.location.line, "discarded-status",
                           f"result of '{node.spelling}(...)' "
                           "(returns Status/StatusOr) is discarded; check "
                           "it, propagate it (DSWM_RETURN_NOT_OK), or "
                           "DSWM_CHECK(...ok())")
                if node.kind == ci.CursorKind.CXX_FOR_RANGE_STMT and \
                        any(under(u.rel, p)
                            for p in UNORDERED_SCOPED_PREFIXES):
                    children = list(node.get_children())
                    if children:
                        rng = children[-2] if len(children) >= 2 else None
                        if rng is not None and "unordered_" in \
                                rng.type.spelling:
                            u.emit(rep, node.location.line,
                                   "unordered-iteration",
                                   "range-for over unordered container; "
                                   "iteration order is implementation-"
                                   "defined and may reach a tracker result")
            for child in node.get_children():
                walk(child, node)

        parsed_any = False
        for path, args in by_file.items():
            if path not in wanted:
                continue
            tu = index.parse(str(path), args=args)
            walk(tu.cursor, None)
            parsed_any = True
        return parsed_any
    except Exception as exc:  # any failure -> honest fallback
        print(f"dswm_semlint: libclang frontend unavailable ({exc}); "
              "using built-in parser", file=sys.stderr)
        return False


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def collect_files(root):
    files = []
    for top in LINT_DIRS:
        base = root / top
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in CPP_SUFFIXES and p.is_file():
                rel = pathlib.PurePosixPath(p.relative_to(root).as_posix())
                if any(tuple(rel.parts[:len(e)]) == e
                       for e in EXCLUDED_PARTS):
                    continue
                files.append(rel)
    return files


def main():
    parser = argparse.ArgumentParser(
        description="AST-level linter (see module docstring for rules)")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--compile-commands", default=None,
                        help="compile_commands.json for the libclang "
                        "frontend (tools/compiledb.sh prints one)")
    parser.add_argument("--frontend", choices=("auto", "libclang", "builtin"),
                        default="auto")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"dswm_semlint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    for rule, entries in GRANDFATHERED.items():
        if entries:
            print(f"dswm_semlint: grandfather list for '{rule}' must stay "
                  f"empty but has {len(entries)} entries", file=sys.stderr)
            return 2

    rep = Reporter()
    units = []
    for rel in collect_files(root):
        text = (root / rel).read_text(encoding="utf-8", errors="replace")
        units.append(FileUnit(rel, text))

    status_funcs, ambiguous = collect_status_functions(units)

    ast_done = False
    if args.frontend in ("auto", "libclang"):
        cc = pathlib.Path(args.compile_commands) if args.compile_commands \
            else None
        ast_done = try_libclang(root, units, cc, rep)
        if args.frontend == "libclang" and not ast_done:
            return 2

    for u in units:
        if not ast_done:
            check_discarded_status(u, status_funcs, rep)
            check_unordered_iteration(u, rep)
        check_mutex_capability(u, rep)
        check_raw_thread(u, rep)
        check_comm_mutation(u, rep)
        check_cast_confinement(u, rep)
        check_socket_confinement(u, rep)
        check_snapshot_immutability(u, rep)

    frontend = "libclang" if ast_done else "builtin"
    if rep.count:
        print(f"dswm_semlint: {rep.count} violation(s) in {len(units)} "
              f"files ({frontend} frontend)")
        return 1
    note = f", {len(ambiguous)} name(s) ambiguous" if ambiguous else ""
    print(f"dswm_semlint: OK ({len(units)} files clean, {frontend} "
          f"frontend, {len(status_funcs)} Status-returning symbols{note})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
