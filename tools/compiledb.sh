#!/usr/bin/env bash
# Prints the path of a compile_commands.json for this tree, configuring a
# build directory to produce one if none exists yet. All AST-driven
# tooling (tools/dswm_semlint.py's libclang frontend, clang-tidy, editor
# language servers) shares this one database; CMakeLists.txt exports it
# unconditionally (CMAKE_EXPORT_COMPILE_COMMANDS), so any configured
# build directory works.
#
# Usage:
#   tools/compiledb.sh            # print path (configure build/ if needed)
#   tools/compiledb.sh --fresh    # reconfigure before printing
#
# Exit status: 0 with the path on stdout; non-zero if configuring failed.
set -euo pipefail

root="$(cd "$(dirname "$0")/.." && pwd)"
fresh=0
[[ "${1:-}" == "--fresh" ]] && fresh=1

# Prefer an existing database from any known build tree (newest wins).
if [[ $fresh -eq 0 ]]; then
  newest=""
  for dir in "$root"/build "$root"/build-*; do
    db="$dir/compile_commands.json"
    [[ -f "$db" ]] || continue
    if [[ -z "$newest" || "$db" -nt "$newest" ]]; then
      newest="$db"
    fi
  done
  if [[ -n "$newest" ]]; then
    echo "$newest"
    exit 0
  fi
fi

cmake -S "$root" -B "$root/build" >&2
echo "$root/build/compile_commands.json"
