#!/usr/bin/env bash
# One-command correctness gate for the dswm repo.
#
# Builds and tests three trees:
#   build-release/  Release, -Werror             (the shipping configuration)
#   build-asan/     ASan+UBSan, -Werror, DCHECKs (the tripwired configuration)
#   build-tsan/     TSan, -Werror, DCHECKs       (thread-pool + threaded
#                                                 kernel tests only)
# then smoke-tests the benchmark JSON emitter, runs the repo-invariant
# linter (tools/dswm_lint.py) and, when the binaries exist on PATH, a
# clang-format --dry-run check and clang-tidy.
#
# Usage: tools/run_checks.sh [--skip-release] [--skip-asan] [--skip-tsan]
#                            [--skip-bench] [--jobs N]
# Exits nonzero on the first failing stage.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_RELEASE=0
SKIP_ASAN=0
SKIP_TSAN=0
SKIP_BENCH=0

while [[ $# -gt 0 ]]; do
  case "$1" in
    --skip-release) SKIP_RELEASE=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-bench) SKIP_BENCH=1 ;;
    --jobs) JOBS="$2"; shift ;;
    *) echo "run_checks.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

log() { printf '\n=== %s ===\n' "$*"; }

build_and_test() {
  local dir="$1"; shift
  local filter="$1"; shift
  log "configure ${dir}"
  cmake -B "${ROOT}/${dir}" -S "${ROOT}" -DDSWM_WERROR=ON "$@"
  log "build ${dir} (-j${JOBS})"
  cmake --build "${ROOT}/${dir}" -j "${JOBS}"
  log "ctest ${dir}"
  if [[ -n "${filter}" ]]; then
    ctest --test-dir "${ROOT}/${dir}" --output-on-failure -j "${JOBS}" \
      -R "${filter}"
  else
    ctest --test-dir "${ROOT}/${dir}" --output-on-failure -j "${JOBS}"
  fi
}

if [[ "${SKIP_RELEASE}" -eq 0 ]]; then
  build_and_test build-release "" -DCMAKE_BUILD_TYPE=Release
fi

if [[ "${SKIP_ASAN}" -eq 0 ]]; then
  build_and_test build-asan "" -DCMAKE_BUILD_TYPE=Debug \
    -DDSWM_SANITIZE="address;undefined"
fi

if [[ "${SKIP_ASAN}" -eq 0 ]]; then
  # Explicit transport pass: the net-labeled suite (wire-format parser
  # corpus, channel fault injection, ledger cross-validation) under
  # ASan+UBSan, where a parser over-read actually trips.
  log "ctest -L net (build-asan)"
  ctest --test-dir "${ROOT}/build-asan" --output-on-failure -j "${JOBS}" \
    -L net
fi

if [[ "${SKIP_TSAN}" -eq 0 ]]; then
  # TSan is exclusive with ASan, so it gets its own tree. Only the tests
  # that actually spawn workers matter here (ThreadPool semantics plus the
  # Threaded* kernel/driver equivalence tests); the full suite already ran
  # under ASan above.
  build_and_test build-tsan 'ThreadPool|Threaded' -DCMAKE_BUILD_TYPE=Debug \
    -DDSWM_SANITIZE=thread

  # The obs-labeled suite under TSan: concurrent relaxed-atomic metric
  # updates and the thread_local span paths are exactly the code TSan can
  # vet (a missed atomic would be a data race here, not just wrong counts).
  log "ctest -L obs (build-tsan)"
  ctest --test-dir "${ROOT}/build-tsan" --output-on-failure -j "${JOBS}" \
    -L obs
fi

if [[ "${SKIP_BENCH}" -eq 0 ]]; then
  log "bench smoke (JSON emitter)"
  if [[ ! -f "${ROOT}/build-release/CMakeCache.txt" ]]; then
    cmake -B "${ROOT}/build-release" -S "${ROOT}" -DDSWM_WERROR=ON \
      -DCMAKE_BUILD_TYPE=Release
  fi
  cmake --build "${ROOT}/build-release" -j "${JOBS}" --target bench_micro_linalg
  BENCH_JSON_TMP="$(mktemp /tmp/dswm_bench_smoke.XXXXXX.json)"
  DSWM_BENCH_JSON="${BENCH_JSON_TMP}" \
    "${ROOT}/build-release/bench/bench_micro_linalg" \
    --benchmark_filter='BM_MatMul/128$' --benchmark_min_time=0.01 \
    >/dev/null
  python3 - "${BENCH_JSON_TMP}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("benchmarks"), "DSWM_BENCH_JSON produced no benchmark entries"
print(f"bench JSON OK ({len(doc['benchmarks'])} entries)")
PY
  rm -f "${BENCH_JSON_TMP}"

  log "metrics overhead smoke (micro-sketch, enabled vs disabled)"
  # The observability contract says instrumentation is near-zero overhead:
  # the disabled path is one relaxed load + untaken branch per site, and
  # even the *enabled* path (relaxed atomic adds) must stay within 3% on
  # the hottest instrumented loop (FD append, one DSWM_OBS_COUNT per
  # shrink). Measuring enabled-vs-disabled bounds both: the disabled path
  # is a strict subset of the enabled one. Medians over repetitions damp
  # scheduler noise.
  cmake --build "${ROOT}/build-release" -j "${JOBS}" --target bench_micro_sketch
  OVH_OFF_TMP="$(mktemp /tmp/dswm_ovh_off.XXXXXX.json)"
  OVH_ON_TMP="$(mktemp /tmp/dswm_ovh_on.XXXXXX.json)"
  DSWM_BENCH_JSON="${OVH_OFF_TMP}" \
    "${ROOT}/build-release/bench/bench_micro_sketch" \
    --benchmark_filter='BM_FrequentDirectionsAppend/128/20$' \
    --benchmark_min_time=0.05 --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true >/dev/null
  DSWM_BENCH_JSON="${OVH_ON_TMP}" DSWM_BENCH_METRICS=1 \
    "${ROOT}/build-release/bench/bench_micro_sketch" \
    --benchmark_filter='BM_FrequentDirectionsAppend/128/20$' \
    --benchmark_min_time=0.05 --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true >/dev/null
  python3 - "${OVH_OFF_TMP}" "${OVH_ON_TMP}" <<'PY'
import json, sys
def median_time(path):
    with open(path) as f:
        doc = json.load(f)
    for b in doc["benchmarks"]:
        if b.get("aggregate_name") == "median":
            return b["real_time"]
    raise AssertionError(f"no median aggregate in {path}")
off = median_time(sys.argv[1])
on = median_time(sys.argv[2])
overhead = (on - off) / off
assert overhead < 0.03, (
    f"metrics overhead {overhead:.1%} exceeds 3% on micro-sketch "
    f"(disabled {off:.1f}ns, enabled {on:.1f}ns per append)")
print(f"metrics overhead OK ({overhead:+.2%}: "
      f"disabled {off:.1f}ns, enabled {on:.1f}ns per append)")
PY
  rm -f "${OVH_OFF_TMP}" "${OVH_ON_TMP}"

  log "net bench smoke (DA2 wire bytes vs baseline)"
  # Serialized bytes per window are exact under loopback (deterministic
  # protocol, deterministic wire format), so the committed baseline is
  # checked with zero tolerance: any drift is a wire-format or protocol
  # change and must be re-baselined deliberately.
  cmake --build "${ROOT}/build-release" -j "${JOBS}" --target dswm_cli
  NET_JSON_TMP="$(mktemp /tmp/dswm_net_da2.XXXXXX.json)"
  "${ROOT}/build-release/tools/dswm_cli" run --dataset synthetic \
    --algorithm DA2 --epsilon 0.2 --sites 4 --rows 4000 --window 500 \
    --seed 1 --queries 2 --net-json 1 | grep '^{' > "${NET_JSON_TMP}"
  python3 - "${NET_JSON_TMP}" "${ROOT}/bench/BENCH_net_da2_bytes.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    got = json.load(f)
with open(sys.argv[2]) as f:
    want = json.load(f)
for key in ("algorithm", "total_words", "wire_payload_bytes",
            "wire_transmissions", "payload_bytes_per_window"):
    assert got[key] == want[key], (
        f"DA2 wire baseline drift in '{key}': got {got[key]!r}, "
        f"baseline {want[key]!r} -- if intentional, regenerate "
        "bench/BENCH_net_da2_bytes.json with the command in that file")
print(f"DA2 wire baseline OK ({got['wire_payload_bytes']} payload bytes, "
      f"{got['payload_bytes_per_window']} per window)")
PY
  rm -f "${NET_JSON_TMP}"
fi

log "dswm_lint"
python3 "${ROOT}/tools/dswm_lint.py" --root "${ROOT}"

if command -v clang-format >/dev/null 2>&1; then
  log "clang-format --dry-run"
  # shellcheck disable=SC2046
  clang-format --dry-run --Werror $(cd "${ROOT}" && \
    git ls-files 'src/**/*.h' 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc' \
                 'bench/*.h' 'examples/*.cpp' 'tools/*.cc' | \
    sed "s|^|${ROOT}/|")
else
  log "clang-format not found; skipping format check"
fi

if command -v run-clang-tidy >/dev/null 2>&1 && \
   command -v clang-tidy >/dev/null 2>&1; then
  log "clang-tidy (src/)"
  cmake -B "${ROOT}/build-release" -S "${ROOT}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  run-clang-tidy -quiet -p "${ROOT}/build-release" "${ROOT}/src/.*"
else
  log "clang-tidy not found; skipping tidy check"
fi

log "all checks passed"
