#!/usr/bin/env bash
# One-command correctness gate for the dswm repo.
#
# Builds and tests up to five trees:
#   build-release/       Release, -Werror        (the shipping configuration)
#   build-asan/          ASan+UBSan, -Werror, DCHECKs (the tripwired tree)
#   build-tsan/          TSan, -Werror, DCHECKs  (thread-pool + threaded
#                                                 kernel tests only)
#   build-threadsafety/  clang -Wthread-safety -Werror=thread-safety over
#                        the capability annotations (clang only; skipped
#                        with a notice when no clang++ is on PATH)
#   build-fuzz/          DSWM_FUZZ=ON + ASan+UBSan: corpus-replay ctests
#                        plus a bounded mutation smoke of both harnesses
#   build-fastmath/      Release + -DDSWM_FAST_MATH=ON: the FMA-contracted
#                        kernels against the FastMath tolerance suite (the
#                        bitwise-vs-Reference oracles self-skip there)
# then smoke-tests the benchmark JSON emitter, runs both repo linters
# (tools/dswm_lint.py textual, tools/dswm_semlint.py AST-level, with the
# fixture selftest and an empty-grandfather gate) and, when the binaries
# exist on PATH, a clang-format --dry-run check and clang-tidy --
# enforced (warnings-as-errors) on src/obs and src/net, budgeted
# elsewhere (tools/tidy_budget.txt, a ratchet that may only decrease).
#
# Usage: tools/run_checks.sh [--skip-release] [--skip-asan] [--skip-tsan]
#                            [--skip-fuzz] [--skip-fastmath] [--skip-bench]
#                            [--jobs N]
# Exits nonzero on the first failing stage.

set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
SKIP_RELEASE=0
SKIP_ASAN=0
SKIP_TSAN=0
SKIP_BENCH=0
SKIP_FUZZ=0
SKIP_FASTMATH=0
# Mutation counts sized to keep the whole fuzz stage near a minute on a
# typical container; the corpus replay part is always exhaustive.
FUZZ_WIRE_RUNS=20000
FUZZ_CSV_RUNS=8000

while [[ $# -gt 0 ]]; do
  case "$1" in
    --skip-release) SKIP_RELEASE=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-bench) SKIP_BENCH=1 ;;
    --skip-fuzz) SKIP_FUZZ=1 ;;
    --skip-fastmath) SKIP_FASTMATH=1 ;;
    --jobs) JOBS="$2"; shift ;;
    *) echo "run_checks.sh: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

log() { printf '\n=== %s ===\n' "$*"; }

build_and_test() {
  local dir="$1"; shift
  local filter="$1"; shift
  log "configure ${dir}"
  cmake -B "${ROOT}/${dir}" -S "${ROOT}" -DDSWM_WERROR=ON "$@"
  log "build ${dir} (-j${JOBS})"
  cmake --build "${ROOT}/${dir}" -j "${JOBS}"
  log "ctest ${dir}"
  if [[ -n "${filter}" ]]; then
    ctest --test-dir "${ROOT}/${dir}" --output-on-failure -j "${JOBS}" \
      -R "${filter}"
  else
    ctest --test-dir "${ROOT}/${dir}" --output-on-failure -j "${JOBS}"
  fi
}

if [[ "${SKIP_RELEASE}" -eq 0 ]]; then
  build_and_test build-release "" -DCMAKE_BUILD_TYPE=Release
fi

if [[ "${SKIP_ASAN}" -eq 0 ]]; then
  build_and_test build-asan "" -DCMAKE_BUILD_TYPE=Debug \
    -DDSWM_SANITIZE="address;undefined"
fi

if [[ "${SKIP_ASAN}" -eq 0 ]]; then
  # Explicit transport pass: the net-labeled suite (wire-format parser
  # corpus, channel fault injection, ledger cross-validation) under
  # ASan+UBSan, where a parser over-read actually trips.
  log "ctest -L net (build-asan)"
  ctest --test-dir "${ROOT}/build-asan" --output-on-failure -j "${JOBS}" \
    -L net

  # Multi-process smoke under ASan: the process backend forks real
  # worker processes and shuttles frames over AF_UNIX sockets; ASan
  # follows the fork, so a buffer over-read in the envelope codec or the
  # incremental frame decoder trips on either side of the socket.
  log "ctest -L runtime process smoke (build-asan)"
  ctest --test-dir "${ROOT}/build-asan" --output-on-failure -j "${JOBS}" \
    -L runtime -R 'ProcessChannel|ProcessSupervisor|FrameDecoder|WorkerEnvelope'
fi

if [[ "${SKIP_TSAN}" -eq 0 ]]; then
  # TSan is exclusive with ASan, so it gets its own tree. Only the tests
  # that actually spawn workers matter here (ThreadPool semantics plus the
  # Threaded* kernel/driver equivalence tests); the full suite already ran
  # under ASan above.
  build_and_test build-tsan 'ThreadPool|Threaded' -DCMAKE_BUILD_TYPE=Debug \
    -DDSWM_SANITIZE=thread

  # The obs-labeled suite under TSan: concurrent relaxed-atomic metric
  # updates and the thread_local span paths are exactly the code TSan can
  # vet (a missed atomic would be a data race here, not just wrong counts).
  log "ctest -L obs (build-tsan)"
  ctest --test-dir "${ROOT}/build-tsan" --output-on-failure -j "${JOBS}" \
    -L obs

  # The runtime-labeled suite under TSan: the event scheduler and the
  # process backend are specified single-threaded-coordinator designs,
  # and TSan proves that claim holds (any hidden thread touching channel
  # or queue state would race here).
  log "ctest -L runtime (build-tsan)"
  ctest --test-dir "${ROOT}/build-tsan" --output-on-failure -j "${JOBS}" \
    -L runtime

  # The serve-labeled suite under TSan: the snapshot store's publish /
  # pin / reclaim protocol is the one deliberately lock-free reader path
  # in the tree, and the publish-while-read stress plus the bit-identity
  # loaded runs are exactly the tests where a misordered epoch announce
  # or a reclaim-while-pinned shows up as a race instead of luck.
  log "ctest -L serve (build-tsan)"
  ctest --test-dir "${ROOT}/build-tsan" --output-on-failure -j "${JOBS}" \
    -L serve
fi

# Thread-safety analysis: the capability annotations in
# common/thread_annotations.h are only checked by clang; GCC compiles
# them away. A compile of the full tree IS the test (DSWM_WERROR plus
# -Werror=thread-safety from the option), so no ctest run here.
if command -v clang++ >/dev/null 2>&1; then
  log "configure build-threadsafety (clang -Wthread-safety)"
  cmake -B "${ROOT}/build-threadsafety" -S "${ROOT}" \
    -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_BUILD_TYPE=Release \
    -DDSWM_WERROR=ON -DDSWM_THREAD_SAFETY=ON
  log "build build-threadsafety (-j${JOBS})"
  cmake --build "${ROOT}/build-threadsafety" -j "${JOBS}"
else
  log "clang++ not found; skipping thread-safety analysis build"
fi

if [[ "${SKIP_FUZZ}" -eq 0 ]]; then
  # Fuzz tree: harnesses under ASan+UBSan. Two layers run here: the
  # committed corpus replays as ordinary ctests (every past finding and
  # structured near-miss stays fixed), then a bounded deterministic
  # mutation smoke hammers both parsers. Long coverage-guided runs are a
  # manual activity (clang/libFuzzer, same harnesses).
  log "configure build-fuzz (DSWM_FUZZ + ASan/UBSan)"
  cmake -B "${ROOT}/build-fuzz" -S "${ROOT}" -DCMAKE_BUILD_TYPE=Debug \
    -DDSWM_WERROR=ON -DDSWM_FUZZ=ON -DDSWM_SANITIZE="address;undefined"
  log "build build-fuzz (-j${JOBS})"
  cmake --build "${ROOT}/build-fuzz" -j "${JOBS}" \
    --target fuzz_wire_parse fuzz_csv_parse
  log "ctest -L fuzz (corpus replay)"
  ctest --test-dir "${ROOT}/build-fuzz" --output-on-failure -j "${JOBS}" \
    -L fuzz
  log "fuzz smoke (${FUZZ_WIRE_RUNS} wire + ${FUZZ_CSV_RUNS} csv mutations)"
  "${ROOT}/build-fuzz/fuzz/fuzz_wire_parse" -runs="${FUZZ_WIRE_RUNS}" \
    -seed=1 "${ROOT}/fuzz/corpus/wire"
  "${ROOT}/build-fuzz/fuzz/fuzz_csv_parse" -runs="${FUZZ_CSV_RUNS}" \
    -seed=1 "${ROOT}/fuzz/corpus/csv"
fi

if [[ "${SKIP_FASTMATH}" -eq 0 ]]; then
  # FMA-contracted kernel mode. Not bit-exact with the default build (by
  # design -- one rounding per accumulate step instead of two), so its
  # acceptance gate is the FastMath tolerance suite, not the memcmp
  # oracles; those self-skip under DSWM_FAST_MATH. The filter also pulls
  # in the Threaded/batched bit-identity tests, which must still hold:
  # contraction never changes the accumulation partition.
  build_and_test build-fastmath 'FastMath|Threaded|ThreadPool' \
    -DCMAKE_BUILD_TYPE=Release -DDSWM_FAST_MATH=ON
fi

if [[ "${SKIP_BENCH}" -eq 0 ]]; then
  log "bench smoke (JSON emitter)"
  if [[ ! -f "${ROOT}/build-release/CMakeCache.txt" ]]; then
    cmake -B "${ROOT}/build-release" -S "${ROOT}" -DDSWM_WERROR=ON \
      -DCMAKE_BUILD_TYPE=Release
  fi
  cmake --build "${ROOT}/build-release" -j "${JOBS}" --target bench_micro_linalg
  BENCH_JSON_TMP="$(mktemp /tmp/dswm_bench_smoke.XXXXXX.json)"
  DSWM_BENCH_JSON="${BENCH_JSON_TMP}" \
    "${ROOT}/build-release/bench/bench_micro_linalg" \
    --benchmark_filter='BM_MatMul/128$' --benchmark_min_time=0.01 \
    >/dev/null
  python3 - "${BENCH_JSON_TMP}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc.get("benchmarks"), "DSWM_BENCH_JSON produced no benchmark entries"
print(f"bench JSON OK ({len(doc['benchmarks'])} entries)")
PY
  rm -f "${BENCH_JSON_TMP}"

  log "bench smoke (batched window cells)"
  # One fast cell from each batched-engine benchmark: proves the binary
  # runs, the JSON emitter fires, and SetGlobalThreads inside a benchmark
  # body restores the pool (the process would hang teardown otherwise).
  cmake --build "${ROOT}/build-release" -j "${JOBS}" --target bench_micro_window
  WIN_JSON_TMP="$(mktemp /tmp/dswm_bench_window.XXXXXX.json)"
  DSWM_BENCH_JSON="${WIN_JSON_TMP}" \
    "${ROOT}/build-release/bench/bench_micro_window" \
    --benchmark_filter='BM_SamplerRefill/256' --benchmark_min_time=0.01 \
    >/dev/null
  python3 - "${WIN_JSON_TMP}" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
names = [b["name"] for b in doc.get("benchmarks", [])]
assert any("/1" in n for n in names) and any("/4" in n for n in names), (
    f"expected 1- and 4-thread sampler-refill cells, got {names}")
print(f"window bench JSON OK ({len(names)} cells)")
PY
  rm -f "${WIN_JSON_TMP}"

  log "metrics overhead smoke (micro-sketch, enabled vs disabled)"
  # The observability contract says instrumentation is near-zero overhead:
  # the disabled path is one relaxed load + untaken branch per site, and
  # even the *enabled* path (relaxed atomic adds) must stay within 3% on
  # the hottest instrumented loop (FD append, one DSWM_OBS_COUNT per
  # shrink). Measuring enabled-vs-disabled bounds both: the disabled path
  # is a strict subset of the enabled one. Medians over repetitions damp
  # scheduler noise.
  cmake --build "${ROOT}/build-release" -j "${JOBS}" --target bench_micro_sketch
  OVH_OFF_TMP="$(mktemp /tmp/dswm_ovh_off.XXXXXX.json)"
  OVH_ON_TMP="$(mktemp /tmp/dswm_ovh_on.XXXXXX.json)"
  DSWM_BENCH_JSON="${OVH_OFF_TMP}" \
    "${ROOT}/build-release/bench/bench_micro_sketch" \
    --benchmark_filter='BM_FrequentDirectionsAppend/128/20$' \
    --benchmark_min_time=0.05 --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true >/dev/null
  DSWM_BENCH_JSON="${OVH_ON_TMP}" DSWM_BENCH_METRICS=1 \
    "${ROOT}/build-release/bench/bench_micro_sketch" \
    --benchmark_filter='BM_FrequentDirectionsAppend/128/20$' \
    --benchmark_min_time=0.05 --benchmark_repetitions=5 \
    --benchmark_report_aggregates_only=true >/dev/null
  python3 - "${OVH_OFF_TMP}" "${OVH_ON_TMP}" <<'PY'
import json, sys
def median_time(path):
    with open(path) as f:
        doc = json.load(f)
    for b in doc["benchmarks"]:
        if b.get("aggregate_name") == "median":
            return b["real_time"]
    raise AssertionError(f"no median aggregate in {path}")
off = median_time(sys.argv[1])
on = median_time(sys.argv[2])
overhead = (on - off) / off
assert overhead < 0.03, (
    f"metrics overhead {overhead:.1%} exceeds 3% on micro-sketch "
    f"(disabled {off:.1f}ns, enabled {on:.1f}ns per append)")
print(f"metrics overhead OK ({overhead:+.2%}: "
      f"disabled {off:.1f}ns, enabled {on:.1f}ns per append)")
PY
  rm -f "${OVH_OFF_TMP}" "${OVH_ON_TMP}"

  log "net bench smoke (DA2 wire bytes vs baseline)"
  # Serialized bytes per window are exact under loopback (deterministic
  # protocol, deterministic wire format), so the committed baseline is
  # checked with zero tolerance: any drift is a wire-format or protocol
  # change and must be re-baselined deliberately.
  cmake --build "${ROOT}/build-release" -j "${JOBS}" --target dswm_cli
  NET_JSON_TMP="$(mktemp /tmp/dswm_net_da2.XXXXXX.json)"
  "${ROOT}/build-release/tools/dswm_cli" run --dataset synthetic \
    --algorithm DA2 --epsilon 0.2 --sites 4 --rows 4000 --window 500 \
    --seed 1 --queries 2 --net-json 1 | grep '^{' > "${NET_JSON_TMP}"
  python3 - "${NET_JSON_TMP}" "${ROOT}/bench/BENCH_net_da2_bytes.json" <<'PY'
import json, sys
with open(sys.argv[1]) as f:
    got = json.load(f)
with open(sys.argv[2]) as f:
    want = json.load(f)
for key in ("algorithm", "total_words", "wire_payload_bytes",
            "wire_transmissions", "payload_bytes_per_window"):
    assert got[key] == want[key], (
        f"DA2 wire baseline drift in '{key}': got {got[key]!r}, "
        f"baseline {want[key]!r} -- if intentional, regenerate "
        "bench/BENCH_net_da2_bytes.json with the command in that file")
print(f"DA2 wire baseline OK ({got['wire_payload_bytes']} payload bytes, "
      f"{got['payload_bytes_per_window']} per window)")
PY
  rm -f "${NET_JSON_TMP}"

  log "serving-bench smoke (QPS + latency histogram + metrics invariance)"
  # Three serving-tier claims checked cheaply: the closed-loop load gen
  # sustains a nonzero QPS with zero Status errors, the obs latency
  # histogram actually populates (the DSWM_OBS_HISTOGRAM site is live),
  # and flipping metrics on/off changes no query result bytes (the
  # --selfcheck pass runs the same deterministic probe sequence both ways
  # and memcmps the doubles).
  SERVE_LOG_TMP="$(mktemp /tmp/dswm_serve_smoke.XXXXXX.log)"
  "${ROOT}/build-release/tools/dswm_cli" serve-bench --rows 2000 \
    --readers 2 --min-queries 50 | tee "${SERVE_LOG_TMP}"
  python3 - "${SERVE_LOG_TMP}" <<'PY'
import re, sys
text = open(sys.argv[1]).read()
qps = float(re.search(r"^qps\s*:\s*([\d.]+)", text, re.M).group(1))
errors = int(re.search(r"^errors\s*:\s*(\d+)", text, re.M).group(1))
hist = re.search(r"^latency \(us\)\s*:\s*(\S.*)$", text, re.M)
assert qps > 0, f"serving bench reported zero QPS"
assert errors == 0, f"serving bench reported {errors} query errors"
assert hist and hist.group(1).strip(), "latency histogram is empty"
print(f"serving smoke OK ({qps:.0f} QPS, populated latency histogram)")
PY
  rm -f "${SERVE_LOG_TMP}"
  "${ROOT}/build-release/tools/dswm_cli" serve-bench --rows 1200 \
    --selfcheck 1
fi

log "dswm_lint"
python3 "${ROOT}/tools/dswm_lint.py" --root "${ROOT}"

log "dswm_semlint (AST-level rules)"
SEMLINT_DB=""
for dir in "${ROOT}"/build-release "${ROOT}"/build "${ROOT}"/build-fuzz; do
  if [[ -f "${dir}/compile_commands.json" ]]; then
    SEMLINT_DB="${dir}/compile_commands.json"
    break
  fi
done
python3 "${ROOT}/tools/dswm_semlint.py" --root "${ROOT}" \
  ${SEMLINT_DB:+--compile-commands "${SEMLINT_DB}"}

log "dswm_semlint selftest (rule fixtures)"
python3 "${ROOT}/tools/dswm_semlint_test.py" --root "${ROOT}"

log "grandfather gate"
# The semantic linter started life with empty grandfather lists and they
# must stay empty: new code meets the rules or carries a per-line,
# justified allow marker. Any entry in the GRANDFATHERED block fails here.
python3 - "${ROOT}/tools/dswm_semlint.py" <<'PY'
import re, sys
src = open(sys.argv[1]).read()
block = re.search(r"GRANDFATHERED = \{(.*?)\n\}", src, re.S)
assert block, "GRANDFATHERED block missing from dswm_semlint.py"
entries = re.findall(r":\s*\{\s*\"", block.group(1))
assert not entries, f"{len(entries)} grandfather list(s) are non-empty"
print("grandfather lists empty")
PY

if command -v clang-format >/dev/null 2>&1; then
  log "clang-format --dry-run"
  # shellcheck disable=SC2046
  clang-format --dry-run --Werror $(cd "${ROOT}" && \
    git ls-files 'src/**/*.h' 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc' \
                 'bench/*.h' 'examples/*.cpp' 'tools/*.cc' | \
    sed "s|^|${ROOT}/|")
else
  log "clang-format not found; skipping format check"
fi

if command -v run-clang-tidy >/dev/null 2>&1 && \
   command -v clang-tidy >/dev/null 2>&1; then
  TIDY_DB="$("${ROOT}/tools/compiledb.sh")"
  TIDY_DIR="$(dirname "${TIDY_DB}")"

  # Enforced zone: src/obs and src/net were written tidy-clean (they are
  # the youngest subsystems), so any diagnostic there is an error.
  log "clang-tidy (src/obs + src/net, warnings-as-errors)"
  run-clang-tidy -quiet -p "${TIDY_DIR}" \
    -warnings-as-errors='*' "${ROOT}/src/(obs|net)/.*"

  # Budgeted zone: the rest of src/ carries a warning-count ratchet.
  # tools/tidy_budget.txt holds the ceiling; lower it as warnings are
  # burned down, never raise it.
  TIDY_BUDGET="$(grep -v '^#' "${ROOT}/tools/tidy_budget.txt" | head -1)"
  log "clang-tidy (src/ excluding obs+net, budget ${TIDY_BUDGET})"
  TIDY_LOG="$(mktemp /tmp/dswm_tidy.XXXXXX.log)"
  run-clang-tidy -quiet -p "${TIDY_DIR}" \
    "${ROOT}/src/(?!obs/|net/).*" >"${TIDY_LOG}" 2>&1 || true
  TIDY_COUNT="$(grep -c 'warning:' "${TIDY_LOG}" || true)"
  if [[ "${TIDY_COUNT}" -gt "${TIDY_BUDGET}" ]]; then
    cat "${TIDY_LOG}"
    echo "clang-tidy: ${TIDY_COUNT} warnings exceed budget ${TIDY_BUDGET}" >&2
    rm -f "${TIDY_LOG}"
    exit 1
  fi
  echo "clang-tidy budget OK (${TIDY_COUNT}/${TIDY_BUDGET} warnings)"
  rm -f "${TIDY_LOG}"
else
  log "clang-tidy not found; skipping tidy check"
fi

log "all checks passed"
