// Figure 2: results on the SYNTHETIC dataset (A = S D U + N/zeta), same
// six panels as Figure 1 (see bench_fig1_pamap.cc).

#include "harness.h"

int main() {
  using namespace dswm;
  using namespace dswm::bench;
  const Workload workload = MakeSyntheticWorkload();
  RunFigure(workload, PaperAlgorithms(), EpsilonSweep(), SiteSweep(),
            /*default_eps=*/0.05, /*default_sites=*/20);
  return 0;
}
