// Ablations of the design choices DESIGN.md calls out:
//  1. Algorithm 1 (simple protocol) vs Algorithm 2 (lazy broadcast):
//     threshold-update count and total communication.
//  2. DA1 lazy spectral-norm check vs eager per-update checking:
//     exact-check count, update rate, and identical error budget.
//  3. Sampling estimator: exact top-l (PWOR) vs all available samples
//     (PWOR-ALL) at equal communication.

#include <cstdio>

#include "core/sampling_tracker.h"
#include "harness.h"

int main() {
  using namespace dswm;
  using namespace dswm::bench;

  // Smaller stream: the simple protocol's per-change synchronization is
  // exactly what makes it expensive.
  Workload workload = MakeSyntheticWorkload();
  workload.rows.resize(workload.rows.size() / 4);
  workload.window /= 4;
  const int m = 20;
  const double eps = 0.1;

  // ---- 1: simple vs lazy-broadcast protocol ---------------------------
  std::printf("== Ablation 1: PWOR threshold protocol (eps=%.2f, m=%d) ==\n",
              eps, m);
  std::printf("%-16s %12s %14s %12s %12s\n", "protocol", "avg_err",
              "msg(words/W)", "broadcasts", "rows/s");
  for (SamplingProtocol p :
       {SamplingProtocol::kSimple, SamplingProtocol::kLazyBroadcast}) {
    TrackerConfig config;
    config.dim = workload.dim;
    config.num_sites = m;
    config.window = workload.window;
    config.epsilon = eps;
    config.protocol = p;
    config.seed = 3;
    SamplingTracker tracker(config, SamplingScheme::kPriority, false);
    DriverOptions options;
    const RunResult r =
        RunTracker(&tracker, workload.rows, m, workload.window, options)
            .value();
    std::printf("%-16s %12.5f %14.0f %12ld %12.0f\n",
                p == SamplingProtocol::kSimple ? "simple(Alg.1)"
                                               : "lazy(Alg.2)",
                r.avg_err, r.words_per_window, r.broadcasts,
                r.update_rows_per_sec);
    std::fflush(stdout);
  }

  // ---- 2: DA1 lazy vs eager norm check --------------------------------
  std::printf("\n== Ablation 2: DA1 spectral-norm check (eps=%.2f, m=%d) ==\n",
              eps, m);
  std::printf("%-16s %12s %14s %12s\n", "check", "avg_err", "msg(words/W)",
              "rows/s");
  for (bool lazy : {false, true}) {
    TrackerConfig config;
    config.dim = workload.dim;
    config.num_sites = m;
    config.window = workload.window;
    config.epsilon = eps;
    config.da1_lazy_norm_check = lazy;
    config.seed = 3;
    auto tracker = MakeTracker(Algorithm::kDa1, config);
    DriverOptions options;
    const RunResult r = RunTracker(tracker.value().get(), workload.rows, m,
                                   workload.window, options)
                            .value();
    std::printf("%-16s %12.5f %14.0f %12.0f\n", lazy ? "lazy" : "eager",
                r.avg_err, r.words_per_window, r.update_rows_per_sec);
    std::fflush(stdout);
  }

  // ---- 3: top-l vs ALL estimators --------------------------------------
  std::printf("\n== Ablation 3: sampling estimator (eps=%.2f, m=%d) ==\n",
              eps, m);
  std::printf("%-16s %12s %12s %14s\n", "estimator", "avg_err", "max_err",
              "msg(words/W)");
  for (Algorithm a : {Algorithm::kPwor, Algorithm::kPworAll,
                      Algorithm::kEswor, Algorithm::kEsworAll}) {
    const RunResult r = RunCell(a, workload, eps, m);
    std::printf("%-16s %12.5f %12.5f %14.0f\n", AlgorithmName(a), r.avg_err,
                r.max_err, r.words_per_window);
    std::fflush(stdout);
  }

  // ---- 4: reference against naive centralization ----------------------
  std::printf("\n== Ablation 4: vs ship-everything baseline (eps=%.2f, "
              "m=%d) ==\n", eps, m);
  std::printf("%-16s %12s %14s\n", "algorithm", "avg_err", "msg(words/W)");
  for (Algorithm a :
       {Algorithm::kCentral, Algorithm::kPwor, Algorithm::kDa2}) {
    const RunResult r = RunCell(a, workload, eps, m);
    std::printf("%-16s %12.5f %14.0f\n", AlgorithmName(a), r.avg_err,
                r.words_per_window);
    std::fflush(stdout);
  }
  return 0;
}
