// Query-serving bench: a live DA2 tracker feeding the versioned
// SnapshotStore while closed-loop reader threads drive mixed PCA /
// anomaly / change queries through QueryService sessions.
//
// Reported per cell (reader count in {1, 2, 4, 8}): sustained QPS over
// the loaded phase, per-query latency percentiles read off the
// serve.query.latency_us histogram, query mix counts, versions
// published, and the error count -- which must be zero: every query
// against a pinned snapshot succeeds no matter how publication
// interleaves. The run starts with the metrics-invariance self-check
// (the identical feed + query set replayed with metrics off and on must
// produce bitwise-identical results), so the histogram instrumentation
// below provably never touches a served number.
//
// QPS here includes the feed: readers run concurrently with tracker
// ingestion and keep querying until the stream ends, so the number is
// "queries served while the system also absorbs its stream", not an
// idle-store ceiling.
//
// Regenerate the committed baseline with:
//   DSWM_BENCH_JSON=bench/BENCH_query_serving.json
//     build-release/bench/bench_query_serving  (one command line)
// The emitter writes the _comment/_command fields itself; timings are
// informational and nothing compares them with tolerance.

#include <cstdio>
#include <string>
#include <vector>

#include "common/check.h"
#include "harness.h"
#include "obs/metrics.h"
#include "serve/load_gen.h"

namespace dswm::bench {
namespace {

struct Cell {
  int readers = 0;
  serve::LoadGenReport report;
  obs::HistogramSnapshot latency;
};

// Upper-bound percentile: the smallest bucket edge whose cumulative count
// covers fraction q (overflow reports the last edge, i.e. ">edge").
long PercentileUpperBoundUs(const obs::HistogramSnapshot& h, double q) {
  if (h.total_count == 0) return 0;
  const long target = static_cast<long>(q * static_cast<double>(h.total_count));
  long cumulative = 0;
  for (size_t i = 0; i < h.counts.size(); ++i) {
    cumulative += h.counts[i];
    if (cumulative > target) {
      return i < h.edges.size() ? h.edges[i] : h.edges.back();
    }
  }
  return h.edges.back();
}

Cell RunCell(int readers, int rows) {
  serve::LoadGenOptions options;
  options.rows = rows;
  options.reader_threads = readers;
  auto got = serve::RunServingLoad(options);
  DSWM_CHECK(got.ok());

  Cell cell;
  cell.readers = readers;
  cell.report = std::move(got).value();
  const auto it = cell.report.metrics.histograms.find("serve.query.latency_us");
  if (it != cell.report.metrics.histograms.end()) cell.latency = it->second;
  // The acceptance bar: a pinned snapshot serves every query; the only
  // Status errors possible are bugs.
  DSWM_CHECK(cell.report.errors == 0);
  DSWM_CHECK(cell.report.total_queries > 0);
  DSWM_CHECK(cell.report.versions_published >= 1);
  DSWM_CHECK(cell.latency.total_count == cell.report.total_queries);
  return cell;
}

void WriteJson(const char* path, int rows, const std::vector<Cell>& cells) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_query_serving: cannot write %s\n", path);
    return;
  }
  std::fprintf(
      f,
      "{\n"
      "  \"_comment\": \"Query-serving tier throughput: closed-loop reader "
      "threads driving mixed PCA/anomaly/change queries against the "
      "versioned SnapshotStore while a live DA2 tracker feeds it. Timings "
      "and QPS are informational (machine-dependent); the structural "
      "fields run_checks.sh smokes are errors == 0 and a populated "
      "latency_us histogram.\",\n"
      "  \"_command\": \"DSWM_BENCH_JSON=bench/BENCH_query_serving.json "
      "build-release/bench/bench_query_serving\",\n");
  std::fprintf(f, "  \"workload\": \"serving\",\n  \"algorithm\": \"DA2\",\n");
  std::fprintf(f, "  \"rows\": %d,\n  \"cells\": [\n", rows);
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"readers\": %d, \"queries\": %ld, \"errors\": %ld, "
                 "\"elapsed_sec\": %.4f, \"qps\": %.0f, \"versions\": %llu, "
                 "\"p50_us\": %ld, \"p99_us\": %ld,\n",
                 c.readers, c.report.total_queries, c.report.errors,
                 c.report.elapsed_seconds, c.report.qps,
                 static_cast<unsigned long long>(c.report.versions_published),
                 PercentileUpperBoundUs(c.latency, 0.50),
                 PercentileUpperBoundUs(c.latency, 0.99));
    std::fprintf(f, "     \"latency_us\": {\"edges\": [");
    for (size_t e = 0; e < c.latency.edges.size(); ++e) {
      std::fprintf(f, "%ld%s", c.latency.edges[e],
                   e + 1 < c.latency.edges.size() ? ", " : "");
    }
    std::fprintf(f, "], \"counts\": [");
    for (size_t e = 0; e < c.latency.counts.size(); ++e) {
      std::fprintf(f, "%ld%s", c.latency.counts[e],
                   e + 1 < c.latency.counts.size() ? ", " : "");
    }
    std::fprintf(f, "]}}%s\n", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

int Main() {
  // Self-check before any number is printed: metrics must be inert.
  {
    serve::LoadGenOptions check;
    check.rows = 1500;
    const Status status = serve::VerifyMetricsInvariance(check);
    DSWM_CHECK(status.ok());
    std::printf("metrics-invariance self-check: ok\n");
  }

  // Histograms and serve.* counters come from the obs registry.
  obs::SetEnabled(true);

  const int rows = static_cast<int>(6000 * BenchScale());
  std::printf("serving workload: DA2, %d rows, dim 32, 4 sites\n", rows);
  std::printf("%8s %10s %8s %12s %10s %10s %8s %8s\n", "readers", "queries",
              "errors", "elapsed(s)", "qps", "versions", "p50(us)", "p99(us)");
  std::vector<Cell> cells;
  for (int readers : {1, 2, 4, 8}) {
    Cell c = RunCell(readers, rows);
    std::printf("%8d %10ld %8ld %12.3f %10.0f %10llu %8ld %8ld\n", c.readers,
                c.report.total_queries, c.report.errors,
                c.report.elapsed_seconds, c.report.qps,
                static_cast<unsigned long long>(c.report.versions_published),
                PercentileUpperBoundUs(c.latency, 0.50),
                PercentileUpperBoundUs(c.latency, 0.99));
    std::fflush(stdout);
    cells.push_back(std::move(c));
  }

  const char* path = BenchJsonPath();
  if (path != nullptr) WriteJson(path, rows, cells);
  return 0;
}

}  // namespace
}  // namespace dswm::bench

int main() { return dswm::bench::Main(); }
