// Microbenchmarks of the sliding-window substrates: scalar and matrix
// exponential histograms, plus the batched-engine hot paths (mEH
// merge/expiry cascades and the sampler refill materialization) at 1 vs
// N threads. The /1-thread cells are the sequential baseline -- with one
// thread the batched engine degenerates to the inline sequential loop --
// so the committed BENCH_micro_window.json pins the batched speedup as a
// /N-vs-/1 ratio within one file.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "harness.h"
#include "sampling/scaled_rows.h"
#include "stream/timed_row.h"
#include "window/exponential_histogram.h"
#include "window/matrix_eh.h"

namespace dswm {
namespace {

void BM_ExponentialHistogramInsert(benchmark::State& state) {
  const double eps = 1.0 / static_cast<double>(state.range(0));
  ExponentialHistogram eh(eps, 100000);
  Rng rng(1);
  Timestamp t = 0;
  for (auto _ : state) {
    ++t;
    eh.Insert(1.0 + rng.NextDouble(), t);
    benchmark::DoNotOptimize(eh.Estimate());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExponentialHistogramInsert)->Arg(10)->Arg(20)->Arg(50);

void BM_MatrixEhInsert(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  MatrixExpHistogram meh(d, 0.1, 50000);
  Rng rng(2);
  std::vector<double> row(d);
  Timestamp t = 0;
  for (auto _ : state) {
    ++t;
    for (int j = 0; j < d; ++j) row[j] = rng.NextGaussian();
    meh.Insert(row.data(), t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatrixEhInsert)->Arg(43)->Arg(128)->Arg(512);

void BM_MatrixEhQueryCovariance(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  MatrixExpHistogram meh(d, 0.1, 50000);
  Rng rng(3);
  std::vector<double> row(d);
  for (Timestamp t = 1; t <= 20000; ++t) {
    for (int j = 0; j < d; ++j) row[j] = rng.NextGaussian();
    meh.Insert(row.data(), t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(meh.QueryCovariance().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatrixEhQueryCovariance)->Arg(43)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Steady-state mEH update cost on a bursty stream: blocks of unit-norm
// rows punctuated by one heavy row whose mass makes the accumulated light
// tail merge-eligible all at once. Each post-burst Compress then carries
// many independent merge groups -- the shape the batched engine
// parallelizes -- while expiry continuously retires old bursts.
void BM_MehMergeExpiry(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const int kLightPerBurst = 480;
  const double kHeavyScale = 42.0;
  const Timestamp kWindow = 3000;

  ThreadPool::SetGlobalThreads(threads);
  MatrixExpHistogram meh(d, 0.1, kWindow);
  Rng rng(11);
  std::vector<double> row(d);
  Timestamp t = 0;
  // Warm up past the first window so expiry is active during timing.
  auto block = [&]() {
    for (int i = 0; i < kLightPerBurst; ++i) {
      for (double& v : row) v = rng.NextGaussian();
      meh.Insert(row.data(), ++t);
    }
    for (double& v : row) v = kHeavyScale * rng.NextGaussian();
    meh.Insert(row.data(), ++t);
  };
  for (int warm = 0; warm < 8; ++warm) block();

  for (auto _ : state) {
    block();
    benchmark::DoNotOptimize(meh.TotalRows());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long>(kLightPerBurst + 1));
  ThreadPool::SetGlobalThreads(1);
}
// UseRealTime: wall clock is the quantity the /N-vs-/1 ratio pins (the
// default main-thread CPU clock under-counts offloaded work).
// MeasureProcessCPUTime: cpu_time then covers workers too, so /1 vs /4
// cpu_time agreeing is the no-extra-work check. On a single-core
// container the /4 wall cells degenerate to /1 (see EXPERIMENTS.md).
BENCHMARK(BM_MehMergeExpiry)
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 4})
    ->UseRealTime()
    ->MeasureProcessCPUTime()
    ->Unit(benchmark::kMillisecond);

// The sampler refill path: materializing k picked rows into the scaled
// query sketch (sampling/scaled_rows.h), exactly as SamplingTracker::
// Query does for the priority scheme.
void BM_SamplerRefill(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const int k = 512;

  Rng rng(13);
  std::vector<TimedRow> rows(k);
  std::vector<const TimedRow*> picked(k);
  for (int i = 0; i < k; ++i) {
    rows[i].values.resize(d);
    for (double& v : rows[i].values) v = rng.NextGaussian();
    rows[i].timestamp = i + 1;
    picked[i] = &rows[i];
  }
  const double tau_k = 0.5;

  ThreadPool::SetGlobalThreads(threads);
  for (auto _ : state) {
    Matrix sketch = MaterializeScaledRows(
        picked, d, [tau_k](int /*i*/, double w) {
          return std::sqrt(std::max(w, tau_k) / w);
        });
    benchmark::DoNotOptimize(sketch.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long>(k));
  ThreadPool::SetGlobalThreads(1);
}
BENCHMARK(BM_SamplerRefill)
    ->Args({256, 1})
    ->Args({256, 4})
    ->Args({512, 1})
    ->Args({512, 4})
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace dswm

int main(int argc, char** argv) { return dswm::bench::BenchmarkMain(argc, argv); }
