// Microbenchmarks of the sliding-window substrates: scalar and matrix
// exponential histograms.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "window/exponential_histogram.h"
#include "window/matrix_eh.h"

namespace dswm {
namespace {

void BM_ExponentialHistogramInsert(benchmark::State& state) {
  const double eps = 1.0 / static_cast<double>(state.range(0));
  ExponentialHistogram eh(eps, 100000);
  Rng rng(1);
  Timestamp t = 0;
  for (auto _ : state) {
    ++t;
    eh.Insert(1.0 + rng.NextDouble(), t);
    benchmark::DoNotOptimize(eh.Estimate());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExponentialHistogramInsert)->Arg(10)->Arg(20)->Arg(50);

void BM_MatrixEhInsert(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  MatrixExpHistogram meh(d, 0.1, 50000);
  Rng rng(2);
  std::vector<double> row(d);
  Timestamp t = 0;
  for (auto _ : state) {
    ++t;
    for (int j = 0; j < d; ++j) row[j] = rng.NextGaussian();
    meh.Insert(row.data(), t);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatrixEhInsert)->Arg(43)->Arg(128)->Arg(512);

void BM_MatrixEhQueryCovariance(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  MatrixExpHistogram meh(d, 0.1, 50000);
  Rng rng(3);
  std::vector<double> row(d);
  for (Timestamp t = 1; t <= 20000; ++t) {
    for (int j = 0; j < d; ++j) row[j] = rng.NextGaussian();
    meh.Insert(row.data(), t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(meh.QueryCovariance().data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MatrixEhQueryCovariance)->Arg(43)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dswm

BENCHMARK_MAIN();
