// Figure 4(d): update rate (rows processed per second) of every protocol
// on every dataset at the default setting (eps = 0.05, m = 20).
//
// Paper shapes: deterministic protocols are fastest at small d (PAMAP)
// but their rate collapses as d grows (matrix factorizations); sampling
// rates are insensitive to d; DA1 cannot finish WIKI at all.

#include <cstdio>

#include "harness.h"

int main() {
  using namespace dswm;
  using namespace dswm::bench;

  const double eps = 0.05;
  const int m = 20;
  const Workload workloads[] = {MakePamapWorkload(), MakeSyntheticWorkload(),
                                MakeWikiWorkload()};

  std::printf(
      "Figure 4(d): update rate (rows/s), eps=%.2f, m=%d  ('-' = excluded: "
      "DA1 on WIKI, as in the paper)\n\n",
      eps, m);
  std::printf("%-10s", "algorithm");
  for (const Workload& w : workloads) std::printf(" %12s", w.name.c_str());
  std::printf("\n");

  for (Algorithm a : PaperAlgorithms()) {
    std::printf("%-10s", AlgorithmName(a));
    for (const Workload& w : workloads) {
      if (a == Algorithm::kDa1 && w.name == "WIKI") {
        std::printf(" %12s", "-");
        continue;
      }
      const RunResult r = RunCell(a, w, eps, m);
      std::printf(" %12.0f", r.update_rows_per_sec);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
