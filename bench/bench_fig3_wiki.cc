// Figure 3: results on the WIKI(-like) dataset, panels (a)-(d) (epsilon
// sweep at m in {10, 20}). As in the paper, DA1 is excluded: its per-row
// d x d eigendecompositions are infeasible at WIKI's dimensionality
// (Section IV-B observation (iii)).

#include "harness.h"

int main() {
  using namespace dswm;
  using namespace dswm::bench;
  const Workload workload = MakeWikiWorkload();
  const std::vector<Algorithm> algorithms = {
      Algorithm::kPwor, Algorithm::kPworAll, Algorithm::kEswor,
      Algorithm::kEsworAll, Algorithm::kDa2};
  RunFigure(workload, algorithms, EpsilonSweep(), /*site_sweep=*/{10},
            /*default_eps=*/0.1, /*default_sites=*/20);
  return 0;
}
